package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Workload generators use it so that every experiment is
// reproducible from a seed without importing math/rand, whose global state
// would couple tests together.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift cannot leave the zero state.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Int63 returns a non-negative pseudo-random int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Zipf draws values in [0, n) with a Zipfian distribution of exponent s.
// It uses rejection-inversion sampling (Hörmann & Derflinger 1996),
// suitable for the skewed key distributions common in database workloads.
type Zipf struct {
	rng              *RNG
	n                float64
	exponent         float64
	hIntegralX1      float64
	hIntegralNumElem float64
	threshold        float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 0.
// An exponent of exactly 1 is shifted by a small epsilon to stay in the
// closed-form regime.
func NewZipf(rng *RNG, s float64, n int64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf called with non-positive n")
	}
	if s <= 0 {
		panic("sim: NewZipf called with non-positive s")
	}
	if s == 1 {
		s = 1.0000001
	}
	z := &Zipf{rng: rng, n: float64(n), exponent: s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumElem = z.hIntegral(z.n + 0.5)
	z.threshold = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// hIntegral is the antiderivative of h(x) = x^-exponent.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.exponent)*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.exponent * math.Log(x))
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.exponent)
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series expansion near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a series expansion near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next draws the next Zipf-distributed value in [0, n). Value 0 is the
// most frequent.
func (z *Zipf) Next() int64 {
	for {
		u := z.hIntegralNumElem + z.rng.Float64()*(z.hIntegralX1-z.hIntegralNumElem)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.threshold || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int64(k) - 1
		}
	}
}
