package columnar

import (
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "price", Type: Float64},
		Field{Name: "name", Type: String},
		Field{Name: "flag", Type: Bool},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.NumFields() != 4 {
		t.Fatalf("NumFields = %d, want 4", s.NumFields())
	}
	if idx := s.FieldIndex("price"); idx != 1 {
		t.Errorf("FieldIndex(price) = %d, want 1", idx)
	}
	if idx := s.FieldIndex("missing"); idx != -1 {
		t.Errorf("FieldIndex(missing) = %d, want -1", idx)
	}
	p := s.Project([]int{2, 0})
	if p.NumFields() != 2 || p.Fields[0].Name != "name" || p.Fields[1].Name != "id" {
		t.Errorf("Project gave %v", p)
	}
	if !s.Equal(testSchema()) {
		t.Error("Equal(same) = false")
	}
	if s.Equal(p) {
		t.Error("Equal(different) = true")
	}
	want := "(id BIGINT, price DOUBLE, name VARCHAR, flag BOOLEAN)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSchemaConcatCollision(t *testing.T) {
	left := NewSchema(Field{Name: "k", Type: Int64}, Field{Name: "v", Type: Int64})
	right := NewSchema(Field{Name: "k", Type: Int64}, Field{Name: "w", Type: String})
	cat := left.Concat(right)
	names := []string{"k", "v", "r_k", "w"}
	if cat.NumFields() != 4 {
		t.Fatalf("Concat fields = %d, want 4", cat.NumFields())
	}
	for i, n := range names {
		if cat.Fields[i].Name != n {
			t.Errorf("field %d = %q, want %q", i, cat.Fields[i].Name, n)
		}
	}
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("Set/Get wrong")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Error("Clear failed")
	}
	idx := b.Indices(nil)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 129 {
		t.Errorf("Indices = %v, want [0 129]", idx)
	}

	other := NewBitmap(130)
	other.Set(0)
	other.Set(10)
	clone := b.Clone()
	clone.And(other)
	if clone.Count() != 1 || !clone.Get(0) {
		t.Errorf("And wrong: %v", clone.Indices(nil))
	}
	clone2 := b.Clone()
	clone2.Or(other)
	if clone2.Count() != 3 {
		t.Errorf("Or Count = %d, want 3", clone2.Count())
	}
}

func TestBitmapLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	NewBitmap(10).And(NewBitmap(20))
}

func TestVectorAppendAndGet(t *testing.T) {
	v := NewVector(Int64, 4)
	v.AppendInt64(10)
	v.AppendNull()
	v.AppendInt64(30)
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	if v.IsNull(0) || !v.IsNull(1) || v.IsNull(2) {
		t.Error("null tracking wrong")
	}
	if v.NullCount() != 1 || !v.HasNulls() {
		t.Error("NullCount/HasNulls wrong")
	}
	if got := v.Value(0); !got.Equal(IntValue(10)) {
		t.Errorf("Value(0) = %v", got)
	}
	if got := v.Value(1); !got.Null {
		t.Errorf("Value(1) = %v, want NULL", got)
	}
}

func TestVectorTypesRoundTrip(t *testing.T) {
	cases := []Value{
		IntValue(-7),
		FloatValue(3.25),
		StringValue("hello"),
		BoolValue(true),
	}
	for _, val := range cases {
		v := NewVector(val.Type, 1)
		v.AppendValue(val)
		if got := v.Value(0); !got.Equal(val) {
			t.Errorf("%v round-trip gave %v", val, got)
		}
	}
}

func TestVectorAppendWrongTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendValue with wrong type did not panic")
		}
	}()
	NewVector(Int64, 1).AppendValue(StringValue("x"))
}

func TestVectorGatherAndSlice(t *testing.T) {
	v := FromInt64s([]int64{0, 10, 20, 30, 40})
	g := v.Gather([]int{4, 0, 2})
	want := []int64{40, 0, 20}
	for i, w := range want {
		if g.Int64s()[i] != w {
			t.Errorf("Gather[%d] = %d, want %d", i, g.Int64s()[i], w)
		}
	}
	s := v.Slice(1, 4)
	if s.Len() != 3 || s.Int64s()[0] != 10 || s.Int64s()[2] != 30 {
		t.Errorf("Slice = %v", s.Int64s())
	}
}

func TestVectorSliceCarriesNulls(t *testing.T) {
	v := NewVector(Int64, 4)
	v.AppendInt64(1)
	v.AppendNull()
	v.AppendInt64(3)
	s := v.Slice(1, 3)
	if !s.IsNull(0) || s.IsNull(1) {
		t.Error("Slice lost null bits")
	}
}

func TestVectorByteSize(t *testing.T) {
	v := FromInt64s(make([]int64, 100))
	if v.ByteSize() != 800 {
		t.Errorf("int64 ByteSize = %d, want 800", v.ByteSize())
	}
	sv := FromStrings([]string{"abc", ""})
	if sv.ByteSize() != 3+16*2 {
		t.Errorf("string ByteSize = %d, want 35", sv.ByteSize())
	}
}

func TestBatchBuildAndAccess(t *testing.T) {
	s := testSchema()
	b := NewBatch(s, 4)
	b.AppendRow(IntValue(1), FloatValue(9.5), StringValue("a"), BoolValue(true))
	b.AppendRow(IntValue(2), FloatValue(1.5), StringValue("b"), BoolValue(false))
	if b.NumRows() != 2 || b.NumCols() != 4 {
		t.Fatalf("shape = %dx%d, want 2x4", b.NumRows(), b.NumCols())
	}
	if b.ColByName("price").Float64s()[1] != 1.5 {
		t.Error("ColByName(price) wrong")
	}
	if b.ColByName("missing") != nil {
		t.Error("ColByName(missing) should be nil")
	}
	row := b.Row(0)
	if !row[2].Equal(StringValue("a")) {
		t.Errorf("Row(0)[2] = %v", row[2])
	}
}

func TestBatchOfValidation(t *testing.T) {
	s := NewSchema(Field{Name: "x", Type: Int64}, Field{Name: "y", Type: Int64})
	// Wrong count.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BatchOf with wrong column count did not panic")
			}
		}()
		BatchOf(s, FromInt64s([]int64{1}))
	}()
	// Wrong type.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BatchOf with wrong type did not panic")
			}
		}()
		BatchOf(s, FromInt64s([]int64{1}), FromStrings([]string{"a"}))
	}()
	// Ragged lengths.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BatchOf with ragged lengths did not panic")
			}
		}()
		BatchOf(s, FromInt64s([]int64{1}), FromInt64s([]int64{1, 2}))
	}()
}

func TestBatchProjectGatherFilterSlice(t *testing.T) {
	s := NewSchema(Field{Name: "a", Type: Int64}, Field{Name: "b", Type: String})
	b := BatchOf(s,
		FromInt64s([]int64{1, 2, 3, 4}),
		FromStrings([]string{"w", "x", "y", "z"}))

	p := b.Project([]int{1})
	if p.NumCols() != 1 || p.Schema().Fields[0].Name != "b" {
		t.Error("Project wrong")
	}

	g := b.Gather([]int{3, 1})
	if g.Col(0).Int64s()[0] != 4 || g.Col(1).Strings()[1] != "x" {
		t.Error("Gather wrong")
	}

	sel := NewBitmap(4)
	sel.Set(0)
	sel.Set(2)
	f := b.Filter(sel)
	if f.NumRows() != 2 || f.Col(0).Int64s()[1] != 3 {
		t.Error("Filter wrong")
	}

	sl := b.Slice(1, 3)
	if sl.NumRows() != 2 || sl.Col(1).Strings()[0] != "x" {
		t.Error("Slice wrong")
	}
}

func TestBatchClone(t *testing.T) {
	s := NewSchema(Field{Name: "a", Type: Int64})
	b := BatchOf(s, FromInt64s([]int64{1, 2}))
	c := b.Clone()
	c.Col(0).Int64s()[0] = 99
	if b.Col(0).Int64s()[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestRowMajorRoundTrip(t *testing.T) {
	s := testSchema()
	b := NewBatch(s, 3)
	b.AppendRow(IntValue(1), FloatValue(2), StringValue("x"), BoolValue(true))
	b.AppendRow(NullValue(Int64), FloatValue(4), StringValue("y"), BoolValue(false))
	rows := b.RowMajor()
	back := FromRowMajor(s, rows)
	if back.NumRows() != 2 {
		t.Fatalf("round trip rows = %d", back.NumRows())
	}
	for i := 0; i < 2; i++ {
		for c := 0; c < 4; c++ {
			if !back.Col(c).Value(i).Equal(b.Col(c).Value(i)) {
				t.Errorf("cell (%d,%d) differs after round trip", i, c)
			}
		}
	}
}

// Property: for any index list, Gather preserves values positionally.
func TestGatherProperty(t *testing.T) {
	f := func(vals []int64, picks []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		v := FromInt64s(vals)
		idx := make([]int, len(picks))
		for i, p := range picks {
			idx[i] = int(p) % len(vals)
		}
		g := v.Gather(idx)
		for i, id := range idx {
			if g.Int64s()[i] != vals[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bitmap Indices and Count agree.
func TestBitmapCountIndicesProperty(t *testing.T) {
	f := func(setBits []uint16) bool {
		b := NewBitmap(1 << 16)
		uniq := make(map[int]bool)
		for _, s := range setBits {
			b.Set(int(s))
			uniq[int(s)] = true
		}
		return b.Count() == len(uniq) && len(b.Indices(nil)) == len(uniq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
