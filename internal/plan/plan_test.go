package plan

import (
	"math"
	"strings"
	"testing"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/fabric"
)

func testSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "qty", Type: columnar.Int64},
		columnar.Field{Name: "price", Type: columnar.Float64},
		columnar.Field{Name: "tag", Type: columnar.String},
	)
}

func testStats() TableStats {
	st := StatsFromSchema(testSchema())
	st.Rows = 1_000_000
	st.Distinct[0] = 1_000_000
	st.Distinct[1] = 50
	st.MinInt[1], st.MaxInt[1], st.IntBounds[1] = 0, 49, true
	st.MinInt[0], st.MaxInt[0], st.IntBounds[0] = 0, 999_999, true
	return st
}

func smartPath(t *testing.T) PathModel {
	t.Helper()
	pm, err := FromCluster(fabric.NewCluster(fabric.DefaultClusterConfig()), 0)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func legacyPath(t *testing.T) PathModel {
	t.Helper()
	pm, err := FromCluster(fabric.NewCluster(fabric.LegacyClusterConfig()), 0)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestQueryValidateAndString(t *testing.T) {
	q := NewQuery("t").WithFilter(expr.NewCmp(1, expr.Lt, columnar.IntValue(5))).WithProjection(2)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"SELECT col2", "FROM t", "WHERE col1 < 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if err := NewQuery("").Validate(); err == nil {
		t.Error("empty table accepted")
	}
	bad := NewQuery("t").WithCount()
	bad.GroupBy = &expr.GroupBy{}
	if err := bad.Validate(); err == nil {
		t.Error("count+groupby accepted")
	}
	g := NewQuery("t").WithGroupBy(expr.GroupBy{GroupCols: []int{1}, Aggs: []expr.AggSpec{{Func: expr.Count}}}).WithOrderBy(0).WithLimit(5)
	gs := g.String()
	for _, want := range []string{"GROUP BY col1", "ORDER BY out0", "LIMIT 5", "COUNT(*)"} {
		if !strings.Contains(gs, want) {
			t.Errorf("String() = %q missing %q", gs, want)
		}
	}
}

func TestPathFromCluster(t *testing.T) {
	pm := smartPath(t)
	if len(pm.Sites) != 5 {
		t.Fatalf("smart path has %d sites, want 5", len(pm.Sites))
	}
	order := []Site{SiteStorage, SiteStorageNIC, SiteComputeNIC, SiteNearMemory, SiteCPU}
	for i, want := range order {
		if pm.Sites[i].Site != want {
			t.Errorf("site %d = %v, want %v", i, pm.Sites[i].Site, want)
		}
	}
	// Every non-terminal site must reach the next one.
	for i := 0; i < len(pm.Sites)-1; i++ {
		if len(pm.Sites[i].ToNext) == 0 {
			t.Errorf("site %d has no links to next", i)
		}
		if pm.SegmentBandwidth(i) <= 0 {
			t.Errorf("segment %d bandwidth = 0", i)
		}
		if pm.SegmentLatency(i) <= 0 {
			t.Errorf("segment %d latency = 0", i)
		}
	}
	lp := legacyPath(t)
	if len(lp.Sites) != 4 {
		t.Fatalf("legacy path has %d sites, want 4 (no near-memory)", len(lp.Sites))
	}
	if pm.String() == "" {
		t.Error("empty String()")
	}
	if _, err := FromCluster(fabric.NewCluster(fabric.DefaultClusterConfig()), 99); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestEarliestCapable(t *testing.T) {
	pm := smartPath(t)
	if i := pm.EarliestCapable(fabric.OpFilter, 0); i != 0 {
		t.Errorf("filter earliest = %d, want 0 (storage)", i)
	}
	if i := pm.EarliestCapable(fabric.OpSort, 0); pm.Sites[i].Site != SiteCPU {
		t.Errorf("sort earliest site = %v, want cpu", pm.Sites[i].Site)
	}
	lp := legacyPath(t)
	if i := lp.EarliestCapable(fabric.OpFilter, 0); lp.Sites[i].Site != SiteCPU {
		t.Errorf("legacy filter earliest = %v, want cpu", lp.Sites[i].Site)
	}
}

func TestEstimateSelectivity(t *testing.T) {
	st := testStats()
	cases := []struct {
		p    expr.Predicate
		want float64
		tol  float64
	}{
		{expr.NewCmp(1, expr.Eq, columnar.IntValue(3)), 1.0 / 50, 1e-9},
		{expr.NewCmp(1, expr.Ne, columnar.IntValue(3)), 49.0 / 50, 1e-9},
		{expr.NewCmp(1, expr.Lt, columnar.IntValue(25)), 0.51, 0.02},
		{expr.NewBetween(1, 10, 19), 0.2, 0.01},
		{expr.NewLike(3, "x"), 0.1, 1e-9},
		{expr.NewAnd(expr.NewBetween(1, 0, 24), expr.NewBetween(1, 0, 9)), 0.5 * 0.2, 0.02},
		{expr.NewNot(expr.NewBetween(1, 10, 19)), 0.8, 0.01},
		{nil, 1, 0},
	}
	for i, tc := range cases {
		got := EstimateSelectivity(tc.p, st)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("case %d: sel = %v, want %v", i, got, tc.want)
		}
	}
}

func TestGroupEstimate(t *testing.T) {
	st := testStats()
	g := &expr.GroupBy{GroupCols: []int{1}}
	if got := st.GroupEstimate(g); got != 50 {
		t.Errorf("GroupEstimate = %d, want 50", got)
	}
	big := &expr.GroupBy{GroupCols: []int{0}}
	if got := st.GroupEstimate(big); got != st.Rows {
		t.Errorf("high-cardinality GroupEstimate = %d, want rows", got)
	}
	if got := st.GroupEstimate(nil); got != 1 {
		t.Errorf("scalar GroupEstimate = %d, want 1", got)
	}
}

func TestOptimizerPrefersOffloadOnSelectiveFilter(t *testing.T) {
	pm := smartPath(t)
	opt := &Optimizer{Path: pm}
	q := NewQuery("t").
		WithFilter(expr.NewCmp(1, expr.Eq, columnar.IntValue(3))). // 2% selectivity
		WithProjection(2)
	best, err := opt.Choose(q, testStats())
	if err != nil {
		t.Fatal(err)
	}
	if !best.HasPlacement(fabric.OpFilter, SiteStorage) {
		t.Errorf("best plan %q does not filter at storage:\n%s", best.Variant, best.Explain())
	}
	if best.EstBytes <= 0 || best.EstTime <= 0 {
		t.Error("estimates missing")
	}
}

func TestOptimizerLegacyFallsBackToCPU(t *testing.T) {
	opt := &Optimizer{Path: legacyPath(t)}
	q := NewQuery("t").WithFilter(expr.NewCmp(1, expr.Eq, columnar.IntValue(3)))
	all, err := opt.Enumerate(q, testStats())
	if err != nil {
		t.Fatal(err)
	}
	// With a dumb fabric every variant collapses to CPU placement.
	if len(all) != 1 {
		t.Fatalf("legacy fabric produced %d variants, want 1", len(all))
	}
	if !all[0].HasPlacement(fabric.OpFilter, SiteCPU) {
		t.Error("legacy filter not on CPU")
	}
}

func TestOptimizerStagedPreAgg(t *testing.T) {
	opt := &Optimizer{Path: smartPath(t)}
	q := NewQuery("t").WithGroupBy(expr.GroupBy{
		GroupCols: []int{1},
		Aggs:      []expr.AggSpec{{Func: expr.Count}, {Func: expr.Sum, Col: 2}},
	})
	all, err := opt.Enumerate(q, testStats())
	if err != nil {
		t.Fatal(err)
	}
	var full *Physical
	for _, p := range all {
		if p.Variant == "full-offload" {
			full = p
		}
	}
	if full == nil {
		t.Fatal("no full-offload variant")
	}
	// Pre-agg at storage, both NICs (3 sites) then final at CPU.
	count := 0
	for _, pl := range full.Placements {
		if pl.Op == fabric.OpPreAgg {
			count++
		}
	}
	if count < 3 {
		t.Errorf("full-offload placed %d pre-agg stages, want >= 3:\n%s", count, full.Explain())
	}
	if !full.HasPlacement(fabric.OpAggregate, SiteCPU) {
		t.Error("final aggregate not on CPU")
	}
}

func TestOptimizerCountOnNIC(t *testing.T) {
	opt := &Optimizer{Path: smartPath(t)}
	q := NewQuery("t").WithCount()
	best, err := opt.Choose(q, testStats())
	if err != nil {
		t.Fatal(err)
	}
	if !best.HasPlacement(fabric.OpCount, SiteStorage) {
		t.Errorf("count not at the earliest site:\n%s", best.Explain())
	}
}

func TestOffloadBeatsCPUOnMovement(t *testing.T) {
	// Constrained fabric: two cores available to this query and a 100G
	// network — the paper's shared-cloud scenario where pushdown's time
	// advantage materializes (on an idle fat fabric only the movement
	// advantage is guaranteed).
	cfg := fabric.DefaultClusterConfig()
	cfg.CPUCores = 2
	cfg.NICTier = fabric.LinkEth100
	pm, err := FromCluster(fabric.NewCluster(cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := &Optimizer{Path: pm}
	q := NewQuery("t").
		WithFilter(expr.NewCmp(1, expr.Eq, columnar.IntValue(3))).
		WithProjection(2)
	all, err := opt.Enumerate(q, testStats())
	if err != nil {
		t.Fatal(err)
	}
	var cpu, offload *Physical
	for _, p := range all {
		switch p.Variant {
		case "cpu-only":
			cpu = p
		case "full-offload", "storage-pushdown":
			if offload == nil {
				offload = p
			}
		}
	}
	if cpu == nil || offload == nil {
		t.Fatalf("variants missing: %d produced", len(all))
	}
	if offload.EstBytes >= cpu.EstBytes {
		t.Errorf("offload moves %v >= cpu %v", offload.EstBytes, cpu.EstBytes)
	}
	if offload.EstTime >= cpu.EstTime {
		t.Errorf("offload time %v >= cpu %v", offload.EstTime, cpu.EstTime)
	}
}

func TestExplainOutput(t *testing.T) {
	opt := &Optimizer{Path: smartPath(t)}
	best, err := opt.Choose(NewQuery("t").WithCount(), testStats())
	if err != nil {
		t.Fatal(err)
	}
	out := best.Explain()
	for _, want := range []string{"storage", "cpu", "est:", "COUNT"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestMoveWeightChangesRanking(t *testing.T) {
	// With a huge movement weight, the plan moving the fewest bytes must
	// win even if marginally slower.
	q := NewQuery("t").WithGroupBy(expr.GroupBy{GroupCols: []int{1}, Aggs: []expr.AggSpec{{Func: expr.Count}}})
	heavy := &Optimizer{Path: smartPath(t), MoveWeight: 1000}
	best, err := heavy.Choose(q, testStats())
	if err != nil {
		t.Fatal(err)
	}
	all, _ := heavy.Enumerate(q, testStats())
	for _, p := range all {
		if p.EstBytes < best.EstBytes {
			t.Errorf("with MoveWeight, chose %q (%v) over cheaper-moving %q (%v)",
				best.Variant, best.EstBytes, p.Variant, p.EstBytes)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	st := testStats()
	if st.RowBytes(nil) != 8+8+8+24 {
		t.Errorf("RowBytes(nil) = %d", st.RowBytes(nil))
	}
	if st.RowBytes([]int{0, 2}) != 16 {
		t.Errorf("RowBytes([0,2]) = %d", st.RowBytes([]int{0, 2}))
	}
	if st.TotalBytes() <= 0 {
		t.Error("TotalBytes <= 0")
	}
}

func TestNeededCols(t *testing.T) {
	q := NewQuery("t").WithFilter(expr.NewCmp(1, expr.Lt, columnar.IntValue(5))).WithProjection(2)
	got := neededCols(q, 4)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("neededCols = %v, want [1 2]", got)
	}
	all := neededCols(NewQuery("t"), 3)
	if len(all) != 3 {
		t.Errorf("neededCols(*) = %v", all)
	}
}
