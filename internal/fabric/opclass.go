// Package fabric models the heterogeneous, disaggregated hardware
// landscape of the paper (Section 2): compute nodes, storage nodes,
// memory nodes, smart NICs, in-storage processors, near-memory
// accelerators and the links between them (DDR, PCIe generations, CXL,
// Ethernet tiers).
//
// The model is cost accounting, not cycle simulation: every device has a
// calibrated streaming rate per operation class and every link has a
// bandwidth and latency. When the engine runs real operators on real
// data, it charges the bytes to the devices and links involved, and
// virtual time falls out analytically. This keeps experiments
// deterministic and host-independent while preserving the quantities the
// paper reasons about — bytes moved along the data path and where work
// happens.
package fabric

import "fmt"

// OpClass classifies the streaming operations a device may support.
// Offloading decisions are made in terms of op classes: a device can host
// a pipeline stage only if it supports the stage's op class.
type OpClass uint8

// Operation classes. The set mirrors the processing opportunities the
// paper identifies along the data path.
const (
	OpScan         OpClass = iota // sequential read + decode of stored segments
	OpFilter                      // selection by value/range/predicate
	OpProject                     // column pruning
	OpHash                        // hashing a stream (Figure 3)
	OpPartition                   // hash-partitioning / scatter (Figure 4)
	OpPreAgg                      // partial, bounded-state aggregation (Section 4.4)
	OpAggregate                   // full aggregation with arbitrary state
	OpJoin                        // join build/probe
	OpSort                        // sorting
	OpCount                       // counting/discarding (Section 4.4 NIC COUNT)
	OpCompress                    // block compression
	OpDecompress                  // block decompression
	OpEncrypt                     // stream encryption
	OpDecrypt                     // stream decryption
	OpTranspose                   // row<->column format conversion (Section 5.4)
	OpPointerChase                // hierarchical structure traversal (Section 5.4)
	OpListOps                     // list/GC maintenance primitives (Section 5.4)
	OpRegexMatch                  // LIKE/regex predicates (Section 3.3, AQUA)
	numOpClasses
)

// String names the op class.
func (o OpClass) String() string {
	names := [...]string{
		"scan", "filter", "project", "hash", "partition", "preagg",
		"aggregate", "join", "sort", "count", "compress", "decompress",
		"encrypt", "decrypt", "transpose", "pointerchase", "listops",
		"regex",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("OpClass(%d)", uint8(o))
}

// AllOpClasses lists every op class, useful for capability reporting.
func AllOpClasses() []OpClass {
	out := make([]OpClass, numOpClasses)
	for i := range out {
		out[i] = OpClass(i)
	}
	return out
}
