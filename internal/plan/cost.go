package plan

import (
	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/sim"
)

// TableStats carries the per-table statistics the optimizer estimates
// costs from. Engines maintain them at ingest time.
type TableStats struct {
	Rows int64
	// ColBytes is the average in-memory bytes per value, per column.
	ColBytes []int64
	// Distinct estimates distinct values per column (0 = unknown).
	Distinct []int64
	// MinInt/MaxInt bound BIGINT columns (valid where IntBounds is set).
	MinInt, MaxInt []int64
	IntBounds      []bool
	// EncodedFraction is encoded size / decoded size for the table's
	// segments, used to cost the storage-side decode.
	EncodedFraction float64
}

// StatsFromSchema initializes empty stats sized for the schema.
func StatsFromSchema(s *columnar.Schema) TableStats {
	n := s.NumFields()
	st := TableStats{
		ColBytes:        make([]int64, n),
		Distinct:        make([]int64, n),
		MinInt:          make([]int64, n),
		MaxInt:          make([]int64, n),
		IntBounds:       make([]bool, n),
		EncodedFraction: 0.5,
	}
	for i, f := range s.Fields {
		switch f.Type {
		case columnar.Int64, columnar.Float64:
			st.ColBytes[i] = 8
		case columnar.Bool:
			st.ColBytes[i] = 1
		case columnar.String:
			st.ColBytes[i] = 24
		}
	}
	return st
}

// RowBytes reports the average width of the given columns (all columns
// when cols is nil).
func (s TableStats) RowBytes(cols []int) int64 {
	if cols == nil {
		var n int64
		for _, b := range s.ColBytes {
			n += b
		}
		return n
	}
	var n int64
	for _, c := range cols {
		if c < len(s.ColBytes) {
			n += s.ColBytes[c]
		}
	}
	return n
}

// TotalBytes reports the estimated decoded table size.
func (s TableStats) TotalBytes() sim.Bytes {
	return sim.Bytes(s.Rows * s.RowBytes(nil))
}

// GroupEstimate bounds the number of groups a group-by produces.
func (s TableStats) GroupEstimate(g *expr.GroupBy) int64 {
	if g == nil || len(g.GroupCols) == 0 {
		return 1
	}
	est := int64(1)
	for _, c := range g.GroupCols {
		d := int64(100) // default per-column cardinality
		if c < len(s.Distinct) && s.Distinct[c] > 0 {
			d = s.Distinct[c]
		}
		if est > s.Rows/max64(d, 1) {
			est = s.Rows
		} else {
			est *= d
		}
		if est >= s.Rows {
			return s.Rows
		}
	}
	return est
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Default selectivities where statistics cannot decide.
const (
	defaultEqSel    = 0.1
	defaultRangeSel = 1.0 / 3.0
	defaultLikeSel  = 0.1
)

// EstimateSelectivity predicts the fraction of rows a predicate keeps,
// with the standard textbook heuristics refined by available statistics.
func EstimateSelectivity(p expr.Predicate, s TableStats) float64 {
	switch t := p.(type) {
	case nil:
		return 1
	case *expr.Cmp:
		return cmpSelectivity(t, s)
	case *expr.Between:
		if t.Col < len(s.IntBounds) && s.IntBounds[t.Col] && s.MaxInt[t.Col] > s.MinInt[t.Col] {
			span := float64(s.MaxInt[t.Col]-s.MinInt[t.Col]) + 1
			width := float64(t.Hi-t.Lo) + 1
			if width <= 0 {
				return 0
			}
			return clamp01(width / span)
		}
		return defaultRangeSel
	case *expr.Like:
		return defaultLikeSel
	case *expr.In:
		// Sum of point selectivities, bounded by 1.
		eq := defaultEqSel
		if t.Col < len(s.Distinct) && s.Distinct[t.Col] > 0 {
			eq = 1 / float64(s.Distinct[t.Col])
		}
		return clamp01(float64(len(t.Vals)) * eq)
	case *expr.And:
		sel := 1.0
		for _, sub := range t.Preds {
			sel *= EstimateSelectivity(sub, s)
		}
		return sel
	case *expr.Or:
		keep := 1.0
		for _, sub := range t.Preds {
			keep *= 1 - EstimateSelectivity(sub, s)
		}
		return 1 - keep
	case *expr.Not:
		return 1 - EstimateSelectivity(t.Pred, s)
	}
	return defaultRangeSel
}

func cmpSelectivity(c *expr.Cmp, s TableStats) float64 {
	eq := defaultEqSel
	if c.Col < len(s.Distinct) && s.Distinct[c.Col] > 0 {
		eq = 1 / float64(s.Distinct[c.Col])
	}
	switch c.Op {
	case expr.Eq:
		return eq
	case expr.Ne:
		return 1 - eq
	}
	// Range comparison: use bounds when the column is an int with known
	// min/max and the constant is an int.
	if c.Val.Type == columnar.Int64 && c.Col < len(s.IntBounds) && s.IntBounds[c.Col] && s.MaxInt[c.Col] > s.MinInt[c.Col] {
		lo, hi := float64(s.MinInt[c.Col]), float64(s.MaxInt[c.Col])
		v := float64(c.Val.I)
		frac := (v - lo) / (hi - lo)
		switch c.Op {
		case expr.Lt, expr.Le:
			return clamp01(frac)
		case expr.Gt, expr.Ge:
			return clamp01(1 - frac)
		}
	}
	return defaultRangeSel
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
