package core
