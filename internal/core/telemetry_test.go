package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs/metrics"
	"repro/internal/plan"
	"repro/internal/workload"
)

func telemetryQuery(cfg workload.LineitemConfig) *plan.Query {
	return plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.1)).
		WithGroupBy(workload.PricingSummary())
}

func TestTenantContext(t *testing.T) {
	if got := TenantFrom(nil); got != DefaultTenant { //nolint:staticcheck // nil ctx is the documented off state
		t.Fatalf("TenantFrom(nil) = %q, want %q", got, DefaultTenant)
	}
	if got := TenantFrom(context.Background()); got != DefaultTenant {
		t.Fatalf("TenantFrom(background) = %q, want %q", got, DefaultTenant)
	}
	ctx := WithTenant(context.Background(), "alpha")
	if got := TenantFrom(ctx); got != "alpha" {
		t.Fatalf("TenantFrom = %q, want alpha", got)
	}
	// Empty tenant is a no-op tag, not an empty label.
	if got := TenantFrom(WithTenant(context.Background(), "")); got != DefaultTenant {
		t.Fatalf("TenantFrom(empty tag) = %q, want %q", got, DefaultTenant)
	}
}

// TestPublishAttribution checks the engine-level invariants the registry
// promises: per-tenant counter sums reproduce fleet totals exactly, the
// engine label separates the engines, and query latency lands on both
// the histogram and the SLO tracker.
func TestPublishAttribution(t *testing.T) {
	df, vo, cfg := newEngines(t)
	reg := metrics.New()
	df.SetMetrics(reg)
	vo.SetMetrics(reg)
	slo := metrics.NewSLOTracker(time.Second, 0.99)
	df.SetSLO(slo, 0)

	q := telemetryQuery(cfg)
	tenants := []string{"alpha", "beta", "alpha", DefaultTenant}
	for _, tenant := range tenants {
		if _, err := df.Execute(WithTenant(context.Background(), tenant), q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := vo.Execute(WithTenant(context.Background(), "beta"), q); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	total := int64(len(tenants)) + 1
	if got := snap.Counters["fleet.queries"]; got != total {
		t.Fatalf("fleet.queries = %d, want %d", got, total)
	}
	if got := snap.Counters[metrics.Labels("engine.queries", "engine", "dataflow")]; got != int64(len(tenants)) {
		t.Fatalf("engine.queries{dataflow} = %d, want %d", got, len(tenants))
	}
	if got := snap.Counters[metrics.Labels("engine.queries", "engine", "volcano")]; got != 1 {
		t.Fatalf("engine.queries{volcano} = %d, want 1", got)
	}
	for tenant, want := range map[string]int64{"alpha": 2, "beta": 2, DefaultTenant: 1} {
		if got := snap.Counters[metrics.Labels("tenant.queries", "tenant", tenant)]; got != want {
			t.Fatalf("tenant.queries{%s} = %d, want %d", tenant, got, want)
		}
	}
	// Exactness: summing every tenant series reproduces the fleet series.
	for _, series := range []string{"queries", "busy.vns", "bytes"} {
		var sum int64
		for _, tenant := range []string{"alpha", "beta", DefaultTenant} {
			sum += snap.Counters[metrics.Labels("tenant."+series, "tenant", tenant)]
		}
		if fleet := snap.Counters["fleet."+series]; sum != fleet {
			t.Fatalf("tenant %s sum %d != fleet %d", series, sum, fleet)
		}
	}
	if got := reg.Histogram("query.wall.ns").Count(); got != total {
		t.Fatalf("query.wall.ns count = %d, want %d", got, total)
	}
	if good, bad := slo.Window(); good+bad != int64(len(tenants)) {
		t.Fatalf("SLO observed %d, want %d (dataflow only)", good+bad, len(tenants))
	}
}

// TestPublisherRebuildsOnRegistrySwap covers the cache path: assigning
// the Metrics field directly (without SetMetrics) must still publish to
// the new registry, and clearing it must stop publishing.
func TestPublisherRebuildsOnRegistrySwap(t *testing.T) {
	df, _, cfg := newEngines(t)
	q := telemetryQuery(cfg)

	first := metrics.New()
	df.Metrics = first
	if _, err := df.Execute(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	second := metrics.New()
	df.Metrics = second
	if _, err := df.Execute(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if got := first.Counter("fleet.queries").Value(); got != 1 {
		t.Fatalf("first registry fleet.queries = %d, want 1", got)
	}
	if got := second.Counter("fleet.queries").Value(); got != 1 {
		t.Fatalf("second registry fleet.queries = %d, want 1", got)
	}
	df.Metrics = nil
	if _, err := df.Execute(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if got := second.Counter("fleet.queries").Value(); got != 1 {
		t.Fatalf("nil registry still published: fleet.queries = %d, want 1", got)
	}
}
