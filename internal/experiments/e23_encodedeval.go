package experiments

import (
	"context"
	"fmt"

	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
)

// e23SegmentRows matches E22: small segments, many morsels.
const e23SegmentRows = 8192

// E23Selectivities is the selectivity sweep both arms run at.
var E23Selectivities = []float64{0.01, 0.1, 0.5, 1.0}

// e23Schema: one filter column per encoding under test, plus a
// bit-packed payload column that every query projects (so the gather
// decode has real work at every point).
//
//	key     BIGINT  uniform [0, 10000)      -> bit-packed
//	tag     VARCHAR 100 distinct values     -> dictionary
//	price   DOUBLE  uniform [0, 1000)       -> plain
//	payload BIGINT  uniform [0, 1<<20)      -> bit-packed
const (
	e23Key = iota
	e23Tag
	e23Price
	e23Payload
)

const (
	e23KeyDomain  = 10000
	e23TagDomain  = 100
	e23PriceScale = 1000.0
)

func e23Schema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "key", Type: columnar.Int64},
		columnar.Field{Name: "tag", Type: columnar.String},
		columnar.Field{Name: "price", Type: columnar.Float64},
		columnar.Field{Name: "payload", Type: columnar.Int64},
	)
}

func e23Gen(rows int) *columnar.Batch {
	rng := sim.NewRNG(23)
	b := columnar.NewBatch(e23Schema(), rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(
			columnar.IntValue(rng.Int63n(e23KeyDomain)),
			columnar.StringValue(fmt.Sprintf("tag-%02d", rng.Int63n(e23TagDomain))),
			columnar.FloatValue(float64(rng.Int63n(1000000))/1000000*e23PriceScale),
			columnar.IntValue(rng.Int63n(1<<20)),
		)
	}
	return b
}

// e23Filter builds a predicate on the encoding-under-test's column that
// keeps approximately frac of the rows.
func e23Filter(encoding string, frac float64) expr.Predicate {
	switch encoding {
	case "bitpacked":
		hi := int64(float64(e23KeyDomain)*frac) - 1
		if hi < 0 {
			hi = 0
		}
		return expr.NewBetween(e23Key, 0, hi)
	case "dict":
		k := int(float64(e23TagDomain)*frac + 0.5)
		if k < 1 {
			k = 1
		}
		vals := make([]columnar.Value, k)
		for i := range vals {
			vals[i] = columnar.StringValue(fmt.Sprintf("tag-%02d", i))
		}
		return expr.NewIn(e23Tag, vals...)
	case "plain":
		return expr.NewCmp(e23Price, expr.Lt, columnar.FloatValue(e23PriceScale*frac))
	}
	panic("experiments: unknown E23 encoding " + encoding)
}

// E23Encodings is the encoding sweep: which codec the filter column uses.
var E23Encodings = []string{"bitpacked", "dict", "plain"}

// E23Point is one sweep cell: one encoding, one selectivity, both arms.
type E23Point struct {
	Encoding    string
	Selectivity float64
	Rows        int64

	EagerProcBusy   sim.VTime
	EncodedProcBusy sim.VTime
	EagerSim        sim.VTime
	EncodedSim      sim.VTime

	ShippedBytes sim.Bytes
	MediaBytes   sim.Bytes
	SavedBytes   sim.Bytes // decode bytes the encoded arm avoided
	EncodedSegs  int64

	// ProcSpeedup is eager / encoded in-storage busy time.
	ProcSpeedup float64
}

// E23Result carries the sweep for assertions.
type E23Result struct {
	Table  *Table
	Points []E23Point
}

// E23EncodedEval measures decode-cost elimination: the same filtered
// projection runs with eager decode-then-filter and with encoded
// predicate evaluation plus late materialization, across a selectivity
// sweep on three filter-column codecs (bit-packed ints, dictionary
// strings, plain floats). Both arms run the identical plan shape
// (filter pushed to the storage processor); only the execution strategy
// differs. Rows, shipped bytes and media bytes must be identical at
// every point — encoded evaluation changes where decode work happens,
// never what the query answers — while the storage processor's busy
// time drops roughly in proportion to the rows that never get decoded.
func E23EncodedEval(rows int) (*E23Result, error) {
	data := e23Gen(rows)
	res := &E23Result{
		Table: &Table{
			ID:    "E23",
			Title: "Decode-cost elimination: encoded predicate eval + late materialization vs eager decode",
			Header: []string{"encoding", "sel", "rows", "proc busy eager", "proc busy encoded",
				"speedup", "simtime eager", "simtime encoded", "saved decode bytes"},
			Notes: "both arms run the same storage-pushdown plan; the encoded arm filters on " +
				"encoded columns and gather-decodes survivors only. rows, shipped bytes and " +
				"media bytes are identical at every sweep point; only decode busy time moves",
		},
	}
	for _, enc := range E23Encodings {
		for _, sel := range E23Selectivities {
			q := plan.NewQuery("t").
				WithFilter(e23Filter(enc, sel)).
				WithProjection(e23Payload, e23Price)
			eager, err := e23Run(q, data, true)
			if err != nil {
				return nil, err
			}
			encoded, err := e23Run(q, data, false)
			if err != nil {
				return nil, err
			}
			if eager.rows != encoded.rows {
				return nil, fmt.Errorf("experiments: E23 %s sel=%g rows differ: eager %d, encoded %d",
					enc, sel, eager.rows, encoded.rows)
			}
			if eager.shipped != encoded.shipped || eager.media != encoded.media {
				return nil, fmt.Errorf("experiments: E23 %s sel=%g bytes differ: shipped %v/%v media %v/%v",
					enc, sel, eager.shipped, encoded.shipped, eager.media, encoded.media)
			}
			pt := E23Point{
				Encoding:        enc,
				Selectivity:     sel,
				Rows:            eager.rows,
				EagerProcBusy:   eager.procBusy,
				EncodedProcBusy: encoded.procBusy,
				EagerSim:        eager.simTime,
				EncodedSim:      encoded.simTime,
				ShippedBytes:    eager.shipped,
				MediaBytes:      eager.media,
				SavedBytes:      encoded.saved,
				EncodedSegs:     encoded.encSegs,
				ProcSpeedup:     float64(eager.procBusy) / float64(encoded.procBusy),
			}
			res.Points = append(res.Points, pt)
			res.Table.EncodedEval = true
			res.Table.DecodedBytesSaved += int64(pt.SavedBytes)
			res.Table.AddRow(enc, f(sel), d(pt.Rows), pt.EagerProcBusy.String(),
				pt.EncodedProcBusy.String(), f(pt.ProcSpeedup),
				pt.EagerSim.String(), pt.EncodedSim.String(), d(int64(pt.SavedBytes)))
			res.Table.SetMetric(fmt.Sprintf("%s_speedup_sel%g", enc, sel), pt.ProcSpeedup)
		}
	}
	return res, nil
}

type e23Arm struct {
	rows     int64
	shipped  sim.Bytes
	media    sim.Bytes
	saved    sim.Bytes
	encSegs  int64
	procBusy sim.VTime
	simTime  sim.VTime
}

// e23Run executes the query on a fresh engine, forcing the encoded
// storage-pushdown variant; eager flips the engine's EagerDecode knob so
// the identical plan runs with decode-then-filter.
func e23Run(q *plan.Query, data *columnar.Batch, eager bool) (e23Arm, error) {
	var arm e23Arm
	df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	df.EagerDecode = eager
	df.Storage.SegmentRows = e23SegmentRows
	if err := df.CreateTable("t", e23Schema()); err != nil {
		return arm, err
	}
	if err := df.Load("t", data); err != nil {
		return arm, err
	}
	variants, err := df.Plan(q, 0)
	if err != nil {
		return arm, err
	}
	var ph *plan.Physical
	for _, v := range variants {
		if v.EncodedEval {
			ph = v
			break
		}
	}
	if ph == nil {
		return arm, fmt.Errorf("experiments: E23 found no encoded-eval variant for %s", q)
	}
	res, err := df.ExecutePlan(context.Background(), ph)
	if err != nil {
		return arm, err
	}
	arm.rows = res.Rows()
	arm.shipped = res.Stats.Scan.ShippedBytes
	arm.media = res.Stats.Scan.MediaBytes
	arm.saved = res.Stats.Scan.DecodedBytesSaved
	arm.encSegs = res.Stats.Scan.EncodedEvalSegments
	arm.procBusy = res.Stats.DeviceBusy[fabric.DevStorageProc]
	arm.simTime = res.Stats.SimTime
	return arm, nil
}
