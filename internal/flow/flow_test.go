package flow

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/sim"
)

var intSchema = columnar.NewSchema(columnar.Field{Name: "v", Type: columnar.Int64})

func intBatch(vals ...int64) *columnar.Batch {
	return columnar.BatchOf(intSchema, columnar.FromInt64s(vals))
}

// passStage forwards batches unchanged.
type passStage struct{ name string }

func (s *passStage) Name() string { return s.name }
func (s *passStage) Process(b *columnar.Batch, emit Emit) error {
	return emit(b)
}
func (s *passStage) Flush(Emit) error { return nil }

// doubleStage multiplies every value by two.
type doubleStage struct{}

func (s *doubleStage) Name() string { return "double" }
func (s *doubleStage) Process(b *columnar.Batch, emit Emit) error {
	vals := b.Col(0).Int64s()
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = v * 2
	}
	return emit(intBatch(out...))
}
func (s *doubleStage) Flush(Emit) error { return nil }

// sumStage retains a running sum and emits it at flush.
type sumStage struct{ sum int64 }

func (s *sumStage) Name() string { return "sum" }
func (s *sumStage) Process(b *columnar.Batch, emit Emit) error {
	for _, v := range b.Col(0).Int64s() {
		s.sum += v
	}
	return nil
}
func (s *sumStage) Flush(emit Emit) error { return emit(intBatch(s.sum)) }

// failStage errors on the nth batch.
type failStage struct {
	n    int
	seen int
}

func (s *failStage) Name() string { return "fail" }
func (s *failStage) Process(b *columnar.Batch, emit Emit) error {
	s.seen++
	if s.seen >= s.n {
		return errors.New("stage exploded")
	}
	return emit(b)
}
func (s *failStage) Flush(Emit) error { return nil }

func nBatchSource(n, rowsPer int) Source {
	return func(emit Emit) error {
		for i := 0; i < n; i++ {
			vals := make([]int64, rowsPer)
			for j := range vals {
				vals[j] = int64(i*rowsPer + j)
			}
			if err := emit(intBatch(vals...)); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestPipelineSourceOnly(t *testing.T) {
	p := &Pipeline{Name: "src", Source: nBatchSource(3, 10)}
	var rows int64
	res, err := p.Run(context.Background(), func(b *columnar.Batch) error {
		rows += int64(b.NumRows())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 30 || res.SinkRows != 30 || res.SinkBatches != 3 {
		t.Errorf("rows=%d res=%+v", rows, res)
	}
}

func TestPipelineStagesTransform(t *testing.T) {
	p := &Pipeline{
		Name:   "xform",
		Source: nBatchSource(4, 5),
		Stages: []Placed{
			{Stage: &doubleStage{}},
			{Stage: &sumStage{}},
		},
	}
	var got []int64
	res, err := p.Run(context.Background(), func(b *columnar.Batch) error {
		got = append(got, b.Col(0).Int64s()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// sum(0..19)*2 = 380, emitted as a single flush batch.
	if len(got) != 1 || got[0] != 380 {
		t.Fatalf("sink = %v, want [380]", got)
	}
	if res.BatchesIn[0] != 4 || res.BatchesOut[0] != 4 {
		t.Errorf("stage0 in/out = %d/%d", res.BatchesIn[0], res.BatchesOut[0])
	}
	if res.BatchesIn[1] != 4 || res.BatchesOut[1] != 1 {
		t.Errorf("stage1 in/out = %d/%d", res.BatchesIn[1], res.BatchesOut[1])
	}
}

func TestPipelineChargesDevicesAndLinks(t *testing.T) {
	dev := fabric.NewSmartNIC("nic", sim.GbitPerSec(100))
	link := &fabric.Link{Name: "wire", A: "a", B: "b", Bandwidth: sim.GBPerSec, Latency: sim.Microsecond}
	p := &Pipeline{
		Name:   "charged",
		Source: nBatchSource(10, 100),
		Stages: []Placed{
			{Stage: &passStage{name: "nic-pass"}, Device: dev, Op: fabric.OpFilter, ChargeInput: true},
		},
		Paths: [][]*fabric.Link{{link}},
	}
	if _, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	wantBytes := sim.Bytes(10 * 100 * 8)
	if dev.Meter.Bytes() != wantBytes {
		t.Errorf("device bytes = %v, want %v", dev.Meter.Bytes(), wantBytes)
	}
	if dev.Meter.Busy() <= fabric.KernelSetupAcc {
		t.Error("device busy time missing stream cost")
	}
	if link.Meter.Bytes() != wantBytes {
		t.Errorf("link bytes = %v, want %v", link.Meter.Bytes(), wantBytes)
	}
	if link.Meter.Messages() == 0 {
		t.Error("no credit messages charged to link")
	}
}

func TestPipelineErrorPropagates(t *testing.T) {
	p := &Pipeline{
		Name:   "failing",
		Source: nBatchSource(100, 10),
		Stages: []Placed{
			{Stage: &passStage{name: "p1"}},
			{Stage: &failStage{n: 3}},
			{Stage: &passStage{name: "p2"}},
		},
		Depth: 2,
	}
	_, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
	if err == nil || err.Error() != "stage exploded" {
		t.Fatalf("err = %v, want stage exploded", err)
	}
}

func TestPipelineSourceErrorPropagates(t *testing.T) {
	p := &Pipeline{
		Name: "srcfail",
		Source: func(emit Emit) error {
			if err := emit(intBatch(1)); err != nil {
				return err
			}
			return errors.New("source broke")
		},
		Stages: []Placed{{Stage: &passStage{name: "p"}}},
	}
	_, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
	if err == nil || err.Error() != "source broke" {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelineSinkErrorPropagates(t *testing.T) {
	p := &Pipeline{
		Name:   "sinkfail",
		Source: nBatchSource(5, 1),
		Stages: []Placed{{Stage: &passStage{name: "p"}}},
	}
	_, err := p.Run(context.Background(), func(*columnar.Batch) error { return errors.New("sink full") })
	if err == nil || err.Error() != "sink full" {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelineValidation(t *testing.T) {
	p := &Pipeline{Name: "nosrc"}
	if _, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil }); err == nil {
		t.Error("pipeline without source ran")
	}
	p2 := &Pipeline{
		Name:   "badpaths",
		Source: nBatchSource(1, 1),
		Stages: []Placed{{Stage: &passStage{name: "s"}}},
		Paths:  [][]*fabric.Link{nil, nil},
	}
	if _, err := p2.Run(context.Background(), func(*columnar.Batch) error { return nil }); err == nil {
		t.Error("mismatched Paths accepted")
	}
}

func TestCreditFlowBatching(t *testing.T) {
	// With depth 16 and credit batch 8, credits return ~1 message per 8
	// data messages.
	p := &Pipeline{
		Name:        "credits",
		Source:      nBatchSource(64, 1),
		Stages:      []Placed{{Stage: &passStage{name: "p"}}},
		Depth:       16,
		CreditBatch: 8,
	}
	res, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Ports[0]
	if ps.DataMessages != 64 {
		t.Fatalf("data messages = %d, want 64", ps.DataMessages)
	}
	if ps.CreditMessages > ps.DataMessages/4 {
		t.Errorf("credit messages = %d for %d data; batching ineffective", ps.CreditMessages, ps.DataMessages)
	}
	if ps.CreditMessages == 0 {
		t.Error("no credit messages at all")
	}
}

func TestBackpressureBoundsInFlight(t *testing.T) {
	// A slow consumer with depth 2: the source must never run more than
	// depth+1 batches ahead.
	var produced, consumed atomic.Int64
	var maxLead int64
	src := func(emit Emit) error {
		for i := 0; i < 50; i++ {
			if err := emit(intBatch(int64(i))); err != nil {
				return err
			}
			lead := produced.Add(1) - consumed.Load()
			if lead > maxLead {
				maxLead = lead
			}
		}
		return nil
	}
	slow := func(b *columnar.Batch) error {
		consumed.Add(1)
		return nil
	}
	p := &Pipeline{
		Name:   "backpressure",
		Source: src,
		Stages: []Placed{{Stage: &passStage{name: "p"}}},
		Depth:  2,
	}
	if _, err := p.Run(context.Background(), slow); err != nil {
		t.Fatal(err)
	}
	// Allowed in flight: port queue (2) + credit slack (2) + one in each
	// of the two goroutines' hands.
	if maxLead > 6 {
		t.Errorf("producer ran %d batches ahead with depth 2", maxLead)
	}
}

func TestPortDepthOne(t *testing.T) {
	p := &Pipeline{
		Name:   "depth1",
		Source: nBatchSource(10, 2),
		Stages: []Placed{{Stage: &doubleStage{}}},
		Depth:  1,
	}
	var rows int
	if _, err := p.Run(context.Background(), func(b *columnar.Batch) error { rows += b.NumRows(); return nil }); err != nil {
		t.Fatal(err)
	}
	if rows != 20 {
		t.Errorf("rows = %d, want 20", rows)
	}
}

func TestLongChainManyBatches(t *testing.T) {
	stages := make([]Placed, 6)
	for i := range stages {
		stages[i] = Placed{Stage: &passStage{name: fmt.Sprintf("s%d", i)}}
	}
	p := &Pipeline{Name: "chain", Source: nBatchSource(200, 3), Stages: stages, Depth: 4}
	var rows int
	res, err := p.Run(context.Background(), func(b *columnar.Batch) error { rows += b.NumRows(); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rows != 600 {
		t.Errorf("rows = %d, want 600", rows)
	}
	for i := range stages {
		if res.BatchesIn[i] != 200 {
			t.Errorf("stage %d saw %d batches", i, res.BatchesIn[i])
		}
	}
	if res.TotalDataMessages() != 6*200 {
		t.Errorf("total data messages = %d, want 1200", res.TotalDataMessages())
	}
	if res.TotalCreditMessages() == 0 || res.TotalCreditMessages() > res.TotalDataMessages() {
		t.Errorf("credit messages = %d out of line with %d data", res.TotalCreditMessages(), res.TotalDataMessages())
	}
}

func TestPortStatsString(t *testing.T) {
	done := make(chan struct{})
	port := newPort("x", nil, 4, 2, done, nil)
	if err := port.Send(intBatch(1, 2)); err != nil {
		t.Fatal(err)
	}
	s := port.Stats()
	if s.DataMessages != 1 || s.Bytes != 16 {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}
