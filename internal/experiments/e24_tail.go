package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E24Row is one (severity, arm) cell of the tail-latency sweep.
type E24Row struct {
	Severity float64
	Hedge    bool // gray-failure defenses enabled for this arm
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	// Defense activity summed over the cell's trials.
	HedgedReads          int64
	HedgeWins            int64
	SpecMorsels          int64
	SpecWins             int64
	ExtraBytes           sim.Bytes // hedge + speculation duplicate media reads
	MediaBytes           sim.Bytes // the logical (winner-only) media payload
	BreakerTrips         int64
	RetryBudgetExhausted int64
	// Speedup99 is the baseline arm's p99 over this arm's p99 at the
	// same severity; 1 for the baseline itself.
	Speedup99 float64
}

// E24Result carries the tail-latency comparison.
type E24Result struct {
	Table *Table
	Rows  []E24Row
}

// E24Options parameterizes the sweep; zero values take the defaults
// below (tests shrink trials and latency to stay fast).
type E24Options struct {
	Severities  []float64     // DegradedDevice latency multipliers; 1 = healthy
	Trials      int           // queries per cell
	BaseLatency time.Duration // per-object-read device latency (real time)
	Workers     int           // morsel-scan worker pool width
	Segments    int           // target segment count for the table
	NoHedge     bool          // run only the baseline arm (dfbench -hedge=false)
}

// e24Seed fixes the fault schedule so magnitudes are reproducible.
const e24Seed = 0xE24

// E24TailLatency measures tail latency under gray failure: one of the
// two storage replicas serves every read Severity times slower than
// healthy (an injected DegradedDevice fault — the device still answers,
// correctly, so nothing errors and nothing fails over), and the network
// hop carries deterministic jitter. The same query then runs with the
// engine's defenses disabled (baseline: every read waits out the slow
// replica) and enabled (health-ranked replica order, hedged reads,
// speculative morsel re-execution, all spending from one retry budget).
// Latencies are wall-clock — injected slowness sleeps real time — so
// p50/p95/p99 report what a client would see. The defenses must buy
// their tail back honestly: every cell's result rows are checked
// against the healthy baseline's, and the duplicate bytes hedges and
// speculation burned are reported next to the win.
func E24TailLatency(rows int, opts E24Options) (*E24Result, error) {
	if len(opts.Severities) == 0 {
		opts.Severities = []float64{1, 4, 16}
	}
	if opts.Trials <= 0 {
		opts.Trials = 8
	}
	if opts.BaseLatency <= 0 {
		// Above the coarsest common timer quantum (~1ms tick kernels),
		// so the injected severity multiplier dominates sleep rounding.
		opts.BaseLatency = 500 * time.Microsecond
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Segments <= 0 {
		opts.Segments = 24
	}

	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.1)).
		WithProjection(workload.LExtendedPrice)
	segRows := rows/opts.Segments + 1

	build := func(severity float64, hedge bool) (*core.DataFlowEngine, error) {
		df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		df.Workers = opts.Workers
		store := df.Storage.Store()
		store.SetReplicas(2)
		store.BaseLatency = opts.BaseLatency
		df.Storage.SegmentRows = segRows
		if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := df.Load("lineitem", data); err != nil {
			return nil, err
		}
		inj := faults.New(e24Seed)
		// Prob 1 draws no randomness: magnitudes are deterministic no
		// matter how goroutines interleave the reads.
		if severity > 1 {
			inj.Arm(faults.Point{Kind: faults.DegradedDevice,
				Target: "store/r0", Prob: 1, Severity: severity})
		}
		inj.Arm(faults.Point{Kind: faults.JitterLink, Prob: 1, Severity: 0.25})
		store.Faults = inj
		if hedge {
			df.EnableResilience(resilience.NewPolicy())
		}
		return df, nil
	}

	res := &E24Result{Table: &Table{
		ID:    "E24",
		Title: "Tail latency under gray failure: hedged reads + speculation vs waiting out the straggler",
		Header: []string{"severity", "hedge", "p50", "p95", "p99",
			"hedged", "speculated", "extra bytes", "p99 x"},
		Notes: "severity = injected latency multiplier on storage replica 0 (1 = healthy); " +
			"latencies are wall-clock; hedged/speculated = launched/won; " +
			"extra bytes = duplicate media reads the defenses burned; " +
			"p99 x = baseline p99 over hedged p99 at the same severity",
		FaultSeed: e24Seed,
	}}

	arms := []bool{false, true}
	if opts.NoHedge {
		arms = []bool{false}
	}
	var expected map[string]int
	baseP99 := make(map[float64]time.Duration)
	for _, severity := range opts.Severities {
		for _, hedge := range arms {
			df, err := build(severity, hedge)
			if err != nil {
				return nil, err
			}
			row := E24Row{Severity: severity, Hedge: hedge}
			lats := make([]time.Duration, 0, opts.Trials)
			// Trial -1 is an unrecorded warmup: production tails are
			// measured with the health tracker warm, not on the very
			// first request after a deploy. Correctness is still checked.
			for trial := -1; trial < opts.Trials; trial++ {
				start := time.Now()
				r, err := df.Execute(context.Background(), q)
				if err != nil {
					return nil, fmt.Errorf("experiments: E24 severity %g hedge=%v trial %d: %w",
						severity, hedge, trial, err)
				}
				elapsed := time.Since(start)
				h := e19Histogram(r)
				if expected == nil {
					expected = h
				} else if !e19SameHist(h, expected) {
					return nil, fmt.Errorf("experiments: E24 severity %g hedge=%v returned wrong rows",
						severity, hedge)
				}
				if trial < 0 {
					continue
				}
				lats = append(lats, elapsed)
				row.HedgedReads += r.Stats.HedgedReads
				row.HedgeWins += r.Stats.HedgeWins
				row.SpecMorsels += r.Stats.SpeculativeMorsels
				row.SpecWins += r.Stats.SpeculativeWins
				row.ExtraBytes += r.Stats.HedgeBytes + r.Stats.SpeculativeBytes
				row.MediaBytes += r.Stats.Scan.MediaBytes
				row.BreakerTrips += r.Stats.BreakerTrips
				row.RetryBudgetExhausted += r.Stats.RetryBudgetExhausted
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			row.P50 = e24Quantile(lats, 0.50)
			row.P95 = e24Quantile(lats, 0.95)
			row.P99 = e24Quantile(lats, 0.99)
			if !hedge {
				baseP99[severity] = row.P99
				row.Speedup99 = 1
			} else if base := baseP99[severity]; base > 0 && row.P99 > 0 {
				row.Speedup99 = float64(base) / float64(row.P99)
			}
			res.Rows = append(res.Rows, row)

			armName := "off"
			if hedge {
				armName = "on"
			}
			speedup := "-"
			if hedge && row.Speedup99 > 0 {
				speedup = f(row.Speedup99)
			}
			res.Table.AddRow(f(severity), armName,
				row.P50.Round(time.Microsecond).String(),
				row.P95.Round(time.Microsecond).String(),
				row.P99.Round(time.Microsecond).String(),
				fmt.Sprintf("%d/%d", row.HedgedReads, row.HedgeWins),
				fmt.Sprintf("%d/%d", row.SpecMorsels, row.SpecWins),
				row.ExtraBytes.String(), speedup)
			res.Table.SetMetric(fmt.Sprintf("p99_%s@%g", armName, severity),
				float64(row.P99)/float64(time.Microsecond))
			if hedge {
				res.Table.SetMetric(fmt.Sprintf("speedup99@%g", severity), row.Speedup99)
				if severity <= 1 && row.MediaBytes > 0 {
					res.Table.SetMetric("extra_bytes_pct@healthy",
						100*float64(row.ExtraBytes)/float64(row.MediaBytes))
				}
				res.Table.HedgedReads += row.HedgedReads
				res.Table.SpeculativeMorsels += row.SpecMorsels
				res.Table.BreakerTrips += row.BreakerTrips
				res.Table.RetryBudgetExhausted += row.RetryBudgetExhausted
			}
		}
	}
	return res, nil
}

// e24Quantile reads the p-quantile from an ascending-sorted sample by
// the nearest-rank method.
func e24Quantile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
