package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
)

// ErrDeviceOffline is surfaced when a pipeline stage is placed on a
// device that has gone offline (lost power, dropped its kernel). The
// engine reacts by re-enumerating placements without the device.
var ErrDeviceOffline = errors.New("fabric: device offline")

// DeviceKind classifies the processing elements of the fabric.
type DeviceKind uint8

// Device kinds, following the paper's inventory of processing
// opportunities along the data path.
const (
	KindCPU        DeviceKind = iota // general-purpose cores (can do everything)
	KindSmartSSD                     // in-storage processor (Section 3)
	KindSmartNIC                     // NIC/DPU bump-in-the-wire (Section 4)
	KindNearMemory                   // near-memory accelerator (Section 5)
	KindSwitch                       // programmable switch
	KindDMA                          // DMA engine (moves, never computes)
	KindMemory                       // plain DRAM module / memory node
	KindStorage                      // plain storage media
)

// String names the kind.
func (k DeviceKind) String() string {
	names := [...]string{
		"cpu", "smart-ssd", "smart-nic", "near-memory", "switch",
		"dma", "memory", "storage",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("DeviceKind(%d)", uint8(k))
}

// Capability maps op classes to the streaming rate at which a device
// executes them. Absence means the device cannot host that op.
type Capability map[OpClass]sim.Rate

// Clone deep-copies the capability table.
func (c Capability) Clone() Capability {
	out := make(Capability, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Device is one processing element. Its meter accumulates bytes processed
// and virtual busy time; experiments read the meters to report who did
// the work.
type Device struct {
	Name string
	Kind DeviceKind
	Caps Capability
	// KernelSetup is the fixed virtual-time cost of installing a kernel
	// or programming the device's registers before a stream starts
	// (paper Section 7.2: accelerators are programmed via memory-mapped
	// registers plus installed logic, not an ISA).
	KernelSetup sim.VTime
	// StateBudget bounds the scratch memory available to pipeline stages
	// placed on this device (paper Section 3.3: in-path processing must
	// be mostly stateless). Zero means unbounded (CPUs).
	StateBudget sim.Bytes
	// Parallelism is the number of concurrent processing units the
	// device exposes: cores on a CPU, flash channels behind an SSD
	// processor, packet pipelines on a NIC. Worker pools size themselves
	// by it, and lane-charged work on distinct units overlaps in virtual
	// time. Zero or one means strictly serial.
	Parallelism int
	Meter       sim.Meter

	lanes    laneMeter
	offline  atomic.Bool
	degraded atomic.Bool
}

// SetOffline marks the device dead (true) or restored (false). An
// offline device cannot host pipeline stages: the planner skips it when
// enumerating placements and the flow runtime fails any stage already
// placed on it, triggering engine-level failover. Links still forward
// through it — a dead kernel does not stop the bump-in-the-wire path.
func (d *Device) SetOffline(v bool) { d.offline.Store(v) }

// IsOffline reports whether the device is currently offline.
func (d *Device) IsOffline() bool { return d.offline.Load() }

// SetDegraded marks the device gray-failed (true) or healthy (false): it
// still serves, but its circuit breaker is open or half-open. Unlike
// offline, a degraded device remains a legal placement — the scheduler
// merely scores it down so work prefers healthy variants while probes
// keep testing for recovery.
func (d *Device) SetDegraded(v bool) { d.degraded.Store(v) }

// IsDegraded reports whether the device is currently marked gray-failed.
func (d *Device) IsDegraded() bool { return d.degraded.Load() }

// Can reports whether the device supports the op class.
func (d *Device) Can(op OpClass) bool {
	_, ok := d.Caps[op]
	return ok
}

// RateFor returns the device's streaming rate for op, or 0 if
// unsupported.
func (d *Device) RateFor(op OpClass) sim.Rate { return d.Caps[op] }

// Charge accounts for streaming n bytes through op on this device and
// returns the virtual time it took. Charging an unsupported op is a
// planner bug and panics.
func (d *Device) Charge(op OpClass, n sim.Bytes) sim.VTime {
	rate, ok := d.Caps[op]
	if !ok {
		panic(fmt.Sprintf("fabric: device %s (%s) cannot execute %s", d.Name, d.Kind, op))
	}
	t := rate.TimeFor(n)
	d.Meter.Add(sim.Snapshot{Bytes: n, Busy: t, Ops: 1})
	return t
}

// Units reports the device's effective parallelism, never less than 1.
func (d *Device) Units() int {
	if d.Parallelism > 1 {
		return d.Parallelism
	}
	return 1
}

// ChargeLane is Charge executed on one of the device's parallel units.
// The main meter receives the identical charge — totals are unchanged —
// and the lane additionally accumulates the busy time so engines can
// compute an overlapped makespan (see EffectiveBusy). Lanes are
// positional (callers derive them from sequence numbers, not goroutine
// identity) so seeded runs meter deterministically; lane indexes wrap
// at Units().
func (d *Device) ChargeLane(op OpClass, n sim.Bytes, lane int) sim.VTime {
	t := d.Charge(op, n)
	if lane < 0 {
		lane = -lane
	}
	d.lanes.add(lane%d.Units(), t)
	return t
}

// LaneBusy returns a consistent snapshot of per-lane busy time. Lanes
// only exist once ChargeLane has touched them; a strictly serial
// history returns an empty slice.
func (d *Device) LaneBusy() []sim.VTime { return d.lanes.snapshot() }

// ResetLanes clears lane accounting (the main meter is reset
// separately via Meter.Reset).
func (d *Device) ResetLanes() { d.lanes.reset() }

// ChargeSetup accounts for one kernel installation on the device and
// returns its cost.
func (d *Device) ChargeSetup() sim.VTime {
	d.Meter.AddBusy(d.KernelSetup)
	return d.KernelSetup
}

// CapabilityList returns the supported op classes sorted by name, for
// stable display.
func (d *Device) CapabilityList() []OpClass {
	ops := make([]OpClass, 0, len(d.Caps))
	for op := range d.Caps {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}

// String renders the device as "name(kind)".
func (d *Device) String() string { return fmt.Sprintf("%s(%s)", d.Name, d.Kind) }
