// Command dfquery loads a generated lineitem table and runs one query on
// the chosen engine, printing the plan variants, the result, and the
// execution stats — a quick way to see where the optimizer places
// operators along the data path and what that does to data movement.
//
// Usage:
//
//	dfquery [-engine dataflow|volcano|both] [-rows N] [-query pricing|filter|count|parts]
//	        [-sql "SELECT ..."] [-variant name] [-fabric smart|legacy] [-explain]
//	        [-analyze] [-trace FILE] [-metrics]
//
// With -sql, the statement is parsed against the lineitem schema
// (columns l_orderkey, l_partkey, l_suppkey, l_quantity,
// l_extendedprice, l_discount, l_shipdate, l_returnflag, l_comment),
// e.g.:
//
//	dfquery -sql "SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem
//	              WHERE l_shipdate BETWEEN 0 AND 500 GROUP BY l_returnflag"
//
// -analyze (or an EXPLAIN ANALYZE prefix on the -sql statement) records
// a virtual-time trace during execution and prints a per-device span
// timeline plus the concurrency factor — the mean number of
// simultaneously busy resources — after each engine's stats. -trace FILE
// additionally writes the recorded timelines as a Chrome/Perfetto trace
// (load at ui.perfetto.dev).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// staticCatalog resolves SQL table names before any engine is built.
type staticCatalog struct{}

func (staticCatalog) TableSchema(name string) (*columnar.Schema, error) {
	if name != "lineitem" {
		return nil, fmt.Errorf("unknown table %q (dfquery serves the generated lineitem)", name)
	}
	return workload.LineitemSchema(), nil
}

func buildQuery(name string, cfg workload.LineitemConfig) (*plan.Query, error) {
	switch name {
	case "pricing":
		return plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.1)).
			WithGroupBy(workload.PricingSummary()), nil
	case "filter":
		return plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.01)).
			WithProjection(workload.LOrderKey, workload.LExtendedPrice), nil
	case "count":
		return plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.25)).
			WithCount(), nil
	case "parts":
		return plan.NewQuery("lineitem").WithGroupBy(workload.PartVolume()).
			WithOrderBy(1).WithLimit(10), nil
	}
	return nil, fmt.Errorf("unknown query %q (want pricing|filter|count|parts)", name)
}

// stripExplainAnalyze removes a leading EXPLAIN ANALYZE (case-insensitive)
// from sql, reporting whether it was present.
func stripExplainAnalyze(sql string) (string, bool) {
	trimmed := strings.TrimSpace(sql)
	fields := strings.Fields(trimmed)
	if len(fields) >= 2 &&
		strings.EqualFold(fields[0], "EXPLAIN") && strings.EqualFold(fields[1], "ANALYZE") {
		rest := trimmed[len(fields[0]):]
		rest = strings.TrimSpace(rest)
		rest = strings.TrimSpace(rest[len(fields[1]):])
		return rest, true
	}
	return sql, false
}

// printTimeline renders a recorded trace as a per-device Gantt chart plus
// the headline concurrency numbers.
func printTimeline(tr *obs.Trace) {
	if tr == nil {
		return
	}
	if err := tr.WriteGantt(os.Stdout, 64); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %s, resource busy %s, concurrency %.2f (mean active resources)\n",
		tr.Makespan(), tr.WorkBusy(), tr.ConcurrencyFactor())
}

func main() {
	engine := flag.String("engine", "both", "dataflow, volcano or both")
	rows := flag.Int("rows", 50000, "lineitem rows to generate")
	queryName := flag.String("query", "pricing", "query template: pricing|filter|count|parts")
	sqlText := flag.String("sql", "", "SQL SELECT over the lineitem table (overrides -query)")
	variant := flag.String("variant", "", "force a dataflow plan variant (e.g. cpu-only)")
	fabricKind := flag.String("fabric", "smart", "smart or legacy cluster for the dataflow engine")
	explain := flag.Bool("explain", false, "print all plan variants before executing")
	analyze := flag.Bool("analyze", false, "EXPLAIN ANALYZE: trace execution and print per-device timelines")
	tracePath := flag.String("trace", "", "write the recorded timelines as a Perfetto trace to FILE (implies -analyze)")
	maxRows := flag.Int("maxrows", 10, "result rows to print")
	showMetrics := flag.Bool("metrics", false, "collect fleet metrics during execution and print the registry after the run")
	flag.Parse()

	var reg *metrics.Registry
	if *showMetrics {
		reg = metrics.New()
	}

	cfg := workload.DefaultLineitemConfig(*rows)
	data := workload.GenLineitem(cfg)
	sql, hasAnalyze := stripExplainAnalyze(*sqlText)
	tracing := *analyze || hasAnalyze || *tracePath != ""
	var q *plan.Query
	var err error
	if sql != "" {
		q, err = sqlparse.Parse(sql, staticCatalog{})
	} else {
		q, err = buildQuery(*queryName, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\n", q)
	var procs []obs.Process

	if *engine == "dataflow" || *engine == "both" {
		ccfg := fabric.DefaultClusterConfig()
		if *fabricKind == "legacy" {
			ccfg = fabric.LegacyClusterConfig()
		}
		eng := core.NewDataFlowEngine(fabric.NewCluster(ccfg))
		eng.Tracing = tracing
		if reg != nil {
			eng.SetMetrics(reg)
		}
		must(eng.CreateTable("lineitem", workload.LineitemSchema()))
		must(eng.Load("lineitem", data))

		variants, err := eng.Plan(q, 0)
		if err != nil {
			log.Fatal(err)
		}
		if *explain {
			for _, v := range variants {
				fmt.Println(v.Explain())
			}
		}
		chosen := variants[0]
		if *variant != "" {
			chosen = nil
			for _, v := range variants {
				if v.Variant == *variant {
					chosen = v
				}
			}
			if chosen == nil {
				log.Fatalf("variant %q not produced; available: %v", *variant, variantNames(variants))
			}
		}
		res, err := eng.ExecutePlan(context.Background(), chosen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- dataflow (%s fabric, variant %s) ---\n", *fabricKind, chosen.Variant)
		fmt.Print(res.Format(*maxRows))
		fmt.Println(res.Stats.String())
		printTimeline(res.Trace)
		if res.Trace != nil {
			procs = append(procs, obs.Process{Name: "dataflow", Trace: res.Trace})
		}
	}

	if *engine == "volcano" || *engine == "both" {
		eng := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 512*sim.MB)
		eng.Tracing = tracing
		if reg != nil {
			eng.SetMetrics(reg)
		}
		must(eng.CreateTable("lineitem", workload.LineitemSchema()))
		must(eng.Load("lineitem", data))
		res, err := eng.Execute(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("--- volcano (legacy fabric, buffer pool) ---")
		fmt.Print(res.Format(*maxRows))
		fmt.Println(res.Stats.String())
		printTimeline(res.Trace)
		if res.Trace != nil {
			procs = append(procs, obs.Process{Name: "volcano", Trace: res.Trace})
		}
	}

	if reg != nil {
		// Both engines shared the registry, so the fleet totals cover the
		// whole run; the engine.queries{engine=...} series separates them.
		fmt.Println("--- fleet metrics ---")
		if err := reg.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WritePerfetto(f, procs...); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Perfetto trace to %s\n", *tracePath)
	}
}

func variantNames(vs []*plan.Physical) []string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Variant
	}
	return names
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
