package flow

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/sim"
)

// tracedPipeline builds a two-stage pipeline on two distinct devices
// joined by a link, with tracing enabled when tr is non-nil.
func tracedPipeline(tr *obs.Trace) *Pipeline {
	devA := fabric.NewSmartNIC("nicA", sim.GbitPerSec(100))
	devB := fabric.NewSmartNIC("nicB", sim.GbitPerSec(100))
	link := &fabric.Link{Name: "wire", A: "nicA", B: "nicB", Bandwidth: sim.GBPerSec, Latency: sim.Microsecond}
	return &Pipeline{
		Name:   "traced",
		Source: nBatchSource(16, 512),
		Stages: []Placed{
			{Stage: &passStage{name: "up"}, Device: devA, Op: fabric.OpFilter, ChargeInput: true},
			{Stage: &passStage{name: "down"}, Device: devB, Op: fabric.OpFilter, ChargeInput: true},
		},
		Paths:       [][]*fabric.Link{nil, {link}},
		Trace:       tr,
		SourceTrack: "src",
	}
}

func TestPipelineTraceTimeline(t *testing.T) {
	tr := obs.New()
	if _, err := tracedPipeline(tr).Run(context.Background(), func(*columnar.Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("tracing enabled but no spans recorded")
	}
	var stageA, stageB, xfers, setups int
	for _, s := range spans {
		switch {
		case s.Kind == obs.SpanTransfer:
			xfers++
			if s.Track != "wire" {
				t.Fatalf("transfer span on track %q, want wire", s.Track)
			}
		case s.Kind == obs.SpanSetup:
			setups++
		case s.Track == "nicA":
			stageA++
		case s.Track == "nicB":
			stageB++
		}
	}
	if stageA != 16 || stageB != 16 {
		t.Fatalf("stage spans = %d/%d, want 16 each", stageA, stageB)
	}
	if xfers != 16 {
		t.Fatalf("transfer spans = %d, want 16", xfers)
	}
	if setups != 2 {
		t.Fatalf("setup spans = %d, want 2", setups)
	}
	// Per-track serialization invariant for work spans: on one device,
	// spans never overlap (transfers on link tracks may pipeline).
	byTrack := map[string][]obs.Span{}
	for _, s := range spans {
		if s.Kind != obs.SpanTransfer {
			byTrack[s.Track] = append(byTrack[s.Track], s)
		}
	}
	for trk, ss := range byTrack {
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End {
				t.Fatalf("track %s: spans overlap (%v < %v)", trk, ss[i].Start, ss[i-1].End)
			}
		}
	}
	if len(tr.SeriesList()) == 0 {
		t.Fatal("no per-stage arrival series recorded")
	}
}

func TestPipelineTraceDeterministic(t *testing.T) {
	render := func() string {
		tr := obs.New()
		if _, err := tracedPipeline(tr).Run(context.Background(), func(*columnar.Batch) error { return nil }); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("two identical traced runs produced different trace JSON")
	}
}

func TestPipelineTraceDisabledRecordsNothing(t *testing.T) {
	p := tracedPipeline(nil)
	if _, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// And the same pipeline still works with the nil trace's methods.
	if p.Trace.Enabled() {
		t.Fatal("nil trace enabled")
	}
}

// TestPortHotPathZeroAllocTracingOff guards the zero-allocation-off
// acceptance criterion: with no tape attached, the per-batch port cycle
// (Send, Recv, CreditReturn) must not allocate.
func TestPortHotPathZeroAllocTracingOff(t *testing.T) {
	done := make(chan struct{})
	port := newPort("hot", nil, 8, 4, done, nil)
	b := intBatch(1, 2, 3)
	allocs := testing.AllocsPerRun(200, func() {
		if err := port.Send(b); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := port.Recv(); err != nil || !ok {
			t.Fatal("recv failed")
		}
		port.CreditReturn()
	})
	if allocs != 0 {
		t.Fatalf("port hot path allocates %.1f objects/op with tracing off, want 0", allocs)
	}
}

// BenchmarkPortSendTracingOff is the benchmark form of the zero-alloc
// guard; run with -benchmem to see allocs/op (must be 0).
func BenchmarkPortSendTracingOff(b *testing.B) {
	done := make(chan struct{})
	port := newPort("bench", nil, 8, 4, done, nil)
	batch := intBatch(1, 2, 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := port.Send(batch); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := port.Recv(); err != nil || !ok {
			b.Fatal("recv failed")
		}
		port.CreditReturn()
	}
}
