package expr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/columnar"
)

func sampleBatch() *columnar.Batch {
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "x", Type: columnar.Float64},
		columnar.Field{Name: "s", Type: columnar.String},
		columnar.Field{Name: "b", Type: columnar.Bool},
	)
	b := columnar.NewBatch(schema, 6)
	b.AppendRow(columnar.IntValue(1), columnar.FloatValue(1.5), columnar.StringValue("apple"), columnar.BoolValue(true))
	b.AppendRow(columnar.IntValue(2), columnar.FloatValue(2.5), columnar.StringValue("banana"), columnar.BoolValue(false))
	b.AppendRow(columnar.IntValue(3), columnar.FloatValue(3.5), columnar.StringValue("cherry"), columnar.BoolValue(true))
	b.AppendRow(columnar.IntValue(4), columnar.FloatValue(4.5), columnar.StringValue("grape"), columnar.BoolValue(false))
	b.AppendRow(columnar.NullValue(columnar.Int64), columnar.FloatValue(5.5), columnar.StringValue("pineapple"), columnar.BoolValue(true))
	b.AppendRow(columnar.IntValue(6), columnar.NullValue(columnar.Float64), columnar.NullValue(columnar.String), columnar.NullValue(columnar.Bool))
	return b
}

func selected(sel *columnar.Bitmap) []int { return sel.Indices(nil) }

func TestCmpInt(t *testing.T) {
	b := sampleBatch()
	cases := []struct {
		op   CmpOp
		val  int64
		want []int
	}{
		{Eq, 3, []int{2}},
		{Ne, 3, []int{0, 1, 3, 5}},
		{Lt, 3, []int{0, 1}},
		{Le, 3, []int{0, 1, 2}},
		{Gt, 3, []int{3, 5}},
		{Ge, 3, []int{2, 3, 5}},
	}
	for _, tc := range cases {
		got := selected(NewCmp(0, tc.op, columnar.IntValue(tc.val)).Eval(b))
		if !equalInts(got, tc.want) {
			t.Errorf("k %s %d selected %v, want %v", tc.op, tc.val, got, tc.want)
		}
	}
}

func TestCmpNullNeverMatches(t *testing.T) {
	b := sampleBatch()
	// Row 4 has NULL k: no comparison selects it, not even Ne.
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		sel := NewCmp(0, op, columnar.IntValue(1)).Eval(b)
		if sel.Get(4) {
			t.Errorf("NULL row selected by %s", op)
		}
	}
}

func TestCmpFloatStringBool(t *testing.T) {
	b := sampleBatch()
	if got := selected(NewCmp(1, Gt, columnar.FloatValue(3.0)).Eval(b)); !equalInts(got, []int{2, 3, 4}) {
		t.Errorf("x > 3.0 selected %v", got)
	}
	if got := selected(NewCmp(2, Eq, columnar.StringValue("banana")).Eval(b)); !equalInts(got, []int{1}) {
		t.Errorf("s = banana selected %v", got)
	}
	if got := selected(NewCmp(2, Ge, columnar.StringValue("cherry")).Eval(b)); !equalInts(got, []int{2, 3, 4}) {
		t.Errorf("s >= cherry selected %v", got)
	}
	if got := selected(NewCmp(3, Eq, columnar.BoolValue(true)).Eval(b)); !equalInts(got, []int{0, 2, 4}) {
		t.Errorf("b = true selected %v", got)
	}
	if got := selected(NewCmp(3, Ne, columnar.BoolValue(true)).Eval(b)); !equalInts(got, []int{1, 3}) {
		t.Errorf("b <> true selected %v", got)
	}
	// Ordered comparison on bool never matches.
	if got := selected(NewCmp(3, Lt, columnar.BoolValue(true)).Eval(b)); len(got) != 0 {
		t.Errorf("b < true selected %v, want none", got)
	}
}

func TestBetween(t *testing.T) {
	b := sampleBatch()
	if got := selected(NewBetween(0, 2, 4).Eval(b)); !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("BETWEEN 2 AND 4 selected %v", got)
	}
}

func TestLike(t *testing.T) {
	b := sampleBatch()
	if got := selected(NewLike(2, "apple").Eval(b)); !equalInts(got, []int{0, 4}) {
		t.Errorf("LIKE %%apple%% selected %v", got)
	}
	if got := selected(NewLike(2, "zzz").Eval(b)); len(got) != 0 {
		t.Errorf("LIKE %%zzz%% selected %v", got)
	}
}

func TestBooleanCombinators(t *testing.T) {
	b := sampleBatch()
	ge2 := NewCmp(0, Ge, columnar.IntValue(2))
	le4 := NewCmp(0, Le, columnar.IntValue(4))
	if got := selected(NewAnd(ge2, le4).Eval(b)); !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("AND selected %v", got)
	}
	eq1 := NewCmp(0, Eq, columnar.IntValue(1))
	eq6 := NewCmp(0, Eq, columnar.IntValue(6))
	if got := selected(NewOr(eq1, eq6).Eval(b)); !equalInts(got, []int{0, 5}) {
		t.Errorf("OR selected %v", got)
	}
	if got := selected(NewNot(ge2).Eval(b)); !equalInts(got, []int{0, 4}) {
		// NOT flips the bitmap; the NULL row flips to selected.
		t.Errorf("NOT selected %v", got)
	}
	// Empty AND selects everything.
	if got := NewAnd().Eval(b).Count(); got != 6 {
		t.Errorf("empty AND selected %d rows, want 6", got)
	}
}

func TestPredicateColumnsAndString(t *testing.T) {
	p := NewAnd(NewCmp(0, Eq, columnar.IntValue(1)), NewBetween(2, 1, 5), NewCmp(0, Gt, columnar.IntValue(0)))
	cols := p.Columns()
	if !equalInts(cols, []int{0, 2}) {
		t.Errorf("Columns = %v, want [0 2]", cols)
	}
	if p.String() == "" || NewNot(p).String() == "" || NewOr(p).String() == "" {
		t.Error("empty String()")
	}
}

func TestIntRange(t *testing.T) {
	maxI := int64(math.MaxInt64)
	minI := int64(math.MinInt64)
	cases := []struct {
		p      Predicate
		lo, hi int64
		ok     bool
	}{
		{NewBetween(0, 5, 10), 5, 10, true},
		{NewCmp(0, Eq, columnar.IntValue(7)), 7, 7, true},
		{NewCmp(0, Lt, columnar.IntValue(7)), minI, 6, true},
		{NewCmp(0, Le, columnar.IntValue(7)), minI, 7, true},
		{NewCmp(0, Gt, columnar.IntValue(7)), 8, maxI, true},
		{NewCmp(0, Ge, columnar.IntValue(7)), 7, maxI, true},
		{NewCmp(0, Ne, columnar.IntValue(7)), 0, 0, false},
		{NewCmp(1, Eq, columnar.IntValue(7)), 0, 0, false}, // other column
		{NewAnd(NewCmp(0, Ge, columnar.IntValue(3)), NewCmp(0, Le, columnar.IntValue(9))), 3, 9, true},
		{NewLike(0, "x"), 0, 0, false},
	}
	for i, tc := range cases {
		lo, hi, ok := IntRange(tc.p, 0)
		if ok != tc.ok || (ok && (lo != tc.lo || hi != tc.hi)) {
			t.Errorf("case %d (%s): IntRange = [%d,%d] ok=%v, want [%d,%d] ok=%v",
				i, tc.p, lo, hi, ok, tc.lo, tc.hi, tc.ok)
		}
	}
}

func TestAggStateScalar(t *testing.T) {
	var s AggState
	for _, v := range []int64{5, -2, 9, 0} {
		s.UpdateInt(v)
	}
	if got := s.Result(Count, columnar.Int64); got.I != 4 {
		t.Errorf("COUNT = %v", got)
	}
	if got := s.Result(Sum, columnar.Int64); got.I != 12 {
		t.Errorf("SUM = %v", got)
	}
	if got := s.Result(Min, columnar.Int64); got.I != -2 {
		t.Errorf("MIN = %v", got)
	}
	if got := s.Result(Max, columnar.Int64); got.I != 9 {
		t.Errorf("MAX = %v", got)
	}
	if got := s.Result(Avg, columnar.Float64); got.F != 3.0 {
		t.Errorf("AVG = %v", got)
	}
}

func TestAggStateFloat(t *testing.T) {
	var s AggState
	s.UpdateFloat(1.5)
	s.UpdateFloat(2.5)
	if got := s.Result(Sum, columnar.Float64); got.F != 4.0 {
		t.Errorf("SUM = %v", got)
	}
	if got := s.Result(Min, columnar.Float64); got.F != 1.5 {
		t.Errorf("MIN = %v", got)
	}
}

func TestAggStateEmpty(t *testing.T) {
	var s AggState
	if got := s.Result(Count, columnar.Int64); got.I != 0 || got.Null {
		t.Errorf("empty COUNT = %v, want 0", got)
	}
	if got := s.Result(Sum, columnar.Int64); !got.Null {
		t.Errorf("empty SUM = %v, want NULL", got)
	}
	if got := s.Result(Avg, columnar.Float64); !got.Null {
		t.Errorf("empty AVG = %v, want NULL", got)
	}
}

// Property: merging partial states is equivalent to aggregating the
// concatenated input — the invariant staged pre-aggregation relies on.
func TestAggMergeEquivalenceProperty(t *testing.T) {
	f := func(xs, ys []int16) bool {
		var whole, left, right AggState
		for _, v := range xs {
			whole.UpdateInt(int64(v))
			left.UpdateInt(int64(v))
		}
		for _, v := range ys {
			whole.UpdateInt(int64(v))
			right.UpdateInt(int64(v))
		}
		left.Merge(&right)
		for _, fn := range []AggFunc{Count, Sum, Min, Max, Avg} {
			typ := columnar.Int64
			if fn == Avg {
				typ = columnar.Float64
			}
			if !whole.Result(fn, typ).Equal(left.Result(fn, typ)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggMergeEmptySides(t *testing.T) {
	var empty, full AggState
	full.UpdateInt(5)
	merged := full
	merged.Merge(&empty)
	if merged.Count != 1 || merged.MinI != 5 {
		t.Error("merging empty changed state")
	}
	var dst AggState
	dst.Merge(&full)
	if dst.Count != 1 || dst.MaxI != 5 {
		t.Error("merging into empty lost state")
	}
}

func TestGroupByOutputSchema(t *testing.T) {
	in := columnar.NewSchema(
		columnar.Field{Name: "region", Type: columnar.String},
		columnar.Field{Name: "amount", Type: columnar.Float64},
		columnar.Field{Name: "qty", Type: columnar.Int64},
	)
	g := GroupBy{
		GroupCols: []int{0},
		Aggs: []AggSpec{
			{Func: Count},
			{Func: Sum, Col: 1},
			{Func: Avg, Col: 2},
			{Func: Min, Col: 2},
		},
	}
	out := g.OutputSchema(in)
	wantNames := []string{"region", "count", "sum_amount", "avg_qty", "min_qty"}
	wantTypes := []columnar.Type{columnar.String, columnar.Int64, columnar.Float64, columnar.Float64, columnar.Int64}
	if out.NumFields() != len(wantNames) {
		t.Fatalf("fields = %d, want %d", out.NumFields(), len(wantNames))
	}
	for i := range wantNames {
		if out.Fields[i].Name != wantNames[i] || out.Fields[i].Type != wantTypes[i] {
			t.Errorf("field %d = %v, want %s %v", i, out.Fields[i], wantNames[i], wantTypes[i])
		}
	}
}

func TestAggSpecString(t *testing.T) {
	if (AggSpec{Func: Count}).String() != "COUNT(*)" {
		t.Error("COUNT(*) string wrong")
	}
	if (AggSpec{Func: Sum, Col: 2}).String() != "SUM(col2)" {
		t.Error("SUM string wrong")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
