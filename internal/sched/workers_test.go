package sched

import (
	"context"
	"testing"

	"repro/internal/plan"
)

// Admission reserves one worker slot per placed device per worker, and
// releases return them.
func TestWorkerSlotAccounting(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	s.SetWorkers(4)

	a1, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	devs := variantDevices(a1.Plan)
	if len(devs) == 0 {
		t.Fatal("variant places no devices")
	}
	for _, d := range devs {
		if got := s.DeviceSlots(d.Name); got != 4 {
			t.Errorf("slots on %s = %d, want 4", d.Name, got)
		}
	}
	a2, err := s.Admit(context.Background(), []*plan.Physical{a1.Plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		if got := s.DeviceSlots(d.Name); got != 8 {
			t.Errorf("slots on %s after second admit = %d, want 8", d.Name, got)
		}
	}
	s.Release(a1)
	for _, d := range devs {
		if got := s.DeviceSlots(d.Name); got != 4 {
			t.Errorf("slots on %s after release = %d, want 4", d.Name, got)
		}
	}
	s.Release(a2)
	for _, d := range devs {
		if got := s.DeviceSlots(d.Name); got != 0 {
			t.Errorf("slots on %s after drain = %d, want 0", d.Name, got)
		}
	}
}

// When a node's devices are oversubscribed past their replicated
// units, the worker-slot penalty steers the next admission to an idle
// node even though the loaded variant ranks better.
func TestWorkerSlotPenaltySteers(t *testing.T) {
	_, v0all, v1all := twoNodeVariants(t)
	// The top-ranked variants place work only on the shared storage
	// processor, where slot pressure cannot distinguish the nodes. Pin
	// the nic-offload variants: they place the filter on each node's own
	// NIC, which is what the worker-slot penalty steers between.
	pick := func(vs []*plan.Physical) *plan.Physical {
		for _, v := range vs {
			if v.Variant == "nic-offload" {
				return v
			}
		}
		t.Fatal("no nic-offload variant")
		return nil
	}
	v0 := []*plan.Physical{pick(v0all)}
	v1 := []*plan.Physical{pick(v1all)}
	s := New()
	s.ContentionPenalty = 0 // isolate the worker-slot term
	s.WorkerSlotPenalty = 10
	s.SetWorkers(4)

	var held []*Admission
	for i := 0; i < 3; i++ {
		a, err := s.Admit(context.Background(), v0[:1])
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, a)
	}
	mixed := []*plan.Physical{v0[0], v1[0]}
	a, err := s.Admit(context.Background(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan != v1[0] {
		t.Errorf("scheduler kept oversubscribed node-0 variant")
	}
	for _, h := range held {
		s.Release(h)
	}
	s.Release(a)

	// With the penalty disabled the better-ranked variant wins again.
	s.WorkerSlotPenalty = 0
	for i := 0; i < 3; i++ {
		a, err := s.Admit(context.Background(), v0[:1])
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, a)
	}
	a2, err := s.Admit(context.Background(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Plan != v0[0] {
		t.Errorf("disabled penalty still steered away from top rank")
	}
	for _, h := range held[3:] {
		s.Release(h)
	}
	s.Release(a2)
}

// Workers below one reserve a single slot: serial admission is the
// baseline, not zero.
func TestWorkerSlotMinimumOne(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	s.SetWorkers(0)
	a, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range variantDevices(a.Plan) {
		if got := s.DeviceSlots(d.Name); got != 1 {
			t.Errorf("slots on %s = %d, want 1", d.Name, got)
		}
	}
	s.Release(a)
}
