package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilTraceIsSafeAndOff(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tr.AddSpan(Span{Name: "x"})
	tr.AddEvent(Event{Name: "x"})
	tr.Sample("s", "bytes", 1, 2)
	tr.ClearSpans()
	if tr.Spans() != nil || tr.Events() != nil || tr.SeriesList() != nil || tr.Tracks() != nil {
		t.Fatal("nil trace returned data")
	}
	if tr.Makespan() != 0 || tr.WorkBusy() != 0 || tr.ConcurrencyFactor() != 0 {
		t.Fatal("nil trace returned nonzero analysis")
	}
	if tr.Utilizations() != nil {
		t.Fatal("nil trace returned utilizations")
	}
}

func TestNilVClock(t *testing.T) {
	var c *VClock
	if c.Now() != 0 || c.Advance(5) != 0 {
		t.Fatal("nil clock moved")
	}
	c = NewVClock()
	if c.Advance(5) != 5 || c.Now() != 5 {
		t.Fatal("clock arithmetic wrong")
	}
}

func TestClearSpansKeepsEvents(t *testing.T) {
	tr := New()
	tr.AddSpan(Span{Name: "a", Track: "t", End: 10})
	tr.AddEvent(Event{Name: "fault", Track: "t", At: 3})
	tr.Sample("m", "bytes", 1, 1)
	tr.ClearSpans()
	if len(tr.Spans()) != 0 || len(tr.SeriesList()) != 0 {
		t.Fatal("spans or series survived ClearSpans")
	}
	if len(tr.Events()) != 1 {
		t.Fatal("events did not survive ClearSpans")
	}
}

func TestConcurrencyFactorCountsAllResources(t *testing.T) {
	tr := New()
	tr.AddSpan(Span{Name: "a", Track: "dev0", Kind: SpanStage, Start: 0, End: 100})
	tr.AddSpan(Span{Name: "b", Track: "dev1", Kind: SpanStage, Start: 0, End: 100})
	tr.AddSpan(Span{Name: "x", Track: "link", Kind: SpanTransfer, Start: 0, End: 1000})
	// Two devices busy for 100 plus a DMA busy for 1000 over a 1000
	// makespan: mean active resources = 1200/1000.
	if got := tr.ConcurrencyFactor(); got < 1.19 || got > 1.21 {
		t.Fatalf("concurrency factor = %v, want 1.2", got)
	}
	if tr.Makespan() != 1000 {
		t.Fatalf("makespan = %v, want 1000", tr.Makespan())
	}
	if tr.WorkBusy() != 1200 {
		t.Fatalf("work busy = %v, want 1200 (transfers are work)", tr.WorkBusy())
	}
	// A strictly serial timeline pins the factor at 1.0 regardless of
	// span kinds.
	serial := New()
	serial.AddSpan(Span{Name: "a", Track: "dev0", Kind: SpanStage, Start: 0, End: 100})
	serial.AddSpan(Span{Name: "x", Track: "link", Kind: SpanTransfer, Start: 100, End: 300})
	serial.AddSpan(Span{Name: "b", Track: "dev1", Kind: SpanStage, Start: 300, End: 400})
	if got := serial.ConcurrencyFactor(); got < 0.99 || got > 1.01 {
		t.Fatalf("serial concurrency factor = %v, want 1.0", got)
	}
}

// twoStageTape builds a pipeline tape with nBatches source emissions
// feeding stage "f" (track devA) then stage "g" (track devB), each
// batch costing costA/costB and forwarding 1:1.
func twoStageTape(nBatches, depth int, gap, costA, costB sim.VTime) *Tape {
	tape := NewTape(depth)
	tape.Source.Track = "src"
	f := &StageTape{Name: "f", Track: "devA", FaultInput: -1}
	g := &StageTape{Name: "g", Track: "devB", FaultInput: -1}
	for i := 0; i < nBatches; i++ {
		tape.Source.Emits = append(tape.Source.Emits, Emission{At: sim.VTime(i) * gap, Bytes: 100})
		f.Inputs = append(f.Inputs, TapeInput{Bytes: 100, Cost: costA, Outs: 1})
		f.Xfers = append(f.Xfers, Xfer{Bytes: 100, Hops: []Hop{{Link: "l0", Cost: 1}}})
		g.Inputs = append(g.Inputs, TapeInput{Bytes: 100, Cost: costB, Outs: 1})
		g.Xfers = append(g.Xfers, Xfer{Bytes: 100, Hops: []Hop{{Link: "l1", Cost: 1}}})
	}
	tape.Stages = append(tape.Stages, f, g)
	return tape
}

func TestReplayOverlapAcrossTracks(t *testing.T) {
	tape := twoStageTape(16, 8, 10, 10, 10)
	tr := New()
	mk := tape.Replay(tr)
	if mk <= 0 {
		t.Fatal("no makespan")
	}
	// Two equally loaded stages on distinct devices, staggered arrivals:
	// the steady state runs both concurrently.
	if cf := tr.ConcurrencyFactor(); cf < 1.5 {
		t.Fatalf("concurrency factor = %.2f, want > 1.5 for overlapped stages", cf)
	}
	// Serial sanity: same tape with both stages on one track must not
	// overlap.
	tape2 := twoStageTape(16, 8, 10, 10, 10)
	tape2.Stages[0].Track = "dev"
	tape2.Stages[1].Track = "dev"
	tr2 := New()
	tape2.Replay(tr2)
	for _, u := range tr2.Utilizations() {
		if u.Util > 1.0001 {
			t.Fatalf("track %s over-utilized (%.3f): spans overlap on one track", u.Track, u.Util)
		}
	}
	if cf := tr2.ConcurrencyFactor(); cf > 1.05 {
		t.Fatalf("same-track concurrency factor = %.2f, want <= ~1.0", cf)
	}
}

func TestReplayCreditBackpressure(t *testing.T) {
	// Fast producer, slow consumer, shallow port: the producer must
	// stall on credits and the replay must say so.
	tape := twoStageTape(12, 2, 1, 1, 50)
	tr := New()
	tape.Replay(tr)
	stalls := 0
	for _, e := range tr.Events() {
		if e.Name == "credit-stall" {
			stalls++
		}
	}
	if stalls == 0 {
		t.Fatal("no credit-stall events despite depth-2 port and 50x slower consumer")
	}
	// Throughput is consumer-bound: makespan at least 12 * costB.
	if mk := tr.Makespan(); mk < 12*50 {
		t.Fatalf("makespan %v too small for consumer-bound pipeline", mk)
	}
}

func TestReplayFaultAndFlush(t *testing.T) {
	tape := NewTape(8)
	tape.Source.Track = "src"
	st := &StageTape{Name: "agg", Track: "dev", FaultInput: -1, FlushOuts: 1}
	for i := 0; i < 4; i++ {
		tape.Source.Emits = append(tape.Source.Emits, Emission{At: sim.VTime(i) * 5, Bytes: 10})
		st.Inputs = append(st.Inputs, TapeInput{Bytes: 10, Cost: 5, Outs: 0})
		st.Xfers = append(st.Xfers, Xfer{Bytes: 10})
	}
	tape.Stages = append(tape.Stages, st)
	tr := New()
	mk := tape.Replay(tr)
	if mk <= 0 {
		t.Fatal("no makespan")
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("span count = %d, want 4 processing spans", got)
	}

	// Faulted variant: stage dies after 2 inputs; replay must emit the
	// fault event and stop cleanly (no flush).
	ftape := NewTape(8)
	ftape.Source.Track = "src"
	fst := &StageTape{Name: "agg", Track: "dev", FaultInput: 2, FaultDetail: "device offline", FlushOuts: 1}
	for i := 0; i < 4; i++ {
		ftape.Source.Emits = append(ftape.Source.Emits, Emission{At: sim.VTime(i) * 5, Bytes: 10})
	}
	for i := 0; i < 2; i++ {
		fst.Inputs = append(fst.Inputs, TapeInput{Bytes: 10, Cost: 5, Outs: 0})
		fst.Xfers = append(fst.Xfers, Xfer{Bytes: 10})
	}
	ftape.Stages = append(ftape.Stages, fst)
	ftr := New()
	ftape.Replay(ftr)
	var fault *Event
	for _, e := range ftr.Events() {
		if e.Name == "fault" {
			ev := e
			fault = &ev
		}
	}
	if fault == nil || fault.Detail != "device offline" {
		t.Fatalf("fault event missing or wrong: %+v", fault)
	}
}

func TestReplaySetupSerializedPerTrack(t *testing.T) {
	tape := NewTape(8)
	tape.Stages = append(tape.Stages,
		&StageTape{Name: "k0", Track: "dev", Setup: 10, FaultInput: -1},
		&StageTape{Name: "k1", Track: "dev", Setup: 10, FaultInput: -1},
	)
	tr := New()
	tape.Replay(tr)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 setup spans, got %d", len(spans))
	}
	if spans[0].End > spans[1].Start {
		t.Fatalf("setup spans overlap on one track: %+v %+v", spans[0], spans[1])
	}
	if spans[1].End != 20 {
		t.Fatalf("second setup ends at %v, want 20", spans[1].End)
	}
}

func TestReplayDeterministic(t *testing.T) {
	render := func() string {
		tape := twoStageTape(32, 4, 3, 7, 9)
		tr := New()
		tape.Replay(tr)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("identical tapes replayed to different JSON")
	}
}

func TestWritePerfettoIsValidJSON(t *testing.T) {
	tape := twoStageTape(8, 8, 10, 10, 10)
	tr := New()
	tape.Replay(tr)
	tr.AddEvent(Event{Name: "retry", Track: "devA", At: 5, Detail: "transient"})
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, Process{Name: "dataflow", Trace: tr}, Process{Name: "volcano", Trace: New()}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	var complete, instant, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if complete == 0 || instant == 0 || meta < 2 {
		t.Fatalf("perfetto doc shape wrong: X=%d i=%d M=%d", complete, instant, meta)
	}
}

func TestWriteGantt(t *testing.T) {
	tape := twoStageTape(8, 8, 10, 10, 10)
	tr := New()
	tape.Replay(tr)
	var buf bytes.Buffer
	if err := tr.WriteGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"devA", "devB", "l0", "#", "busy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt output missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesSampling(t *testing.T) {
	tr := New()
	tr.Sample("meter.bytes", "bytes", 10, 100)
	tr.Sample("meter.bytes", "bytes", 20, 250)
	tr.Sample("alpha", "ops", 1, 1)
	sl := tr.SeriesList()
	if len(sl) != 2 || sl[0].Name != "alpha" || sl[1].Name != "meter.bytes" {
		t.Fatalf("series list wrong: %+v", sl)
	}
	if len(sl[1].Points) != 2 || sl[1].Points[1].Value != 250 {
		t.Fatalf("points wrong: %+v", sl[1].Points)
	}
}
