package experiments

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/interconnect"
	"repro/internal/memdev"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E7Row is one selectivity point of the near-memory filter sweep.
type E7Row struct {
	Selectivity float64
	CPUBytes    sim.Bytes
	NearBytes   sim.Bytes
	CPUTime     sim.VTime
	NearTime    sim.VTime
}

// E7Result carries the Figure 5 sweep.
type E7Result struct {
	Table *Table
	Rows  []E7Row
}

// E7NearMemoryFilter reproduces Figure 5 / Section 5.2: filtering at the
// memory controller moves only survivors into the cache hierarchy; the
// advantage grows as selectivity drops, bounded by the accelerator's
// stream rate.
func E7NearMemoryFilter(rows int, selectivities []float64, compressed bool) (*E7Result, error) {
	data := workload.GenKV(workload.KVConfig{Rows: rows, Keys: 1000, Seed: 21})
	dram := fabric.NewMemory("dram")
	accel := fabric.NewNearMemoryAccel("nma")
	cpu := fabric.NewCPU("cpu", 1)
	link := &fabric.Link{Name: "dram--cpu", A: "dram", B: "cpu",
		Bandwidth: fabric.CoreMemBandwidth, Latency: fabric.DDRLatency}
	mem := memdev.New("mem0", dram, accel)
	mem.Store("t", data, compressed)

	title := "Near-memory filtering (Figure 5): bytes entering caches vs selectivity"
	if compressed {
		title = "Near-memory filtering, compressed-resident data (Section 5.4 decompress-on-demand)"
	}
	res := &E7Result{Table: &Table{
		ID:     "E7",
		Title:  title,
		Header: []string{"selectivity", "cpu-path bytes", "near-path bytes", "cpu-path time", "near-path time"},
	}}
	for _, sel := range selectivities {
		hi := int64(float64(1000)*sel) - 1
		if hi < 0 {
			hi = 0
		}
		pred := expr.NewBetween(0, 0, hi)
		cpuOut, cpuStats, err := mem.FilterToCPU("t", pred, link, cpu)
		if err != nil {
			return nil, err
		}
		nearOut, nearStats, err := mem.FilterNear("t", pred, link)
		if err != nil {
			return nil, err
		}
		if cpuOut.NumRows() != nearOut.NumRows() {
			return nil, fmt.Errorf("experiments: E7 paths disagree (%d vs %d rows)", cpuOut.NumRows(), nearOut.NumRows())
		}
		row := E7Row{
			Selectivity: sel,
			CPUBytes:    cpuStats.BytesMoved,
			NearBytes:   nearStats.BytesMoved,
			CPUTime:     cpuStats.Time,
			NearTime:    nearStats.Time,
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(fmt.Sprintf("%.1f%%", sel*100),
			row.CPUBytes.String(), row.NearBytes.String(),
			row.CPUTime.String(), row.NearTime.String())
	}
	return res, nil
}

// E8Row is one tree-size point of the pointer-chase sweep.
type E8Row struct {
	Keys      int
	Depth     int
	CPUTime   sim.VTime
	NearTime  sim.VTime
	CPUBytes  sim.Bytes
	NearBytes sim.Bytes
}

// E8Result carries the pointer-chasing sweep.
type E8Result struct {
	Table *Table
	Rows  []E8Row
}

// E8PointerChase reproduces Section 5.4's pointer-chasing unit: the
// accelerator walks the hierarchy at DRAM latency and ships one leaf
// entry; the CPU pays a full link round trip per level. The gap widens
// with depth and with link latency (remote memory).
func E8PointerChase(sizes []int, remote bool) (*E8Result, error) {
	latency := fabric.DDRLatency
	bw := fabric.CoreMemBandwidth
	where := "local DRAM"
	if remote {
		latency = fabric.RDMALatency
		bw = sim.GbitPerSec(400)
		where = "disaggregated memory (RDMA)"
	}
	res := &E8Result{Table: &Table{
		ID:     "E8",
		Title:  "Pointer chasing (Section 5.4) on " + where,
		Header: []string{"keys", "depth", "cpu time", "near time", "cpu bytes", "near bytes"},
		Notes:  "CPU pays one round trip per level; the near unit ships only the 16B leaf entry",
	}}
	for _, n := range sizes {
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = int64(i)
			vals[i] = int64(i) * 3
		}
		tree, err := memdev.BuildPointerTree(keys, vals, 16)
		if err != nil {
			return nil, err
		}
		dram := fabric.NewMemory("dram")
		accel := fabric.NewNearMemoryAccel("nma")
		cpu := fabric.NewCPU("cpu", 1)
		link := &fabric.Link{Name: "mem--cpu", A: "m", B: "c", Bandwidth: bw, Latency: latency}
		mem := memdev.New("mem0", dram, accel)

		probe := int64(n / 2)
		vCPU, okCPU, cpuStats := tree.LookupCPU(probe, link, cpu)
		vNear, okNear, nearStats, err := tree.LookupNear(probe, mem, link)
		if err != nil {
			return nil, err
		}
		if !okCPU || !okNear || vCPU != vNear {
			return nil, fmt.Errorf("experiments: E8 lookups disagree")
		}
		row := E8Row{
			Keys: n, Depth: tree.Depth(),
			CPUTime: cpuStats.Time, NearTime: nearStats.Time,
			CPUBytes: cpuStats.BytesMoved, NearBytes: nearStats.BytesMoved,
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(d(int64(n)), d(int64(row.Depth)),
			row.CPUTime.String(), row.NearTime.String(),
			row.CPUBytes.String(), row.NearBytes.String())
	}
	return res, nil
}

// E9Row is one generation point of the interconnect sweep.
type E9Row struct {
	Generation string
	SWTime     sim.VTime
	HWTime     sim.VTime
	SWBytes    sim.Bytes
	HWBytes    sim.Bytes
	HWHits     int64
	SWMsgs     int64
	HWMsgs     int64
}

// E9Result carries the coherency comparison.
type E9Result struct {
	Table *Table
	Rows  []E9Row
}

// E9CXLCoherency reproduces Section 6: the same shared-region workload
// under software (RDMA) coherence and hardware (cxl.cache) coherence,
// swept across interconnect generations. Hardware coherency converts
// repeat reads into local hits and writes into per-sharer invalidations.
func E9CXLCoherency(accesses int, writeFrac float64) (*E9Result, error) {
	res := &E9Result{Table: &Table{
		ID:     "E9",
		Title:  fmt.Sprintf("Coherency protocols (Section 6), %d accesses, %.0f%% writes", accesses, writeFrac*100),
		Header: []string{"interconnect", "sw time", "hw time", "sw bytes", "hw bytes", "hw hits", "sw msgs", "hw msgs"},
		Notes:  "software: every read is an RDMA read, every write a lock round trip; hardware: cached reads, invalidation messages",
	}}
	gens := []fabric.LinkKind{fabric.LinkPCIe3, fabric.LinkPCIe4, fabric.LinkPCIe5, fabric.LinkCXL, fabric.LinkPCIe6, fabric.LinkPCIe7}
	agents := []string{"cpu", "nma", "nic", "ssd"}
	for _, gen := range gens {
		var row E9Row
		row.Generation = gen.String()
		for _, mode := range []interconnect.Mode{interconnect.SoftwareRDMA, interconnect.HardwareCXL} {
			link, err := interconnect.NewHostLink(gen)
			if err != nil {
				return nil, err
			}
			dom := interconnect.NewDomain(mode, link)
			rng := sim.NewRNG(77)
			var total interconnect.AccessStats
			for i := 0; i < accesses; i++ {
				agent := agents[rng.Intn(len(agents))]
				line := int64(rng.Intn(32))
				if rng.Float64() < writeFrac {
					total.Add(dom.Write(agent, line, int64(i)))
				} else {
					_, st := dom.Read(agent, line)
					total.Add(st)
				}
			}
			if mode == interconnect.SoftwareRDMA {
				row.SWTime, row.SWBytes, row.SWMsgs = total.Time, total.Bytes, total.Messages
			} else {
				row.HWTime, row.HWBytes, row.HWMsgs = total.Time, total.Bytes, total.Messages
				row.HWHits = total.Hits
			}
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Generation,
			row.SWTime.String(), row.HWTime.String(),
			row.SWBytes.String(), row.HWBytes.String(),
			d(row.HWHits), d(row.SWMsgs), d(row.HWMsgs))
	}
	return res, nil
}
