package exec

import (
	"fmt"

	"repro/internal/columnar"
	"repro/internal/flow"
	"repro/internal/sim"
)

// rowRef addresses one row of one retained build batch.
type rowRef struct {
	batch int32
	row   int32
}

// HashTable is the shared equi-join core used by both execution models.
// It supports BIGINT and VARCHAR keys; NULL keys never match (SQL
// semantics).
type HashTable struct {
	schema *columnar.Schema
	keyCol int

	intMap  map[int64][]rowRef
	strMap  map[string][]rowRef
	batches []*columnar.Batch
	rows    int64
}

// NewHashTable builds an empty join table over build-side batches with
// the given schema, keyed on keyCol.
func NewHashTable(schema *columnar.Schema, keyCol int) *HashTable {
	t := &HashTable{schema: schema, keyCol: keyCol}
	switch schema.Fields[keyCol].Type {
	case columnar.Int64:
		t.intMap = make(map[int64][]rowRef)
	case columnar.String:
		t.strMap = make(map[string][]rowRef)
	default:
		panic(fmt.Sprintf("exec: join key type %v unsupported", schema.Fields[keyCol].Type))
	}
	return t
}

// Build inserts all rows of a build-side batch.
func (t *HashTable) Build(b *columnar.Batch) {
	bi := int32(len(t.batches))
	t.batches = append(t.batches, b)
	col := b.Col(t.keyCol)
	for i := 0; i < b.NumRows(); i++ {
		if col.IsNull(i) {
			continue
		}
		ref := rowRef{batch: bi, row: int32(i)}
		if t.intMap != nil {
			k := col.Int64s()[i]
			t.intMap[k] = append(t.intMap[k], ref)
		} else {
			k := col.Strings()[i]
			t.strMap[k] = append(t.strMap[k], ref)
		}
		t.rows++
	}
}

// Rows reports the number of build rows inserted.
func (t *HashTable) Rows() int64 { return t.rows }

// MemBytes approximates the table's memory footprint, used for the
// "small table fits on the NIC" placement decision (Section 4.4).
func (t *HashTable) MemBytes() sim.Bytes {
	var n sim.Bytes
	for _, b := range t.batches {
		n += sim.Bytes(b.ByteSize())
	}
	// Hash entries: ~24 bytes each.
	n += sim.Bytes(t.rows * 24)
	return n
}

// OutputSchema reports the schema of probe results for the given probe
// schema: probe columns then build columns (renamed on collision).
func (t *HashTable) OutputSchema(probe *columnar.Schema) *columnar.Schema {
	return probe.Concat(t.schema)
}

// Probe matches one probe batch against the table and returns the joined
// rows (inner join).
func (t *HashTable) Probe(probe *columnar.Batch, probeKey int) *columnar.Batch {
	out := columnar.NewBatch(t.OutputSchema(probe.Schema()), probe.NumRows())
	col := probe.Col(probeKey)
	for i := 0; i < probe.NumRows(); i++ {
		if col.IsNull(i) {
			continue
		}
		var refs []rowRef
		if t.intMap != nil {
			if col.Type() != columnar.Int64 {
				panic("exec: probe key type mismatch (want BIGINT)")
			}
			refs = t.intMap[col.Int64s()[i]]
		} else {
			if col.Type() != columnar.String {
				panic("exec: probe key type mismatch (want VARCHAR)")
			}
			refs = t.strMap[col.Strings()[i]]
		}
		if len(refs) == 0 {
			continue
		}
		probeRow := probe.Row(i)
		for _, ref := range refs {
			buildRow := t.batches[ref.batch].Row(int(ref.row))
			out.AppendRow(append(append([]columnar.Value{}, probeRow...), buildRow...)...)
		}
	}
	return out
}

// BuildStage accumulates build-side batches into a hash table; it is a
// terminal stage (emits nothing), used to run the build side as its own
// pipeline before probing starts. Give it a PartitionedHashTable to
// build each batch in parallel across key partitions.
type BuildStage struct {
	Table JoinTable
}

// Name implements flow.Stage.
func (s *BuildStage) Name() string { return "join-build" }

// Process implements flow.Stage.
func (s *BuildStage) Process(b *columnar.Batch, emit flow.Emit) error {
	s.Table.Build(b.Compact()) // join build is a dense boundary
	return nil
}

// Flush implements flow.Stage.
func (s *BuildStage) Flush(flow.Emit) error { return nil }

// HashJoinStage probes a pre-built table with the streaming side,
// emitting joined rows. With a small build table this stage can live on
// a smart NIC (Section 4.4's join-on-the-NIC).
type HashJoinStage struct {
	Table    JoinTable
	ProbeKey int
}

// Name implements flow.Stage.
func (s *HashJoinStage) Name() string { return fmt.Sprintf("hashjoin(col%d)", s.ProbeKey) }

// Process implements flow.Stage.
func (s *HashJoinStage) Process(b *columnar.Batch, emit flow.Emit) error {
	out := s.Table.Probe(b.Compact(), s.ProbeKey)
	if out.NumRows() == 0 {
		return nil
	}
	return emit(out)
}

// Flush implements flow.Stage.
func (s *HashJoinStage) Flush(flow.Emit) error { return nil }
