package storage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/columnar"
	"repro/internal/encoding"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// TableMeta describes one table stored as a series of segment objects.
type TableMeta struct {
	Name        string
	Schema      *columnar.Schema
	SegmentKeys []string
	NumRows     int64
}

// ScanSpec describes one scan request sent to the storage server.
// Column indices refer to the table schema.
type ScanSpec struct {
	// Projection lists the columns to return, in order; nil means all.
	Projection []int
	// Filter restricts returned rows; nil means none.
	Filter expr.Predicate
	// PreAgg, when non-nil, asks the storage processor to pre-aggregate
	// (Section 4.4). The scan then emits partial batches
	// (expr.PartialSchema) instead of raw rows, and Projection is
	// ignored.
	PreAgg *expr.GroupBy
	// Pushdown executes Filter/Projection/PreAgg on the storage
	// processor (Figure 2). Without it the scan ships every needed
	// column of every live row and filtering happens at the consumer.
	Pushdown bool
	// EncodedEval, with Pushdown, evaluates the filter directly on the
	// encoded columns (predicate kernels over bit-packed/delta streams
	// and dictionary codes) and then gather-decodes only the surviving
	// rows of only the projected columns — late materialization. The
	// processor's decode meter is charged for the bytes actually
	// touched instead of the full segment. Segments whose type/codec
	// pair has no kernel fall back to decode-then-eval; emitted rows
	// and bytes are bit-identical either way. Ignored without Pushdown,
	// without a Filter, or with PreAgg (the aggregator needs dense raw
	// batches).
	EncodedEval bool
	// DisablePruning turns zone-map pruning off, modelling a legacy
	// engine that reads everything (used as the Figure 1 baseline).
	DisablePruning bool
	// BatchRows bounds the rows per emitted batch so consumers stream
	// with bounded in-flight memory; 0 means DefaultBatchRows.
	BatchRows int
	// Trace, when non-nil, records media reads, the media link transfer,
	// decode, and pushed-down operator work as virtual-time spans, plus
	// retry events. The scan replays its own internal pipeline onto the
	// trace: media read-ahead, link DMA and processor work each serialize
	// on their own track but overlap across segments, exactly as the
	// smart storage server streams. Clock is advanced to the processor's
	// frontier before each emit, so a consumer stamping emitted batches
	// with its reading sees when each batch actually left the processor;
	// the engines set both together (nil = tracing off).
	Trace *obs.Trace
	Clock *obs.VClock
	// StartSegment resumes the scan at the given segment index, skipping
	// earlier segments without reading or charging for them. A partial
	// restart sets it to the last completed checkpoint's watermark.
	StartSegment int
	// Progress, when non-nil, is called after each segment has been
	// fully handled (emitted or pruned) with the index of the next
	// segment — the watermark a restarted scan can resume from. With
	// pushed-down pre-aggregation the watermark does not capture state
	// still held by the storage processor; callers that checkpoint must
	// not combine the two. Returning an error aborts the scan.
	Progress func(nextSegment int) error
	// Workers > 1 scans with a pool of that many workers, clamped to the
	// storage processor's replicated units (fabric.Device.Units). Each
	// worker claims segments from a shared counter — the morsel is one
	// segment — reads, decodes and (with pushdown) filters and projects
	// it, charging the processor's per-worker lanes; a reorder buffer on
	// the caller's goroutine then emits batches and reports Progress in
	// strict segment order, so results, stats, checkpoint watermarks and
	// metered totals are identical to a serial scan. The media device
	// stays a serial resource (its lanes collapse to one) and the media
	// link's bandwidth is shared by every worker — only the per-command
	// NVMe latency overlaps, up to the link's queue depth
	// (Link.TransferQD) — so scaling workers cannot outrun the media:
	// that is the honesty floor of the model. Tracing and pushed-down pre-aggregation force a
	// serial scan: their internal frontiers and aggregation state are
	// order-sensitive. Under a seeded fault injector the read *arrival*
	// order varies with workers, so which segment a fault lands on may
	// differ run to run; recovery heals it either way and the emitted
	// rows are unchanged.
	Workers int
}

// DefaultBatchRows is the streaming granule when ScanSpec.BatchRows is
// unset.
const DefaultBatchRows = 4096

// ShippedColumns reports which table-schema columns the scan's emitted
// batches contain, in order. With pushdown it is the projection; without,
// the union of projection and filter columns in ascending table order.
// Consumers use it to rebase predicates onto the shipped batches.
func (spec ScanSpec) ShippedColumns(numFields int) []int {
	projection := spec.Projection
	if projection == nil {
		projection = allIndices(numFields)
	}
	if spec.Pushdown {
		return projection
	}
	return neededColumns(projection, spec.Filter, spec.PreAgg, false)
}

// ScanStats reports what one scan did, the per-experiment evidence for
// the data-movement claims.
type ScanStats struct {
	SegmentsTotal  int
	SegmentsPruned int
	MediaBytes     sim.Bytes // encoded bytes read from media
	ShippedBytes   sim.Bytes // payload bytes leaving the storage server
	ShippedRows    int64
	ProcTime       sim.VTime // busy time on the storage processor

	// Recovery accounting: reads repeated after transient faults or
	// corrupt blobs, reads served past replica 0, and the payload bytes
	// those extra reads moved. Availability is not free; E19 reports it.
	Retries          int64
	ReplicaFallbacks int64
	RetryBytes       sim.Bytes

	// Encoded-evaluation accounting. EncodedEvalSegments counts
	// segments whose filter ran on encoded data; DecodedBytes is what
	// the processor actually streamed through its decoder, and
	// DecodedBytesSaved is the decode work late materialization avoided
	// versus eager full-column decode (E23's headline number).
	EncodedEvalSegments int64
	DecodedBytes        sim.Bytes
	DecodedBytesSaved   sim.Bytes

	// Speculation accounting (parallel scans with a resilience policy):
	// morsels re-issued because they ran past the straggler threshold,
	// how many of those duplicates finished first, and the media bytes
	// the losing copies read before cancellation caught them. Logical
	// totals (MediaBytes, rows) count each segment exactly once — the
	// winner's read — while the losers' real device charges surface
	// here.
	SpeculativeMorsels int64
	SpeculativeWins    int64
	SpeculativeBytes   sim.Bytes

	// Self-healing accounting (stores with verification enabled):
	// payloads discarded because a replica served corrupt bytes, repair
	// write-backs triggered by this scan's reads, and the bytes those
	// repairs wrote. Repair traffic is metered apart from the main
	// Meter — the query is charged only for the clean payloads it
	// consumed.
	CorruptReads int64
	ReadRepairs  int64
	RepairBytes  sim.Bytes
}

// scanPipe replays one scan's internal three-stage pipeline onto a
// trace: media reads, media-link DMA and processor work (decode plus
// pushed-down operators) each serialize on their own resource frontier
// but run ahead of one another across segments — segment k+1 is read
// while segment k decodes, which is how the storage server actually
// streams and what the repo's bottleneck-based SimTime model assumes.
type scanPipe struct {
	tr    *obs.Trace
	clock *obs.VClock

	mediaFree sim.VTime
	linkFree  sim.VTime
	procFree  sim.VTime
}

func (p *scanPipe) span(name, track string, kind obs.SpanKind, start, cost sim.VTime, seq int64, n sim.Bytes) sim.VTime {
	end := start + cost
	p.tr.AddSpan(obs.Span{Name: name, Track: track, Kind: kind,
		Start: start, End: end, Seq: seq, Bytes: n})
	return end
}

// segment replays one segment's read -> DMA -> first-processor-step
// chain ("decode" on the eager path, the encoded-filter kernel on the
// encoded-eval path). Each step starts when both its predecessor for
// this segment and its own resource are free.
func (p *scanPipe) segment(seq int64, n sim.Bytes, media, proc, procStep string, link *fabric.Link, readCost, xferCost, procCost sim.VTime) {
	p.mediaFree = p.span("read", media, obs.SpanScan, p.mediaFree, readCost, seq, n)
	ready := p.mediaFree
	if link != nil {
		start := ready
		if p.linkFree > start {
			start = p.linkFree
		}
		p.linkFree = p.span("xfer", link.Name, obs.SpanTransfer, start, xferCost, seq, n)
		ready = p.linkFree
	}
	start := ready
	if p.procFree > start {
		start = p.procFree
	}
	p.procFree = p.span(procStep, proc, obs.SpanScan, start, procCost, seq, n)
}

// procOp replays one pushed-down operator, serialized on the processor.
func (p *scanPipe) procOp(name, proc string, cost sim.VTime, seq int64, n sim.Bytes) {
	p.procFree = p.span(name, proc, obs.SpanStage, p.procFree, cost, seq, n)
}

// sync advances the shared clock to the processor frontier — the moment
// the batch about to be emitted actually became available downstream.
func (p *scanPipe) sync() {
	if d := p.procFree - p.clock.Now(); d > 0 {
		p.clock.Advance(d)
	}
}

// Server is the storage node: an object store behind media and an
// in-storage processor. Whether the processor may execute pushed-down
// work is a property of the device's capabilities, so the same server
// code serves both the smart and the legacy experiments.
type Server struct {
	mu     sync.RWMutex
	store  *ObjectStore
	tables map[string]*TableMeta

	media     *fabric.Device
	proc      *fabric.Device
	mediaLink *fabric.Link

	// SegmentRows is the number of rows per segment for newly ingested
	// data.
	SegmentRows int

	// Metrics, when set, receives every finished scan's ScanStats as
	// fleet counters (scan.media.bytes, scan.shipped.bytes, pruning and
	// encoded-eval savings, retry and speculation activity) plus a
	// scan.shipped.bytes rolling rate. Nil is off and costs nothing on
	// the scan path — the fold happens once per scan, not per segment.
	Metrics *metrics.Registry
}

// NewServer wires a storage server onto fabric devices: media (charged
// OpScan), proc (charged decode and pushed-down ops) and the media->proc
// link.
func NewServer(store *ObjectStore, media, proc *fabric.Device, mediaLink *fabric.Link) *Server {
	return &Server{
		store:       store,
		tables:      make(map[string]*TableMeta),
		media:       media,
		proc:        proc,
		mediaLink:   mediaLink,
		SegmentRows: 1 << 16,
	}
}

// foldScanMetrics lands one finished scan's stats on the registry.
// Media bytes here are winner-only (losing hedges and cancelled
// speculative morsels meter separately), so fleet byte totals never
// double-charge defensive work.
func (s *Server) foldScanMetrics(st *ScanStats) {
	m := s.Metrics
	if m == nil {
		return
	}
	m.Counter("scan.count").Inc()
	m.Counter("scan.segments").Add(int64(st.SegmentsTotal))
	m.Counter("scan.segments.pruned").Add(int64(st.SegmentsPruned))
	m.Counter("scan.media.bytes").Add(int64(st.MediaBytes))
	m.Counter("scan.shipped.bytes").Add(int64(st.ShippedBytes))
	m.Counter("scan.shipped.rows").Add(st.ShippedRows)
	m.Counter("scan.retries").Add(st.Retries)
	m.Counter("scan.replica.fallbacks").Add(st.ReplicaFallbacks)
	m.Counter("scan.retry.bytes").Add(int64(st.RetryBytes))
	m.Counter("scan.encoded.segments").Add(int64(st.EncodedEvalSegments))
	m.Counter("scan.decoded.bytes").Add(int64(st.DecodedBytes))
	m.Counter("scan.decoded.bytes.saved").Add(int64(st.DecodedBytesSaved))
	m.Counter("scan.speculative.morsels").Add(st.SpeculativeMorsels)
	m.Counter("scan.speculative.wins").Add(st.SpeculativeWins)
	m.Counter("scan.speculative.bytes").Add(int64(st.SpeculativeBytes))
	m.Counter("scan.corrupt.reads").Add(st.CorruptReads)
	m.Counter("scan.read.repairs").Add(st.ReadRepairs)
	m.Counter("scan.repair.bytes").Add(int64(st.RepairBytes))
	m.RateMeter("scan.shipped.bytes.rate").Mark(int64(st.ShippedBytes))
}

// Proc exposes the in-storage processor device.
func (s *Server) Proc() *fabric.Device { return s.proc }

// Store exposes the backing object store.
func (s *Server) Store() *ObjectStore { return s.store }

// CreateTable registers an empty table. Creating an existing table is an
// error.
func (s *Server) CreateTable(name string, schema *columnar.Schema) (*TableMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := &TableMeta{Name: name, Schema: schema}
	s.tables[name] = t
	return t, nil
}

// DropTable removes a table and its segment objects.
func (s *Server) DropTable(name string) {
	s.mu.Lock()
	t := s.tables[name]
	delete(s.tables, name)
	s.mu.Unlock()
	if t != nil {
		for _, k := range t.SegmentKeys {
			s.store.Delete(k)
		}
	}
}

// Table returns the metadata of a table, or an error if unknown.
func (s *Server) Table(name string) (*TableMeta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t, nil
}

// Tables lists table names in sorted order.
func (s *Server) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Append ingests a batch into the table, splitting it into segments of
// SegmentRows rows.
func (s *Server) Append(table string, b *columnar.Batch) error {
	t, err := s.Table(table)
	if err != nil {
		return err
	}
	if !b.Schema().Equal(t.Schema) {
		return fmt.Errorf("storage: batch schema %s does not match table %s", b.Schema(), t.Schema)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for off := 0; off < b.NumRows(); off += s.SegmentRows {
		end := off + s.SegmentRows
		if end > b.NumRows() {
			end = b.NumRows()
		}
		segID := len(t.SegmentKeys)
		seg := BuildSegment(segID, b.Slice(off, end))
		key := fmt.Sprintf("%s/seg-%06d", table, segID)
		s.store.Put(key, seg.Marshal())
		t.SegmentKeys = append(t.SegmentKeys, key)
		t.NumRows += int64(end - off)
	}
	return nil
}

// Scan executes a scan, invoking emit once per produced batch in segment
// order. The emitted batch schema is the projected table schema, or the
// partial-aggregation schema when PreAgg is set.
//
// Faulty reads recover in two layers: the object store retries transient
// faults and falls back across replicas, and the scan itself re-reads a
// segment whose blob fails checksum verification (a corrupt replica or
// an in-flight bit flip), re-charging the media for every extra read so
// the recovery cost is visible in the meters and in ScanStats.
//
// The scan checks ctx between segments: a cancelled or deadline-expired
// context stops the scan promptly with ctx's error, charging nothing
// further.
func (s *Server) Scan(ctx context.Context, table string, spec ScanSpec, emit func(*columnar.Batch) error) (stats ScanStats, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	recBefore := s.store.Recovery()
	repBefore := s.store.Repairs()
	defer func() {
		rec := s.store.Recovery().Sub(recBefore)
		stats.Retries += rec.Retries
		stats.ReplicaFallbacks += rec.ReplicaFallbacks
		stats.RetryBytes += rec.RetryBytes
		rep := s.store.Repairs().Sub(repBefore)
		stats.CorruptReads += rep.CorruptReads
		stats.ReadRepairs += rep.WriteBacks
		stats.RepairBytes += rep.WriteBackBytes
		s.foldScanMetrics(&stats)
	}()
	t, err := s.Table(table)
	if err != nil {
		return stats, err
	}
	if spec.Pushdown {
		if err := s.checkPushdown(spec); err != nil {
			return stats, err
		}
	}

	projection := spec.Projection
	if projection == nil {
		projection = allIndices(t.Schema.NumFields())
	}
	needed := neededColumns(projection, spec.Filter, spec.PreAgg, spec.Pushdown)
	pos := make(map[int]int, len(needed)) // table index -> decoded position
	for i, c := range needed {
		pos[c] = i
	}
	rebase := func(c int) int { return pos[c] }

	var filter expr.Predicate
	if spec.Filter != nil {
		filter = expr.Rebase(spec.Filter, rebase)
	}
	var preagg *expr.PartialAggregator
	if spec.Pushdown && spec.PreAgg != nil {
		decodedSchema := t.Schema.Project(needed)
		budget := int(s.proc.StateBudget / expr.StateSize)
		if s.proc.StateBudget == 0 {
			budget = 0
		}
		preagg = expr.NewPartialAggregator(spec.PreAgg.Rebase(rebase), decodedSchema, budget)
	}

	// Positions of the projection within the decoded batch.
	projPos := make([]int, len(projection))
	for i, c := range projection {
		projPos[i] = pos[c]
	}

	procStart := s.proc.Meter.Busy()
	stats.SegmentsTotal = len(t.SegmentKeys) - spec.StartSegment
	if stats.SegmentsTotal < 0 {
		stats.SegmentsTotal = 0
	}

	var pipe *scanPipe
	if spec.Trace != nil {
		pipe = &scanPipe{tr: spec.Trace, clock: spec.Clock}
	}

	batchRows := spec.BatchRows
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	emitTracked := func(b *columnar.Batch) error {
		if pipe != nil {
			pipe.sync()
		}
		stats.ShippedBytes += sim.Bytes(b.ByteSize())
		stats.ShippedRows += int64(b.NumRows())
		for off := 0; off < b.NumRows(); off += batchRows {
			end := off + batchRows
			if end > b.NumRows() {
				end = b.NumRows()
			}
			if err := emit(b.Slice(off, end)); err != nil {
				return err
			}
		}
		return nil
	}

	progress := func(next int) error {
		if spec.Progress == nil {
			return nil
		}
		return spec.Progress(next)
	}

	workers := spec.Workers
	if u := s.proc.Units(); workers > u {
		workers = u
	}
	if pipe != nil || preagg != nil {
		// The trace pipeline's resource frontiers and the pushed-down
		// aggregator's state are order-sensitive; keep those scans serial.
		workers = 1
	}
	if workers > 1 {
		if err := s.scanParallel(ctx, t, spec, workers, needed, filter, projPos, projection, emitTracked, progress, &stats); err != nil {
			return stats, err
		}
		stats.ProcTime = s.proc.Meter.Busy() - procStart
		return stats, nil
	}

	for segIdx, key := range t.SegmentKeys {
		if segIdx < spec.StartSegment {
			continue
		}
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		seg, batch, skip, processed, segErr := s.readSegmentRetry(ctx, key, needed, projection, spec, pipe, segIdx, 0, &stats)
		if segErr != nil {
			return stats, segErr
		}
		if skip {
			stats.SegmentsPruned++
			if err := progress(segIdx + 1); err != nil {
				return stats, err
			}
			continue
		}
		if processed {
			// The encoded-eval path already filtered and projected.
			if batch.NumRows() > 0 {
				if err := emitTracked(batch); err != nil {
					return stats, err
				}
			}
			if err := progress(segIdx + 1); err != nil {
				return stats, err
			}
			continue
		}

		// procSpan replays one pushed-down operator's work on the storage
		// processor's track, serialized behind this segment's decode.
		procSpan := func(name string, c sim.VTime, n sim.Bytes) {
			if pipe != nil {
				pipe.procOp(name, s.proc.Name, c, int64(segIdx), n)
			}
		}

		if spec.Pushdown && filter != nil {
			n := seg.ColumnDecodedSize(spec.Filter.Columns())
			procSpan("filter@storage", s.proc.Charge(fabric.OpFilter, n), n)
			batch = batch.Filter(filter.Eval(batch))
		}

		if preagg != nil {
			n := sim.Bytes(batch.ByteSize())
			procSpan("preagg@storage", s.proc.Charge(fabric.OpPreAgg, n), n)
			for _, spill := range preagg.AddRaw(batch) {
				if err := emitTracked(spill); err != nil {
					return stats, err
				}
			}
			if err := progress(segIdx + 1); err != nil {
				return stats, err
			}
			continue
		}

		// Without pushdown the consumer evaluates the filter, so every
		// needed column ships in sorted table order; with pushdown only
		// the projection leaves the node.
		out := batch
		if spec.Pushdown {
			out = batch.Project(projPos)
			if len(projection) < t.Schema.NumFields() {
				n := sim.Bytes(out.ByteSize())
				procSpan("project@storage", s.proc.Charge(fabric.OpProject, n), n)
			}
		}
		if out.NumRows() > 0 {
			if err := emitTracked(out); err != nil {
				return stats, err
			}
		}
		if err := progress(segIdx + 1); err != nil {
			return stats, err
		}
	}

	if preagg != nil {
		if tail := preagg.Flush(); tail != nil {
			if err := emitTracked(tail); err != nil {
				return stats, err
			}
		}
	}

	stats.ProcTime = s.proc.Meter.Busy() - procStart
	return stats, nil
}

// readSegmentRetry wraps readSegment in the corrupt-blob retry loop:
// only checksum-detected corruption is worth re-reading — a fresh read
// may hit a clean replica or a clean wire — while other errors (missing
// object, exhausted transient budget) have already been through the
// store's own retry machinery and surface as-is.
func (s *Server) readSegmentRetry(ctx context.Context, key string, needed, projection []int, spec ScanSpec, pipe *scanPipe, segIdx, lane int, stats *ScanStats) (*Segment, *columnar.Batch, bool, bool, error) {
	for attempt := 0; ; attempt++ {
		seg, batch, skip, processed, segErr := s.readSegment(ctx, key, needed, projection, spec, pipe, segIdx, lane, attempt, stats)
		if segErr == nil {
			return seg, batch, skip, processed, nil
		}
		if !errors.Is(segErr, encoding.ErrCorrupt) || attempt >= s.store.MaxRetries {
			return nil, nil, false, false, fmt.Errorf("storage: %s: %w", key, segErr)
		}
		stats.Retries++
		if spec.Trace != nil {
			spec.Trace.AddEvent(obs.Event{Name: "retry", Track: s.media.Name,
				At: spec.Clock.Now(), Detail: fmt.Sprintf("%s: %v", key, segErr)})
		}
		if err := s.store.backoff(ctx, attempt); err != nil {
			return nil, nil, false, false, err
		}
	}
}

// segResult is one completed morsel copy, primary or speculative.
type segResult struct {
	seg  int
	out  *columnar.Batch // nil when pruned or empty
	skip bool
	sub  ScanStats // this segment's media/retry accounting
	err  error
	dup  bool // a speculative re-execution, not the primary copy
}

// morselState tracks one in-flight morsel for straggler detection: when
// it started, the per-morsel cancel shared by its copies (cancelling it
// stops whichever copy lost the race), and whether a duplicate has been
// issued.
type morselState struct {
	start      time.Time
	ctx        context.Context
	cancel     context.CancelFunc
	speculated bool
	done       bool
}

// specState is the shared straggler-detection state of one parallel
// scan: an EWMA over completed-morsel wall time plus the in-flight set.
// Workers that exhaust the segment counter turn into speculators,
// re-issuing the oldest morsel that has run past SpecMultiple x the
// EWMA (budget permitting) and racing it against the stuck copy.
type specState struct {
	pol *resilience.Policy

	mu       sync.Mutex
	inflight map[int]*morselState
	ewma     float64 // nanoseconds over completed morsels
	samples  int
	launched int64
	wake     chan struct{} // closed and replaced on every completion
}

func newSpecState(pol *resilience.Policy) *specState {
	return &specState{pol: pol, inflight: make(map[int]*morselState),
		wake: make(chan struct{})}
}

// register notes a morsel starting and returns the context its copies
// run under.
func (st *specState) register(seg int, parent context.Context) context.Context {
	mctx, cancel := context.WithCancel(parent)
	st.mu.Lock()
	st.inflight[seg] = &morselState{start: time.Now(), ctx: mctx, cancel: cancel}
	st.mu.Unlock()
	return mctx
}

// markDone records a morsel copy finishing. Successful completions feed
// the EWMA; a done morsel is never speculated on.
func (st *specState) markDone(seg int, elapsed time.Duration, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ms := st.inflight[seg]
	if ms == nil || ms.done {
		return
	}
	ms.done = true
	// Broadcast to sleeping speculators: the in-flight set changed, so
	// their wait deadlines are stale — in particular, the last completion
	// must release them immediately rather than after a full poll sleep.
	close(st.wake)
	st.wake = make(chan struct{})
	if !ok {
		return
	}
	x := float64(elapsed)
	if st.samples == 0 {
		st.ewma = x
	} else {
		st.ewma += 0.2 * (x - st.ewma)
	}
	st.samples++
}

// sleepWake sleeps for at most d, returning early when ctx ends (with
// its error) or when any morsel completes (nil) — so an idle speculator
// never outlives the scan by a poll interval.
func (st *specState) sleepWake(ctx context.Context, d time.Duration) error {
	st.mu.Lock()
	wake := st.wake
	st.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-wake:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// copies reports how many result messages seg will eventually produce.
func (st *specState) copies(seg int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if ms := st.inflight[seg]; ms != nil && ms.speculated {
		return 2
	}
	return 1
}

// cancelSeg cancels the morsel's shared context, stopping the copy that
// lost the race (the winner has already returned).
func (st *specState) cancelSeg(seg int) {
	st.mu.Lock()
	ms := st.inflight[seg]
	st.mu.Unlock()
	if ms != nil {
		ms.cancel()
	}
}

// cancelAll releases every morsel context at scan teardown.
func (st *specState) cancelAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, ms := range st.inflight {
		ms.cancel()
	}
}

// pick claims the most overdue unspeculated morsel, or reports how long
// to wait before rechecking. Returns seg = -1 with wait > 0 when
// nothing is overdue yet, and seg = -1 with wait = 0 when no morsel is
// left in flight.
func (st *specState) pick(now time.Time) (int, *morselState, time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	threshold := time.Duration(st.pol.SpecMultiple * st.ewma)
	if threshold < st.pol.HedgeMinDelay {
		threshold = st.pol.HedgeMinDelay
	}
	warm := st.samples >= st.pol.SpecMinSamples
	var (
		bestSeg  = -1
		bestMS   *morselState
		bestAge  time.Duration
		wait     time.Duration
		anyAlive bool
	)
	for seg, ms := range st.inflight {
		if ms.done || ms.speculated {
			continue
		}
		anyAlive = true
		age := now.Sub(ms.start)
		if warm && age > threshold {
			if bestMS == nil || age > bestAge {
				bestSeg, bestMS, bestAge = seg, ms, age
			}
			continue
		}
		d := threshold - age
		if !warm || d < 50*time.Microsecond {
			d = 50 * time.Microsecond
		}
		if d > 5*time.Millisecond {
			d = 5 * time.Millisecond
		}
		if wait == 0 || d < wait {
			wait = d
		}
	}
	if bestMS != nil {
		bestMS.speculated = true
		return bestSeg, bestMS, 0
	}
	if !anyAlive {
		return -1, nil, 0
	}
	return -1, nil, wait
}

// scanParallel is the morsel-parallel scan body. Workers claim segment
// indices from a shared counter and run the per-segment read/decode
// (and, with pushdown, filter/project) pipeline, charging the devices'
// positional lanes (lane = segment mod workers, so lane busy is
// independent of goroutine scheduling). Everything order-sensitive —
// batch emission, Progress watermarks, stats folding — happens on the
// caller's goroutine behind a reorder buffer, so a parallel scan is
// observably identical to a serial one apart from wall time and the
// per-lane busy split.
//
// With a resilience policy that enables speculation, workers that run
// out of fresh segments linger as speculators: a morsel running past
// SpecMultiple x the EWMA of completed morsels is re-issued (one token
// of retry budget per duplicate) and the first finisher wins. The
// reorder buffer delivers each segment exactly once — the first result
// per segment — and cancels the loser, whose media bytes land in
// SpeculativeBytes instead of the logical totals, so result rows and
// MediaBytes are identical to an unspeculated scan.
func (s *Server) scanParallel(ctx context.Context, t *TableMeta, spec ScanSpec, workers int, needed []int, filter expr.Predicate, projPos, projection []int, emitTracked func(*columnar.Batch) error, progress func(int) error, stats *ScanStats) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var st *specState
	if pol := s.store.Resilience; pol != nil && pol.Speculate {
		st = newSpecState(pol)
		defer st.cancelAll()
	}

	// processMorsel runs one copy of segment idx end to end, charging
	// lane idx%workers, and returns its result message.
	processMorsel := func(mctx context.Context, idx int, dup bool) segResult {
		r := segResult{seg: idx, dup: dup}
		lane := idx % workers
		seg, batch, skip, processed, err := s.readSegmentRetry(mctx, t.SegmentKeys[idx], needed, projection, spec, nil, idx, lane, &r.sub)
		switch {
		case err != nil:
			r.err = err
		case skip:
			r.skip = true
		case processed:
			// Encoded-eval already filtered and projected.
			if batch.NumRows() > 0 {
				r.out = batch
			}
		default:
			if spec.Pushdown && filter != nil {
				n := seg.ColumnDecodedSize(spec.Filter.Columns())
				s.proc.ChargeLane(fabric.OpFilter, n, lane)
				batch = batch.Filter(filter.Eval(batch))
			}
			out := batch
			if spec.Pushdown {
				out = batch.Project(projPos)
				if len(projection) < t.Schema.NumFields() {
					s.proc.ChargeLane(fabric.OpProject, sim.Bytes(out.ByteSize()), lane)
				}
			}
			if out.NumRows() > 0 {
				r.out = out
			}
		}
		return r
	}

	var next atomic.Int64
	next.Store(int64(spec.StartSegment))
	results := make(chan segResult, 2*workers+2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1) - 1)
				if idx >= len(t.SegmentKeys) {
					break
				}
				if ctx.Err() != nil {
					return
				}
				mctx := ctx
				var start time.Time
				if st != nil {
					mctx = st.register(idx, ctx)
					start = time.Now()
				}
				r := processMorsel(mctx, idx, false)
				if st != nil {
					st.markDone(idx, time.Since(start), r.err == nil)
				}
				select {
				case results <- r:
				case <-ctx.Done():
					return
				}
				if st != nil && r.err == nil {
					// First finisher: stop a racing duplicate, if any.
					st.cancelSeg(idx)
				}
			}
			if st == nil {
				return
			}
			// Out of fresh morsels: speculate on stragglers until none
			// remain in flight.
			for {
				if ctx.Err() != nil {
					return
				}
				seg, ms, wait := st.pick(time.Now())
				if seg < 0 {
					if wait == 0 {
						return
					}
					if st.sleepWake(ctx, wait) != nil {
						return
					}
					continue
				}
				if !st.pol.Budget.TryAcquire() {
					// Retry budget exhausted: serve slow rather than
					// amplify.
					return
				}
				st.mu.Lock()
				st.launched++
				st.mu.Unlock()
				r := processMorsel(ms.ctx, seg, true)
				select {
				case results <- r:
				case <-ctx.Done():
					return
				}
				if r.err == nil {
					st.cancelSeg(seg)
				}
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	pend := make(map[int]segResult, workers)
	delivered := make(map[int]bool, workers)
	arrived := make(map[int]int, workers)
	want := spec.StartSegment
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		cancel() // stop the workers; keep draining results below
	}
	for r := range results {
		if firstErr != nil {
			continue
		}
		if delivered[r.seg] {
			// The losing copy of a speculated morsel: its real device
			// charges stand, but logically only its media bytes are
			// reported — as speculation overhead, never as scan totals.
			stats.SpeculativeBytes += r.sub.MediaBytes
			continue
		}
		arrived[r.seg]++
		if r.err != nil && st != nil && st.copies(r.seg) > arrived[r.seg] {
			// This copy failed but its twin is still running; the twin
			// may yet deliver the segment.
			continue
		}
		delivered[r.seg] = true
		if r.dup && r.err == nil {
			stats.SpeculativeWins++
		}
		pend[r.seg] = r
		for {
			cur, ok := pend[want]
			if !ok {
				break
			}
			delete(pend, want)
			stats.MediaBytes += cur.sub.MediaBytes
			stats.Retries += cur.sub.Retries
			stats.RetryBytes += cur.sub.RetryBytes
			stats.EncodedEvalSegments += cur.sub.EncodedEvalSegments
			stats.DecodedBytes += cur.sub.DecodedBytes
			stats.DecodedBytesSaved += cur.sub.DecodedBytesSaved
			if cur.err != nil {
				fail(cur.err)
				break
			}
			if cur.skip {
				stats.SegmentsPruned++
			} else if cur.out != nil {
				if err := emitTracked(cur.out); err != nil {
					fail(err)
					break
				}
			}
			if err := progress(want + 1); err != nil {
				fail(err)
				break
			}
			want++
		}
	}
	if st != nil {
		st.mu.Lock()
		stats.SpeculativeMorsels += st.launched
		st.mu.Unlock()
	}
	if firstErr != nil {
		return firstErr
	}
	// Workers bail out between segments when the caller's context ends;
	// surface that instead of silently under-scanning.
	return ctx.Err()
}

// readSegment is one attempt at reading and decoding segment key: fetch
// the blob, unmarshal it, prune-check, charge the media and processor
// for the needed columns, and decode them. Charges land on the devices'
// positional lanes (serial scans pass lane 0; the media and its link
// have one unit, so their lanes collapse either way). Corruption
// surfaces as an error wrapping encoding.ErrCorrupt for the retry loop;
// re-reads (attempt > 0) charge the media again and count toward
// RetryBytes, so recovery shows up as real extra work in the meters.
func (s *Server) readSegment(ctx context.Context, key string, needed, projection []int, spec ScanSpec, pipe *scanPipe, segIdx, lane, attempt int, stats *ScanStats) (*Segment, *columnar.Batch, bool, bool, error) {
	blob, err := s.store.GetNoCopy(ctx, key)
	if err != nil {
		return nil, nil, false, false, err
	}
	if attempt > 0 {
		stats.RetryBytes += sim.Bytes(len(blob))
	}
	seg, err := UnmarshalSegment(blob)
	if err != nil {
		return nil, nil, false, false, err
	}
	if !spec.DisablePruning && s.pruned(seg, spec.Filter) {
		return seg, nil, true, false, nil
	}

	// Media reads only the needed column chunks (columnar layout +
	// range reads), then the processor decodes them.
	var encoded sim.Bytes
	for _, c := range needed {
		encoded += sim.Bytes(seg.Columns[c].EncodedSize())
	}
	stats.MediaBytes += encoded
	readCost := s.media.ChargeLane(fabric.OpScan, encoded, lane)
	var xferCost sim.VTime
	if s.mediaLink != nil {
		// Queue-depth transfer: NVMe keeps Units() commands in flight,
		// so per-command latency overlaps across workers while the
		// sequential bandwidth stays a serial floor.
		xferCost = s.mediaLink.TransferQD(encoded, lane)
		// JitterLink is a gray failure on the media link: the transfer
		// still delivers, but Severity x the store's healthy service
		// time is added in real wall-clock — the phenomenon hedging and
		// speculation defend against.
		if s.store.Faults != nil {
			if extra := s.store.Faults.Slowdown(faults.JitterLink, s.mediaLink.Name, s.store.BaseLatency); extra > 0 {
				if err := sleepCtx(ctx, extra); err != nil {
					return nil, nil, false, false, err
				}
			}
		}
	}

	if spec.encodedEvalActive() {
		out, hit, encErr := s.segmentEncodedEval(seg, spec, projection, pipe, segIdx, lane, encoded, readCost, xferCost, stats)
		if encErr != nil {
			return seg, nil, false, false, encErr
		}
		if hit {
			return seg, out, false, true, nil
		}
		// No kernel for some leaf: fall through to decode-then-eval for
		// this segment.
	}

	decodeCost := s.proc.ChargeLane(fabric.OpDecompress, encoded, lane)
	stats.DecodedBytes += encoded
	if pipe != nil {
		pipe.segment(int64(segIdx), encoded, s.media.Name, s.proc.Name, "decode",
			s.mediaLink, readCost, xferCost, decodeCost)
	}

	batch, err := seg.DecodeColumns(needed)
	if err != nil {
		return seg, nil, false, false, err
	}
	return seg, batch, false, false, nil
}

// encodedEvalActive reports whether this scan runs filters on encoded
// columns with late materialization.
func (spec ScanSpec) encodedEvalActive() bool {
	return spec.Pushdown && spec.EncodedEval && spec.Filter != nil && spec.PreAgg == nil
}

// segmentEncodedEval is the late-materialization fast path for one
// segment: evaluate the filter on the encoded columns (charging the
// processor's filter meter for the encoded bytes it streams), then
// gather-decode only the surviving rows of only the projected columns
// (charging the decode meter for the bytes actually touched). hit=false
// means some type/codec leaf has no kernel and the caller must eager-
// decode instead; nothing has been charged to the processor in that
// case. The returned batch is already filtered and projected, value-
// identical to the eager path's output.
func (s *Server) segmentEncodedEval(seg *Segment, spec ScanSpec, projection []int, pipe *scanPipe, segIdx, lane int, encoded sim.Bytes, readCost, xferCost sim.VTime, stats *ScanStats) (*columnar.Batch, bool, error) {
	bm, ok, err := expr.EvalEncoded(spec.Filter, func(c int) *encoding.EncodedColumn {
		if c < 0 || c >= len(seg.Columns) {
			return nil
		}
		return seg.Columns[c]
	})
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}

	var encFilter sim.Bytes
	for _, c := range spec.Filter.Columns() {
		encFilter += sim.Bytes(seg.Columns[c].EncodedSize())
	}
	filterCost := s.proc.ChargeLane(fabric.OpFilter, encFilter, lane)

	k := bm.Count()
	var gather sim.Bytes
	for _, c := range projection {
		gather += sim.Bytes(seg.Columns[c].GatherBytes(k))
	}
	decodeCost := s.proc.ChargeLane(fabric.OpDecompress, gather, lane)

	vecs := make([]*columnar.Vector, len(projection))
	for i, c := range projection {
		v, derr := seg.Columns[c].DecodeFiltered(bm)
		if derr != nil {
			return nil, false, derr
		}
		vecs[i] = v
	}
	out := columnar.BatchOf(seg.Schema.Project(projection), vecs...)

	stats.EncodedEvalSegments++
	stats.DecodedBytes += gather
	if encoded > gather {
		stats.DecodedBytesSaved += encoded - gather
	}
	if pipe != nil {
		pipe.segment(int64(segIdx), encoded, s.media.Name, s.proc.Name, "filter@storage[enc]",
			s.mediaLink, readCost, xferCost, filterCost)
		pipe.procOp("gather@storage", s.proc.Name, decodeCost, int64(segIdx), gather)
	}
	return out, true, nil
}

// checkPushdown verifies the processor can host the requested offloads,
// surfacing planner mistakes as errors rather than silent fallbacks.
func (s *Server) checkPushdown(spec ScanSpec) error {
	if spec.Filter != nil && !s.proc.Can(fabric.OpFilter) {
		return fmt.Errorf("storage: processor %s cannot execute pushed-down filters", s.proc.Name)
	}
	if needsRegex(spec.Filter) && !s.proc.Can(fabric.OpRegexMatch) {
		return fmt.Errorf("storage: processor %s cannot execute pushed-down LIKE", s.proc.Name)
	}
	if spec.PreAgg != nil && !s.proc.Can(fabric.OpPreAgg) {
		return fmt.Errorf("storage: processor %s cannot execute pushed-down pre-aggregation", s.proc.Name)
	}
	return nil
}

func needsRegex(p expr.Predicate) bool {
	switch t := p.(type) {
	case nil:
		return false
	case *expr.Like:
		return true
	case *expr.And:
		for _, sub := range t.Preds {
			if needsRegex(sub) {
				return true
			}
		}
	case *expr.Or:
		for _, sub := range t.Preds {
			if needsRegex(sub) {
				return true
			}
		}
	case *expr.Not:
		return needsRegex(t.Pred)
	}
	return false
}

// pruned reports whether zone maps prove no row of seg matches filter.
func (s *Server) pruned(seg *Segment, filter expr.Predicate) bool {
	if filter == nil {
		return false
	}
	for _, col := range filter.Columns() {
		if seg.Schema.Fields[col].Type != columnar.Int64 {
			continue
		}
		if lo, hi, ok := expr.IntRange(filter, col); ok && seg.PruneInt(col, lo, hi) {
			return true
		}
	}
	return false
}

// neededColumns unions the projection with the filter and pre-agg
// columns. Without pushdown the consumer evaluates the filter, so its
// columns must ship too.
func neededColumns(projection []int, filter expr.Predicate, preagg *expr.GroupBy, pushdown bool) []int {
	seen := map[int]bool{}
	var out []int
	add := func(c int) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	if preagg != nil && pushdown {
		// Pre-agg replaces projection entirely.
		for _, c := range preagg.GroupCols {
			add(c)
		}
		for _, a := range preagg.Aggs {
			if a.Func != expr.Count {
				add(a.Col)
			}
		}
		if filter != nil {
			for _, c := range filter.Columns() {
				add(c)
			}
		}
		if len(out) == 0 {
			// A pure COUNT(*) pre-aggregation touches no columns; one
			// narrow column must still be decoded to drive row counts.
			add(0)
		}
		sort.Ints(out)
		return out
	}
	for _, c := range projection {
		add(c)
	}
	if filter != nil {
		for _, c := range filter.Columns() {
			add(c)
		}
	}
	if preagg != nil {
		for _, c := range preagg.GroupCols {
			add(c)
		}
		for _, a := range preagg.Aggs {
			if a.Func != expr.Count {
				add(a.Col)
			}
		}
	}
	sort.Ints(out)
	return out
}
