// Package storage implements the disaggregated storage layer of the
// paper's Section 3: an object store holding encoded columnar segments
// with zone-map statistics, and a storage server whose in-storage
// processor can execute projection, selection, regex matching and
// bounded-state pre-aggregation in a streaming fashion before data ever
// leaves the storage node (Figure 2).
package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/columnar"
	"repro/internal/encoding"
	"repro/internal/sim"
)

// Segment is one horizontal partition of a table in encoded form. It is
// the unit of storage, pruning and scanning.
type Segment struct {
	ID      int
	Schema  *columnar.Schema
	NumRows int
	Columns []*encoding.EncodedColumn // one per schema field
}

// BuildSegment encodes a batch into a segment.
func BuildSegment(id int, b *columnar.Batch) *Segment {
	s := &Segment{ID: id, Schema: b.Schema(), NumRows: b.NumRows()}
	s.Columns = make([]*encoding.EncodedColumn, b.NumCols())
	for i := 0; i < b.NumCols(); i++ {
		s.Columns[i] = encoding.EncodeColumn(b.Col(i))
	}
	return s
}

// EncodedSize is the segment's on-media footprint: what a scan reads and
// what ships when data moves compressed.
func (s *Segment) EncodedSize() sim.Bytes {
	var n int64
	for _, c := range s.Columns {
		n += c.EncodedSize()
	}
	return sim.Bytes(n)
}

// DecodedSize is the in-memory footprint after decoding: what ships when
// data moves uncompressed and what filters must stream through.
func (s *Segment) DecodedSize() sim.Bytes {
	var n int64
	for i, c := range s.Columns {
		n += decodedColSize(s.Schema.Fields[i].Type, c)
	}
	return sim.Bytes(n)
}

// ColumnDecodedSize reports the decoded footprint of a subset of columns,
// which is what projection pushdown saves.
func (s *Segment) ColumnDecodedSize(indices []int) sim.Bytes {
	var n int64
	for _, i := range indices {
		n += decodedColSize(s.Schema.Fields[i].Type, s.Columns[i])
	}
	return sim.Bytes(n)
}

func decodedColSize(t columnar.Type, c *encoding.EncodedColumn) int64 {
	// DecodedSize computes the real decoded footprint — for dictionary
	// columns the sum of referenced entry widths plus headers, not an
	// approximation — so dict-heavy columns meter honestly.
	return c.DecodedSize()
}

// Decode reconstructs the full segment as a batch, verifying checksums.
func (s *Segment) Decode() (*columnar.Batch, error) {
	return s.DecodeColumns(allIndices(len(s.Columns)))
}

// DecodeColumns reconstructs only the requested columns (projection
// applied during decode, which is how columnar scans avoid touching
// pruned columns at all).
func (s *Segment) DecodeColumns(indices []int) (*columnar.Batch, error) {
	vecs := make([]*columnar.Vector, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= len(s.Columns) {
			return nil, fmt.Errorf("storage: column %d out of range in segment %d", idx, s.ID)
		}
		v, err := s.Columns[idx].Decode()
		if err != nil {
			return nil, fmt.Errorf("storage: segment %d column %d: %w", s.ID, idx, err)
		}
		vecs[i] = v
	}
	return columnar.BatchOf(s.Schema.Project(indices), vecs...), nil
}

// PruneInt reports whether the segment can be skipped for a predicate
// that restricts column col to [lo, hi]: true means the zone map proves
// no row matches.
func (s *Segment) PruneInt(col int, lo, hi int64) bool {
	if col < 0 || col >= len(s.Columns) {
		return false
	}
	return !s.Columns[col].Stats.OverlapsInt(lo, hi)
}

// Marshal serializes the segment into a self-contained blob.
func (s *Segment) Marshal() []byte {
	out := binary.LittleEndian.AppendUint32(nil, uint32(s.ID))
	out = binary.LittleEndian.AppendUint32(out, uint32(s.NumRows))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Columns)))
	for i, f := range s.Schema.Fields {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(f.Name)))
		out = append(out, f.Name...)
		out = append(out, byte(f.Type))
		out = append(out, s.Columns[i].Marshal()...)
	}
	return out
}

// UnmarshalSegment parses a blob produced by Marshal.
func UnmarshalSegment(data []byte) (*Segment, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: segment header truncated", encoding.ErrCorrupt)
	}
	s := &Segment{
		ID:      int(binary.LittleEndian.Uint32(data)),
		NumRows: int(binary.LittleEndian.Uint32(data[4:])),
	}
	ncols := int(binary.LittleEndian.Uint32(data[8:]))
	data = data[12:]
	s.Schema = &columnar.Schema{}
	for i := 0; i < ncols; i++ {
		if len(data) < 2 {
			return nil, fmt.Errorf("%w: segment field truncated", encoding.ErrCorrupt)
		}
		nameLen := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < nameLen+1 {
			return nil, fmt.Errorf("%w: segment field name truncated", encoding.ErrCorrupt)
		}
		name := string(data[:nameLen])
		typ := columnar.Type(data[nameLen])
		data = data[nameLen+1:]
		s.Schema.Fields = append(s.Schema.Fields, columnar.Field{Name: name, Type: typ})
		col, used, err := encoding.UnmarshalColumn(data)
		if err != nil {
			return nil, err
		}
		data = data[used:]
		s.Columns = append(s.Columns, col)
	}
	return s, nil
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
