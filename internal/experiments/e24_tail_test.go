package experiments

import (
	"testing"
	"time"
)

// e24TestOptions shrinks the sweep so the test stays fast while the
// injected slowness still dwarfs scheduling noise. BaseLatency must sit
// near the platform timer quantum (~1ms on coarse-tick kernels) so the
// severity multiplier, not sleep rounding, dominates the tail.
func e24TestOptions() E24Options {
	return E24Options{
		Severities:  []float64{1, 16},
		Trials:      6,
		BaseLatency: 500 * time.Microsecond,
		Workers:     2,
		Segments:    12,
	}
}

func TestE24TailLatencyShape(t *testing.T) {
	res, err := E24TailLatency(3000, e24TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 2 severities x 2 arms", len(res.Rows))
	}
	byCell := map[[2]bool]E24Row{}
	for _, row := range res.Rows {
		byCell[[2]bool{row.Severity > 1, row.Hedge}] = row
	}

	// Healthy fabric: the defenses must be near-free. The hedge delay
	// sits above the healthy read latency, so duplicate reads stay rare;
	// the acceptance bound is <= 10% extra media bytes.
	healthyOn := byCell[[2]bool{false, true}]
	if healthyOn.MediaBytes == 0 {
		t.Fatal("healthy hedged cell read no media bytes")
	}
	if pct := 100 * float64(healthyOn.ExtraBytes) / float64(healthyOn.MediaBytes); pct > 10 {
		t.Errorf("healthy fabric: defenses burned %.1f%% extra bytes, want <= 10%%", pct)
	}

	// Gray failure: hedging + speculation must buy the tail back at
	// least 2x while the baseline waits out the slow replica.
	slowOn := byCell[[2]bool{true, true}]
	slowOff := byCell[[2]bool{true, false}]
	if slowOff.P99 == 0 || slowOn.P99 == 0 {
		t.Fatal("missing p99 samples")
	}
	if slowOn.Speedup99 < 2 {
		t.Errorf("p99 speedup under gray failure = %.2fx (off %v, on %v), want >= 2x",
			slowOn.Speedup99, slowOff.P99, slowOn.P99)
	}
	// The win must come from the defenses actually firing.
	if slowOn.HedgedReads+slowOn.SpecMorsels == 0 {
		t.Error("gray-failure cell launched no hedges and no speculation")
	}
	// The baseline arm never duplicates work.
	if slowOff.HedgedReads != 0 || slowOff.SpecMorsels != 0 || slowOff.ExtraBytes != 0 {
		t.Errorf("baseline arm recorded defense activity: hedged=%d speculated=%d extra=%v",
			slowOff.HedgedReads, slowOff.SpecMorsels, slowOff.ExtraBytes)
	}

	if res.Table == nil || len(res.Table.Rows) != len(res.Rows) {
		t.Fatal("table rows do not match sweep rows")
	}
	if _, ok := res.Table.Metrics["speedup99@16"]; !ok {
		t.Error("missing speedup99@16 metric")
	}
	if _, ok := res.Table.Metrics["extra_bytes_pct@healthy"]; !ok {
		t.Error("missing extra_bytes_pct@healthy metric")
	}
	if res.Table.HedgedReads+res.Table.SpeculativeMorsels == 0 {
		t.Error("table carries no defense counters for the -json artifact")
	}
}

func TestE24NoHedgeArm(t *testing.T) {
	opts := e24TestOptions()
	opts.Severities = []float64{4}
	opts.Trials = 2
	opts.NoHedge = true
	res, err := E24TailLatency(2000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Hedge {
		t.Fatalf("NoHedge sweep produced %d rows (hedge arm present)", len(res.Rows))
	}
}
