// Quickstart: build a disaggregated cluster, load a table, run one query
// on both engines, and compare where the work and the bytes went.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// 1. Generate a TPC-H-flavoured lineitem table.
	cfg := workload.DefaultLineitemConfig(50000)
	data := workload.GenLineitem(cfg)

	// 2. The data-flow engine on the full Figure 6 fabric: smart
	// storage, smart NICs, near-memory accelerator, CXL host bus.
	df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	must(df.CreateTable("lineitem", workload.LineitemSchema()))
	must(df.Load("lineitem", data))

	// 3. The CPU-centric baseline: same data, dumb fabric, buffer pool.
	vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 512*sim.MB)
	must(vo.CreateTable("lineitem", workload.LineitemSchema()))
	must(vo.Load("lineitem", data))

	// 4. A filtered pricing summary (TPC-H Q1 shaped).
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.1)).
		WithGroupBy(workload.PricingSummary())
	fmt.Printf("query: %s\n\n", q)

	// 5. Show the optimizer's placement decision.
	variants, err := df.Plan(q, 0)
	must(err)
	fmt.Println(variants[0].Explain())

	// 6. Execute on both engines: identical answers, very different
	// data movement.
	dfRes, err := df.Execute(context.Background(), q)
	must(err)
	voRes, err := vo.Execute(context.Background(), q)
	must(err)

	fmt.Println("result (dataflow):")
	fmt.Print(dfRes.Format(10))
	fmt.Println()
	fmt.Print(dfRes.Stats.String())
	fmt.Println()
	fmt.Print(voRes.Stats.String())

	fmt.Printf("\nmovement reduction: %.1fx, CPU-bytes reduction: %.1fx\n",
		float64(voRes.Stats.MovedBytes)/float64(dfRes.Stats.MovedBytes),
		float64(voRes.Stats.CPUBytes)/float64(dfRes.Stats.CPUBytes))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
