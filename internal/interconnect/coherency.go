// Package interconnect models the paper's Section 6: PCIe-family links
// and what CXL adds on top of them — hardware cache coherency. A Domain
// is a shared memory region accessed by several agents (CPU cores,
// near-memory accelerators, NICs) across a link; the same access
// sequence can be run under software coherence (RDMA-style lock/read/
// write round trips, no safe caching) or hardware coherence (cxl.cache:
// local hits, per-sharer invalidation messages), and the meters show the
// difference the paper predicts.
package interconnect

import (
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Mode selects the coherency protocol.
type Mode uint8

// Coherency modes.
const (
	// SoftwareRDMA models coherence maintained by software over
	// one-sided RDMA (Section 6.2): agents cannot safely cache shared
	// lines, writes take a lock round trip.
	SoftwareRDMA Mode = iota
	// HardwareCXL models cxl.cache (Section 6.2-6.3): agents cache
	// lines; the hardware invalidates sharers on writes.
	HardwareCXL
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SoftwareRDMA:
		return "software-rdma"
	case HardwareCXL:
		return "hardware-cxl"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// CacheLine is the coherency granule.
const CacheLine = sim.Bytes(64)

// AccessStats summarizes one access or a sequence of accesses.
type AccessStats struct {
	Time     sim.VTime
	Bytes    sim.Bytes // payload bytes across the link
	Messages int64     // protocol messages (locks, invalidations)
	Hits     int64     // local cache hits (hardware mode only)
}

// Add accumulates another stats value.
func (s *AccessStats) Add(o AccessStats) {
	s.Time += o.Time
	s.Bytes += o.Bytes
	s.Messages += o.Messages
	s.Hits += o.Hits
}

// Domain is one coherent (or software-coordinated) shared region.
type Domain struct {
	Mode Mode
	Link *fabric.Link

	mu       sync.Mutex
	versions map[int64]uint64            // line -> current version
	values   map[int64]int64             // line -> current value (for correctness checks)
	cached   map[string]map[int64]uint64 // agent -> line -> cached version
	cachedV  map[string]map[int64]int64  // agent -> line -> cached value
}

// NewDomain builds a shared region over link in the given mode.
func NewDomain(mode Mode, link *fabric.Link) *Domain {
	return &Domain{
		Mode:     mode,
		Link:     link,
		versions: make(map[int64]uint64),
		values:   make(map[int64]int64),
		cached:   make(map[string]map[int64]uint64),
		cachedV:  make(map[string]map[int64]int64),
	}
}

func (d *Domain) agentCache(agent string) (map[int64]uint64, map[int64]int64) {
	c, ok := d.cached[agent]
	if !ok {
		c = make(map[int64]uint64)
		d.cached[agent] = c
	}
	v, ok := d.cachedV[agent]
	if !ok {
		v = make(map[int64]int64)
		d.cachedV[agent] = v
	}
	return c, v
}

// Read returns the current value of line as seen by agent, charging the
// protocol cost of getting it there.
func (d *Domain) Read(agent string, line int64) (int64, AccessStats) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var st AccessStats
	switch d.Mode {
	case HardwareCXL:
		cache, cacheV := d.agentCache(agent)
		if ver, ok := cache[line]; ok && ver == d.versions[line] {
			// Local hit: the line is valid in the agent's cache.
			st.Hits++
			st.Time += fabric.OnChipLatency
			return cacheV[line], st
		}
		// Miss: fetch the line across the link and start sharing it.
		st.Time += d.Link.Transfer(CacheLine)
		st.Bytes += CacheLine
		cache[line] = d.versions[line]
		cacheV[line] = d.values[line]
		return d.values[line], st
	default: // SoftwareRDMA
		// No safe caching: every read is a one-sided RDMA read.
		st.Time += d.Link.Transfer(CacheLine)
		st.Bytes += CacheLine
		return d.values[line], st
	}
}

// Write stores value into line on behalf of agent, charging the
// protocol cost of making the write visible.
func (d *Domain) Write(agent string, line int64, value int64) AccessStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	var st AccessStats
	switch d.Mode {
	case HardwareCXL:
		// The hardware invalidates every other sharer with one
		// cxl.cache message each (Section 6.2's example of the
		// accelerator updating a tuple).
		for other, cache := range d.cached {
			if other == agent {
				continue
			}
			if _, sharing := cache[line]; sharing {
				delete(cache, line)
				delete(d.cachedV[other], line)
				st.Time += d.Link.Message()
				st.Messages++
			}
		}
		st.Time += d.Link.Transfer(CacheLine)
		st.Bytes += CacheLine
		d.versions[line]++
		d.values[line] = value
		cache, cacheV := d.agentCache(agent)
		cache[line] = d.versions[line]
		cacheV[line] = value
		return st
	default: // SoftwareRDMA
		// Lock acquire (round trip), RDMA write, unlock (one-way).
		st.Time += d.Link.Message() // lock request
		st.Time += d.Link.Message() // lock grant
		st.Time += d.Link.Transfer(CacheLine)
		st.Time += d.Link.Message() // unlock
		st.Messages += 3
		st.Bytes += CacheLine
		d.versions[line]++
		d.values[line] = value
		return st
	}
}

// Agents reports how many agents have touched the domain.
func (d *Domain) Agents() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.cached)
}

// NewHostLink builds a host link of the given interconnect generation,
// for the Section 6.2 bandwidth sweep (PCIe 3 through 7 and CXL).
func NewHostLink(kind fabric.LinkKind) (*fabric.Link, error) {
	bw, ok := fabric.PCIeBandwidth[kind]
	if !ok {
		return nil, fmt.Errorf("interconnect: %v is not a PCIe/CXL generation", kind)
	}
	lat := fabric.PCIeLatency
	if kind == fabric.LinkCXL {
		lat = fabric.CXLLatency
	}
	return &fabric.Link{
		Name: "host-" + kind.String(), Kind: kind, A: "host", B: "device",
		Bandwidth: bw, Latency: lat,
	}, nil
}
