package repro

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// One benchmark per experiment in EXPERIMENTS.md. Each iteration runs
// the full experiment; the custom metrics expose the paper-relevant
// quantities (movement reductions, crossovers, overheads) so that
// `go test -bench=.` regenerates every figure-equivalent number.

const benchRows = 50000

func BenchmarkE1ConventionalPath(b *testing.B) {
	var hop sim.Bytes
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1ConventionalPath(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		hop = res.HopBytes["dram--llc"]
	}
	b.ReportMetric(float64(hop), "hopbytes")
}

func BenchmarkE2StoragePushdown(b *testing.B) {
	var reduction1pct, reduction50pct float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E2StoragePushdown(benchRows, []float64{0.01, 0.1, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		reduction1pct = res.Rows[0].Reduction
		reduction50pct = res.Rows[2].Reduction
	}
	b.ReportMetric(reduction1pct, "netreduction@1%")
	b.ReportMetric(reduction50pct, "netreduction@50%")
}

func BenchmarkE3NICHashPipeline(b *testing.B) {
	var relief float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E3NICHashPipeline(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		relief = float64(res.CPUBusyCPU) / float64(res.CPUBusyNIC)
	}
	b.ReportMetric(relief, "cpubusy-ratio")
}

func BenchmarkE4StagedPreAgg(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E4StagedPreAgg(benchRows, []int64{10, 1000, 100000})
		if err != nil {
			b.Fatal(err)
		}
		reduction = float64(res.Rows[0].NetBytesNone) / float64(res.Rows[0].NetBytesFull)
	}
	b.ReportMetric(reduction, "netreduction@10groups")
}

func BenchmarkE5PartitionedJoin(b *testing.B) {
	var relief float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5PartitionedJoin(5000, benchRows, 4)
		if err != nil {
			b.Fatal(err)
		}
		relief = float64(res.CPUCPUBy) / float64(res.NICCPUBy)
	}
	b.ReportMetric(relief, "cpubytes-ratio")
}

func BenchmarkE6NICCount(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E6NICCount(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		reduction = float64(res.LegacyNet) / float64(res.SmartNet+1)
	}
	b.ReportMetric(reduction, "netreduction")
}

func BenchmarkE7NearMemoryFilter(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E7NearMemoryFilter(benchRows, []float64{0.01, 0.1, 0.5}, false)
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(res.Rows[0].CPUBytes) / float64(res.Rows[0].NearBytes)
	}
	b.ReportMetric(gain, "bytegain@1%")
}

func BenchmarkE8PointerChase(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E8PointerChase([]int{1000, 100000, 1000000}, true)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		gap = float64(last.CPUTime) / float64(last.NearTime)
	}
	b.ReportMetric(gap, "remote-speedup")
}

func BenchmarkE9CXLCoherency(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E9CXLCoherency(20000, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		cxl := res.Rows[3] // the CXL row
		speedup = float64(cxl.SWTime) / float64(cxl.HWTime)
	}
	b.ReportMetric(speedup, "hwcoherency-speedup")
}

func BenchmarkE10FullPipeline(b *testing.B) {
	var moveReduction, timeSpeedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E10FullPipeline(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		moveReduction = float64(res.Volcano.MovedBytes) / float64(res.DataFlow.MovedBytes)
		timeSpeedup = float64(res.Volcano.SimTime) / float64(res.DataFlow.SimTime)
	}
	b.ReportMetric(moveReduction, "movereduction")
	b.ReportMetric(timeSpeedup, "speedup")
}

func BenchmarkE11CreditFlow(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E11CreditFlow(2000)
		if err != nil {
			b.Fatal(err)
		}
		overhead = res.Rows[len(res.Rows)-1].Overhead
	}
	b.ReportMetric(overhead, "credit/data@depth32")
}

func BenchmarkE12Interference(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E12Interference(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		improvement = float64(res.NaiveTime) / float64(res.ScheduledTime)
	}
	b.ReportMetric(improvement, "makespan-improvement")
}

func BenchmarkE13NoBufferPool(b *testing.B) {
	var memRatio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E13NoBufferPool([]int{benchRows / 4, benchRows}, 2*sim.MB)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		memRatio = float64(last.VolcanoMem) / float64(last.DataflowMem)
	}
	b.ReportMetric(memRatio, "memreduction")
}

func BenchmarkE14NoDataCache(b *testing.B) {
	var coldAdvantage float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E14NoDataCache(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		coldAdvantage = float64(res.ColdVolcano) / float64(res.DataFlow)
	}
	b.ReportMetric(coldAdvantage, "coldpath-speedup")
}

func BenchmarkE15KernelSetup(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E15KernelSetup([]sim.Bytes{64 * sim.KB, sim.MB, 64 * sim.MB, sim.GB})
		if err != nil {
			b.Fatal(err)
		}
		share = res.Rows[len(res.Rows)-1].SetupShare
	}
	b.ReportMetric(share, "setupshare@1GiB")
}

func BenchmarkE16CacheStalls(b *testing.B) {
	var stall, hierGain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E16CacheStalls()
		if err != nil {
			b.Fatal(err)
		}
		stall = res.Rows[len(res.Rows)-1].RndStall
		hierGain = float64(res.CPUHierTime) / float64(res.NearHierTime)
	}
	b.ReportMetric(stall, "stallshare@1GiB")
	b.ReportMetric(hierGain, "hierarchy-gain@5%")
}

func BenchmarkE17DisaggregatedMemory(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E17DisaggregatedMemory(benchRows, []float64{0.01, 0.1, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(res.Rows[0].PullBytes) / float64(res.Rows[0].OffloadBytes)
	}
	b.ReportMetric(gain, "netgain@1%")
}

func BenchmarkE18HTAPTranspose(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E18HTAPTranspose([]int{benchRows})
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(res.Rows[0].CPUTime) / float64(res.Rows[0].NearTime)
	}
	b.ReportMetric(gain, "transpose-speedup")
}

func BenchmarkE19Availability(b *testing.B) {
	var dfOK, voOK, inflation float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E19Availability(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		top := res.Rows[len(res.Rows)-1]
		dfOK = float64(top.DFOK) / float64(top.Total)
		voOK = float64(top.VoOK) / float64(top.Total)
		inflation = top.DFInflation
	}
	b.ReportMetric(dfOK, "df-success@5%")
	b.ReportMetric(voOK, "volcano-success@5%")
	b.ReportMetric(inflation, "df-makespan-inflation@5%")
}

func BenchmarkA1WireCompression(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.A1WireCompression(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		for j, row := range res.Rows {
			if !row.Wins {
				crossover = float64(j)
				break
			}
		}
	}
	b.ReportMetric(crossover, "crossover-tier-index")
}

func BenchmarkA2NICTierSweep(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.A2NICTierSweep(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(res.Rows[0].Makespan) / float64(res.Rows[len(res.Rows)-1].Makespan)
	}
	b.ReportMetric(speedup, "100G-to-1.6T-speedup")
}

func BenchmarkA3SegmentSize(b *testing.B) {
	var pruneGain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.A3SegmentSize(benchRows)
		if err != nil {
			b.Fatal(err)
		}
		fine := res.Rows[0]
		coarse := res.Rows[len(res.Rows)-1]
		scannedFine := float64(fine.Total-fine.Pruned) * float64(fine.SegmentRows)
		scannedCoarse := float64(coarse.Total-coarse.Pruned) * float64(coarse.SegmentRows)
		pruneGain = scannedCoarse / scannedFine
	}
	b.ReportMetric(pruneGain, "prune-gain")
}

func BenchmarkA4StateBudget(b *testing.B) {
	var spillFactor float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.A4StateBudget(benchRows, int64(benchRows)/3)
		if err != nil {
			b.Fatal(err)
		}
		spillFactor = float64(res.Rows[0].ShippedRows) / float64(res.Rows[len(res.Rows)-1].ShippedRows)
	}
	b.ReportMetric(spillFactor, "spill-factor@64")
}

func BenchmarkA5ScaleOut(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.A5ScaleOut(benchRows, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		reduction = float64(res.Rows[0].MaxCPUBusy) / float64(res.Rows[len(res.Rows)-1].MaxCPUBusy)
	}
	b.ReportMetric(reduction, "percpu-reduction@4n")
}
