package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E21Options tunes the lifecycle sweep; the zero value uses defaults.
type E21Options struct {
	// Deadline bounds every query in the overload sweep; shed decisions
	// and in-queue expiry are judged against it. Default 1s.
	Deadline time.Duration
	// OfferedLoads are the concurrent-arrival burst sizes of the
	// overload sweep. Default {1, 4, 16}.
	OfferedLoads []int
}

// E21RecoveryRow compares the waste of the three recovery disciplines
// for one mid-query fault position (the batch the fault strikes at).
type E21RecoveryRow struct {
	StrikeAt     int       // stage batch (= segment) the device dies on
	PartialWaste sim.Bytes // bytes replayed by the stage-level restart
	WholeWaste   sim.Bytes // bytes wasted by whole-query failover
	VolcanoWaste sim.Bytes // bytes wasted by client-level re-execution
	Restarts     int
	Failovers    int
	Checkpoints  int
}

// E21OverloadRow is one offered-load point of the shedding sweep.
type E21OverloadRow struct {
	Offered int
	OK      int           // admitted and completed within the deadline
	Shed    int           // rejected fast with sched.ErrOverloaded
	Expired int           // admitted but killed by the deadline mid-run
	P99     time.Duration // highest wall-clock makespan among OK queries
	VoP99   time.Duration // worst-query latency with no admission control
}

// E21Result carries both halves of the lifecycle experiment.
type E21Result struct {
	Table    *Table
	Recovery []E21RecoveryRow
	Overload []E21OverloadRow
	Deadline time.Duration
}

const e21Seed = 0xE21

// e21Segments is how many scan segments the recovery queries span; the
// fault positions and checkpoint cadence below are chosen against it.
const e21Segments = 12

// E21Lifecycle runs the query-lifecycle experiment of the PR 3 layer.
//
// Recovery half: the device hosting a pipeline stage is killed
// deterministically at an early, middle and late batch of a group-by
// scan, under three disciplines — stage-level partial restart
// (checkpoint every 2 segments), whole-query failover (PR 1's
// behavior), and the volcano client's only option, re-executing from
// scratch. The replayed/wasted bytes are metered per discipline; the
// partial restart must replay only the suffix since the last completed
// checkpoint.
//
// Overload half: bursts of concurrent queries arrive at a scheduler
// with two execution slots and a two-deep admit queue, each carrying a
// deadline. Excess arrivals shed fast with ErrOverloaded instead of
// queueing until collapse, so admitted queries' makespan stays below
// the deadline no matter the offered load; the volcano baseline admits
// everything and its worst-query latency grows with the burst.
func E21Lifecycle(rows int, opts E21Options) (*E21Result, error) {
	if opts.Deadline <= 0 {
		opts.Deadline = time.Second
	}
	if len(opts.OfferedLoads) == 0 {
		opts.OfferedLoads = []int{1, 4, 16}
	}
	segRows := rows/e21Segments + 1
	data := workload.GenLineitem(workload.DefaultLineitemConfig(rows))
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())

	buildDF := func() (*core.DataFlowEngine, error) {
		df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		df.Storage.SegmentRows = segRows
		if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := df.Load("lineitem", data); err != nil {
			return nil, err
		}
		return df, nil
	}
	buildVo := func() (*core.VolcanoEngine, error) {
		vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), sim.MB)
		vo.Storage.SegmentRows = segRows
		vo.Storage.Store().MaxRetries = 0
		if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := vo.Load("lineitem", data); err != nil {
			return nil, err
		}
		return vo, nil
	}

	res := &E21Result{Deadline: opts.Deadline, Table: &Table{
		ID:    "E21",
		Title: "Query lifecycle: recovery waste and overload shedding",
		Header: []string{"scenario", "ok", "shed", "p99",
			"waste partial", "waste whole", "waste volcano"},
		Notes: fmt.Sprintf("kill@N rows: device hosting a stage dies on batch N of %d; "+
			"waste = bytes replayed (partial restart) or burned by the abandoned attempt (failover / re-run). "+
			"load=N rows: N concurrent arrivals against 2 slots + 2-deep queue, %v deadline; "+
			"p99 = worst admitted query wall time (volcano column: worst query with nothing shed)", e21Segments, opts.Deadline),
	}}

	// Reference answer for correctness checks throughout.
	clean, err := buildDF()
	if err != nil {
		return nil, err
	}
	cleanRes, err := clean.Execute(context.Background(), q)
	if err != nil {
		return nil, err
	}
	want := e19Histogram(cleanRes)
	check := func(r *core.Result, scenario string) error {
		if !e19SameHist(e19Histogram(r), want) {
			return fmt.Errorf("experiments: E21 %s returned wrong rows", scenario)
		}
		return nil
	}

	// ---- Recovery half -------------------------------------------------
	for _, strike := range []int{4, 7, 10} {
		row := E21RecoveryRow{StrikeAt: strike}

		// Stage-level partial restart. Whether the strike finds a
		// completed epoch depends on marker/batch interleaving, so retry
		// on a fresh engine until it engages (it nearly always does on
		// the first run).
		engaged := false
		for try := 0; try < 5 && !engaged; try++ {
			df, err := buildDF()
			if err != nil {
				return nil, err
			}
			df.PartialRestart = true
			df.CheckpointSegments = 2
			target, err := e21KillTarget(df, q)
			if err != nil {
				return nil, err
			}
			inj := faults.New(e21Seed)
			inj.Arm(faults.Point{Kind: faults.DeviceOffline, Target: target,
				Prob: 1, Budget: 1, After: strike})
			df.Faults = inj
			r, err := df.Execute(context.Background(), q)
			if err != nil {
				return nil, fmt.Errorf("experiments: E21 partial restart at %d: %w", strike, err)
			}
			if err := check(r, "partial restart"); err != nil {
				return nil, err
			}
			if r.Stats.PartialRestarts > 0 {
				engaged = true
				row.PartialWaste = r.Stats.ReplayedBytes
				row.Restarts = r.Stats.PartialRestarts
				row.Checkpoints = r.Stats.Checkpoints
			}
		}
		if !engaged {
			return nil, fmt.Errorf("experiments: E21 partial restart never engaged at strike %d", strike)
		}

		// Whole-query failover: same kill, checkpointing off.
		df, err := buildDF()
		if err != nil {
			return nil, err
		}
		target, err := e21KillTarget(df, q)
		if err != nil {
			return nil, err
		}
		inj := faults.New(e21Seed)
		inj.Arm(faults.Point{Kind: faults.DeviceOffline, Target: target,
			Prob: 1, Budget: 1, After: strike})
		df.Faults = inj
		r, err := df.Execute(context.Background(), q)
		if err != nil {
			return nil, fmt.Errorf("experiments: E21 failover at %d: %w", strike, err)
		}
		if err := check(r, "whole-query failover"); err != nil {
			return nil, err
		}
		row.WholeWaste = r.Stats.RecoveryBytes
		row.Failovers = r.Stats.Failovers

		// Volcano: a mid-query storage fault with no retry path kills
		// the query; the client's recovery is re-running it. The waste
		// is everything the dead attempt moved.
		vo, err := buildVo()
		if err != nil {
			return nil, err
		}
		voInj := faults.New(e21Seed)
		voInj.Arm(faults.Point{Kind: faults.TransientRead, Prob: 1, Budget: 1, After: strike})
		vo.Storage.Store().Faults = voInj
		before := e21LinkBytes(vo.Cluster)
		if _, err := vo.Execute(context.Background(), q); err == nil {
			return nil, fmt.Errorf("experiments: E21 volcano survived an unretryable fault")
		}
		row.VolcanoWaste = e21LinkBytes(vo.Cluster) - before
		vr, err := vo.Execute(context.Background(), q)
		if err != nil {
			return nil, fmt.Errorf("experiments: E21 volcano re-run at %d: %w", strike, err)
		}
		if err := check(vr, "volcano re-run"); err != nil {
			return nil, err
		}

		res.Recovery = append(res.Recovery, row)
		res.Table.AddRow(fmt.Sprintf("kill@%d", strike), "-", "-", "-",
			row.PartialWaste.String(), row.WholeWaste.String(), row.VolcanoWaste.String())
		res.Table.SetMetric(fmt.Sprintf("waste_partial@%d", strike), float64(row.PartialWaste))
		res.Table.SetMetric(fmt.Sprintf("waste_whole@%d", strike), float64(row.WholeWaste))
		res.Table.SetMetric(fmt.Sprintf("waste_volcano@%d", strike), float64(row.VolcanoWaste))
	}

	// ---- Overload half -------------------------------------------------
	df, err := buildDF()
	if err != nil {
		return nil, err
	}
	df.Scheduler.MaxActive = 2
	df.Scheduler.QueueCap = 2
	vo, err := buildVo()
	if err != nil {
		return nil, err
	}
	for _, load := range opts.OfferedLoads {
		row := E21OverloadRow{Offered: load}
		type outcome struct {
			wall time.Duration
			err  error
		}
		outs := make([]outcome, load)
		var wg sync.WaitGroup
		for i := 0; i < load; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), opts.Deadline)
				defer cancel()
				start := time.Now()
				r, err := df.Execute(ctx, q)
				outs[i] = outcome{wall: time.Since(start), err: err}
				if err == nil {
					if cerr := check(r, "overload"); cerr != nil {
						outs[i].err = cerr
					}
				}
			}(i)
		}
		wg.Wait()
		var walls []time.Duration
		for _, o := range outs {
			switch {
			case o.err == nil:
				row.OK++
				walls = append(walls, o.wall)
			case errors.Is(o.err, sched.ErrOverloaded):
				row.Shed++
			case errors.Is(o.err, core.ErrDeadlineExceeded):
				row.Expired++
			default:
				return nil, fmt.Errorf("experiments: E21 overload run failed: %w", o.err)
			}
		}
		row.P99 = e21P99(walls)
		if df.Scheduler.ActiveCount() != 0 || df.Scheduler.QueueDepth() != 0 {
			return nil, fmt.Errorf("experiments: E21 leaked admissions at load %d", load)
		}

		// No admission control: every arrival is served, so the worst
		// query waits for the whole backlog.
		voStart := time.Now()
		for i := 0; i < load; i++ {
			vr, err := vo.Execute(context.Background(), q)
			if err != nil {
				return nil, fmt.Errorf("experiments: E21 volcano overload: %w", err)
			}
			if err := check(vr, "volcano overload"); err != nil {
				return nil, err
			}
		}
		row.VoP99 = time.Since(voStart)

		res.Overload = append(res.Overload, row)
		res.Table.AddRow(fmt.Sprintf("load=%d", load),
			fmt.Sprintf("%d/%d", row.OK, load), d(int64(row.Shed)),
			fmt.Sprintf("%s | vo %s", e21Ms(row.P99), e21Ms(row.VoP99)),
			"-", "-", "-")
		res.Table.SetMetric(fmt.Sprintf("ok@load%d", load), float64(row.OK))
		res.Table.SetMetric(fmt.Sprintf("shed@load%d", load), float64(row.Shed))
		res.Table.SetMetric(fmt.Sprintf("p99_ms@load%d", load), float64(row.P99.Microseconds())/1000)
		res.Table.SetMetric(fmt.Sprintf("vo_p99_ms@load%d", load), float64(row.VoP99.Microseconds())/1000)
	}
	return res, nil
}

// e21KillTarget picks the first intermediate stage device of the
// query's top-ranked variant — the device the admitted plan will run a
// pipeline stage on.
func e21KillTarget(df *core.DataFlowEngine, q *plan.Query) (string, error) {
	variants, err := df.Plan(q, 0)
	if err != nil {
		return "", err
	}
	best := variants[0]
	for _, pl := range best.Placements {
		if pl.SiteIdx > 0 && pl.SiteIdx < len(best.Path.Sites)-1 {
			return best.Path.Sites[pl.SiteIdx].Device.Name, nil
		}
	}
	return "", fmt.Errorf("experiments: E21 variant %q places no intermediate stage", best.Variant)
}

// e21LinkBytes sums the payload moved over every link of the cluster.
func e21LinkBytes(c *fabric.Cluster) sim.Bytes {
	var n sim.Bytes
	for _, l := range c.Links() {
		n += l.Meter.Bytes()
	}
	return n
}

// e21P99 returns the 99th-percentile (here: worst surviving) latency.
func e21P99(walls []time.Duration) time.Duration {
	if len(walls) == 0 {
		return 0
	}
	sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
	idx := (len(walls)*99 + 99) / 100
	if idx > len(walls) {
		idx = len(walls)
	}
	return walls[idx-1]
}

// e21Ms renders a wall duration at millisecond precision.
func e21Ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
