// Package sim provides the base units, metering, and deterministic
// randomness shared by every simulated hardware component in this
// repository.
//
// The simulation style used throughout is cost accounting over real
// computation: operators really process real tuples, while the fabric
// records how many bytes crossed each link and how long each device was
// busy in virtual time. Virtual time is derived analytically from
// calibrated device/link rates, which keeps experiments deterministic and
// independent of the host machine.
package sim

import (
	"fmt"
	"time"
)

// VTime is a duration of virtual (simulated) time in nanoseconds.
// It is intentionally distinct from time.Duration so that wall-clock and
// simulated durations cannot be mixed by accident.
type VTime int64

// Common virtual-time units.
const (
	Nanosecond  VTime = 1
	Microsecond       = 1000 * Nanosecond
	Millisecond       = 1000 * Microsecond
	Second            = 1000 * Millisecond
)

// Duration converts a virtual time to a time.Duration with the same
// nanosecond count, for printing.
func (t VTime) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the virtual time in seconds as a float.
func (t VTime) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the virtual time like a time.Duration.
func (t VTime) String() string { return t.Duration().String() }

// Bytes is a byte count. A dedicated type keeps signatures honest about
// whether a quantity is a size or something else.
type Bytes int64

// Common byte units.
const (
	B  Bytes = 1
	KB       = 1 << 10 * B
	MB       = 1 << 20 * B
	GB       = 1 << 30 * B
)

// String renders a byte count using binary units with two decimals.
func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKiB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// Rate is a throughput in bytes per second of virtual time.
type Rate float64

// Common rates. Network rates follow the paper's Section 2.2 (100 Gb/s to
// 1.6 Tb/s NICs); memory and PCIe rates follow Sections 5.1 and 6.2.
const (
	BytePerSec Rate = 1
	KBPerSec        = 1e3 * BytePerSec
	MBPerSec        = 1e6 * BytePerSec
	GBPerSec        = 1e9 * BytePerSec
)

// GbitPerSec converts a link speed quoted in gigabits per second (the
// usual unit for NICs and switches) into a Rate.
func GbitPerSec(g float64) Rate { return Rate(g * 1e9 / 8) }

// String renders the rate in GB/s.
func (r Rate) String() string { return fmt.Sprintf("%.2fGB/s", float64(r)/1e9) }

// TimeFor reports how long moving or processing n bytes takes at rate r.
// A zero or negative rate is treated as infinitely fast (zero time): it is
// used for modelling steps whose cost the experiment deliberately ignores.
func (r Rate) TimeFor(n Bytes) VTime {
	if r <= 0 || n <= 0 {
		return 0
	}
	return VTime(float64(n) / float64(r) * float64(Second))
}
