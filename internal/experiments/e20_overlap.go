package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// e20SegmentRows keeps segments small enough that a query streams many
// batches through the pipeline; staged overlap needs a stream, not one
// monolithic read.
const e20SegmentRows = 8192

// E20Result carries the staged-overlap traces for assertions.
type E20Result struct {
	Table *Table

	DataFlowTrace *obs.Trace
	VolcanoTrace  *obs.Trace

	DataFlowVariant string
	DataFlowCF      float64 // mean simultaneously active resources
	VolcanoCF       float64
}

// E20StageOverlap reproduces the Section 4 staged-pipeline claim with
// the tracing layer as its instrument: the same filtered group-by runs
// on both engines with virtual-time tracing enabled, and the traces are
// compared on their concurrency factor — total resource busy time over
// makespan, i.e. the mean number of devices and links active at once.
// The data-flow engine overlaps media read-ahead, link DMA, storage
// decode and downstream stages, so it scores well above 1; the
// pull-based baseline touches one resource at a time and cannot exceed
// 1. The traces are deterministic, so CI diffs them byte-for-byte.
func E20StageOverlap(rows int) (*E20Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.5)).
		WithGroupBy(workload.PricingSummary())

	df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	df.Tracing = true
	df.Storage.SegmentRows = e20SegmentRows
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return nil, err
	}
	if err := df.Load("lineitem", data); err != nil {
		return nil, err
	}
	dfRes, err := df.Execute(context.Background(), q)
	if err != nil {
		return nil, err
	}

	vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 256*sim.MB)
	vo.Tracing = true
	if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return nil, err
	}
	if err := vo.Load("lineitem", data); err != nil {
		return nil, err
	}
	voRes, err := vo.Execute(context.Background(), q)
	if err != nil {
		return nil, err
	}
	if dfRes.Rows() != voRes.Rows() {
		return nil, fmt.Errorf("experiments: E20 engines disagree (%d vs %d rows)", dfRes.Rows(), voRes.Rows())
	}

	res := &E20Result{
		Table: &Table{
			ID:    "E20",
			Title: "Staged pipeline overlap (Section 4): mean active resources, from virtual-time traces",
			Header: []string{"engine", "variant", "makespan", "resource busy",
				"concurrency", "tracks"},
			Notes: "concurrency = total span time / makespan over the traced timeline; " +
				"a pull engine uses one resource at a time (<= 1), the staged pipeline keeps " +
				"media, links and processors busy concurrently",
		},
		DataFlowTrace:   dfRes.Trace,
		VolcanoTrace:    voRes.Trace,
		DataFlowVariant: dfRes.Stats.Variant,
		DataFlowCF:      dfRes.Trace.ConcurrencyFactor(),
		VolcanoCF:       voRes.Trace.ConcurrencyFactor(),
	}
	add := func(engine, variant string, tr *obs.Trace, cf float64) {
		res.Table.AddRow(engine, variant,
			tr.Makespan().String(), tr.WorkBusy().String(),
			f(cf), d(int64(len(tr.Tracks()))))
	}
	add("dataflow", res.DataFlowVariant, dfRes.Trace, res.DataFlowCF)
	add("volcano", "-", voRes.Trace, res.VolcanoCF)
	res.Table.SetMetric("dataflow_concurrency", res.DataFlowCF)
	res.Table.SetMetric("volcano_concurrency", res.VolcanoCF)
	res.Table.SetMetric("dataflow_makespan_vns", float64(dfRes.Trace.Makespan()))
	res.Table.SetMetric("volcano_makespan_vns", float64(voRes.Trace.Makespan()))
	return res, nil
}
