package core

import (
	"context"
	"fmt"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

// ExecuteGroupByDistributed runs a group-by query across several compute
// nodes using the Figure 4 scattering pipeline: the (optionally
// storage-filtered) stream is hash-partitioned on the first group
// column — on the storage NIC when it is smart, on compute node 0's CPU
// otherwise — each node aggregates its disjoint share of the groups, and
// the per-node results gather on node 0. Because partitioning is by
// group key, no cross-node merge is needed and results are exact.
func (e *DataFlowEngine) ExecuteGroupByDistributed(ctx context.Context, q *plan.Query, nodes int) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.GroupBy == nil || len(q.GroupBy.GroupCols) == 0 {
		return nil, fmt.Errorf("core: distributed execution needs a keyed GROUP BY")
	}
	if nodes <= 0 {
		nodes = e.Cluster.Cfg.ComputeNodes
	}
	if nodes > e.Cluster.Cfg.ComputeNodes {
		return nil, fmt.Errorf("core: want %d nodes, cluster has %d", nodes, e.Cluster.Cfg.ComputeNodes)
	}
	meta, err := e.Storage.Table(q.Table)
	if err != nil {
		return nil, err
	}
	before := e.snapshotMeters()

	// Scan with filter pushdown when the storage processor allows it;
	// ship only the columns the aggregation touches.
	spec := storage.ScanSpec{
		Filter:     q.Filter,
		Projection: groupByColumns(q.GroupBy, q.Filter, meta.Schema.NumFields()),
		Pushdown:   q.Filter != nil && e.Storage.Proc().Can(fabric.OpFilter),
	}
	shipped := spec.ShippedColumns(meta.Schema.NumFields())
	pos := make(map[int]int, len(shipped))
	for i, c := range shipped {
		pos[c] = i
	}
	rebase := func(c int) int { return pos[c] }
	shippedSchema := meta.Schema.Project(shipped)
	rebasedSpec := q.GroupBy.Rebase(rebase)
	var shippedFilter expr.Predicate
	if q.Filter != nil && !spec.Pushdown {
		shippedFilter = expr.Rebase(q.Filter, rebase)
	}

	// Scatter point and per-node aggregation state.
	scatter := e.Cluster.StorageNIC()
	if !scatter.Can(fabric.OpPartition) {
		scatter = e.Cluster.ComputeCPU(0)
	}
	aggs := make([]*expr.FinalAggregator, nodes)
	dests := make([]netsim.Destination, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		aggs[i] = expr.NewFinalAggregator(rebasedSpec, shippedSchema)
		cpu := e.Cluster.ComputeCPU(i)
		path, err := e.Cluster.Path(scatter.Name, cpu.Name)
		if err != nil {
			return nil, err
		}
		dests[i] = netsim.Destination{
			Path: path,
			Sink: func(b *columnar.Batch) error {
				if shippedFilter != nil {
					cpu.Charge(fabric.OpFilter, sim.Bytes(b.ByteSize()))
					b = b.Filter(shippedFilter.Eval(b))
				}
				cpu.Charge(fabric.OpAggregate, sim.Bytes(b.ByteSize()))
				aggs[i].AddRaw(b)
				return nil
			},
		}
	}
	ex, err := netsim.NewExchange(rebasedSpec.GroupCols[0], dests)
	if err != nil {
		return nil, err
	}

	scatter.ChargeSetup()
	_, err = e.Storage.Scan(ctx, q.Table, spec, func(b *columnar.Batch) error {
		scatter.Charge(fabric.OpPartition, sim.Bytes(b.ByteSize()))
		return ex.Process(b, nil)
	})
	if err != nil {
		return nil, lifecycleError(err)
	}
	if err := ex.Flush(nil); err != nil {
		return nil, err
	}

	// Gather per-node results on node 0.
	parts := make([][]*columnar.Batch, nodes)
	gatherPaths := make([][]*fabric.Link, nodes)
	for i := 0; i < nodes; i++ {
		parts[i] = []*columnar.Batch{aggs[i].Result()}
		if i > 0 {
			p, err := e.Cluster.Path(fabric.ComputeDev(i, "cpu"), fabric.ComputeDev(0, "cpu"))
			if err != nil {
				return nil, err
			}
			gatherPaths[i] = p
		}
	}
	res := &Result{Batches: netsim.Gather(parts, gatherPaths)}
	res.Stats = e.joinStats(before, res)
	res.Stats.Variant = fmt.Sprintf("distributed-groupby-%dn", nodes)
	return res, nil
}
