// Package sched implements the paper's Section 7.3 scheduling layer.
// Interference is the enemy of sustained performance: when two plans
// contend for a link or accelerator, arbitration and re-acquisition
// overheads eat throughput. The scheduler therefore (a) selects among
// each query's plan *variants* at admission time, steering new work away
// from loaded resources, and (b) rate-limits the DMA bandwidth of plans
// sharing a link so each gets a fair, predictable share.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Admission is one admitted plan execution. Callers must Release it when
// the query finishes.
type Admission struct {
	ID      int64
	Plan    *plan.Physical
	Variant string

	links []*fabric.Link
}

// Scheduler tracks active plans and the load they put on fabric links.
type Scheduler struct {
	mu       sync.Mutex
	nextID   int64
	active   map[int64]*Admission
	linkLoad map[*fabric.Link]int

	// ContentionPenalty is the rank-score penalty per already-active
	// plan on a link the candidate variant would use. Higher values
	// steer harder toward idle resources.
	ContentionPenalty float64
	// FairShare, when set, rate-limits every link to bandwidth/k while
	// k admitted plans share it (Section 7.3's DMA rate limiting).
	FairShare bool
	// FailurePenalty is the rank-score penalty per recorded failover on a
	// device the candidate variant places work on. Admission steers new
	// queries away from recently flaky devices without banning them.
	FailurePenalty float64

	failures map[string]int // device name -> failovers recorded
}

// DefaultFailurePenalty is a fresh scheduler's per-failure score
// penalty; two recorded failures outweigh one rank position plus typical
// contention, so flaky devices lose ties quickly.
const DefaultFailurePenalty = 2.0

// New returns an empty scheduler with fair sharing enabled.
func New() *Scheduler {
	return &Scheduler{
		active:            make(map[int64]*Admission),
		linkLoad:          make(map[*fabric.Link]int),
		failures:          make(map[string]int),
		ContentionPenalty: 1.0,
		FailurePenalty:    DefaultFailurePenalty,
		FairShare:         true,
	}
}

// NoteFailover records that a query failed over away from the named
// device; future admissions penalize variants placing work there.
func (s *Scheduler) NoteFailover(device string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures[device]++
}

// DeviceFailures reports the failovers recorded against a device.
func (s *Scheduler) DeviceFailures(device string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures[device]
}

// variantLinks collects the distinct links a variant's data crosses.
func variantLinks(p *plan.Physical) []*fabric.Link {
	seen := map[*fabric.Link]bool{}
	var out []*fabric.Link
	for _, site := range p.Path.Sites {
		for _, l := range site.ToNext {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// variantOffline reports whether the variant places work on a device
// that is currently offline.
func variantOffline(p *plan.Physical) bool {
	seen := map[int]bool{}
	for _, pl := range p.Placements {
		seen[pl.SiteIdx] = true
	}
	for i, site := range p.Path.Sites {
		if seen[i] && site.Device.IsOffline() {
			return true
		}
	}
	return false
}

// Admit picks the least-interfering variant from the ranked candidates
// (best-ranked first, as returned by plan.Optimizer.Enumerate) and
// reserves its links. The choice trades the optimizer's static rank
// against current contention and recorded device failures: an idle
// lower-ranked variant can win over a loaded or flaky top-ranked one.
// Variants that place work on offline devices are inadmissible.
func (s *Scheduler) Admit(variants []*plan.Physical) (*Admission, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("sched: no variants to admit")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	type scored struct {
		idx  int
		cost float64
	}
	var scores []scored
	for i, v := range variants {
		if variantOffline(v) {
			continue
		}
		contention := 0
		for _, l := range variantLinks(v) {
			contention += s.linkLoad[l]
		}
		failed := 0
		for _, name := range v.PlacedDevices() {
			failed += s.failures[name]
		}
		cost := float64(i) + s.ContentionPenalty*float64(contention) +
			s.FailurePenalty*float64(failed)
		scores = append(scores, scored{idx: i, cost: cost})
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("sched: all %d variants place work on offline devices", len(variants))
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].cost < scores[b].cost })
	chosen := variants[scores[0].idx]

	s.nextID++
	adm := &Admission{
		ID:      s.nextID,
		Plan:    chosen,
		Variant: chosen.Variant,
		links:   variantLinks(chosen),
	}
	s.active[adm.ID] = adm
	for _, l := range adm.links {
		s.linkLoad[l]++
	}
	s.rebalanceLocked()
	return adm, nil
}

// AdmitTraced is Admit plus an admission event on the trace: which
// variant won, out of how many candidates, and what it placed where —
// the placement decision a timeline reader needs to interpret the
// stage tracks that follow. A nil trace reduces to plain Admit.
func (s *Scheduler) AdmitTraced(variants []*plan.Physical, tr *obs.Trace) (*Admission, error) {
	adm, err := s.Admit(variants)
	if err != nil {
		return nil, err
	}
	if tr.Enabled() {
		tr.AddEvent(obs.Event{
			Name:  "admit",
			Track: "sched",
			At:    0,
			Detail: fmt.Sprintf("variant %q chosen from %d candidates; devices %v",
				adm.Variant, len(variants), adm.Plan.PlacedDevices()),
		})
	}
	return adm, nil
}

// Release returns an admission's resources and recomputes fair shares.
// Releasing twice is a caller bug and panics.
func (s *Scheduler) Release(adm *Admission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.active[adm.ID]; !ok {
		panic(fmt.Sprintf("sched: double release of admission %d", adm.ID))
	}
	delete(s.active, adm.ID)
	for _, l := range adm.links {
		s.linkLoad[l]--
		if s.linkLoad[l] <= 0 {
			delete(s.linkLoad, l)
		}
	}
	s.rebalanceLocked()
}

// rebalanceLocked applies fair-share rate limits to every tracked link.
func (s *Scheduler) rebalanceLocked() {
	if !s.FairShare {
		return
	}
	// Collect all links seen in active admissions (including ones whose
	// load just dropped to zero, to clear their limit).
	seen := map[*fabric.Link]bool{}
	for _, adm := range s.active {
		for _, l := range adm.links {
			seen[l] = true
		}
	}
	for l := range seen {
		k := s.linkLoad[l]
		if k <= 1 {
			l.SetRateLimit(0)
		} else {
			l.SetRateLimit(l.Bandwidth / sim.Rate(k))
		}
	}
}

// ClearLimits removes every rate limit the scheduler has set; use after
// draining all admissions in tests and experiments.
func (s *Scheduler) ClearLimits() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for l := range s.linkLoad {
		l.SetRateLimit(0)
	}
}

// ActiveCount reports the number of admitted, unreleased plans.
func (s *Scheduler) ActiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// LinkLoad reports how many active plans use the link.
func (s *Scheduler) LinkLoad(l *fabric.Link) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.linkLoad[l]
}
