package memdev

import (
	"testing"

	"repro/internal/sim"
)

func TestCacheLevelBasics(t *testing.T) {
	c := NewCacheLevel("t", 4, 2, 64, sim.Nanosecond)
	if c.CapacityBytes() != 4*2*64 {
		t.Errorf("capacity = %v", c.CapacityBytes())
	}
	if c.lookup(0) {
		t.Error("cold cache hit")
	}
	c.fill(0)
	if !c.lookup(0) {
		t.Error("filled line missed")
	}
	if !c.lookup(63) {
		t.Error("same line, different byte missed")
	}
	if c.lookup(64) {
		t.Error("next line hit without fill")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set x 2 ways, 64B lines; addresses 0, 256, 512 all map to set 0.
	c := NewCacheLevel("t", 1, 2, 64, 0)
	c.fill(0)
	c.fill(256)
	c.lookup(0) // refresh 0
	c.fill(512) // must evict 256 (LRU)
	if !c.lookup(0) {
		t.Error("recently used line evicted")
	}
	if c.lookup(256) {
		t.Error("LRU line survived")
	}
	if !c.lookup(512) {
		t.Error("just-filled line missing")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCacheLevel("x", 3, 2, 64, 0) }, // non-power-of-two sets
		func() { NewCacheLevel("x", 4, 0, 64, 0) }, // no ways
		func() { NewCacheLevel("x", 4, 2, 0, 0) },  // no line size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

func TestHierarchySequentialLocality(t *testing.T) {
	h := NewDefaultHierarchy()
	// Sequential word scan: 7 of 8 accesses hit the L1 line already
	// fetched.
	h.ScanSequential(0, 1<<20)
	l1 := h.Levels[0]
	hitRate := float64(l1.Hits) / float64(l1.Hits+l1.Misses)
	if hitRate < 0.85 {
		t.Errorf("sequential L1 hit rate %.2f, want ~0.875", hitRate)
	}
}

func TestHierarchyWorkingSetLevels(t *testing.T) {
	h := NewDefaultHierarchy()
	rng := sim.NewRNG(1)
	// Tiny working set (16 KiB): after warmup, random accesses are L1
	// hits with near-zero stall share.
	h.ScanRandom(rng, 0, 16<<10, 20000)
	h.ResetStats()
	h.ScanRandom(rng, 0, 16<<10, 20000)
	smallStall := h.StallShare()

	h.Reset()
	// Huge working set (256 MiB): nearly every access walks to DRAM.
	h.ScanRandom(rng, 0, 256<<20, 20000)
	h.ResetStats()
	h.ScanRandom(rng, 0, 256<<20, 20000)
	bigStall := h.StallShare()

	if smallStall > 0.3 {
		t.Errorf("L1-resident stall share %.2f, want small", smallStall)
	}
	if bigStall < 0.8 {
		t.Errorf("DRAM-bound stall share %.2f, want ~1", bigStall)
	}
}

func TestHierarchyTLBMisses(t *testing.T) {
	h := NewDefaultHierarchy()
	rng := sim.NewRNG(2)
	// TLB covers 512*4*4KiB = 8 MiB; a 512 MiB working set must thrash
	// it.
	h.ScanRandom(rng, 0, 512<<20, 30000)
	tlbMissRate := float64(h.TLB.Misses) / float64(h.TLB.Hits+h.TLB.Misses)
	if tlbMissRate < 0.5 {
		t.Errorf("TLB miss rate %.2f over 512MiB, want high", tlbMissRate)
	}
	// And a small set must not.
	h.Reset()
	h.ScanRandom(rng, 0, 1<<20, 30000)
	tlbMissRate = float64(h.TLB.Misses) / float64(h.TLB.Hits+h.TLB.Misses)
	if tlbMissRate > 0.05 {
		t.Errorf("TLB miss rate %.2f over 1MiB, want tiny", tlbMissRate)
	}
}

func TestHierarchyAccessLatencyOrdering(t *testing.T) {
	h := NewDefaultHierarchy()
	cold := h.Access(1 << 30) // full miss
	warm := h.Access(1 << 30) // L1 hit
	if warm >= cold {
		t.Errorf("warm access %v >= cold %v", warm, cold)
	}
	if warm != h.Levels[0].HitLatency {
		t.Errorf("warm access %v, want L1 latency", warm)
	}
}

func TestHierarchyResetAndStats(t *testing.T) {
	h := NewDefaultHierarchy()
	h.ScanSequential(0, 1<<16)
	if h.Accesses == 0 || h.TotalTime == 0 {
		t.Fatal("no accounting")
	}
	h.Reset()
	if h.Accesses != 0 || h.StallShare() != 0 || h.Levels[0].Hits != 0 {
		t.Error("Reset incomplete")
	}
}
