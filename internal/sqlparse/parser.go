package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/plan"
)

// Catalog resolves table names to schemas, so the parser can map column
// names to indices and types.
type Catalog interface {
	TableSchema(name string) (*columnar.Schema, error)
}

// Parse compiles one SELECT statement into a plan.Query.
func Parse(sql string, cat Catalog) (*plan.Query, error) {
	tokens, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens, cat: cat}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	tokens []token
	pos    int
	cat    Catalog
	schema *columnar.Schema
}

func (p *parser) peek() token { return p.tokens[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.tokens[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// selectItem is one parsed select-list entry.
type selectItem struct {
	isAgg bool
	agg   expr.AggSpec
	col   int
}

func (p *parser) parseSelect() (*plan.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// The select list references columns, but FROM comes later; scan
	// ahead for the table name first.
	items, star, err := p.parseSelectListRaw()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl := p.advance()
	if tbl.kind != tokIdent {
		return nil, p.errf("expected table name, got %q", tbl.text)
	}
	schema, err := p.cat.TableSchema(tbl.text)
	if err != nil {
		return nil, err
	}
	p.schema = schema

	q := plan.NewQuery(tbl.text)

	// Resolve the select list now that the schema is known.
	resolved, err := p.resolveItems(items)
	if err != nil {
		return nil, err
	}

	if p.keyword("WHERE") {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.WithFilter(pred)
	}

	var groupCols []int
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			groupCols = append(groupCols, col)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
	}

	// Assemble projection/aggregation from the select list.
	if err := assembleSelect(q, resolved, star, groupCols); err != nil {
		return nil, err
	}

	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		n := p.advance()
		if n.kind != tokNumber {
			return nil, p.errf("ORDER BY takes a 1-based output column number, got %q", n.text)
		}
		idx, err := strconv.Atoi(n.text)
		if err != nil || idx < 1 {
			return nil, p.errf("bad ORDER BY column %q", n.text)
		}
		q.WithOrderBy(idx - 1)
	}
	if p.keyword("LIMIT") {
		n := p.advance()
		if n.kind != tokNumber {
			return nil, p.errf("LIMIT takes a number, got %q", n.text)
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim < 1 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		q.WithLimit(lim)
	}
	return q, nil
}

// rawItem is a select-list entry before schema resolution.
type rawItem struct {
	aggFunc string // "" for a plain column
	column  string // "*" only for COUNT(*)
	pos     int
}

func (p *parser) parseSelectListRaw() ([]rawItem, bool, error) {
	if p.peek().kind == tokStar {
		p.advance()
		return nil, true, nil
	}
	var items []rawItem
	for {
		t := p.advance()
		if t.kind != tokIdent {
			return nil, false, p.errf("expected column or aggregate, got %q", t.text)
		}
		upper := strings.ToUpper(t.text)
		switch upper {
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			if p.peek().kind == tokLParen {
				p.advance()
				arg := p.advance()
				if upper == "COUNT" && arg.kind == tokStar {
					items = append(items, rawItem{aggFunc: "COUNT", column: "*", pos: t.pos})
				} else if arg.kind == tokIdent {
					items = append(items, rawItem{aggFunc: upper, column: arg.text, pos: t.pos})
				} else {
					return nil, false, p.errf("bad aggregate argument %q", arg.text)
				}
				if p.advance().kind != tokRParen {
					return nil, false, p.errf("expected ')' after aggregate")
				}
				break
			}
			// An identifier that happens to look like a function name.
			items = append(items, rawItem{column: t.text, pos: t.pos})
		default:
			items = append(items, rawItem{column: t.text, pos: t.pos})
		}
		if p.peek().kind != tokComma {
			return items, false, nil
		}
		p.advance()
	}
}

func (p *parser) resolveItems(items []rawItem) ([]selectItem, error) {
	out := make([]selectItem, 0, len(items))
	for _, it := range items {
		if it.aggFunc != "" {
			spec := expr.AggSpec{}
			switch it.aggFunc {
			case "COUNT":
				spec.Func = expr.Count
			case "SUM":
				spec.Func = expr.Sum
			case "MIN":
				spec.Func = expr.Min
			case "MAX":
				spec.Func = expr.Max
			case "AVG":
				spec.Func = expr.Avg
			}
			if it.column != "*" {
				col := p.schema.FieldIndex(it.column)
				if col < 0 {
					return nil, fmt.Errorf("sql: offset %d: unknown column %q", it.pos, it.column)
				}
				spec.Col = col
			} else if spec.Func != expr.Count {
				return nil, fmt.Errorf("sql: offset %d: %s(*) is not valid", it.pos, it.aggFunc)
			}
			out = append(out, selectItem{isAgg: true, agg: spec})
			continue
		}
		col := p.schema.FieldIndex(it.column)
		if col < 0 {
			return nil, fmt.Errorf("sql: offset %d: unknown column %q", it.pos, it.column)
		}
		out = append(out, selectItem{col: col})
	}
	return out, nil
}

// assembleSelect turns the resolved list into projection, aggregation or
// count-only form.
func assembleSelect(q *plan.Query, items []selectItem, star bool, groupCols []int) error {
	hasAgg := false
	for _, it := range items {
		if it.isAgg {
			hasAgg = true
		}
	}
	switch {
	case star:
		if len(groupCols) > 0 {
			return fmt.Errorf("sql: SELECT * with GROUP BY is not supported")
		}
		return nil // full projection
	case hasAgg:
		// Bare COUNT(*) with no grouping and no other items is the
		// count-only fast path.
		if len(items) == 1 && items[0].isAgg && items[0].agg.Func == expr.Count && len(groupCols) == 0 {
			q.WithCount()
			return nil
		}
		g := expr.GroupBy{GroupCols: groupCols}
		plainSeen := 0
		for _, it := range items {
			if it.isAgg {
				g.Aggs = append(g.Aggs, it.agg)
				continue
			}
			// Plain columns in an aggregate query must match GROUP BY
			// columns positionally.
			if plainSeen >= len(groupCols) || groupCols[plainSeen] != it.col {
				return fmt.Errorf("sql: selected column %d is not in GROUP BY", it.col)
			}
			plainSeen++
		}
		q.WithGroupBy(g)
		return nil
	default:
		if len(groupCols) > 0 {
			return fmt.Errorf("sql: GROUP BY without aggregates is not supported")
		}
		cols := make([]int, len(items))
		for i, it := range items {
			cols[i] = it.col
		}
		q.WithProjection(cols...)
		return nil
	}
}

// Predicate grammar: OR -> AND -> NOT/primary.

func (p *parser) parseOr() (expr.Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	preds := []expr.Predicate{left}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		preds = append(preds, right)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return expr.NewOr(preds...), nil
}

func (p *parser) parseAnd() (expr.Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	preds := []expr.Predicate{left}
	for {
		// AND also appears inside BETWEEN, which parseUnary consumes
		// before returning; any AND here is a conjunction.
		if !p.keyword("AND") {
			break
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		preds = append(preds, right)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return expr.NewAnd(preds...), nil
}

func (p *parser) parseUnary() (expr.Predicate, error) {
	if p.keyword("NOT") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(inner), nil
	}
	if p.peek().kind == tokLParen {
		p.advance()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.advance().kind != tokRParen {
			return nil, p.errf("expected ')'")
		}
		return inner, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr.Predicate, error) {
	col, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	colType := p.schema.Fields[col].Type

	if p.keyword("BETWEEN") {
		lo, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		if colType != columnar.Int64 {
			return nil, p.errf("BETWEEN requires a BIGINT column")
		}
		return expr.NewBetween(col, lo, hi), nil
	}
	if p.keyword("LIKE") {
		s := p.advance()
		if s.kind != tokString {
			return nil, p.errf("LIKE takes a string literal")
		}
		if colType != columnar.String {
			return nil, p.errf("LIKE requires a VARCHAR column")
		}
		pattern := strings.Trim(s.text, "%")
		return expr.NewLike(col, pattern), nil
	}

	opTok := p.advance()
	if opTok.kind != tokOp {
		return nil, p.errf("expected comparison operator, got %q", opTok.text)
	}
	var op expr.CmpOp
	switch opTok.text {
	case "=":
		op = expr.Eq
	case "!=", "<>":
		op = expr.Ne
	case "<":
		op = expr.Lt
	case "<=":
		op = expr.Le
	case ">":
		op = expr.Gt
	case ">=":
		op = expr.Ge
	}
	val, err := p.parseLiteral(colType)
	if err != nil {
		return nil, err
	}
	return expr.NewCmp(col, op, val), nil
}

func (p *parser) parseColumnRef() (int, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return 0, p.errf("expected column name, got %q", t.text)
	}
	col := p.schema.FieldIndex(t.text)
	if col < 0 {
		return 0, fmt.Errorf("sql: offset %d: unknown column %q", t.pos, t.text)
	}
	return col, nil
}

func (p *parser) parseIntLiteral() (int64, error) {
	t := p.advance()
	if t.kind != tokNumber {
		return 0, p.errf("expected integer, got %q", t.text)
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return v, nil
}

// parseLiteral reads a literal matching the column type.
func (p *parser) parseLiteral(want columnar.Type) (columnar.Value, error) {
	t := p.advance()
	switch t.kind {
	case tokNumber:
		switch want {
		case columnar.Int64:
			v, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return columnar.Value{}, p.errf("bad integer %q", t.text)
			}
			return columnar.IntValue(v), nil
		case columnar.Float64:
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return columnar.Value{}, p.errf("bad number %q", t.text)
			}
			return columnar.FloatValue(v), nil
		}
		return columnar.Value{}, p.errf("numeric literal for non-numeric column")
	case tokString:
		if want != columnar.String {
			return columnar.Value{}, p.errf("string literal for non-string column")
		}
		return columnar.StringValue(t.text), nil
	case tokIdent:
		if strings.EqualFold(t.text, "TRUE") || strings.EqualFold(t.text, "FALSE") {
			if want != columnar.Bool {
				return columnar.Value{}, p.errf("boolean literal for non-boolean column")
			}
			return columnar.BoolValue(strings.EqualFold(t.text, "TRUE")), nil
		}
	}
	return columnar.Value{}, p.errf("expected literal, got %q", t.text)
}
