package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/repair"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Self-healing chaos: queries must return bit-identical answers while
// replicas are corrupted, lost, re-read, repaired and re-cloned
// underneath them, and the repair accounting must conserve bytes —
// queries are charged for exactly the clean payloads they consume, and
// each damaged blob is repaired exactly once.

func buildSelfHealEngine(t *testing.T, replicas int, data *columnar.Batch) *DataFlowEngine {
	t.Helper()
	df := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	df.Storage.Store().SetReplicas(replicas)
	df.Storage.Store().RetryBase = 0
	df.Storage.SegmentRows = 1000 // 20 segments: many chances to hit damage
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := df.Load("lineitem", data); err != nil {
		t.Fatal(err)
	}
	return df
}

// Deterministic read-repair under concurrency: a third of replica 0's
// segment blobs carry latent damage, concurrent queries all answer
// bit-identically, the main meter is charged for exactly one clean
// payload per segment per query, and every damaged blob is written back
// exactly once no matter how many readers detected it.
func TestSelfHealReadRepairConservation(t *testing.T) {
	cfg := workload.DefaultLineitemConfig(testRows)
	data := workload.GenLineitem(cfg)

	clean := buildSelfHealEngine(t, 2, data)
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())
	want, err := clean.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := rowHistogram(want)

	df := buildSelfHealEngine(t, 2, data)
	ctrl := df.EnableRepair(repair.Config{})
	store := df.Storage.Store()

	// Warm up with verification on to measure the per-query payload.
	bytesBefore := store.Meter.Bytes()
	if _, err := df.Execute(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	perQuery := store.Meter.Bytes() - bytesBefore

	// Seed latent damage on replica 0 of every third segment. A flip can
	// land in framing bytes the segment checksums do not cover, so count
	// only the detectable damage — the undetectable kind is invisible to
	// verification by construction and changes no answer.
	var damaged int
	keys := store.List("lineitem/")
	if len(keys) < 10 {
		t.Fatalf("only %d segments, want a fleet of them", len(keys))
	}
	for i, key := range keys {
		if i%3 == 0 {
			if !store.CorruptReplica(key, 0) {
				t.Fatalf("could not damage %s", key)
			}
			raw, err := store.ReadReplicaRaw(context.Background(), key, 0)
			if err != nil {
				t.Fatal(err)
			}
			if storage.VerifySegmentBlob(raw) != nil {
				damaged++
			}
		}
	}
	if damaged < 2 {
		t.Fatalf("only %d detectable damaged blobs seeded", damaged)
	}

	const workers, rounds = 6, 3
	bytesBefore = store.Meter.Bytes()
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := df.Execute(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				got := rowHistogram(res)
				if len(got) != len(wantRows) {
					t.Errorf("%d distinct rows, want %d", len(got), len(wantRows))
					return
				}
				for k, n := range wantRows {
					if got[k] != n {
						t.Errorf("row %q count %d, want %d", k, got[k], n)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query over damaged replicas failed: %v", err)
	}

	// Byte conservation: every query paid for each segment's clean
	// payload exactly once; discarded corrupt reads and repair
	// write-backs landed on their own counters.
	if got, want := store.Meter.Bytes()-bytesBefore, sim.Bytes(workers*rounds)*perQuery; got != want {
		t.Errorf("main meter charged %d bytes for %d queries, want exactly %d", got, workers*rounds, want)
	}
	rep := store.Repairs()
	if rep.WriteBacks != int64(damaged) {
		t.Errorf("WriteBacks = %d, want exactly %d (one per damaged blob)", rep.WriteBacks, damaged)
	}
	if rep.CorruptReads < int64(damaged) {
		t.Errorf("CorruptReads = %d, want >= %d", rep.CorruptReads, damaged)
	}
	if rep.CorruptBytes == 0 {
		t.Error("discarded corrupt payloads were not metered")
	}
	if got := ctrl.Stats().ReadRepairs; got != int64(damaged) {
		t.Errorf("controller ReadRepairs = %d, want %d", got, damaged)
	}

	// Everything verifies clean now: a scrub pass finds no work.
	sum := ctrl.ScrubPass(context.Background())
	if sum.Corrupt != 0 || sum.Healed != 0 || sum.Lost != 0 {
		t.Errorf("post-heal scrub = %+v, want all clean", sum)
	}
	if sum.Clean != 2*len(keys) {
		t.Errorf("scrub verified %d blobs, want %d", sum.Clean, 2*len(keys))
	}

	// The per-query stats surfaced the repair work and the String form
	// renders it.
	res, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CorruptReads != 0 || res.Stats.ReadRepairs != 0 {
		t.Errorf("post-heal query still reports repair work: %+v", res.Stats)
	}
	healed := ExecStats{Engine: "dataflow", CorruptReads: 2, ReadRepairs: 1, RepairBytes: 64}
	if !strings.Contains(healed.String(), "self-heal:") {
		t.Error("ExecStats.String does not render the self-heal line")
	}
}

// Full chaos: StickyCorrupt and DeviceOffline armed, a whole replica
// lost mid-run, the background Run loop scrubbing and re-cloning under
// concurrent queries. Every query answers bit-identically, the dead
// replica is declared and restored with a recorded MTTR, and a final
// scrub finds the store fully clean. CI runs this with -race -count=2.
func TestSelfHealChaosScrubAndReclone(t *testing.T) {
	cfg := workload.DefaultLineitemConfig(testRows)
	data := workload.GenLineitem(cfg)

	clean := buildSelfHealEngine(t, 3, data)
	queries := []*plan.Query{
		plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary()),
		plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.1)).
			WithProjection(workload.LExtendedPrice),
	}
	expected := make([]map[string]int, len(queries))
	for i, q := range queries {
		res, err := clean.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = rowHistogram(res)
	}

	// Three replicas: sticky damage lands on r0, replica 2 dies, and r1
	// stays clean so every heal has a source.
	df := buildSelfHealEngine(t, 3, data)
	store := df.Storage.Store()
	pol := resilience.NewPolicy()
	df.EnableResilience(pol)
	ctrl := df.EnableRepair(repair.Config{
		Interval:  time.Millisecond,
		DeadAfter: 5 * time.Millisecond,
		Streams:   2,
	})

	inj := faults.New(0x5E1F)
	inj.Arm(faults.Point{Kind: faults.StickyCorrupt, Target: "store/r0", Prob: 0.05, Budget: 6})
	store.Faults = inj
	engineInj := faults.New(0x5E1F + 1)
	engineInj.Arm(faults.Point{Kind: faults.DeviceOffline, Target: fabric.DevStorageProc, Prob: 1, Budget: 1})
	df.Faults = engineInj

	runCtx, stopRun := context.WithCancel(context.Background())
	var runWG sync.WaitGroup
	runWG.Add(1)
	go func() {
		defer runWG.Done()
		ctrl.Run(runCtx)
	}()

	const workers, rounds = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	var killOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if w == 0 && r == 1 {
					// Mid-run, a whole replica's device dies.
					killOnce.Do(func() { store.FailReplica(2) })
				}
				qi := (w + r) % len(queries)
				res, err := df.ExecuteOn(context.Background(), queries[qi], w%2)
				if err != nil {
					errs <- err
					return
				}
				got := rowHistogram(res)
				if len(got) != len(expected[qi]) {
					t.Errorf("worker %d query %d: %d distinct rows, want %d",
						w, qi, len(got), len(expected[qi]))
					return
				}
				for k, n := range expected[qi] {
					if got[k] != n {
						t.Errorf("worker %d query %d: row %q count %d, want %d",
							w, qi, k, got[k], n)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query under self-heal chaos failed: %v", err)
	}

	// Let the background loop finish the heal: at-risk drains to zero.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if objects, _ := store.UnderReplicated(); objects == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	stopRun()
	runWG.Wait()

	if objects, slots := store.UnderReplicated(); objects != 0 {
		t.Fatalf("%d objects still under-replicated (slots %v) after the heal loop", objects, slots)
	}
	rep := ctrl.Stats()
	if rep.DeadDeclared < 1 {
		t.Error("dead replica never declared")
	}
	if rep.Recloned != int64(len(store.List("lineitem/"))) {
		t.Errorf("Recloned = %d, want every segment of the dead replica (%d)",
			rep.Recloned, len(store.List("lineitem/")))
	}
	if rep.LastMTTR <= 0 {
		t.Error("completed restoration recorded no MTTR")
	}
	if rep.Unrecoverable != 0 {
		t.Errorf("%d blobs unrecoverable with a clean replica present", rep.Unrecoverable)
	}

	// The store is fully clean: one more scrub pass verifies every blob.
	sum := ctrl.ScrubPass(context.Background())
	if sum.Corrupt != 0 || sum.Lost != 0 || sum.Healed != 0 {
		t.Errorf("final scrub = %+v, want nothing left to heal", sum)
	}
	if df.Scheduler.ActiveCount() != 0 {
		t.Error("admissions leaked after chaos")
	}
}
