package storage

import (
	"context"
	"testing"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/sim"
)

// batchesEqual compares two scans' outputs cell by cell.
func batchesEqual(t *testing.T, a, b []*columnar.Batch) {
	t.Helper()
	av, bv := a, b
	ra, rb := totalRows(av), totalRows(bv)
	if ra != rb {
		t.Fatalf("row counts differ: %d vs %d", ra, rb)
	}
	// Walk rows across batch boundaries.
	ai, ar := 0, 0
	bi, br := 0, 0
	for {
		for ai < len(av) && ar >= av[ai].NumRows() {
			ai, ar = ai+1, 0
		}
		for bi < len(bv) && br >= bv[bi].NumRows() {
			bi, br = bi+1, 0
		}
		if ai == len(av) || bi == len(bv) {
			return
		}
		ba, bb := av[ai], bv[bi]
		if ba.NumCols() != bb.NumCols() {
			t.Fatalf("column counts differ: %d vs %d", ba.NumCols(), bb.NumCols())
		}
		for c := 0; c < ba.NumCols(); c++ {
			if !ba.Col(c).Value(ar).Equal(bb.Col(c).Value(br)) {
				t.Fatalf("cell differs at col %d: %v vs %v", c, ba.Col(c).Value(ar), bb.Col(c).Value(br))
			}
		}
		ar, br = ar+1, br+1
	}
}

func runScan(t *testing.T, srv *Server, spec ScanSpec) ([]*columnar.Batch, ScanStats, sim.VTime) {
	t.Helper()
	emit, got := collect(t)
	before := srv.Proc().Meter.Busy()
	stats, err := srv.Scan(context.Background(), "lineitem", spec, emit)
	if err != nil {
		t.Fatal(err)
	}
	return *got, stats, srv.Proc().Meter.Busy() - before
}

func TestEncodedEvalScanMatchesEager(t *testing.T) {
	specs := []ScanSpec{
		{Projection: []int{0, 2}, Filter: expr.NewBetween(1, 5, 9), Pushdown: true},
		{Projection: []int{2}, Filter: expr.NewCmp(1, expr.Ne, columnar.IntValue(3)), Pushdown: true},
		{Projection: []int{0, 3}, Filter: expr.NewCmp(3, expr.Eq, columnar.StringValue("fox")), Pushdown: true},
		{Projection: []int{1}, Filter: expr.NewCmp(2, expr.Lt, columnar.FloatValue(100)), Pushdown: true},
		{Projection: []int{0}, Filter: expr.NewIn(1, columnar.IntValue(2), columnar.IntValue(4)), Pushdown: true},
		{Filter: expr.NewNot(expr.NewBetween(0, 0, 2400)), Pushdown: true}, // nil projection = all columns
	}
	for _, workers := range []int{1, 3} {
		for si, base := range specs {
			eagerSrv := newTestServer(t, true)
			loadTable(t, eagerSrv, 5000)
			encSrv := newTestServer(t, true)
			loadTable(t, encSrv, 5000)

			eagerSpec := base
			eagerSpec.Workers = workers
			encSpec := base
			encSpec.Workers = workers
			encSpec.EncodedEval = true

			eagerOut, eagerStats, eagerBusy := runScan(t, eagerSrv, eagerSpec)
			encOut, encStats, encBusy := runScan(t, encSrv, encSpec)

			batchesEqual(t, eagerOut, encOut)
			if eagerStats.ShippedRows != encStats.ShippedRows || eagerStats.ShippedBytes != encStats.ShippedBytes {
				t.Fatalf("spec %d workers %d: shipped %d/%v vs %d/%v", si, workers,
					eagerStats.ShippedRows, eagerStats.ShippedBytes, encStats.ShippedRows, encStats.ShippedBytes)
			}
			if eagerStats.MediaBytes != encStats.MediaBytes {
				t.Fatalf("spec %d workers %d: media bytes %v vs %v", si, workers, eagerStats.MediaBytes, encStats.MediaBytes)
			}
			if encStats.EncodedEvalSegments == 0 {
				t.Fatalf("spec %d workers %d: encoded eval never engaged", si, workers)
			}
			if eagerStats.EncodedEvalSegments != 0 || eagerStats.DecodedBytesSaved != 0 {
				t.Fatalf("spec %d: eager scan reported encoded-eval stats %+v", si, eagerStats)
			}
			if encStats.DecodedBytes >= eagerStats.DecodedBytes {
				t.Fatalf("spec %d workers %d: encoded decoded %v, eager %v — no saving", si, workers,
					encStats.DecodedBytes, eagerStats.DecodedBytes)
			}
			if encStats.DecodedBytesSaved == 0 {
				t.Fatalf("spec %d workers %d: DecodedBytesSaved = 0", si, workers)
			}
			if encBusy >= eagerBusy {
				t.Fatalf("spec %d workers %d: encoded busy %v >= eager busy %v", si, workers, encBusy, eagerBusy)
			}
		}
	}
}

func TestEncodedEvalFallbackUnsupportedPredicate(t *testing.T) {
	srv := newTestServer(t, true)
	if _, err := srv.CreateTable("lineitem", columnar.NewSchema(
		columnar.Field{Name: "id", Type: columnar.Int64},
		columnar.Field{Name: "flag", Type: columnar.Bool},
	)); err != nil {
		t.Fatal(err)
	}
	b := columnar.NewBatch(columnar.NewSchema(
		columnar.Field{Name: "id", Type: columnar.Int64},
		columnar.Field{Name: "flag", Type: columnar.Bool},
	), 100)
	for i := 0; i < 100; i++ {
		b.AppendRow(columnar.IntValue(int64(i)), columnar.BoolValue(i%3 == 0))
	}
	if err := srv.Append("lineitem", b); err != nil {
		t.Fatal(err)
	}
	// Bool comparisons have no encoded kernel: the scan must fall back
	// per segment and still return correct rows.
	spec := ScanSpec{
		Projection:  []int{0},
		Filter:      expr.NewCmp(1, expr.Eq, columnar.BoolValue(true)),
		Pushdown:    true,
		EncodedEval: true,
	}
	out, stats, _ := runScan(t, srv, spec)
	if got := totalRows(out); got != 34 {
		t.Fatalf("rows = %d, want 34", got)
	}
	if stats.EncodedEvalSegments != 0 {
		t.Fatalf("unsupported predicate counted as encoded eval: %+v", stats)
	}
	if stats.DecodedBytes == 0 {
		t.Fatal("fallback path did not account decoded bytes")
	}
}

func TestEncodedEvalIgnoredWithoutPushdown(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 2000)
	spec := ScanSpec{
		Projection:  []int{0},
		Filter:      expr.NewBetween(1, 0, 4),
		EncodedEval: true, // no Pushdown: consumer filters, encoded eval must not engage
	}
	out, stats, _ := runScan(t, srv, spec)
	if stats.EncodedEvalSegments != 0 {
		t.Fatalf("encoded eval engaged without pushdown: %+v", stats)
	}
	// Without pushdown the filter column ships too and no rows are dropped.
	if got := totalRows(out); got != 2000 {
		t.Fatalf("rows = %d, want 2000", got)
	}
}

func TestEncodedEvalRecoversFromCorruptSegment(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 3000)
	// One read returns corrupted bytes; the checksum catches it and the
	// retry re-reads the clean stored blob.
	srv.Store().RetryBase = 0
	inj := faults.New(41)
	inj.Arm(faults.Point{Kind: faults.CorruptBlob, Prob: 1, Budget: 1})
	srv.Store().Faults = inj
	spec := ScanSpec{
		Projection:  []int{0, 2},
		Filter:      expr.NewBetween(1, 0, 24),
		Pushdown:    true,
		EncodedEval: true,
	}
	out, stats, _ := runScan(t, srv, spec)
	if got := totalRows(out); got != 1500 {
		t.Fatalf("rows = %d, want 1500", got)
	}
	if stats.Retries == 0 {
		t.Fatalf("corrupt blob did not trigger a retry: %+v", stats)
	}
}

func TestEncodedEvalProcBusyAdvantage(t *testing.T) {
	// At ~2% selectivity on a bit-packed column the processor should be
	// at least 2x less busy with encoded eval (the E23 acceptance bar is
	// 2x at <=10%).
	build := func() *Server {
		srv := newTestServer(t, true)
		loadTable(t, srv, 10000)
		return srv
	}
	spec := ScanSpec{Projection: []int{0, 2}, Filter: expr.NewCmp(1, expr.Eq, columnar.IntValue(7)), Pushdown: true}
	_, _, eagerBusy := runScan(t, build(), spec)
	encSpec := spec
	encSpec.EncodedEval = true
	_, _, encBusy := runScan(t, build(), encSpec)
	if encBusy*2 > eagerBusy {
		t.Fatalf("encoded busy %v, eager busy %v: less than 2x win", encBusy, eagerBusy)
	}
}
