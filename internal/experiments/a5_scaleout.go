package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// A5Row is one node-count point of the scale-out ablation.
type A5Row struct {
	Nodes      int
	Groups     int64
	MaxCPUBusy sim.VTime // busiest compute node
	Makespan   sim.VTime
}

// A5Result carries the scale-out sweep.
type A5Result struct {
	Table *Table
	Rows  []A5Row
}

// A5ScaleOut sweeps the distributed group-by (the Figure 4 pipeline
// applied to aggregation) over node counts: the NIC-scattered exchange
// lets per-node CPU work shrink with the node count, the scale-out story
// the paper's rack-scale discussion (Section 6.4) assumes.
func A5ScaleOut(rows int, nodeCounts []int) (*A5Result, error) {
	data := workload.GenKV(workload.KVConfig{Rows: rows, Keys: int64(rows) / 4, Seed: 37})
	res := &A5Result{Table: &Table{
		ID:     "A5",
		Title:  "Ablation: distributed group-by scale-out (Figure 4 applied to aggregation)",
		Header: []string{"nodes", "groups", "busiest cpu", "makespan"},
		Notes:  "NIC-scattered partitioned aggregation; results identical at every width",
	}}
	var wantGroups int64 = -1
	for _, n := range nodeCounts {
		ccfg := fabric.DefaultClusterConfig()
		ccfg.ComputeNodes = n
		eng := core.NewDataFlowEngine(fabric.NewCluster(ccfg))
		if err := eng.CreateTable("kv", workload.KVSchema()); err != nil {
			return nil, err
		}
		if err := eng.Load("kv", data); err != nil {
			return nil, err
		}
		q := plan.NewQuery("kv").WithGroupBy(workload.KVGroupBy())
		r, err := eng.ExecuteGroupByDistributed(context.Background(), q, n)
		if err != nil {
			return nil, err
		}
		if wantGroups == -1 {
			wantGroups = r.Rows()
		} else if r.Rows() != wantGroups {
			return nil, fmt.Errorf("experiments: A5 group count changed at %d nodes", n)
		}
		var maxBusy sim.VTime
		for i := 0; i < n; i++ {
			if b := r.Stats.DeviceBusy[fabric.ComputeDev(i, "cpu")]; b > maxBusy {
				maxBusy = b
			}
		}
		row := A5Row{Nodes: n, Groups: r.Rows(), MaxCPUBusy: maxBusy, Makespan: r.Stats.SimTime}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(d(int64(n)), d(row.Groups), maxBusy.String(), row.Makespan.String())
	}
	return res, nil
}
