package sched

import (
	"testing"
	"time"

	"repro/internal/obs/metrics"
)

// The background repair admission class: repair defers while the SLO
// burn rate is at or above RepairBurnRate and admits otherwise; nil
// schedulers and unset thresholds admit everything.
func TestAllowRepair(t *testing.T) {
	var nilSched *Scheduler
	if !nilSched.AllowRepair() {
		t.Fatal("nil scheduler rejected repair")
	}

	s := New()
	if !s.AllowRepair() {
		t.Fatal("scheduler without SLO rejected repair")
	}

	reg := metrics.New()
	s.Metrics = reg
	slo := metrics.NewSLOTracker(time.Millisecond, 0.99)
	s.SLO = slo
	if !s.AllowRepair() {
		t.Fatal("unset RepairBurnRate rejected repair")
	}
	s.RepairBurnRate = 1.0

	// A healthy window (all requests under target) admits repair.
	for i := 0; i < 20; i++ {
		slo.Observe(100 * time.Microsecond)
	}
	if !s.AllowRepair() {
		t.Fatal("repair deferred under a healthy SLO")
	}
	if reg.Counter("sched.repair.admitted").Value() == 0 {
		t.Error("admitted decision not counted")
	}

	// Burning the whole error budget defers repair.
	for i := 0; i < 20; i++ {
		slo.Observe(10 * time.Millisecond)
	}
	if s.AllowRepair() {
		t.Fatalf("repair admitted at burn rate %.1f >= threshold", slo.BurnRate())
	}
	if reg.Counter("sched.repair.deferred").Value() == 0 {
		t.Error("deferred decision not counted")
	}
}
