package encoding

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/columnar"
)

// ColumnEncoding identifies the lightweight encoding applied to one
// column's values.
type ColumnEncoding uint8

// Available column encodings.
const (
	Plain ColumnEncoding = iota
	RLE
	DeltaVarint
	BitPacked
	Dict
)

// String names the encoding.
func (e ColumnEncoding) String() string {
	switch e {
	case Plain:
		return "PLAIN"
	case RLE:
		return "RLE"
	case DeltaVarint:
		return "DELTA"
	case BitPacked:
		return "BITPACK"
	case Dict:
		return "DICT"
	}
	return fmt.Sprintf("ColumnEncoding(%d)", uint8(e))
}

// Stats are per-column min/max statistics, the zone-map substrate
// (paper Section 2.2: cloud-native engines use zone maps instead of
// indexes to fetch as little data as possible).
type Stats struct {
	NumValues int
	NullCount int
	HasMinMax bool
	MinI      int64
	MaxI      int64
	MinF      float64
	MaxF      float64
	MinS      string
	MaxS      string
}

// OverlapsInt reports whether [lo, hi] intersects the column's int range.
// Columns without min/max conservatively overlap everything.
func (s Stats) OverlapsInt(lo, hi int64) bool {
	if !s.HasMinMax {
		return true
	}
	return hi >= s.MinI && lo <= s.MaxI
}

// OverlapsFloat reports whether [lo, hi] intersects the float range.
func (s Stats) OverlapsFloat(lo, hi float64) bool {
	if !s.HasMinMax {
		return true
	}
	return hi >= s.MinF && lo <= s.MaxF
}

// EncodedColumn is one column of one segment in its encoded form,
// self-describing and checksummed.
type EncodedColumn struct {
	Type     columnar.Type
	Encoding ColumnEncoding
	Stats    Stats
	Data     []byte // encoded values
	Nulls    []byte // EncodeBools of the null bitmap; empty if no nulls
	Checksum uint32 // CRC-32 (IEEE) of Data

	// decodedSize memoizes DecodedSize; not part of the wire format.
	decodedSize    int64
	hasDecodedSize bool
}

// EncodeColumn encodes a vector, picking the cheapest encoding by actually
// trying the applicable candidates and keeping the smallest output.
func EncodeColumn(v *columnar.Vector) *EncodedColumn {
	ec := &EncodedColumn{Type: v.Type()}
	ec.Stats.NumValues = v.Len()
	ec.Stats.NullCount = v.NullCount()
	if v.HasNulls() {
		nulls := make([]bool, v.Len())
		for i := range nulls {
			nulls[i] = v.IsNull(i)
		}
		ec.Nulls = EncodeBools(nulls)
	}
	switch v.Type() {
	case columnar.Int64:
		vals := v.Int64s()
		computeIntStats(&ec.Stats, v)
		candidates := []struct {
			enc  ColumnEncoding
			data []byte
		}{
			{RLE, EncodeRLEInt64(vals)},
			{DeltaVarint, EncodeDeltaVarint(vals)},
			{BitPacked, EncodeBitPacked(vals)},
		}
		best := candidates[0]
		for _, c := range candidates[1:] {
			if len(c.data) < len(best.data) {
				best = c
			}
		}
		ec.Encoding, ec.Data = best.enc, best.data
	case columnar.Float64:
		computeFloatStats(&ec.Stats, v)
		ec.Encoding, ec.Data = Plain, EncodeFloat64s(v.Float64s())
	case columnar.String:
		computeStringStats(&ec.Stats, v)
		dict := EncodeDict(v.Strings())
		plain := EncodePlainStrings(v.Strings())
		if len(dict) < len(plain) {
			ec.Encoding, ec.Data = Dict, dict
		} else {
			ec.Encoding, ec.Data = Plain, plain
		}
	case columnar.Bool:
		ec.Encoding, ec.Data = Plain, EncodeBools(v.Bools())
	}
	ec.Checksum = crc32.ChecksumIEEE(ec.Data)
	return ec
}

func computeIntStats(s *Stats, v *columnar.Vector) {
	first := true
	for i, x := range v.Int64s() {
		if v.IsNull(i) {
			continue
		}
		if first {
			s.MinI, s.MaxI = x, x
			first = false
			continue
		}
		if x < s.MinI {
			s.MinI = x
		}
		if x > s.MaxI {
			s.MaxI = x
		}
	}
	s.HasMinMax = !first
}

func computeFloatStats(s *Stats, v *columnar.Vector) {
	first := true
	for i, x := range v.Float64s() {
		if v.IsNull(i) {
			continue
		}
		if first {
			s.MinF, s.MaxF = x, x
			first = false
			continue
		}
		if x < s.MinF {
			s.MinF = x
		}
		if x > s.MaxF {
			s.MaxF = x
		}
	}
	s.HasMinMax = !first
}

func computeStringStats(s *Stats, v *columnar.Vector) {
	first := true
	for i, x := range v.Strings() {
		if v.IsNull(i) {
			continue
		}
		if first {
			s.MinS, s.MaxS = x, x
			first = false
			continue
		}
		if x < s.MinS {
			s.MinS = x
		}
		if x > s.MaxS {
			s.MaxS = x
		}
	}
	s.HasMinMax = !first
}

// Decode verifies the checksum and reconstructs the vector, including its
// null bitmap. This is the "decode (for error checking), perhaps
// decompress" step the paper describes storage servers performing.
func (ec *EncodedColumn) Decode() (*columnar.Vector, error) {
	if crc32.ChecksumIEEE(ec.Data) != ec.Checksum {
		return nil, fmt.Errorf("%w: column checksum mismatch", ErrCorrupt)
	}
	var v *columnar.Vector
	switch ec.Type {
	case columnar.Int64:
		var vals []int64
		var err error
		switch ec.Encoding {
		case RLE:
			vals, err = DecodeRLEInt64(ec.Data)
		case DeltaVarint:
			vals, err = DecodeDeltaVarint(ec.Data)
		case BitPacked:
			vals, err = DecodeBitPacked(ec.Data)
		default:
			return nil, fmt.Errorf("%w: encoding %v invalid for BIGINT", ErrCorrupt, ec.Encoding)
		}
		if err != nil {
			return nil, err
		}
		v = columnar.FromInt64s(vals)
	case columnar.Float64:
		vals, err := DecodeFloat64s(ec.Data)
		if err != nil {
			return nil, err
		}
		v = columnar.FromFloat64s(vals)
	case columnar.String:
		var vals []string
		var err error
		switch ec.Encoding {
		case Dict:
			vals, err = DecodeDict(ec.Data)
		case Plain:
			vals, err = DecodePlainStrings(ec.Data)
		default:
			return nil, fmt.Errorf("%w: encoding %v invalid for VARCHAR", ErrCorrupt, ec.Encoding)
		}
		if err != nil {
			return nil, err
		}
		v = columnar.FromStrings(vals)
	case columnar.Bool:
		vals, err := DecodeBools(ec.Data)
		if err != nil {
			return nil, err
		}
		v = columnar.FromBools(vals)
	default:
		return nil, fmt.Errorf("%w: unknown column type %d", ErrCorrupt, ec.Type)
	}
	if v.Len() != ec.Stats.NumValues {
		return nil, fmt.Errorf("%w: decoded %d values, header says %d", ErrCorrupt, v.Len(), ec.Stats.NumValues)
	}
	if len(ec.Nulls) > 0 {
		nulls, err := DecodeBools(ec.Nulls)
		if err != nil {
			return nil, err
		}
		if len(nulls) != v.Len() {
			return nil, fmt.Errorf("%w: null bitmap length mismatch", ErrCorrupt)
		}
		// Rebuild with nulls applied.
		out := columnar.NewVector(ec.Type, v.Len())
		for i := 0; i < v.Len(); i++ {
			if nulls[i] {
				out.AppendNull()
			} else {
				out.AppendValue(v.Value(i))
			}
		}
		v = out
	}
	return v, nil
}

// EncodedSize reports the byte size of the encoded representation,
// i.e. what moving this column over a link costs.
func (ec *EncodedColumn) EncodedSize() int64 {
	return int64(len(ec.Data) + len(ec.Nulls))
}

// Marshal serializes the encoded column with its header into a
// self-contained byte block.
func (ec *EncodedColumn) Marshal() []byte {
	out := []byte{byte(ec.Type), byte(ec.Encoding)}
	out = putUvarint(out, uint64(ec.Stats.NumValues))
	out = putUvarint(out, uint64(ec.Stats.NullCount))
	if ec.Stats.HasMinMax {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = putUvarint(out, zigzag(ec.Stats.MinI))
	out = putUvarint(out, zigzag(ec.Stats.MaxI))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(ec.Stats.MinF))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(ec.Stats.MaxF))
	out = putUvarint(out, uint64(len(ec.Stats.MinS)))
	out = append(out, ec.Stats.MinS...)
	out = putUvarint(out, uint64(len(ec.Stats.MaxS)))
	out = append(out, ec.Stats.MaxS...)
	out = binary.LittleEndian.AppendUint32(out, ec.Checksum)
	out = putUvarint(out, uint64(len(ec.Nulls)))
	out = append(out, ec.Nulls...)
	out = putUvarint(out, uint64(len(ec.Data)))
	out = append(out, ec.Data...)
	return out
}

// UnmarshalColumn parses a block produced by Marshal and returns the
// column plus the number of bytes consumed.
func UnmarshalColumn(data []byte) (*EncodedColumn, int, error) {
	orig := len(data)
	if len(data) < 2 {
		return nil, 0, fmt.Errorf("%w: column header truncated", ErrCorrupt)
	}
	ec := &EncodedColumn{Type: columnar.Type(data[0]), Encoding: ColumnEncoding(data[1])}
	data = data[2:]
	readUvarint := func() (uint64, error) {
		v, sz := binary.Uvarint(data)
		if sz <= 0 {
			return 0, fmt.Errorf("%w: column header varint truncated", ErrCorrupt)
		}
		data = data[sz:]
		return v, nil
	}
	nv, err := readUvarint()
	if err != nil {
		return nil, 0, err
	}
	ec.Stats.NumValues = int(nv)
	nc, err := readUvarint()
	if err != nil {
		return nil, 0, err
	}
	ec.Stats.NullCount = int(nc)
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("%w: column header truncated", ErrCorrupt)
	}
	ec.Stats.HasMinMax = data[0] == 1
	data = data[1:]
	mi, err := readUvarint()
	if err != nil {
		return nil, 0, err
	}
	ec.Stats.MinI = unzigzag(mi)
	ma, err := readUvarint()
	if err != nil {
		return nil, 0, err
	}
	ec.Stats.MaxI = unzigzag(ma)
	if len(data) < 16 {
		return nil, 0, fmt.Errorf("%w: column float stats truncated", ErrCorrupt)
	}
	ec.Stats.MinF = math.Float64frombits(binary.LittleEndian.Uint64(data))
	ec.Stats.MaxF = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	data = data[16:]
	readBytes := func() ([]byte, error) {
		l, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < l {
			return nil, fmt.Errorf("%w: column section truncated", ErrCorrupt)
		}
		data = data[sz:]
		b := data[:l]
		data = data[l:]
		return b, nil
	}
	minS, err := readBytes()
	if err != nil {
		return nil, 0, err
	}
	ec.Stats.MinS = string(minS)
	maxS, err := readBytes()
	if err != nil {
		return nil, 0, err
	}
	ec.Stats.MaxS = string(maxS)
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("%w: column checksum truncated", ErrCorrupt)
	}
	ec.Checksum = binary.LittleEndian.Uint32(data)
	data = data[4:]
	nulls, err := readBytes()
	if err != nil {
		return nil, 0, err
	}
	if len(nulls) > 0 {
		ec.Nulls = append([]byte(nil), nulls...)
	}
	payload, err := readBytes()
	if err != nil {
		return nil, 0, err
	}
	ec.Data = append([]byte(nil), payload...)
	return ec, orig - len(data), nil
}
