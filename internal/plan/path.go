package plan

import (
	"fmt"
	"strings"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Site names a position along the Figure 6 data path where a stage can
// execute.
type Site uint8

// Sites in data-path order.
const (
	SiteStorage    Site = iota // in-storage processor
	SiteStorageNIC             // sending NIC
	SiteComputeNIC             // receiving NIC
	SiteNearMemory             // near-memory accelerator
	SiteCPU                    // compute node cores
	numSites
)

// String names the site.
func (s Site) String() string {
	names := [...]string{"storage", "storage-nic", "compute-nic", "near-memory", "cpu"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("Site(%d)", uint8(s))
}

// SiteInfo binds a site to its device and the fabric links toward the
// next site.
type SiteInfo struct {
	Site   Site
	Device *fabric.Device
	// ToNext lists the links data crosses to reach the next site's
	// device (empty at the last site).
	ToNext []*fabric.Link
}

// PathModel is the ordered data path of one compute node within a
// cluster, the planner's view of the fabric.
type PathModel struct {
	Sites []SiteInfo
}

// FromCluster extracts the data path toward compute node `node`.
// Clusters without a near-memory accelerator yield a four-site path.
func FromCluster(c *fabric.Cluster, node int) (PathModel, error) {
	var pm PathModel
	cpuName := fabric.ComputeDev(node, "cpu")
	nicName := fabric.ComputeDev(node, "nic")
	if c.Device(cpuName) == nil {
		return pm, fmt.Errorf("plan: cluster has no compute node %d", node)
	}
	names := []struct {
		site Site
		dev  string
	}{
		{SiteStorage, fabric.DevStorageProc},
		{SiteStorageNIC, fabric.DevStorageNIC},
		{SiteComputeNIC, nicName},
	}
	if c.NearMem(node) != nil {
		names = append(names, struct {
			site Site
			dev  string
		}{SiteNearMemory, fabric.ComputeDev(node, "nma")})
	}
	names = append(names, struct {
		site Site
		dev  string
	}{SiteCPU, cpuName})

	for i, n := range names {
		info := SiteInfo{Site: n.site, Device: c.MustDevice(n.dev)}
		if i+1 < len(names) {
			links, err := c.Path(n.dev, names[i+1].dev)
			if err != nil {
				return pm, err
			}
			info.ToNext = links
		}
		pm.Sites = append(pm.Sites, info)
	}
	return pm, nil
}

// SiteIndex returns the index of the given site in the path, or -1.
func (pm PathModel) SiteIndex(s Site) int {
	for i, info := range pm.Sites {
		if info.Site == s {
			return i
		}
	}
	return -1
}

// CPU returns the terminal CPU device.
func (pm PathModel) CPU() *fabric.Device {
	return pm.Sites[len(pm.Sites)-1].Device
}

// EarliestCapable returns the index of the first site whose device
// supports op, searching from `from` onward; -1 if none.
func (pm PathModel) EarliestCapable(op fabric.OpClass, from int) int {
	for i := from; i < len(pm.Sites); i++ {
		if pm.Sites[i].Device.Can(op) {
			return i
		}
	}
	return -1
}

// SegmentBandwidth reports the bottleneck bandwidth between site i and
// i+1.
func (pm PathModel) SegmentBandwidth(i int) sim.Rate {
	links := pm.Sites[i].ToNext
	if len(links) == 0 {
		return 0 // on-device
	}
	min := links[0].EffectiveBandwidth()
	for _, l := range links[1:] {
		if bw := l.EffectiveBandwidth(); bw < min {
			min = bw
		}
	}
	return min
}

// SegmentLatency reports the summed latency between site i and i+1.
func (pm PathModel) SegmentLatency(i int) sim.VTime {
	var total sim.VTime
	for _, l := range pm.Sites[i].ToNext {
		total += l.Latency
	}
	return total
}

// String renders the path.
func (pm PathModel) String() string {
	var parts []string
	for _, s := range pm.Sites {
		parts = append(parts, fmt.Sprintf("%s[%s]", s.Site, s.Device.Name))
	}
	return strings.Join(parts, " -> ")
}
