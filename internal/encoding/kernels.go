package encoding

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/columnar"
)

// This file implements predicate kernels that evaluate comparisons
// directly on encoded column data, producing a selection bitmap without
// materializing values. The paper's in-storage processors are wimpy,
// streaming cores (Sections 3 and 7.2); every byte they decode only to
// discard is busy time stolen from pushdown. The kernels follow a fixed
// discipline:
//
//  1. Zone-map short circuit: if the predicate range cannot overlap the
//     column's min/max, or provably covers it, answer from Stats alone
//     without reading Data (no checksum, no decode).
//  2. Checksum verification, exactly as the eager decode path does, so
//     corrupt segments surface as ErrCorrupt through either path.
//  3. A streaming walk of the encoded form (per-run for RLE, per-delta
//     for DELTA, bit-stream for BITPACK, per-code for DICT).
//  4. NULL rows are cleared from the result: a comparison with NULL is
//     false, matching the decoded evaluation.
//
// Every kernel returns ok=false when the type/encoding pair is
// unsupported; callers fall back to decode-then-eval.

// nullRows parses the column's null bitmap into a columnar.Bitmap of n
// bits, or nil when the column has no nulls.
func (ec *EncodedColumn) nullRows() (*columnar.Bitmap, error) {
	if len(ec.Nulls) == 0 {
		return nil, nil
	}
	nulls, err := DecodeBools(ec.Nulls)
	if err != nil {
		return nil, err
	}
	if len(nulls) != ec.Stats.NumValues {
		return nil, fmt.Errorf("%w: null bitmap length mismatch", ErrCorrupt)
	}
	bm := columnar.NewBitmap(len(nulls))
	for i, isNull := range nulls {
		if isNull {
			bm.Set(i)
		}
	}
	return bm, nil
}

// NullBitmap returns a bitmap of the column's NULL rows, or nil when
// the column has none.
func (ec *EncodedColumn) NullBitmap() (*columnar.Bitmap, error) { return ec.nullRows() }

// clearNulls removes NULL rows from a selection bitmap.
func (ec *EncodedColumn) clearNulls(bm *columnar.Bitmap) error {
	nulls, err := ec.nullRows()
	if err != nil {
		return err
	}
	if nulls != nil {
		bm.AndNot(nulls)
	}
	return nil
}

// verify checks the Data checksum, mirroring Decode.
func (ec *EncodedColumn) verify() error {
	if crc32.ChecksumIEEE(ec.Data) != ec.Checksum {
		return fmt.Errorf("%w: column checksum mismatch", ErrCorrupt)
	}
	return nil
}

// allTrueMinusNulls fills the bitmap and clears NULL rows — the
// zone-map "provably all match" answer.
func (ec *EncodedColumn) allTrueMinusNulls(bm *columnar.Bitmap) (*columnar.Bitmap, bool, error) {
	bm.Fill(0, bm.Len())
	if err := ec.clearNulls(bm); err != nil {
		return nil, false, err
	}
	return bm, true, nil
}

// EvalIntRange evaluates lo <= v <= hi over an encoded Int64 column and
// returns the selection bitmap. ok=false means the type/encoding pair is
// not supported and the caller must fall back to decode-then-eval. A
// non-nil error means the column is corrupt.
func (ec *EncodedColumn) EvalIntRange(lo, hi int64) (*columnar.Bitmap, bool, error) {
	if ec.Type != columnar.Int64 {
		return nil, false, nil
	}
	n := ec.Stats.NumValues
	bm := columnar.NewBitmap(n)
	if lo > hi || ec.Stats.NullCount == n {
		return bm, true, nil
	}
	if ec.Stats.HasMinMax {
		if hi < ec.Stats.MinI || lo > ec.Stats.MaxI {
			return bm, true, nil // no overlap: all false, Data untouched
		}
		if lo <= ec.Stats.MinI && hi >= ec.Stats.MaxI {
			return ec.allTrueMinusNulls(bm) // full cover: all true, Data untouched
		}
	}
	set := func(pos, count int, v int64) {
		if v >= lo && v <= hi {
			bm.Fill(pos, pos+count)
		}
	}
	if err := ec.walkInts(set); err != nil {
		return nil, false, err
	}
	if err := ec.clearNulls(bm); err != nil {
		return nil, false, err
	}
	return bm, true, nil
}

// EvalIntIn evaluates v IN (vals...) over an encoded Int64 column.
func (ec *EncodedColumn) EvalIntIn(vals []int64) (*columnar.Bitmap, bool, error) {
	if ec.Type != columnar.Int64 {
		return nil, false, nil
	}
	n := ec.Stats.NumValues
	bm := columnar.NewBitmap(n)
	if len(vals) == 0 || ec.Stats.NullCount == n {
		return bm, true, nil
	}
	any := false
	member := make(map[int64]struct{}, len(vals))
	for _, v := range vals {
		if !ec.Stats.HasMinMax || (v >= ec.Stats.MinI && v <= ec.Stats.MaxI) {
			member[v] = struct{}{}
			any = true
		}
	}
	if ec.Stats.HasMinMax && !any {
		return bm, true, nil // every constant outside the zone map: Data untouched
	}
	set := func(pos, count int, v int64) {
		if _, ok := member[v]; ok {
			bm.Fill(pos, pos+count)
		}
	}
	if err := ec.walkInts(set); err != nil {
		return nil, false, err
	}
	if err := ec.clearNulls(bm); err != nil {
		return nil, false, err
	}
	return bm, true, nil
}

// walkInts streams the encoded Int64 values, calling set(pos, count, v)
// for each run of count equal values v starting at row pos. It verifies
// the checksum first and never materializes a decoded slice.
func (ec *EncodedColumn) walkInts(set func(pos, count int, v int64)) error {
	if err := ec.verify(); err != nil {
		return err
	}
	data := ec.Data
	cnt, sz := binary.Uvarint(data)
	if sz <= 0 {
		return fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	if int(cnt) != ec.Stats.NumValues {
		return fmt.Errorf("%w: value count %d, header says %d", ErrCorrupt, cnt, ec.Stats.NumValues)
	}
	data = data[sz:]
	switch ec.Encoding {
	case RLE:
		pos := 0
		for pos < int(cnt) {
			u, sz := binary.Uvarint(data)
			if sz <= 0 {
				return fmt.Errorf("%w: truncated RLE value", ErrCorrupt)
			}
			data = data[sz:]
			run, sz := binary.Uvarint(data)
			if sz <= 0 || run == 0 {
				return fmt.Errorf("%w: truncated RLE run", ErrCorrupt)
			}
			data = data[sz:]
			if pos+int(run) > int(cnt) {
				return fmt.Errorf("%w: RLE run overflows count", ErrCorrupt)
			}
			set(pos, int(run), unzigzag(u))
			pos += int(run)
		}
		return nil
	case DeltaVarint:
		prev := int64(0)
		for i := 0; i < int(cnt); i++ {
			u, sz := binary.Uvarint(data)
			if sz <= 0 {
				return fmt.Errorf("%w: truncated delta stream", ErrCorrupt)
			}
			data = data[sz:]
			prev += unzigzag(u)
			set(i, 1, prev)
		}
		return nil
	case BitPacked:
		if cnt == 0 {
			return nil
		}
		r, err := newBitPackedReader(ec.Data)
		if err != nil {
			return err
		}
		if r.width == 0 {
			set(0, int(cnt), r.min)
			return nil
		}
		if r.width == 64 {
			for i := 0; i < int(cnt); i++ {
				d := binary.LittleEndian.Uint64(r.payload[i*8:])
				set(i, 1, int64(uint64(r.min)+d))
			}
			return nil
		}
		var acc uint64
		var nbits uint
		pos := 0
		mask := uint64(1)<<r.width - 1
		for i := 0; i < int(cnt); i++ {
			for nbits < r.width {
				acc |= uint64(r.payload[pos]) << nbits
				pos++
				nbits += 8
			}
			set(i, 1, r.min+int64(acc&mask))
			acc >>= r.width
			nbits -= r.width
		}
		return nil
	}
	return fmt.Errorf("%w: encoding %v invalid for BIGINT", ErrCorrupt, ec.Encoding)
}

// EvalFloatRange evaluates a float range predicate with inclusive or
// exclusive bounds over a Plain-encoded Float64 column.
func (ec *EncodedColumn) EvalFloatRange(lo, hi float64, incLo, incHi bool) (*columnar.Bitmap, bool, error) {
	if ec.Type != columnar.Float64 || ec.Encoding != Plain {
		return nil, false, nil
	}
	n := ec.Stats.NumValues
	bm := columnar.NewBitmap(n)
	if ec.Stats.NullCount == n {
		return bm, true, nil
	}
	above := func(v, bound float64, inc bool) bool { return v > bound || (inc && v == bound) }
	below := func(v, bound float64, inc bool) bool { return v < bound || (inc && v == bound) }
	if ec.Stats.HasMinMax {
		if !above(ec.Stats.MaxF, lo, incLo) || !below(ec.Stats.MinF, hi, incHi) {
			return bm, true, nil // no overlap: Data untouched
		}
		if above(ec.Stats.MinF, lo, incLo) && below(ec.Stats.MaxF, hi, incHi) {
			return ec.allTrueMinusNulls(bm) // full cover: Data untouched
		}
	}
	if err := ec.verify(); err != nil {
		return nil, false, err
	}
	data := ec.Data
	cnt, sz := binary.Uvarint(data)
	if sz <= 0 || int(cnt) != n {
		return nil, false, fmt.Errorf("%w: bad float count", ErrCorrupt)
	}
	data = data[sz:]
	if uint64(len(data)) < cnt*8 {
		return nil, false, fmt.Errorf("%w: float data truncated", ErrCorrupt)
	}
	for i := 0; i < int(cnt); i++ {
		v := lefloat(data[i*8:])
		if above(v, lo, incLo) && below(v, hi, incHi) {
			bm.Set(i)
		}
	}
	if err := ec.clearNulls(bm); err != nil {
		return nil, false, err
	}
	return bm, true, nil
}

// EvalStringMatch evaluates an arbitrary per-value string predicate over
// a Dict-encoded column by testing each dictionary entry once and then
// streaming the per-row codes. Plain string columns report ok=false (a
// per-row walk would decode anyway, so the caller's fallback is honest).
func (ec *EncodedColumn) EvalStringMatch(match func(string) bool) (*columnar.Bitmap, bool, error) {
	if ec.Type != columnar.String || ec.Encoding != Dict {
		return nil, false, nil
	}
	n := ec.Stats.NumValues
	bm := columnar.NewBitmap(n)
	if ec.Stats.NullCount == n {
		return bm, true, nil
	}
	if err := ec.verify(); err != nil {
		return nil, false, err
	}
	dict, codesData, err := splitDict(ec.Data)
	if err != nil {
		return nil, false, err
	}
	matched := make([]bool, len(dict))
	anyMatch := false
	for i, s := range dict {
		matched[i] = match(s)
		anyMatch = anyMatch || matched[i]
	}
	if !anyMatch {
		return bm, true, nil // no dictionary entry matches: codes never read
	}
	cnt, sz := binary.Uvarint(codesData)
	if sz <= 0 {
		return nil, false, fmt.Errorf("%w: bad code count", ErrCorrupt)
	}
	if int(cnt) != n {
		return nil, false, fmt.Errorf("%w: code count %d, header says %d", ErrCorrupt, cnt, n)
	}
	if cnt == 0 {
		return bm, true, nil
	}
	r, err := newBitPackedReader(codesData)
	if err != nil {
		return nil, false, err
	}
	for i := 0; i < n; i++ {
		c := r.at(i)
		if c < 0 || c >= int64(len(dict)) {
			return nil, false, fmt.Errorf("%w: dict code %d out of range", ErrCorrupt, c)
		}
		if matched[c] {
			bm.Set(i)
		}
	}
	if err := ec.clearNulls(bm); err != nil {
		return nil, false, err
	}
	return bm, true, nil
}

// splitDict parses a Dict payload into the dictionary entries and the
// bit-packed codes block.
func splitDict(data []byte) ([]string, []byte, error) {
	nd, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("%w: bad dict size", ErrCorrupt)
	}
	data = data[sz:]
	dict := make([]string, 0, nd)
	for i := uint64(0); i < nd; i++ {
		l, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < l {
			return nil, nil, fmt.Errorf("%w: truncated dict entry", ErrCorrupt)
		}
		data = data[sz:]
		dict = append(dict, string(data[:l]))
		data = data[l:]
	}
	pl, sz := binary.Uvarint(data)
	if sz <= 0 || uint64(len(data)-sz) < pl {
		return nil, nil, fmt.Errorf("%w: truncated dict codes", ErrCorrupt)
	}
	data = data[sz:]
	return dict, data[:pl], nil
}

// bitPackedReader gives random access into an EncodeBitPacked payload.
type bitPackedReader struct {
	n       int
	min     int64
	width   uint
	payload []byte
	mask    uint64
}

func newBitPackedReader(data []byte) (*bitPackedReader, error) {
	cnt, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad bit-packed count", ErrCorrupt)
	}
	data = data[sz:]
	r := &bitPackedReader{n: int(cnt)}
	if cnt == 0 {
		return r, nil
	}
	mz, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad bit-packed min", ErrCorrupt)
	}
	data = data[sz:]
	r.min = unzigzag(mz)
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: missing bit width", ErrCorrupt)
	}
	r.width = uint(data[0])
	r.payload = data[1:]
	if r.width > 56 && r.width != 64 {
		return nil, fmt.Errorf("%w: unsupported bit width %d", ErrCorrupt, r.width)
	}
	if r.width == 64 {
		if uint64(len(r.payload)) < cnt*8 {
			return nil, fmt.Errorf("%w: bit-packed data truncated", ErrCorrupt)
		}
	} else if r.width > 0 {
		need := (cnt*uint64(r.width) + 7) / 8
		if uint64(len(r.payload)) < need {
			return nil, fmt.Errorf("%w: bit-packed data truncated", ErrCorrupt)
		}
		r.mask = uint64(1)<<r.width - 1
	}
	return r, nil
}

// at returns value i. The caller must keep i within [0, n).
func (r *bitPackedReader) at(i int) int64 {
	if r.width == 0 {
		return r.min
	}
	if r.width == 64 {
		return int64(uint64(r.min) + binary.LittleEndian.Uint64(r.payload[i*8:]))
	}
	bitpos := i * int(r.width)
	off := bitpos >> 3
	end := off + 8
	if end > len(r.payload) {
		end = len(r.payload)
	}
	var window uint64
	for j := end - 1; j >= off; j-- {
		window = window<<8 | uint64(r.payload[j])
	}
	return r.min + int64((window>>(uint(bitpos)&7))&r.mask)
}

func lefloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
