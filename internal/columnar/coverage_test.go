package columnar

import "testing"

// Additional unit coverage for value-level helpers and less-travelled
// vector paths.

func TestTypeHelpers(t *testing.T) {
	if Int64.FixedWidth() != 8 || Float64.FixedWidth() != 8 || Bool.FixedWidth() != 1 || String.FixedWidth() != 0 {
		t.Error("FixedWidth wrong")
	}
	if Type(99).FixedWidth() != 0 {
		t.Error("unknown type width wrong")
	}
	if Int64.String() != "BIGINT" || Type(99).String() == "" {
		t.Error("Type.String wrong")
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"7":    IntValue(7),
		"1.5":  FloatValue(1.5),
		"hi":   StringValue("hi"),
		"true": BoolValue(true),
		"NULL": NullValue(Int64),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("Value.String() = %q, want %q", got, want)
		}
	}
	// Cross-type and null inequality.
	if IntValue(1).Equal(FloatValue(1)) {
		t.Error("int equals float")
	}
	if NullValue(Int64).Equal(IntValue(0)) {
		t.Error("NULL equals zero")
	}
	if !NullValue(Int64).Equal(NullValue(Int64)) {
		t.Error("NULLs of same type unequal")
	}
}

func TestFromConstructorsAndAccessors(t *testing.T) {
	fv := FromFloat64s([]float64{1, 2})
	if fv.Len() != 2 || fv.Float64s()[1] != 2 {
		t.Error("FromFloat64s wrong")
	}
	bv := FromBools([]bool{true, false, true})
	if bv.Len() != 3 || !bv.Bools()[2] {
		t.Error("FromBools wrong")
	}
	sv := FromStrings([]string{"a"})
	if sv.Len() != 1 {
		t.Error("FromStrings wrong")
	}
}

func TestAppendNullAllTypesAndGrowth(t *testing.T) {
	for _, typ := range []Type{Int64, Float64, String, Bool} {
		v := NewVector(typ, 0)
		// Interleave appends so the null bitmap must grow several times.
		for i := 0; i < 200; i++ {
			if i%3 == 0 {
				v.AppendNull()
			} else {
				v.AppendValue(nonNull(typ, i))
			}
		}
		for i := 0; i < 200; i++ {
			if got := v.IsNull(i); got != (i%3 == 0) {
				t.Fatalf("%v: null bit %d = %v", typ, i, got)
			}
		}
		if v.NullCount() != 67 {
			t.Fatalf("%v: NullCount = %d", typ, v.NullCount())
		}
		// Gather with nulls preserves them for every type.
		g := v.Gather([]int{0, 1, 3, 199})
		if !g.IsNull(0) || g.IsNull(1) {
			t.Fatalf("%v: Gather lost null bits", typ)
		}
	}
}

func nonNull(t Type, i int) Value {
	switch t {
	case Int64:
		return IntValue(int64(i))
	case Float64:
		return FloatValue(float64(i))
	case String:
		return StringValue("v")
	case Bool:
		return BoolValue(i%2 == 0)
	}
	panic("bad type")
}

func TestByteSizes(t *testing.T) {
	if FromBools(make([]bool, 10)).ByteSize() != 10 {
		t.Error("bool ByteSize wrong")
	}
	if FromFloat64s(make([]float64, 4)).ByteSize() != 32 {
		t.Error("float ByteSize wrong")
	}
	withNulls := NewVector(Int64, 2)
	withNulls.AppendInt64(1)
	withNulls.AppendNull()
	if withNulls.ByteSize() <= 16 {
		t.Error("null bitmap not counted")
	}
	b := BatchOf(
		NewSchema(Field{Name: "a", Type: Int64}, Field{Name: "b", Type: Bool}),
		FromInt64s(make([]int64, 8)), FromBools(make([]bool, 8)))
	if b.ByteSize() != 64+8 {
		t.Errorf("batch ByteSize = %d", b.ByteSize())
	}
	bm := NewBitmap(65)
	if bm.ByteSize() != 16 {
		t.Errorf("bitmap ByteSize = %d", bm.ByteSize())
	}
}

func TestEmptyBatchAndFilterMismatch(t *testing.T) {
	empty := &Batch{schema: NewSchema()}
	if empty.NumRows() != 0 {
		t.Error("zero-column batch rows != 0")
	}
	b := BatchOf(NewSchema(Field{Name: "a", Type: Int64}), FromInt64s([]int64{1, 2}))
	defer func() {
		if recover() == nil {
			t.Fatal("Filter with wrong selection length did not panic")
		}
	}()
	b.Filter(NewBitmap(7))
}
