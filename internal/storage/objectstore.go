package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// ObjectStore is the cloud object store: a flat key space of immutable
// blobs. The paper stresses that real cloud storage is object storage,
// not block devices (Section 3.2); the engine's tables live here as
// marshalled segments.
//
// Availability machinery: Put writes Replicas independent copies of each
// blob and Get falls back across them, retrying transient faults with
// bounded exponential backoff. Faults, when set, injects read-path
// faults so experiments can measure the cost of that recovery.
type ObjectStore struct {
	mu      sync.RWMutex
	objects map[string][][]byte // one entry per replica, len >= 1
	reps    int
	Meter   sim.Meter

	// Faults injects read-path faults (transient errors, corrupt blobs,
	// missing objects). Nil means a fault-free store.
	Faults *faults.Injector
	// MaxRetries bounds the per-replica retries of a transient read
	// fault before falling back to the next replica; 0 disables retry,
	// modelling a legacy detect-only store.
	MaxRetries int
	// RetryBase is the first retry's backoff; it doubles per attempt and
	// is capped at 8x. Zero skips the sleep but still counts retries.
	RetryBase time.Duration

	retries    atomic.Int64
	fallbacks  atomic.Int64
	retryBytes atomic.Int64
}

// DefaultMaxRetries is the retry bound of a freshly built store.
const DefaultMaxRetries = 3

// NewObjectStore returns an empty single-replica store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{
		objects:    make(map[string][][]byte),
		reps:       1,
		MaxRetries: DefaultMaxRetries,
		RetryBase:  50 * time.Microsecond,
	}
}

// SetReplicas sets the replication factor for future Puts (clamped to at
// least 1). Existing objects keep their current replica count.
func (o *ObjectStore) SetReplicas(n int) {
	if n < 1 {
		n = 1
	}
	o.mu.Lock()
	o.reps = n
	o.mu.Unlock()
}

// Replicas reports the current write replication factor.
func (o *ObjectStore) Replicas() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.reps
}

// Put stores a blob under key, replacing any previous value. The write
// fans out to Replicas independent copies; metering charges one op and
// every replicated byte, so replication's cost shows up in the meters.
func (o *ObjectStore) Put(key string, data []byte) {
	o.mu.Lock()
	n := o.reps
	copies := make([][]byte, n)
	for i := range copies {
		copies[i] = append([]byte(nil), data...)
	}
	o.objects[key] = copies
	o.mu.Unlock()
	o.Meter.AddOps(1)
	o.Meter.AddBytes(sim.Bytes(len(data) * n))
}

// Get returns a defensive copy of the blob stored under key; callers may
// mutate the result freely. Reads fall back across replicas and retry
// transient faults with bounded exponential backoff.
func (o *ObjectStore) Get(key string) ([]byte, error) {
	return o.get(key, true)
}

// GetNoCopy is the metered hot path: it returns the stored slice itself,
// which the caller must not modify. Recovery behaviour matches Get.
func (o *ObjectStore) GetNoCopy(key string) ([]byte, error) {
	return o.get(key, false)
}

func (o *ObjectStore) get(key string, copyOut bool) ([]byte, error) {
	o.mu.RLock()
	copies, ok := o.objects[key]
	o.mu.RUnlock()
	if !ok {
		// The object genuinely does not exist on any replica: permanent.
		return nil, fmt.Errorf("storage: object %q not found", key)
	}
	var lastErr error
	for r := range copies {
		if r > 0 {
			o.fallbacks.Add(1)
		}
		for attempt := 0; ; attempt++ {
			data, err := o.readReplica(key, copies[r], copyOut)
			if err == nil {
				if r > 0 || attempt > 0 {
					o.retryBytes.Add(int64(len(data)))
				}
				return data, nil
			}
			lastErr = err
			retryable := faults.IsTransient(err)
			if fe, isFault := err.(*faults.FaultError); isFault && fe.Kind == faults.ObjectMissing {
				// A missing replica will not reappear: go to the next one.
				retryable = false
			}
			if !retryable || attempt >= o.MaxRetries {
				break
			}
			o.retries.Add(1)
			o.backoff(attempt)
		}
	}
	return nil, lastErr
}

// readReplica is one read attempt against one replica, with faults
// injected between the request and the returned bytes.
func (o *ObjectStore) readReplica(key string, data []byte, copyOut bool) ([]byte, error) {
	o.Meter.AddOps(1)
	if o.Faults != nil {
		if o.Faults.Fire(faults.ObjectMissing, key) {
			return nil, &faults.FaultError{Kind: faults.ObjectMissing, Target: key}
		}
		if o.Faults.Fire(faults.TransientRead, key) {
			return nil, &faults.FaultError{Kind: faults.TransientRead, Target: key}
		}
		if o.Faults.Fire(faults.CorruptBlob, key) {
			// The corruption rides the returned copy, never the stored
			// replica; checksums downstream detect it and a re-read heals.
			cp := append([]byte(nil), data...)
			if len(cp) > 0 {
				cp[len(cp)/2] ^= 0x40
			}
			o.Meter.AddBytes(sim.Bytes(len(cp)))
			return cp, nil
		}
	}
	o.Meter.AddBytes(sim.Bytes(len(data)))
	if copyOut {
		return append([]byte(nil), data...), nil
	}
	return data, nil
}

// backoff sleeps the bounded-exponential delay for the given attempt.
func (o *ObjectStore) backoff(attempt int) {
	if o.RetryBase <= 0 {
		return
	}
	d := o.RetryBase << uint(attempt)
	if max := o.RetryBase * 8; d > max {
		d = max
	}
	time.Sleep(d)
}

// RecoveryStats counts the store's recovery work so far.
type RecoveryStats struct {
	// Retries is the number of read attempts repeated after a transient
	// fault.
	Retries int64
	// ReplicaFallbacks is the number of reads that moved past replica 0.
	ReplicaFallbacks int64
	// RetryBytes is the payload re-read by recovery (bytes returned by
	// any attempt after the first).
	RetryBytes sim.Bytes
}

// Sub returns s minus prev, isolating one scan's recovery work.
func (s RecoveryStats) Sub(prev RecoveryStats) RecoveryStats {
	return RecoveryStats{
		Retries:          s.Retries - prev.Retries,
		ReplicaFallbacks: s.ReplicaFallbacks - prev.ReplicaFallbacks,
		RetryBytes:       s.RetryBytes - prev.RetryBytes,
	}
}

// Recovery snapshots the store's cumulative recovery counters.
func (o *ObjectStore) Recovery() RecoveryStats {
	return RecoveryStats{
		Retries:          o.retries.Load(),
		ReplicaFallbacks: o.fallbacks.Load(),
		RetryBytes:       sim.Bytes(o.retryBytes.Load()),
	}
}

// Size returns the byte size of the object under key without charging a
// read, or -1 if absent. Metadata operations are free in the model.
func (o *ObjectStore) Size(key string) sim.Bytes {
	o.mu.RLock()
	defer o.mu.RUnlock()
	copies, ok := o.objects[key]
	if !ok {
		return -1
	}
	return sim.Bytes(len(copies[0]))
}

// Delete removes the object (all replicas) under key; deleting a missing
// key is a no-op. Like Put, it is a metered operation.
func (o *ObjectStore) Delete(key string) {
	o.mu.Lock()
	delete(o.objects, key)
	o.mu.Unlock()
	o.Meter.AddOps(1)
}

// List returns all keys with the given prefix in sorted order.
func (o *ObjectStore) List(prefix string) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var keys []string
	for k := range o.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// TotalBytes reports the cumulative size of all stored objects including
// replica copies — replication's capacity cost.
func (o *ObjectStore) TotalBytes() sim.Bytes {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var n sim.Bytes
	for _, copies := range o.objects {
		for _, d := range copies {
			n += sim.Bytes(len(d))
		}
	}
	return n
}

// NumObjects reports the number of stored objects (replicas of one key
// count once).
func (o *ObjectStore) NumObjects() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.objects)
}
