package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs/metrics"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// DefaultTenant labels queries whose context carries no tenant.
const DefaultTenant = "default"

type tenantKey struct{}

// WithTenant tags a query's context with the tenant (or workload) the
// fleet should charge its resources to. Attribution is per execution:
// every byte and virtual-nanosecond of busy time the query's ExecStats
// account for lands on tenant-labelled counters, incremented at the
// same site and with the same values as the fleet totals — so summing
// the tenant series reproduces the fleet series exactly.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctxOrBackground(ctx), tenantKey{}, tenant)
}

// TenantFrom reads the tenant label from ctx, or DefaultTenant.
func TenantFrom(ctx context.Context) string {
	if ctx != nil {
		if t, ok := ctx.Value(tenantKey{}).(string); ok && t != "" {
			return t
		}
	}
	return DefaultTenant
}

// SetMetrics installs (or, with nil, removes) the fleet registry across
// every layer the dataflow engine owns: the storage server folds scan
// stats, the object store mirrors hedge activity, the scheduler counts
// admissions and sheds, the flow runtime counts credit stalls and
// worker occupancy, and the engine itself publishes per-query resource
// attribution after every execution.
func (e *DataFlowEngine) SetMetrics(r *metrics.Registry) {
	e.Metrics = r
	e.Storage.Metrics = r
	e.Storage.Store().Metrics = r
	e.Scheduler.Metrics = r
}

// SetMetrics installs the fleet registry on the baseline engine and the
// storage layers it shares with the dataflow engine.
func (e *VolcanoEngine) SetMetrics(r *metrics.Registry) {
	e.Metrics = r
	e.Storage.Metrics = r
	e.Storage.Store().Metrics = r
}

// SetSLO wires a latency SLO into the control loop: every finished
// query's wall latency is observed against the objective, and the
// scheduler sheds arriving queries (that would otherwise queue) once the
// error-budget burn rate reaches shedBurn. shedBurn <= 0 keeps the
// tracker observational only.
func (e *DataFlowEngine) SetSLO(t *metrics.SLOTracker, shedBurn float64) {
	e.SLO = t
	e.Scheduler.SLO = t
	e.Scheduler.SLOShedBurnRate = shedBurn
}

// enginePublisher is the per-engine fast path for landing a finished
// query on the registry. Every instrument the publish touches is
// resolved once, up front — per-query cost is then pure atomic updates,
// with no label building, no registry lock, and no topology re-sort.
// Attribution invariants:
//
//   - Fleet and tenant counters increment at this one site with the
//     same values, so per-tenant sums equal fleet totals exactly.
//   - Charged bytes are Scan.MediaBytes + MovedBytes — the winner-only
//     logical work. Hedge and speculation duplicates meter separately
//     (storage.hedge.bytes, scan.speculative.bytes) and are never
//     charged to a tenant: defensive spend is the operator's cost, not
//     the tenant's.
//   - Busy time is the sum of per-device virtual busy deltas the query
//     caused, the same decomposition ExecStats.DeviceBusy reports.
type enginePublisher struct {
	reg *metrics.Registry

	fleetQueries, fleetBusy, fleetBytes, fleetRows *metrics.Counter
	engineQueries                                  *metrics.Counter
	wallHist, simHist                              *metrics.Histogram
	queryRate, bytesRate                           *metrics.RateMeter
	concurrency, decodedSaved, budgetTokens        *metrics.Gauge
	budgetExhausted                                *metrics.Counter

	devUtil   map[string]*metrics.Gauge   // keyed by ExecStats.DeviceBusy device
	linkBytes map[string]*metrics.Counter // keyed by ExecStats.LinkBytes link
	devices   []publisherDevice
	links     []publisherLink

	mu      sync.Mutex
	tenants map[string]*tenantSeries
}

type publisherDevice struct {
	d    *fabric.Device
	busy *metrics.Gauge
}

type publisherLink struct {
	l          *fabric.Link
	busy, util *metrics.Gauge
}

type tenantSeries struct {
	queries, busy, bytes *metrics.Counter
}

func newEnginePublisher(reg *metrics.Registry, cluster *fabric.Cluster, engine string) *enginePublisher {
	p := &enginePublisher{
		reg:             reg,
		fleetQueries:    reg.Counter("fleet.queries"),
		fleetBusy:       reg.Counter("fleet.busy.vns"),
		fleetBytes:      reg.Counter("fleet.bytes"),
		fleetRows:       reg.Counter("fleet.rows"),
		engineQueries:   reg.Counter(metrics.Labels("engine.queries", "engine", engine)),
		wallHist:        reg.Histogram("query.wall.ns"),
		simHist:         reg.Histogram("query.simtime.vns"),
		queryRate:       reg.RateMeter("fleet.queries.rate"),
		bytesRate:       reg.RateMeter("fleet.bytes.rate"),
		concurrency:     reg.Gauge("query.concurrency.factor"),
		decodedSaved:    reg.Gauge("query.decoded.bytes.saved"),
		budgetTokens:    reg.Gauge("resilience.budget.tokens"),
		budgetExhausted: reg.Counter("resilience.budget.exhausted"),
		devUtil:         map[string]*metrics.Gauge{},
		linkBytes:       map[string]*metrics.Counter{},
		tenants:         map[string]*tenantSeries{},
	}
	if cluster != nil {
		for _, d := range cluster.Devices() {
			p.devUtil[d.Name] = reg.Gauge(metrics.Labels("fabric.device.utilization", "device", d.Name))
			p.devices = append(p.devices, publisherDevice{
				d:    d,
				busy: reg.Gauge(metrics.Labels("fabric.device.busy.vns", "device", d.Name)),
			})
		}
		for _, l := range cluster.Links() {
			p.linkBytes[l.Name] = reg.Counter(metrics.Labels("fabric.link.bytes", "link", l.Name))
			p.links = append(p.links, publisherLink{
				l:    l,
				busy: reg.Gauge(metrics.Labels("fabric.link.busy.vns", "link", l.Name)),
				util: reg.Gauge(metrics.Labels("fabric.link.util", "link", l.Name)),
			})
		}
	}
	return p
}

// tenantFor returns (creating on first sight) the tenant's counters.
func (p *enginePublisher) tenantFor(tenant string) *tenantSeries {
	p.mu.Lock()
	ts := p.tenants[tenant]
	if ts == nil {
		ts = &tenantSeries{
			queries: p.reg.Counter(metrics.Labels("tenant.queries", "tenant", tenant)),
			busy:    p.reg.Counter(metrics.Labels("tenant.busy.vns", "tenant", tenant)),
			bytes:   p.reg.Counter(metrics.Labels("tenant.bytes", "tenant", tenant)),
		}
		p.tenants[tenant] = ts
	}
	p.mu.Unlock()
	return ts
}

// publish lands one finished query. Safe for concurrent use.
func (p *enginePublisher) publish(pol *resilience.Policy, tenant string, res *Result, wall time.Duration) {
	st := &res.Stats
	var busy sim.VTime
	for _, b := range st.DeviceBusy {
		busy += b
	}
	bytes := int64(st.MovedBytes + st.Scan.MediaBytes)

	p.fleetQueries.Inc()
	p.fleetBusy.Add(int64(busy))
	p.fleetBytes.Add(bytes)
	p.fleetRows.Add(st.ResultRows)
	ts := p.tenantFor(tenant)
	ts.queries.Inc()
	ts.busy.Add(int64(busy))
	ts.bytes.Add(bytes)
	p.engineQueries.Inc()

	p.wallHist.Observe(wall.Nanoseconds())
	p.simHist.Observe(int64(st.SimTime))
	p.queryRate.Mark(1)
	p.bytesRate.Mark(bytes)

	// Last-query gauges: the scrape-visible face of PR 2's concurrency
	// factor and PR 5's decode savings.
	if res.Trace != nil {
		p.concurrency.Set(res.Trace.ConcurrencyFactor())
	}
	p.decodedSaved.Set(float64(st.Scan.DecodedBytesSaved))

	// Per-device utilization over this query's makespan: busy/SimTime,
	// the same quantity obs.Trace.Utilizations derives from spans, but
	// available without tracing. Cumulative busy and bytes ride along so
	// a scraper can rate() its own utilization over wall time.
	if st.SimTime > 0 {
		for dev, b := range st.DeviceBusy {
			if g := p.devUtil[dev]; g != nil {
				g.Set(float64(b) / float64(st.SimTime))
			}
		}
		for link, n := range st.LinkBytes {
			if c := p.linkBytes[link]; c != nil {
				c.Add(int64(n))
			}
		}
	}
	for _, d := range p.devices {
		d.busy.Set(float64(d.d.Meter.Busy()))
	}
	for _, l := range p.links {
		l.busy.Set(float64(l.l.Meter.Busy()))
		l.util.Set(linkUtil(l.l, st.SimTime))
	}
	if pol != nil && pol.Budget != nil {
		p.budgetTokens.Set(pol.Budget.Tokens())
		p.budgetExhausted.Add(st.RetryBudgetExhausted)
	}
}

// publisher returns the engine's cached publisher, rebuilding it when
// the registry was swapped. Nil when metrics are off.
func (e *DataFlowEngine) publisher() *enginePublisher {
	if e.Metrics == nil {
		return nil
	}
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	if e.pub == nil || e.pub.reg != e.Metrics {
		e.pub = newEnginePublisher(e.Metrics, e.Cluster, "dataflow")
	}
	return e.pub
}

func (e *VolcanoEngine) publisher() *enginePublisher {
	if e.Metrics == nil {
		return nil
	}
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	if e.pub == nil || e.pub.reg != e.Metrics {
		e.pub = newEnginePublisher(e.Metrics, e.Cluster, "volcano")
	}
	return e.pub
}

// publishQuery observes the query's wall latency on the SLO tracker and
// lands its resource attribution on the registry (when metrics are on).
func (e *DataFlowEngine) publishQuery(ctx context.Context, res *Result, wall time.Duration) {
	e.SLO.Observe(wall)
	if p := e.publisher(); p != nil && res != nil {
		p.publish(e.Resilience, TenantFrom(ctx), res, wall)
	}
}

func (e *VolcanoEngine) publishQuery(ctx context.Context, res *Result, wall time.Duration) {
	e.SLO.Observe(wall)
	if p := e.publisher(); p != nil && res != nil {
		p.publish(e.Resilience, TenantFrom(ctx), res, wall)
	}
}

// linkUtil reports what fraction of the query's makespan the link was
// busy — clamped to 1, since a pipelined link's lanes may overlap.
func linkUtil(l *fabric.Link, makespan sim.VTime) float64 {
	if makespan <= 0 {
		return 0
	}
	u := float64(l.Meter.Busy()) / float64(makespan)
	if u > 1 {
		u = 1
	}
	return u
}

// publishBreakerGauge mirrors one breaker transition into the registry
// (the numeric BreakerState: 0 closed, 1 open, 2 half-open), plus a
// trip counter on each opening.
func publishBreakerGauge(reg *metrics.Registry, dev string, st resilience.BreakerState) {
	if reg == nil {
		return
	}
	reg.Gauge(metrics.Labels("resilience.breaker.state", "device", dev)).Set(float64(st))
	if st == resilience.Open {
		reg.Counter("resilience.breaker.trips").Inc()
	}
}
