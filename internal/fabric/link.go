package fabric

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// LinkKind classifies interconnect technologies, following the paper's
// Sections 2.2 (networking tiers), 5.1 (DDR) and 6 (PCIe/CXL
// generations).
type LinkKind uint8

// Link kinds.
const (
	LinkDDR LinkKind = iota
	LinkPCIe3
	LinkPCIe4
	LinkPCIe5
	LinkPCIe6
	LinkPCIe7
	LinkCXL // CXL 2.x over PCIe5 electricals, hardware coherency
	LinkEth100
	LinkEth200
	LinkEth400
	LinkEth800
	LinkEth1600
	LinkNVMe   // SSD internal media path
	LinkOnChip // cache hierarchy / on-chip network
	LinkObject // cloud object-store access path (slow, high latency)
)

// String names the link kind.
func (k LinkKind) String() string {
	names := [...]string{
		"ddr", "pcie3", "pcie4", "pcie5", "pcie6", "pcie7", "cxl",
		"eth100", "eth200", "eth400", "eth800", "eth1600", "nvme",
		"onchip", "object",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("LinkKind(%d)", uint8(k))
}

// Link is a bidirectional connection between two named devices.
// Transfers charge latency plus bytes/bandwidth; an optional rate limit
// (set by the scheduler, Section 7.3) caps effective bandwidth.
type Link struct {
	Name      string
	Kind      LinkKind
	A, B      string // endpoint device names
	Bandwidth sim.Rate
	Latency   sim.VTime
	// Parallelism is the number of independent channels the link can
	// drive concurrently (flash channels on the SSD-internal media path,
	// DMA queues on a host bus). Zero or one models a serial wire —
	// network links stay serial, which is what makes scan scaling
	// flatten once the wire saturates.
	Parallelism int
	Meter       sim.Meter

	mu    sync.Mutex
	limit sim.Rate // 0 = unlimited
	fault func() error
	lanes laneMeter
}

// SetFaultCheck installs a hook consulted once per data transfer; a
// non-nil return models a link-level fault (flap, CRC storm) and aborts
// the transfer. Fault injection binds faults.Injector here; pass nil to
// remove the hook.
func (l *Link) SetFaultCheck(f func() error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fault = f
}

// CheckFault reports the link's current injected fault, if any.
func (l *Link) CheckFault() error {
	l.mu.Lock()
	f := l.fault
	l.mu.Unlock()
	if f == nil {
		return nil
	}
	return f()
}

// SetRateLimit caps the effective bandwidth used for future transfers.
// Pass 0 to remove the limit. This models DMA-engine rate limiting
// (Section 7.3: "the scheduler should be able to rate limit the
// bandwidth used").
func (l *Link) SetRateLimit(r sim.Rate) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.limit = r
}

// EffectiveBandwidth reports the bandwidth transfers currently see.
func (l *Link) EffectiveBandwidth() sim.Rate {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.limit > 0 && l.limit < l.Bandwidth {
		return l.limit
	}
	return l.Bandwidth
}

// Transfer accounts for moving n payload bytes across the link and
// returns the virtual time it took.
func (l *Link) Transfer(n sim.Bytes) sim.VTime {
	t := l.Latency + l.EffectiveBandwidth().TimeFor(n)
	l.Meter.Add(sim.Snapshot{Bytes: n, Busy: t, Ops: 1})
	return t
}

// Units reports the link's effective channel parallelism, never less
// than 1.
func (l *Link) Units() int {
	if l.Parallelism > 1 {
		return l.Parallelism
	}
	return 1
}

// TransferLane is Transfer executed on one of the link's parallel
// channels. The main meter receives the identical charge — totals are
// unchanged — and the lane accumulates busy time for overlapped
// makespan computation (see EffectiveBusy). Lane indexes are positional
// and wrap at Units().
func (l *Link) TransferLane(n sim.Bytes, lane int) sim.VTime {
	t := l.Transfer(n)
	if lane < 0 {
		lane = -lane
	}
	l.lanes.add(lane%l.Units(), t)
	return t
}

// TransferQD is Transfer for links whose protocol keeps several
// commands in flight (an NVMe submission queue): the main meter gets
// the identical charge as Transfer — totals never change — but only the
// per-command latency lands on the lane, so EffectiveBusy overlaps
// latency across up to Units() outstanding requests while the
// bandwidth term stays a serial resource shared by every lane. With a
// single lane in use this is indistinguishable from Transfer.
func (l *Link) TransferQD(n sim.Bytes, lane int) sim.VTime {
	t := l.Transfer(n)
	if lane < 0 {
		lane = -lane
	}
	l.lanes.add(lane%l.Units(), l.Latency)
	return t
}

// LaneBusy returns a consistent snapshot of per-channel busy time.
func (l *Link) LaneBusy() []sim.VTime { return l.lanes.snapshot() }

// ResetLanes clears lane accounting.
func (l *Link) ResetLanes() { l.lanes.reset() }

// Message accounts for one small control message (credit grant,
// coherency invalidation) crossing the link. Control messages cost one
// latency and are counted separately from payload bytes.
func (l *Link) Message() sim.VTime {
	l.Meter.Add(sim.Snapshot{Busy: l.Latency, Messages: 1})
	return l.Latency
}

// Other returns the endpoint opposite to name, or "" if name is not an
// endpoint.
func (l *Link) Other(name string) string {
	switch name {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	return ""
}

// String renders the link as "name: A<->B kind bw".
func (l *Link) String() string {
	return fmt.Sprintf("%s: %s<->%s %s %s", l.Name, l.A, l.B, l.Kind, l.Bandwidth)
}
