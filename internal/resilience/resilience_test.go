package resilience

import (
	"testing"
	"time"
)

func TestTrackerEWMAAndThreshold(t *testing.T) {
	tr := NewTracker(0.5, 2)
	if _, ok := tr.Latency("a"); ok {
		t.Fatal("latency reported with zero samples")
	}
	tr.Observe("a", 100*time.Microsecond)
	if _, ok := tr.Latency("a"); ok {
		t.Fatal("latency reported below MinSamples")
	}
	tr.Observe("a", 100*time.Microsecond)
	lat, ok := tr.Latency("a")
	if !ok || lat != 100*time.Microsecond {
		t.Fatalf("latency = %v, %v; want 100us, true", lat, ok)
	}
	// A big outlier moves both the EWMA and the deviation.
	tr.Observe("a", 900*time.Microsecond)
	lat, _ = tr.Latency("a")
	if lat <= 100*time.Microsecond || lat >= 900*time.Microsecond {
		t.Fatalf("EWMA %v not between samples", lat)
	}
	th, ok := tr.Threshold("a", 3)
	if !ok || th <= lat {
		t.Fatalf("threshold %v should exceed ewma %v", th, lat)
	}
	if n := tr.Samples("a"); n != 3 {
		t.Fatalf("samples = %d, want 3", n)
	}
}

func TestTrackerRank(t *testing.T) {
	tr := NewTracker(0.5, 1)
	tr.Observe("slow", time.Millisecond)
	tr.Observe("fast", 10*time.Microsecond)
	got := tr.Rank([]string{"slow", "fast"})
	if got[0] != "fast" || got[1] != "slow" {
		t.Fatalf("rank = %v, want [fast slow]", got)
	}
	// Cold keys sort first (probe them), stably.
	got = tr.Rank([]string{"slow", "cold1", "cold2", "fast"})
	if got[0] != "cold1" || got[1] != "cold2" || got[2] != "fast" || got[3] != "slow" {
		t.Fatalf("rank with cold keys = %v", got)
	}
	// Nil tracker is a pass-through.
	var nilTr *Tracker
	in := []string{"b", "a"}
	if got := nilTr.Rank(in); got[0] != "b" {
		t.Fatalf("nil tracker reordered: %v", got)
	}
}

// Integrity strikes demote a key to last place in the ranking no matter
// how fast it is, and forgiveness restores latency order.
func TestTrackerCorruptStrikes(t *testing.T) {
	tr := NewTracker(0.5, 1)
	tr.Observe("fast", 10*time.Microsecond)
	tr.Observe("slow", time.Millisecond)
	tr.MarkCorrupt("fast")
	if tr.CorruptStrikes("fast") != 1 {
		t.Fatalf("strikes = %d, want 1", tr.CorruptStrikes("fast"))
	}
	got := tr.Rank([]string{"fast", "slow", "cold"})
	if got[len(got)-1] != "fast" {
		t.Fatalf("struck key not last: %v", got)
	}
	// Cold keys still probe first among the unstruck.
	if got[0] != "cold" {
		t.Fatalf("cold key not first among clean: %v", got)
	}
	tr.ClearCorrupt("fast")
	if tr.CorruptStrikes("fast") != 0 {
		t.Fatal("ClearCorrupt left strikes")
	}
	got = tr.Rank([]string{"slow", "fast"})
	if got[0] != "fast" {
		t.Fatalf("forgiven key not restored to latency order: %v", got)
	}
	// Nil tracker and unknown keys are safe no-ops.
	var nilTr *Tracker
	nilTr.MarkCorrupt("x")
	nilTr.ClearCorrupt("x")
	if nilTr.CorruptStrikes("x") != 0 {
		t.Fatal("nil tracker reported strikes")
	}
	tr.ClearCorrupt("never-seen")
}

// fakeClock is a manually advanced breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreakerSet(BreakerConfig{TripThreshold: 2, Cooldown: time.Second, HalfOpenProbes: 1})
	b.SetClock(clk.now)

	if !b.Allow("dev") {
		t.Fatal("fresh breaker should allow")
	}
	b.Failure("dev")
	if !b.Allow("dev") || b.State("dev") != Closed {
		t.Fatal("one failure below threshold should stay closed")
	}
	b.Failure("dev")
	if b.State("dev") != Open {
		t.Fatalf("state = %v, want open after 2 failures", b.State("dev"))
	}
	if b.Allow("dev") {
		t.Fatal("open breaker should reject")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	// After the cooldown the breaker half-opens and admits one probe.
	clk.advance(time.Second)
	if !b.Allow("dev") {
		t.Fatal("half-open should admit the first probe")
	}
	if b.State("dev") != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State("dev"))
	}
	if b.Allow("dev") {
		t.Fatal("second probe should be rejected while the first is out")
	}
	// Probe fails: re-open immediately.
	b.Failure("dev")
	if b.State("dev") != Open || b.Allow("dev") {
		t.Fatal("failed probe should re-open")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}

	// Next cycle: probe succeeds, breaker closes.
	clk.advance(time.Second)
	if !b.Allow("dev") {
		t.Fatal("half-open should admit a probe again")
	}
	b.Success("dev")
	if b.State("dev") != Closed {
		t.Fatalf("state = %v, want closed after probe success", b.State("dev"))
	}
	if !b.Allow("dev") || !b.Allow("dev") {
		t.Fatal("closed breaker should admit freely")
	}
	// Success also clears the failure streak.
	b.Failure("dev")
	b.Success("dev")
	b.Failure("dev")
	if b.State("dev") != Closed {
		t.Fatal("streak should reset on success")
	}
}

func TestBreakerProbeReplenish(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreakerSet(BreakerConfig{TripThreshold: 1, Cooldown: time.Second, HalfOpenProbes: 1})
	b.SetClock(clk.now)
	b.Failure("dev")
	clk.advance(time.Second)
	if !b.Allow("dev") {
		t.Fatal("half-open should admit a probe")
	}
	// The probe's caller dies without reporting. Before another cooldown
	// the slot stays consumed...
	clk.advance(time.Second / 2)
	if b.Allow("dev") {
		t.Fatal("slot should still be held")
	}
	// ...but after a full cooldown it is replenished.
	clk.advance(time.Second / 2)
	if !b.Allow("dev") {
		t.Fatal("stale probe slot should be replenished")
	}
}

func TestBreakerOnChange(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreakerSet(BreakerConfig{TripThreshold: 1, Cooldown: time.Second, HalfOpenProbes: 1})
	b.SetClock(clk.now)
	var events []BreakerState
	b.OnChange = func(key string, s BreakerState) { events = append(events, s) }
	b.Failure("dev")
	clk.advance(time.Second)
	b.Allow("dev")
	b.Success("dev")
	want := []BreakerState{Open, HalfOpen, Closed}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestBreakerNilAndUnknownKey(t *testing.T) {
	var b *BreakerSet
	if !b.Allow("x") || b.State("x") != Closed || b.Trips() != 0 {
		t.Fatal("nil breaker set should admit everything")
	}
	b.Success("x")
	b.Failure("x")

	real := NewBreakerSet(BreakerConfig{TripThreshold: 1, Cooldown: time.Second})
	real.Success("never-seen") // no-op, must not create state
	if real.State("never-seen") != Closed {
		t.Fatal("unknown key should be closed")
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(0.5, 2)
	// Starts full: 2 tokens.
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("budget should start full")
	}
	if b.TryAcquire() {
		t.Fatal("empty budget should deny")
	}
	if b.Exhausted() != 1 {
		t.Fatalf("exhausted = %d, want 1", b.Exhausted())
	}
	// Two observed ops earn one token.
	b.ObserveOp()
	if b.TryAcquire() {
		t.Fatal("half a token should not grant")
	}
	b.ObserveOp()
	if !b.TryAcquire() {
		t.Fatal("one full token should grant")
	}
	// Refill caps at burst.
	for i := 0; i < 100; i++ {
		b.ObserveOp()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
	// Nil budget grants everything.
	var nilB *Budget
	if !nilB.TryAcquire() || nilB.Exhausted() != 0 {
		t.Fatal("nil budget should grant")
	}
	nilB.ObserveOp()
}
