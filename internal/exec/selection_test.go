package exec

import (
	"context"
	"testing"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/flow"
	"repro/internal/sim"
)

// TestLazyFilterCarriesSelection checks that a lazy filter emits the
// input's physical rows untouched with a selection vector attached,
// instead of copying survivors.
func TestLazyFilterCarriesSelection(t *testing.T) {
	in := kvBatch([]int64{1, 2, 3, 4}, []int64{10, 20, 30, 40})
	s := &FilterStage{Pred: expr.NewCmp(1, expr.Ge, columnar.IntValue(25)), Lazy: true}
	var out []*columnar.Batch
	if err := s.Process(in, func(b *columnar.Batch) error { out = append(out, b); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("emitted %d batches, want 1", len(out))
	}
	b := out[0]
	if b.NumRows() != 4 {
		t.Fatalf("physical rows = %d, want 4 (no compaction)", b.NumRows())
	}
	if b.Col(0) != in.Col(0) {
		t.Fatal("lazy filter copied column storage")
	}
	if b.LiveRows() != 2 {
		t.Fatalf("LiveRows = %d, want 2", b.LiveRows())
	}
	sel := b.Selection()
	if sel == nil || sel.Get(0) || sel.Get(1) || !sel.Get(2) || !sel.Get(3) {
		t.Fatalf("selection = %v", sel)
	}
	// A fully filtered batch is dropped, not emitted with an empty selection.
	out = out[:0]
	if err := s.Process(kvBatch([]int64{9}, []int64{1}), func(b *columnar.Batch) error {
		out = append(out, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty-result batch emitted: %d", len(out))
	}
}

// TestLazyFilterChainNarrowsSelection checks that chained lazy filters
// AND their selections: the second filter must not resurrect rows the
// first dropped.
func TestLazyFilterChainNarrowsSelection(t *testing.T) {
	in := kvBatch([]int64{1, 2, 3, 4, 5, 6}, []int64{10, 20, 30, 40, 50, 60})
	f1 := &FilterStage{Pred: expr.NewCmp(1, expr.Ge, columnar.IntValue(25)), Lazy: true}
	f2 := &FilterStage{Pred: expr.NewCmp(0, expr.Le, columnar.IntValue(5)), Lazy: true}
	var mid, out []*columnar.Batch
	if err := f1.Process(in, func(b *columnar.Batch) error { mid = append(mid, b); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := f2.Process(mid[0], func(b *columnar.Batch) error { out = append(out, b); return nil }); err != nil {
		t.Fatal(err)
	}
	got := out[0].Compact()
	// Dense reference: same predicates, eager copies.
	want := in.Filter(expr.NewAnd(
		expr.NewCmp(1, expr.Ge, columnar.IntValue(25)),
		expr.NewCmp(0, expr.Le, columnar.IntValue(5)),
	).Eval(in))
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		if got.Col(0).Int64s()[i] != want.Col(0).Int64s()[i] {
			t.Fatalf("row %d: %d want %d", i, got.Col(0).Int64s()[i], want.Col(0).Int64s()[i])
		}
	}
}

// TestSelectionAwareStages checks each dense-boundary consumer against
// its dense-input behaviour when fed a lazily selected batch.
func TestSelectionAwareStages(t *testing.T) {
	in := kvBatch([]int64{5, 1, 4, 2, 3}, []int64{50, 10, 40, 20, 30})
	sel := columnar.NewBitmap(5)
	sel.Set(0)
	sel.Set(2)
	sel.Set(4) // keep k=5,4,3
	lazy := in.WithSelection(sel)
	dense := lazy.Compact()

	check := func(name string, mk func() flow.Stage) {
		lazyRows := allRows(runStage(t, mk(), lazy))
		denseRows := allRows(runStage(t, mk(), dense))
		if len(lazyRows) != len(denseRows) {
			t.Fatalf("%s: %d rows lazy vs %d dense", name, len(lazyRows), len(denseRows))
		}
		for i := range lazyRows {
			for c := range lazyRows[i] {
				if !lazyRows[i][c].Equal(denseRows[i][c]) {
					t.Fatalf("%s: row %d col %d: %v vs %v", name, i, c, lazyRows[i][c], denseRows[i][c])
				}
			}
		}
	}
	check("count", func() flow.Stage { return &CountStage{} })
	check("sort", func() flow.Stage { return &SortStage{ByCol: 0} })
	check("topk", func() flow.Stage { return &TopKStage{K: 2, ByCol: 0} })
	check("limit", func() flow.Stage { return &LimitStage{N: 2} })
	check("hash", func() flow.Stage { return &HashStage{KeyCol: 0} })
	check("join", func() flow.Stage {
		ht := NewHashTable(kvSchema(), 0)
		ht.Build(kvBatch([]int64{4, 3}, []int64{400, 300}))
		return &HashJoinStage{Table: ht, ProbeKey: 0}
	})
	// Join build: a lazily selected build side must only insert live rows.
	ht := NewHashTable(kvSchema(), 0)
	bs := &BuildStage{Table: ht}
	runStage(t, bs, lazy)
	if ht.Rows() != 3 {
		t.Fatalf("build inserted %d rows, want 3", ht.Rows())
	}
}

// TestLazyFilterPipelineCompactsAtLink runs a full pipeline where the
// lazy filter hands off on-device to a count stage, and a second
// pipeline where the filtered stream crosses a link: the link must be
// charged for compacted survivors only.
func TestLazyFilterPipelineCompactsAtLink(t *testing.T) {
	mkSource := func() flow.Source {
		return func(emit flow.Emit) error {
			for i := 0; i < 4; i++ {
				ks := make([]int64, 100)
				vs := make([]int64, 100)
				for j := range ks {
					ks[j] = int64(i*100 + j)
					vs[j] = int64(j)
				}
				if err := emit(kvBatch(ks, vs)); err != nil {
					return err
				}
			}
			return nil
		}
	}
	pred := expr.NewCmp(1, expr.Lt, columnar.IntValue(10)) // 10% pass
	run := func(lazy bool) flow.Result {
		link := &fabric.Link{Name: "wire", A: "a", B: "b", Bandwidth: sim.GBPerSec, Latency: sim.Microsecond}
		p := &flow.Pipeline{
			Name:   "sel",
			Source: mkSource(),
			Stages: []flow.Placed{
				{Stage: &FilterStage{Pred: pred, Lazy: lazy}},
				{Stage: &ProjectStage{Columns: []int{0}}},
				{Stage: &SortStage{ByCol: 0}},
			},
			// filter and project hand off on-device; the sort input
			// crosses the wire.
			Paths: [][]*fabric.Link{nil, nil, {link}},
		}
		res, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lazyRes := run(true)
	denseRes := run(false)
	if lazyRes.SinkRows != denseRes.SinkRows || lazyRes.SinkRows != 40 {
		t.Fatalf("sink rows lazy %d dense %d, want 40", lazyRes.SinkRows, denseRes.SinkRows)
	}
	// Port 2 (the wire crossing) must carry identical compacted bytes in
	// both modes: lazy batches compact at Send.
	if lazyRes.Ports[2].Bytes != denseRes.Ports[2].Bytes {
		t.Fatalf("wire bytes lazy %v dense %v", lazyRes.Ports[2].Bytes, denseRes.Ports[2].Bytes)
	}
	// Port 1 (on-device handoff out of the lazy filter) carries the full
	// physical batches in lazy mode — that is the deferred copy.
	if lazyRes.Ports[1].Bytes <= denseRes.Ports[1].Bytes {
		t.Fatalf("on-device bytes lazy %v dense %v: lazy should defer compaction",
			lazyRes.Ports[1].Bytes, denseRes.Ports[1].Bytes)
	}
}
