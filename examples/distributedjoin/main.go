// Distributedjoin reproduces Figure 4 interactively: a partitioned hash
// join across compute nodes where the scattering pipeline runs either on
// the smart NIC (no CPU involvement) or on the CPUs, for a node-count
// sweep.
//
//	go run ./examples/distributedjoin
package main

import (
	"fmt"
	"log"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	build := []*columnar.Batch{workload.GenKV(workload.KVConfig{Rows: 20000, Keys: 20000, Seed: 1})}
	probe := []*columnar.Batch{workload.GenKV(workload.KVConfig{Rows: 200000, Keys: 40000, Seed: 2})}

	fmt.Println("Figure 4: scattering pipeline for a distributed, partitioned hash join")
	fmt.Printf("%-6s %-8s %-12s %-14s %-14s %-16s\n",
		"nodes", "scatter", "joined rows", "cpu bytes", "scatter bytes", "probe skew")

	for _, nodes := range []int{2, 4, 8} {
		for _, onNIC := range []bool{true, false} {
			cfg := netsim.DistJoinConfig{
				BuildKey: 0, ProbeKey: 0,
				ScatterOnNIC: onNIC,
				BatchRows:    1024,
			}
			if onNIC {
				cfg.ScatterDevice = fabric.NewSmartNIC("scatter-nic", sim.GbitPerSec(400))
			} else {
				cfg.ScatterDevice = fabric.NewCPU("scatter-cpu", 8)
			}
			for i := 0; i < nodes; i++ {
				cfg.Nodes = append(cfg.Nodes, netsim.JoinNode{
					Name: fmt.Sprintf("node%d", i),
					CPU:  fabric.NewCPU(fmt.Sprintf("cpu%d", i), 8),
				})
				cfg.Paths = append(cfg.Paths, []*fabric.Link{{
					Name: fmt.Sprintf("eth%d", i), A: "switch", B: fmt.Sprintf("node%d", i),
					Bandwidth: sim.GbitPerSec(400), Latency: fabric.RDMALatency,
				}})
			}
			res, err := netsim.DistributedJoin(cfg, build, probe, nil)
			if err != nil {
				log.Fatal(err)
			}
			cpuBytes := res.CPUBytes
			mode := "nic"
			if !onNIC {
				cpuBytes += res.ScatterBytes
				mode = "cpu"
			}
			fmt.Printf("%-6d %-8s %-12d %-14s %-14s %d/%d\n",
				nodes, mode, res.Rows, cpuBytes, res.ScatterBytes, res.SkewMax, res.SkewMin)
		}
	}
	fmt.Println("\nnic mode: the exchange never touches a CPU; the NICs partition at line rate")
}
