package encoding

import (
	"encoding/binary"
	"fmt"

	"repro/internal/columnar"
)

// This file implements late materialization: after a predicate kernel
// has produced a selection bitmap, only the surviving rows of only the
// projected columns are decoded (gather-decode). Codecs with
// fixed-width layouts (bit-packing, plain floats, dictionary codes)
// support true random access, so the decode cost is proportional to the
// rows kept; stream codecs (RLE, delta, plain strings) must be walked
// front to back, and GatherBytes charges them honestly at full size.

// DecodeFiltered decodes only the rows whose bit is set in sel,
// returning a dense vector bit-identical to Decode() followed by a
// Gather of the selected indices.
func (ec *EncodedColumn) DecodeFiltered(sel *columnar.Bitmap) (*columnar.Vector, error) {
	if sel.Len() != ec.Stats.NumValues {
		return nil, fmt.Errorf("%w: selection length %d, column has %d rows", ErrCorrupt, sel.Len(), ec.Stats.NumValues)
	}
	if err := ec.verify(); err != nil {
		return nil, err
	}
	var nulls []bool
	if len(ec.Nulls) > 0 {
		var err error
		nulls, err = DecodeBools(ec.Nulls)
		if err != nil {
			return nil, err
		}
		if len(nulls) != ec.Stats.NumValues {
			return nil, fmt.Errorf("%w: null bitmap length mismatch", ErrCorrupt)
		}
	}
	isNull := func(i int) bool { return nulls != nil && nulls[i] }
	out := columnar.NewVector(ec.Type, sel.Count())

	switch {
	case ec.Type == columnar.Int64 && ec.Encoding == BitPacked:
		r, err := newBitPackedReader(ec.Data)
		if err != nil {
			return nil, err
		}
		if r.n != ec.Stats.NumValues {
			return nil, fmt.Errorf("%w: value count mismatch", ErrCorrupt)
		}
		sel.Runs(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if isNull(i) {
					out.AppendNull()
				} else {
					out.AppendInt64(r.at(i))
				}
			}
		})
		return out, nil

	case ec.Type == columnar.Float64 && ec.Encoding == Plain:
		data := ec.Data
		cnt, sz := binary.Uvarint(data)
		if sz <= 0 || int(cnt) != ec.Stats.NumValues {
			return nil, fmt.Errorf("%w: bad float count", ErrCorrupt)
		}
		data = data[sz:]
		if uint64(len(data)) < cnt*8 {
			return nil, fmt.Errorf("%w: float data truncated", ErrCorrupt)
		}
		sel.Runs(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if isNull(i) {
					out.AppendNull()
				} else {
					out.AppendFloat64(lefloat(data[i*8:]))
				}
			}
		})
		return out, nil

	case ec.Type == columnar.String && ec.Encoding == Dict:
		dict, codesData, err := splitDict(ec.Data)
		if err != nil {
			return nil, err
		}
		r, err := newBitPackedReader(codesData)
		if err != nil {
			return nil, err
		}
		if r.n != ec.Stats.NumValues {
			return nil, fmt.Errorf("%w: code count mismatch", ErrCorrupt)
		}
		var badCode error
		sel.Runs(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if isNull(i) {
					out.AppendNull()
					continue
				}
				c := r.at(i)
				if c < 0 || c >= int64(len(dict)) {
					badCode = fmt.Errorf("%w: dict code %d out of range", ErrCorrupt, c)
					return
				}
				out.AppendString(dict[c])
			}
		})
		if badCode != nil {
			return nil, badCode
		}
		return out, nil

	case ec.Type == columnar.Bool && ec.Encoding == Plain:
		data := ec.Data
		cnt, sz := binary.Uvarint(data)
		if sz <= 0 || int(cnt) != ec.Stats.NumValues {
			return nil, fmt.Errorf("%w: bad bool count", ErrCorrupt)
		}
		data = data[sz:]
		if uint64(len(data)) < (cnt+7)/8 {
			return nil, fmt.Errorf("%w: bool data truncated", ErrCorrupt)
		}
		sel.Runs(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if isNull(i) {
					out.AppendNull()
				} else {
					out.AppendBool(data[i>>3]&(1<<(uint(i)&7)) != 0)
				}
			}
		})
		return out, nil
	}

	// Stream codecs: decode fully, then gather. The caller's GatherBytes
	// charge already accounts for the sequential walk.
	full, err := ec.Decode()
	if err != nil {
		return nil, err
	}
	return full.Gather(sel.Indices(nil)), nil
}

// GatherBytes reports how many encoded bytes the processor must touch to
// decode k of the column's rows. Random-access codecs pay proportionally
// (plus the dictionary table for DICT); stream codecs pay the full
// payload because they cannot skip. This is what the virtual-time meter
// charges for a gather-decode.
func (ec *EncodedColumn) GatherBytes(k int) int64 {
	if k <= 0 {
		return 0
	}
	n := ec.Stats.NumValues
	if n == 0 {
		return 0
	}
	if k > n {
		k = n
	}
	nullBytes := int64(len(ec.Nulls)) // the null bitmap is always walked
	switch {
	case ec.Type == columnar.Int64 && ec.Encoding == BitPacked,
		ec.Type == columnar.Float64 && ec.Encoding == Plain,
		ec.Type == columnar.Bool && ec.Encoding == Plain:
		return int64(len(ec.Data))*int64(k)/int64(n) + nullBytes
	case ec.Type == columnar.String && ec.Encoding == Dict:
		dictBytes, codeBytes, err := dictSectionSizes(ec.Data)
		if err != nil {
			return int64(len(ec.Data)) + nullBytes
		}
		return dictBytes + codeBytes*int64(k)/int64(n) + nullBytes
	}
	return int64(len(ec.Data)) + nullBytes
}

// dictSectionSizes reports the byte size of the dictionary table and of
// the packed codes block without materializing entries.
func dictSectionSizes(data []byte) (dictBytes, codeBytes int64, err error) {
	orig := len(data)
	nd, sz := binary.Uvarint(data)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("%w: bad dict size", ErrCorrupt)
	}
	data = data[sz:]
	for i := uint64(0); i < nd; i++ {
		l, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < l {
			return 0, 0, fmt.Errorf("%w: truncated dict entry", ErrCorrupt)
		}
		data = data[sz+int(l):]
	}
	dictBytes = int64(orig - len(data))
	pl, sz := binary.Uvarint(data)
	if sz <= 0 || uint64(len(data)-sz) < pl {
		return 0, 0, fmt.Errorf("%w: truncated dict codes", ErrCorrupt)
	}
	return dictBytes, int64(pl), nil
}

// DecodedSize reports the in-memory footprint the column has after a
// full decode, matching Vector.ByteSize on the decoded vector. For
// dictionary columns this is the real expansion — the sum of the
// referenced entry lengths per row plus string headers — not an
// approximation. The result is memoized; corrupt payloads fall back to
// a size-doubling estimate so metering never fails.
func (ec *EncodedColumn) DecodedSize() int64 {
	if ec.hasDecodedSize {
		return ec.decodedSize
	}
	ec.decodedSize = ec.computeDecodedSize()
	ec.hasDecodedSize = true
	return ec.decodedSize
}

func (ec *EncodedColumn) computeDecodedSize() int64 {
	n := int64(ec.Stats.NumValues)
	var size int64
	switch ec.Type {
	case columnar.Int64, columnar.Float64:
		size = n * 8
	case columnar.Bool:
		size = n
	case columnar.String:
		var ok bool
		size, ok = ec.decodedStringSize()
		if !ok {
			return int64(len(ec.Data)+len(ec.Nulls)) * 2
		}
	default:
		return int64(len(ec.Data)+len(ec.Nulls)) * 2
	}
	// A decoded vector's null bitmap covers bits up to the last NULL row.
	if len(ec.Nulls) > 0 {
		if nulls, err := DecodeBools(ec.Nulls); err == nil {
			last := -1
			for i, isNull := range nulls {
				if isNull {
					last = i
				}
			}
			if last >= 0 {
				size += int64((last/64 + 1) * 8)
			}
		}
	}
	return size
}

// decodedStringSize sums the decoded byte footprint of a string column:
// per-row value length plus the 16-byte string header Vector.ByteSize
// charges.
func (ec *EncodedColumn) decodedStringSize() (int64, bool) {
	switch ec.Encoding {
	case Plain:
		data := ec.Data
		cnt, sz := binary.Uvarint(data)
		if sz <= 0 {
			return 0, false
		}
		data = data[sz:]
		var total int64
		for i := uint64(0); i < cnt; i++ {
			l, sz := binary.Uvarint(data)
			if sz <= 0 || uint64(len(data)-sz) < l {
				return 0, false
			}
			data = data[sz+int(l):]
			total += int64(l) + 16
		}
		return total, true
	case Dict:
		dict, codesData, err := splitDict(ec.Data)
		if err != nil {
			return 0, false
		}
		r, err := newBitPackedReader(codesData)
		if err != nil || r.n != ec.Stats.NumValues {
			return 0, false
		}
		var total int64
		for i := 0; i < r.n; i++ {
			c := r.at(i)
			if c < 0 || c >= int64(len(dict)) {
				return 0, false
			}
			total += int64(len(dict[c])) + 16
		}
		return total, true
	}
	return 0, false
}
