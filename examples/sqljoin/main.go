// Sqljoin shows the two remaining public-API surfaces: the SQL
// front-end (parsed against the engine catalog, planned and placed like
// any other query) and the Figure 4 distributed join between two stored
// tables, on both engines.
//
//	go run ./examples/sqljoin
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func main() {
	lcfg := workload.DefaultLineitemConfig(60000)
	lcfg.Orders = 15000
	lineitem := workload.GenLineitem(lcfg)
	orders := workload.GenOrders(15000, 7)

	df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 512*sim.MB)
	must(df.CreateTable("lineitem", workload.LineitemSchema()))
	must(df.CreateTable("orders", workload.OrdersSchema()))
	must(df.Load("lineitem", lineitem))
	must(df.Load("orders", orders))
	must(vo.CreateTable("lineitem", workload.LineitemSchema()))
	must(vo.CreateTable("orders", workload.OrdersSchema()))
	must(vo.Load("lineitem", lineitem))
	must(vo.Load("orders", orders))

	// --- SQL ---
	sql := `SELECT l_returnflag, COUNT(*), SUM(l_extendedprice)
	        FROM lineitem WHERE l_shipdate BETWEEN 0 AND 700
	        GROUP BY l_returnflag ORDER BY 2`
	q, err := sqlparse.Parse(sql, df)
	must(err)
	fmt.Printf("SQL: %s\ncompiled: %s\n\n", sql, q)
	res, err := df.Execute(context.Background(), q)
	must(err)
	fmt.Print(res.Format(5))
	fmt.Printf("\nplaced as %q: %s moved, CPU touched %s\n\n",
		res.Stats.Variant, res.Stats.MovedBytes, res.Stats.CPUBytes)

	// --- Distributed join (Figure 4) ---
	jq := core.JoinQuery{
		Probe: "lineitem", Build: "orders",
		ProbeKey: workload.LOrderKey, BuildKey: workload.OOrderKey,
	}
	dfJoin, err := df.ExecuteJoin(context.Background(), jq)
	must(err)
	voJoin, err := vo.ExecuteJoin(context.Background(), jq)
	must(err)
	fmt.Printf("lineitem ⋈ orders: %d rows on both engines (match: %v)\n",
		dfJoin.Rows(), dfJoin.Rows() == voJoin.Rows())
	fmt.Printf("  dataflow (NIC scatter over %d nodes): CPU busy %v, moved %s\n",
		df.Cluster.Cfg.ComputeNodes, dfJoin.Stats.CPUBusy, dfJoin.Stats.MovedBytes)
	fmt.Printf("  volcano  (single node, buffer pool):  CPU busy %v, moved %s\n",
		voJoin.Stats.CPUBusy, voJoin.Stats.MovedBytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
