// Command dfbench regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	dfbench [-rows N] [-only E2,E7] [-list] [-trace FILE] [-json FILE]
//	        [-deadline D] [-offered-load 1,4,16] [-hedge=false] [-scrub=false]
//	        [-metrics-addr :9090] [-metrics-hold D] [-metrics-json FILE]
//
// Each experiment reproduces the scenario of one figure or Section-7
// claim of "Data Flow Architectures for Data Processing on Modern
// Hardware" (Lerner & Alonso, ICDE 2024) and prints the rows the paper's
// argument predicts.
//
// -trace FILE writes a Chrome/Perfetto trace (load at ui.perfetto.dev)
// of the E20 staged-overlap run: both engines' virtual-time timelines as
// separate processes. Traces are deterministic for a fixed -rows, so CI
// diffs two runs byte-for-byte.
//
// -json FILE writes a machine-readable perf artifact (conventionally
// BENCH_results.json): every executed experiment's key metrics.
//
// -deadline and -offered-load parameterize the E21 lifecycle sweep: the
// per-query deadline its overload half judges shedding against, and the
// concurrent-arrival burst sizes it offers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/sim"
)

var (
	deadline = flag.Duration("deadline", 0,
		"per-query deadline for the E21 overload sweep (0 = experiment default)")
	offeredLoad = flag.String("offered-load", "",
		"comma-separated E21 burst sizes, e.g. 1,4,16 (empty = experiment default)")
	workersFlag = flag.String("workers", "",
		"comma-separated worker counts for the E22 parallelism sweep, e.g. 1,2,4,8 (empty = experiment default)")
	hedgeFlag = flag.Bool("hedge", true,
		"run the hedging+speculation arm of the E24 tail-latency sweep (false = baseline only)")
	scrubFlag = flag.Bool("scrub", true,
		"run the throttled+unthrottled repair arms of the E26 self-healing run (false = detect-only baseline)")
	metricsAddr = flag.String("metrics-addr", "",
		"serve a Prometheus-text /metrics endpoint on host:port for the duration of the run")
	metricsHold = flag.Duration("metrics-hold", 0,
		"keep the /metrics endpoint up this long after the experiments finish")
	metricsJSON = flag.String("metrics-json", "",
		"write periodic JSON registry snapshots to FILE while experiments run")
	metricsInterval = flag.Duration("metrics-interval", 2*time.Second,
		"period between -metrics-json snapshots")
)

// serveReg is the live fleet registry behind -metrics-addr and
// -metrics-json; nil when neither flag is set (telemetry off, zero
// cost). E25 mirrors its accuracy arm's headline series onto it so a
// scrape during the run watches the fleet move.
var serveReg *metrics.Registry

// serveMetrics exposes the registry as a Prometheus text endpoint at
// /metrics, returning the bound address (useful with :0).
func serveMetrics(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := serveReg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		srv := &http.Server{Handler: mux}
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// snapshotLoop rewrites path with a fresh JSON registry snapshot every
// interval until stop is closed, then writes one final snapshot.
func snapshotLoop(path string, interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	write := func() {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			return
		}
		if err := serveReg.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
		}
		f.Close()
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			write()
		case <-stop:
			write()
			return
		}
	}
}

// workerSweep translates -workers into E22's sweep; nil means the
// experiment default.
func workerSweep() ([]int, error) {
	if *workersFlag == "" {
		return nil, nil
	}
	var sweep []int
	for _, s := range strings.Split(*workersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -workers entry %q", s)
		}
		sweep = append(sweep, n)
	}
	return sweep, nil
}

// e21Options translates the command-line flags into E21's knobs.
func e21Options() (experiments.E21Options, error) {
	opts := experiments.E21Options{Deadline: *deadline}
	if *offeredLoad != "" {
		for _, s := range strings.Split(*offeredLoad, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return opts, fmt.Errorf("bad -offered-load entry %q", s)
			}
			opts.OfferedLoads = append(opts.OfferedLoads, n)
		}
	}
	return opts, nil
}

type experiment struct {
	id   string
	desc string
	run  func(rows int) (*experiments.Table, error)
}

func registry() []experiment {
	return []experiment{
		{"E1", "conventional data path (Figure 1)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E1ConventionalPath(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E2", "storage pushdown (Figure 2)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E2StoragePushdown(rows, []float64{0.001, 0.01, 0.1, 0.5, 1.0})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E3", "NIC hashing pipeline (Figure 3)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E3NICHashPipeline(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E4", "staged pre-aggregation (Section 4.4)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E4StagedPreAgg(rows, []int64{10, 100, 10000, 1000000})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E5", "NIC-scattered partitioned join (Figure 4)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E5PartitionedJoin(rows/10+1, rows, 4)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E6", "COUNT on the data path (Section 4.4)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E6NICCount(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E7", "near-memory filtering (Figure 5)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E7NearMemoryFilter(rows, []float64{0.001, 0.01, 0.1, 0.5, 1.0}, false)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E7c", "near-memory filtering, compressed-resident (Section 5.4)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E7NearMemoryFilter(rows, []float64{0.01, 0.1, 0.5}, true)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E8", "pointer chasing, local memory (Section 5.4)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E8PointerChase([]int{1000, 100000, 1000000}, false)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E8r", "pointer chasing, disaggregated memory (Section 5.4)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E8PointerChase([]int{1000, 100000, 1000000}, true)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E9", "coherency protocols across interconnects (Section 6)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E9CXLCoherency(rows, 0.1)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E10", "full data-path pipeline (Figure 6)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E10FullPipeline(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E11", "credit-based flow control (Section 7.1)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E11CreditFlow(rows / 10)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E12", "interference-aware scheduling (Section 7.3)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E12Interference(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E13", "no more buffer pools (Section 7.4)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E13NoBufferPool([]int{rows / 4, rows / 2, rows}, 2*sim.MB)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E14", "no more data caches (Section 7.5)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E14NoDataCache(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E15", "kernel installation overhead (Section 7.2)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E15KernelSetup([]sim.Bytes{64 * sim.KB, sim.MB, 64 * sim.MB, sim.GB})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E16", "cache and TLB stalls (Section 5.1)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E16CacheStalls()
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E17", "disaggregated memory with operator offloading (Section 5.3)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E17DisaggregatedMemory(rows, []float64{0.001, 0.01, 0.1, 0.5, 1.0})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E18", "HTAP format transposition (Section 5.4)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E18HTAPTranspose([]int{rows / 4, rows, rows * 4})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E19", "availability under injected faults (robustness)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E19Availability(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E20", "staged pipeline overlap from virtual-time traces (Section 4)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E20StageOverlap(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E21", "query lifecycle: recovery waste and overload shedding (robustness)", func(rows int) (*experiments.Table, error) {
			opts, err := e21Options()
			if err != nil {
				return nil, err
			}
			r, err := experiments.E21Lifecycle(rows, opts)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E22", "morsel-driven intra-query parallelism: speedup vs workers", func(rows int) (*experiments.Table, error) {
			sweep, err := workerSweep()
			if err != nil {
				return nil, err
			}
			r, err := experiments.E22Parallelism(rows, sweep)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E23", "decode-cost elimination: encoded predicate eval vs eager decode", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E23EncodedEval(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E24", "tail latency under gray failure: hedged reads + speculation (robustness)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E24TailLatency(rows, experiments.E24Options{NoHedge: !*hedgeFlag})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E25", "fleet telemetry: overhead, histogram accuracy, SLO-led shedding (observability)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E25Telemetry(rows, experiments.E25Options{Registry: serveReg})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"E26", "self-healing storage: scrub + read-repair + re-replication under SLO throttling (robustness)", func(rows int) (*experiments.Table, error) {
			r, err := experiments.E26SelfHeal(rows, experiments.E26Options{NoHeal: !*scrubFlag})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"A1", "ablation: wire compression vs network speed", func(rows int) (*experiments.Table, error) {
			r, err := experiments.A1WireCompression(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"A2", "ablation: NIC generation sweep", func(rows int) (*experiments.Table, error) {
			r, err := experiments.A2NICTierSweep(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"A3", "ablation: zone-map pruning vs segment size", func(rows int) (*experiments.Table, error) {
			r, err := experiments.A3SegmentSize(rows)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"A4", "ablation: pre-aggregation state budget", func(rows int) (*experiments.Table, error) {
			r, err := experiments.A4StateBudget(rows, int64(rows)/3)
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
		{"A5", "ablation: distributed group-by scale-out", func(rows int) (*experiments.Table, error) {
			r, err := experiments.A5ScaleOut(rows, []int{1, 2, 4, 8})
			if err != nil {
				return nil, err
			}
			return r.Table, nil
		}},
	}
}

// jsonEntry is one experiment's slice of the -json perf artifact.
type jsonEntry struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// EncodedEval and DecodedBytesSaved capture whether the run used
	// encoded predicate evaluation and how many decode bytes late
	// materialization avoided, so BENCH_*.json trajectories track the
	// win across revisions.
	EncodedEval       bool  `json:"encodedEval,omitempty"`
	DecodedBytesSaved int64 `json:"decodedBytesSaved,omitempty"`
	// Gray-failure defense counters (E24): duplicate work and breaker
	// activity the run's resilience policy reported. Emitted
	// unconditionally — a zero is a result, and dropping the fields
	// under -hedge=false would make the artifact schema depend on flags.
	HedgedReads          int64 `json:"hedgedReads"`
	SpeculativeMorsels   int64 `json:"speculativeMorsels"`
	BreakerTrips         int64 `json:"breakerTrips"`
	RetryBudgetExhausted int64 `json:"retryBudgetExhausted"`
	// Self-healing counters (E26) and the deterministic fault seed the
	// run's damage schedule was drawn from — also unconditional, so the
	// artifact schema is stable and a zero reads as "no repair work",
	// not "field missing".
	ReadRepairs  int64 `json:"readRepairs"`
	ScrubRepairs int64 `json:"scrubRepairs"`
	Recloned     int64 `json:"recloned"`
	RepairBytes  int64 `json:"repairBytes"`
	FaultSeed    int64 `json:"faultSeed"`
}

func writeTraceFile(path string, rows int) error {
	r, err := experiments.E20StageOverlap(rows)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.WritePerfetto(f,
		obs.Process{Name: "dataflow", Trace: r.DataFlowTrace},
		obs.Process{Name: "volcano", Trace: r.VolcanoTrace})
}

func writeJSONFile(path string, rows int, workers []int, entries []jsonEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Rows    int         `json:"rows"`
		Workers []int       `json:"workers,omitempty"`
		Results []jsonEntry `json:"results"`
	}{Rows: rows, Workers: workers, Results: entries})
}

func main() {
	rows := flag.Int("rows", 50000, "workload size (rows)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	tracePath := flag.String("trace", "", "write a Perfetto trace of the E20 run to FILE")
	jsonPath := flag.String("json", "", "write executed experiments' metrics to FILE (e.g. BENCH_results.json)")
	flag.Parse()

	exps := registry()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.id, e.desc)
		}
		return
	}
	if *metricsAddr != "" || *metricsJSON != "" {
		serveReg = metrics.New()
	}
	if *metricsAddr != "" {
		bound, err := serveMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving metrics on http://%s/metrics\n", bound)
	}
	var snapStop chan struct{}
	var snapDone chan struct{}
	if *metricsJSON != "" {
		snapStop, snapDone = make(chan struct{}), make(chan struct{})
		go snapshotLoop(*metricsJSON, *metricsInterval, snapStop, snapDone)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	failed := false
	var entries []jsonEntry
	for _, e := range exps {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		t, err := e.run(*rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Println(t.String())
		entries = append(entries, jsonEntry{
			ID: t.ID, Title: t.Title, Metrics: t.Metrics,
			EncodedEval: t.EncodedEval, DecodedBytesSaved: t.DecodedBytesSaved,
			HedgedReads: t.HedgedReads, SpeculativeMorsels: t.SpeculativeMorsels,
			BreakerTrips: t.BreakerTrips, RetryBudgetExhausted: t.RetryBudgetExhausted,
			ReadRepairs: t.ReadRepairs, ScrubRepairs: t.ScrubRepairs,
			Recloned: t.Recloned, RepairBytes: t.RepairBytes, FaultSeed: t.FaultSeed,
		})
	}
	if *tracePath != "" {
		if err := writeTraceFile(*tracePath, *rows); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			failed = true
		} else {
			fmt.Printf("wrote Perfetto trace to %s\n", *tracePath)
		}
	}
	if *jsonPath != "" {
		sweep, err := workerSweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if sweep == nil && (len(want) == 0 || want["E22"]) {
			sweep = experiments.E22Workers
		}
		if err := writeJSONFile(*jsonPath, *rows, sweep, entries); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			failed = true
		} else {
			fmt.Printf("wrote metrics to %s\n", *jsonPath)
		}
	}
	if *metricsAddr != "" && *metricsHold > 0 {
		fmt.Printf("holding /metrics for %v\n", *metricsHold)
		time.Sleep(*metricsHold)
	}
	if snapStop != nil {
		close(snapStop)
		<-snapDone
		fmt.Printf("wrote metrics snapshots to %s\n", *metricsJSON)
	}
	if failed {
		os.Exit(1)
	}
}
