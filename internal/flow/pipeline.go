package flow

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// Emit delivers one batch downstream. It is only valid for the duration
// of the Process or Flush call it was passed to.
type Emit func(*columnar.Batch) error

// Stage is one push-based operator. A stage is driven by the runtime:
// Process is called once per input batch and may emit any number of
// output batches; Flush is called once at end-of-stream to drain
// retained state.
type Stage interface {
	Name() string
	Process(b *columnar.Batch, emit Emit) error
	Flush(emit Emit) error
}

// Source produces the pipeline's input batches (e.g. a storage scan).
// It must stop and return promptly when emit returns an error.
type Source func(emit Emit) error

// Placed binds a stage to the device that hosts it. The runtime charges
// the device Op per input byte (when ChargeInput) and one kernel setup
// when the stream starts, modelling Section 7.2's register-programmed
// accelerators.
type Placed struct {
	Stage       Stage
	Device      *fabric.Device
	Op          fabric.OpClass
	ChargeInput bool
	// Workers overrides the pipeline-level worker count for this stage;
	// 0 inherits Pipeline.Workers. Only honored when Stage implements
	// ParallelStage, and always clamped to Device.Units().
	Workers int
}

// Pipeline is a linear chain: Source -> stage[0] -> ... -> stage[n-1] ->
// sink. Ports between consecutive elements carry the traffic across the
// fabric paths given in Paths.
type Pipeline struct {
	Name   string
	Source Source
	Stages []Placed
	// Paths[i] lists the links crossed between element i-1 and element
	// i's device (Paths[0] = source->stage0). Its length must equal
	// len(Stages); missing entries mean on-device handoff.
	Paths [][]*fabric.Link
	// Depth is the per-port queue depth (credits); default 8.
	Depth int
	// Workers asks each ParallelStage to run as a pool of this many
	// workers (morsel-driven parallelism), clamped per stage to the
	// hosting device's Parallelism. 0 or 1 runs everything serial.
	// Parallel stages keep serial semantics — identical output batches
	// in identical order, identical metered totals — via sequence-
	// numbered dispatch and an ordered merge; see ParallelStage.
	Workers int
	// CreditBatch is how many credits accumulate before one return
	// message; default Depth/2.
	CreditBatch int
	// StageTimeout bounds how long one stage may hold a batch (Process or
	// Flush) before the watchdog cancels the run with a StageError
	// wrapping ErrStageTimeout; 0 disables the watchdog.
	StageTimeout time.Duration
	// Faults, when set, is asked once per batch per stage whether the
	// hosting device drops its kernel (faults.DeviceOffline) mid-stream.
	// A fired fault marks the device offline and fails the stage, which
	// is how E19 kills devices mid-query.
	Faults *faults.Injector
	// Trace, when non-nil, makes the run record a causal tape (batch
	// costs, emission counts, per-link transfer costs) and replay it into
	// a deterministic virtual-time span timeline after the stream drains.
	// Nil disables all recording at zero per-batch cost.
	Trace *obs.Trace
	// Clock is the virtual clock the source's emissions are stamped
	// with; the storage scan advances it as it charges media and decode
	// work. Nil freezes the source at virtual time 0 (all batches ready
	// immediately).
	Clock *obs.VClock
	// SourceTrack names the device feeding the source, for attributing
	// source-side credit stalls in the trace.
	SourceTrack string
	// Ckpt, when non-nil, records stage-boundary checkpoints: the source
	// calls Ckpt.Mark at its watermarks and the runtime punctuates the
	// stream with markers each stage snapshots at. Build a fresh
	// Checkpointer per run.
	Ckpt *Checkpointer
	// Restore, when non-nil, reinstalls a completed epoch's per-stage
	// snapshots into the (freshly built) stages before the run starts.
	// The source must separately resume from the epoch's watermark.
	Restore *Restore
	// Health, when non-nil, observes every batch's wall-clock Process
	// latency keyed "stage/<device>" — the per-device straggler signal
	// gray-failure detection feeds on. Latencies are real time, not
	// virtual: an injected slow device shows up here even though its
	// metered costs are unchanged.
	Health *resilience.Tracker
	// Metrics, when set, feeds the fleet registry: flow.credit.stalls
	// counts Sends that found the credit window empty (back-pressure),
	// flow.workers.busy tracks how many workers currently hold a batch,
	// and flow.workers.provisioned how many are running at all. Nil is
	// off; the per-batch cost is one atomic add at each busy/idle flip.
	Metrics *metrics.Registry

	// occ is the worker-occupancy gauge, resolved once per Run.
	occ *metrics.Gauge
}

// markBusy flips the fleet worker-occupancy gauge as one worker starts
// (+1) or stops (-1) holding a batch.
func (p *Pipeline) markBusy(d float64) { p.occ.Add(d) }

// observeStage feeds one batch's stage latency into the health tracker.
func (p *Pipeline) observeStage(dev *fabric.Device, start time.Time) {
	if p.Health == nil || dev == nil {
		return
	}
	p.Health.Observe("stage/"+dev.Name, time.Since(start))
}

// Result reports what a pipeline run did.
type Result struct {
	Ports       []PortStats
	BatchesIn   []int64 // per stage
	BatchesOut  []int64 // per stage
	SinkBatches int64
	SinkRows    int64
	SinkBytes   sim.Bytes
}

// TotalDataMessages sums data messages over all ports.
func (r Result) TotalDataMessages() int64 {
	var n int64
	for _, p := range r.Ports {
		n += p.DataMessages
	}
	return n
}

// TotalCreditMessages sums credit messages over all ports.
func (r Result) TotalCreditMessages() int64 {
	var n int64
	for _, p := range r.Ports {
		n += p.CreditMessages
	}
	return n
}

// Run executes the pipeline, delivering final batches to sink (called
// from a single goroutine). It returns when every stage has flushed, any
// element failed, or ctx was cancelled — cancellation closes the done
// channel, so blocked port sends and receives unwind, credits drain, and
// every goroutine exits before Run returns.
func (p *Pipeline) Run(ctx context.Context, sink Emit) (Result, error) {
	var res Result
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Source == nil {
		return res, fmt.Errorf("flow: pipeline %q has no source", p.Name)
	}
	if len(p.Paths) != 0 && len(p.Paths) != len(p.Stages) {
		return res, fmt.Errorf("flow: pipeline %q has %d paths for %d stages", p.Name, len(p.Paths), len(p.Stages))
	}
	if p.Restore != nil {
		if len(p.Restore.Snaps) != len(p.Stages) {
			return res, fmt.Errorf("flow: pipeline %q restore carries %d snapshots for %d stages",
				p.Name, len(p.Restore.Snaps), len(p.Stages))
		}
		for i, st := range p.Stages {
			snap := p.Restore.Snaps[i]
			if snap == nil {
				continue
			}
			sn, ok := st.Stage.(Snapshotter)
			if !ok {
				return res, fmt.Errorf("flow: pipeline %q restore has state for stage %q, which cannot restore",
					p.Name, st.Stage.Name())
			}
			sn.RestoreState(snap)
		}
	}
	depth := p.Depth
	if depth <= 0 {
		depth = 8
	}
	creditBatch := p.CreditBatch
	if creditBatch <= 0 {
		creditBatch = depth / 2
	}

	done := make(chan struct{})
	var cancelOnce sync.Once
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		if err == nil || err == ErrCanceled {
			return
		}
		errOnce.Do(func() { firstErr = err })
		cancelOnce.Do(func() { close(done) })
	}

	// When tracing, each run records a causal tape: stage tapes are
	// written only by their own goroutines (Inputs by the receiver,
	// Xfers by the single upstream sender), so recording takes no locks.
	var tape *obs.Tape
	var stageTapes []*obs.StageTape
	if p.Trace.Enabled() {
		tape = obs.NewTape(depth)
		tape.Source.Track = p.SourceTrack
		stageTapes = make([]*obs.StageTape, len(p.Stages))
		for i, st := range p.Stages {
			track := ""
			if st.Device != nil {
				track = st.Device.Name
			}
			stageTapes[i] = &obs.StageTape{Name: st.Stage.Name(), Track: track, FaultInput: -1}
		}
		tape.Stages = stageTapes
	}

	ports := make([]*Port, len(p.Stages))
	for i := range p.Stages {
		var path []*fabric.Link
		if len(p.Paths) > 0 {
			path = p.Paths[i]
		}
		var pt *obs.StageTape
		if stageTapes != nil {
			pt = stageTapes[i]
		}
		ports[i] = newPort(fmt.Sprintf("%s.port%d", p.Name, i), path, depth, creditBatch, done, pt)
		ports[i].stallCtr = p.Metrics.Counter("flow.credit.stalls")
	}
	p.occ = p.Metrics.Gauge("flow.workers.busy")

	res.BatchesIn = make([]int64, len(p.Stages))
	res.BatchesOut = make([]int64, len(p.Stages))

	// Context watcher: a deadline or cancellation fails the run, which
	// closes done and unwinds every blocked port operation.
	ctxStop := make(chan struct{})
	var ctxWG sync.WaitGroup
	if ctx.Done() != nil {
		ctxWG.Add(1)
		go func() {
			defer ctxWG.Done()
			select {
			case <-ctx.Done():
				fail(ctx.Err())
			case <-ctxStop:
			case <-done:
			}
		}()
	}

	// Checkpointing: the source's Mark calls inject an epoch marker into
	// the stream (or, with no stages, complete the epoch at the sink
	// directly — the source goroutine is the sink writer there).
	if p.Ckpt != nil {
		p.Ckpt.bind(len(p.Stages), func(epoch int) error {
			if len(ports) == 0 {
				p.Ckpt.sinkComplete(epoch, res.SinkBatches)
				return nil
			}
			return ports[0].SendMarker(epoch)
		})
	}

	// Stages that block for long stretches (injected slowness, external
	// waits) observe the cancellation channel so teardown never leaks a
	// goroutine.
	for _, st := range p.Stages {
		if ca, ok := st.Stage.(CancelAware); ok {
			ca.SetCancel(done)
		}
	}

	// workersPer[i] is how many workers run stage i (1 = the serial
	// fast path, identical to the pre-parallelism runtime).
	workersPer := make([]int, len(p.Stages))
	for i := range p.Stages {
		workersPer[i] = p.stageWorkers(i)
	}
	if p.Metrics != nil {
		var provisioned int
		for _, w := range workersPer {
			provisioned += w
		}
		pg := p.Metrics.Gauge("flow.workers.provisioned")
		pg.Add(float64(provisioned))
		defer pg.Add(-float64(provisioned))
	}

	// busySince[i][w] is the wall-clock nanosecond at which stage i's
	// worker w last began holding a batch (Process or Flush), 0 when
	// idle. The watchdog reads it to find hung stages.
	busySince := make([][]atomic.Int64, len(p.Stages))
	for i := range p.Stages {
		busySince[i] = make([]atomic.Int64, workersPer[i])
	}

	var wg sync.WaitGroup

	// Source goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		emit := sink
		if len(ports) > 0 {
			emit = ports[0].Send
		}
		if err := p.Source(func(b *columnar.Batch) error {
			if tape != nil {
				tape.Source.Emits = append(tape.Source.Emits,
					obs.Emission{At: p.Clock.Now(), Bytes: sim.Bytes(b.ByteSize())})
			}
			if len(ports) == 0 {
				b = b.Compact() // the sink is a dense boundary
				res.SinkBatches++
				res.SinkRows += int64(b.NumRows())
				res.SinkBytes += sim.Bytes(b.ByteSize())
			}
			return emit(b)
		}); err != nil {
			fail(err)
		}
		if len(ports) > 0 {
			ports[0].Close()
		}
	}()

	// Stage goroutines. Stages with a worker pool run the parallel
	// dispatcher/merger machinery; everything else takes the serial
	// fast path below, byte-for-byte the pre-parallelism runtime.
	for i := range p.Stages {
		if workersPer[i] > 1 {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var ts *obs.StageTape
				if stageTapes != nil {
					ts = stageTapes[i]
				}
				var next *Port
				if i < len(p.Stages)-1 {
					next = ports[i+1]
				}
				p.runStageParallel(&stageRun{
					i: i, st: p.Stages[i], w: workersPer[i],
					in: ports[i], next: next, sink: sink, res: &res,
					ts: ts, fail: fail, done: done, busy: busySince[i],
				})
			}(i)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := p.Stages[i]
			in := ports[i]
			var ts *obs.StageTape
			if stageTapes != nil {
				ts = stageTapes[i]
			}
			var out Emit
			last := i == len(p.Stages)-1
			if last {
				out = func(b *columnar.Batch) error {
					b = b.Compact() // the sink is a dense boundary
					res.SinkBatches++
					res.SinkRows += int64(b.NumRows())
					res.SinkBytes += sim.Bytes(b.ByteSize())
					res.BatchesOut[i]++
					return sink(b)
				}
			} else {
				next := ports[i+1]
				out = func(b *columnar.Batch) error {
					res.BatchesOut[i]++
					return next.Send(b)
				}
			}
			// offline reports a StageError when the hosting device is (or,
			// via an injected fault, just went) offline. Links through the
			// device still forward — only hosted computation dies.
			offline := func() error {
				if st.Device == nil {
					return nil
				}
				if p.Faults != nil && p.Faults.Fire(faults.DeviceOffline, st.Device.Name) {
					st.Device.SetOffline(true)
				}
				if st.Device.IsOffline() {
					return &StageError{
						Pipeline: p.Name, Stage: st.Stage.Name(),
						Device: st.Device.Name, Err: fabric.ErrDeviceOffline,
					}
				}
				return nil
			}
			// recordFault marks on the tape where the stage died so the
			// replayed timeline carries the annotation.
			recordFault := func(err error) {
				if ts != nil {
					ts.FaultInput = len(ts.Inputs)
					ts.FaultDetail = err.Error()
				}
			}
			if err := offline(); err != nil {
				recordFault(err)
				fail(err)
			} else if st.Device != nil {
				setup := st.Device.ChargeSetup()
				if ts != nil {
					ts.Setup = setup
				}
			}
			for {
				it, ok, err := in.recvItem()
				if err != nil {
					fail(err)
					break
				}
				if ok && it.b == nil {
					// Checkpoint marker: every batch of its epoch has been
					// processed here, so the stage's state right now is the
					// epoch's consistent snapshot. Record it and pass the
					// marker on; at the last stage the epoch completes.
					var snap any
					if sn, isSnap := st.Stage.(Snapshotter); isSnap {
						snap = sn.SnapshotState()
					}
					p.Ckpt.stageSnap(i, it.epoch, snap)
					if last {
						p.Ckpt.sinkComplete(it.epoch, res.SinkBatches)
					} else if err := ports[i+1].SendMarker(it.epoch); err != nil {
						fail(err)
						break
					}
					continue
				}
				b := it.b
				if !ok {
					before := res.BatchesOut[i]
					busySince[i][0].Store(time.Now().UnixNano())
					p.markBusy(1)
					err := st.Stage.Flush(out)
					p.markBusy(-1)
					busySince[i][0].Store(0)
					if err != nil {
						fail(err)
					} else if ts != nil {
						ts.FlushOuts = int(res.BatchesOut[i] - before)
					}
					break
				}
				res.BatchesIn[i]++
				if err := offline(); err != nil {
					recordFault(err)
					fail(err)
					in.CreditReturn()
					break
				}
				var cost sim.VTime
				if st.ChargeInput && st.Device != nil {
					cost = st.Device.Charge(st.Op, sim.Bytes(b.ByteSize()))
				}
				before := res.BatchesOut[i]
				procStart := time.Now()
				busySince[i][0].Store(procStart.UnixNano())
				p.markBusy(1)
				perr := st.Stage.Process(b, out)
				p.markBusy(-1)
				busySince[i][0].Store(0)
				p.observeStage(st.Device, procStart)
				if perr != nil {
					fail(perr)
					in.CreditReturn()
					break
				}
				if ts != nil {
					ts.Inputs = append(ts.Inputs, obs.TapeInput{
						Bytes: sim.Bytes(b.ByteSize()),
						Cost:  cost,
						Outs:  int(res.BatchesOut[i] - before),
					})
				}
				in.CreditReturn()
			}
			in.flushCredits()
			if !last {
				ports[i+1].Close()
			}
		}(i)
	}

	// Watchdog: periodically scan for a stage that has held one batch
	// past StageTimeout and cancel the run, blaming the most-downstream
	// busy stage — upstream stages block in Send behind a hung consumer,
	// so the furthest-downstream one is the culprit.
	var watchWG sync.WaitGroup
	watchStop := make(chan struct{})
	if p.StageTimeout > 0 && len(p.Stages) > 0 {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			tick := p.StageTimeout / 4
			if tick < time.Millisecond {
				tick = time.Millisecond
			}
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-watchStop:
					return
				case <-done:
					return
				case <-t.C:
					now := time.Now().UnixNano()
					for i := len(p.Stages) - 1; i >= 0; i-- {
						hung := false
						for w := range busySince[i] {
							since := busySince[i][w].Load()
							if since != 0 && now-since >= int64(p.StageTimeout) {
								hung = true
								break
							}
						}
						if !hung {
							continue
						}
						st := p.Stages[i]
						dev := ""
						if st.Device != nil {
							dev = st.Device.Name
						}
						fail(&StageError{
							Pipeline: p.Name, Stage: st.Stage.Name(),
							Device: dev, Err: ErrStageTimeout,
						})
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(watchStop)
	watchWG.Wait()
	close(ctxStop)
	ctxWG.Wait()
	for _, port := range ports {
		res.Ports = append(res.Ports, port.Stats())
	}
	// The tape is complete (all writers joined); replay it into the
	// trace's span timeline. Replay is deterministic in the tape, and the
	// tape depends only on batch order and sizes — not on how the host
	// scheduled the goroutines above.
	if tape != nil {
		tape.Replay(p.Trace)
	}
	return res, firstErr
}
