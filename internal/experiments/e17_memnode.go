package experiments

import (
	"context"
	"fmt"

	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E17Row is one selectivity point of the disaggregated-memory sweep.
type E17Row struct {
	Selectivity  float64
	PullBytes    sim.Bytes // network bytes, pull-everything
	OffloadBytes sim.Bytes // network bytes, filter at the memory-side NIC
	PullTime     sim.VTime
	OffloadTime  sim.VTime
	CPUBusyPull  sim.VTime
	CPUBusyOff   sim.VTime
}

// E17Result carries the Section 5.3 scenario.
type E17Result struct {
	Table *Table
	Rows  []E17Row
}

// E17DisaggregatedMemory reproduces Section 5.3 (the Farview-style
// scenario the paper cites): a table region resident on a disaggregated
// memory node, consumed by a compute node. Pulling everything over the
// network and filtering at the CPU is compared with offloading the
// filter to the memory-side NIC, which ships only survivors — "by
// starting to execute a query plan near memory, the portion ... that
// needs to be processed by the CPU is greatly reduced".
func E17DisaggregatedMemory(rows int, selectivities []float64) (*E17Result, error) {
	data := workload.GenKV(workload.KVConfig{Rows: rows, Keys: 1000, Seed: 23})
	regionBytes := sim.Bytes(data.ByteSize())

	res := &E17Result{Table: &Table{
		ID:     "E17",
		Title:  "Disaggregated memory with operator offloading (Section 5.3)",
		Header: []string{"selectivity", "pull net", "offload net", "pull time", "offload time", "cpu busy pull", "cpu busy offload"},
		Notes:  "region resident on the memory node; offload filters at the memory-side NIC",
	}}

	for _, sel := range selectivities {
		hi := int64(float64(1000)*sel) - 1
		if hi < 0 {
			hi = 0
		}
		pred := expr.NewBetween(0, 0, hi)
		survivors := data.Filter(pred.Eval(data))
		survivorBytes := sim.Bytes(survivors.ByteSize())

		run := func(offload bool) (sim.Bytes, sim.VTime, sim.VTime, error) {
			c := fabric.NewCluster(fabric.DefaultClusterConfig())
			cpu := c.ComputeCPU(0)
			memNIC := c.MustDevice(fabric.DevMemNIC)
			net := c.LinkBetween(fabric.DevMemNIC, fabric.DevSwitch)
			var total sim.VTime
			if offload {
				// DRAM -> memory NIC at full controller bandwidth, filter
				// there, survivors onward.
				t, err := c.Transfer(context.Background(), fabric.DevMemNode, fabric.DevMemNIC, regionBytes)
				if err != nil {
					return 0, 0, 0, err
				}
				total += t
				total += memNIC.ChargeSetup()
				total += memNIC.Charge(fabric.OpFilter, regionBytes)
				t, err = c.Transfer(context.Background(), fabric.DevMemNIC, c.ComputeCPU(0).Name, survivorBytes)
				if err != nil {
					return 0, 0, 0, err
				}
				total += t
				total += cpu.Charge(fabric.OpScan, survivorBytes)
			} else {
				// Everything crosses the network; the CPU filters.
				t, err := c.Transfer(context.Background(), fabric.DevMemNode, cpu.Name, regionBytes)
				if err != nil {
					return 0, 0, 0, err
				}
				total += t
				total += cpu.Charge(fabric.OpFilter, regionBytes)
			}
			return net.Meter.Bytes(), total, cpu.Meter.Busy(), nil
		}

		pullNet, pullTime, pullCPU, err := run(false)
		if err != nil {
			return nil, err
		}
		offNet, offTime, offCPU, err := run(true)
		if err != nil {
			return nil, err
		}
		row := E17Row{
			Selectivity: sel,
			PullBytes:   pullNet, OffloadBytes: offNet,
			PullTime: pullTime, OffloadTime: offTime,
			CPUBusyPull: pullCPU, CPUBusyOff: offCPU,
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(fmt.Sprintf("%.1f%%", sel*100),
			pullNet.String(), offNet.String(),
			pullTime.String(), offTime.String(),
			pullCPU.String(), offCPU.String())
	}
	return res, nil
}
