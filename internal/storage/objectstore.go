package storage

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs/metrics"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// ObjectStore is the cloud object store: a flat key space of immutable
// blobs. The paper stresses that real cloud storage is object storage,
// not block devices (Section 3.2); the engine's tables live here as
// marshalled segments.
//
// Availability machinery: Put writes Replicas independent copies of each
// blob and Get falls back across them, retrying transient faults with
// bounded exponential backoff. Faults, when set, injects read-path
// faults so experiments can measure the cost of that recovery.
//
// Gray-failure machinery: BaseLatency models the healthy per-read
// service time, which DegradedDevice faults stretch per replica. When
// Resilience is set, reads prefer the healthiest replica (EWMA latency
// ranking) and, with Resilience.Hedge, race a second replica after a
// deviation-scaled delay — taking the first success and cancelling the
// loser. Hedge-side work is metered separately (HedgeStats), so the
// main Meter's totals are identical whether or not a losing hedge ran.
type ObjectStore struct {
	mu      sync.RWMutex
	objects map[string][][]byte // one entry per replica, len >= 1
	reps    int
	Meter   sim.Meter

	// Name prefixes the per-replica fault targets ("<name>/r<i>/<key>")
	// that gray-failure points match against.
	Name string
	// BaseLatency is the healthy wall-clock service time of one replica
	// read. Zero (the default) keeps reads instantaneous; experiments
	// that measure tail latency set it so DegradedDevice multipliers
	// have a base to stretch.
	BaseLatency time.Duration
	// Resilience enables health-ranked replica selection, hedged reads
	// and retry-budget enforcement. Nil disables all three.
	Resilience *resilience.Policy

	// Faults injects read-path faults (transient errors, corrupt blobs,
	// missing objects, degraded replicas). Nil means a fault-free store.
	Faults *faults.Injector
	// Metrics, when set, mirrors the hedge activity counters into the
	// registry (storage.hedge.reads / wins / bytes, replica fallbacks)
	// as they happen, so a live scrape sees defensive work without
	// waiting for a query's ExecStats. Nil is off.
	Metrics *metrics.Registry
	// MaxRetries bounds the per-replica retries of a transient read
	// fault before falling back to the next replica; 0 disables retry,
	// modelling a legacy detect-only store.
	MaxRetries int
	// RetryBase is the first retry's backoff; it doubles per attempt and
	// is capped at 8x. Zero skips the sleep but still counts retries.
	RetryBase time.Duration

	// Verify, when set, checks every successful read's payload before it
	// is returned: a non-nil error marks the serving replica corrupt,
	// the payload is discarded onto the corrupt-side meters (never the
	// main Meter) and the read falls back to the next replica. Nil (the
	// default) keeps the store integrity-blind, deferring detection to
	// downstream checksums as before.
	Verify func(key string, data []byte) error
	// WriteBack enables read-repair: after a read that rejected one or
	// more corrupt replicas succeeds, the known-good payload is written
	// back over each damaged replica, metered as repair bytes. Off, the
	// store only detects and routes around — the damage persists.
	WriteBack bool
	// RepairContention stretches foreground replica reads while repair
	// I/O (scrub reads, write-backs, re-clones) is in flight on the
	// store: each in-flight repair op adds RepairContention x
	// BaseLatency to a read's service time, modelling the shared device
	// queue behind both traffic classes. Zero (the default) makes repair
	// I/O free, which is the pre-repair behaviour.
	RepairContention float64
	// OnRepair, when set, observes each completed *foreground*
	// read-repair write-back with the object key and the replica index
	// healed — the repair controller's ledger hook for heals it cannot
	// see itself. Background repairs through RepairReplica (scrub heals,
	// re-clones) do not fire it: the controller already counts those on
	// its own ledger. Must be safe for concurrent use.
	OnRepair func(key string, replica int)

	retries    atomic.Int64
	fallbacks  atomic.Int64
	retryBytes atomic.Int64

	hedged     atomic.Int64
	hedgeWins  atomic.Int64
	hedgeOps   atomic.Int64
	hedgeBytes atomic.Int64

	corruptReads atomic.Int64
	corruptOps   atomic.Int64
	corruptBytes atomic.Int64
	repairWrites atomic.Int64
	repairBytes  atomic.Int64
	scrubReads   atomic.Int64
	scrubBytes   atomic.Int64
	lostReads    atomic.Int64
	repairLoad   atomic.Int64

	// stickyDamaged dedups StickyCorrupt damage per replica blob so a
	// point with budget left cannot flip the same byte back to clean;
	// repair write-backs clear the entry. Guarded by mu.
	stickyDamaged map[string]struct{}
}

// DefaultMaxRetries is the retry bound of a freshly built store.
const DefaultMaxRetries = 3

// NewObjectStore returns an empty single-replica store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{
		objects:    make(map[string][][]byte),
		reps:       1,
		Name:       "store",
		MaxRetries: DefaultMaxRetries,
		RetryBase:  50 * time.Microsecond,
	}
}

// SetReplicas sets the replication factor for future Puts (clamped to at
// least 1). Existing objects keep their current replica count.
func (o *ObjectStore) SetReplicas(n int) {
	if n < 1 {
		n = 1
	}
	o.mu.Lock()
	o.reps = n
	o.mu.Unlock()
}

// Replicas reports the current write replication factor.
func (o *ObjectStore) Replicas() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.reps
}

// Put stores a blob under key, replacing any previous value. The write
// fans out to Replicas independent copies; metering charges one op and
// every replicated byte, so replication's cost shows up in the meters.
func (o *ObjectStore) Put(key string, data []byte) {
	o.mu.Lock()
	n := o.reps
	copies := make([][]byte, n)
	for i := range copies {
		// Never store a nil slice: a nil replica slot means the replica
		// is lost (FailReplica), and an empty object must stay readable.
		copies[i] = append(make([]byte, 0, len(data)), data...)
	}
	o.objects[key] = copies
	o.clearStickyLocked(key)
	o.mu.Unlock()
	o.Meter.AddOps(1)
	o.Meter.AddBytes(sim.Bytes(len(data) * n))
}

// Get returns a defensive copy of the blob stored under key; callers may
// mutate the result freely. Reads fall back across replicas and retry
// transient faults with bounded exponential backoff; retry sleeps honor
// ctx, so an expired deadline surfaces immediately instead of after the
// backoff.
func (o *ObjectStore) Get(ctx context.Context, key string) ([]byte, error) {
	return o.get(ctx, key, true)
}

// GetNoCopy is the metered hot path: it returns the stored slice itself,
// which the caller must not modify. Recovery behaviour matches Get.
func (o *ObjectStore) GetNoCopy(ctx context.Context, key string) ([]byte, error) {
	return o.get(ctx, key, false)
}

// replicaKey names replica r for fault targeting and health tracking.
func (o *ObjectStore) replicaKey(r int) string {
	return fmt.Sprintf("%s/r%d", o.Name, r)
}

// singleReplica is the shared read order of every single-replica store;
// it is never mutated (Rank only reorders slices of length >= 2), so
// the hot path stays allocation-free when replication is off.
var singleReplica = []int{0}

// replicaOrder returns the replica indices to try, healthiest first
// when health tracking is on and natural order otherwise.
func (o *ObjectStore) replicaOrder(n int) []int {
	if n == 1 {
		return singleReplica
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	pol := o.Resilience
	if pol == nil || pol.Health == nil || n < 2 {
		return order
	}
	keys := make([]string, n)
	byKey := make(map[string]int, n)
	for i := range keys {
		keys[i] = o.replicaKey(i)
		byKey[keys[i]] = i
	}
	for i, k := range pol.Health.Rank(keys) {
		order[i] = byKey[k]
	}
	return order
}

// readMeter accumulates one read attempt chain's metering locally so the
// caller decides whether it lands on the main Meter (primary work) or
// the hedge counters (hedge-side work).
type readMeter struct {
	ops   int64
	bytes sim.Bytes
}

func (o *ObjectStore) foldMain(m *readMeter) {
	if m.ops != 0 {
		o.Meter.AddOps(m.ops)
	}
	if m.bytes != 0 {
		o.Meter.AddBytes(m.bytes)
	}
}

func (o *ObjectStore) foldHedge(m *readMeter) {
	o.hedgeOps.Add(m.ops)
	o.hedgeBytes.Add(int64(m.bytes))
	o.Metrics.Counter("storage.hedge.bytes").Add(int64(m.bytes))
}

func (o *ObjectStore) get(ctx context.Context, key string, copyOut bool) ([]byte, error) {
	o.mu.RLock()
	copies, ok := o.objects[key]
	o.mu.RUnlock()
	if !ok {
		// The object genuinely does not exist on any replica: permanent.
		return nil, fmt.Errorf("storage: object %q not found", key)
	}
	order := o.replicaOrder(len(copies))
	pol := o.Resilience
	if pol != nil && pol.Hedge && len(order) >= 2 {
		return o.getHedged(ctx, key, copies, order, copyOut)
	}
	return o.getSequential(ctx, key, copies, order, copyOut)
}

// getSequential walks the replicas in order, running the full retry
// loop against each; the pre-resilience read path.
func (o *ObjectStore) getSequential(ctx context.Context, key string, copies [][]byte, order []int, copyOut bool) ([]byte, error) {
	return o.seqRead(ctx, key, copies, order, copyOut, false, nil)
}

// seqRead walks the replicas in order, running the full retry loop
// against each. allFallback marks every replica as a fallback (the
// hedge path's tail, where order excludes the replicas already raced);
// bad carries replica indices already known corrupt from an earlier
// race, so the eventual clean payload can repair them too. A replica
// whose payload fails Verify joins bad and the walk continues — its
// metering lands on the corrupt-side counters, never the main Meter —
// and once any replica serves a verified payload, every replica in bad
// is repaired from it.
func (o *ObjectStore) seqRead(ctx context.Context, key string, copies [][]byte, order []int, copyOut, allFallback bool, bad []int) ([]byte, error) {
	var lastErr error
	for i, r := range order {
		if i > 0 || allFallback {
			o.fallbacks.Add(1)
		}
		var m readMeter
		data, err := o.readLoop(ctx, key, r, copies[r], copyOut, i > 0 || allFallback, true, &m)
		if err == nil {
			if verr := o.verifyPayload(key, r, data, &m); verr != nil {
				bad = append(bad, r)
				lastErr = verr
				if ctx != nil && ctx.Err() != nil {
					break
				}
				continue
			}
			o.foldMain(&m)
			o.repairBad(key, bad, data)
			return data, nil
		}
		o.foldMain(&m)
		lastErr = err
		if ctx != nil && ctx.Err() != nil {
			break // cancelled mid-read: stop burning replicas
		}
	}
	return nil, lastErr
}

// getHedged races the best replica against the second-best: the primary
// read starts immediately, and if it has not completed after a
// deviation-scaled delay (and the retry budget grants a token), the
// hedge read starts on the next replica. The first success wins and the
// loser is cancelled and drained — never leaked. Primary-side metering
// lands on the main Meter; hedge-side metering lands only on the hedge
// counters, so a losing hedge leaves the main Meter byte-identical to
// an unhedged read.
func (o *ObjectStore) getHedged(ctx context.Context, key string, copies [][]byte, order []int, copyOut bool) ([]byte, error) {
	pol := o.Resilience
	prim, sec := order[0], order[1]

	// The hedge fires at the primary replica's ewma + k*dev when enough
	// history backs it, floored at HedgeMinDelay (and at 2x the healthy
	// service time) so a cold or very tight history cannot double every
	// read.
	delay := pol.HedgeMinDelay
	if d := 2 * o.BaseLatency; d > delay {
		delay = d
	}
	if th, ok := pol.Health.Threshold(o.replicaKey(prim), pol.HedgeK); ok && th > delay {
		delay = th
	}

	if ctx == nil {
		ctx = context.Background()
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := make(chan raceResult, 2)
	launch := func(r int, hedge bool) {
		go func() {
			var m readMeter
			data, err := o.readLoop(rctx, key, r, copies[r], copyOut, false, !hedge, &m)
			ch <- raceResult{data: data, err: err, m: m, r: r, hedge: hedge}
		}()
	}
	launch(prim, false)
	inflight := 1
	hedgeLaunched := false
	hedgeDecided := false
	timer := time.NewTimer(delay)
	defer timer.Stop()

	var winner *raceResult
	var lastErr error
	var bad []int // replicas that served corrupt payloads, repaired below
	// accept vets one finished racer: an error or a payload that fails
	// Verify rejects it (corrupt work lands on the corrupt-side meters,
	// the replica joins bad), otherwise it becomes the winner — which
	// may well be the race's *loser* arriving after a corrupt first
	// finisher was rejected.
	accept := func(res raceResult) {
		if res.err != nil {
			lastErr = res.err
			o.foldRace(&res, false)
			return
		}
		if verr := o.verifyPayload(key, res.r, res.data, &res.m); verr != nil {
			bad = append(bad, res.r)
			lastErr = verr
			return
		}
		winner = &res
	}
	for inflight > 0 && winner == nil {
		if hedgeDecided {
			res := <-ch
			inflight--
			accept(res)
			continue
		}
		select {
		case res := <-ch:
			inflight--
			accept(res)
		case <-timer.C:
			hedgeDecided = true
			if pol.Budget.TryAcquire() {
				o.hedged.Add(1)
				o.Metrics.Counter("storage.hedge.reads").Inc()
				launch(sec, true)
				hedgeLaunched = true
				inflight++
			}
		}
	}

	if winner != nil {
		cancel()
		// Drain the loser so nothing leaks past return; cancellation
		// unblocks its injected sleeps promptly.
		for inflight > 0 {
			res := <-ch
			inflight--
			o.foldRace(&res, false)
		}
		o.foldRace(winner, true)
		o.repairBad(key, bad, winner.data)
		return winner.data, nil
	}

	// Both racers failed (or the primary failed before the hedge was
	// worth launching): fall back over the remaining replicas in order.
	rest := order[1:]
	if hedgeLaunched {
		rest = order[2:]
	}
	data, err := o.seqRead(ctx, key, copies, rest, copyOut, true, bad)
	if data == nil && err == nil {
		err = lastErr // no replicas left to walk: surface the race's error
	}
	return data, err
}

// raceResult is one hedged-race participant's outcome.
type raceResult struct {
	data  []byte
	err   error
	m     readMeter
	r     int // replica index that served (or failed) the read
	hedge bool
}

// foldRace lands one race participant's metering: primary work on the
// main Meter, hedge work on the hedge counters. won marks the result
// the caller returned to its client.
func (o *ObjectStore) foldRace(res *raceResult, won bool) {
	if res.hedge {
		o.foldHedge(&res.m)
		if won {
			o.hedgeWins.Add(1)
			o.Metrics.Counter("storage.hedge.wins").Inc()
		}
		return
	}
	o.foldMain(&res.m)
}

// readLoop runs the retry loop against one replica, charging into m.
// fallback marks reads past the first-choice replica (for RetryBytes
// accounting); countRecovery gates the shared recovery counters so
// hedge-side retries do not perturb the Recovery stats of the primary
// path.
func (o *ObjectStore) readLoop(ctx context.Context, key string, r int, data []byte, copyOut, fallback, countRecovery bool, m *readMeter) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		out, err := o.readReplica(ctx, key, r, data, copyOut, m)
		if err == nil {
			if fallback || attempt > 0 {
				o.retryBytes.Add(int64(len(out)))
			}
			return out, nil
		}
		lastErr = err
		retryable := faults.IsTransient(err)
		if fe, isFault := err.(*faults.FaultError); isFault && fe.Kind == faults.ObjectMissing {
			// A missing replica will not reappear: go to the next one.
			retryable = false
		}
		if ctx != nil && ctx.Err() != nil {
			retryable = false
		}
		if !retryable || attempt >= o.MaxRetries {
			break
		}
		if pol := o.Resilience; pol != nil && !pol.Budget.TryAcquire() {
			// Retry budget exhausted: shed the retry instead of
			// amplifying a fault storm.
			break
		}
		if countRecovery {
			o.retries.Add(1)
		}
		if err := o.backoff(ctx, attempt); err != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// readReplica is one read attempt against one replica, with faults
// injected between the request and the returned bytes. The healthy
// service time (BaseLatency) plus any injected DegradedDevice stretch
// is slept for real — gray failures are wall-clock phenomena — and the
// sleep honors ctx so cancelled hedges and expired deadlines return
// immediately.
func (o *ObjectStore) readReplica(ctx context.Context, key string, r int, data []byte, copyOut bool, m *readMeter) ([]byte, error) {
	m.ops++
	start := time.Now()
	delay := o.BaseLatency
	if delay > 0 && o.RepairContention > 0 {
		// Repair I/O shares the device queue: every in-flight repair op
		// stretches this read's service time. This is what an
		// unthrottled re-replication storm does to foreground p99.
		if load := o.repairLoad.Load(); load > 0 {
			delay += time.Duration(float64(o.BaseLatency) * o.RepairContention * float64(load))
		}
	}
	if o.Faults != nil {
		delay += o.Faults.Slowdown(faults.DegradedDevice, o.replicaKey(r)+"/"+key, o.BaseLatency)
	}
	if err := sleepCtx(ctx, delay); err != nil {
		// A read cancelled mid-service still taught us something: the
		// replica held the request for at least this long. Feeding that
		// lower bound into the health tracker is what demotes a gray
		// replica whose reads only ever finish by losing hedge races —
		// without it the replica stays unsampled and Rank keeps
		// exploring it first.
		if pol := o.Resilience; pol != nil {
			pol.Health.Observe(o.replicaKey(r), time.Since(start))
		}
		return nil, err
	}
	if data == nil {
		// The replica slot is empty: its device died and took the blob
		// with it. Feed the loss into the health tracker and breaker so
		// steering avoids the dead replica and the repair controller can
		// declare it dead; only re-replication brings the data back.
		o.noteLost(key, r)
		return nil, &ReplicaLostError{Key: key, Replica: r}
	}
	if o.Faults != nil {
		if o.Faults.Fire(faults.ObjectMissing, key) {
			return nil, &faults.FaultError{Kind: faults.ObjectMissing, Target: key}
		}
		if o.Faults.Fire(faults.TransientRead, key) {
			return nil, &faults.FaultError{Kind: faults.TransientRead, Target: key}
		}
		if o.Faults.Fire(faults.CorruptBlob, key) {
			// The corruption rides the returned copy, never the stored
			// replica; checksums downstream detect it and a re-read heals.
			cp := append([]byte(nil), data...)
			if len(cp) > 0 {
				cp[len(cp)/2] ^= 0x40
			}
			m.bytes += sim.Bytes(len(cp))
			o.observeRead(r, start)
			return cp, nil
		}
		if o.Faults.Fire(faults.StickyCorrupt, o.replicaKey(r)+"/"+key) {
			// Persistent damage: the stored replica blob itself is
			// flipped, so every later read of this replica — foreground
			// or scrub — sees the same corruption until a repair
			// write-back overwrites it.
			data = o.damageReplica(key, r, data)
		}
	}
	m.bytes += sim.Bytes(len(data))
	o.observeRead(r, start)
	if copyOut {
		return append([]byte(nil), data...), nil
	}
	return data, nil
}

// observeRead feeds one completed replica read into the health tracker
// and credits the retry budget.
func (o *ObjectStore) observeRead(r int, start time.Time) {
	pol := o.Resilience
	if pol == nil {
		return
	}
	pol.Health.Observe(o.replicaKey(r), time.Since(start))
	pol.Budget.ObserveOp()
}

// backoff sleeps the bounded-exponential delay for the given attempt,
// returning early with ctx's error if the context expires mid-sleep.
func (o *ObjectStore) backoff(ctx context.Context, attempt int) error {
	if o.RetryBase <= 0 {
		return nil
	}
	d := o.RetryBase << uint(attempt)
	if max := o.RetryBase * 8; d > max {
		d = max
	}
	return sleepCtx(ctx, d)
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first,
// returning ctx's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RecoveryStats counts the store's recovery work so far.
type RecoveryStats struct {
	// Retries is the number of read attempts repeated after a transient
	// fault.
	Retries int64
	// ReplicaFallbacks is the number of reads that moved past replica 0.
	ReplicaFallbacks int64
	// RetryBytes is the payload re-read by recovery (bytes returned by
	// any attempt after the first).
	RetryBytes sim.Bytes
}

// Sub returns s minus prev, isolating one scan's recovery work.
func (s RecoveryStats) Sub(prev RecoveryStats) RecoveryStats {
	return RecoveryStats{
		Retries:          s.Retries - prev.Retries,
		ReplicaFallbacks: s.ReplicaFallbacks - prev.ReplicaFallbacks,
		RetryBytes:       s.RetryBytes - prev.RetryBytes,
	}
}

// Recovery snapshots the store's cumulative recovery counters.
func (o *ObjectStore) Recovery() RecoveryStats {
	return RecoveryStats{
		Retries:          o.retries.Load(),
		ReplicaFallbacks: o.fallbacks.Load(),
		RetryBytes:       sim.Bytes(o.retryBytes.Load()),
	}
}

// HedgeStats counts the store's hedge-side work so far, metered apart
// from the main Meter: a losing hedge never lands in the primary
// byte/op totals.
type HedgeStats struct {
	// Hedged is the number of reads that launched a hedge.
	Hedged int64
	// Wins is the number of hedges whose result was returned.
	Wins int64
	// Ops is the number of hedge-side read attempts.
	Ops int64
	// Bytes is the payload read by hedge-side attempts (win or lose).
	Bytes sim.Bytes
}

// Sub returns s minus prev, isolating one scan's hedging work.
func (s HedgeStats) Sub(prev HedgeStats) HedgeStats {
	return HedgeStats{
		Hedged: s.Hedged - prev.Hedged,
		Wins:   s.Wins - prev.Wins,
		Ops:    s.Ops - prev.Ops,
		Bytes:  s.Bytes - prev.Bytes,
	}
}

// Hedges snapshots the store's cumulative hedge counters.
func (o *ObjectStore) Hedges() HedgeStats {
	return HedgeStats{
		Hedged: o.hedged.Load(),
		Wins:   o.hedgeWins.Load(),
		Ops:    o.hedgeOps.Load(),
		Bytes:  sim.Bytes(o.hedgeBytes.Load()),
	}
}

// Size returns the byte size of the object under key without charging a
// read, or -1 if absent. Metadata operations are free in the model.
func (o *ObjectStore) Size(key string) sim.Bytes {
	o.mu.RLock()
	defer o.mu.RUnlock()
	copies, ok := o.objects[key]
	if !ok {
		return -1
	}
	for _, d := range copies {
		if d != nil {
			return sim.Bytes(len(d))
		}
	}
	return -1 // every replica lost
}

// Delete removes the object (all replicas) under key; deleting a missing
// key is a no-op. Like Put, it is a metered operation.
func (o *ObjectStore) Delete(key string) {
	o.mu.Lock()
	delete(o.objects, key)
	o.clearStickyLocked(key)
	o.mu.Unlock()
	o.Meter.AddOps(1)
}

// List returns all keys with the given prefix in sorted order.
func (o *ObjectStore) List(prefix string) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var keys []string
	for k := range o.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// TotalBytes reports the cumulative size of all stored objects including
// replica copies — replication's capacity cost.
func (o *ObjectStore) TotalBytes() sim.Bytes {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var n sim.Bytes
	for _, copies := range o.objects {
		for _, d := range copies {
			n += sim.Bytes(len(d))
		}
	}
	return n
}

// NumObjects reports the number of stored objects (replicas of one key
// count once).
func (o *ObjectStore) NumObjects() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.objects)
}
