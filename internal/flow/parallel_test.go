package flow

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// pDouble is the stateless parallel version of doubleStage.
type pDouble struct{ doubleStage }

func (s *pDouble) NewWorker() Stage { return &pDouble{} }
func (s *pDouble) Stateless() bool  { return true }

// pSum is a stateful parallel stage: each worker replica keeps its own
// running sum and emits it at flush, so the sink sees one sum per
// worker, in worker order.
type pSum struct{ sumStage }

func (s *pSum) NewWorker() Stage { return &sumStage{} }
func (s *pSum) Stateless() bool  { return false }

// pFail is a stateless parallel stage that errors on batches whose
// first value reaches a threshold.
type pFail struct{ at int64 }

func (s *pFail) Name() string { return "pfail" }
func (s *pFail) Process(b *columnar.Batch, emit Emit) error {
	if b.Col(0).Int64s()[0] >= s.at {
		return errors.New("stage exploded")
	}
	return emit(b)
}
func (s *pFail) Flush(Emit) error { return nil }
func (s *pFail) NewWorker() Stage { return &pFail{at: s.at} }
func (s *pFail) Stateless() bool  { return true }

// pSlow is a stateless parallel stage whose workers park in a
// cancellable delay.
type pSlow struct {
	SlowStage
	delay time.Duration
}

func newPSlow(delay time.Duration) *pSlow {
	return &pSlow{SlowStage: SlowStage{Inner: &passStage{name: "slow"}, Delay: delay}, delay: delay}
}
func (s *pSlow) NewWorker() Stage { return newPSlow(s.delay) }
func (s *pSlow) Stateless() bool  { return true }

// A parallel stateless stage must be observationally identical to the
// serial one: the merger reorders worker outputs back into arrival
// order before anything reaches the sink.
func TestParallelStageOrderedMerge(t *testing.T) {
	assertNoFlowLeaks(t)
	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			p := &Pipeline{
				Name:    "par-merge",
				Source:  nBatchSource(40, 5),
				Stages:  []Placed{{Stage: &pDouble{}}},
				Workers: workers,
			}
			var got []int64
			res, err := p.Run(context.Background(), func(b *columnar.Batch) error {
				got = append(got, b.Col(0).Int64s()...)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 200 {
				t.Fatalf("sink rows = %d, want 200", len(got))
			}
			for i, v := range got {
				if v != int64(i*2) {
					t.Fatalf("sink[%d] = %d, want %d (order not preserved)", i, v, i*2)
				}
			}
			if res.BatchesIn[0] != 40 || res.BatchesOut[0] != 40 {
				t.Errorf("stage in/out = %d/%d, want 40/40", res.BatchesIn[0], res.BatchesOut[0])
			}
		})
	}
}

// Stateful parallel stages are fed round-robin by arrival sequence, so
// each replica's state — and its flush output — is independent of
// goroutine scheduling. Two runs must produce byte-identical sinks.
func TestParallelStatefulRoundRobinDeterministic(t *testing.T) {
	assertNoFlowLeaks(t)
	run := func() []int64 {
		p := &Pipeline{
			Name: "par-sum",
			Source: func(emit Emit) error {
				for i := int64(1); i <= 10; i++ {
					if err := emit(intBatch(i)); err != nil {
						return err
					}
				}
				return nil
			},
			Stages:  []Placed{{Stage: &pSum{}, Workers: 3}},
			Workers: 1, // per-stage override wins
		}
		var got []int64
		if _, err := p.Run(context.Background(), func(b *columnar.Batch) error {
			got = append(got, b.Col(0).Int64s()...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	first := run()
	// Round-robin: worker0 gets 1,4,7,10=22; worker1 gets 2,5,8=15;
	// worker2 gets 3,6,9=18; flushed in worker order.
	want := []int64{22, 15, 18}
	if len(first) != 3 || first[0] != want[0] || first[1] != want[1] || first[2] != want[2] {
		t.Fatalf("flush sums = %v, want %v", first, want)
	}
	for i := 0; i < 5; i++ {
		again := run()
		for j := range want {
			if again[j] != first[j] {
				t.Fatalf("run %d flush = %v, differs from first %v", i, again, first)
			}
		}
	}
}

// A worker error must surface from Run and unwind every goroutine.
func TestParallelStageErrorPropagates(t *testing.T) {
	assertNoFlowLeaks(t)
	p := &Pipeline{
		Name:    "par-fail",
		Source:  nBatchSource(30, 4),
		Stages:  []Placed{{Stage: &pFail{at: 40}}},
		Workers: 4,
	}
	_, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
	if err == nil || !containsStr(err.Error(), "stage exploded") {
		t.Fatalf("err = %v, want stage exploded", err)
	}
}

// Cancellation must unwind a parallel pool whose workers are parked in
// a delay, exactly as it unwinds a hung serial stage.
func TestCancelUnblocksParallelPipeline(t *testing.T) {
	assertNoFlowLeaks(t)
	p := &Pipeline{
		Name:    "par-cancel",
		Source:  nBatchSource(50, 4),
		Stages:  []Placed{{Stage: newPSlow(time.Hour)}},
		Workers: 4,
		Depth:   2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := p.Run(ctx, func(*columnar.Batch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s to unwind", elapsed)
	}
}

// Worker pools charge their device through positional lanes: the main
// meter's totals are identical to a serial run, and the per-lane split
// only changes the effective (overlapped) busy time.
func TestParallelMeteredTotalsMatchSerial(t *testing.T) {
	assertNoFlowLeaks(t)
	run := func(workers int) *fabric.Device {
		dev := fabric.NewSmartNIC("nic", sim.GbitPerSec(100))
		p := &Pipeline{
			Name:    "par-meter",
			Source:  nBatchSource(16, 64),
			Stages:  []Placed{{Stage: &pDouble{}, Device: dev, Op: fabric.OpFilter, ChargeInput: true}},
			Workers: workers,
		}
		if _, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return dev
	}
	serial := run(1)
	parallel := run(4)
	if serial.Meter.Bytes() != parallel.Meter.Bytes() {
		t.Errorf("metered bytes differ: serial %v parallel %v", serial.Meter.Bytes(), parallel.Meter.Bytes())
	}
	if serial.Meter.Busy() != parallel.Meter.Busy() {
		t.Errorf("metered busy differs: serial %v parallel %v", serial.Meter.Busy(), parallel.Meter.Busy())
	}
	// The parallel run spread the same busy across 4 lanes, so the
	// overlapped makespan shrinks while the total stays put.
	lanes := parallel.LaneBusy()
	eff := fabric.EffectiveBusy(parallel.Meter.Busy(), nil, lanes)
	if eff >= parallel.Meter.Busy() {
		t.Errorf("effective busy %v did not shrink below total %v", eff, parallel.Meter.Busy())
	}
	var laneSum sim.VTime
	for _, l := range lanes {
		laneSum += l
	}
	// Everything this stage charged went through a lane; only the shared
	// kernel-setup charge stays serial.
	if laneSum+fabric.KernelSetupAcc != parallel.Meter.Busy() {
		t.Errorf("lane sum %v + setup %v != total busy %v", laneSum, fabric.KernelSetupAcc, parallel.Meter.Busy())
	}
}

// Checkpoint markers must survive a parallel stage: they are merged at
// their arrival position, so every epoch's cut and sink watermark is
// identical to the serial run's.
func TestCheckpointThroughParallelStage(t *testing.T) {
	assertNoFlowLeaks(t)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			ck := NewCheckpointer()
			p := &Pipeline{
				Name:   "par-ckpt",
				Source: markedSource(ck, 6, map[int]int{1: 2, 2: 4}),
				Stages: []Placed{
					{Stage: &pDouble{}},
					{Stage: &ckptSumStage{}},
				},
				Ckpt:    ck,
				Workers: workers,
			}
			var sink []int64
			res, err := p.Run(context.Background(), func(b *columnar.Batch) error {
				sink = append(sink, b.Col(0).Int64s()[0])
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// 6 doubled batches then the flushed sum 2*(1+..+6)=42.
			if len(sink) != 7 || sink[6] != 42 {
				t.Fatalf("sink = %v, want 2,4,..,12 then 42", sink)
			}
			if got := ck.Completed(); got != 2 {
				t.Errorf("Completed = %d, want 2", got)
			}
			// Epoch cuts: sums at the marker positions, doubled.
			if snaps := ck.Snaps(1); len(snaps) != 2 || snaps[1] != int64(6) {
				t.Errorf("Snaps(1) = %v, want [nil 6]", snaps)
			}
			if snaps := ck.Snaps(2); snaps[1] != int64(20) {
				t.Errorf("Snaps(2)[1] = %v, want 20", snaps[1])
			}
			if n := ck.SinkBatches(1); n != 2 {
				t.Errorf("SinkBatches(1) = %d, want 2", n)
			}
			if n := ck.SinkBatches(2); n != 4 {
				t.Errorf("SinkBatches(2) = %d, want 4", n)
			}
			for i, ps := range res.Ports {
				if ps.MarkerMessages != 2 {
					t.Errorf("port %d carried %d markers, want 2", i, ps.MarkerMessages)
				}
			}
		})
	}
}

// A Snapshotter stage under checkpointing must stay serial even when
// the pipeline asks for workers — an epoch snapshot is one consistent
// state, not W fragments.
func TestSnapshotterStaysSerialUnderCheckpoint(t *testing.T) {
	p := &Pipeline{
		Name:    "snap-serial",
		Stages:  []Placed{{Stage: &pCkptSum{}}},
		Ckpt:    NewCheckpointer(),
		Workers: 4,
	}
	if w := p.stageWorkers(0); w != 1 {
		t.Errorf("snapshotting stage got %d workers under checkpointing, want 1", w)
	}
	p.Ckpt = nil
	if w := p.stageWorkers(0); w != 4 {
		t.Errorf("snapshotting stage got %d workers without checkpointing, want 4", w)
	}
}

// pCkptSum is a snapshottable parallel stage used to exercise the
// serial fallback.
type pCkptSum struct{ ckptSumStage }

func (s *pCkptSum) NewWorker() Stage { return &pCkptSum{} }
func (s *pCkptSum) Stateless() bool  { return false }

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
