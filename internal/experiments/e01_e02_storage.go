package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E1Result carries the conventional-path measurements for assertions.
type E1Result struct {
	Table     *Table
	TableSize sim.Bytes
	HopBytes  map[string]sim.Bytes
}

// E1ConventionalPath reproduces Figure 1 / Section 2.1: on the von
// Neumann data path every byte of the table crosses every hop
// (disk->memory->cache->CPU) before a single predicate is evaluated,
// regardless of how selective the query is.
func E1ConventionalPath(rows int) (*E1Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	size := sim.Bytes(data.ByteSize())

	top := fabric.NewConventionalServer()
	res := &E1Result{
		Table: &Table{
			ID:     "E1",
			Title:  "Conventional data path (Figure 1): bytes per hop, selectivity-independent",
			Header: []string{"selectivity", "disk->dram", "dram->llc", "llc->cpu", "cpu-examined"},
			Notes:  "every hop carries the full table no matter how few rows the query keeps",
		},
		TableSize: size,
		HopBytes:  make(map[string]sim.Bytes),
	}

	for _, sel := range []float64{0.001, 0.01, 0.1, 1.0} {
		top.ResetMeters()
		// The legacy engine pulls everything to the CPU, then filters.
		if _, err := top.Transfer(context.Background(), fabric.DevDisk, fabric.DevCPU, size); err != nil {
			return nil, err
		}
		cpu := top.MustDevice(fabric.DevCPU)
		cpu.Charge(fabric.OpFilter, size)
		pred := workload.SelectivityFilter(cfg, sel)
		_ = pred.Eval(data) // the real filtering work, done at the very end

		row := []string{fmt.Sprintf("%.1f%%", sel*100)}
		for _, link := range []string{"disk--dram", "dram--llc", "llc--cpu"} {
			bytes := top.Link(link).Meter.Bytes()
			res.HopBytes[link] = bytes
			row = append(row, bytes.String())
		}
		row = append(row, cpu.Meter.Bytes().String())
		res.Table.AddRow(row...)
	}
	return res, nil
}

// E2Row is one selectivity point of the pushdown experiment.
type E2Row struct {
	Selectivity  float64
	CPUOnlyNet   sim.Bytes
	PushdownNet  sim.Bytes
	Reduction    float64
	CPUOnlyTime  sim.VTime
	PushdownTime sim.VTime
}

// E2Result carries the Figure 2 sweep.
type E2Result struct {
	Table *Table
	Rows  []E2Row
}

// E2StoragePushdown reproduces Figure 2: offloading selection and
// projection to the storage layer cuts network traffic proportionally to
// selectivity x projected width, while the CPU-centric plan ships
// everything.
func E2StoragePushdown(rows int, selectivities []float64) (*E2Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)

	eng := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	if err := eng.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return nil, err
	}
	if err := eng.Load("lineitem", data); err != nil {
		return nil, err
	}

	res := &E2Result{Table: &Table{
		ID:     "E2",
		Title:  "Storage pushdown (Figure 2): network bytes vs selectivity",
		Header: []string{"selectivity", "cpu-only net", "pushdown net", "reduction", "cpu-only time", "pushdown time"},
		Notes:  "net = bytes on storage.nic--switch; pushdown ships only survivors of selection+projection",
	}}

	netLink := "storage.nic--switch"
	for _, sel := range selectivities {
		q := plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, sel)).
			WithProjection(workload.LOrderKey, workload.LExtendedPrice)
		variants, err := eng.Plan(q, 0)
		if err != nil {
			return nil, err
		}
		var cpuOnly, pushdown *plan.Physical
		for _, v := range variants {
			switch v.Variant {
			case "cpu-only":
				cpuOnly = v
			case "storage-pushdown", "full-offload":
				if pushdown == nil {
					pushdown = v
				}
			}
		}
		if cpuOnly == nil || pushdown == nil {
			return nil, fmt.Errorf("experiments: missing variants for E2")
		}
		cpuRes, err := eng.ExecutePlan(context.Background(), cpuOnly)
		if err != nil {
			return nil, err
		}
		pdRes, err := eng.ExecutePlan(context.Background(), pushdown)
		if err != nil {
			return nil, err
		}
		if cpuRes.Rows() != pdRes.Rows() {
			return nil, fmt.Errorf("experiments: E2 variants disagree (%d vs %d rows)", cpuRes.Rows(), pdRes.Rows())
		}
		row := E2Row{
			Selectivity:  sel,
			CPUOnlyNet:   cpuRes.Stats.LinkBytes[netLink],
			PushdownNet:  pdRes.Stats.LinkBytes[netLink],
			CPUOnlyTime:  cpuRes.Stats.SimTime,
			PushdownTime: pdRes.Stats.SimTime,
		}
		if row.PushdownNet > 0 {
			row.Reduction = float64(row.CPUOnlyNet) / float64(row.PushdownNet)
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(
			fmt.Sprintf("%.1f%%", sel*100),
			row.CPUOnlyNet.String(), row.PushdownNet.String(),
			f(row.Reduction)+"x",
			row.CPUOnlyTime.String(), row.PushdownTime.String(),
		)
		res.Table.SetMetric(fmt.Sprintf("reduction@%g", sel), row.Reduction)
	}
	return res, nil
}
