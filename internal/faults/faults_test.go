package faults

import (
	"errors"
	"fmt"
	"testing"
)

// driveInjector performs a fixed mixed sequence of Fire calls and
// returns the rendered schedule.
func driveInjector(in *Injector) string {
	for i := 0; i < 500; i++ {
		in.Fire(TransientRead, fmt.Sprintf("lineitem/seg-%06d", i%7))
		if i%3 == 0 {
			in.Fire(CorruptBlob, fmt.Sprintf("lineitem/seg-%06d", i%5))
		}
		if i%11 == 0 {
			in.Fire(DeviceOffline, "storage.nic")
		}
		in.Fire(LinkFlap, "net.storage-c0")
	}
	return in.Schedule()
}

func armDefault(in *Injector) {
	in.Arm(Point{Kind: TransientRead, Prob: 0.1})
	in.Arm(Point{Kind: CorruptBlob, Target: "lineitem/", Prob: 0.05})
	in.Arm(Point{Kind: DeviceOffline, Target: "storage.nic", Prob: 0.5, Budget: 2})
	in.Arm(Point{Kind: LinkFlap, Prob: 0.02})
}

func TestSameSeedByteIdenticalSchedule(t *testing.T) {
	a, b := New(0xE19), New(0xE19)
	armDefault(a)
	armDefault(b)
	sa, sb := driveInjector(a), driveInjector(b)
	if sa != sb {
		t.Fatalf("same seed produced different schedules:\n--- a ---\n%s--- b ---\n%s", sa, sb)
	}
	if sa == "" {
		t.Fatal("no faults fired at these probabilities over 500 rounds")
	}

	// Reset rewinds to the same schedule.
	a.Reset()
	if s := driveInjector(a); s != sa {
		t.Fatalf("schedule after Reset diverged:\n%s\nvs\n%s", s, sa)
	}

	// A different seed gives a different schedule.
	c := New(0xBEEF)
	armDefault(c)
	if driveInjector(c) == sa {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestUnmatchedChecksDoNotPerturbSchedule(t *testing.T) {
	a, b := New(7), New(7)
	armDefault(a)
	armDefault(b)
	// b sees extra checks of kinds/targets no point matches; they must
	// not consume randomness.
	for i := 0; i < 100; i++ {
		b.Fire(SlowStage, "anything")
		b.Fire(ObjectMissing, "orders/seg-000001")
		b.Fire(CorruptBlob, "orders/seg-000002") // target mismatch
	}
	if sa, sb := driveInjector(a), driveInjector(b); sa != sb {
		t.Fatalf("unmatched checks perturbed the schedule:\n%s\nvs\n%s", sa, sb)
	}
}

func TestCrossPointInterleavingDoesNotPerturbSchedule(t *testing.T) {
	a, b := New(7), New(7)
	armDefault(a)
	armDefault(b)
	// a interleaves the checks of all points (as concurrent pipeline
	// stages and the scan would); b performs the same per-point check
	// sequences batched point by point. Per-point RNG streams make the
	// two orderings produce the same schedule.
	sa := driveInjector(a)
	for i := 0; i < 500; i++ {
		b.Fire(TransientRead, fmt.Sprintf("lineitem/seg-%06d", i%7))
	}
	for i := 0; i < 500; i += 3 {
		b.Fire(CorruptBlob, fmt.Sprintf("lineitem/seg-%06d", i%5))
	}
	for i := 0; i < 500; i += 11 {
		b.Fire(DeviceOffline, "storage.nic")
	}
	for i := 0; i < 500; i++ {
		b.Fire(LinkFlap, "net.storage-c0")
	}
	if sb := b.Schedule(); sa != sb {
		t.Fatalf("check interleaving across points perturbed the schedule:\n%s\nvs\n%s", sa, sb)
	}
}

func TestBudgetAndTarget(t *testing.T) {
	in := New(1)
	in.Arm(Point{Kind: DeviceOffline, Target: "storage.nic", Prob: 1, Budget: 2})
	if in.Fire(DeviceOffline, "c0.nic") {
		t.Fatal("fired on a non-matching target")
	}
	if !in.Fire(DeviceOffline, "storage.nic") || !in.Fire(DeviceOffline, "storage.nic") {
		t.Fatal("armed point did not fire within budget")
	}
	if in.Fire(DeviceOffline, "storage.nic") {
		t.Fatal("fired past its budget")
	}
	if got := in.Fires(); got != 2 {
		t.Fatalf("Fires() = %d, want 2", got)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		kind Kind
		want bool
	}{
		{TransientRead, true}, {ObjectMissing, true}, {LinkFlap, true},
		{SlowStage, true}, {CorruptBlob, false}, {DeviceOffline, false},
	}
	for _, c := range cases {
		err := fmt.Errorf("wrapped: %w", &FaultError{Kind: c.kind, Target: "x"})
		if got := IsTransient(err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.kind, got, c.want)
		}
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
}
