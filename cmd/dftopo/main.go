// Command dftopo prints the preset fabric topologies, their device
// capability tables and calibrated rates — the hardware model every
// experiment runs on.
//
// Usage:
//
//	dftopo [-topology smart|legacy|conventional] [-nodes N] [-nic 100|200|400|800|1600]
//	       [-metrics]
//
// -metrics appends the fleet telemetry inventory for the topology: every
// static metric series the instrumented layers publish, plus the
// per-device and per-link labelled series instantiated from the actual
// devices and links of the printed cluster.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/fabric"
	"repro/internal/plan"
)

func nicTier(gbps int) (fabric.LinkKind, error) {
	switch gbps {
	case 100:
		return fabric.LinkEth100, nil
	case 200:
		return fabric.LinkEth200, nil
	case 400:
		return fabric.LinkEth400, nil
	case 800:
		return fabric.LinkEth800, nil
	case 1600:
		return fabric.LinkEth1600, nil
	}
	return 0, fmt.Errorf("unknown NIC tier %d (want 100|200|400|800|1600)", gbps)
}

// staticSeries lists the unlabelled metric series the instrumented
// layers publish, grouped for the inventory printout.
var staticSeries = []struct{ layer, series string }{
	{"sched", "sched.admit.requests sched.admitted sched.queued sched.queue.depth sched.active"},
	{"sched", "sched.shed sched.shed.queue_full sched.shed.slo_burn sched.shed.deadline sched.queue.cancelled sched.ewma.service.ns"},
	{"storage", "scan.count scan.segments scan.segments.pruned scan.media.bytes scan.shipped.bytes scan.shipped.rows scan.shipped.bytes.rate"},
	{"storage", "scan.decoded.bytes scan.decoded.bytes.saved scan.encoded.segments scan.retries scan.retry.bytes scan.replica.fallbacks"},
	{"storage", "storage.hedge.reads storage.hedge.wins storage.hedge.bytes scan.speculative.morsels scan.speculative.wins scan.speculative.bytes"},
	{"flow", "flow.credit.stalls flow.workers.busy flow.workers.provisioned"},
	{"engine", "fleet.queries fleet.busy.vns fleet.bytes fleet.rows fleet.queries.rate fleet.bytes.rate"},
	{"engine", "query.wall.ns query.simtime.vns query.concurrency.factor query.decoded.bytes.saved"},
	{"engine", "tenant.queries{tenant=} tenant.busy.vns{tenant=} tenant.bytes{tenant=} engine.queries{engine=}"},
	{"resilience", "resilience.budget.tokens resilience.budget.exhausted resilience.breaker.trips resilience.breaker.state{device=}"},
}

// printMetricsInventory renders the telemetry series for this cluster:
// the static series above, then the fabric series labelled with the
// cluster's actual device and link names.
func printMetricsInventory(c *fabric.Cluster) {
	fmt.Println("\nfleet telemetry inventory:")
	for _, s := range staticSeries {
		fmt.Printf("  %-10s %s\n", s.layer, s.series)
	}
	fmt.Println("  fabric, per device (utilization + cumulative busy):")
	for _, d := range c.Devices() {
		fmt.Printf("    fabric.device.utilization{device=%q} fabric.device.busy.vns{device=%q}\n",
			d.Name, d.Name)
	}
	fmt.Println("  fabric, per link (bytes + busy + utilization):")
	for _, l := range c.Links() {
		fmt.Printf("    fabric.link.bytes{link=%q} fabric.link.busy.vns{link=%q} fabric.link.util{link=%q}\n",
			l.Name, l.Name, l.Name)
	}
}

func main() {
	kind := flag.String("topology", "smart", "smart, legacy or conventional")
	nodes := flag.Int("nodes", 2, "compute nodes (cluster topologies)")
	nic := flag.Int("nic", 400, "NIC tier in Gb/s")
	showMetrics := flag.Bool("metrics", false, "print the fleet telemetry series inventory for this topology")
	flag.Parse()

	switch *kind {
	case "conventional":
		fmt.Print(fabric.NewConventionalServer().String())
		return
	case "smart", "legacy":
	default:
		log.Fatalf("unknown topology %q", *kind)
	}

	cfg := fabric.DefaultClusterConfig()
	if *kind == "legacy" {
		cfg = fabric.LegacyClusterConfig()
	}
	cfg.ComputeNodes = *nodes
	tier, err := nicTier(*nic)
	if err != nil {
		log.Fatal(err)
	}
	cfg.NICTier = tier
	c := fabric.NewCluster(cfg)
	fmt.Print(c.String())

	fmt.Println("\ndevice capabilities (streaming rate per op):")
	for _, d := range c.Devices() {
		ops := d.CapabilityList()
		if len(ops) == 0 {
			fmt.Printf("  %-16s (passive)\n", d.Name)
			continue
		}
		fmt.Printf("  %-16s", d.Name)
		for _, op := range ops {
			fmt.Printf(" %s=%s", op, d.RateFor(op))
		}
		fmt.Println()
	}

	pm, err := plan.FromCluster(c, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner data path (node 0): %s\n", pm)
	for i := 0; i < len(pm.Sites)-1; i++ {
		fmt.Printf("  segment %d: bandwidth %s, latency %s\n",
			i, pm.SegmentBandwidth(i), pm.SegmentLatency(i))
	}
	if *showMetrics {
		printMetricsInventory(c)
	}
}
