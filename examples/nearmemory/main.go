// Nearmemory demonstrates the Section 5 functional units on a memory
// region: filtering along the memory-to-cache path (Figure 5),
// decompress-on-demand, pointer chasing, HTAP transposition, and
// GC-style compaction — each against its CPU-centric equivalent.
//
//	go run ./examples/nearmemory
package main

import (
	"fmt"
	"log"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/memdev"
	"repro/internal/workload"
)

func main() {
	data := workload.GenKV(workload.KVConfig{Rows: 500000, Keys: 1000, Seed: 5})

	dram := fabric.NewMemory("dram")
	accel := fabric.NewNearMemoryAccel("nma")
	cpu := fabric.NewCPU("cpu", 1)
	link := &fabric.Link{Name: "dram--cpu", A: "dram", B: "cpu",
		Bandwidth: fabric.CoreMemBandwidth, Latency: fabric.DDRLatency}
	mem := memdev.New("mem0", dram, accel)
	mem.Store("kv", data, false)
	mem.Store("kv_compressed", data, true)

	fmt.Println("Section 5: near-memory functional units vs the CPU path")

	// 1. Filtering (Figure 5).
	pred := expr.NewBetween(0, 0, 9) // ~1% of keys
	_, cpuStats, err := mem.FilterToCPU("kv", pred, link, cpu)
	must(err)
	_, nearStats, err := mem.FilterNear("kv", pred, link)
	must(err)
	fmt.Printf("\nfilter (1%% selectivity):\n")
	fmt.Printf("  cpu path:  %s moved, %s\n", cpuStats.BytesMoved, cpuStats.Time)
	fmt.Printf("  near path: %s moved, %s\n", nearStats.BytesMoved, nearStats.Time)

	// 2. Decompress-on-demand over the compressed-resident copy.
	_, cStats, err := mem.FilterNear("kv_compressed", pred, link)
	must(err)
	r, err := mem.Region("kv_compressed")
	must(err)
	fmt.Printf("\ndecompress-on-demand: region occupies %s instead of %s; near filter moved %s\n",
		r.StoredBytes(), r.DecodedBytes(), cStats.BytesMoved)

	// 3. Pointer chasing over a B+-tree-shaped structure in remote
	// memory.
	keys := make([]int64, 1<<20)
	vals := make([]int64, len(keys))
	for i := range keys {
		keys[i], vals[i] = int64(i), int64(i)*7
	}
	tree, err := memdev.BuildPointerTree(keys, vals, 16)
	must(err)
	remote := &fabric.Link{Name: "rdma", A: "mem", B: "cpu",
		Bandwidth: fabric.EthBandwidth[fabric.LinkEth400], Latency: fabric.RDMALatency}
	_, _, cpuChase := tree.LookupCPU(123456, remote, cpu)
	_, _, nearChase, err := tree.LookupNear(123456, mem, remote)
	must(err)
	fmt.Printf("\npointer chase (depth %d, disaggregated memory):\n", tree.Depth())
	fmt.Printf("  cpu path:  %s, %s moved (one round trip per level)\n", cpuChase.Time, cpuChase.BytesMoved)
	fmt.Printf("  near path: %s, %s moved (only the leaf entry)\n", nearChase.Time, nearChase.BytesMoved)

	// 4. HTAP transposition.
	rows, tStats, err := mem.TransposeToRows("kv", true, link, cpu)
	must(err)
	_, tCPUStats, err := mem.TransposeToRows("kv", false, link, cpu)
	must(err)
	fmt.Printf("\nHTAP transposition of %d rows:\n", len(rows))
	fmt.Printf("  cpu path:  %s moved\n", tCPUStats.BytesMoved)
	fmt.Printf("  near path: %s moved (conversion happens in memory)\n", tStats.BytesMoved)

	// 5. GC-style compaction: drop every other row.
	live := columnar.NewBitmap(data.NumRows())
	for i := 0; i < data.NumRows(); i += 2 {
		live.Set(i)
	}
	gcStats, err := mem.Compact("kv", live, true, link, cpu)
	must(err)
	after, err := mem.Region("kv")
	must(err)
	fmt.Printf("\ncompaction: %d rows remain, %s moved on the near path\n",
		after.Batch.NumRows(), gcStats.BytesMoved)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
