package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

const testRows = 20000

func newEngines(t *testing.T) (*DataFlowEngine, *VolcanoEngine, workload.LineitemConfig) {
	t.Helper()
	cfg := workload.DefaultLineitemConfig(testRows)
	data := workload.GenLineitem(cfg)

	df := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := df.Load("lineitem", data); err != nil {
		t.Fatal(err)
	}

	vo := NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 256*sim.MB)
	if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := vo.Load("lineitem", data); err != nil {
		t.Fatal(err)
	}
	return df, vo, cfg
}

// resultRowsByKey indexes result rows by their first column's string
// form, for order-insensitive comparison.
func resultRowsByKey(r *Result) map[string][]columnar.Value {
	out := make(map[string][]columnar.Value)
	for _, b := range r.Batches {
		for i := 0; i < b.NumRows(); i++ {
			row := b.Row(i)
			out[row[0].String()] = row
		}
	}
	return out
}

func assertSameResults(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Rows() != b.Rows() {
		t.Fatalf("row counts differ: %d vs %d", a.Rows(), b.Rows())
	}
	am, bm := resultRowsByKey(a), resultRowsByKey(b)
	for k, ar := range am {
		br, ok := bm[k]
		if !ok {
			t.Fatalf("key %q missing from second result", k)
		}
		if len(ar) != len(br) {
			t.Fatalf("key %q: widths differ", k)
		}
		for i := range ar {
			if ar[i].Type == columnar.Float64 {
				diff := ar[i].F - br[i].F
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-6*(1+abs(ar[i].F)) {
					t.Fatalf("key %q col %d: %v vs %v", k, i, ar[i], br[i])
				}
				continue
			}
			if !ar[i].Equal(br[i]) {
				t.Fatalf("key %q col %d: %v vs %v", k, i, ar[i], br[i])
			}
		}
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestEnginesAgreeOnFilterProjection(t *testing.T) {
	df, vo, cfg := newEngines(t)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.05)).
		WithProjection(workload.LOrderKey, workload.LExtendedPrice)
	dfRes, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	voRes, err := vo.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if dfRes.Rows() == 0 {
		t.Fatal("empty result")
	}
	assertSameResults(t, dfRes, voRes)
}

func TestEnginesAgreeOnGroupBy(t *testing.T) {
	df, vo, _ := newEngines(t)
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())
	dfRes, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	voRes, err := vo.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if dfRes.Rows() != 3 { // three return flags
		t.Fatalf("groups = %d, want 3", dfRes.Rows())
	}
	assertSameResults(t, dfRes, voRes)
}

func TestEnginesAgreeOnFilteredGroupBy(t *testing.T) {
	df, vo, cfg := newEngines(t)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.2)).
		WithGroupBy(workload.PricingSummary())
	dfRes, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	voRes, err := vo.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, dfRes, voRes)
}

func TestEnginesAgreeOnCount(t *testing.T) {
	df, vo, cfg := newEngines(t)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.1)).
		WithCount()
	dfRes, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	voRes, err := vo.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	dfCount := dfRes.Batches[0].Col(0).Int64s()[0]
	voCount := voRes.Batches[0].Col(0).Int64s()[0]
	if dfCount != voCount || dfCount == 0 {
		t.Fatalf("counts differ: %d vs %d", dfCount, voCount)
	}
}

func TestEnginesAgreeOnHighCardinalityGroupBy(t *testing.T) {
	// Part-level aggregation: more groups than the accelerators' state
	// budgets force spill-and-merge correctness end to end.
	df, vo, _ := newEngines(t)
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PartVolume())
	dfRes, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	voRes, err := vo.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, dfRes, voRes)
}

func TestDataFlowMovesFewerBytes(t *testing.T) {
	df, vo, cfg := newEngines(t)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.02)).
		WithProjection(workload.LExtendedPrice)
	dfRes, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	voRes, err := vo.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2's claim: pushdown cuts the bytes crossing the fabric.
	if dfRes.Stats.MovedBytes*2 >= voRes.Stats.MovedBytes {
		t.Errorf("dataflow moved %v, volcano %v; want >=2x reduction",
			dfRes.Stats.MovedBytes, voRes.Stats.MovedBytes)
	}
	// And the CPU touches far less data.
	if dfRes.Stats.CPUBytes*4 >= voRes.Stats.CPUBytes {
		t.Errorf("dataflow CPU bytes %v, volcano %v; want >=4x reduction",
			dfRes.Stats.CPUBytes, voRes.Stats.CPUBytes)
	}
}

func TestDataFlowNeedsLessMemory(t *testing.T) {
	// Section 7.4: the stateless pipeline's compute-side memory stays
	// flat as the table grows, while the buffer-pool engine's footprint
	// scales with the data. Measure the growth factor from a 4x table
	// growth on each engine.
	peaks := func(rows int) (sim.Bytes, sim.Bytes) {
		cfg := workload.DefaultLineitemConfig(rows)
		data := workload.GenLineitem(cfg)
		q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())

		df := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			t.Fatal(err)
		}
		if err := df.Load("lineitem", data); err != nil {
			t.Fatal(err)
		}
		dfRes, err := df.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}

		vo := NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 256*sim.MB)
		if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			t.Fatal(err)
		}
		if err := vo.Load("lineitem", data); err != nil {
			t.Fatal(err)
		}
		voRes, err := vo.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		return dfRes.Stats.PeakMemory, voRes.Stats.PeakMemory
	}
	dfSmall, voSmall := peaks(10000)
	dfBig, voBig := peaks(40000)
	voGrowth := float64(voBig) / float64(voSmall)
	dfGrowth := float64(dfBig) / float64(dfSmall)
	if voGrowth < 2 {
		t.Errorf("volcano peak grew only %.2fx for 4x data (%v -> %v)", voGrowth, voSmall, voBig)
	}
	if dfGrowth > 1.5 {
		t.Errorf("dataflow peak grew %.2fx for 4x data (%v -> %v); want flat", dfGrowth, dfSmall, dfBig)
	}
	if dfBig >= voBig {
		t.Errorf("at 40k rows dataflow peak %v >= volcano %v", dfBig, voBig)
	}
}

func TestExecStatsPopulated(t *testing.T) {
	df, _, cfg := newEngines(t)
	q := plan.NewQuery("lineitem").WithFilter(workload.SelectivityFilter(cfg, 0.1)).WithCount()
	res, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Engine != "dataflow" || st.Variant == "" {
		t.Errorf("engine/variant = %q/%q", st.Engine, st.Variant)
	}
	if st.SimTime <= 0 || st.MovedBytes <= 0 || len(st.LinkBytes) == 0 || len(st.DeviceBusy) == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if st.Scan.SegmentsTotal == 0 {
		t.Error("scan stats missing")
	}
	if len(st.Ports) == 0 {
		t.Error("port stats missing")
	}
	if st.ControlOverhead() <= 0 || st.ControlOverhead() > 1 {
		t.Errorf("control overhead = %v, want (0,1]", st.ControlOverhead())
	}
	if !strings.Contains(st.String(), "dataflow") {
		t.Error("String() missing engine")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	df, vo, _ := newEngines(t)
	q := plan.NewQuery("lineitem").
		WithGroupBy(workload.PricingSummary()).
		WithOrderBy(1). // by count
		WithLimit(2)
	dfRes, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	voRes, err := vo.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if dfRes.Rows() != 2 || voRes.Rows() != 2 {
		t.Fatalf("limited rows = %d / %d, want 2", dfRes.Rows(), voRes.Rows())
	}
	// Ascending by count: first row's count <= second's.
	counts := dfRes.Batches[0].Col(1).Int64s()
	if len(counts) == 2 && counts[0] > counts[1] {
		t.Error("ORDER BY not ascending")
	}
}

func TestExecuteErrors(t *testing.T) {
	df, vo, _ := newEngines(t)
	if _, err := df.Execute(context.Background(), plan.NewQuery("ghost")); err == nil {
		t.Error("dataflow query on unknown table succeeded")
	}
	if _, err := vo.Execute(context.Background(), plan.NewQuery("ghost")); err == nil {
		t.Error("volcano query on unknown table succeeded")
	}
	if _, err := df.Execute(context.Background(), plan.NewQuery("")); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestExecutePlanForcedVariants(t *testing.T) {
	df, _, cfg := newEngines(t)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.05)).
		WithProjection(workload.LExtendedPrice)
	variants, err := df.Plan(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) < 2 {
		t.Fatalf("only %d variants", len(variants))
	}
	var rows []int64
	byVariant := map[string]*Result{}
	for _, v := range variants {
		res, err := df.ExecutePlan(context.Background(), v)
		if err != nil {
			t.Fatalf("variant %s: %v", v.Variant, err)
		}
		rows = append(rows, res.Rows())
		byVariant[v.Variant] = res
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] != rows[0] {
			t.Fatalf("variants disagree on result rows: %v", rows)
		}
	}
	// The cpu-only variant must move more than any offload variant.
	cpu, ok := byVariant["cpu-only"]
	if !ok {
		t.Fatal("no cpu-only variant")
	}
	for name, res := range byVariant {
		if name == "cpu-only" {
			continue
		}
		if res.Stats.MovedBytes >= cpu.Stats.MovedBytes {
			t.Errorf("variant %s moved %v >= cpu-only %v", name, res.Stats.MovedBytes, cpu.Stats.MovedBytes)
		}
	}
}

func TestSchedulerIntegration(t *testing.T) {
	df, _, cfg := newEngines(t)
	q := plan.NewQuery("lineitem").WithFilter(workload.SelectivityFilter(cfg, 0.1)).WithCount()
	// Sequential executions must admit and release cleanly.
	for i := 0; i < 3; i++ {
		if _, err := df.Execute(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if df.Scheduler.ActiveCount() != 0 {
		t.Error("admissions leaked")
	}
}

func TestLegacyClusterDataflowDegradesGracefully(t *testing.T) {
	// A data-flow engine on a dumb fabric must still answer correctly
	// (everything lands on the CPU).
	cfg := workload.DefaultLineitemConfig(5000)
	data := workload.GenLineitem(cfg)
	df := NewDataFlowEngine(fabric.NewCluster(fabric.LegacyClusterConfig()))
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := df.Load("lineitem", data); err != nil {
		t.Fatal(err)
	}
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.1)).
		WithGroupBy(workload.PricingSummary())
	res, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 3 {
		t.Fatalf("groups = %d, want 3", res.Rows())
	}
	if res.Stats.Variant != "cpu-only" {
		t.Errorf("legacy fabric chose variant %q", res.Stats.Variant)
	}
}

func TestResultFormat(t *testing.T) {
	df, _, _ := newEngines(t)
	res, err := df.Execute(context.Background(), plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary()))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format(2)
	if !strings.Contains(out, "l_returnflag") || !strings.Contains(out, "more rows") {
		t.Errorf("Format output:\n%s", out)
	}
	empty := &Result{}
	if empty.Format(5) != "(empty)\n" {
		t.Error("empty format wrong")
	}
	if empty.Schema() != nil {
		t.Error("empty schema not nil")
	}
}

func TestComputeStats(t *testing.T) {
	b := columnar.NewBatch(workload.KVSchema(), 4)
	b.AppendRow(columnar.IntValue(5), columnar.IntValue(1))
	b.AppendRow(columnar.IntValue(-3), columnar.IntValue(1))
	b.AppendRow(columnar.IntValue(5), columnar.IntValue(2))
	b.AppendRow(columnar.NullValue(columnar.Int64), columnar.IntValue(3))
	st := ComputeStats(b)
	if st.Rows != 4 || st.Distinct[0] != 2 || st.MinInt[0] != -3 || st.MaxInt[0] != 5 || !st.IntBounds[0] {
		t.Errorf("stats = %+v", st)
	}
	merged := MergeStats(st, st)
	if merged.Rows != 8 || merged.Distinct[0] != 4 {
		t.Errorf("merged = %+v", merged)
	}
}

func TestCountOnlyMinimalShipping(t *testing.T) {
	// When counting on a smart fabric the result crossing the network
	// must be tiny regardless of table width.
	df, _, _ := newEngines(t)
	q := plan.NewQuery("lineitem").WithCount()
	res, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches[0].Col(0).Int64s()[0] != testRows {
		t.Fatalf("count = %d", res.Batches[0].Col(0).Int64s()[0])
	}
	// Bytes on the network segment (storage.nic--switch) must be orders
	// of magnitude below the table size.
	net := res.Stats.LinkBytes["storage.nic--switch"]
	if net > 100*sim.KB {
		t.Errorf("COUNT shipped %v over the network", net)
	}
}

func TestExpressionPushdownVariantChargesStorage(t *testing.T) {
	df, _, cfg := newEngines(t)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.01)).
		WithProjection(workload.LExtendedPrice)
	res, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeviceBusy[fabric.DevStorageProc] == 0 {
		t.Error("storage processor idle despite pushdown")
	}
}
