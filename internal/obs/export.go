package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Process pairs a trace with a display name for multi-engine exports
// (e.g. the dataflow and Volcano runs of the same query side by side).
type Process struct {
	Name  string
	Trace *Trace
}

// perfettoEvent is one entry of the Chrome/Perfetto trace_event array.
// Field order and omitempty rules are fixed so exports are byte-stable.
type perfettoEvent struct {
	Name  string        `json:"name"`
	Cat   string        `json:"cat,omitempty"`
	Phase string        `json:"ph"`
	TS    float64       `json:"ts"`
	Dur   *float64      `json:"dur,omitempty"`
	PID   int           `json:"pid"`
	TID   int           `json:"tid"`
	Scope string        `json:"s,omitempty"`
	Args  *perfettoArgs `json:"args,omitempty"`
}

type perfettoArgs struct {
	Name   string `json:"name,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
	Seq    *int64 `json:"seq,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// usec converts virtual nanoseconds to the microsecond floats the
// trace_event format expects.
func usec(v sim.VTime) float64 { return float64(v) / 1e3 }

// WritePerfetto emits a Chrome/Perfetto trace_event JSON document. Each
// Process becomes a Perfetto process; each track (device or link)
// becomes a named thread within it; spans become complete ("X") events
// and trace events become instants ("i"). Output is deterministic for a
// deterministic trace: spans, events, and track ids are emitted in
// sorted order.
func WritePerfetto(w io.Writer, procs ...Process) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	enc := func(ev perfettoEvent, first bool) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		_, err = bw.Write(b)
		return err
	}
	first := true
	for pi, p := range procs {
		pid := pi + 1
		if err := enc(perfettoEvent{Name: "process_name", Phase: "M", PID: pid,
			Args: &perfettoArgs{Name: p.Name}}, first); err != nil {
			return err
		}
		first = false
		// Stable track → tid mapping from the sorted track list, plus a
		// catch-all tid for events on tracks that carry no spans.
		tids := make(map[string]int)
		for _, trk := range p.Trace.Tracks() {
			tids[trk] = len(tids) + 1
			if err := enc(perfettoEvent{Name: "thread_name", Phase: "M", PID: pid,
				TID: tids[trk], Args: &perfettoArgs{Name: trk}}, false); err != nil {
				return err
			}
		}
		for _, e := range p.Trace.Events() {
			if _, ok := tids[e.Track]; !ok {
				tids[e.Track] = len(tids) + 1
				if err := enc(perfettoEvent{Name: "thread_name", Phase: "M", PID: pid,
					TID: tids[e.Track], Args: &perfettoArgs{Name: e.Track}}, false); err != nil {
					return err
				}
			}
		}
		for _, s := range p.Trace.Spans() {
			dur := usec(s.Duration())
			args := &perfettoArgs{Bytes: int64(s.Bytes)}
			if s.Seq >= 0 {
				seq := s.Seq
				args.Seq = &seq
			}
			if err := enc(perfettoEvent{Name: s.Name, Cat: s.Kind.String(), Phase: "X",
				TS: usec(s.Start), Dur: &dur, PID: pid, TID: tids[s.Track], Args: args}, false); err != nil {
				return err
			}
		}
		for _, e := range p.Trace.Events() {
			args := &perfettoArgs{}
			if e.Detail != "" {
				args.Detail = e.Detail
			}
			if err := enc(perfettoEvent{Name: e.Name, Cat: "event", Phase: "i",
				TS: usec(e.At), PID: pid, TID: tids[e.Track], Scope: "t", Args: args}, false); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// traceJSON is the machine-readable stats document for one trace.
type traceJSON struct {
	Makespan     sim.VTime  `json:"makespan_vns"`
	WorkBusy     sim.VTime  `json:"work_busy_vns"`
	Concurrency  float64    `json:"concurrency_factor"`
	Utilizations []utilJSON `json:"utilizations"`
	Spans        []Span     `json:"spans"`
	Events       []Event    `json:"events"`
	Series       []Series   `json:"series"`
}

type utilJSON struct {
	Track string    `json:"track"`
	Busy  sim.VTime `json:"busy_vns"`
	Util  float64   `json:"util"`
}

// WriteJSON emits the full trace — summary, spans, events, series — as
// one deterministic JSON document.
func (t *Trace) WriteJSON(w io.Writer) error {
	doc := traceJSON{
		Makespan:    t.Makespan(),
		WorkBusy:    t.WorkBusy(),
		Concurrency: t.ConcurrencyFactor(),
		Spans:       t.Spans(),
		Events:      t.Events(),
		Series:      t.SeriesList(),
	}
	if doc.Spans == nil {
		doc.Spans = []Span{}
	}
	if doc.Events == nil {
		doc.Events = []Event{}
	}
	if doc.Series == nil {
		doc.Series = []Series{}
	}
	for _, u := range t.Utilizations() {
		doc.Utilizations = append(doc.Utilizations, utilJSON{Track: u.Track, Busy: u.Busy, Util: u.Util})
	}
	if doc.Utilizations == nil {
		doc.Utilizations = []utilJSON{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteGantt renders the trace as a fixed-width per-track text timeline:
// one row per track, '#' cells where the track was busy, '.' where idle,
// with busy time and utilization on the right. The row set and cell
// pattern are deterministic, so the renderer doubles as a quick visual
// diff in terminals and test logs.
func (t *Trace) WriteGantt(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	span := t.Makespan()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "timeline 0 .. %v (each cell %v)\n", span, span/sim.VTime(width))
	nameW := 0
	tracks := t.Tracks()
	for _, trk := range tracks {
		if len(trk) > nameW {
			nameW = len(trk)
		}
	}
	spans := t.Spans()
	utils := t.Utilizations()
	for _, trk := range tracks {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = '.'
		}
		for _, s := range spans {
			if s.Track != trk || span == 0 {
				continue
			}
			lo := int(int64(s.Start) * int64(width) / int64(span))
			hi := int(int64(s.End) * int64(width) / int64(span))
			if hi == lo {
				hi = lo + 1 // at least one cell per span
			}
			for i := lo; i < hi && i < width; i++ {
				cells[i] = '#'
			}
		}
		var busy sim.VTime
		var util float64
		for _, u := range utils {
			if u.Track == trk {
				busy, util = u.Busy, u.Util
			}
		}
		fmt.Fprintf(bw, "%-*s |%s| busy %v (%4.1f%%)\n", nameW, trk, cells, busy, util*100)
	}
	if evs := t.Events(); len(evs) > 0 {
		fmt.Fprintf(bw, "events:\n")
		for _, e := range evs {
			if e.Detail != "" {
				fmt.Fprintf(bw, "  %12v  %-14s %s: %s\n", e.At, e.Name, e.Track, e.Detail)
			} else {
				fmt.Fprintf(bw, "  %12v  %-14s %s\n", e.At, e.Name, e.Track)
			}
		}
	}
	return bw.Flush()
}
