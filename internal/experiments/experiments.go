// Package experiments implements every experiment in EXPERIMENTS.md —
// one per figure or Section-7 claim of the paper. Each experiment
// returns a Table whose rows are what cmd/dfbench prints and whose
// derived quantities the test suite and benchmark harness assert on.
//
// The paper is a vision paper with no numeric results, so each
// experiment reproduces the *scenario* a figure or section describes and
// checks the qualitative shape the paper predicts (who wins, by roughly
// what factor, where crossovers fall).
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a titled grid of rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
	// Metrics carries the experiment's key scalars in machine-readable
	// form; dfbench -json exports them as the run's perf artifact so CI
	// can track them without parsing rendered rows.
	Metrics map[string]float64
	// EncodedEval marks runs that exercised encoded predicate
	// evaluation; dfbench surfaces it in the -json artifact.
	EncodedEval bool
	// DecodedBytesSaved totals the decode bytes late materialization
	// avoided across the run, for the -json artifact.
	DecodedBytesSaved int64
	// Gray-failure defense totals (E24), for the -json artifact: how
	// often the run hedged reads, speculated on morsels, tripped circuit
	// breakers or hit the retry budget.
	HedgedReads          int64
	SpeculativeMorsels   int64
	BreakerTrips         int64
	RetryBudgetExhausted int64
	// Self-healing totals (E26), for the -json artifact: blobs healed by
	// foreground read-repair, by the background scrubber and by
	// re-replication, and the bytes all three wrote.
	ReadRepairs  int64
	ScrubRepairs int64
	Recloned     int64
	RepairBytes  int64
	// FaultSeed is the deterministic seed behind the run's fault/damage
	// schedule (E24, E26), emitted so an artifact pins the exact failure
	// sequence it was measured under; zero when no faults were injected.
	FaultSeed int64
}

// AddRow appends a row built from the given cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// SetMetric records one machine-readable scalar for the JSON artifact.
func (t *Table) SetMetric(name string, v float64) {
	if t.Metrics == nil {
		t.Metrics = make(map[string]float64)
	}
	t.Metrics[name] = v
}

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// d formats an integer.
func d(v int64) string { return fmt.Sprintf("%d", v) }
