package metrics

import (
	"sync"
	"time"
)

// RateMeter measures a rolling-window rate (events or bytes per second)
// over a ring of time slots. Mark attributes n to the slot the clock is
// currently in; Rate sums the slots still inside the window and divides
// by the covered duration, so the reading converges on the true rate as
// the window fills and decays within one window of a burst stopping.
// Mutex-guarded: marks are per-scan / per-query, not per-batch, so a
// cheap lock beats the complexity of slot CAS dances. A nil *RateMeter
// is a no-op.
type RateMeter struct {
	mu      sync.Mutex
	slotDur time.Duration
	slots   []rateSlot
	start   time.Time // first mark; bounds the divisor for young meters
	total   int64
	now     func() time.Time
}

type rateSlot struct {
	epoch int64 // absolute slot number; stale slots are skipped on read
	n     int64
}

func newRateMeter(window time.Duration, slots int, now func() time.Time) *RateMeter {
	if slots < 1 {
		slots = 1
	}
	if window <= 0 {
		window = 10 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &RateMeter{
		slotDur: window / time.Duration(slots),
		slots:   make([]rateSlot, slots),
		now:     now,
	}
}

// Mark records n events (or bytes) at the current time.
func (m *RateMeter) Mark(n int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	t := m.now()
	if m.start.IsZero() {
		m.start = t
	}
	epoch := t.UnixNano() / int64(m.slotDur)
	s := &m.slots[epoch%int64(len(m.slots))]
	if s.epoch != epoch {
		s.epoch = epoch
		s.n = 0
	}
	s.n += n
	m.total += n
	m.mu.Unlock()
}

// Rate returns the per-second rate over the live window. A meter
// younger than the window divides by its age instead, so early readings
// aren't diluted by slots that never existed.
func (m *RateMeter) Rate() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.start.IsZero() {
		return 0
	}
	t := m.now()
	epoch := t.UnixNano() / int64(m.slotDur)
	oldest := epoch - int64(len(m.slots)) + 1
	var n int64
	for i := range m.slots {
		if m.slots[i].epoch >= oldest && m.slots[i].epoch <= epoch {
			n += m.slots[i].n
		}
	}
	window := m.slotDur * time.Duration(len(m.slots))
	if age := t.Sub(m.start) + m.slotDur; age < window {
		window = age
	}
	if window <= 0 {
		return 0
	}
	return float64(n) / window.Seconds()
}

// Total returns every mark ever recorded (not windowed).
func (m *RateMeter) Total() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}
