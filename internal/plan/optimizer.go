package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// Placement assigns one operator to one site of the path.
type Placement struct {
	Op      fabric.OpClass
	SiteIdx int
}

// Physical is one executable plan variant: operator placements along the
// path plus cost estimates. A query produces several variants; the
// scheduler (Section 7.3) picks among them at runtime.
type Physical struct {
	Query      *Query
	Variant    string
	Path       PathModel
	Placements []Placement

	// EncodedEval asks the storage processor to evaluate the pushed-down
	// filter directly on encoded columns and gather-decode only the
	// surviving rows (late materialization), instead of decoding every
	// segment before filtering. Only meaningful when the filter is placed
	// at the storage site; the runtime falls back per segment when a
	// predicate/codec pair has no kernel.
	EncodedEval bool

	// Estimates from the cost model.
	EstBytes sim.Bytes // total bytes crossing all path segments
	EstTime  sim.VTime // pipeline makespan estimate
}

// PlacementsAt returns the ops placed at site index i, in plan order.
func (p *Physical) PlacementsAt(i int) []fabric.OpClass {
	var ops []fabric.OpClass
	for _, pl := range p.Placements {
		if pl.SiteIdx == i {
			ops = append(ops, pl.Op)
		}
	}
	return ops
}

// PlacedDevices returns the names of the devices that host at least one
// placement, in path order. The scheduler uses it to refuse variants
// that depend on offline devices.
func (p *Physical) PlacedDevices() []string {
	var names []string
	seen := map[int]bool{}
	for _, pl := range p.Placements {
		if !seen[pl.SiteIdx] {
			seen[pl.SiteIdx] = true
		}
	}
	for i, s := range p.Path.Sites {
		if seen[i] {
			names = append(names, s.Device.Name)
		}
	}
	return names
}

// HasPlacement reports whether op is placed at site s.
func (p *Physical) HasPlacement(op fabric.OpClass, s Site) bool {
	idx := p.Path.SiteIndex(s)
	for _, pl := range p.Placements {
		if pl.Op == op && pl.SiteIdx == idx {
			return true
		}
	}
	return false
}

// Explain renders the plan with placements and estimates.
func (p *Physical) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q for %s\n", p.Variant, p.Query)
	for i, s := range p.Path.Sites {
		ops := p.PlacementsAt(i)
		names := make([]string, len(ops))
		for j, op := range ops {
			names[j] = op.String()
		}
		marker := "-"
		if len(names) > 0 {
			marker = strings.Join(names, ", ")
		}
		fmt.Fprintf(&b, "  %-12s %-14s %s\n", s.Site, s.Device.Name, marker)
	}
	fmt.Fprintf(&b, "  est: %s moved, %s\n", p.EstBytes, p.EstTime)
	return b.String()
}

// DefaultMoveWeight prices data movement when ranking plans. The rank
// key is time + weight * (bytes / first-segment bandwidth): moved bytes
// are costed as if they contended for the shared fabric, reflecting the
// paper's Section 1 requirement that movement be a first-class concern
// (the fabric is shared at the datacenter level even when one query's
// links look idle).
const DefaultMoveWeight = 2.0

// Optimizer enumerates and ranks plan variants for a path.
type Optimizer struct {
	Path PathModel
	// MoveWeight trades movement against time when ranking. Zero means
	// DefaultMoveWeight; negative ranks by time alone.
	MoveWeight float64
	// Exclude names devices no variant may place operators on — the
	// engine populates it during failover with devices that just failed.
	// Offline devices are skipped implicitly. The CPU site is the
	// recovery backstop and is never excludable.
	Exclude map[string]bool
}

// Enumerate produces the distinct placement variants for the query. The
// first site capable of an op hosts it in offload variants; incapable
// fabrics (dumb storage, dumb NICs) naturally degrade toward the CPU.
func (o *Optimizer) Enumerate(q *Query, stats TableStats) ([]*Physical, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	pm := o.Path
	cpuIdx := len(pm.Sites) - 1

	type variantSpec struct {
		name string
		// siteFor returns the chosen site for an op given the earliest
		// capable site, or cpuIdx to refuse offload.
		siteFor func(op fabric.OpClass) int
		// cascade places pre-aggregation at every capable site before
		// the CPU (the Section 4.4 staged group-by) instead of just the
		// chosen one.
		cascade bool
		// encoded evaluates the storage-site filter on encoded columns
		// with late materialization instead of decode-then-filter.
		encoded bool
	}
	earliestUsable := func(op fabric.OpClass, from int) int {
		for i := from; i < len(pm.Sites); i++ {
			if o.usable(i) && pm.Sites[i].Device.Can(op) {
				return i
			}
		}
		return -1
	}

	cpuOnly := func(fabric.OpClass) int { return cpuIdx }
	earliest := func(op fabric.OpClass) int {
		if i := earliestUsable(op, 0); i >= 0 {
			return i
		}
		return cpuIdx
	}
	storageOnly := func(op fabric.OpClass) int {
		if o.usable(0) && pm.Sites[0].Device.Can(op) {
			return 0
		}
		return cpuIdx
	}
	nicOnward := func(op fabric.OpClass) int {
		from := pm.SiteIndex(SiteComputeNIC)
		if from < 0 {
			from = cpuIdx
		}
		if i := earliestUsable(op, from); i >= 0 {
			return i
		}
		return cpuIdx
	}

	specs := []variantSpec{
		{"cpu-only", cpuOnly, false, false},
		{"storage-pushdown", storageOnly, false, false},
		{"storage-pushdown-encoded", storageOnly, false, true},
		{"full-offload", earliest, true, false},
		{"nic-offload", nicOnward, false, false},
	}

	var out []*Physical
	seen := map[string]bool{}
	for _, vs := range specs {
		ph := o.build(q, stats, vs.name, vs.siteFor, vs.cascade, vs.encoded)
		key := placementKey(ph.Placements)
		if ph.EncodedEval {
			// Same placements as the eager storage-pushdown variant, but
			// a different execution strategy: keep both in the ranking.
			key += "+enc"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, ph)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return o.rank(out[i]) < o.rank(out[j])
	})
	return out, nil
}

// Choose returns the best-ranked variant.
func (o *Optimizer) Choose(q *Query, stats TableStats) (*Physical, error) {
	all, err := o.Enumerate(q, stats)
	if err != nil {
		return nil, err
	}
	return all[0], nil
}

// usable reports whether site i may host operators: excluded and
// offline devices cannot, the CPU backstop (the last site) always can.
// Degraded placement falls out naturally — with every accelerator dead
// the only remaining variant is cpu-only.
func (o *Optimizer) usable(i int) bool {
	if i == len(o.Path.Sites)-1 {
		return true
	}
	d := o.Path.Sites[i].Device
	return !o.Exclude[d.Name] && !d.IsOffline()
}

func (o *Optimizer) rank(p *Physical) float64 {
	score := p.EstTime.Seconds()
	w := o.MoveWeight
	if w == 0 {
		w = DefaultMoveWeight
	}
	if w > 0 {
		base := o.Path.SegmentBandwidth(0)
		if base <= 0 {
			base = sim.GBPerSec
		}
		score += w * float64(p.EstBytes) / float64(base)
	}
	return score
}

// build constructs one variant and costs it.
func (o *Optimizer) build(q *Query, stats TableStats, name string, siteFor func(fabric.OpClass) int, cascade, encoded bool) *Physical {
	pm := o.Path
	cpuIdx := len(pm.Sites) - 1
	ph := &Physical{Query: q, Variant: name, Path: pm}
	add := func(op fabric.OpClass, site int) {
		ph.Placements = append(ph.Placements, Placement{Op: op, SiteIdx: site})
	}

	if q.Filter != nil {
		site := siteFor(fabric.OpFilter)
		add(fabric.OpFilter, site)
		// Encoded evaluation only exists where the filter actually runs
		// at the storage site; anywhere else the variant collapses into
		// its eager twin and dedup drops it.
		ph.EncodedEval = encoded && site == 0 && cpuIdx != 0
	}
	switch {
	case q.CountOnly:
		add(fabric.OpCount, siteFor(fabric.OpCount))
	case q.GroupBy != nil:
		// Pre-aggregate where the variant allows, then final-aggregate
		// at the CPU. Cascading variants stage the group-by at every
		// capable site before the CPU (the Section 4.4 pipeline of
		// group-by stages).
		first := siteFor(fabric.OpPreAgg)
		if first < cpuIdx {
			if cascade {
				for i := first; i < cpuIdx; i++ {
					if o.usable(i) && pm.Sites[i].Device.Can(fabric.OpPreAgg) {
						add(fabric.OpPreAgg, i)
					}
				}
			} else {
				add(fabric.OpPreAgg, first)
			}
		}
		add(fabric.OpAggregate, cpuIdx)
	case q.Projection != nil:
		add(fabric.OpProject, siteFor(fabric.OpProject))
	}
	if q.OrderBy >= 0 {
		add(fabric.OpSort, cpuIdx)
	}
	o.estimate(ph, stats)
	return ph
}

// estimate walks the path applying each placed op's data reduction and
// accumulating device and segment costs. The makespan estimate is the
// pipeline bottleneck (max over devices and segments) plus one latency
// per hop.
func (o *Optimizer) estimate(ph *Physical, stats TableStats) {
	pm := o.Path
	q := ph.Query

	rows := float64(stats.Rows)
	rowBytes := float64(stats.RowBytes(neededCols(q, len(stats.ColBytes))))
	sel := EstimateSelectivity(q.Filter, stats)
	groups := float64(stats.GroupEstimate(q.GroupBy))

	var bottleneck sim.VTime
	var latency sim.VTime
	var moved sim.Bytes

	if ph.EncodedEval {
		// Late materialization: the filter streams only the encoded
		// filter columns, and the decode is a gather over survivors —
		// the decode-savings term that makes this variant win at low
		// selectivity and lose nothing at high selectivity.
		filterBytes := sim.Bytes(rows * float64(stats.RowBytes(predCols(q.Filter, len(stats.ColBytes)))) * stats.EncodedFraction)
		if r := pm.Sites[0].Device.RateFor(fabric.OpFilter); r > 0 {
			if t := r.TimeFor(filterBytes); t > bottleneck {
				bottleneck = t
			}
		}
		gatherBytes := sim.Bytes(rows * sel * rowBytes * stats.EncodedFraction)
		if dec := pm.Sites[0].Device.RateFor(fabric.OpDecompress); dec > 0 {
			if t := dec.TimeFor(gatherBytes); t > bottleneck {
				bottleneck = t
			}
		}
	} else {
		// Eager decode at site 0 over the full encoded bytes.
		encBytes := sim.Bytes(rows * rowBytes * stats.EncodedFraction)
		if dec := pm.Sites[0].Device.RateFor(fabric.OpDecompress); dec > 0 {
			if t := dec.TimeFor(encBytes); t > bottleneck {
				bottleneck = t
			}
		}
	}

	outCols := outputCols(q, len(stats.ColBytes))
	for i, site := range pm.Sites {
		inBytes := sim.Bytes(rows * rowBytes)
		for _, op := range ph.PlacementsAt(i) {
			if ph.EncodedEval && i == 0 && op == fabric.OpFilter {
				// Already charged above over encoded filter-column bytes.
				rows *= sel
				inBytes = sim.Bytes(rows * rowBytes)
				continue
			}
			if t := site.Device.RateFor(op).TimeFor(inBytes); t > bottleneck {
				bottleneck = t
			}
			switch op {
			case fabric.OpFilter:
				rows *= sel
			case fabric.OpProject:
				rowBytes = float64(stats.RowBytes(outCols))
			case fabric.OpPreAgg:
				// Bounded state: output is at most the group count
				// (plus spills; ignore second-order effects). Partial
				// rows carry full aggregate state and are wider than
				// raw rows, so pre-aggregation can lose when group
				// cardinality approaches row count — a crossover the
				// ranking must see.
				if rows > groups {
					rows = groups
				}
				rowBytes = partialRowBytes(q.GroupBy, stats)
			case fabric.OpAggregate:
				rows = groups
				rowBytes = partialRowBytes(q.GroupBy, stats)
			case fabric.OpCount:
				rows = 1
				rowBytes = 8
			}
			inBytes = sim.Bytes(rows * rowBytes)
		}
		if i == len(pm.Sites)-1 {
			break
		}
		segBytes := sim.Bytes(rows * rowBytes)
		moved += segBytes
		if bw := pm.SegmentBandwidth(i); bw > 0 {
			if t := bw.TimeFor(segBytes); t > bottleneck {
				bottleneck = t
			}
		}
		latency += pm.SegmentLatency(i)
	}

	ph.EstBytes = moved
	ph.EstTime = bottleneck + latency
}

// partialRowBytes estimates the width of one partial-aggregation row.
func partialRowBytes(g *expr.GroupBy, stats TableStats) float64 {
	if g == nil {
		return 8
	}
	var n int64
	for _, c := range g.GroupCols {
		if c < len(stats.ColBytes) {
			n += stats.ColBytes[c]
		}
	}
	n += int64(len(g.Aggs)) * 56 // seven 8-byte state fields
	return float64(n)
}

// predCols lists the distinct columns a predicate touches, clipped to
// the table's column count.
func predCols(p expr.Predicate, numCols int) []int {
	if p == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, c := range p.Columns() {
		if c >= 0 && c < numCols && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// neededCols unions the columns a query touches.
func neededCols(q *Query, numCols int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(c int) {
		if c >= 0 && c < numCols && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	if q.Filter != nil {
		for _, c := range q.Filter.Columns() {
			add(c)
		}
	}
	switch {
	case q.CountOnly:
		if q.Filter == nil {
			add(0)
		}
	case q.GroupBy != nil:
		for _, c := range q.GroupBy.GroupCols {
			add(c)
		}
		for _, a := range q.GroupBy.Aggs {
			if a.Func != expr.Count {
				add(a.Col)
			}
		}
	case q.Projection != nil:
		for _, c := range q.Projection {
			add(c)
		}
	default:
		for c := 0; c < numCols; c++ {
			add(c)
		}
	}
	sort.Ints(out)
	return out
}

// outputCols is what survives projection (or the full set).
func outputCols(q *Query, numCols int) []int {
	if q.Projection != nil {
		return q.Projection
	}
	out := make([]int, numCols)
	for i := range out {
		out[i] = i
	}
	return out
}

func placementKey(ps []Placement) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%d@%d", p.Op, p.SiteIdx)
	}
	return strings.Join(parts, ",")
}
