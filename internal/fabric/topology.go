package fabric

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Topology is a named graph of devices connected by links. It provides
// path routing (for charging multi-hop transfers) and aggregate meter
// access for experiments.
type Topology struct {
	Name    string
	devices map[string]*Device
	links   map[string]*Link
	adj     map[string][]*Link // device name -> incident links
}

// NewTopology returns an empty topology.
func NewTopology(name string) *Topology {
	return &Topology{
		Name:    name,
		devices: make(map[string]*Device),
		links:   make(map[string]*Link),
		adj:     make(map[string][]*Link),
	}
}

// AddDevice registers a device. Duplicate names are a construction bug
// and panic.
func (t *Topology) AddDevice(d *Device) *Device {
	if _, dup := t.devices[d.Name]; dup {
		panic(fmt.Sprintf("fabric: duplicate device %q", d.Name))
	}
	t.devices[d.Name] = d
	return d
}

// Connect adds a link between two existing devices. The link name is
// "a--b" unless endpoints collide, in which case kind is appended.
func (t *Topology) Connect(a, b string, kind LinkKind, bw sim.Rate, lat sim.VTime) *Link {
	if _, ok := t.devices[a]; !ok {
		panic(fmt.Sprintf("fabric: Connect references unknown device %q", a))
	}
	if _, ok := t.devices[b]; !ok {
		panic(fmt.Sprintf("fabric: Connect references unknown device %q", b))
	}
	name := a + "--" + b
	if _, dup := t.links[name]; dup {
		name = fmt.Sprintf("%s--%s(%s)", a, b, kind)
	}
	l := &Link{Name: name, Kind: kind, A: a, B: b, Bandwidth: bw, Latency: lat}
	t.links[name] = l
	t.adj[a] = append(t.adj[a], l)
	t.adj[b] = append(t.adj[b], l)
	return l
}

// Device returns the named device, or nil.
func (t *Topology) Device(name string) *Device { return t.devices[name] }

// MustDevice returns the named device or panics; used where absence is a
// construction bug.
func (t *Topology) MustDevice(name string) *Device {
	d := t.devices[name]
	if d == nil {
		panic(fmt.Sprintf("fabric: unknown device %q", name))
	}
	return d
}

// Link returns the named link, or nil.
func (t *Topology) Link(name string) *Link { return t.links[name] }

// LinkBetween returns the first link directly connecting a and b, or nil.
func (t *Topology) LinkBetween(a, b string) *Link {
	for _, l := range t.adj[a] {
		if l.Other(a) == b {
			return l
		}
	}
	return nil
}

// Devices returns all devices sorted by name.
func (t *Topology) Devices() []*Device {
	out := make([]*Device, 0, len(t.devices))
	for _, d := range t.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Links returns all links sorted by name.
func (t *Topology) Links() []*Link {
	out := make([]*Link, 0, len(t.links))
	for _, l := range t.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Path returns the links of a shortest (hop-count) path from device a to
// device b, or an error if no path exists. Ties are broken
// deterministically by visiting neighbours in insertion order.
func (t *Topology) Path(a, b string) ([]*Link, error) {
	if _, ok := t.devices[a]; !ok {
		return nil, fmt.Errorf("fabric: unknown device %q", a)
	}
	if _, ok := t.devices[b]; !ok {
		return nil, fmt.Errorf("fabric: unknown device %q", b)
	}
	if a == b {
		return nil, nil
	}
	type hop struct {
		via  *Link
		prev string
	}
	visited := map[string]hop{a: {}}
	frontier := []string{a}
	for len(frontier) > 0 {
		var next []string
		for _, cur := range frontier {
			for _, l := range t.adj[cur] {
				n := l.Other(cur)
				if _, seen := visited[n]; seen {
					continue
				}
				visited[n] = hop{via: l, prev: cur}
				if n == b {
					// Reconstruct.
					var path []*Link
					for at := b; at != a; {
						h := visited[at]
						path = append(path, h.via)
						at = h.prev
					}
					// Reverse into a->b order.
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path, nil
				}
				next = append(next, n)
			}
		}
		frontier = next
	}
	return nil, fmt.Errorf("fabric: no path from %q to %q", a, b)
}

// Transfer charges moving n bytes along the shortest path from a to b and
// returns the total virtual time (sum of per-link latency plus
// store-and-forward transfer time on each hop). A cancelled or expired
// ctx aborts before any link is charged.
func (t *Topology) Transfer(ctx context.Context, a, b string, n sim.Bytes) (sim.VTime, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	path, err := t.Path(a, b)
	if err != nil {
		return 0, err
	}
	var total sim.VTime
	for _, l := range path {
		total += l.Transfer(n)
	}
	return total, nil
}

// ResetMeters zeroes every device and link meter, isolating experiments.
func (t *Topology) ResetMeters() {
	for _, d := range t.devices {
		d.Meter.Reset()
	}
	for _, l := range t.links {
		l.Meter.Reset()
	}
}

// LinkBytes reports payload bytes moved per link, keyed by link name,
// omitting idle links.
func (t *Topology) LinkBytes() map[string]sim.Bytes {
	out := make(map[string]sim.Bytes)
	for name, l := range t.links {
		if b := l.Meter.Bytes(); b > 0 {
			out[name] = b
		}
	}
	return out
}

// TotalLinkBytes sums payload bytes over all links: the experiment-level
// "data movement" number the paper says engines must minimize.
func (t *Topology) TotalLinkBytes() sim.Bytes {
	var total sim.Bytes
	for _, l := range t.links {
		total += l.Meter.Bytes()
	}
	return total
}

// String renders a summary listing of devices and links.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology %s\n", t.Name)
	for _, d := range t.Devices() {
		fmt.Fprintf(&b, "  device %s\n", d)
	}
	for _, l := range t.Links() {
		fmt.Fprintf(&b, "  link   %s\n", l)
	}
	return b.String()
}
