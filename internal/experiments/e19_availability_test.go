package experiments

import (
	"reflect"
	"testing"
)

func TestE19AvailabilityShape(t *testing.T) {
	res, err := E19Availability(6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 rate buckets", len(res.Rows))
	}
	base := res.Rows[0]
	if base.Rate != 0 {
		t.Fatalf("first bucket rate = %g, want 0", base.Rate)
	}
	if base.DFOK != base.Total || base.VoOK != base.Total {
		t.Fatalf("fault-free bucket lost queries: df %d/%d vo %d/%d",
			base.DFOK, base.Total, base.VoOK, base.Total)
	}
	if base.Retries+base.Fallbacks+base.Failovers != 0 {
		t.Error("fault-free bucket recorded recovery work")
	}

	var recovery, failovers int64
	for _, row := range res.Rows {
		// Recovery must absorb every injected fault: full availability
		// across the sweep while the detect-only baseline degrades.
		if row.DFOK != row.Total {
			t.Errorf("rate %g: data-flow succeeded %d/%d", row.Rate, row.DFOK, row.Total)
		}
		if row.DFOK < row.VoOK {
			t.Errorf("rate %g: baseline (%d) outlived recovering engine (%d)", row.Rate, row.VoOK, row.DFOK)
		}
		recovery += row.Retries + row.Fallbacks
		failovers += row.Failovers
	}
	top := res.Rows[len(res.Rows)-1]
	if top.VoOK == top.Total {
		t.Errorf("rate %g: detect-only volcano lost no queries (%d/%d) — faults not exercised",
			top.Rate, top.VoOK, top.Total)
	}
	if recovery == 0 {
		t.Error("sweep recorded no retries or replica fallbacks")
	}
	if failovers == 0 {
		t.Error("device kill triggered no failover")
	}
	// Surviving on a degraded placement costs time.
	if top.DFInflation <= 1.0 {
		t.Errorf("makespan inflation at top rate = %g, want > 1", top.DFInflation)
	}

	// Same seed, same workload: everything sequential must reproduce
	// byte for byte — the volcano schedule in every bucket, and the
	// data-flow schedule and derived numbers in every bucket without a
	// mid-query device kill (an aborted attempt's scan progress at
	// cancellation, and hence its fault draws, is scheduling-dependent).
	again, err := E19Availability(6000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.VoSchedules, again.VoSchedules) {
		t.Error("volcano fault schedules diverged between identical runs")
	}
	for i, row := range res.Rows {
		if row.Rate >= e19KillRate {
			// Availability outcomes stay deterministic even with a kill.
			if row.DFOK != again.Rows[i].DFOK || row.VoOK != again.Rows[i].VoOK {
				t.Errorf("rate %g: success counts diverged between identical runs", row.Rate)
			}
			continue
		}
		if res.Schedules[i] != again.Schedules[i] {
			t.Errorf("rate %g: data-flow fault schedule diverged between identical runs", row.Rate)
		}
		if !reflect.DeepEqual(row, again.Rows[i]) {
			t.Errorf("rate %g: sweep results diverged between identical runs", row.Rate)
		}
	}
}
