package experiments

import (
	"context"
	"fmt"

	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/memdev"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E16Row is one working-set point of the cache-stall experiment.
type E16Row struct {
	WorkingSet sim.Bytes
	SeqStall   float64 // stall share, sequential scan
	RndStall   float64 // stall share, random access
	TLBMissRnd float64 // TLB miss rate, random access
}

// E16Result carries the Section 5.1 cache/TLB measurements.
type E16Result struct {
	Table *Table
	Rows  []E16Row
	// CPUHierTime/NearHierTime compare the cache-hierarchy time of a
	// 5%-selective filter when all bytes enter the caches vs when only
	// survivors do.
	CPUHierTime  sim.VTime
	NearHierTime sim.VTime
}

// E16CacheStalls reproduces Section 5.1: cache and TLB faults stall the
// cores as working sets grow, and the near-memory path's deepest payoff
// is that filtered-out bytes never enter the hierarchy at all.
func E16CacheStalls() (*E16Result, error) {
	res := &E16Result{Table: &Table{
		ID:     "E16",
		Title:  "Cache and TLB stalls (Section 5.1): stall share vs working set",
		Header: []string{"working set", "seq stall share", "rnd stall share", "rnd TLB miss"},
		Notes:  "stall share = cycles beyond L1 hits / total; TLB covers 8MiB",
	}}
	rng := sim.NewRNG(31)
	for _, ws := range []int64{32 << 10, 4 << 20, 64 << 20, 1 << 30} {
		h := memdev.NewDefaultHierarchy()
		// Warm, then measure.
		h.ScanSequential(0, min64(ws, 8<<20))
		h.ResetStats()
		h.ScanSequential(0, min64(ws, 8<<20))
		seq := h.StallShare()

		h.Reset()
		h.ScanRandom(rng, 0, ws, 30000)
		h.ResetStats()
		h.ScanRandom(rng, 0, ws, 30000)
		rnd := h.StallShare()
		tlbMiss := float64(h.TLB.Misses) / float64(h.TLB.Hits+h.TLB.Misses)

		row := E16Row{WorkingSet: sim.Bytes(ws), SeqStall: seq, RndStall: rnd, TLBMissRnd: tlbMiss}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.WorkingSet.String(),
			fmt.Sprintf("%.2f", seq), fmt.Sprintf("%.2f", rnd), fmt.Sprintf("%.2f", tlbMiss))
	}

	// The hierarchy cost of consuming a 64 MiB region at 5% selectivity:
	// the CPU path streams everything through the caches; the
	// near-memory path admits only survivors.
	const region = int64(64 << 20)
	h := memdev.NewDefaultHierarchy()
	res.CPUHierTime = h.ScanSequential(0, region)
	h.Reset()
	res.NearHierTime = h.ScanSequential(0, region/20)
	res.Table.AddRow("filter 5%:", "cpu-path "+res.CPUHierTime.String(),
		"near-path "+res.NearHierTime.String(), "")
	return res, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// A1Row is one network-tier point of the wire-compression ablation.
type A1Row struct {
	Tier     string
	RawTime  sim.VTime
	CompTime sim.VTime
	Ratio    float64 // compressed size / raw size
	Wins     bool
}

// A1Result carries the wire-compression ablation.
type A1Result struct {
	Table *Table
	Rows  []A1Row
}

// A1WireCompression is the ablation behind the paper's Section 2.2
// observation that compression is a mandatory step of the cloud data
// path: with real LZ over real segment bytes, compressing before the
// wire wins on slow networks and loses once links outrun the
// compressor.
func A1WireCompression(rows int) (*A1Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	seg := storage.BuildSegment(0, workload.GenLineitem(cfg))
	raw := seg.Marshal()
	comp := encoding.CompressLZ(raw)
	// Round-trip check: the wire payload must decompress identically.
	back, err := encoding.DecompressLZ(comp)
	if err != nil || len(back) != len(raw) {
		return nil, fmt.Errorf("experiments: A1 compression round trip failed: %v", err)
	}
	ratio := float64(len(comp)) / float64(len(raw))

	res := &A1Result{Table: &Table{
		ID:     "A1",
		Title:  fmt.Sprintf("Ablation: wire compression (ratio %.2f) vs network speed", ratio),
		Header: []string{"link", "raw transfer", "compressed (pipelined)", "winner"},
		Notes:  "software compressor 2GB/s, decompressor 5GB/s; compression pays only while the link is the bottleneck — which is why the paper's fabric compresses in hardware on the path",
	}}
	const (
		compRate   = sim.Rate(2e9)
		decompRate = sim.Rate(5e9)
	)
	for _, gbps := range []float64{1, 10, 25, 100, 400, 1600} {
		bw := sim.GbitPerSec(gbps)
		rawTime := bw.TimeFor(sim.Bytes(len(raw)))
		// Pipelined compress -> ship -> decompress: bottleneck stage.
		compTime := maxV(compRate.TimeFor(sim.Bytes(len(raw))),
			bw.TimeFor(sim.Bytes(len(comp))),
			decompRate.TimeFor(sim.Bytes(len(raw))))
		row := A1Row{
			Tier:    fmt.Sprintf("%gGb/s", gbps),
			RawTime: rawTime, CompTime: compTime, Ratio: ratio,
			Wins: compTime < rawTime,
		}
		res.Rows = append(res.Rows, row)
		winner := "raw"
		if row.Wins {
			winner = "compressed"
		}
		res.Table.AddRow(row.Tier, rawTime.String(), compTime.String(), winner)
	}
	return res, nil
}

func maxV(vs ...sim.VTime) sim.VTime {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// A2Row is one NIC-tier point of the bandwidth-scaling ablation.
type A2Row struct {
	Tier       string
	Makespan   sim.VTime
	Bottleneck string
}

// A2Result carries the NIC-tier ablation.
type A2Result struct {
	Table *Table
	Rows  []A2Row
}

// A2NICTierSweep runs the Figure 6 pipeline across NIC generations
// (Section 2.2: "the only technology whose speed is doubling
// consistently"): once the network outruns the storage decode, faster
// NICs stop helping and the bottleneck moves into the node.
func A2NICTierSweep(rows int) (*A2Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	res := &A2Result{Table: &Table{
		ID:     "A2",
		Title:  "Ablation: pipeline makespan vs NIC generation",
		Header: []string{"nic", "makespan", "bottleneck"},
	}}
	for _, tier := range []fabric.LinkKind{fabric.LinkEth100, fabric.LinkEth200, fabric.LinkEth400, fabric.LinkEth800, fabric.LinkEth1600} {
		ccfg := fabric.DefaultClusterConfig()
		ccfg.NICTier = tier
		eng := core.NewDataFlowEngine(fabric.NewCluster(ccfg))
		if err := eng.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := eng.Load("lineitem", data); err != nil {
			return nil, err
		}
		q := plan.NewQuery("lineitem").WithProjection(workload.LOrderKey, workload.LQuantity, workload.LExtendedPrice)
		variants, err := eng.Plan(q, 0)
		if err != nil {
			return nil, err
		}
		var cpuOnly *plan.Physical
		for _, v := range variants {
			if v.Variant == "cpu-only" {
				cpuOnly = v
			}
		}
		r, err := eng.ExecutePlan(context.Background(), cpuOnly) // ships everything: network-sensitive
		if err != nil {
			return nil, err
		}
		// Identify the busiest resource.
		bottleneck := ""
		var busiest sim.VTime
		for name, busy := range r.Stats.DeviceBusy {
			if busy > busiest {
				busiest, bottleneck = busy, name
			}
		}
		for _, l := range eng.Cluster.Links() {
			if b := l.Meter.Busy(); b > busiest {
				busiest, bottleneck = b, l.Name
			}
		}
		row := A2Row{Tier: tier.String(), Makespan: r.Stats.SimTime, Bottleneck: bottleneck}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Tier, row.Makespan.String(), row.Bottleneck)
	}
	return res, nil
}

// A3Row is one segment-size point of the pruning ablation.
type A3Row struct {
	SegmentRows int
	Pruned      int
	Total       int
	MediaBytes  sim.Bytes
}

// A3Result carries the segment-size ablation.
type A3Result struct {
	Table *Table
	Rows  []A3Row
}

// A3SegmentSize ablates the zone-map granularity (Section 3.2: cloud
// engines replace indexes with min/max pruning): finer segments prune
// more precisely at the price of more objects. Zone maps only bite on
// clustered columns, so the table is ingested sorted by a sequence
// column — the usual time-ordered layout of fact tables.
func A3SegmentSize(rows int) (*A3Result, error) {
	// Clustered two-column table: seq is monotone, v is a payload.
	seqs := make([]int64, rows)
	vals := make([]int64, rows)
	rng := sim.NewRNG(17)
	for i := range seqs {
		seqs[i] = int64(i)
		vals[i] = rng.Int63n(1000)
	}
	schema := workload.KVSchema()
	res := &A3Result{Table: &Table{
		ID:     "A3",
		Title:  "Ablation: zone-map pruning vs segment size",
		Header: []string{"rows/segment", "segments", "pruned", "media bytes"},
		Notes:  "5% range predicate on the clustered key; finer segments prune tighter",
	}}
	for _, segRows := range []int{2048, 8192, 32768, 131072} {
		eng := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		eng.Storage.SegmentRows = segRows
		if err := eng.CreateTable("facts", schema); err != nil {
			return nil, err
		}
		data := columnarKV(schema, seqs, vals)
		if err := eng.Load("facts", data); err != nil {
			return nil, err
		}
		q := plan.NewQuery("facts").
			WithFilter(expr.NewBetween(0, int64(rows/2), int64(rows/2+rows/20))).
			WithProjection(1)
		r, err := eng.Execute(context.Background(), q)
		if err != nil {
			return nil, err
		}
		row := A3Row{
			SegmentRows: segRows,
			Pruned:      r.Stats.Scan.SegmentsPruned,
			Total:       r.Stats.Scan.SegmentsTotal,
			MediaBytes:  r.Stats.Scan.MediaBytes,
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(d(int64(segRows)), d(int64(row.Total)), d(int64(row.Pruned)), row.MediaBytes.String())
	}
	return res, nil
}

// columnarKV assembles a KV batch from raw slices.
func columnarKV(schema *columnar.Schema, ks, vs []int64) *columnar.Batch {
	return columnar.BatchOf(schema, columnar.FromInt64s(ks), columnar.FromInt64s(vs))
}

// A4Row is one budget point of the state-budget ablation.
type A4Row struct {
	BudgetGroups int
	ShippedRows  int64
}

// A4Result carries the pre-aggregation budget ablation.
type A4Result struct {
	Table *Table
	Rows  []A4Row
}

// A4StateBudget ablates the in-path state budget (Section 3.3: in-path
// processing "has to be mostly stateless"): smaller budgets spill more
// partials, trading accelerator memory for network traffic, while
// correctness is unaffected.
func A4StateBudget(rows int, keys int64) (*A4Result, error) {
	data := workload.GenKV(workload.KVConfig{Rows: rows, Keys: keys, ZipfSkew: 1.1, Seed: 13})
	res := &A4Result{Table: &Table{
		ID:     "A4",
		Title:  fmt.Sprintf("Ablation: pre-aggregation state budget (%d Zipf keys)", keys),
		Header: []string{"budget (groups)", "partial rows shipped"},
		Notes:  "bounded state spills partials; results stay exact at every budget",
	}}
	var exactCount int64 = -1
	for _, budget := range []int{64, 1024, 16384, 0} {
		agg := expr.NewPartialAggregator(workload.KVGroupBy(), workload.KVSchema(), budget)
		var shipped int64
		final := expr.NewFinalAggregator(workload.KVGroupBy(), workload.KVSchema())
		for off := 0; off < data.NumRows(); off += 4096 {
			end := off + 4096
			if end > data.NumRows() {
				end = data.NumRows()
			}
			for _, spill := range agg.AddRaw(data.Slice(off, end)) {
				shipped += int64(spill.NumRows())
				final.AddPartial(spill)
			}
		}
		if tail := agg.Flush(); tail != nil {
			shipped += int64(tail.NumRows())
			final.AddPartial(tail)
		}
		// Exactness across budgets.
		var total int64
		result := final.Result()
		for i := 0; i < result.NumRows(); i++ {
			total += result.Col(1).Int64s()[i]
		}
		if exactCount == -1 {
			exactCount = total
		} else if total != exactCount {
			return nil, fmt.Errorf("experiments: A4 budget %d changed the answer", budget)
		}
		label := budget
		if budget == 0 {
			label = -1 // unbounded
		}
		res.Rows = append(res.Rows, A4Row{BudgetGroups: label, ShippedRows: shipped})
		name := d(int64(budget))
		if budget == 0 {
			name = "unbounded"
		}
		res.Table.AddRow(name, d(shipped))
	}
	return res, nil
}
