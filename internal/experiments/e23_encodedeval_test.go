package experiments

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/workload"
)

// TestE23DecodeCostElimination runs the sweep and checks the acceptance
// bar: at selectivity <= 10% on dictionary and bit-packed columns the
// storage processor is at least 2x less busy, with rows and byte totals
// identical at every point (byte parity is enforced inside the sweep).
func TestE23DecodeCostElimination(t *testing.T) {
	res, err := E23EncodedEval(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(E23Encodings)*len(E23Selectivities) {
		t.Fatalf("got %d points", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.EncodedSegs == 0 {
			t.Errorf("%s sel=%g: encoded arm never used encoded eval", pt.Encoding, pt.Selectivity)
		}
		if pt.Selectivity <= 0.1 && (pt.Encoding == "dict" || pt.Encoding == "bitpacked") {
			if pt.ProcSpeedup < 2 {
				t.Errorf("%s sel=%g: proc speedup %.2f < 2x (eager %v, encoded %v)",
					pt.Encoding, pt.Selectivity, pt.ProcSpeedup, pt.EagerProcBusy, pt.EncodedProcBusy)
			}
			if pt.SavedBytes == 0 {
				t.Errorf("%s sel=%g: no decode bytes saved", pt.Encoding, pt.Selectivity)
			}
			// End-to-end time only improves when the storage processor is
			// the bottleneck resource; it must never get worse.
			if pt.EncodedSim > pt.EagerSim {
				t.Errorf("%s sel=%g: end-to-end %v worse than eager %v",
					pt.Encoding, pt.Selectivity, pt.EncodedSim, pt.EagerSim)
			}
		}
	}
}

// TestEncodedEvalMatchesEagerOnWorkloads reruns E2/E22-shaped lineitem
// queries with the encoded-eval variant forced and checks the results
// are byte-identical to the eager plan, cell by cell.
func TestEncodedEvalMatchesEagerOnWorkloads(t *testing.T) {
	cfg := workload.DefaultLineitemConfig(20_000)
	data := workload.GenLineitem(cfg)
	queries := []*plan.Query{
		plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.02)).
			WithProjection(workload.LOrderKey, workload.LExtendedPrice),
		plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.15)).
			WithProjection(workload.LOrderKey, workload.LExtendedPrice),
	}
	for qi, q := range queries {
		run := func(eager bool) *core.Result {
			df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
			df.EagerDecode = eager
			df.Storage.SegmentRows = e22SegmentRows
			if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
				t.Fatal(err)
			}
			if err := df.Load("lineitem", data); err != nil {
				t.Fatal(err)
			}
			variants, err := df.Plan(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range variants {
				if v.EncodedEval {
					res, err := df.ExecutePlan(context.Background(), v)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
			}
			t.Fatalf("query %d: no encoded-eval variant", qi)
			return nil
		}
		eager, encoded := run(true), run(false)
		if eager.Rows() != encoded.Rows() {
			t.Fatalf("query %d: rows %d vs %d", qi, eager.Rows(), encoded.Rows())
		}
		if eager.Stats.Scan.ShippedBytes != encoded.Stats.Scan.ShippedBytes {
			t.Fatalf("query %d: shipped bytes %v vs %v", qi,
				eager.Stats.Scan.ShippedBytes, encoded.Stats.Scan.ShippedBytes)
		}
		// Cell-by-cell equality across batch boundaries.
		type cursor struct {
			bi, ri int
		}
		var a, b cursor
		next := func(r *core.Result, c *cursor) (row int, ok bool) {
			for c.bi < len(r.Batches) && c.ri >= r.Batches[c.bi].NumRows() {
				c.bi, c.ri = c.bi+1, 0
			}
			if c.bi == len(r.Batches) {
				return 0, false
			}
			return c.ri, true
		}
		for {
			ra, oka := next(eager, &a)
			rb, okb := next(encoded, &b)
			if oka != okb {
				t.Fatalf("query %d: row streams end at different points", qi)
			}
			if !oka {
				break
			}
			ba, bb := eager.Batches[a.bi], encoded.Batches[b.bi]
			for c := 0; c < ba.NumCols(); c++ {
				if !ba.Col(c).Value(ra).Equal(bb.Col(c).Value(rb)) {
					t.Fatalf("query %d: cell mismatch col %d: %v vs %v",
						qi, c, ba.Col(c).Value(ra), bb.Col(c).Value(rb))
				}
			}
			a.ri++
			b.ri++
		}
	}
}
