package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/columnar"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/plan"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/storage"
)

// VolcanoEngine is the CPU-centric baseline the paper argues against: a
// pull-based iterator engine that fetches whole segments through a
// buffer pool into compute-node memory and evaluates every operator on
// the cores. The storage layer only stores; the NICs only move bytes;
// all reduction happens at the end of the data path (Figure 1).
type VolcanoEngine struct {
	Cluster *fabric.Cluster
	Storage *storage.Server
	Pool    *bufferpool.Pool

	// Tracing makes every Execute record a virtual-time span timeline,
	// returned in Result.Trace. The baseline is a pull engine, so its
	// timeline is one serial chain: fetch, transfer, decode and every
	// operator advance a single virtual clock with zero overlap — the
	// concurrency factor the dataflow engine's staged pipeline is
	// measured against. Tracing assumes Execute calls do not overlap.
	Tracing bool
	// Workers > 1 parallelizes the fetch/decode front of the pull loop:
	// a pool of that many workers (clamped to the CPU's cores) prefetches
	// segments through the buffer pool and decodes them on per-core
	// lanes, delivering batches to the iterator tree in segment order.
	// The operators above the scan stay serial — the pull model gives
	// them no independent work units — which is exactly why the baseline
	// scales worse than the dataflow engine (E22). Results and metered
	// totals are identical to Workers == 1. Tracing forces serial.
	Workers int

	// Resilience, wired via EnableResilience, gives the baseline the one
	// gray-failure defense its pull model can host: hedged replica reads
	// in the object store. (Speculative re-execution and breaker-steered
	// placement need the dataflow engine's morsels and plan variants.)
	Resilience *resilience.Policy

	// Metrics, when non-nil, receives per-query resource attribution
	// after every Execute (install via SetMetrics so the storage layers
	// share the registry). SLO, when non-nil, observes each query's wall
	// latency against its objective.
	Metrics *metrics.Registry
	SLO     *metrics.SLOTracker
	// pub caches resolved registry instruments (see enginePublisher).
	pubMu sync.Mutex
	pub   *enginePublisher

	node int
	cpu  *fabric.Device
	dram string

	// Per-execution trace state, set only while a traced Execute runs.
	// fetchPage reads it from inside the buffer-pool miss path, which is
	// called synchronously on Execute's goroutine.
	tr    *obs.Trace
	clock *obs.VClock

	mu      sync.Mutex
	stats   map[string]plan.TableStats
	fetches int64
}

// NewVolcanoEngine wires the baseline onto a cluster with the given
// buffer-pool capacity on compute node 0.
func NewVolcanoEngine(c *fabric.Cluster, poolBytes sim.Bytes) *VolcanoEngine {
	media := c.MustDevice(fabric.DevStorageMed)
	proc := c.StorageProc()
	link := c.LinkBetween(fabric.DevStorageMed, fabric.DevStorageProc)
	e := &VolcanoEngine{
		Cluster: c,
		Storage: storage.NewServer(storage.NewObjectStore(), media, proc, link),
		node:    0,
		cpu:     c.ComputeCPU(0),
		dram:    fabric.ComputeDev(0, "dram"),
		stats:   make(map[string]plan.TableStats),
	}
	e.Pool = bufferpool.New(poolBytes, e.fetchPage)
	return e
}

// fetchPage loads one segment blob from disaggregated storage into the
// compute node's memory, charging the media and the whole network path —
// this is the legacy data path of Figure 1 stretched across the cloud.
func (e *VolcanoEngine) fetchPage(ctx context.Context, id bufferpool.PageID) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	blob, err := e.Storage.Store().Get(ctx, string(id))
	if err != nil {
		return nil, err
	}
	// Verify before caching: a read that came back corrupt must fail the
	// fetch, not poison the buffer pool for every later query. Column
	// checksums are only checked on decode, so decode the whole segment.
	seg, err := storage.UnmarshalSegment(blob)
	if err == nil {
		_, err = seg.Decode()
	}
	if err != nil {
		return nil, fmt.Errorf("storage: fetch %s: %w", id, err)
	}
	n := sim.Bytes(len(blob))
	media := e.Cluster.MustDevice(fabric.DevStorageMed)
	e.span("fetch", media.Name, obs.SpanScan, media.Charge(fabric.OpScan, n), n)
	if e.tr.Enabled() {
		// Walk the path link by link so each hop gets its own transfer
		// span; the meter charges are identical to Cluster.Transfer.
		path, err := e.Cluster.Path(fabric.DevStorageMed, e.dram)
		if err != nil {
			return nil, err
		}
		for _, l := range path {
			e.span("xfer", l.Name, obs.SpanTransfer, l.Transfer(n), n)
		}
	} else if _, err := e.Cluster.Transfer(ctx, fabric.DevStorageMed, e.dram, n); err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.fetches++
	e.mu.Unlock()
	return blob, nil
}

// span records one serial span on the engine's per-execution trace,
// advancing the single virtual clock by cost. Nil trace (tracing off)
// makes this a no-op; the cost argument's meter charge already happened
// at the call site either way.
func (e *VolcanoEngine) span(name, track string, kind obs.SpanKind, cost sim.VTime, n sim.Bytes) {
	if !e.tr.Enabled() {
		return
	}
	start := e.clock.Now()
	e.tr.AddSpan(obs.Span{
		Name: name, Track: track, Kind: kind,
		Start: start, End: e.clock.Advance(cost), Bytes: n,
	})
}

// EnableResilience installs (or removes, with nil) a gray-failure
// policy on the baseline's object store: replica reads hedge and the
// health tracker learns per-replica latency. The pull engine has no
// scheduler or morsel scan, so breakers and speculation do not apply.
func (e *VolcanoEngine) EnableResilience(p *resilience.Policy) {
	e.Resilience = p
	e.Storage.Store().Resilience = p
}

// CreateTable registers a table.
func (e *VolcanoEngine) CreateTable(name string, schema *columnar.Schema) error {
	_, err := e.Storage.CreateTable(name, schema)
	return err
}

// Load ingests a batch and updates statistics.
func (e *VolcanoEngine) Load(name string, b *columnar.Batch) error {
	if err := e.Storage.Append(name, b); err != nil {
		return err
	}
	st := ComputeStats(b)
	e.mu.Lock()
	if prev, ok := e.stats[name]; ok {
		st = MergeStats(prev, st)
	}
	e.stats[name] = st
	e.mu.Unlock()
	return nil
}

// TableSchema resolves a table's schema (it satisfies sqlparse.Catalog).
func (e *VolcanoEngine) TableSchema(name string) (*columnar.Schema, error) {
	meta, err := e.Storage.Table(name)
	if err != nil {
		return nil, err
	}
	return meta.Schema, nil
}

// chargeIter charges a device for every batch flowing through it; this
// is how the baseline accounts per-operator CPU work. With a trace
// attached it also records each charge as a span on the device's track,
// serialized on the engine's single clock.
type chargeIter struct {
	in  exec.Iterator
	dev *fabric.Device
	op  fabric.OpClass

	name  string
	tr    *obs.Trace
	clock *obs.VClock
}

func (it *chargeIter) Schema() *columnar.Schema { return it.in.Schema() }

func (it *chargeIter) Next() (*columnar.Batch, error) {
	b, err := it.in.Next()
	if err != nil || b == nil {
		return b, err
	}
	n := sim.Bytes(b.ByteSize())
	cost := it.dev.Charge(it.op, n)
	if it.tr.Enabled() {
		start := it.clock.Now()
		it.tr.AddSpan(obs.Span{
			Name: it.name, Track: it.dev.Name, Kind: obs.SpanStage,
			Start: start, End: it.clock.Advance(cost), Bytes: n,
		})
	}
	return b, nil
}

// Execute runs a query through the pull-based iterator tree. ctx bounds
// the execution: it is consulted before each buffer-pool fetch and each
// pulled segment, so a deadline or cancellation stops the pull loop and
// surfaces as ErrDeadlineExceeded or ErrCancelled.
func (e *VolcanoEngine) Execute(ctx context.Context, q *plan.Query) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	startWall := time.Now()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	meta, err := e.Storage.Table(q.Table)
	if err != nil {
		return nil, err
	}

	var tr *obs.Trace
	if e.Tracing {
		tr = obs.New()
		e.tr = tr
		e.clock = obs.NewVClock()
		defer func() { e.tr, e.clock = nil, nil }()
	}
	clock := e.clock

	before := e.snapshotMeters()
	recBefore := e.Storage.Store().Recovery()
	rBefore := snapshotResilience(e.Storage.Store(), e.Resilience)

	// Scan: pull each segment through the buffer pool, decode on the
	// CPU, then stream the decoded batch from DRAM into the cores at
	// the single-core-limited rate.
	segIdx := 0
	var maxDecoded sim.Bytes
	dramToCPU := e.Cluster.LinkBetween(e.dram, e.cpu.Name)
	workers := e.Workers
	if u := e.cpu.Units(); workers > u {
		workers = u
	}
	if e.Tracing {
		// The serial span chain cannot describe overlapped fetches.
		workers = 1
	}
	var it exec.Iterator
	if workers > 1 {
		scan, cleanup := e.parallelScan(ctx, meta, workers, &maxDecoded, dramToCPU)
		defer cleanup()
		it = scan
	} else {
		it = exec.NewFuncScan(meta.Schema, func() (*columnar.Batch, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if segIdx >= len(meta.SegmentKeys) {
				return nil, nil
			}
			key := meta.SegmentKeys[segIdx]
			segIdx++
			page, err := e.Pool.Get(ctx, bufferpool.PageID(key))
			if err != nil {
				return nil, err
			}
			defer e.Pool.Unpin(bufferpool.PageID(key))
			seg, err := storage.UnmarshalSegment(page.Data)
			if err != nil {
				return nil, err
			}
			// Decode (checksum + decompress) happens on the compute CPU in
			// the legacy model.
			pn := sim.Bytes(len(page.Data))
			e.span("decode", e.cpu.Name, obs.SpanScan, e.cpu.Charge(fabric.OpDecompress, pn), pn)
			batch, err := seg.Decode()
			if err != nil {
				return nil, err
			}
			if n := sim.Bytes(batch.ByteSize()); n > maxDecoded {
				maxDecoded = n
			}
			if dramToCPU != nil {
				bn := sim.Bytes(batch.ByteSize())
				e.span("xfer", dramToCPU.Name, obs.SpanTransfer, dramToCPU.Transfer(bn), bn)
			}
			return batch, nil
		})
	}

	// Operator tree, all on the CPU.
	charge := func(in exec.Iterator, op fabric.OpClass, name string) exec.Iterator {
		return &chargeIter{in: in, dev: e.cpu, op: op, name: name, tr: tr, clock: clock}
	}
	if q.Filter != nil {
		it = charge(it, fabric.OpFilter, "filter")
		it = &exec.FilterIter{In: it, Pred: q.Filter}
	}
	switch {
	case q.CountOnly:
		it = charge(it, fabric.OpCount, "count")
		it = &exec.AggIter{In: it, Spec: expr.GroupBy{Aggs: []expr.AggSpec{{Func: expr.Count}}}}
	case q.GroupBy != nil:
		it = charge(it, fabric.OpAggregate, "aggregate")
		it = &exec.AggIter{In: it, Spec: *q.GroupBy}
	case q.Projection != nil:
		it = charge(it, fabric.OpProject, "project")
		it = &exec.ProjectIter{In: it, Columns: q.Projection}
	}
	if q.OrderBy >= 0 {
		it = charge(it, fabric.OpSort, "sort")
		it = &exec.SortIter{In: it, ByCol: q.OrderBy}
	}
	if q.Limit > 0 {
		it = &exec.LimitIter{In: it, N: q.Limit}
	}

	batches, err := exec.Drain(it)
	if err != nil {
		return nil, lifecycleError(err)
	}
	res := &Result{Batches: batches, Trace: tr}
	sampleMeterSeries(e.Cluster, tr, before)
	res.Stats = e.buildStats(before, res)
	res.Stats.PeakMemory += maxDecoded
	// The baseline still benefits from whatever retrying the object store
	// itself does; record it so E19 compares recovery cost fairly.
	rec := e.Storage.Store().Recovery().Sub(recBefore)
	res.Stats.Retries = rec.Retries
	res.Stats.ReplicaFallbacks = rec.ReplicaFallbacks
	res.Stats.RecoveryBytes = rec.RetryBytes
	foldResilience(&res.Stats, e.Storage.Store(), e.Resilience, rBefore)
	sampleHealthSeries(tr, e.Resilience)
	e.publishQuery(ctx, res, time.Since(startWall))
	return res, nil
}

// parallelScan is the morsel-parallel front of the pull loop: workers
// claim segment indices from a shared counter, pull each through the
// buffer pool and decode it on a per-core lane, and the returned
// iterator hands batches to the operator tree in segment order via a
// reorder buffer, so the tree sees exactly the serial stream. The
// cleanup func unwinds the workers; callers must run it before
// returning (a LIMIT may abandon the iterator mid-stream, and the
// workers must not outlive the query).
func (e *VolcanoEngine) parallelScan(ctx context.Context, meta *storage.TableMeta, workers int, maxDecoded *sim.Bytes, dramToCPU *fabric.Link) (exec.Iterator, func()) {
	type item struct {
		idx   int
		batch *columnar.Batch
		err   error
	}
	ctx, cancel := context.WithCancel(ctx)
	var next atomic.Int64
	results := make(chan item, 2*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1) - 1)
				if idx >= len(meta.SegmentKeys) || ctx.Err() != nil {
					return
				}
				b, err := e.fetchSegment(ctx, meta.SegmentKeys[idx], idx%workers)
				select {
				case results <- item{idx: idx, batch: b, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()
	cleanup := func() {
		cancel()
		for range results { // unblock senders until the pool drains
		}
	}

	pend := make(map[int]item, workers)
	want := 0
	return exec.NewFuncScan(meta.Schema, func() (*columnar.Batch, error) {
		for {
			if want >= len(meta.SegmentKeys) {
				return nil, nil
			}
			if it, ok := pend[want]; ok {
				delete(pend, want)
				want++
				if it.err != nil {
					return nil, it.err
				}
				if n := sim.Bytes(it.batch.ByteSize()); n > *maxDecoded {
					*maxDecoded = n
				}
				if dramToCPU != nil {
					dramToCPU.Transfer(sim.Bytes(it.batch.ByteSize()))
				}
				return it.batch, nil
			}
			r, ok := <-results
			if !ok {
				// Workers bailed out early; the context says why.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return nil, nil
			}
			pend[r.idx] = r
		}
	}), cleanup
}

// fetchSegment pulls one segment through the buffer pool and decodes it
// on the CPU, charging the decode to the given per-core lane.
func (e *VolcanoEngine) fetchSegment(ctx context.Context, key string, lane int) (*columnar.Batch, error) {
	page, err := e.Pool.Get(ctx, bufferpool.PageID(key))
	if err != nil {
		return nil, err
	}
	defer e.Pool.Unpin(bufferpool.PageID(key))
	seg, err := storage.UnmarshalSegment(page.Data)
	if err != nil {
		return nil, err
	}
	e.cpu.ChargeLane(fabric.OpDecompress, sim.Bytes(len(page.Data)), lane)
	return seg.Decode()
}

// buildStats mirrors the data-flow engine's accounting so results are
// directly comparable. Busy times are effective readings (lane work
// divided across a device's units; see fabric.EffectiveBusy).
func (e *VolcanoEngine) buildStats(before map[meterKey]meterSnap, res *Result) ExecStats {
	st := ExecStats{
		Engine:     "volcano",
		LinkBytes:  make(map[string]sim.Bytes),
		DeviceBusy: make(map[string]sim.VTime),
		ResultRows: res.Rows(),
	}
	var maxBusy sim.VTime
	for _, d := range e.Cluster.Devices() {
		_, busy := deviceDelta(d, before)
		if busy > 0 {
			st.DeviceBusy[d.Name] = busy
			if busy > maxBusy {
				maxBusy = busy
			}
		}
	}
	cpuDelta, cpuBusy := deviceDelta(e.cpu, before)
	st.CPUBytes = cpuDelta.Bytes
	st.CPUBusy = cpuBusy
	var latency sim.VTime
	for _, l := range e.Cluster.Links() {
		delta, busy := linkDelta(l, before)
		if delta.Bytes > 0 {
			st.LinkBytes[l.Name] = delta.Bytes
			st.MovedBytes += delta.Bytes
			if busy > maxBusy {
				maxBusy = busy
			}
		}
	}
	// Pull execution pays the storage round trip per buffer-pool miss,
	// not once per stream: latency amplifies with misses.
	e.mu.Lock()
	fetches := e.fetches
	e.mu.Unlock()
	if path, err := e.Cluster.Path(fabric.DevStorageMed, e.dram); err == nil {
		var hop sim.VTime
		for _, l := range path {
			hop += l.Latency
		}
		latency += hop * sim.VTime(fetches)
	}
	st.SimTime = maxBusy + latency
	poolStats := e.Pool.Stats()
	var resultBytes sim.Bytes
	for _, b := range res.Batches {
		resultBytes += sim.Bytes(b.ByteSize())
	}
	st.PeakMemory = poolStats.Resident + resultBytes
	return st
}
