// Pushdown walks the Figure 2 scenario by hand: the same selective
// query executed with and without offloading selection/projection to the
// storage layer, sweeping selectivity to show where the savings come
// from and how the optimizer's estimates track reality.
//
//	go run ./examples/pushdown
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DefaultLineitemConfig(100000)
	data := workload.GenLineitem(cfg)

	eng := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	must(eng.CreateTable("lineitem", workload.LineitemSchema()))
	must(eng.Load("lineitem", data))

	fmt.Println("Figure 2: offloading projection and selection to remote storage")
	fmt.Printf("%-12s %-14s %-14s %-10s %-12s\n",
		"selectivity", "cpu-only net", "pushdown net", "saving", "est saving")

	for _, sel := range []float64{0.001, 0.01, 0.05, 0.25, 1.0} {
		q := plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, sel)).
			WithProjection(workload.LOrderKey, workload.LExtendedPrice)
		variants, err := eng.Plan(q, 0)
		must(err)

		var cpuOnly, pushdown *plan.Physical
		for _, v := range variants {
			switch v.Variant {
			case "cpu-only":
				cpuOnly = v
			case "storage-pushdown", "full-offload":
				if pushdown == nil {
					pushdown = v
				}
			}
		}
		cpuRes, err := eng.ExecutePlan(context.Background(), cpuOnly)
		must(err)
		pdRes, err := eng.ExecutePlan(context.Background(), pushdown)
		must(err)
		if cpuRes.Rows() != pdRes.Rows() {
			log.Fatalf("variants disagree: %d vs %d rows", cpuRes.Rows(), pdRes.Rows())
		}

		net := "storage.nic--switch"
		measured := float64(cpuRes.Stats.LinkBytes[net]) / float64(pdRes.Stats.LinkBytes[net])
		estimated := float64(cpuOnly.EstBytes) / float64(pushdown.EstBytes)
		fmt.Printf("%-12s %-14s %-14s %-10s %-12s\n",
			fmt.Sprintf("%.1f%%", sel*100),
			cpuRes.Stats.LinkBytes[net].String(),
			pdRes.Stats.LinkBytes[net].String(),
			fmt.Sprintf("%.1fx", measured),
			fmt.Sprintf("%.1fx", estimated))
	}

	fmt.Println("\nzone maps add a second layer of reduction for range queries:")
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.02)).
		WithProjection(workload.LExtendedPrice)
	res, err := eng.Execute(context.Background(), q)
	must(err)
	fmt.Printf("  segments: %d total, %d pruned by min/max statistics, media read %s\n",
		res.Stats.Scan.SegmentsTotal, res.Stats.Scan.SegmentsPruned, res.Stats.Scan.MediaBytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
