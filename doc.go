// Package repro is a from-scratch reproduction of "Data Flow
// Architectures for Data Processing on Modern Hardware" (Lerner &
// Alonso, ICDE 2024): a data-flow query engine whose operators are
// placed along a simulated heterogeneous data path — smart storage,
// smart NICs, near-memory accelerators, CXL interconnects — next to the
// CPU-centric Volcano baseline the paper argues against.
//
// The library lives under internal/ (see DESIGN.md for the full system
// inventory); the root package hosts the benchmark harness that
// regenerates every experiment in EXPERIMENTS.md. Run:
//
//	go test -bench=. -benchmem
//
// or use cmd/dfbench for the human-readable tables.
package repro
