package columnar

import (
	"sync"
	"testing"
)

// Regression tests for the zero-column row-count bug: a batch over a
// schema with no fields used to report NumRows 0 (BatchOf's column scan
// left n at its -1 sentinel), which silently dropped rows from
// aggregate-only plans. Batches now carry an explicit row count.

func TestBatchOfZeroFieldSchema(t *testing.T) {
	empty := NewSchema()
	b := BatchOf(empty)
	if b.NumRows() != 0 {
		t.Errorf("BatchOf(empty).NumRows() = %d, want 0", b.NumRows())
	}
	if b.NumCols() != 0 {
		t.Errorf("NumCols = %d, want 0", b.NumCols())
	}
}

func TestZeroColumnBatchCarriesRows(t *testing.T) {
	empty := NewSchema()
	b := ZeroColumnBatch(empty, 42)
	if b.NumRows() != 42 {
		t.Fatalf("NumRows = %d, want 42", b.NumRows())
	}
	if got := b.ByteSize(); got != 0 {
		t.Errorf("ByteSize = %d, want 0 for a column-less batch", got)
	}
	c := b.Clone()
	if c.NumRows() != 42 {
		t.Errorf("Clone().NumRows() = %d, want 42", c.NumRows())
	}
	s := b.Slice(10, 30)
	if s.NumRows() != 20 {
		t.Errorf("Slice(10,30).NumRows() = %d, want 20", s.NumRows())
	}
}

func TestProjectToZeroColumnsPreservesRows(t *testing.T) {
	schema := NewSchema(Field{Name: "v", Type: Int64})
	b := BatchOf(schema, FromInt64s([]int64{1, 2, 3, 4, 5}))
	p := b.Project(nil)
	if p.NumRows() != 5 {
		t.Errorf("Project(nil).NumRows() = %d, want 5", p.NumRows())
	}
	g := b.Gather([]int{0, 2, 4}).Project(nil)
	if g.NumRows() != 3 {
		t.Errorf("Gather+Project NumRows = %d, want 3", g.NumRows())
	}
}

func TestAppendRowOnColumnlessBatch(t *testing.T) {
	b := BatchOf(NewSchema())
	for i := 0; i < 7; i++ {
		b.AppendRow()
	}
	if b.NumRows() != 7 {
		t.Errorf("NumRows after 7 column-less AppendRow = %d, want 7", b.NumRows())
	}
}

// Concurrent readers: parallel scan workers share decoded vectors and
// selection bitmaps read-only. Slices alias the parent storage, so
// concurrent slicing plus reads must be race-free (run under -race).

func TestVectorConcurrentReadersAndSlicing(t *testing.T) {
	n := 4096
	ints := make([]int64, n)
	var sum int64
	for i := range ints {
		ints[i] = int64(i)
		sum += int64(i)
	}
	v := FromInt64s(ints)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*(n/8), (w+1)*(n/8)
			s := v.Slice(lo, hi)
			var part int64
			for _, x := range s.Int64s() {
				part += x
			}
			g := v.Gather([]int{lo, hi - 1})
			if g.Len() != 2 || g.Int64s()[0] != int64(lo) {
				t.Errorf("worker %d: gather mismatch", w)
			}
			if v.Value(lo).I != int64(lo) || v.IsNull(lo) {
				t.Errorf("worker %d: point read mismatch", w)
			}
			_ = part
		}(w)
	}
	wg.Wait()
	// The shared vector is untouched by the concurrent slicing.
	if v.Len() != n {
		t.Fatalf("Len changed to %d", v.Len())
	}
	var again int64
	for _, x := range v.Int64s() {
		again += x
	}
	if again != sum {
		t.Fatalf("sum changed: %d != %d", again, sum)
	}
}

func TestBitmapConcurrentReaders(t *testing.T) {
	n := 4096
	bm := NewBitmap(n)
	for i := 0; i < n; i += 3 {
		bm.Set(i)
	}
	want := bm.Count()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c := bm.Count(); c != want {
				t.Errorf("Count = %d, want %d", c, want)
			}
			if !bm.Get(0) || bm.Get(1) {
				t.Error("point reads wrong")
			}
			idx := bm.Indices(nil)
			if len(idx) != want {
				t.Errorf("Indices len = %d, want %d", len(idx), want)
			}
			c := bm.Clone()
			c.And(bm)
			if c.Count() != want {
				t.Errorf("Clone+And count = %d, want %d", c.Count(), want)
			}
		}()
	}
	wg.Wait()
}

// Batches sliced by different goroutines must not interfere: each
// worker filters its own slice of a shared batch, as the morsel scan
// does per segment.
func TestBatchConcurrentSliceAndFilter(t *testing.T) {
	schema := NewSchema(
		Field{Name: "k", Type: Int64},
		Field{Name: "s", Type: String},
	)
	b := NewBatch(schema, 0)
	for i := 0; i < 1024; i++ {
		b.AppendRow(IntValue(int64(i)), StringValue("row"))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*128, (w+1)*128
			s := b.Slice(lo, hi)
			sel := NewBitmap(s.NumRows())
			for i := 0; i < s.NumRows(); i += 2 {
				sel.Set(i)
			}
			f := s.Filter(sel)
			if f.NumRows() != 64 {
				t.Errorf("worker %d: filtered rows = %d, want 64", w, f.NumRows())
			}
			if f.Col(0).Int64s()[0] != int64(lo) {
				t.Errorf("worker %d: first key = %d, want %d", w, f.Col(0).Int64s()[0], lo)
			}
		}(w)
	}
	wg.Wait()
	if b.NumRows() != 1024 {
		t.Fatalf("shared batch mutated: %d rows", b.NumRows())
	}
}
