// Package core is the engine facade: it wires the substrates (fabric,
// storage, flow, exec, plan, sched) into two complete query engines —
// the DataFlowEngine the paper calls for, which lays each query out as a
// streaming pipeline over the data path, and the VolcanoEngine baseline,
// a CPU-centric pull engine with a buffer pool. Both run the same
// queries on the same stored data and return the same answers; their
// execution stats differ in exactly the dimensions the paper predicts.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/columnar"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Result is a completed query execution.
type Result struct {
	Batches []*columnar.Batch
	Stats   ExecStats
	// Trace is the virtual-time span timeline of the execution, present
	// only when the engine ran with tracing enabled. Nil otherwise; all
	// obs.Trace methods are nil-safe, so callers need not check.
	Trace *obs.Trace
}

// Rows reports the total result rows.
func (r *Result) Rows() int64 {
	var n int64
	for _, b := range r.Batches {
		n += int64(b.NumRows())
	}
	return n
}

// Schema returns the result schema (nil for an empty result set).
func (r *Result) Schema() *columnar.Schema {
	if len(r.Batches) == 0 {
		return nil
	}
	return r.Batches[0].Schema()
}

// Format renders the result as an aligned text table capped at maxRows.
func (r *Result) Format(maxRows int) string {
	if len(r.Batches) == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	schema := r.Schema()
	var names []string
	for _, f := range schema.Fields {
		names = append(names, f.Name)
	}
	b.WriteString(strings.Join(names, "\t"))
	b.WriteByte('\n')
	printed := 0
	for _, batch := range r.Batches {
		for i := 0; i < batch.NumRows() && printed < maxRows; i++ {
			var cells []string
			for _, v := range batch.Row(i) {
				cells = append(cells, v.String())
			}
			b.WriteString(strings.Join(cells, "\t"))
			b.WriteByte('\n')
			printed++
		}
	}
	if total := r.Rows(); total > int64(printed) {
		fmt.Fprintf(&b, "... (%d more rows)\n", total-int64(printed))
	}
	return b.String()
}

// ExecStats is the per-query cost decomposition the experiments report.
type ExecStats struct {
	Engine  string // "dataflow" or "volcano"
	Variant string // chosen plan variant (dataflow)

	// MovedBytes is the total payload crossing all fabric links — the
	// paper's first-class cost.
	MovedBytes sim.Bytes
	// LinkBytes decomposes MovedBytes by link name.
	LinkBytes map[string]sim.Bytes
	// DeviceBusy decomposes virtual busy time by device name.
	DeviceBusy map[string]sim.VTime
	// CPUBytes is the payload the compute node's cores had to touch.
	CPUBytes sim.Bytes
	// CPUBusy is the compute cores' virtual busy time.
	CPUBusy sim.VTime
	// SimTime estimates the pipeline makespan: the bottleneck resource's
	// busy time plus one latency per traversed hop.
	SimTime sim.VTime
	// Scan reports what the storage layer did.
	Scan storage.ScanStats
	// Ports carries flow-control counters (dataflow only).
	Ports []flow.PortStats
	// PeakMemory is the compute-node memory the engine needed (buffer
	// pool residency for Volcano, retained stage state for dataflow).
	PeakMemory sim.Bytes
	// ResultRows is the number of rows returned.
	ResultRows int64

	// Recovery accounting. Availability is not free: every retry,
	// fallback and failover burns real media, link and device work that
	// E19 reports against the fault rate.

	// Retries counts read attempts repeated after transient or corrupt
	// faults (storage level) plus whole-query re-executions after
	// transient pipeline faults (engine level).
	Retries int64
	// ReplicaFallbacks counts object reads served past replica 0.
	ReplicaFallbacks int64
	// Failovers counts engine-level plan re-enumerations after a device
	// failed mid-query.
	Failovers int
	// DegradedPlacement reports that the answer was produced on a
	// fallback placement that avoids at least one failed device (the
	// CPU-only plan in the worst case).
	DegradedPlacement bool
	// RecoveryBytes is the payload recovery moved again: storage re-reads
	// plus all link traffic of abandoned pipeline attempts.
	RecoveryBytes sim.Bytes
	// RecoveryTime is the virtual busy time burned by abandoned attempts.
	RecoveryTime sim.VTime
	// PartialRestarts counts stage-level restarts that replayed only the
	// suffix since the last completed checkpoint instead of the whole
	// query.
	PartialRestarts int
	// Checkpoints counts completed checkpoint epochs (markers that fell
	// off the last stage with every prior batch durable at the sink).
	Checkpoints int
	// ReplayedBytes is the link payload replayed by partial restarts:
	// work charged after the last completed checkpoint of a failed
	// attempt. Always a subset of RecoveryBytes.
	ReplayedBytes sim.Bytes

	// Gray-failure defense accounting. Hedges and speculation trade a
	// bounded amount of duplicate work for tail latency; these counters
	// make that trade auditable per query (E24 reports it per arm).

	// HedgedReads counts object reads that launched a second-replica
	// hedge after the primary stalled past its health threshold.
	HedgedReads int64
	// HedgeWins counts hedges whose duplicate finished first.
	HedgeWins int64
	// HedgeBytes is the media payload the hedge duplicates read — extra
	// work whether or not the hedge won (the main byte totals never
	// include it).
	HedgeBytes sim.Bytes
	// SpeculativeMorsels counts scan morsels re-issued to a second
	// worker after running past the speculation threshold.
	SpeculativeMorsels int64
	// SpeculativeWins counts morsels whose speculative copy delivered.
	SpeculativeWins int64
	// SpeculativeBytes is the duplicate media payload speculation read
	// (losing copies only; logical scan totals count each morsel once).
	SpeculativeBytes sim.Bytes
	// BreakerTrips counts circuit breakers that newly tripped open.
	BreakerTrips int64
	// RetryBudgetExhausted counts retries/hedges the global retry budget
	// denied — the back-pressure that keeps fault storms from melting
	// into retry storms.
	RetryBudgetExhausted int64

	// Self-healing accounting (stores with verification enabled).
	// Repair work is metered apart from the query's byte totals — these
	// counters make the heal loop auditable per query.

	// CorruptReads counts read payloads this query's scans discarded
	// because a replica served bytes that failed checksum verification.
	CorruptReads int64
	// ReadRepairs counts replica blobs healed by write-backs this
	// query's reads triggered.
	ReadRepairs int64
	// RepairBytes is the volume those write-backs wrote (never charged
	// to the query).
	RepairBytes sim.Bytes
}

// String summarizes the stats on a few lines.
func (s ExecStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", s.Engine)
	if s.Variant != "" {
		fmt.Fprintf(&b, "/%s", s.Variant)
	}
	fmt.Fprintf(&b, ": rows=%d moved=%s cpu=%s simtime=%s peakmem=%s\n",
		s.ResultRows, s.MovedBytes, s.CPUBytes, s.SimTime, s.PeakMemory)
	if s.Retries > 0 || s.ReplicaFallbacks > 0 || s.Failovers > 0 || s.PartialRestarts > 0 {
		fmt.Fprintf(&b, "  recovery: retries=%d fallbacks=%d failovers=%d restarts=%d degraded=%v waste=%s/%s replayed=%s\n",
			s.Retries, s.ReplicaFallbacks, s.Failovers, s.PartialRestarts, s.DegradedPlacement,
			s.RecoveryBytes, s.RecoveryTime, s.ReplayedBytes)
	}
	if s.HedgedReads > 0 || s.SpeculativeMorsels > 0 || s.BreakerTrips > 0 || s.RetryBudgetExhausted > 0 {
		fmt.Fprintf(&b, "  gray-failure: hedged=%d/%d wins (%s) speculated=%d/%d wins (%s) trips=%d budget-denied=%d\n",
			s.HedgeWins, s.HedgedReads, s.HedgeBytes,
			s.SpeculativeWins, s.SpeculativeMorsels, s.SpeculativeBytes,
			s.BreakerTrips, s.RetryBudgetExhausted)
	}
	if s.CorruptReads > 0 || s.ReadRepairs > 0 {
		fmt.Fprintf(&b, "  self-heal: corrupt-reads=%d read-repairs=%d repaired=%s\n",
			s.CorruptReads, s.ReadRepairs, s.RepairBytes)
	}
	names := make([]string, 0, len(s.LinkBytes))
	for n := range s.LinkBytes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  link %-32s %s\n", n, s.LinkBytes[n])
	}
	return b.String()
}

// ControlOverhead reports credit messages per data message across all
// ports, the Section 7.1 "low traffic" check. Returns 0 with no ports.
func (s ExecStats) ControlOverhead() float64 {
	var data, credit int64
	for _, p := range s.Ports {
		data += p.DataMessages
		credit += p.CreditMessages
	}
	if data == 0 {
		return 0
	}
	return float64(credit) / float64(data)
}
