package storage

import (
	"fmt"
	"hash/crc32"

	"repro/internal/encoding"
)

// VerifySegmentBlob checks a marshalled segment's integrity without
// decoding any values: the framing must parse and every column's stored
// CRC-32 must match its encoded bytes. This is the check the object
// store's Verify hook and the background scrubber run per replica —
// cheap enough to run on every read, strong enough to catch a flipped
// byte anywhere in a column payload.
func VerifySegmentBlob(blob []byte) error {
	seg, err := UnmarshalSegment(blob)
	if err != nil {
		return fmt.Errorf("%w: segment framing: %v", encoding.ErrCorrupt, err)
	}
	for i, col := range seg.Columns {
		if crc32.ChecksumIEEE(col.Data) != col.Checksum {
			return fmt.Errorf("%w: segment %d column %d checksum mismatch",
				encoding.ErrCorrupt, seg.ID, i)
		}
	}
	return nil
}

// EnableVerify installs segment integrity verification on the server's
// object store: every read's payload is checksum-checked before it is
// returned, a failing replica is struck in the health tracker and its
// payload discarded onto the corrupt-side meters. writeBack additionally
// turns on read-repair — the clean payload that satisfies the read is
// written back over the damaged replica. Detection without write-back
// models a store that routes around damage but never heals it.
func (s *Server) EnableVerify(writeBack bool) {
	s.store.Verify = func(key string, data []byte) error {
		return VerifySegmentBlob(data)
	}
	s.store.WriteBack = writeBack
}
