// Command dftopo prints the preset fabric topologies, their device
// capability tables and calibrated rates — the hardware model every
// experiment runs on.
//
// Usage:
//
//	dftopo [-topology smart|legacy|conventional] [-nodes N] [-nic 100|200|400|800|1600]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/fabric"
	"repro/internal/plan"
)

func nicTier(gbps int) (fabric.LinkKind, error) {
	switch gbps {
	case 100:
		return fabric.LinkEth100, nil
	case 200:
		return fabric.LinkEth200, nil
	case 400:
		return fabric.LinkEth400, nil
	case 800:
		return fabric.LinkEth800, nil
	case 1600:
		return fabric.LinkEth1600, nil
	}
	return 0, fmt.Errorf("unknown NIC tier %d (want 100|200|400|800|1600)", gbps)
}

func main() {
	kind := flag.String("topology", "smart", "smart, legacy or conventional")
	nodes := flag.Int("nodes", 2, "compute nodes (cluster topologies)")
	nic := flag.Int("nic", 400, "NIC tier in Gb/s")
	flag.Parse()

	switch *kind {
	case "conventional":
		fmt.Print(fabric.NewConventionalServer().String())
		return
	case "smart", "legacy":
	default:
		log.Fatalf("unknown topology %q", *kind)
	}

	cfg := fabric.DefaultClusterConfig()
	if *kind == "legacy" {
		cfg = fabric.LegacyClusterConfig()
	}
	cfg.ComputeNodes = *nodes
	tier, err := nicTier(*nic)
	if err != nil {
		log.Fatal(err)
	}
	cfg.NICTier = tier
	c := fabric.NewCluster(cfg)
	fmt.Print(c.String())

	fmt.Println("\ndevice capabilities (streaming rate per op):")
	for _, d := range c.Devices() {
		ops := d.CapabilityList()
		if len(ops) == 0 {
			fmt.Printf("  %-16s (passive)\n", d.Name)
			continue
		}
		fmt.Printf("  %-16s", d.Name)
		for _, op := range ops {
			fmt.Printf(" %s=%s", op, d.RateFor(op))
		}
		fmt.Println()
	}

	pm, err := plan.FromCluster(c, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner data path (node 0): %s\n", pm)
	for i := 0; i < len(pm.Sites)-1; i++ {
		fmt.Printf("  segment %d: bandwidth %s, latency %s\n",
			i, pm.SegmentBandwidth(i), pm.SegmentLatency(i))
	}
}
