package storage

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// Self-healing storage: integrity verification, read-repair write-back,
// sticky corruption, replica loss, and the metering invariants that keep
// repair honest — queries are charged only for the clean payloads they
// consume, and repair traffic lands on its own counters.

// verifyAgainst returns a Verify func that accepts exactly want.
func verifyAgainst(want []byte) func(string, []byte) error {
	return func(_ string, data []byte) error {
		if !bytes.Equal(data, want) {
			return errors.New("payload mismatch")
		}
		return nil
	}
}

// A sequential read that hits a corrupt primary must fall back to the
// clean replica, return its bytes, charge the query for the clean
// payload exactly once, and write the clean bytes back over the damaged
// replica.
func TestReadRepairHealsCorruptReplica(t *testing.T) {
	o := NewObjectStore()
	o.SetReplicas(2)
	payload := []byte("self-healing payload bytes")
	o.Put("k", payload)
	o.Verify = verifyAgainst(payload)
	o.WriteBack = true

	if !o.CorruptReplica("k", 0) {
		t.Fatal("CorruptReplica did not damage replica 0")
	}
	if raw, _ := o.ReadReplicaRaw(context.Background(), "k", 0); bytes.Equal(raw, payload) {
		t.Fatal("replica 0 still clean after CorruptReplica")
	}

	opsBefore, bytesBefore := o.Meter.Ops(), o.Meter.Bytes()
	got, err := o.Get(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read returned %q, want the clean payload", got)
	}

	// The query paid for the clean payload once; the discarded corrupt
	// read landed on the corrupt counters.
	if b := o.Meter.Bytes() - bytesBefore; b != sim.Bytes(len(payload)) {
		t.Errorf("main meter bytes = %d, want %d (clean payload once)", b, len(payload))
	}
	if ops := o.Meter.Ops() - opsBefore; ops != 1 {
		t.Errorf("main meter ops = %d, want 1", ops)
	}
	rep := o.Repairs()
	if rep.CorruptReads != 1 {
		t.Errorf("CorruptReads = %d, want 1", rep.CorruptReads)
	}
	if rep.CorruptBytes != sim.Bytes(len(payload)) {
		t.Errorf("CorruptBytes = %d, want %d", rep.CorruptBytes, len(payload))
	}
	if rep.WriteBacks != 1 || rep.WriteBackBytes != sim.Bytes(len(payload)) {
		t.Errorf("write-backs = %d/%d bytes, want 1/%d",
			rep.WriteBacks, rep.WriteBackBytes, len(payload))
	}

	// The damaged replica is healed in place: a raw read serves clean
	// bytes and a second Get does no further repair work.
	raw, err := o.ReadReplicaRaw(context.Background(), "k", 0)
	if err != nil || !bytes.Equal(raw, payload) {
		t.Fatalf("replica 0 not healed: %q err=%v", raw, err)
	}
	if _, err := o.Get(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if rep := o.Repairs(); rep.WriteBacks != 1 || rep.CorruptReads != 1 {
		t.Errorf("second read repeated repair work: %+v", rep)
	}
}

// With WriteBack off, verification still routes around damage — the
// clean replica answers — but the damaged blob stays damaged: detect and
// route-around without heal.
func TestVerifyWithoutWriteBackLeavesDamage(t *testing.T) {
	o := NewObjectStore()
	o.SetReplicas(2)
	payload := []byte("detected but not healed")
	o.Put("k", payload)
	o.Verify = verifyAgainst(payload)

	o.CorruptReplica("k", 0)
	got, err := o.Get(context.Background(), "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read = %q err=%v", got, err)
	}
	if rep := o.Repairs(); rep.WriteBacks != 0 {
		t.Errorf("WriteBacks = %d with WriteBack off", rep.WriteBacks)
	}
	raw, _ := o.ReadReplicaRaw(context.Background(), "k", 0)
	if bytes.Equal(raw, payload) {
		t.Error("replica 0 healed despite WriteBack off")
	}
}

// Regression: a hedge that wins the race with corrupt bytes must not
// become the answer. The corrupt finisher is rejected, the slower clean
// primary serves the query, and the corrupt replica is repaired. The
// byte conservation holds: main meter carries the clean payload once,
// the discarded read lands on the corrupt counters, nothing on the
// hedge counters.
func TestHedgeCorruptWinnerRejected(t *testing.T) {
	o := NewObjectStore()
	o.SetReplicas(2)
	o.BaseLatency = time.Millisecond
	payload := []byte("hedge race corrupt winner payload")
	o.Put("k", payload)
	o.Verify = verifyAgainst(payload)
	o.WriteBack = true

	// Replica 1 (the hedge target) is damaged; replica 0 is clean but
	// slow enough that the hedge fires and finishes first.
	o.CorruptReplica("k", 1)
	inj := faults.New(0x51C4)
	inj.Arm(faults.Point{Kind: faults.DegradedDevice, Target: "store/r0",
		Prob: 1, Severity: 20})
	o.Faults = inj
	pol := resilience.NewPolicy()
	pol.Speculate = false
	o.Resilience = pol

	opsBefore, bytesBefore := o.Meter.Ops(), o.Meter.Bytes()
	base := runtime.NumGoroutine()
	got, err := o.Get(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("hedged read returned corrupt bytes %q", got)
	}
	h := o.Hedges()
	if h.Hedged != 1 {
		t.Fatalf("hedge stats = %+v, want exactly one hedge launched", h)
	}
	if h.Wins != 0 {
		t.Errorf("corrupt hedge recorded as a win: %+v", h)
	}
	if h.Bytes != 0 {
		t.Errorf("hedge bytes = %d, want 0 (corrupt payload must land on corrupt counters)", h.Bytes)
	}
	if b := o.Meter.Bytes() - bytesBefore; b != sim.Bytes(len(payload)) {
		t.Errorf("main meter bytes = %d, want %d (clean primary once)", b, len(payload))
	}
	if ops := o.Meter.Ops() - opsBefore; ops != 1 {
		t.Errorf("main meter ops = %d, want the primary's single attempt", ops)
	}
	rep := o.Repairs()
	if rep.CorruptReads != 1 || rep.CorruptBytes != sim.Bytes(len(payload)) {
		t.Errorf("corrupt accounting = %d reads / %d bytes, want 1 / %d",
			rep.CorruptReads, rep.CorruptBytes, len(payload))
	}
	if rep.WriteBacks != 1 {
		t.Errorf("WriteBacks = %d, want 1 (corrupt hedge target repaired)", rep.WriteBacks)
	}
	raw, err := o.ReadReplicaRaw(context.Background(), "k", 1)
	if err != nil || !bytes.Equal(raw, payload) {
		t.Fatalf("hedge target not healed: %q err=%v", raw, err)
	}
	waitGoroutines(t, base)
}

// A corrupt read strikes the replica in the health tracker, so ranking
// demotes it to last place until a repair forgives the strike.
func TestCorruptReadStrikesHealthRanking(t *testing.T) {
	o := NewObjectStore()
	o.SetReplicas(2)
	payload := []byte("strike ranking payload")
	o.Put("k", payload)
	o.Verify = verifyAgainst(payload)
	o.WriteBack = true
	pol := resilience.NewPolicy()
	pol.Hedge = false
	o.Resilience = pol

	o.CorruptReplica("k", 0)
	if _, err := o.Get(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	// The strike was recorded and then forgiven by the write-back heal.
	if pol.Health.CorruptStrikes("store/r0") != 0 {
		t.Error("heal did not forgive the integrity strike")
	}

	// Without write-back the strike persists and demotes the replica.
	o2 := NewObjectStore()
	o2.SetReplicas(2)
	o2.Put("k", payload)
	o2.Verify = verifyAgainst(payload)
	pol2 := resilience.NewPolicy()
	pol2.Hedge = false
	o2.Resilience = pol2
	o2.CorruptReplica("k", 0)
	if _, err := o2.Get(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if pol2.Health.CorruptStrikes("store/r0") == 0 {
		t.Fatal("corrupt read left no integrity strike")
	}
	order := pol2.Health.Rank([]string{"store/r0", "store/r1"})
	if order[len(order)-1] != "store/r0" {
		t.Errorf("struck replica not ranked last: %v", order)
	}
}

// StickyCorrupt through the injector: the first matching read damages
// the stored blob and every later read serves the same damaged bytes —
// the fault must not flip the byte back. A fresh Put discards the
// sticky record so the new object can be damaged again.
func TestStickyCorruptIsSticky(t *testing.T) {
	o := NewObjectStore()
	payload := []byte("sticky corruption target bytes")
	o.Put("k", payload)
	inj := faults.New(0x57)
	inj.Arm(faults.Point{Kind: faults.StickyCorrupt, Target: "store/r0", Prob: 1})
	o.Faults = inj

	first, err := o.ReadReplicaRaw(context.Background(), "k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, payload) {
		t.Fatal("armed StickyCorrupt did not damage the blob")
	}
	second, err := o.ReadReplicaRaw(context.Background(), "k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("second read differs: the fault re-flipped the damaged byte")
	}

	// Repair clears the sticky record; the still-armed point damages the
	// repaired blob on the next read (fresh incident, not a replay).
	if err := o.RepairReplica(context.Background(), "k", 0, payload); err != nil {
		t.Fatal(err)
	}
	again, err := o.ReadReplicaRaw(context.Background(), "k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(again, payload) {
		t.Fatal("armed point stopped firing after repair")
	}

	// A fresh Put replaces the object; damage applies anew to it.
	fresh := []byte("recreated object bytes --------")
	o.Put("k", fresh)
	got, err := o.ReadReplicaRaw(context.Background(), "k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, fresh) {
		t.Fatal("sticky record survived Put and suppressed damage")
	}
}

// StickyCorrupt is deterministic under the injector seed: two stores
// armed identically damage the same blobs.
func TestStickyCorruptDeterministicUnderSeed(t *testing.T) {
	run := func() []string {
		o := NewObjectStore()
		o.SetReplicas(2)
		keys := []string{"a", "b", "c", "d", "e", "f"}
		for _, k := range keys {
			o.Put(k, []byte("deterministic payload for "+k))
		}
		inj := faults.New(0xD37)
		inj.Arm(faults.Point{Kind: faults.StickyCorrupt, Prob: 0.5})
		o.Faults = inj
		var damaged []string
		for _, k := range keys {
			for r := 0; r < 2; r++ {
				data, err := o.ReadReplicaRaw(context.Background(), k, r)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(data, []byte("deterministic payload for "+k)) {
					damaged = append(damaged, k+"/"+itoa(r))
				}
			}
		}
		return damaged
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("seeded 50% StickyCorrupt never fired over 12 reads")
	}
	if len(a) != len(b) {
		t.Fatalf("runs damaged %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs damaged %v vs %v", a, b)
		}
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

// FailReplica loses every blob of one replica; reads fall back, the
// exposure is reported, and RepairReplica restores the slot.
func TestFailReplicaFallbackAndRestore(t *testing.T) {
	o := NewObjectStore()
	o.SetReplicas(2)
	payload := []byte("replica loss payload")
	o.Put("k", payload)

	if lost := o.FailReplica(0); lost != 1 {
		t.Fatalf("FailReplica lost %d blobs, want 1", lost)
	}
	objects, slots := o.UnderReplicated()
	if objects != 1 || slots[0] != 1 {
		t.Fatalf("UnderReplicated = %d objects, slots %v", objects, slots)
	}
	if _, err := o.ReadReplicaRaw(context.Background(), "k", 0); err == nil {
		t.Fatal("raw read of a lost slot succeeded")
	} else if _, ok := err.(*ReplicaLostError); !ok {
		t.Fatalf("lost slot error = %T, want *ReplicaLostError", err)
	}

	got, err := o.Get(context.Background(), "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after replica loss = %q err=%v", got, err)
	}
	if o.Recovery().ReplicaFallbacks == 0 {
		t.Error("read past the lost replica recorded no fallback")
	}

	if err := o.RepairReplica(context.Background(), "k", 0, payload); err != nil {
		t.Fatal(err)
	}
	if objects, _ := o.UnderReplicated(); objects != 0 {
		t.Errorf("still %d under-replicated objects after restore", objects)
	}
	raw, err := o.ReadReplicaRaw(context.Background(), "k", 0)
	if err != nil || !bytes.Equal(raw, payload) {
		t.Fatalf("restored slot serves %q err=%v", raw, err)
	}
}

// Concurrent reads of the same damaged blob must repair it exactly
// once: the compare-and-write under the store lock dedups writers.
func TestConcurrentReadRepairExactlyOnce(t *testing.T) {
	o := NewObjectStore()
	o.SetReplicas(2)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	o.Put("k", payload)
	o.Verify = verifyAgainst(payload)
	o.WriteBack = true
	o.CorruptReplica("k", 0)

	const readers = 8
	done := make(chan error, readers)
	for i := 0; i < readers; i++ {
		go func() {
			got, err := o.Get(context.Background(), "k")
			if err == nil && !bytes.Equal(got, payload) {
				err = errors.New("corrupt bytes returned")
			}
			done <- err
		}()
	}
	for i := 0; i < readers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if rep := o.Repairs(); rep.WriteBacks != 1 {
		t.Errorf("WriteBacks = %d, want exactly 1 for one damaged blob", rep.WriteBacks)
	}
}

// Scrub reads are metered on the scrub counters, never the main Meter.
func TestScrubReadsBypassMainMeter(t *testing.T) {
	o := NewObjectStore()
	payload := []byte("scrub metering payload")
	o.Put("k", payload)
	bytesBefore := o.Meter.Bytes()
	for i := 0; i < 3; i++ {
		if _, err := o.ReadReplicaRaw(context.Background(), "k", 0); err != nil {
			t.Fatal(err)
		}
	}
	if b := o.Meter.Bytes() - bytesBefore; b != 0 {
		t.Errorf("scrub reads charged %d bytes to the main meter", b)
	}
	rep := o.Repairs()
	if rep.ScrubReads != 3 || rep.ScrubBytes != sim.Bytes(3*len(payload)) {
		t.Errorf("scrub accounting = %d reads / %d bytes, want 3 / %d",
			rep.ScrubReads, rep.ScrubBytes, 3*len(payload))
	}
}

// The repair-contention model stretches foreground reads while repair
// I/O is in flight, and only then.
func TestRepairContentionStretchesForeground(t *testing.T) {
	o := NewObjectStore()
	o.BaseLatency = 2 * time.Millisecond
	o.RepairContention = 4
	o.Put("k", []byte("contention payload"))

	start := time.Now()
	if _, err := o.Get(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	quiet := time.Since(start)

	// Hold a repair-load slot by parking a raw read in a slow sleep: use
	// a goroutine reading repeatedly while we measure.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				o.ReadReplicaRaw(context.Background(), "k", 0)
			}
		}
	}()
	defer close(stop)
	time.Sleep(time.Millisecond) // let the scrub loop occupy the slot

	start = time.Now()
	if _, err := o.Get(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	loaded := time.Since(start)
	if loaded < quiet+o.BaseLatency {
		t.Errorf("foreground read under repair load took %v, want >= %v + %v stretch",
			loaded, quiet, o.BaseLatency)
	}
}

// The disabled repair path adds zero allocations to a single-replica
// read — the CI-gated invariant that nil Verify / WriteBack off / no
// controller cost nothing.
func BenchmarkRepairDisabled(b *testing.B) {
	o := NewObjectStore()
	payload := make([]byte, 4096)
	o.Put("k", payload)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.GetNoCopy(ctx, "k"); err != nil {
			b.Fatal(err)
		}
	}
}
