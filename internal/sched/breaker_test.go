package sched

import (
	"context"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/resilience"
)

// differingDevice returns a device name placed by a but not by b, so a
// penalty against it steers admission between the two variants.
func differingDevice(t *testing.T, a, b *plan.Physical) string {
	t.Helper()
	other := map[string]bool{}
	for _, name := range b.PlacedDevices() {
		other[name] = true
	}
	for _, name := range a.PlacedDevices() {
		if !other[name] {
			return name
		}
	}
	t.Fatal("variants place work on identical device sets")
	return ""
}

func TestBreakerSteersAdmission(t *testing.T) {
	_, v0, v1 := twoNodeVariants(t)
	dev := differingDevice(t, v0[1], v1[1])

	s := New()
	s.Breakers = resilience.NewBreakerSet(resilience.BreakerConfig{
		TripThreshold: 1, Cooldown: time.Hour, HalfOpenProbes: 1,
	})
	s.Breakers.Failure(dev) // trips: threshold is 1

	mixed := []*plan.Physical{v0[1], v1[1]}
	adm, err := s.Admit(context.Background(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Plan != v1[1] {
		t.Errorf("admission kept the circuit-broken variant %q", adm.Variant)
	}
	s.Release(adm)

	// With no healthy alternative the broken variant still serves —
	// breakers degrade admission to serve-slow, never to shedding.
	adm, err = s.Admit(context.Background(), []*plan.Physical{v0[1]})
	if err != nil {
		t.Fatalf("breaker shed the only variant: %v", err)
	}
	s.Release(adm)
}

func TestBreakerHalfOpenProbesViaAdmission(t *testing.T) {
	_, v0, v1 := twoNodeVariants(t)
	dev := differingDevice(t, v0[1], v1[1])

	now := time.Unix(0, 0)
	s := New()
	s.Breakers = resilience.NewBreakerSet(resilience.BreakerConfig{
		TripThreshold: 1, Cooldown: time.Second, HalfOpenProbes: 1,
	})
	s.Breakers.SetClock(func() time.Time { return now })
	s.Breakers.Failure(dev)

	mixed := []*plan.Physical{v0[1], v1[1]}
	adm, err := s.Admit(context.Background(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Plan != v1[1] {
		t.Fatal("open breaker did not steer away")
	}
	s.Release(adm)

	// After the cooldown, admission's Allow stream half-opens the
	// breaker and the probe admits the device again.
	now = now.Add(2 * time.Second)
	adm, err = s.Admit(context.Background(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Plan != v0[1] {
		t.Errorf("half-open probe did not readmit the top-ranked variant (chose %q)", adm.Variant)
	}
	if got := s.Breakers.State(dev); got != resilience.HalfOpen {
		t.Errorf("breaker state = %v, want half-open", got)
	}
	// The engine reports the probe's outcome; success closes.
	s.Breakers.Success(dev)
	if got := s.Breakers.State(dev); got != resilience.Closed {
		t.Errorf("breaker state after probe success = %v, want closed", got)
	}
	s.Release(adm)
}

func TestDegradedPenaltySteersAdmission(t *testing.T) {
	c, v0, v1 := twoNodeVariants(t)
	dev := differingDevice(t, v0[1], v1[1])
	d := c.Device(dev)
	if d == nil {
		t.Fatalf("unknown device %q", dev)
	}
	d.SetDegraded(true)
	defer d.SetDegraded(false)

	s := New()
	mixed := []*plan.Physical{v0[1], v1[1]}
	adm, err := s.Admit(context.Background(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Plan != v1[1] {
		t.Errorf("admission kept a gray-degraded device (chose %q)", adm.Variant)
	}
	s.Release(adm)

	// Healthy again: the top-ranked variant wins as before.
	d.SetDegraded(false)
	adm, err = s.Admit(context.Background(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Plan != v0[1] {
		t.Errorf("healthy device still penalized (chose %q)", adm.Variant)
	}
	s.Release(adm)
}
