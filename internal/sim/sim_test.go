package sim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestRateTimeFor(t *testing.T) {
	tests := []struct {
		name string
		rate Rate
		n    Bytes
		want VTime
	}{
		{"one GB at 1GB/s", GBPerSec, 1e9, Second},
		{"half GB at 1GB/s", GBPerSec, 5e8, 500 * Millisecond},
		{"zero bytes", GBPerSec, 0, 0},
		{"negative bytes", GBPerSec, -5, 0},
		{"zero rate is free", 0, GB, 0},
		{"100Gb NIC moves 12.5GB in 1s", GbitPerSec(100), 12_500_000_000, Second},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.rate.TimeFor(tc.n)
			// Allow a 1-ppm slack for float rounding.
			diff := got - tc.want
			if diff < 0 {
				diff = -diff
			}
			if tc.want == 0 && got != 0 {
				t.Fatalf("TimeFor(%v) = %v, want 0", tc.n, got)
			}
			if tc.want != 0 && float64(diff)/float64(tc.want) > 1e-6 {
				t.Fatalf("TimeFor(%v) = %v, want %v", tc.n, got, tc.want)
			}
		})
	}
}

func TestVTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.5s" {
		t.Fatalf("String() = %q, want 1.5s", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
}

func TestBytesString(t *testing.T) {
	tests := []struct {
		b    Bytes
		want string
	}{
		{512, "512B"},
		{2 * KB, "2.00KiB"},
		{3 * MB, "3.00MiB"},
		{GB, "1.00GiB"},
	}
	for _, tc := range tests {
		if got := tc.b.String(); got != tc.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", tc.b, got, tc.want)
		}
	}
}

func TestMeterBasics(t *testing.T) {
	var m Meter
	m.AddBytes(100)
	m.AddBytes(50)
	m.AddBusy(10 * Millisecond)
	m.AddOps(3)
	m.AddMessages(7)

	if got := m.Bytes(); got != 150 {
		t.Errorf("Bytes() = %d, want 150", got)
	}
	if got := m.Busy(); got != 10*Millisecond {
		t.Errorf("Busy() = %v, want 10ms", got)
	}
	if got := m.Ops(); got != 3 {
		t.Errorf("Ops() = %d, want 3", got)
	}
	if got := m.Messages(); got != 7 {
		t.Errorf("Messages() = %d, want 7", got)
	}

	snap := m.Snapshot()
	m.AddBytes(25)
	delta := m.Snapshot().Sub(snap)
	if delta.Bytes != 25 || delta.Ops != 0 {
		t.Errorf("Sub delta = %+v, want Bytes:25", delta)
	}

	m.Reset()
	if m.Bytes() != 0 || m.Busy() != 0 || m.Ops() != 0 || m.Messages() != 0 {
		t.Error("Reset did not zero all counters")
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	const workers, perWorker = 16, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				m.AddBytes(1)
				m.AddMessages(2)
			}
		}()
	}
	wg.Wait()
	if got := m.Bytes(); got != workers*perWorker {
		t.Errorf("concurrent Bytes() = %d, want %d", got, workers*perWorker)
	}
	if got := m.Messages(); got != 2*workers*perWorker {
		t.Errorf("concurrent Messages() = %d, want %d", got, 2*workers*perWorker)
	}
}

func TestMeterSnapshotConsistency(t *testing.T) {
	// Every Add charges all four counters by the same amount, so any
	// consistent snapshot must have them equal. With the old
	// independent-atomic counters a concurrent snapshot could observe
	// the bytes of one charge without its busy time — a torn read this
	// test catches reliably under -race scheduling pressure.
	var m Meter
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			m.Add(Snapshot{Bytes: 1, Busy: 1, Ops: 1, Messages: 1})
		}
	}()
	for {
		s := m.Snapshot()
		if int64(s.Bytes) != int64(s.Busy) || s.Ops != s.Messages || int64(s.Bytes) != s.Ops {
			t.Fatalf("torn snapshot: %+v", s)
		}
		select {
		case <-done:
			if got := m.Snapshot(); got.Bytes != 5000 {
				t.Fatalf("final bytes = %d, want 5000", got.Bytes)
			}
			return
		default:
		}
	}
}

func TestMeterSet(t *testing.T) {
	set := NewMeterSet()
	set.Get("b").AddBytes(1)
	set.Get("a").AddBytes(2)
	set.Get("a").AddBytes(3) // same meter again

	if got := set.Get("a").Bytes(); got != 5 {
		t.Errorf("meter a Bytes() = %d, want 5", got)
	}
	names := set.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names() = %v, want [a b]", names)
	}
	snaps := set.Snapshots()
	if snaps["a"].Bytes != 5 || snaps["b"].Bytes != 1 {
		t.Errorf("Snapshots() = %v", snaps)
	}
	set.ResetAll()
	if set.Get("a").Bytes() != 0 {
		t.Error("ResetAll did not zero meters")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero state")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		if v := r.Int63n(100); v < 0 || v >= 100 {
			t.Fatalf("Int63n(100) = %d out of range", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63() = %d negative", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Property(t *testing.T) {
	// Property: Float64 stays in [0,1) regardless of seed.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRNG(99)
	z := NewZipf(r, 1.0, 1000)
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf value %d out of [0,1000)", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate: with s=1 over 1000 values its share is
	// 1/H(1000) ~ 13%; check it exceeds 8% and exceeds rank 10 clearly.
	if counts[0] < draws*8/100 {
		t.Errorf("rank-0 count %d too small for Zipf skew", counts[0])
	}
	if counts[0] <= counts[10]*2 {
		t.Errorf("rank 0 (%d) not clearly above rank 10 (%d)", counts[0], counts[10])
	}
}

func TestZipfExponentTwo(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 2.0, 100)
	var zeroes int
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf value %d out of range", v)
		}
		if v == 0 {
			zeroes++
		}
	}
	// With s=2, rank 0 has share 1/zeta(2,100) ~ 61%.
	if zeroes < draws/2 {
		t.Errorf("rank-0 share %d/%d too small for s=2", zeroes, draws)
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	for _, tc := range []struct {
		s float64
		n int64
	}{{0, 10}, {-1, 10}, {1, 0}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(s=%v,n=%v) did not panic", tc.s, tc.n)
				}
			}()
			NewZipf(r, tc.s, tc.n)
		}()
	}
}
