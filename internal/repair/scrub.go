package repair

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/storage"
)

// ScrubSummary reports one scrub pass's findings.
type ScrubSummary struct {
	// Clean counts replica blobs that verified clean.
	Clean int
	// Corrupt counts blobs confirmed damaged (persistent verdicts).
	Corrupt int
	// Healed counts damaged blobs repaired from a clean sibling.
	Healed int
	// Lost counts empty replica slots encountered (re-replication's
	// job, not the scrubber's).
	Lost int
}

// ScrubPass walks every object's every replica once, verifying stored
// checksums under the scrub byte budget and the SLO/scheduler admission
// gate. A blob that fails verification gets a transient verdict and an
// immediate re-read; only a second failure escalates to persistent and
// triggers a repair from a clean sibling. The pass is cut short by ctx.
func (c *Controller) ScrubPass(ctx context.Context) ScrubSummary {
	var sum ScrubSummary
	if c == nil || c.store == nil {
		return sum
	}
	for _, key := range c.store.List("") {
		n := c.store.ReplicaCount(key)
		for r := 0; r < n; r++ {
			if err := c.admitQuantum(ctx); err != nil {
				return sum
			}
			if size := c.store.Size(key); size > 0 {
				if err := c.scrubTokens.acquire(ctx, int(size)); err != nil {
					return sum
				}
			}
			data, err := c.store.ReadReplicaRaw(ctx, key, r)
			if err != nil {
				if _, lost := err.(*storage.ReplicaLostError); lost {
					// The store already struck the replica's health and
					// breaker; ReclonePass owns the recovery.
					sum.Lost++
				}
				if ctx != nil && ctx.Err() != nil {
					return sum
				}
				continue
			}
			if c.verify(key, data) == nil {
				c.scrubbed.Add(1)
				sum.Clean++
				continue
			}
			// First strike: a transient verdict. Re-read before treating
			// the damage as real — at-rest corruption survives a re-read,
			// an in-flight flip does not.
			c.record(Incident{Key: key, Replica: r, Verdict: VerdictTransient})
			again, err := c.store.ReadReplicaRaw(ctx, key, r)
			if err == nil && c.verify(key, again) == nil {
				c.scrubbed.Add(1)
				sum.Clean++
				continue
			}
			sum.Corrupt++
			if c.healBlob(ctx, key, r, n) {
				c.scrubRepairs.Add(1)
				sum.Healed++
				c.record(Incident{Key: key, Replica: r, Verdict: VerdictPersistent, Healed: true})
			} else {
				c.unrecoverable.Add(1)
				c.record(Incident{Key: key, Replica: r, Verdict: VerdictUnrecoverable})
			}
		}
	}
	return sum
}

// healBlob repairs replica r of key from the first sibling replica that
// serves a verified-clean blob, paying the repair byte budget. Reports
// whether a repair landed.
func (c *Controller) healBlob(ctx context.Context, key string, r, n int) bool {
	for rr := 0; rr < n; rr++ {
		if rr == r {
			continue
		}
		src, err := c.store.ReadReplicaRaw(ctx, key, rr)
		if err != nil || c.verify(key, src) != nil {
			continue
		}
		if err := c.repairTokens.acquire(ctx, len(src)); err != nil {
			return false
		}
		if err := c.store.RepairReplica(ctx, key, r, src); err != nil {
			return false
		}
		return true
	}
	return false
}

// replicaName names replica r the way the store's fault targets and
// health/breaker keys do.
func (c *Controller) replicaName(r int) string {
	return fmt.Sprintf("%s/r%d", c.store.Name, r)
}

// ReclonePass checks for lost replicas and re-clones the ones declared
// dead. A replica is declared dead once its blobs have been lost for
// DeadAfter and — when a breaker set is attached — its breaker is open:
// breakers open from real failed reads (foreground or scrub), so a
// replica nobody can read for the deadline is what "permanently dead"
// means here. Re-cloning copies every lost blob from a verified-clean
// survivor, paced by the repair budget and the admission gate, and
// records the completed restoration's MTTR.
func (c *Controller) ReclonePass(ctx context.Context) {
	if c == nil || c.store == nil {
		return
	}
	_, slots := c.store.UnderReplicated()
	now := time.Now()

	c.mu.Lock()
	for r := range slots {
		if _, seen := c.lostSince[r]; !seen {
			c.lostSince[r] = now
		}
	}
	for r := range c.lostSince {
		if slots[r] == 0 {
			delete(c.lostSince, r) // recovered (or never really lost)
			delete(c.deadAt, r)
		}
	}
	var dead []int
	for r, since := range c.lostSince {
		if _, already := c.deadAt[r]; already {
			dead = append(dead, r) // still mid-restore from a prior pass
			continue
		}
		if now.Sub(since) < c.cfg.DeadAfter {
			continue
		}
		if c.pol != nil && c.pol.Breakers != nil &&
			c.pol.Breakers.State(c.replicaName(r)) != resilience.Open {
			continue // deadline passed but reads have not condemned it yet
		}
		c.deadAt[r] = since
		dead = append(dead, r)
		c.deadDeclared.Add(1)
		// c.mu is held: append to the ledger directly, record would
		// self-deadlock.
		c.ledger = append(c.ledger, Incident{Key: "*", Replica: r, Verdict: VerdictLost})
	}
	c.mu.Unlock()

	for _, r := range dead {
		c.recloneReplica(ctx, r)
	}
}

// recloneReplica restores every lost blob of replica r from clean
// survivors, using Streams concurrent workers. On full restoration it
// records the MTTR (first loss observation to now) and forgives the
// replica's health strikes.
func (c *Controller) recloneReplica(ctx context.Context, r int) {
	keys := c.store.List("")
	streams := c.cfg.Streams
	if streams < 1 {
		streams = 1
	}
	work := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < streams; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range work {
				c.recloneBlob(ctx, key, r)
			}
		}()
	}
	for _, key := range keys {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		work <- key
	}
	close(work)
	wg.Wait()

	_, slots := c.store.UnderReplicated()
	if slots[r] != 0 {
		return // incomplete (cancelled or sources missing): retry next pass
	}
	c.mu.Lock()
	since, ok := c.deadAt[r]
	if ok {
		c.lastMTTR = time.Since(since)
		delete(c.deadAt, r)
		delete(c.lostSince, r)
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	if c.pol != nil {
		c.pol.Health.ClearCorrupt(c.replicaName(r))
		// The replica holds freshly written, verified bytes: close its
		// breaker now instead of waiting out the cooldown.
		c.pol.Breakers.Reset(c.replicaName(r))
	}
}

// recloneBlob restores replica r of key if (and only if) it is lost,
// copying from the first verified-clean survivor.
func (c *Controller) recloneBlob(ctx context.Context, key string, r int) {
	n := c.store.ReplicaCount(key)
	if r >= n {
		return
	}
	if err := c.admitQuantum(ctx); err != nil {
		return
	}
	if _, err := c.store.ReadReplicaRaw(ctx, key, r); err == nil {
		return // slot is healthy; nothing to restore
	} else if _, lost := err.(*storage.ReplicaLostError); !lost {
		return
	}
	for rr := 0; rr < n; rr++ {
		if rr == r {
			continue
		}
		src, err := c.store.ReadReplicaRaw(ctx, key, rr)
		if err != nil || c.verify(key, src) != nil {
			continue
		}
		if err := c.repairTokens.acquire(ctx, len(src)); err != nil {
			return
		}
		if err := c.store.RepairReplica(ctx, key, r, src); err != nil {
			return
		}
		c.recloned.Add(1)
		return
	}
	c.unrecoverable.Add(1)
	c.record(Incident{Key: key, Replica: r, Verdict: VerdictUnrecoverable})
}
