package resilience

import "sync"

// Budget is the global retry budget: a token bucket refilled by
// observed primary work. Every ObserveOp adds Ratio tokens (capped at
// Burst); every hedge, speculative re-execution or fault retry spends
// one token via TryAcquire. With Ratio at 0.1 the recovery machinery
// can add at most ~10% extra work on top of the primary stream, so an
// injected fault storm degrades to shed-or-serve-slow instead of
// amplifying itself. All methods are safe for concurrent use; a nil
// *Budget grants everything.
type Budget struct {
	mu        sync.Mutex
	ratio     float64
	burst     float64
	tokens    float64
	exhausted int64
}

// NewBudget returns a budget earning ratio tokens per observed op,
// holding at most burst. The bucket starts full so startup retries are
// not starved before any primary work completes.
func NewBudget(ratio float64, burst float64) *Budget {
	if ratio < 0 {
		ratio = 0
	}
	if burst < 1 {
		burst = 1
	}
	return &Budget{ratio: ratio, burst: burst, tokens: burst}
}

// ObserveOp credits the budget for one completed primary operation.
func (b *Budget) ObserveOp() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// TryAcquire spends one token if available. A false return means the
// budget is exhausted and the caller must skip its retry/hedge.
func (b *Budget) TryAcquire() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	b.exhausted++
	return false
}

// Exhausted reports how many acquisitions have been denied so far.
func (b *Budget) Exhausted() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.exhausted
}

// Tokens reports the current token count, for tests and metrics.
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
