package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// Seeded chaos: under a low rate of mixed injected storage faults, every
// query must either succeed with the correct answer or fail with a typed
// error — never return wrong results. At the rates used here (1%
// transient, 0.5% corrupt, 0.5% missing, two replicas, bounded retry)
// recovery must in fact absorb everything: 100% success.
func TestChaosTransientStorageFaults(t *testing.T) {
	cfg := workload.DefaultLineitemConfig(testRows)
	data := workload.GenLineitem(cfg)

	build := func() *DataFlowEngine {
		df := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		df.Storage.Store().SetReplicas(2) // before Load so segments replicate
		df.Storage.Store().RetryBase = 0  // no real sleeping in tests
		df.Storage.SegmentRows = 1000     // 20 segments => many fault draws per query
		if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			t.Fatal(err)
		}
		if err := df.Load("lineitem", data); err != nil {
			t.Fatal(err)
		}
		return df
	}

	// Clean engine computes the expected answers once.
	clean := build()
	queries := []*plan.Query{
		plan.NewQuery("lineitem").WithCount(),
		plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary()),
		plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.1)).
			WithProjection(workload.LExtendedPrice),
	}
	expected := make([]map[string]int, len(queries)) // rendered row -> count
	for i, q := range queries {
		res, err := clean.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = rowHistogram(res)
	}

	df := build()
	inj := faults.New(0xC4A05)
	inj.Arm(faults.Point{Kind: faults.TransientRead, Prob: 0.01})
	inj.Arm(faults.Point{Kind: faults.CorruptBlob, Prob: 0.005})
	inj.Arm(faults.Point{Kind: faults.ObjectMissing, Prob: 0.005})
	df.Storage.Store().Faults = inj

	const workers, rounds = 8, 4
	var totalRetries, totalFallbacks atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (w + r) % len(queries)
				res, err := df.ExecuteOn(context.Background(), queries[qi], w%2)
				if err != nil {
					errs <- err
					return
				}
				got := rowHistogram(res)
				if len(got) != len(expected[qi]) {
					t.Errorf("worker %d query %d: %d distinct rows, want %d",
						w, qi, len(got), len(expected[qi]))
					return
				}
				for k, n := range expected[qi] {
					if got[k] != n {
						t.Errorf("worker %d query %d: row %q count %d, want %d",
							w, qi, k, got[k], n)
						return
					}
				}
				totalRetries.Add(res.Stats.Retries)
				totalFallbacks.Add(res.Stats.ReplicaFallbacks)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query under 1%% fault rate failed: %v", err)
	}
	if totalRetries.Load()+totalFallbacks.Load() == 0 {
		t.Error("no recovery work recorded — faults were not exercised")
	}
	if fired := inj.Fires(); fired == 0 {
		t.Error("injector never fired")
	}
	if df.Scheduler.ActiveCount() != 0 {
		t.Error("admissions leaked after chaos")
	}
}

// Gray-failure chaos: error faults and gray slowness together, with the
// full defense stack live — health-ranked replicas, hedged reads,
// speculation, breakers and the retry budget. Every query must still
// return the exact answer; the defenses may only change *when*, never
// *what*. Runs with concurrent queries so hedge/speculation teardown
// races are exercised under -race.
func TestChaosGrayFailureDefenses(t *testing.T) {
	cfg := workload.DefaultLineitemConfig(testRows)
	data := workload.GenLineitem(cfg)

	build := func() *DataFlowEngine {
		df := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		df.Workers = 2
		df.Storage.Store().SetReplicas(2)
		df.Storage.Store().RetryBase = 0
		df.Storage.SegmentRows = 2000 // 10 segments per query
		if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			t.Fatal(err)
		}
		if err := df.Load("lineitem", data); err != nil {
			t.Fatal(err)
		}
		return df
	}

	clean := build()
	queries := []*plan.Query{
		plan.NewQuery("lineitem").WithCount(),
		plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.1)).
			WithProjection(workload.LExtendedPrice),
	}
	expected := make([]map[string]int, len(queries))
	for i, q := range queries {
		res, err := clean.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = rowHistogram(res)
	}

	df := build()
	store := df.Storage.Store()
	store.BaseLatency = 100 * time.Microsecond
	inj := faults.New(0x6A4)
	inj.Arm(faults.Point{Kind: faults.TransientRead, Prob: 0.01})
	inj.Arm(faults.Point{Kind: faults.CorruptBlob, Prob: 0.005})
	inj.Arm(faults.Point{Kind: faults.DegradedDevice, Target: "store/r0", Prob: 0.3, Severity: 8})
	inj.Arm(faults.Point{Kind: faults.JitterLink, Prob: 0.5, Severity: 1})
	store.Faults = inj
	df.EnableResilience(resilience.NewPolicy())

	const workers, rounds = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (w + r) % len(queries)
				res, err := df.ExecuteOn(context.Background(), queries[qi], w%2)
				if err != nil {
					errs <- err
					return
				}
				got := rowHistogram(res)
				for k, n := range expected[qi] {
					if got[k] != n {
						t.Errorf("worker %d query %d: row %q count %d, want %d",
							w, qi, k, got[k], n)
						return
					}
				}
				if len(got) != len(expected[qi]) {
					t.Errorf("worker %d query %d: %d distinct rows, want %d",
						w, qi, len(got), len(expected[qi]))
					return
				}
				if res.Stats.HedgeBytes < 0 || res.Stats.SpeculativeBytes < 0 {
					t.Errorf("negative defense accounting: %+v", res.Stats)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query under gray-failure chaos failed: %v", err)
	}
	if inj.Fires() == 0 {
		t.Error("injector never fired")
	}
	if df.Scheduler.ActiveCount() != 0 {
		t.Error("admissions leaked after chaos")
	}
}

// rowHistogram counts result rows by their full rendered form, for
// order-insensitive comparison that also catches duplicated rows.
func rowHistogram(r *Result) map[string]int {
	out := make(map[string]int)
	for _, b := range r.Batches {
		for i := 0; i < b.NumRows(); i++ {
			var key string
			for _, v := range b.Row(i) {
				key += v.String() + "\x00"
			}
			out[key]++
		}
	}
	return out
}

// Killing the device hosting a pipeline stage mid-query must trigger
// engine failover: the plan is re-enumerated without the device and the
// query completes on the degraded placement with the correct answer.
func TestDeviceKillMidQueryFailsOver(t *testing.T) {
	df, _, _ := newEngines(t)
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())

	clean, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want := rowHistogram(clean)

	// Kill whichever non-CPU device the admitted plan runs a pipeline
	// stage on (sites between storage and CPU host flow stages).
	variants, err := df.Plan(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := variants[0]
	target := ""
	for _, pl := range best.Placements {
		if pl.SiteIdx > 0 && pl.SiteIdx < len(best.Path.Sites)-1 {
			target = best.Path.Sites[pl.SiteIdx].Device.Name
			break
		}
	}
	if target == "" {
		t.Fatalf("variant %q places no stage on an intermediate device", best.Variant)
	}

	inj := faults.New(0xDEAD)
	inj.Arm(faults.Point{Kind: faults.DeviceOffline, Target: target, Prob: 1, Budget: 1})
	df.Faults = inj

	res, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("query did not survive killing %s: %v", target, err)
	}
	if res.Stats.Failovers < 1 {
		t.Errorf("Failovers = %d, want >= 1", res.Stats.Failovers)
	}
	if !res.Stats.DegradedPlacement {
		t.Error("DegradedPlacement not set after failover")
	}
	if res.Stats.RecoveryBytes == 0 && res.Stats.RecoveryTime == 0 {
		t.Error("abandoned attempt recorded no recovery waste")
	}
	got := rowHistogram(res)
	if len(got) != len(want) {
		t.Fatalf("failover answer has %d rows, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("failover answer differs at %q", k)
		}
	}
	if !df.Cluster.MustDevice(target).IsOffline() {
		t.Errorf("%s not marked offline", target)
	}
	if df.Scheduler.DeviceFailures(target) != 1 {
		t.Errorf("scheduler recorded %d failures for %s, want 1",
			df.Scheduler.DeviceFailures(target), target)
	}

	// The device is still dead: follow-up queries plan around it without
	// needing a failover.
	res2, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Failovers != 0 {
		t.Errorf("follow-up query failed over %d times; planner should avoid the dead device", res2.Stats.Failovers)
	}
	for _, pl := range mustPlanned(t, df, q, res2.Stats.Variant).Placements {
		pm := best.Path
		if pm.Sites[pl.SiteIdx].Device.Name == target {
			t.Errorf("follow-up plan still places work on dead %s", target)
		}
	}
}

// mustPlanned re-enumerates and returns the named variant.
func mustPlanned(t *testing.T, df *DataFlowEngine, q *plan.Query, variant string) *plan.Physical {
	t.Helper()
	variants, err := df.Plan(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		if v.Variant == variant {
			return v
		}
	}
	t.Fatalf("variant %q not enumerated", variant)
	return nil
}

// With every accelerator on the path dead, planning must degrade to the
// CPU-only placement and still answer correctly.
func TestAllAcceleratorsDeadDegradesToCPU(t *testing.T) {
	df, _, _ := newEngines(t)
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())
	clean, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		fabric.DevStorageProc, fabric.DevStorageNIC,
		fabric.ComputeDev(0, "nic"), fabric.ComputeDev(0, "nma"),
	} {
		df.Cluster.MustDevice(name).SetOffline(true)
	}
	res, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("CPU-only degradation failed: %v", err)
	}
	if res.Stats.Variant != "cpu-only" {
		t.Errorf("variant = %q, want cpu-only with all accelerators dead", res.Stats.Variant)
	}
	if res.Stats.Failovers != 0 {
		t.Errorf("planned degradation should need no failover, got %d", res.Stats.Failovers)
	}
	want, got := rowHistogram(clean), rowHistogram(res)
	if len(want) != len(got) {
		t.Fatalf("degraded answer has %d rows, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("degraded answer differs at %q", k)
		}
	}
}
