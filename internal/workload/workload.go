// Package workload provides the data generators and query templates the
// experiments run on: a TPC-H-flavoured lineitem/orders pair (the kind
// of analytics workload the paper's introduction motivates) and generic
// key/value tables with controllable skew and cardinality.
package workload

import (
	"fmt"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Lineitem column indices.
const (
	LOrderKey = iota
	LPartKey
	LSuppKey
	LQuantity
	LExtendedPrice
	LDiscount
	LShipDate
	LReturnFlag
	LComment
)

// LineitemSchema is a compact TPC-H lineitem.
func LineitemSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "l_orderkey", Type: columnar.Int64},
		columnar.Field{Name: "l_partkey", Type: columnar.Int64},
		columnar.Field{Name: "l_suppkey", Type: columnar.Int64},
		columnar.Field{Name: "l_quantity", Type: columnar.Int64},
		columnar.Field{Name: "l_extendedprice", Type: columnar.Float64},
		columnar.Field{Name: "l_discount", Type: columnar.Float64},
		columnar.Field{Name: "l_shipdate", Type: columnar.Int64},
		columnar.Field{Name: "l_returnflag", Type: columnar.String},
		columnar.Field{Name: "l_comment", Type: columnar.String},
	)
}

// LineitemConfig controls generation.
type LineitemConfig struct {
	Rows      int
	Orders    int64 // distinct order keys
	Parts     int64 // distinct part keys (Zipf-distributed)
	Suppliers int64
	// ShipDays is the shipdate domain [0, ShipDays).
	ShipDays int64
	Seed     uint64
}

// DefaultLineitemConfig sizes a table of n rows with TPC-H-ish ratios.
func DefaultLineitemConfig(n int) LineitemConfig {
	orders := int64(n/4 + 1)
	return LineitemConfig{
		Rows:      n,
		Orders:    orders,
		Parts:     int64(n/8 + 1),
		Suppliers: int64(n/40 + 1),
		ShipDays:  2526, // ~7 years, like TPC-H
		Seed:      42,
	}
}

var returnFlags = []string{"A", "N", "R"}
var commentWords = []string{
	"carefully", "final", "deposits", "sleep", "quickly", "special",
	"packages", "ironic", "requests", "regular", "accounts", "bold",
}

// GenLineitem generates the table as one batch.
func GenLineitem(cfg LineitemConfig) *columnar.Batch {
	rng := sim.NewRNG(cfg.Seed)
	partZipf := sim.NewZipf(rng, 1.1, cfg.Parts)
	b := columnar.NewBatch(LineitemSchema(), cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		qty := rng.Int63n(50) + 1
		price := float64(rng.Int63n(100000)) / 100
		disc := float64(rng.Int63n(11)) / 100
		comment := commentWords[rng.Intn(len(commentWords))] + " " +
			commentWords[rng.Intn(len(commentWords))]
		b.AppendRow(
			columnar.IntValue(rng.Int63n(cfg.Orders)),
			columnar.IntValue(partZipf.Next()),
			columnar.IntValue(rng.Int63n(cfg.Suppliers)),
			columnar.IntValue(qty),
			columnar.FloatValue(price),
			columnar.FloatValue(disc),
			columnar.IntValue(rng.Int63n(cfg.ShipDays)),
			columnar.StringValue(returnFlags[rng.Intn(len(returnFlags))]),
			columnar.StringValue(comment),
		)
	}
	return b
}

// LineitemStats derives planner statistics for a generated lineitem.
func LineitemStats(cfg LineitemConfig) plan.TableStats {
	st := plan.StatsFromSchema(LineitemSchema())
	st.Rows = int64(cfg.Rows)
	st.Distinct[LOrderKey] = cfg.Orders
	st.Distinct[LPartKey] = cfg.Parts
	st.Distinct[LSuppKey] = cfg.Suppliers
	st.Distinct[LQuantity] = 50
	st.Distinct[LShipDate] = cfg.ShipDays
	st.Distinct[LReturnFlag] = 3
	st.MinInt[LQuantity], st.MaxInt[LQuantity], st.IntBounds[LQuantity] = 1, 50, true
	st.MinInt[LShipDate], st.MaxInt[LShipDate], st.IntBounds[LShipDate] = 0, cfg.ShipDays-1, true
	st.MinInt[LOrderKey], st.MaxInt[LOrderKey], st.IntBounds[LOrderKey] = 0, cfg.Orders-1, true
	st.ColBytes[LReturnFlag] = 17 // 1-byte strings + header
	st.ColBytes[LComment] = 32
	return st
}

// Orders column indices.
const (
	OOrderKey = iota
	OCustKey
	OTotalPrice
	OOrderDate
	OStatus
)

// OrdersSchema is a compact TPC-H orders.
func OrdersSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "o_orderkey", Type: columnar.Int64},
		columnar.Field{Name: "o_custkey", Type: columnar.Int64},
		columnar.Field{Name: "o_totalprice", Type: columnar.Float64},
		columnar.Field{Name: "o_orderdate", Type: columnar.Int64},
		columnar.Field{Name: "o_status", Type: columnar.String},
	)
}

// GenOrders generates n orders with keys 0..n-1 (join-compatible with
// lineitem order keys below n).
func GenOrders(n int, seed uint64) *columnar.Batch {
	rng := sim.NewRNG(seed)
	statuses := []string{"O", "F", "P"}
	b := columnar.NewBatch(OrdersSchema(), n)
	for i := 0; i < n; i++ {
		b.AppendRow(
			columnar.IntValue(int64(i)),
			columnar.IntValue(rng.Int63n(int64(n/10+1))),
			columnar.FloatValue(float64(rng.Int63n(50000000))/100),
			columnar.IntValue(rng.Int63n(2526)),
			columnar.StringValue(statuses[rng.Intn(len(statuses))]),
		)
	}
	return b
}

// KVConfig controls generic key/value generation.
type KVConfig struct {
	Rows     int
	Keys     int64   // distinct keys
	ZipfSkew float64 // 0 = uniform
	Seed     uint64
}

// KVSchema is the generic two-column table.
func KVSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Int64},
	)
}

// GenKV generates a key/value batch with the requested key distribution.
func GenKV(cfg KVConfig) *columnar.Batch {
	rng := sim.NewRNG(cfg.Seed)
	var zipf *sim.Zipf
	if cfg.ZipfSkew > 0 {
		zipf = sim.NewZipf(rng, cfg.ZipfSkew, cfg.Keys)
	}
	ks := make([]int64, cfg.Rows)
	vs := make([]int64, cfg.Rows)
	for i := range ks {
		if zipf != nil {
			ks[i] = zipf.Next()
		} else {
			ks[i] = rng.Int63n(cfg.Keys)
		}
		vs[i] = rng.Int63n(1000)
	}
	return columnar.BatchOf(KVSchema(), columnar.FromInt64s(ks), columnar.FromInt64s(vs))
}

// Query templates used across experiments.

// SelectivityFilter returns a shipdate range predicate keeping
// approximately frac of the rows.
func SelectivityFilter(cfg LineitemConfig, frac float64) expr.Predicate {
	if frac <= 0 {
		frac = 1.0 / float64(cfg.Rows)
	}
	if frac > 1 {
		frac = 1
	}
	hi := int64(float64(cfg.ShipDays)*frac) - 1
	if hi < 0 {
		hi = 0
	}
	return expr.NewBetween(LShipDate, 0, hi)
}

// PricingSummary is a TPC-H Q1-shaped aggregation: totals per return
// flag.
func PricingSummary() expr.GroupBy {
	return expr.GroupBy{
		GroupCols: []int{LReturnFlag},
		Aggs: []expr.AggSpec{
			{Func: expr.Count},
			{Func: expr.Sum, Col: LQuantity},
			{Func: expr.Sum, Col: LExtendedPrice},
			{Func: expr.Avg, Col: LDiscount},
		},
	}
}

// PartVolume groups by part key: a high-cardinality aggregation that
// stresses bounded pre-aggregation state.
func PartVolume() expr.GroupBy {
	return expr.GroupBy{
		GroupCols: []int{LPartKey},
		Aggs:      []expr.AggSpec{{Func: expr.Count}, {Func: expr.Sum, Col: LQuantity}},
	}
}

// KVGroupBy is the generic per-key aggregation over a GenKV table.
func KVGroupBy() expr.GroupBy {
	return expr.GroupBy{
		GroupCols: []int{0},
		Aggs:      []expr.AggSpec{{Func: expr.Count}, {Func: expr.Sum, Col: 1}},
	}
}

// Describe renders a config compactly for experiment tables.
func (cfg LineitemConfig) Describe() string {
	return fmt.Sprintf("lineitem rows=%d parts=%d", cfg.Rows, cfg.Parts)
}
