package plan

import (
	"testing"
	"testing/quick"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/fabric"
)

// Property: for arbitrary (valid) queries over arbitrary stats, the
// optimizer always yields at least one variant, the best-ranked one
// first, with non-negative estimates, and a cpu-only fallback always
// among the placements enumerated on a legacy fabric.
func TestOptimizerTotalityProperty(t *testing.T) {
	smart, err := FromCluster(fabric.NewCluster(fabric.DefaultClusterConfig()), 0)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := FromCluster(fabric.NewCluster(fabric.LegacyClusterConfig()), 0)
	if err != nil {
		t.Fatal(err)
	}

	f := func(rowsRaw uint32, selCol, aggCol uint8, hasFilter, hasGroup, count bool, distinct uint16) bool {
		st := testStats()
		st.Rows = int64(rowsRaw%10_000_000) + 1
		st.Distinct[1] = int64(distinct) + 1

		q := NewQuery("t")
		if hasFilter {
			q.WithFilter(expr.NewCmp(int(selCol)%2, expr.Lt, columnar.IntValue(int64(distinct))))
		}
		switch {
		case count:
			q.WithCount()
		case hasGroup:
			q.WithGroupBy(expr.GroupBy{
				GroupCols: []int{int(aggCol) % 2},
				Aggs:      []expr.AggSpec{{Func: expr.Count}, {Func: expr.Sum, Col: 2}},
			})
		default:
			q.WithProjection(2)
		}

		for _, pm := range []PathModel{smart, legacy} {
			opt := &Optimizer{Path: pm}
			variants, err := opt.Enumerate(q, st)
			if err != nil || len(variants) == 0 {
				return false
			}
			foundCPUOnly := false
			for _, v := range variants {
				if v.EstBytes < 0 || v.EstTime < 0 {
					return false
				}
				if v.Variant == "cpu-only" {
					foundCPUOnly = true
				}
			}
			if !foundCPUOnly {
				return false
			}
			// Ranking is consistent: Choose agrees with the head of
			// Enumerate (fresh plan objects, so compare identity by
			// variant name and estimates).
			best, err := opt.Choose(q, st)
			if err != nil || best.Variant != variants[0].Variant ||
				best.EstBytes != variants[0].EstBytes || best.EstTime != variants[0].EstTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: offload variants never move more estimated bytes than
// cpu-only for filtered projections (reduction can only help movement).
func TestOffloadNeverMovesMoreProperty(t *testing.T) {
	pm, err := FromCluster(fabric.NewCluster(fabric.DefaultClusterConfig()), 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := &Optimizer{Path: pm}
	f := func(distinct uint16) bool {
		st := testStats()
		st.Distinct[1] = int64(distinct%500) + 2
		q := NewQuery("t").
			WithFilter(expr.NewCmp(1, expr.Eq, columnar.IntValue(1))).
			WithProjection(2)
		variants, err := opt.Enumerate(q, st)
		if err != nil {
			return false
		}
		var cpuBytes int64 = -1
		for _, v := range variants {
			if v.Variant == "cpu-only" {
				cpuBytes = int64(v.EstBytes)
			}
		}
		for _, v := range variants {
			if v.Variant != "cpu-only" && int64(v.EstBytes) > cpuBytes {
				return false
			}
		}
		return cpuBytes >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
