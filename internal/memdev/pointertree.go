package memdev

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// PointerTree is a B+-tree-shaped hierarchical structure resident in
// memory, used to evaluate Section 5.4's pointer-chasing functional
// unit: "given a data block format and a key, traverse a hierarchical
// structure and only send leaf data blocks up the pipeline".
type PointerTree struct {
	Fanout int
	// levels[0] is the root level (one node), the last level holds
	// leaves. Each internal node stores Fanout separator keys; each leaf
	// stores Fanout key/value pairs.
	levels [][]treeNode
}

type treeNode struct {
	keys []int64
	vals []int64 // leaves only
}

// NodeBytes is the transfer size of one tree node: keys plus values or
// child pointers at 8 bytes each.
func (t *PointerTree) NodeBytes() sim.Bytes {
	return sim.Bytes(t.Fanout * 16)
}

// Depth reports the number of levels (root to leaf inclusive).
func (t *PointerTree) Depth() int { return len(t.levels) }

// NumKeys reports the number of stored keys.
func (t *PointerTree) NumKeys() int {
	n := 0
	for _, leaf := range t.levels[len(t.levels)-1] {
		n += len(leaf.keys)
	}
	return n
}

// BuildPointerTree builds a tree over the given key/value pairs with the
// given fanout. Keys are sorted internally.
func BuildPointerTree(keys, vals []int64, fanout int) (*PointerTree, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("memdev: %d keys but %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("memdev: cannot build empty pointer tree")
	}
	if fanout < 2 {
		return nil, fmt.Errorf("memdev: fanout %d < 2", fanout)
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })

	// Leaves.
	var leaves []treeNode
	for off := 0; off < len(idx); off += fanout {
		end := off + fanout
		if end > len(idx) {
			end = len(idx)
		}
		var n treeNode
		for _, i := range idx[off:end] {
			n.keys = append(n.keys, keys[i])
			n.vals = append(n.vals, vals[i])
		}
		leaves = append(leaves, n)
	}
	levels := [][]treeNode{leaves}
	// Internal levels: each node stores the max key of each child.
	for len(levels[0]) > 1 {
		children := levels[0]
		var parents []treeNode
		for off := 0; off < len(children); off += fanout {
			end := off + fanout
			if end > len(children) {
				end = len(children)
			}
			var n treeNode
			for _, c := range children[off:end] {
				n.keys = append(n.keys, c.keys[len(c.keys)-1])
			}
			parents = append(parents, n)
		}
		levels = append([][]treeNode{parents}, levels...)
	}
	return &PointerTree{Fanout: fanout, levels: levels}, nil
}

// lookupPath walks root-to-leaf and returns the value plus the number of
// nodes visited. found is false for absent keys.
func (t *PointerTree) lookupPath(key int64) (val int64, hops int, found bool) {
	node := 0
	for lvl := 0; lvl < len(t.levels); lvl++ {
		n := &t.levels[lvl][node]
		hops++
		if lvl == len(t.levels)-1 {
			for i, k := range n.keys {
				if k == key {
					return n.vals[i], hops, true
				}
			}
			return 0, hops, false
		}
		// Pick the first child whose max key covers ours.
		child := len(n.keys) - 1
		for i, k := range n.keys {
			if key <= k {
				child = i
				break
			}
		}
		node = node*t.Fanout + child
	}
	return 0, hops, false
}

// LookupCPU performs the traversal CPU-side: every visited node crosses
// link (one round trip per hop — the CPU must see the node before it can
// decide which block to request next). The movement dominates; the
// CPU's own work per hop is the 8-byte pointer decision.
func (t *PointerTree) LookupCPU(key int64, link *fabric.Link, cpu *fabric.Device) (int64, bool, AccessStats) {
	var st AccessStats
	val, hops, found := t.lookupPath(key)
	for i := 0; i < hops; i++ {
		// Request message up, node payload down.
		st.Time += link.Message()
		st.Time += link.Transfer(t.NodeBytes())
		st.Time += cpu.Charge(fabric.OpPointerChase, 8)
		st.BytesMoved += t.NodeBytes()
	}
	return val, found, st
}

// LookupNear performs the traversal on the near-memory accelerator: the
// walk happens at DRAM latency per hop and only the 16-byte leaf entry
// crosses the link.
func (t *PointerTree) LookupNear(key int64, mem *Memory, link *fabric.Link) (int64, bool, AccessStats, error) {
	var st AccessStats
	if mem.Accel == nil {
		return 0, false, st, fmt.Errorf("memdev: %s has no near-memory accelerator", mem.Name)
	}
	val, hops, found := t.lookupPath(key)
	for i := 0; i < hops; i++ {
		st.Time += fabric.DDRLatency
		st.Time += mem.Accel.Charge(fabric.OpPointerChase, t.NodeBytes())
	}
	st.Time += link.Transfer(16)
	st.BytesMoved = 16
	return val, found, st, nil
}
