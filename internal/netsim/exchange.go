// Package netsim implements processing on the network (paper Section 4):
// the exchange operator executed by a smart NIC that partitions data on
// the fly and scatters it to compute nodes without CPU involvement
// (Figure 4), plus the collective operations (broadcast, gather) the
// paper says smart NICs should expose.
package netsim

import (
	"fmt"

	"repro/internal/columnar"
	"repro/internal/exec"
	"repro/internal/fabric"
	"repro/internal/flow"
	"repro/internal/sim"
)

// Destination is one receiver of scattered data: the fabric path to it
// and the consumer that handles its share.
type Destination struct {
	Path []*fabric.Link
	Sink flow.Emit
}

// Exchange is a hash-partitioning scatter stage. Placed on a smart NIC
// it implements the paper's "partition the data on the fly ... without
// involvement of the CPU"; placed on a CPU it is the baseline exchange
// operator.
type Exchange struct {
	KeyCol int
	Dests  []Destination
	// BatchRows is the output granule per destination; default 1024.
	BatchRows int

	builders []*columnar.Batch
	schema   *columnar.Schema
	sent     []int64
}

// NewExchange builds an exchange over the given destinations.
func NewExchange(keyCol int, dests []Destination) (*Exchange, error) {
	if len(dests) == 0 {
		return nil, fmt.Errorf("netsim: exchange needs at least one destination")
	}
	return &Exchange{KeyCol: keyCol, Dests: dests, BatchRows: 1024, sent: make([]int64, len(dests))}, nil
}

// Name implements flow.Stage.
func (e *Exchange) Name() string { return fmt.Sprintf("exchange(col%d,x%d)", e.KeyCol, len(e.Dests)) }

// Process implements flow.Stage: route each row to its partition's
// builder and ship builders as they fill.
func (e *Exchange) Process(b *columnar.Batch, emit flow.Emit) error {
	if e.schema == nil {
		e.schema = b.Schema()
		e.builders = make([]*columnar.Batch, len(e.Dests))
		for i := range e.builders {
			e.builders[i] = columnar.NewBatch(e.schema, e.BatchRows)
		}
	}
	col := b.Col(e.KeyCol)
	for i := 0; i < b.NumRows(); i++ {
		d := exec.PartitionOf(exec.HashValue(col, i, exec.SeedPartition), len(e.Dests))
		e.builders[d].AppendRow(b.Row(i)...)
		if e.builders[d].NumRows() >= e.BatchRows {
			if err := e.ship(d); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush implements flow.Stage: drain every partial builder.
func (e *Exchange) Flush(flow.Emit) error {
	for d := range e.Dests {
		if e.builders != nil && e.builders[d].NumRows() > 0 {
			if err := e.ship(d); err != nil {
				return err
			}
		}
	}
	return nil
}

// ship sends builder d's contents down its path and resets it.
func (e *Exchange) ship(d int) error {
	out := e.builders[d]
	e.builders[d] = columnar.NewBatch(e.schema, e.BatchRows)
	n := sim.Bytes(out.ByteSize())
	for _, l := range e.Dests[d].Path {
		l.Transfer(n)
	}
	e.sent[d] += int64(out.NumRows())
	return e.Dests[d].Sink(out)
}

// SentRows reports rows shipped per destination, for skew inspection.
func (e *Exchange) SentRows() []int64 {
	out := make([]int64, len(e.sent))
	copy(out, e.sent)
	return out
}

// Broadcast replicates a batch to every destination, charging device for
// the replication work and every path for the traffic — the collective
// communication (Section 4.4) used to ship small build sides.
func Broadcast(b *columnar.Batch, device *fabric.Device, dests []Destination) error {
	n := sim.Bytes(b.ByteSize())
	for _, d := range dests {
		if device != nil {
			device.Charge(fabric.OpPartition, n)
		}
		for _, l := range d.Path {
			l.Transfer(n)
		}
		if err := d.Sink(b); err != nil {
			return err
		}
	}
	return nil
}

// Gather collects batches from several per-node result sets into one
// slice, charging each path for its traffic. The batches arrive in node
// order for determinism.
func Gather(parts [][]*columnar.Batch, paths [][]*fabric.Link) []*columnar.Batch {
	var out []*columnar.Batch
	for i, part := range parts {
		for _, b := range part {
			if i < len(paths) {
				n := sim.Bytes(b.ByteSize())
				for _, l := range paths[i] {
					l.Transfer(n)
				}
			}
			out = append(out, b)
		}
	}
	return out
}
