// Command ctxcheck enforces the query-lifecycle contract introduced in
// the lifecycle PR: every exported entry point that executes, runs, or
// scans on behalf of a query must accept a context.Context as its first
// parameter, so deadlines and cancellation propagate end to end instead
// of dying at the first layer that forgot to thread them.
//
// It walks the non-test Go files under the given roots (default:
// internal/) and flags exported functions and methods that are named
// "Run" or "Scan", or whose name starts with "Execute", yet do not take
// a context.Context first. Findings are printed one per line as
// file:line: message, and the exit status is nonzero when any exist —
// the same shape as go vet, so CI can run it as an extra vet pass.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal"}
	}
	findings := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			n, err := checkFile(path)
			findings += n
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctxcheck: %v\n", err)
			os.Exit(2)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ctxcheck: %d lifecycle entry point(s) missing a context.Context first parameter\n", findings)
		os.Exit(1)
	}
}

// checkFile reports every lifecycle-named exported func in one file
// whose signature breaks the context-first contract.
func checkFile(path string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || !fn.Name.IsExported() || !lifecycleName(fn.Name.Name) {
			continue
		}
		if takesContextFirst(fn.Type) {
			continue
		}
		pos := fset.Position(fn.Pos())
		fmt.Printf("%s:%d: exported %s %s must take a context.Context first parameter\n",
			pos.Filename, pos.Line, declKind(fn), fn.Name.Name)
		findings++
	}
	return findings, nil
}

// lifecycleName says whether the name marks a query-lifecycle entry
// point: Run and Scan exactly, or any Execute* variant.
func lifecycleName(name string) bool {
	return name == "Run" || name == "Scan" || strings.HasPrefix(name, "Execute")
}

func declKind(fn *ast.FuncDecl) string {
	if fn.Recv != nil {
		return "method"
	}
	return "func"
}

// takesContextFirst matches a first parameter of type context.Context,
// by syntax — the check runs without type information.
func takesContextFirst(ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	sel, ok := ft.Params.List[0].Type.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context"
}
