package experiments

import (
	"context"
	"fmt"

	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// e22SegmentRows keeps segments small so a scan has many morsels to
// spread over a worker pool; one morsel is one segment.
const e22SegmentRows = 8192

// E22Workers is the worker sweep both engines run.
var E22Workers = []int{1, 2, 4, 8}

// E22Result carries the scaling curves for assertions.
type E22Result struct {
	Table *Table

	Workers []int
	// SimTime per worker count, index-aligned with Workers.
	DataFlowSim []sim.VTime
	VolcanoSim  []sim.VTime
	// Speedup vs the same engine at one worker.
	DataFlowSpeedup []float64
	VolcanoSpeedup  []float64
	// Rows every run returned (they must all agree).
	Rows int64
}

// E22Parallelism measures morsel-driven intra-query parallelism on a
// scan-heavy workload: the same filtered projection runs on both engines
// at 1, 2, 4 and 8 workers, and the curves show where each engine's
// speedup saturates. The dataflow engine splits the storage scan into
// per-segment morsels across the smart SSD's compute units, so it scales
// near-linearly until the serial media path (the NVMe link) becomes the
// floor; the pull baseline can only parallelize its fetch/decode front —
// every operator above the scan stays serial — so it flattens much
// earlier, where the network link and the serial operator chain
// saturate. Results and metered byte totals are identical at every
// worker count; only the busy-time split (and therefore SimTime) moves.
// The sweep argument overrides the worker counts to run; nil means
// E22Workers.
func E22Parallelism(rows int, sweep []int) (*E22Result, error) {
	if len(sweep) == 0 {
		sweep = E22Workers
	}
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.15)).
		WithProjection(workload.LOrderKey, workload.LExtendedPrice)

	res := &E22Result{
		Table: &Table{
			ID:    "E22",
			Title: "Morsel-driven intra-query parallelism: speedup vs workers, dataflow vs volcano",
			Header: []string{"engine", "workers", "simtime", "speedup",
				"moved bytes", "rows"},
			Notes: "one morsel = one storage segment; dataflow scales until the serial NVMe " +
				"media path floors it, volcano only parallelizes fetch/decode and flattens " +
				"at the network link + serial operator chain; bytes and rows are identical " +
				"at every worker count",
		},
		Workers: append([]int(nil), sweep...),
	}

	var movedDF, movedVO sim.Bytes
	for i, w := range sweep {
		dfSim, dfMoved, dfRows, err := e22DataFlow(q, data, w)
		if err != nil {
			return nil, err
		}
		voSim, voMoved, voRows, err := e22Volcano(q, data, w)
		if err != nil {
			return nil, err
		}
		if dfRows != voRows {
			return nil, fmt.Errorf("experiments: E22 engines disagree at %d workers (%d vs %d rows)", w, dfRows, voRows)
		}
		if i == 0 {
			res.Rows, movedDF, movedVO = dfRows, dfMoved, voMoved
		}
		if dfRows != res.Rows || dfMoved != movedDF || voMoved != movedVO {
			return nil, fmt.Errorf("experiments: E22 run at %d workers is not deterministic (rows %d, moved %v/%v)",
				w, dfRows, dfMoved, voMoved)
		}
		res.DataFlowSim = append(res.DataFlowSim, dfSim)
		res.VolcanoSim = append(res.VolcanoSim, voSim)
		res.DataFlowSpeedup = append(res.DataFlowSpeedup, float64(res.DataFlowSim[0])/float64(dfSim))
		res.VolcanoSpeedup = append(res.VolcanoSpeedup, float64(res.VolcanoSim[0])/float64(voSim))
		res.Table.AddRow("dataflow", d(int64(w)), dfSim.String(),
			f(res.DataFlowSpeedup[i]), d(int64(dfMoved)), d(dfRows))
		res.Table.AddRow("volcano", d(int64(w)), voSim.String(),
			f(res.VolcanoSpeedup[i]), d(int64(voMoved)), d(voRows))
	}

	for i, w := range res.Workers {
		res.Table.SetMetric(fmt.Sprintf("dataflow_speedup_w%d", w), res.DataFlowSpeedup[i])
		res.Table.SetMetric(fmt.Sprintf("volcano_speedup_w%d", w), res.VolcanoSpeedup[i])
		res.Table.SetMetric(fmt.Sprintf("dataflow_vs_volcano_w%d", w),
			float64(res.VolcanoSim[i])/float64(res.DataFlowSim[i]))
	}
	return res, nil
}

// e22DataFlow runs the query on a fresh dataflow engine at the given
// worker count, forcing the filter-pushdown variant so every worker
// sweep exercises the same plan shape.
func e22DataFlow(q *plan.Query, data *columnar.Batch, workers int) (sim.VTime, sim.Bytes, int64, error) {
	df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	df.Workers = workers
	df.Storage.SegmentRows = e22SegmentRows
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return 0, 0, 0, err
	}
	if err := df.Load("lineitem", data); err != nil {
		return 0, 0, 0, err
	}
	variants, err := df.Plan(q, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	ph := variants[0]
	for _, v := range variants {
		if v.HasPlacement(fabric.OpFilter, plan.SiteStorage) {
			ph = v
			break
		}
	}
	res, err := df.ExecutePlan(context.Background(), ph)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Stats.SimTime, res.Stats.MovedBytes, res.Rows(), nil
}

// e22Volcano runs the query on a fresh pull baseline at the given
// worker count.
func e22Volcano(q *plan.Query, data *columnar.Batch, workers int) (sim.VTime, sim.Bytes, int64, error) {
	vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 256*sim.MB)
	vo.Workers = workers
	vo.Storage.SegmentRows = e22SegmentRows
	if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return 0, 0, 0, err
	}
	if err := vo.Load("lineitem", data); err != nil {
		return 0, 0, 0, err
	}
	res, err := vo.Execute(context.Background(), q)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Stats.SimTime, res.Stats.MovedBytes, res.Rows(), nil
}
