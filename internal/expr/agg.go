package expr

import (
	"fmt"

	"repro/internal/columnar"
)

// AggFunc is an aggregate function.
type AggFunc uint8

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

// String renders the function in SQL style.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	}
	return fmt.Sprintf("AggFunc(%d)", uint8(f))
}

// AggSpec is one aggregate over one input column. Count ignores Col.
type AggSpec struct {
	Func AggFunc
	Col  int
}

// String renders the spec.
func (a AggSpec) String() string {
	if a.Func == Count {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(col%d)", a.Func, a.Col)
}

// GroupBy describes a (possibly empty) group-by with aggregates.
// An empty GroupCols list is a scalar aggregation.
type GroupBy struct {
	GroupCols []int
	Aggs      []AggSpec
}

// OutputSchema derives the result schema: group columns first, then one
// column per aggregate. Avg and Count produce DOUBLE and BIGINT; Sum
// follows the input type; Min/Max keep the input type.
func (g GroupBy) OutputSchema(in *columnar.Schema) *columnar.Schema {
	fields := make([]columnar.Field, 0, len(g.GroupCols)+len(g.Aggs))
	for _, c := range g.GroupCols {
		fields = append(fields, in.Fields[c])
	}
	for _, a := range g.Aggs {
		switch a.Func {
		case Count:
			fields = append(fields, columnar.Field{Name: "count", Type: columnar.Int64})
		case Avg:
			fields = append(fields, columnar.Field{
				Name: fmt.Sprintf("avg_%s", in.Fields[a.Col].Name), Type: columnar.Float64})
		case Sum:
			fields = append(fields, columnar.Field{
				Name: fmt.Sprintf("sum_%s", in.Fields[a.Col].Name), Type: in.Fields[a.Col].Type})
		case Min:
			fields = append(fields, columnar.Field{
				Name: fmt.Sprintf("min_%s", in.Fields[a.Col].Name), Type: in.Fields[a.Col].Type})
		case Max:
			fields = append(fields, columnar.Field{
				Name: fmt.Sprintf("max_%s", in.Fields[a.Col].Name), Type: in.Fields[a.Col].Type})
		}
	}
	return &columnar.Schema{Fields: fields}
}

// AggState accumulates one aggregate for one group. Partial states
// combine associatively, which is what lets the paper's staged
// pre-aggregation pipeline (Section 4.4) split one group-by across
// storage, both NICs, and the CPU.
type AggState struct {
	Count int64
	SumI  int64
	SumF  float64
	MinI  int64
	MaxI  int64
	MinF  float64
	MaxF  float64
	seen  bool
}

// UpdateInt folds one non-null int64 value into the state.
func (s *AggState) UpdateInt(v int64) {
	s.Count++
	s.SumI += v
	s.SumF += float64(v)
	if !s.seen || v < s.MinI {
		s.MinI = v
	}
	if !s.seen || v > s.MaxI {
		s.MaxI = v
	}
	if !s.seen || float64(v) < s.MinF {
		s.MinF = float64(v)
	}
	if !s.seen || float64(v) > s.MaxF {
		s.MaxF = float64(v)
	}
	s.seen = true
}

// UpdateFloat folds one non-null float64 value into the state.
func (s *AggState) UpdateFloat(v float64) {
	s.Count++
	s.SumF += v
	s.SumI += int64(v)
	if !s.seen || v < s.MinF {
		s.MinF = v
	}
	if !s.seen || v > s.MaxF {
		s.MaxF = v
	}
	if !s.seen || int64(v) < s.MinI {
		s.MinI = int64(v)
	}
	if !s.seen || int64(v) > s.MaxI {
		s.MaxI = int64(v)
	}
	s.seen = true
}

// UpdateCountOnly folds a row that only contributes to COUNT.
func (s *AggState) UpdateCountOnly() {
	s.Count++
	s.seen = true
}

// Merge folds another partial state into s. Merging is what downstream
// pipeline stages do with upstream partials.
func (s *AggState) Merge(o *AggState) {
	if !o.seen {
		return
	}
	if !s.seen {
		*s = *o
		return
	}
	s.Count += o.Count
	s.SumI += o.SumI
	s.SumF += o.SumF
	if o.MinI < s.MinI {
		s.MinI = o.MinI
	}
	if o.MaxI > s.MaxI {
		s.MaxI = o.MaxI
	}
	if o.MinF < s.MinF {
		s.MinF = o.MinF
	}
	if o.MaxF > s.MaxF {
		s.MaxF = o.MaxF
	}
}

// Result extracts the final value for the given function and output type.
func (s *AggState) Result(f AggFunc, t columnar.Type) columnar.Value {
	if !s.seen && f != Count {
		return columnar.NullValue(t)
	}
	switch f {
	case Count:
		return columnar.IntValue(s.Count)
	case Avg:
		if s.Count == 0 {
			return columnar.NullValue(columnar.Float64)
		}
		return columnar.FloatValue(s.SumF / float64(s.Count))
	case Sum:
		if t == columnar.Float64 {
			return columnar.FloatValue(s.SumF)
		}
		return columnar.IntValue(s.SumI)
	case Min:
		if t == columnar.Float64 {
			return columnar.FloatValue(s.MinF)
		}
		return columnar.IntValue(s.MinI)
	case Max:
		if t == columnar.Float64 {
			return columnar.FloatValue(s.MaxF)
		}
		return columnar.IntValue(s.MaxI)
	}
	panic(fmt.Sprintf("expr: unknown aggregate %v", f))
}

// StateSize is the approximate in-memory footprint of one AggState plus
// its hash-table entry, used to enforce accelerator state budgets.
const StateSize = 96
