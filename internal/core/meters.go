package core

import (
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/sim"
)

// meterKey identifies one device or link meter.
type meterKey struct {
	link bool
	name string
}

// snapshotClusterMeters captures every device and link meter so a later
// delta isolates one execution's work from the cluster's running totals.
func snapshotClusterMeters(c *fabric.Cluster) map[meterKey]sim.Snapshot {
	out := make(map[meterKey]sim.Snapshot)
	for _, d := range c.Devices() {
		out[meterKey{false, d.Name}] = d.Meter.Snapshot()
	}
	for _, l := range c.Links() {
		out[meterKey{true, l.Name}] = l.Meter.Snapshot()
	}
	return out
}

func (e *DataFlowEngine) snapshotMeters() map[meterKey]sim.Snapshot {
	return snapshotClusterMeters(e.Cluster)
}

func (e *VolcanoEngine) snapshotMeters() map[meterKey]sim.Snapshot {
	return snapshotClusterMeters(e.Cluster)
}

// sampleMeterSeries snapshots every cluster meter's query-lifecycle
// delta into named trace series: one point at virtual time 0 and one at
// the trace makespan. Deterministic: devices and links iterate in the
// cluster's fixed order. Meters that did no work are skipped.
func sampleMeterSeries(c *fabric.Cluster, tr *obs.Trace, before map[meterKey]sim.Snapshot) {
	if !tr.Enabled() {
		return
	}
	mk := tr.Makespan()
	for _, d := range c.Devices() {
		delta := d.Meter.Snapshot().Sub(before[meterKey{false, d.Name}])
		if delta.Bytes == 0 && delta.Busy == 0 {
			continue
		}
		tr.Sample("meter."+d.Name+".bytes", "bytes", 0, 0)
		tr.Sample("meter."+d.Name+".bytes", "bytes", mk, float64(delta.Bytes))
		tr.Sample("meter."+d.Name+".busy", "vns", 0, 0)
		tr.Sample("meter."+d.Name+".busy", "vns", mk, float64(delta.Busy))
	}
	for _, l := range c.Links() {
		delta := l.Meter.Snapshot().Sub(before[meterKey{true, l.Name}])
		if delta.Bytes == 0 && delta.Messages == 0 {
			continue
		}
		tr.Sample("meter."+l.Name+".bytes", "bytes", 0, 0)
		tr.Sample("meter."+l.Name+".bytes", "bytes", mk, float64(delta.Bytes))
		tr.Sample("meter."+l.Name+".messages", "count", 0, 0)
		tr.Sample("meter."+l.Name+".messages", "count", mk, float64(delta.Messages))
	}
}
