package experiments

import "testing"

// TestE22Parallelism checks the acceptance criteria for morsel-driven
// intra-query parallelism: at four workers the dataflow engine is at
// least 2x its single-worker time on the scan-heavy workload, scaling
// is near-linear until the serial media path saturates (so eight
// workers add little over four), and dataflow beats the pull baseline
// at every worker count. E22Parallelism itself verifies that rows and
// metered byte totals are identical at every worker count.
func TestE22Parallelism(t *testing.T) {
	res, err := E22Parallelism(160_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		t.Log(row)
	}
	for i, w := range res.Workers {
		t.Logf("w=%d dataflow speedup %.2f volcano speedup %.2f (df %v vo %v)",
			w, res.DataFlowSpeedup[i], res.VolcanoSpeedup[i], res.DataFlowSim[i], res.VolcanoSim[i])
	}

	idx := func(w int) int {
		for i, ww := range res.Workers {
			if ww == w {
				return i
			}
		}
		t.Fatalf("worker count %d not in sweep %v", w, res.Workers)
		return -1
	}

	// >=2x at four workers.
	if s := res.DataFlowSpeedup[idx(4)]; s < 2.0 {
		t.Errorf("dataflow speedup at 4 workers = %.2f, want >= 2.0", s)
	}
	// Near-linear at two workers: at least 1.6x.
	if s := res.DataFlowSpeedup[idx(2)]; s < 1.6 {
		t.Errorf("dataflow speedup at 2 workers = %.2f, want >= 1.6 (near-linear)", s)
	}
	// Saturation: once the serial media link floors the scan, doubling
	// workers again buys almost nothing.
	gain := res.DataFlowSpeedup[idx(8)] / res.DataFlowSpeedup[idx(4)]
	if gain > 1.25 {
		t.Errorf("dataflow 4->8 workers still gained %.2fx, want saturation (<= 1.25x)", gain)
	}
	// Dataflow beats the pull baseline at every worker count.
	for i, w := range res.Workers {
		if res.DataFlowSim[i] >= res.VolcanoSim[i] {
			t.Errorf("at %d workers dataflow (%v) is not faster than volcano (%v)",
				w, res.DataFlowSim[i], res.VolcanoSim[i])
		}
	}
	// Speedups never regress below 1 (more workers never slower).
	for i, w := range res.Workers {
		if res.DataFlowSpeedup[i] < 0.99 {
			t.Errorf("dataflow at %d workers slower than serial (speedup %.2f)", w, res.DataFlowSpeedup[i])
		}
		if res.VolcanoSpeedup[i] < 0.99 {
			t.Errorf("volcano at %d workers slower than serial (speedup %.2f)", w, res.VolcanoSpeedup[i])
		}
	}
	if res.Rows <= 0 {
		t.Fatalf("E22 returned no rows")
	}
}
