package experiments

import (
	"testing"

	"repro/internal/sim"
)

func TestE16StallsGrowWithWorkingSet(t *testing.T) {
	res, err := E16CacheStalls()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	// Random-access stall share grows monotonically with the working
	// set and saturates near 1.
	for i := 1; i < len(rows); i++ {
		if rows[i].RndStall+0.02 < rows[i-1].RndStall {
			t.Errorf("random stall share fell: %.2f -> %.2f", rows[i-1].RndStall, rows[i].RndStall)
		}
	}
	last := rows[len(rows)-1]
	if last.RndStall < 0.8 {
		t.Errorf("1GiB random stall share %.2f, want ~1", last.RndStall)
	}
	if last.TLBMissRnd < 0.5 {
		t.Errorf("1GiB TLB miss rate %.2f, want high", last.TLBMissRnd)
	}
	// Sequential scans stall far less than random at large sizes.
	if last.SeqStall >= last.RndStall {
		t.Errorf("sequential stall %.2f >= random %.2f", last.SeqStall, last.RndStall)
	}
	// Near-memory filtering keeps ~95% of bytes out of the hierarchy.
	if res.NearHierTime*10 >= res.CPUHierTime {
		t.Errorf("near hierarchy time %v not ≪ cpu %v", res.NearHierTime, res.CPUHierTime)
	}
}

func TestA1CompressionCrossover(t *testing.T) {
	res, err := A1WireCompression(30000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Ratio >= 1 {
		t.Fatalf("segment did not compress (ratio %.2f)", res.Rows[0].Ratio)
	}
	// Compression must win on the slowest link and lose on the fastest
	// (software compressor 2GB/s vs a 200GB/s link).
	if !res.Rows[0].Wins {
		t.Errorf("compression lost on %s", res.Rows[0].Tier)
	}
	if last := res.Rows[len(res.Rows)-1]; last.Wins {
		t.Errorf("compression won on %s despite 2GB/s compressor", last.Tier)
	}
	// There is exactly one crossover: wins are a prefix.
	seenLoss := false
	for _, row := range res.Rows {
		if !row.Wins {
			seenLoss = true
		} else if seenLoss {
			t.Error("compression re-won after losing: no clean crossover")
		}
	}
}

func TestA2FasterNICsStopHelping(t *testing.T) {
	res, err := A2NICTierSweep(30000)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	// Makespans are non-increasing with NIC speed...
	for i := 1; i < len(rows); i++ {
		if rows[i].Makespan > rows[i-1].Makespan {
			t.Errorf("faster NIC slower: %v -> %v", rows[i-1].Makespan, rows[i].Makespan)
		}
	}
	// ...and the two fastest tiers are equal: the bottleneck has moved
	// off the network (the paper's "we will not lack bandwidth").
	if rows[len(rows)-1].Makespan != rows[len(rows)-2].Makespan {
		t.Errorf("1.6T still faster than 800G: network still the bottleneck")
	}
	if rows[len(rows)-1].Bottleneck == "" {
		t.Error("no bottleneck identified")
	}
}

func TestA3FinerSegmentsPruneMore(t *testing.T) {
	res, err := A3SegmentSize(60000)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	// Unpruned rows (segments surviving x rows per segment) must not
	// shrink as segments get coarser: finer zone maps are at least as
	// tight. (Media bytes can wiggle slightly with encoding overheads,
	// so assert on rows, the quantity zone maps actually control.)
	for i := 1; i < len(rows); i++ {
		scanned := func(r A3Row) int64 {
			return int64(r.Total-r.Pruned) * int64(r.SegmentRows)
		}
		if scanned(rows[i]) < scanned(rows[i-1]) {
			t.Errorf("coarser segments scanned fewer rows: %d -> %d",
				scanned(rows[i-1]), scanned(rows[i]))
		}
	}
	if rows[0].Pruned == 0 {
		t.Error("finest segmentation pruned nothing")
	}
	// The finest granularity must scan dramatically less than the
	// coarsest for a 5% clustered range.
	finest := int64(rows[0].Total-rows[0].Pruned) * int64(rows[0].SegmentRows)
	coarsest := int64(rows[len(rows)-1].Total-rows[len(rows)-1].Pruned) * int64(rows[len(rows)-1].SegmentRows)
	if finest*2 >= coarsest {
		t.Errorf("finest scanned %d rows vs coarsest %d; pruning advantage missing", finest, coarsest)
	}
}

func TestA4SmallerBudgetsSpillMore(t *testing.T) {
	res, err := A4StateBudget(60000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	for i := 1; i < len(rows); i++ {
		if rows[i].ShippedRows > rows[i-1].ShippedRows {
			t.Errorf("larger budget shipped more: %d -> %d", rows[i-1].ShippedRows, rows[i].ShippedRows)
		}
	}
	// The unbounded budget ships exactly the distinct-key count once.
	last := rows[len(rows)-1]
	if last.ShippedRows > 20000 {
		t.Errorf("unbounded budget shipped %d rows for <=20000 keys", last.ShippedRows)
	}
	if rows[0].ShippedRows <= last.ShippedRows {
		t.Error("tiny budget did not spill more than unbounded")
	}
}

func TestE17OffloadReducesNetworkAndCPU(t *testing.T) {
	res, err := E17DisaggregatedMemory(50000, []float64{0.01, 0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.OffloadBytes >= row.PullBytes {
			t.Errorf("sel %.2f: offload net %v >= pull %v", row.Selectivity, row.OffloadBytes, row.PullBytes)
		}
		if row.CPUBusyOff >= row.CPUBusyPull {
			t.Errorf("sel %.2f: offload CPU %v >= pull %v", row.Selectivity, row.CPUBusyOff, row.CPUBusyPull)
		}
	}
	// The byte advantage tracks 1/selectivity.
	g0 := float64(res.Rows[0].PullBytes) / float64(res.Rows[0].OffloadBytes)
	g2 := float64(res.Rows[2].PullBytes) / float64(res.Rows[2].OffloadBytes)
	if g0 <= g2 {
		t.Errorf("gain did not grow as selectivity dropped: %.1f vs %.1f", g0, g2)
	}
}

func TestE18TransposeUnit(t *testing.T) {
	res, err := E18HTAPTranspose([]int{10000, 100000})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// The unit ships only a completion token; the CPU path drags
		// the region both ways.
		if row.NearBytes != 8 {
			t.Errorf("rows=%d: near moved %v, want 8B", row.Rows, row.NearBytes)
		}
		if row.CPUBytes < 2*sim.Bytes(row.Rows)*16 {
			t.Errorf("rows=%d: cpu moved %v, want >= 2x region", row.Rows, row.CPUBytes)
		}
		if row.NearTime >= row.CPUTime {
			t.Errorf("rows=%d: near %v >= cpu %v", row.Rows, row.NearTime, row.CPUTime)
		}
	}
	// Both paths scale with region size; the gap persists.
	if res.Rows[1].CPUTime <= res.Rows[0].CPUTime {
		t.Error("cpu path did not scale with region size")
	}
}

func TestA5ScaleOutShrinksPerNodeWork(t *testing.T) {
	res, err := A5ScaleOut(40000, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxCPUBusy >= rows[i-1].MaxCPUBusy {
			t.Errorf("%d nodes: busiest CPU %v >= %d nodes: %v",
				rows[i].Nodes, rows[i].MaxCPUBusy, rows[i-1].Nodes, rows[i-1].MaxCPUBusy)
		}
	}
	// Doubling nodes roughly halves per-node aggregation work.
	ratio := float64(rows[0].MaxCPUBusy) / float64(rows[2].MaxCPUBusy)
	if ratio < 2.5 {
		t.Errorf("1->4 nodes cut busiest CPU only %.1fx, want ~4x", ratio)
	}
}
