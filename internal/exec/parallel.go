package exec

import (
	"sync"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/flow"
	"repro/internal/sim"
)

// Worker-pool declarations for the flow runtime (morsel-driven
// parallelism). A stage that implements flow.ParallelStage may be
// replicated across a per-device worker pool; see flow.ParallelStage
// for the contract. The pure per-batch stages share themselves — they
// hold only read-only configuration — while stateful stages hand out
// fresh replicas and rely on the runtime's deterministic round-robin
// routing.
//
// Deliberately serial: CountStage, TopKStage, SortStage, LimitStage and
// FinalAggStage (their retained state is the result, and splitting it
// would change what reaches the sink), EncryptStage/DecryptStage (the
// stream cipher's nonce sequence is order-sensitive), and BuildStage
// (the table itself parallelizes internally; see PartitionedHashTable).

// NewWorker implements flow.ParallelStage; the predicate is read-only.
func (s *FilterStage) NewWorker() flow.Stage { return s }

// Stateless implements flow.ParallelStage.
func (s *FilterStage) Stateless() bool { return true }

// NewWorker implements flow.ParallelStage; the column list is read-only.
func (s *ProjectStage) NewWorker() flow.Stage { return s }

// Stateless implements flow.ParallelStage.
func (s *ProjectStage) Stateless() bool { return true }

// NewWorker implements flow.ParallelStage; key column and seed are
// read-only.
func (s *HashStage) NewWorker() flow.Stage { return s }

// Stateless implements flow.ParallelStage.
func (s *HashStage) Stateless() bool { return true }

// NewWorker implements flow.ParallelStage.
func (s *CompressStage) NewWorker() flow.Stage { return s }

// Stateless implements flow.ParallelStage.
func (s *CompressStage) Stateless() bool { return true }

// NewWorker implements flow.ParallelStage: probing only reads the
// pre-built table, so replicas share it.
func (s *HashJoinStage) NewWorker() flow.Stage { return s }

// Stateless implements flow.ParallelStage.
func (s *HashJoinStage) Stateless() bool { return true }

// NewWorker implements flow.ParallelStage: each worker aggregates into
// its own replica (parallel partial aggregation). The round-robin input
// share makes every replica's group state — and any budget spills it
// emits — deterministic; the downstream final aggregation merges the
// replicas' partials exactly as it merges partials from distinct
// devices. Note the state budget applies per replica.
func (s *PreAggStage) NewWorker() flow.Stage {
	return &PreAggStage{
		Agg: expr.NewPartialAggregator(s.Agg.Spec, s.Agg.In, s.Agg.MaxGroups),
		Raw: s.Raw,
	}
}

// Stateless implements flow.ParallelStage.
func (s *PreAggStage) Stateless() bool { return false }

// JoinTable is the equi-join core behind the join operators: the serial
// HashTable or the PartitionedHashTable that builds in parallel.
type JoinTable interface {
	Build(b *columnar.Batch)
	Probe(probe *columnar.Batch, probeKey int) *columnar.Batch
	OutputSchema(probe *columnar.Schema) *columnar.Schema
	Rows() int64
	MemBytes() sim.Bytes
}

var (
	_ JoinTable = (*HashTable)(nil)
	_ JoinTable = (*PartitionedHashTable)(nil)
)

// joinPart is one key partition of a PartitionedHashTable.
type joinPart struct {
	intMap map[int64][]rowRef
	strMap map[string][]rowRef
}

// PartitionedHashTable is a hash-join table split into disjoint key
// partitions so the build runs in parallel: each batch is fanned out to
// one goroutine per partition, and a partition only inserts the rows
// whose key hashes to it. Because exactly one goroutine owns a
// partition and scans the batch rows in order, every partition's
// insertion order — and therefore every probe's match order — is
// identical to the serial HashTable's, no matter how the host schedules
// the build goroutines.
type PartitionedHashTable struct {
	schema  *columnar.Schema
	keyCol  int
	batches []*columnar.Batch
	parts   []joinPart
	rows    int64
}

// NewPartitionedHashTable builds an empty table keyed on keyCol with
// the given number of key partitions (clamped to at least 1; 1 behaves
// like the serial HashTable).
func NewPartitionedHashTable(schema *columnar.Schema, keyCol, parts int) *PartitionedHashTable {
	if parts < 1 {
		parts = 1
	}
	t := &PartitionedHashTable{schema: schema, keyCol: keyCol, parts: make([]joinPart, parts)}
	switch schema.Fields[keyCol].Type {
	case columnar.Int64:
		for p := range t.parts {
			t.parts[p].intMap = make(map[int64][]rowRef)
		}
	case columnar.String:
		for p := range t.parts {
			t.parts[p].strMap = make(map[string][]rowRef)
		}
	default:
		panic("exec: join key type unsupported")
	}
	return t
}

// Build inserts all rows of a build-side batch, one goroutine per
// partition.
func (t *PartitionedHashTable) Build(b *columnar.Batch) {
	bi := int32(len(t.batches))
	t.batches = append(t.batches, b)
	col := b.Col(t.keyCol)
	n := b.NumRows()
	hashes := HashColumn(col, SeedPartition, nil)
	var wg sync.WaitGroup
	wg.Add(len(t.parts))
	for p := range t.parts {
		go func(p int) {
			defer wg.Done()
			part := &t.parts[p]
			for i := 0; i < n; i++ {
				if col.IsNull(i) || PartitionOf(hashes[i], len(t.parts)) != p {
					continue
				}
				ref := rowRef{batch: bi, row: int32(i)}
				if part.intMap != nil {
					k := col.Int64s()[i]
					part.intMap[k] = append(part.intMap[k], ref)
				} else {
					k := col.Strings()[i]
					part.strMap[k] = append(part.strMap[k], ref)
				}
			}
		}(p)
	}
	wg.Wait()
	t.rows += int64(n - col.NullCount())
}

// Rows reports the number of build rows inserted.
func (t *PartitionedHashTable) Rows() int64 { return t.rows }

// MemBytes approximates the table's memory footprint.
func (t *PartitionedHashTable) MemBytes() sim.Bytes {
	var n sim.Bytes
	for _, b := range t.batches {
		n += sim.Bytes(b.ByteSize())
	}
	return n + sim.Bytes(t.rows*24)
}

// OutputSchema reports the probe-result schema, as HashTable does.
func (t *PartitionedHashTable) OutputSchema(probe *columnar.Schema) *columnar.Schema {
	return probe.Concat(t.schema)
}

// Probe matches one probe batch against the table (inner join). Output
// rows are emitted in probe-row order with per-key matches in build
// insertion order — byte-identical to the serial HashTable's output.
func (t *PartitionedHashTable) Probe(probe *columnar.Batch, probeKey int) *columnar.Batch {
	out := columnar.NewBatch(t.OutputSchema(probe.Schema()), probe.NumRows())
	col := probe.Col(probeKey)
	hashes := HashColumn(col, SeedPartition, nil)
	for i := 0; i < probe.NumRows(); i++ {
		if col.IsNull(i) {
			continue
		}
		part := &t.parts[PartitionOf(hashes[i], len(t.parts))]
		var refs []rowRef
		if part.intMap != nil {
			if col.Type() != columnar.Int64 {
				panic("exec: probe key type mismatch (want BIGINT)")
			}
			refs = part.intMap[col.Int64s()[i]]
		} else {
			if col.Type() != columnar.String {
				panic("exec: probe key type mismatch (want VARCHAR)")
			}
			refs = part.strMap[col.Strings()[i]]
		}
		if len(refs) == 0 {
			continue
		}
		probeRow := probe.Row(i)
		for _, ref := range refs {
			buildRow := t.batches[ref.batch].Row(int(ref.row))
			out.AppendRow(append(append([]columnar.Value{}, probeRow...), buildRow...)...)
		}
	}
	return out
}
