package experiments

import (
	"testing"
	"time"
)

// e26TestOptions shrinks the run so the heal loop completes in a few
// hundred milliseconds per arm while the repair storm still visibly
// contends with the foreground.
func e26TestOptions() E26Options {
	return E26Options{
		Trials:      4,
		BaseLatency: 200 * time.Microsecond,
		Workers:     2,
		Segments:    12,
		DamageEvery: 3,
		Contention:  2,
		HealWindow:  250 * time.Millisecond,
		DeadAfter:   10 * time.Millisecond,
		Streams:     4,
	}
}

func TestE26SelfHealShape(t *testing.T) {
	res, err := E26SelfHeal(3000, e26TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want off/throttled/unthrottled", len(res.Rows))
	}
	byArm := map[string]E26Row{}
	for _, row := range res.Rows {
		byArm[row.Arm] = row
	}
	off, thr, unthr := byArm["off"], byArm["throttled"], byArm["unthrottled"]

	// The no-repair arm detects and routes around but never heals:
	// the store stays under-replicated, every later query keeps paying
	// the corrupt-read fallback tax, and no repair work is recorded.
	if off.AtRiskEnd == 0 {
		t.Error("no-repair arm ended fully replicated — it must not heal")
	}
	if off.CorruptSteady == 0 {
		t.Error("no-repair arm stopped paying the fallback tax without a repair")
	}
	if off.ReadRepairs+off.ScrubHeals+off.Recloned != 0 || off.RepairBytes != 0 {
		t.Errorf("no-repair arm recorded repair work: %+v", off)
	}

	// Both repair arms close the loop: at-risk drains to zero, damage is
	// healed, the dead replica is re-cloned with a bounded recorded MTTR,
	// and the experiment itself verified zero post-heal overhead.
	for _, row := range []E26Row{thr, unthr} {
		if row.AtRiskEnd != 0 {
			t.Errorf("%s arm ended with %d objects at risk", row.Arm, row.AtRiskEnd)
		}
		if row.CorruptSteady != 0 {
			t.Errorf("%s arm still pays %d corrupt reads after the heal", row.Arm, row.CorruptSteady)
		}
		if row.ReadRepairs+row.ScrubHeals == 0 {
			t.Errorf("%s arm healed no damaged blobs", row.Arm)
		}
		if row.Recloned == 0 {
			t.Errorf("%s arm re-cloned nothing despite a dead replica", row.Arm)
		}
		if row.MTTR <= 0 {
			t.Errorf("%s arm recorded no MTTR for its completed restoration", row.Arm)
		}
		if row.RepairBytes == 0 {
			t.Errorf("%s arm wrote no repair bytes", row.Arm)
		}
	}

	// The throttle is the point: the paced arm's foreground p99 must sit
	// closer to the no-repair baseline than the storm's. (The strict
	// 1.5x acceptance bound is asserted at dfbench scale; here the
	// ordering must hold with a generous margin for CI timer noise.)
	if thr.P99 == 0 || unthr.P99 == 0 || off.P99 == 0 {
		t.Fatal("missing p99 samples")
	}
	if thr.P99x >= unthr.P99x {
		t.Errorf("throttled p99 ratio %.2fx not below unthrottled %.2fx (off %v, throttled %v, unthrottled %v)",
			thr.P99x, unthr.P99x, off.P99, thr.P99, unthr.P99)
	}

	if res.Table == nil || len(res.Table.Rows) != len(res.Rows) {
		t.Fatal("table rows do not match arm rows")
	}
	if res.Table.FaultSeed != e26Seed {
		t.Errorf("table fault seed = %#x, want %#x", res.Table.FaultSeed, e26Seed)
	}
	if res.Table.Recloned == 0 || res.Table.ReadRepairs+res.Table.ScrubRepairs == 0 {
		t.Error("table carries no repair counters for the -json artifact")
	}
	for _, m := range []string{"p99_us@off", "p99x@throttled", "p99x@unthrottled",
		"mttr_ms@throttled", "mttr_ms@unthrottled", "at_risk_end@off"} {
		if _, ok := res.Table.Metrics[m]; !ok {
			t.Errorf("missing %s metric", m)
		}
	}
}

func TestE26NoHealArm(t *testing.T) {
	opts := e26TestOptions()
	opts.Trials = 2
	opts.NoHeal = true
	res, err := E26SelfHeal(2000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Arm != "off" {
		t.Fatalf("NoHeal run produced %d rows (want just the no-repair arm)", len(res.Rows))
	}
}
