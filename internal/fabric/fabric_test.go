package fabric

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDeviceChargeAndMeter(t *testing.T) {
	d := NewCPU("cpu0", 1)
	n := sim.Bytes(3e9) // filter rate is 3 GB/s per core
	took := d.Charge(OpFilter, n)
	if took != sim.Second {
		t.Errorf("Charge time = %v, want 1s", took)
	}
	if d.Meter.Bytes() != n || d.Meter.Ops() != 1 {
		t.Errorf("meter = %+v", d.Meter.Snapshot())
	}
}

func TestDeviceCoreScaling(t *testing.T) {
	one := NewCPU("c1", 1)
	four := NewCPU("c4", 4)
	if four.RateFor(OpJoin) != 4*one.RateFor(OpJoin) {
		t.Errorf("4-core join rate %v != 4x 1-core %v", four.RateFor(OpJoin), one.RateFor(OpJoin))
	}
}

func TestDeviceChargeUnsupportedPanics(t *testing.T) {
	d := NewSwitch("sw", sim.GbitPerSec(100))
	defer func() {
		if recover() == nil {
			t.Fatal("Charge(OpJoin) on a switch did not panic")
		}
	}()
	d.Charge(OpJoin, 100)
}

func TestDeviceCapabilities(t *testing.T) {
	ssd := NewSmartSSD("ssd")
	if !ssd.Can(OpFilter) || !ssd.Can(OpProject) || !ssd.Can(OpRegexMatch) {
		t.Error("smart SSD missing expected capabilities")
	}
	if ssd.Can(OpJoin) || ssd.Can(OpSort) {
		t.Error("smart SSD should not support stateful join/sort")
	}
	cpu := NewCPU("cpu", 8)
	for _, op := range AllOpClasses() {
		if !cpu.Can(op) {
			t.Errorf("CPU missing op %v", op)
		}
	}
	list := ssd.CapabilityList()
	for i := 1; i < len(list); i++ {
		if list[i-1] >= list[i] {
			t.Error("CapabilityList not sorted")
		}
	}
}

func TestLinkTransferAndRateLimit(t *testing.T) {
	l := &Link{Name: "l", A: "a", B: "b", Bandwidth: sim.GBPerSec, Latency: sim.Millisecond}
	took := l.Transfer(sim.Bytes(1e9))
	if took != sim.Second+sim.Millisecond {
		t.Errorf("Transfer = %v, want 1.001s", took)
	}
	l.SetRateLimit(sim.GBPerSec / 2)
	if l.EffectiveBandwidth() != sim.GBPerSec/2 {
		t.Errorf("EffectiveBandwidth = %v after limit", l.EffectiveBandwidth())
	}
	took = l.Transfer(sim.Bytes(1e9))
	if took != 2*sim.Second+sim.Millisecond {
		t.Errorf("limited Transfer = %v, want 2.001s", took)
	}
	l.SetRateLimit(0)
	if l.EffectiveBandwidth() != sim.GBPerSec {
		t.Error("removing limit did not restore bandwidth")
	}
	// A limit above physical bandwidth is ignored.
	l.SetRateLimit(10 * sim.GBPerSec)
	if l.EffectiveBandwidth() != sim.GBPerSec {
		t.Error("overlarge limit raised bandwidth")
	}
}

func TestLinkMessage(t *testing.T) {
	l := &Link{Name: "l", A: "a", B: "b", Bandwidth: sim.GBPerSec, Latency: 5 * sim.Microsecond}
	l.Message()
	l.Message()
	if l.Meter.Messages() != 2 {
		t.Errorf("Messages = %d, want 2", l.Meter.Messages())
	}
	if l.Meter.Bytes() != 0 {
		t.Error("control messages charged payload bytes")
	}
}

func TestLinkOther(t *testing.T) {
	l := &Link{A: "x", B: "y"}
	if l.Other("x") != "y" || l.Other("y") != "x" || l.Other("z") != "" {
		t.Error("Other endpoint resolution wrong")
	}
}

func TestTopologyPathAndTransfer(t *testing.T) {
	top := NewConventionalServer()
	path, err := top.Path(DevDisk, DevCPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path disk->cpu has %d hops, want 3", len(path))
	}
	// Moving 1 GB charges all three links.
	if _, err := top.Transfer(context.Background(), DevDisk, DevCPU, sim.GB); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"disk--dram", "dram--llc", "llc--cpu"} {
		l := top.Link(name)
		if l == nil {
			t.Fatalf("missing link %s; have %v", name, top.LinkBytes())
		}
		if l.Meter.Bytes() != sim.GB {
			t.Errorf("link %s carried %v, want 1GiB", name, l.Meter.Bytes())
		}
	}
	if top.TotalLinkBytes() != 3*sim.GB {
		t.Errorf("TotalLinkBytes = %v, want 3GiB", top.TotalLinkBytes())
	}
}

func TestTopologyPathErrors(t *testing.T) {
	top := NewTopology("t")
	top.AddDevice(NewMemory("a"))
	top.AddDevice(NewMemory("b")) // disconnected
	if _, err := top.Path("a", "b"); err == nil {
		t.Error("Path between disconnected devices succeeded")
	}
	if _, err := top.Path("a", "nope"); err == nil {
		t.Error("Path to unknown device succeeded")
	}
	if p, err := top.Path("a", "a"); err != nil || len(p) != 0 {
		t.Error("Path a->a should be empty and error-free")
	}
}

func TestTopologyDuplicateDevicePanics(t *testing.T) {
	top := NewTopology("t")
	top.AddDevice(NewMemory("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddDevice did not panic")
		}
	}()
	top.AddDevice(NewMemory("a"))
}

func TestTopologyResetMeters(t *testing.T) {
	top := NewConventionalServer()
	if _, err := top.Transfer(context.Background(), DevDisk, DevCPU, sim.MB); err != nil {
		t.Fatal(err)
	}
	top.MustDevice(DevCPU).Charge(OpFilter, sim.MB)
	top.ResetMeters()
	if top.TotalLinkBytes() != 0 {
		t.Error("ResetMeters left link bytes")
	}
	if top.MustDevice(DevCPU).Meter.Bytes() != 0 {
		t.Error("ResetMeters left device bytes")
	}
}

func TestClusterDefaultShape(t *testing.T) {
	c := NewCluster(DefaultClusterConfig())
	// All well-known devices exist.
	for _, name := range []string{
		DevStorageMed, DevStorageProc, DevStorageNIC, DevSwitch,
		DevMemNode, DevMemNIC,
		ComputeDev(0, "cpu"), ComputeDev(0, "dram"), ComputeDev(0, "nic"), ComputeDev(0, "nma"),
		ComputeDev(1, "cpu"),
	} {
		if c.Device(name) == nil {
			t.Errorf("missing device %s", name)
		}
	}
	// Smart devices have their offload capabilities.
	if !c.StorageProc().Can(OpFilter) {
		t.Error("smart storage cannot filter")
	}
	if !c.ComputeNIC(0).Can(OpHash) {
		t.Error("smart NIC cannot hash")
	}
	if c.NearMem(0) == nil || !c.NearMem(0).Can(OpPointerChase) {
		t.Error("near-memory accelerator missing or incapable")
	}
	// Storage reaches every compute CPU.
	for i := 0; i < 2; i++ {
		if _, err := c.Path(DevStorageMed, ComputeDev(i, "cpu")); err != nil {
			t.Errorf("no path storage -> compute%d: %v", i, err)
		}
	}
}

func TestClusterLegacyIsDumb(t *testing.T) {
	c := NewCluster(LegacyClusterConfig())
	if c.StorageProc().Can(OpFilter) {
		t.Error("legacy storage proc can filter; want scan-only")
	}
	if c.ComputeNIC(0).Can(OpHash) {
		t.Error("legacy NIC can hash; want dumb")
	}
	if c.NearMem(0) != nil {
		t.Error("legacy cluster has a near-memory accelerator")
	}
	// Legacy DRAM->CPU runs at the single-core-limited rate.
	l := c.LinkBetween(ComputeDev(0, "dram"), ComputeDev(0, "cpu"))
	if l == nil {
		t.Fatal("no dram--cpu link")
	}
	if l.Bandwidth != CoreMemBandwidth {
		t.Errorf("legacy dram--cpu bandwidth = %v, want %v", l.Bandwidth, CoreMemBandwidth)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.ComputeNodes = 0
	cfg.CPUCores = 0
	c := NewCluster(cfg) // clamped to 1/1, not panic
	if c.ComputeCPU(0) == nil {
		t.Fatal("clamped cluster missing compute0.cpu")
	}
	bad := DefaultClusterConfig()
	bad.NICTier = LinkDDR
	defer func() {
		if recover() == nil {
			t.Fatal("NICTier=ddr did not panic")
		}
	}()
	NewCluster(bad)
}

func TestClusterNICTierScalesBandwidth(t *testing.T) {
	slow := NewCluster(func() ClusterConfig {
		c := DefaultClusterConfig()
		c.NICTier = LinkEth100
		return c
	}())
	fast := NewCluster(func() ClusterConfig {
		c := DefaultClusterConfig()
		c.NICTier = LinkEth800
		return c
	}())
	ls := slow.LinkBetween(DevStorageNIC, DevSwitch)
	lf := fast.LinkBetween(DevStorageNIC, DevSwitch)
	if lf.Bandwidth != 8*ls.Bandwidth {
		t.Errorf("800G (%v) != 8x 100G (%v)", lf.Bandwidth, ls.Bandwidth)
	}
	// Smart NIC processing rate scales with the tier too.
	if fast.StorageNIC().RateFor(OpHash) != 8*slow.StorageNIC().RateFor(OpHash) {
		t.Error("NIC op rate does not scale with line rate")
	}
}

func TestTopologyString(t *testing.T) {
	s := NewConventionalServer().String()
	for _, want := range []string{"conventional-server", "disk", "cpu", "ddr"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestOpClassStrings(t *testing.T) {
	for _, op := range AllOpClasses() {
		if strings.HasPrefix(op.String(), "OpClass(") {
			t.Errorf("op %d has no name", op)
		}
	}
	if OpClass(250).String() == "" {
		t.Error("unknown op class produced empty string")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []DeviceKind{KindCPU, KindSmartSSD, KindSmartNIC, KindNearMemory, KindSwitch, KindDMA, KindMemory, KindStorage}
	for _, k := range kinds {
		if strings.HasPrefix(k.String(), "DeviceKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	links := []LinkKind{LinkDDR, LinkPCIe3, LinkPCIe7, LinkCXL, LinkEth1600, LinkNVMe, LinkOnChip, LinkObject}
	for _, k := range links {
		if strings.HasPrefix(k.String(), "LinkKind(") {
			t.Errorf("link kind %d has no name", k)
		}
	}
}
