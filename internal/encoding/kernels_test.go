package encoding

import (
	"hash/crc32"
	"math/rand"
	"testing"

	"repro/internal/columnar"
)

// encodeIntAs builds an EncodedColumn for vals with a forced codec so
// every codec path gets exercised regardless of which one EncodeColumn
// would pick.
func encodeIntAs(t *testing.T, v *columnar.Vector, enc ColumnEncoding) *EncodedColumn {
	t.Helper()
	ec := EncodeColumn(v)
	switch enc {
	case RLE:
		ec.Data = EncodeRLEInt64(v.Int64s())
	case DeltaVarint:
		ec.Data = EncodeDeltaVarint(v.Int64s())
	case BitPacked:
		ec.Data = EncodeBitPacked(v.Int64s())
	default:
		t.Fatalf("unsupported forced encoding %v", enc)
	}
	ec.Encoding = enc
	ec.Checksum = crc32.ChecksumIEEE(ec.Data)
	return ec
}

// eagerEval is the reference: full decode, then per-row comparison with
// NULL rows false.
func eagerEvalInt(t *testing.T, ec *EncodedColumn, pred func(int64) bool) *columnar.Bitmap {
	t.Helper()
	v, err := ec.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	bm := columnar.NewBitmap(v.Len())
	for i, x := range v.Int64s() {
		if !v.IsNull(i) && pred(x) {
			bm.Set(i)
		}
	}
	return bm
}

func bitmapsEqual(a, b *columnar.Bitmap) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Get(i) != b.Get(i) {
			return false
		}
	}
	return true
}

func intVectorWithNulls(rng *rand.Rand, n int, domain int64, nullEvery int) *columnar.Vector {
	v := columnar.NewVector(columnar.Int64, n)
	for i := 0; i < n; i++ {
		if nullEvery > 0 && i%nullEvery == 0 {
			v.AppendNull()
		} else {
			v.AppendInt64(rng.Int63n(domain))
		}
	}
	return v
}

func TestEvalIntRangeMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, enc := range []ColumnEncoding{RLE, DeltaVarint, BitPacked} {
		for _, nullEvery := range []int{0, 7} {
			v := intVectorWithNulls(rng, 500, 1000, nullEvery)
			ec := encodeIntAs(t, v, enc)
			for _, r := range [][2]int64{{100, 400}, {0, 999}, {-50, -1}, {1500, 2000}, {250, 250}, {400, 100}} {
				got, ok, err := ec.EvalIntRange(r[0], r[1])
				if err != nil || !ok {
					t.Fatalf("%v nulls=%d EvalIntRange(%d,%d): ok=%v err=%v", enc, nullEvery, r[0], r[1], ok, err)
				}
				want := eagerEvalInt(t, ec, func(x int64) bool { return x >= r[0] && x <= r[1] })
				if !bitmapsEqual(got, want) {
					t.Fatalf("%v nulls=%d range [%d,%d]: kernel disagrees with eager eval", enc, nullEvery, r[0], r[1])
				}
			}
		}
	}
}

func TestEvalIntInMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	vals := []int64{3, 77, 500, 999, 5000}
	for _, enc := range []ColumnEncoding{RLE, DeltaVarint, BitPacked} {
		v := intVectorWithNulls(rng, 400, 1000, 5)
		ec := encodeIntAs(t, v, enc)
		got, ok, err := ec.EvalIntIn(vals)
		if err != nil || !ok {
			t.Fatalf("%v EvalIntIn: ok=%v err=%v", enc, ok, err)
		}
		want := eagerEvalInt(t, ec, func(x int64) bool {
			for _, w := range vals {
				if x == w {
					return true
				}
			}
			return false
		})
		if !bitmapsEqual(got, want) {
			t.Fatalf("%v: EvalIntIn disagrees with eager eval", enc)
		}
	}
}

func TestEvalFloatRangeMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	v := columnar.NewVector(columnar.Float64, 300)
	for i := 0; i < 300; i++ {
		if i%11 == 0 {
			v.AppendNull()
		} else {
			v.AppendFloat64(rng.Float64() * 100)
		}
	}
	ec := EncodeColumn(v)
	dec, err := ec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		lo, hi       float64
		incLo, incHi bool
	}{
		{10, 50, true, true}, {10, 50, false, false}, {-5, 200, true, true},
		{200, 300, true, true}, {0, 10, true, false},
	} {
		got, ok, err := ec.EvalFloatRange(c.lo, c.hi, c.incLo, c.incHi)
		if err != nil || !ok {
			t.Fatalf("EvalFloatRange(%v): ok=%v err=%v", c, ok, err)
		}
		want := columnar.NewBitmap(dec.Len())
		for i, x := range dec.Float64s() {
			if dec.IsNull(i) {
				continue
			}
			if (x > c.lo || (c.incLo && x == c.lo)) && (x < c.hi || (c.incHi && x == c.hi)) {
				want.Set(i)
			}
		}
		if !bitmapsEqual(got, want) {
			t.Fatalf("EvalFloatRange(%v) disagrees with eager eval", c)
		}
	}
}

func TestEvalStringMatchDict(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	cats := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	v := columnar.NewVector(columnar.String, 300)
	for i := 0; i < 300; i++ {
		if i%13 == 0 {
			v.AppendNull()
		} else {
			v.AppendString(cats[rng.Intn(len(cats))])
		}
	}
	ec := EncodeColumn(v)
	if ec.Encoding != Dict {
		t.Fatalf("expected Dict encoding, got %v", ec.Encoding)
	}
	dec, err := ec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	match := func(s string) bool { return s == "beta" || s > "ep" }
	got, ok, err := ec.EvalStringMatch(match)
	if err != nil || !ok {
		t.Fatalf("EvalStringMatch: ok=%v err=%v", ok, err)
	}
	want := columnar.NewBitmap(dec.Len())
	for i, s := range dec.Strings() {
		if !dec.IsNull(i) && match(s) {
			want.Set(i)
		}
	}
	if !bitmapsEqual(got, want) {
		t.Fatal("EvalStringMatch disagrees with eager eval")
	}
}

func TestKernelUnsupportedFallsBack(t *testing.T) {
	v := columnar.FromStrings([]string{"unique-a", "unique-b", "unique-c"})
	ec := EncodeColumn(v)
	ec.Encoding = Plain
	ec.Data = EncodePlainStrings(v.Strings())
	ec.Checksum = crc32.ChecksumIEEE(ec.Data)
	if _, ok, err := ec.EvalStringMatch(func(string) bool { return true }); ok || err != nil {
		t.Fatalf("plain strings should report unsupported, got ok=%v err=%v", ok, err)
	}
	fv := EncodeColumn(columnar.FromFloat64s([]float64{1, 2}))
	if _, ok, _ := fv.EvalIntRange(0, 1); ok {
		t.Fatal("float column should report unsupported for int kernel")
	}
}

func TestKernelEmptyDictionary(t *testing.T) {
	v := columnar.NewVector(columnar.String, 0)
	ec := EncodeColumn(v)
	ec.Encoding = Dict
	ec.Data = EncodeDict(nil)
	ec.Checksum = crc32.ChecksumIEEE(ec.Data)
	bm, ok, err := ec.EvalStringMatch(func(string) bool { return true })
	if err != nil || !ok {
		t.Fatalf("empty dict: ok=%v err=%v", ok, err)
	}
	if bm.Len() != 0 || bm.Count() != 0 {
		t.Fatalf("empty dict: got %d/%d bits", bm.Count(), bm.Len())
	}
	if dv, err := ec.DecodeFiltered(columnar.NewBitmap(0)); err != nil || dv.Len() != 0 {
		t.Fatalf("empty dict DecodeFiltered: len=%v err=%v", dv, err)
	}
}

func TestKernelAllNullColumn(t *testing.T) {
	v := columnar.NewVector(columnar.Int64, 64)
	for i := 0; i < 64; i++ {
		v.AppendNull()
	}
	ec := EncodeColumn(v)
	// Corrupt the payload: an all-null column must answer without
	// touching Data.
	ec.Data = []byte{0xde, 0xad}
	bm, ok, err := ec.EvalIntRange(-1<<62, 1<<62)
	if err != nil || !ok {
		t.Fatalf("all-null: ok=%v err=%v", ok, err)
	}
	if bm.Count() != 0 {
		t.Fatalf("all-null column selected %d rows", bm.Count())
	}
}

func TestKernelSingleDistinctDict(t *testing.T) {
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = "only"
	}
	ec := EncodeColumn(columnar.FromStrings(vals))
	if ec.Encoding != Dict {
		t.Fatalf("expected Dict, got %v", ec.Encoding)
	}
	bm, ok, err := ec.EvalStringMatch(func(s string) bool { return s == "only" })
	if err != nil || !ok || bm.Count() != 100 {
		t.Fatalf("single-distinct dict eq: count=%d ok=%v err=%v", bm.Count(), ok, err)
	}
	bm, ok, err = ec.EvalStringMatch(func(s string) bool { return s == "other" })
	if err != nil || !ok || bm.Count() != 0 {
		t.Fatalf("single-distinct dict miss: count=%d ok=%v err=%v", bm.Count(), ok, err)
	}
}

func TestKernelBitPackedMinEqMax(t *testing.T) {
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = 7
	}
	ec := encodeIntAs(t, columnar.FromInt64s(vals), BitPacked)
	if w := ec.Data[len(ec.Data)-1]; w != 0 {
		t.Fatalf("min==max column should pack to width 0, got %d", w)
	}
	bm, ok, err := ec.EvalIntRange(7, 7)
	if err != nil || !ok || bm.Count() != 200 {
		t.Fatalf("width-0 eq: count=%d ok=%v err=%v", bm.Count(), ok, err)
	}
	bm, ok, err = ec.EvalIntRange(8, 8)
	if err != nil || !ok || bm.Count() != 0 {
		t.Fatalf("width-0 miss: count=%d ok=%v err=%v", bm.Count(), ok, err)
	}
}

func TestKernelZoneMapShortCircuitNoDataAccess(t *testing.T) {
	vals := []int64{10, 20, 30, 40, 50}
	ec := encodeIntAs(t, columnar.FromInt64s(vals), BitPacked)
	// Replace Data with garbage and leave the stale checksum: any access
	// to Data would fail checksum or parsing, so a correct short circuit
	// must never see it.
	ec.Data = []byte{0xff, 0xff, 0xff}

	bm, ok, err := ec.EvalIntRange(100, 200) // entirely above MaxI
	if err != nil || !ok || bm.Count() != 0 {
		t.Fatalf("above-range short circuit: count=%d ok=%v err=%v", bm.Count(), ok, err)
	}
	bm, ok, err = ec.EvalIntRange(-100, -1) // entirely below MinI
	if err != nil || !ok || bm.Count() != 0 {
		t.Fatalf("below-range short circuit: count=%d ok=%v err=%v", bm.Count(), ok, err)
	}
	bm, ok, err = ec.EvalIntRange(0, 1000) // covers [MinI, MaxI]
	if err != nil || !ok || bm.Count() != 5 {
		t.Fatalf("covering short circuit: count=%d ok=%v err=%v", bm.Count(), ok, err)
	}
	bm, ok, err = ec.EvalIntIn([]int64{60, 70}) // members all outside zone map
	if err != nil || !ok || bm.Count() != 0 {
		t.Fatalf("IN short circuit: count=%d ok=%v err=%v", bm.Count(), ok, err)
	}
	// A range that genuinely needs the data must now surface corruption.
	if _, ok, err := ec.EvalIntRange(15, 25); ok && err == nil {
		t.Fatal("partial-overlap range on garbage data did not fail")
	}
}

func TestDecodeFilteredMatchesEagerGather(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	sel := columnar.NewBitmap(300)
	for i := 0; i < 300; i++ {
		if rng.Intn(4) == 0 {
			sel.Set(i)
		}
	}
	check := func(name string, ec *EncodedColumn) {
		t.Helper()
		full, err := ec.Decode()
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		want := full.Gather(sel.Indices(nil))
		got, err := ec.DecodeFiltered(sel)
		if err != nil {
			t.Fatalf("%s: DecodeFiltered: %v", name, err)
		}
		if got.Len() != want.Len() || got.ByteSize() != want.ByteSize() {
			t.Fatalf("%s: len/bytes %d/%d, want %d/%d", name, got.Len(), got.ByteSize(), want.Len(), want.ByteSize())
		}
		for i := 0; i < want.Len(); i++ {
			if got.Value(i) != want.Value(i) {
				t.Fatalf("%s: row %d = %v, want %v", name, i, got.Value(i), want.Value(i))
			}
		}
	}

	iv := intVectorWithNulls(rng, 300, 1<<16, 9)
	for _, enc := range []ColumnEncoding{RLE, DeltaVarint, BitPacked} {
		check(enc.String(), encodeIntAs(t, iv, enc))
	}

	fv := columnar.NewVector(columnar.Float64, 300)
	sv := columnar.NewVector(columnar.String, 300)
	bv := columnar.NewVector(columnar.Bool, 300)
	cats := []string{"aa", "bbbb", "cccccc", "d"}
	for i := 0; i < 300; i++ {
		if i%17 == 0 {
			fv.AppendNull()
			sv.AppendNull()
			bv.AppendNull()
			continue
		}
		fv.AppendFloat64(rng.NormFloat64())
		sv.AppendString(cats[rng.Intn(len(cats))])
		bv.AppendBool(rng.Intn(2) == 0)
	}
	check("float", EncodeColumn(fv))
	check("dict", EncodeColumn(sv))
	check("bool", EncodeColumn(bv))

	longs := columnar.NewVector(columnar.String, 300)
	for i := 0; i < 300; i++ {
		longs.AppendString(string(rune('a'+i%26)) + string(make([]byte, i%5)))
	}
	pec := EncodeColumn(longs)
	pec.Encoding = Plain
	pec.Data = EncodePlainStrings(longs.Strings())
	pec.Checksum = crc32.ChecksumIEEE(pec.Data)
	check("plain-strings", pec)
}

func TestGatherBytesProportional(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i % 1024)
	}
	ec := encodeIntAs(t, columnar.FromInt64s(vals), BitPacked)
	all := ec.GatherBytes(10000)
	tenth := ec.GatherBytes(1000)
	if tenth*8 > all {
		t.Fatalf("bit-packed gather of 10%% cost %d vs full %d: not proportional", tenth, all)
	}
	if ec.GatherBytes(0) != 0 {
		t.Fatal("GatherBytes(0) != 0")
	}
	if ec.GatherBytes(20000) != all {
		t.Fatal("GatherBytes over n should clamp to full cost")
	}
	// Stream codecs pay full freight regardless of k.
	rec := encodeIntAs(t, columnar.FromInt64s(vals), DeltaVarint)
	if rec.GatherBytes(1) != rec.GatherBytes(10000) {
		t.Fatal("delta gather should charge the full payload")
	}
}

func TestDecodedSizeMatchesVectorByteSize(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cats := []string{"north", "south", "east", "west", "a-much-longer-region-name"}
	vectors := []*columnar.Vector{
		intVectorWithNulls(rng, 257, 1<<20, 0),
		intVectorWithNulls(rng, 257, 1<<20, 6),
	}
	sv := columnar.NewVector(columnar.String, 257)
	for i := 0; i < 257; i++ {
		if i%23 == 0 {
			sv.AppendNull()
		} else {
			sv.AppendString(cats[rng.Intn(len(cats))])
		}
	}
	vectors = append(vectors, sv)
	fv := columnar.NewVector(columnar.Float64, 100)
	for i := 0; i < 100; i++ {
		fv.AppendFloat64(rng.Float64())
	}
	vectors = append(vectors, fv)
	for vi, v := range vectors {
		ec := EncodeColumn(v)
		dec, err := ec.Decode()
		if err != nil {
			t.Fatalf("vector %d: %v", vi, err)
		}
		if got, want := ec.DecodedSize(), dec.ByteSize(); got != want {
			t.Fatalf("vector %d (%v %v): DecodedSize=%d, decoded ByteSize=%d", vi, ec.Type, ec.Encoding, got, want)
		}
	}
}
