package obs

import (
	"fmt"

	"repro/internal/sim"
)

// Tape is the causal record of one pipeline run. The flow runtime fills
// it live — each element appends only its own entries, so recording
// needs no locks — and replays it onto a Trace after the run.
//
// The point of the indirection: goroutine scheduling decides *when* a
// stage processed a batch in wall-clock time, but the tape only records
// *what* happened (batch sizes, charged costs, emission counts, link
// hop costs), all of which are schedule-independent. Replay then
// derives virtual timestamps purely from the tape, so a fixed-seed run
// produces a byte-identical trace no matter how the host interleaved
// the stage goroutines — the property CI's trace diff depends on.
type Tape struct {
	// Depth is the per-port credit depth; replay uses it to model
	// backpressure (a sender blocks until the receiver has finished the
	// batch that occupied the slot depth batches ago).
	Depth  int
	Source SourceTape
	Stages []*StageTape
}

// NewTape returns a tape for a pipeline of the given port depth.
func NewTape(depth int) *Tape { return &Tape{Depth: depth} }

// SourceTape records the pipeline source's emissions.
type SourceTape struct {
	// Track attributes source-side credit stalls (usually the storage
	// processor's name).
	Track string
	Emits []Emission
}

// Emission is one source batch: when the scan's virtual clock said it
// was ready, and how large it was.
type Emission struct {
	At    sim.VTime
	Bytes sim.Bytes
}

// StageTape records one stage's inputs and the transfers feeding it.
type StageTape struct {
	Name  string
	Track string // hosting device name; falls back to Name when empty
	// Setup is the kernel-installation cost charged when the stream
	// started.
	Setup sim.VTime
	// Inputs lists the batches the stage processed, in arrival order.
	Inputs []TapeInput
	// Xfers lists the link transfers that delivered each input, index-
	// aligned with Inputs (appended by the upstream sender).
	Xfers []Xfer
	// FlushOuts counts batches emitted by Flush at end-of-stream.
	FlushOuts int
	// FaultInput is the input index at which a runtime fault (offline
	// device) killed the stage, -1 when the stage ran clean.
	FaultInput  int
	FaultDetail string
}

// TapeInput is one processed batch: its size, the virtual cost charged
// to the hosting device, and how many outputs Process emitted for it.
type TapeInput struct {
	Bytes sim.Bytes
	Cost  sim.VTime
	Outs  int
}

// Xfer is the fabric crossing of one batch: the links traversed in
// order with their individual costs.
type Xfer struct {
	Bytes sim.Bytes
	Hops  []Hop
}

// Hop is one link crossing.
type Hop struct {
	Link string
	Cost sim.VTime
}

// Replay derives the virtual-time span timeline from the tape and
// records it on tr, returning the replayed makespan.
//
// The model: each device (track) is one serial resource — spans on a
// track never overlap, even for distinct stages placed on the same
// device. A stage starts processing a batch at max(track free, batch
// arrival) and holds the track for the charged cost. Batches leave at
// processing end, cross their recorded link hops (transfers pipeline,
// so transfer spans on a link track may overlap), and arrive downstream.
// A send blocks — without holding the track — until the receiver has
// finished the batch occupying its credit slot (depth batches earlier);
// the wait is recorded as a credit-stall event. Upstream credit release
// is modelled at input completion (credit-message batching is ignored;
// it shifts availability by at most one credit batch). Kernel setups
// all happen at stream start, serialized per track.
func (t *Tape) Replay(tr *Trace) sim.VTime {
	if tr == nil {
		return 0
	}
	S := len(t.Stages)
	depth := t.Depth
	if depth < 1 {
		depth = 1
	}
	var makespan sim.VTime
	bump := func(v sim.VTime) {
		if v > makespan {
			makespan = v
		}
	}
	if S == 0 {
		for _, em := range t.Source.Emits {
			bump(em.At)
		}
		return makespan
	}

	trackOf := func(st *StageTape) string {
		if st.Track != "" {
			return st.Track
		}
		return st.Name
	}
	clocks := make(map[string]sim.VTime)

	// Kernel installations precede the stream, serialized per track.
	for _, st := range t.Stages {
		if st.Setup <= 0 {
			continue
		}
		trk := trackOf(st)
		start := clocks[trk]
		tr.AddSpan(Span{Name: st.Name + ".setup", Track: trk, Kind: SpanSetup,
			Start: start, End: start + st.Setup, Seq: -1})
		clocks[trk] = start + st.Setup
		bump(start + st.Setup)
	}

	arrivals := make([][]sim.VTime, S)
	procDone := make([][]sim.VTime, S) // input completion incl. blocked sends
	inIdx := make([]int, S)
	outIdx := make([]int, S)
	pending := make([]int, S) // outputs awaiting send for the current phase
	pendingFrom := make([]sim.VTime, S)
	inFlight := make([]bool, S) // an input's sends are still draining
	upClosed := make([]bool, S) // upstream end-of-stream delivered
	flushStarted := make([]bool, S)
	flushDone := make([]bool, S)
	faulted := make([]bool, S)
	cumIn := make([]sim.Bytes, S)

	// trySend delivers output k into stage dst (dst == S is the sink).
	// It returns false when the receiver's credit slot is not yet
	// resolvable; the caller retries on a later round.
	trySend := func(dst, k int, ready sim.VTime, fromTrack string, seq int64) (sim.VTime, bool) {
		if dst >= S {
			bump(ready)
			return ready, true
		}
		st := t.Stages[dst]
		depart := ready
		if k >= depth {
			if len(procDone[dst]) <= k-depth {
				return 0, false
			}
			if free := procDone[dst][k-depth]; free > depart {
				tr.AddEvent(Event{Name: "credit-stall", Track: fromTrack, At: depart,
					Detail: fmt.Sprintf("blocked %s on a credit into %s", free-depart, st.Name)})
				depart = free
			}
		}
		at := depart
		if k < len(st.Xfers) {
			x := st.Xfers[k]
			for _, h := range x.Hops {
				tr.AddSpan(Span{Name: "xfer", Track: h.Link, Kind: SpanTransfer,
					Start: at, End: at + h.Cost, Seq: seq, Bytes: x.Bytes})
				at += h.Cost
			}
		}
		arrivals[dst] = append(arrivals[dst], at)
		bump(at)
		return depart, true
	}

	srcIdx := 0
	var srcShift sim.VTime // accumulated source backpressure delay
	srcDone := false

	stepSource := func() bool {
		if srcIdx >= len(t.Source.Emits) {
			return false
		}
		em := t.Source.Emits[srcIdx]
		ready := em.At + srcShift
		depart, ok := trySend(0, srcIdx, ready, t.Source.Track, int64(srcIdx))
		if !ok {
			return false
		}
		if depart > ready {
			// The blocked scan resumes late; every later nominal
			// emission time shifts by the stall.
			srcShift += depart - ready
		}
		srcIdx++
		return true
	}

	stepStage := func(i int) bool {
		st := t.Stages[i]
		trk := trackOf(st)
		progress := false
		for {
			// Drain pending sends for the in-flight phase.
			for pending[i] > 0 {
				depart, ok := trySend(i+1, outIdx[i], pendingFrom[i], trk, int64(outIdx[i]))
				if !ok {
					return progress
				}
				outIdx[i]++
				pending[i]--
				if depart > pendingFrom[i] {
					pendingFrom[i] = depart
				}
				progress = true
			}
			if inFlight[i] {
				procDone[i] = append(procDone[i], pendingFrom[i])
				inFlight[i] = false
				progress = true
			}
			if flushStarted[i] {
				if !flushDone[i] {
					flushDone[i] = true
					progress = true
				}
				return progress
			}
			// Fault annotation: the stage died receiving this input.
			if st.FaultInput >= 0 && inIdx[i] == st.FaultInput && !faulted[i] {
				at := clocks[trk]
				if inIdx[i] < len(arrivals[i]) && arrivals[i][inIdx[i]] > at {
					at = arrivals[i][inIdx[i]]
				}
				tr.AddEvent(Event{Name: "fault", Track: trk, At: at, Detail: st.FaultDetail})
				faulted[i] = true
				progress = true
			}
			// Start the next input.
			if n := inIdx[i]; n < len(st.Inputs) && n < len(arrivals[i]) {
				in := st.Inputs[n]
				start := clocks[trk]
				if arrivals[i][n] > start {
					start = arrivals[i][n]
				}
				end := start + in.Cost
				if in.Cost > 0 {
					tr.AddSpan(Span{Name: st.Name, Track: trk, Kind: SpanStage,
						Start: start, End: end, Seq: int64(n), Bytes: in.Bytes})
				}
				clocks[trk] = end
				bump(end)
				cumIn[i] += in.Bytes
				tr.Sample(fmt.Sprintf("flow.%02d.%s.in_bytes", i, st.Name), "bytes",
					arrivals[i][n], float64(cumIn[i]))
				inIdx[i]++
				pending[i] = in.Outs
				pendingFrom[i] = end
				inFlight[i] = true
				progress = true
				continue
			}
			// Flush once the upstream closed and every input finished.
			if upClosed[i] && inIdx[i] == len(st.Inputs) && !faulted[i] && !flushStarted[i] {
				flushStarted[i] = true
				if st.FlushOuts > 0 {
					pending[i] = st.FlushOuts
					pendingFrom[i] = clocks[trk]
				}
				progress = true
				continue
			}
			return progress
		}
	}

	for {
		progress := stepSource()
		if !srcDone && srcIdx == len(t.Source.Emits) {
			srcDone = true
			upClosed[0] = true
			progress = true
		}
		for i := 0; i < S; i++ {
			if stepStage(i) {
				progress = true
			}
		}
		for i := 0; i < S-1; i++ {
			if flushDone[i] && !upClosed[i+1] {
				upClosed[i+1] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return makespan
}
