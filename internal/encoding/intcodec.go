// Package encoding implements the on-disk and on-wire codecs the engine
// uses: lightweight integer encodings (RLE, delta+varint, frame-of-
// reference bit-packing), dictionary encoding for strings, a byte-oriented
// LZ compressor, checksums, and a self-describing encoded-column format
// with min/max statistics for zone-map pruning.
//
// The paper (Sections 1 and 2.2) stresses that cloud query plans must
// treat compression, decoding and format transformation as first-class
// operators along the data path; these codecs are those operators'
// substrate.
package encoding

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is returned when encoded data fails structural validation or
// checksum verification.
var ErrCorrupt = errors.New("encoding: corrupt data")

// zigzag maps signed integers to unsigned so that small negative values
// get short varints.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// putUvarint appends a varint to dst.
func putUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// EncodeDeltaVarint encodes int64 values as zigzag varints of consecutive
// deltas. Sorted or slowly varying columns (timestamps, surrogate keys)
// compress to a byte or two per value.
func EncodeDeltaVarint(vals []int64) []byte {
	out := putUvarint(nil, uint64(len(vals)))
	prev := int64(0)
	for _, v := range vals {
		out = putUvarint(out, zigzag(v-prev))
		prev = v
	}
	return out
}

// DecodeDeltaVarint reverses EncodeDeltaVarint.
func DecodeDeltaVarint(data []byte) ([]int64, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad delta-varint count", ErrCorrupt)
	}
	data = data[sz:]
	out := make([]int64, 0, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		u, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: truncated delta-varint stream", ErrCorrupt)
		}
		data = data[sz:]
		prev += unzigzag(u)
		out = append(out, prev)
	}
	return out, nil
}

// EncodeRLEInt64 run-length encodes int64 values as (value, runLength)
// pairs of varints. Low-cardinality or sorted columns benefit.
func EncodeRLEInt64(vals []int64) []byte {
	out := putUvarint(nil, uint64(len(vals)))
	i := 0
	for i < len(vals) {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		out = putUvarint(out, zigzag(vals[i]))
		out = putUvarint(out, uint64(j-i))
		i = j
	}
	return out
}

// DecodeRLEInt64 reverses EncodeRLEInt64.
func DecodeRLEInt64(data []byte) ([]int64, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad RLE count", ErrCorrupt)
	}
	data = data[sz:]
	out := make([]int64, 0, n)
	for uint64(len(out)) < n {
		u, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, fmt.Errorf("%w: truncated RLE value", ErrCorrupt)
		}
		data = data[sz:]
		run, sz := binary.Uvarint(data)
		if sz <= 0 || run == 0 {
			return nil, fmt.Errorf("%w: truncated RLE run", ErrCorrupt)
		}
		data = data[sz:]
		if uint64(len(out))+run > n {
			return nil, fmt.Errorf("%w: RLE run overflows count", ErrCorrupt)
		}
		v := unzigzag(u)
		for k := uint64(0); k < run; k++ {
			out = append(out, v)
		}
	}
	return out, nil
}

// EncodeBitPacked encodes int64 values with frame-of-reference plus
// fixed-width bit packing: each value is stored as (v - min) in the
// minimum number of bits needed for (max - min).
func EncodeBitPacked(vals []int64) []byte {
	out := putUvarint(nil, uint64(len(vals)))
	if len(vals) == 0 {
		return out
	}
	minV, maxV := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	width := bitsFor(uint64(maxV) - uint64(minV))
	// Widths above 56 bits cannot be streamed through a 64-bit
	// accumulator without overflow and save little anyway; store those
	// byte-aligned.
	if width > 56 {
		width = 64
	}
	out = putUvarint(out, zigzag(minV))
	out = append(out, byte(width))
	if width == 0 {
		return out // all values equal min
	}
	if width == 64 {
		for _, v := range vals {
			out = binary.LittleEndian.AppendUint64(out, uint64(v)-uint64(minV))
		}
		return out
	}
	var acc uint64
	var nbits uint
	for _, v := range vals {
		d := uint64(v) - uint64(minV)
		acc |= d << nbits
		nbits += uint(width)
		for nbits >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc))
	}
	return out
}

// DecodeBitPacked reverses EncodeBitPacked.
func DecodeBitPacked(data []byte) ([]int64, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad bit-packed count", ErrCorrupt)
	}
	data = data[sz:]
	if n == 0 {
		return []int64{}, nil
	}
	mz, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad bit-packed min", ErrCorrupt)
	}
	data = data[sz:]
	minV := unzigzag(mz)
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: missing bit width", ErrCorrupt)
	}
	width := uint(data[0])
	data = data[1:]
	if width > 64 {
		return nil, fmt.Errorf("%w: bit width %d > 64", ErrCorrupt, width)
	}
	out := make([]int64, 0, n)
	if width == 0 {
		for i := uint64(0); i < n; i++ {
			out = append(out, minV)
		}
		return out, nil
	}
	if width == 64 {
		if uint64(len(data)) < n*8 {
			return nil, fmt.Errorf("%w: bit-packed data truncated", ErrCorrupt)
		}
		for i := uint64(0); i < n; i++ {
			d := binary.LittleEndian.Uint64(data[i*8:])
			out = append(out, int64(uint64(minV)+d))
		}
		return out, nil
	}
	if width > 56 {
		return nil, fmt.Errorf("%w: unsupported bit width %d", ErrCorrupt, width)
	}
	need := (n*uint64(width) + 7) / 8
	if uint64(len(data)) < need {
		return nil, fmt.Errorf("%w: bit-packed data truncated", ErrCorrupt)
	}
	var acc uint64
	var nbits uint
	pos := 0
	mask := uint64(1)<<width - 1
	for i := uint64(0); i < n; i++ {
		for nbits < width {
			acc |= uint64(data[pos]) << nbits
			pos++
			nbits += 8
		}
		out = append(out, minV+int64(acc&mask))
		acc >>= width
		nbits -= width
	}
	return out, nil
}

// bitsFor reports the number of bits needed to represent v.
func bitsFor(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// EncodeFloat64s stores floats as little-endian IEEE 754 bits.
func EncodeFloat64s(vals []float64) []byte {
	out := putUvarint(nil, uint64(len(vals)))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// DecodeFloat64s reverses EncodeFloat64s.
func DecodeFloat64s(data []byte) ([]float64, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad float count", ErrCorrupt)
	}
	data = data[sz:]
	if uint64(len(data)) < n*8 {
		return nil, fmt.Errorf("%w: float data truncated", ErrCorrupt)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out, nil
}

// EncodeBools packs booleans into a bitmap.
func EncodeBools(vals []bool) []byte {
	out := putUvarint(nil, uint64(len(vals)))
	var cur byte
	var nbits uint
	for _, v := range vals {
		if v {
			cur |= 1 << nbits
		}
		nbits++
		if nbits == 8 {
			out = append(out, cur)
			cur, nbits = 0, 0
		}
	}
	if nbits > 0 {
		out = append(out, cur)
	}
	return out
}

// DecodeBools reverses EncodeBools.
func DecodeBools(data []byte) ([]bool, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad bool count", ErrCorrupt)
	}
	data = data[sz:]
	if uint64(len(data)) < (n+7)/8 {
		return nil, fmt.Errorf("%w: bool data truncated", ErrCorrupt)
	}
	out := make([]bool, n)
	for i := uint64(0); i < n; i++ {
		out[i] = data[i>>3]&(1<<(i&7)) != 0
	}
	return out, nil
}
