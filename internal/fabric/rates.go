package fabric

import "repro/internal/sim"

// Calibrated rates and latencies. Values follow the paper where it gives
// numbers (Sections 2.2, 5.1, 6.2) and public datasheets otherwise.
// Absolute values are model inputs; the experiments report ratios and
// crossovers, which depend on the relative magnitudes.
var (
	// DDRBandwidth is one DDR4-3200-class controller channel.
	DDRBandwidth = sim.Rate(25.6e9)
	// CoreMemBandwidth is what a single core sustains against that
	// controller: the paper cites 75-85% historically (Section 5.1);
	// we use 80%.
	CoreMemBandwidth = sim.Rate(0.8 * 25.6e9)
	// HBMBandwidth models an HBM-attached accelerator's privileged
	// memory path (Section 5.2).
	HBMBandwidth = sim.Rate(400e9)

	// PCIe generation bandwidths (x16, per direction). Section 6.2:
	// PCIe5 reaches 64 GB/s, doubling each generation.
	PCIeBandwidth = map[LinkKind]sim.Rate{
		LinkPCIe3: 16e9,
		LinkPCIe4: 32e9,
		LinkPCIe5: 64e9,
		LinkPCIe6: 128e9,
		LinkPCIe7: 256e9,
		LinkCXL:   64e9, // CXL 2.x rides PCIe5 electricals
	}

	// EthBandwidth maps NIC tiers to payload rates (Section 2.2:
	// 100 Gbps through the upcoming 1.6 Tbps).
	EthBandwidth = map[LinkKind]sim.Rate{
		LinkEth100:  sim.GbitPerSec(100),
		LinkEth200:  sim.GbitPerSec(200),
		LinkEth400:  sim.GbitPerSec(400),
		LinkEth800:  sim.GbitPerSec(800),
		LinkEth1600: sim.GbitPerSec(1600),
	}

	// NVMeBandwidth is a modern flash SSD's sequential read path.
	NVMeBandwidth = sim.Rate(7e9)
	// ObjectStoreBandwidth is a single object-store stream: slow disks
	// behind a network (Section 7.5), requiring parallelism for
	// reasonable throughput.
	ObjectStoreBandwidth = sim.Rate(0.5e9)
	// OnChipBandwidth is the cache/on-chip network path.
	OnChipBandwidth = sim.Rate(100e9)
)

// Link latencies.
var (
	DDRLatency     = 100 * sim.Nanosecond
	OnChipLatency  = 10 * sim.Nanosecond
	PCIeLatency    = 500 * sim.Nanosecond
	CXLLatency     = 200 * sim.Nanosecond // "slightly higher latency" than local (Section 6.3)
	RDMALatency    = 2 * sim.Microsecond
	TCPLatency     = 30 * sim.Microsecond
	NVMeLatency    = 80 * sim.Microsecond
	ObjectLatency  = 4 * sim.Millisecond
	// NVMeQueueDepth is how many outstanding commands the flash media
	// link services concurrently: command latency overlaps across the
	// queue (Link.TransferQD) while sequential bandwidth stays a serial
	// resource shared by every request.
	NVMeQueueDepth = 8
	NUMAExtra      = 60 * sim.Nanosecond // added when crossing sockets (Section 5.1)
	KernelSetupCPU = sim.VTime(0)        // CPUs run ISA code; no install step
	KernelSetupAcc = 5 * sim.Microsecond // register programming + logic install (Section 7.2)
)

// Device capability tables. Rates are streaming GB/s for the op on that
// device class. CPUs can do everything but at software rates; the
// accelerators do fewer things at line rate.
//
// CPU rates are per core against cache-resident data; the memory wall is
// modelled separately by the memdev package.
func cpuCaps() Capability {
	return Capability{
		OpScan:         8e9,
		OpFilter:       3e9,
		OpProject:      20e9,
		OpHash:         2.5e9,
		OpPartition:    2e9,
		OpPreAgg:       2e9,
		OpAggregate:    2e9,
		OpJoin:         1.2e9,
		OpSort:         0.8e9,
		OpCount:        10e9,
		OpCompress:     0.6e9,
		OpDecompress:   1.8e9,
		OpEncrypt:      2e9,
		OpDecrypt:      2e9,
		OpTranspose:    1.5e9,
		OpPointerChase: 0.1e9,
		OpListOps:      1e9,
		OpRegexMatch:   0.4e9,
	}
}

// smartSSDCaps: the in-storage processor streams at media rate but is
// deliberately narrow and (mostly) stateless (Section 3.3).
func smartSSDCaps() Capability {
	return Capability{
		OpScan:       NVMeBandwidth,
		OpFilter:     NVMeBandwidth,
		OpProject:    NVMeBandwidth,
		OpPreAgg:     4e9,
		OpCount:      NVMeBandwidth,
		OpDecompress: 5e9,
		OpRegexMatch: 6e9, // accelerators beat CPUs on regex (Section 3.3)
	}
}

// smartNICCaps: bump-in-the-wire processing at line rate (Section 4.3).
// The table is generated per NIC tier so faster NICs process faster.
func smartNICCaps(line sim.Rate) Capability {
	return Capability{
		OpFilter:     line,
		OpProject:    line,
		OpHash:       line,
		OpPartition:  line,
		OpPreAgg:     line / 2,
		OpCount:      line,
		OpCompress:   line / 4,
		OpDecompress: line / 2,
		OpEncrypt:    line,
		OpDecrypt:    line,
		OpJoin:       line / 4, // small-table joins only (Section 4.4)
	}
}

// nearMemoryCaps: the accelerator at the memory controller streams at
// full controller bandwidth (Section 5.2), unconstrained by the CPU's
// single-core ceiling.
func nearMemoryCaps() Capability {
	return Capability{
		OpFilter:       DDRBandwidth,
		OpProject:      DDRBandwidth,
		OpDecompress:   DDRBandwidth / 2,
		OpPreAgg:       DDRBandwidth / 2,
		OpCount:        DDRBandwidth,
		OpPointerChase: 2e9,
		OpTranspose:    DDRBandwidth / 2,
		OpListOps:      DDRBandwidth / 4,
	}
}

// switchCaps: programmable switches forward at line rate and can count
// and partition (Section 2: programmable switches).
func switchCaps(line sim.Rate) Capability {
	return Capability{
		OpCount:     line,
		OpPartition: line,
	}
}

// Default device parallelism. These count replicated processing units a
// single query stream cannot saturate alone: SSD compute engines over
// the flash channels, packet pipelines on a DPU, functional units at
// the memory controller. The passive resources next to them (media,
// wires, switches) stay serial, so lane-divided device busy is always
// floored by the honest aggregate bandwidth of the path — that floor is
// where worker scaling flattens.
const (
	SmartSSDUnits   = 4
	SmartNICUnits   = 4
	NearMemoryUnits = 2
)

// NewCPU builds a CPU device with the given number of cores. Rates scale
// with cores up to the memory-bandwidth ceiling handled by memdev, and
// Parallelism mirrors the core count so worker pools size themselves to
// the hardware.
func NewCPU(name string, cores int) *Device {
	caps := cpuCaps()
	for op, r := range caps {
		caps[op] = r * sim.Rate(cores)
	}
	return &Device{Name: name, Kind: KindCPU, Caps: caps, KernelSetup: KernelSetupCPU, Parallelism: cores}
}

// NewSmartSSD builds an in-storage processor with a bounded state budget.
func NewSmartSSD(name string) *Device {
	return &Device{
		Name: name, Kind: KindSmartSSD, Caps: smartSSDCaps(),
		KernelSetup: KernelSetupAcc, StateBudget: 64 * sim.MB,
		Parallelism: SmartSSDUnits,
	}
}

// NewSmartNIC builds a NIC/DPU processing at the given line rate.
func NewSmartNIC(name string, line sim.Rate) *Device {
	return &Device{
		Name: name, Kind: KindSmartNIC, Caps: smartNICCaps(line),
		KernelSetup: KernelSetupAcc, StateBudget: 256 * sim.MB,
		Parallelism: SmartNICUnits,
	}
}

// NewNearMemoryAccel builds a near-memory accelerator.
func NewNearMemoryAccel(name string) *Device {
	return &Device{
		Name: name, Kind: KindNearMemory, Caps: nearMemoryCaps(),
		KernelSetup: KernelSetupAcc, StateBudget: 32 * sim.MB,
		Parallelism: NearMemoryUnits,
	}
}

// NewSwitch builds a programmable switch.
func NewSwitch(name string, line sim.Rate) *Device {
	return &Device{
		Name: name, Kind: KindSwitch, Caps: switchCaps(line),
		KernelSetup: KernelSetupAcc, StateBudget: 16 * sim.MB,
	}
}

// NewMemory builds a passive DRAM device (no compute capabilities).
func NewMemory(name string) *Device {
	return &Device{Name: name, Kind: KindMemory, Caps: Capability{}}
}

// NewStorageMedia builds passive storage media.
func NewStorageMedia(name string) *Device {
	return &Device{Name: name, Kind: KindStorage, Caps: Capability{OpScan: NVMeBandwidth}}
}
