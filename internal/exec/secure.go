package exec

import (
	"encoding/binary"
	"fmt"

	"repro/internal/columnar"
	"repro/internal/encoding"
	"repro/internal/flow"
)

// EncryptStage and DecryptStage implement the paper's Section 1
// requirement that cloud query plans include encryption as a standard
// operation. The encrypt stage serializes each batch into its encoded
// wire form and seals it with AES-CTR + HMAC; the decrypt stage
// authenticates, opens and decodes. Between the two stages, batches
// travel as opaque sealed payloads — which also means the wire carries
// the (smaller) encoded representation.

// sealedSchema is the container format for in-flight sealed batches.
var sealedSchema = columnar.NewSchema(columnar.Field{Name: "sealed", Type: columnar.String})

// serializeBatch encodes a batch into a self-contained byte blob:
// column count, then per column a field header and the encoded column.
func serializeBatch(b *columnar.Batch) []byte {
	out := binary.LittleEndian.AppendUint32(nil, uint32(b.NumCols()))
	for i := 0; i < b.NumCols(); i++ {
		f := b.Schema().Fields[i]
		out = binary.LittleEndian.AppendUint16(out, uint16(len(f.Name)))
		out = append(out, f.Name...)
		out = append(out, byte(f.Type))
		out = append(out, encoding.EncodeColumn(b.Col(i)).Marshal()...)
	}
	return out
}

// deserializeBatch reverses serializeBatch.
func deserializeBatch(data []byte) (*columnar.Batch, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("exec: sealed batch truncated")
	}
	ncols := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	schema := &columnar.Schema{}
	var vecs []*columnar.Vector
	for i := 0; i < ncols; i++ {
		if len(data) < 2 {
			return nil, fmt.Errorf("exec: sealed batch field truncated")
		}
		nameLen := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < nameLen+1 {
			return nil, fmt.Errorf("exec: sealed batch name truncated")
		}
		name := string(data[:nameLen])
		typ := columnar.Type(data[nameLen])
		data = data[nameLen+1:]
		col, used, err := encoding.UnmarshalColumn(data)
		if err != nil {
			return nil, err
		}
		data = data[used:]
		v, err := col.Decode()
		if err != nil {
			return nil, err
		}
		schema.Fields = append(schema.Fields, columnar.Field{Name: name, Type: typ})
		vecs = append(vecs, v)
	}
	return columnar.BatchOf(schema, vecs...), nil
}

// EncryptStage seals batches for the wire.
type EncryptStage struct {
	Key *encoding.StreamKey
	seq uint64
}

// Name implements flow.Stage.
func (s *EncryptStage) Name() string { return "encrypt" }

// Process implements flow.Stage.
func (s *EncryptStage) Process(b *columnar.Batch, emit flow.Emit) error {
	sealed, err := s.Key.Encrypt(s.seq, serializeBatch(b))
	if err != nil {
		return err
	}
	s.seq++
	return emit(columnar.BatchOf(sealedSchema, columnar.FromStrings([]string{string(sealed)})))
}

// Flush implements flow.Stage.
func (s *EncryptStage) Flush(flow.Emit) error { return nil }

// SnapshotState implements flow.Snapshotter: the stream sequence number
// must survive a partial restart or replayed batches would reuse
// nonces / break the receiver's sequence check.
func (s *EncryptStage) SnapshotState() any { return s.seq }

// RestoreState implements flow.Snapshotter.
func (s *EncryptStage) RestoreState(state any) { s.seq = state.(uint64) }

// DecryptStage authenticates and opens sealed batches.
type DecryptStage struct {
	Key *encoding.StreamKey
}

// Name implements flow.Stage.
func (s *DecryptStage) Name() string { return "decrypt" }

// Process implements flow.Stage.
func (s *DecryptStage) Process(b *columnar.Batch, emit flow.Emit) error {
	if !b.Schema().Equal(sealedSchema) {
		return fmt.Errorf("exec: decrypt stage received unsealed batch %s", b.Schema())
	}
	for _, sealed := range b.Col(0).Strings() {
		blob, err := s.Key.Decrypt([]byte(sealed))
		if err != nil {
			return err
		}
		batch, err := deserializeBatch(blob)
		if err != nil {
			return err
		}
		if err := emit(batch); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements flow.Stage.
func (s *DecryptStage) Flush(flow.Emit) error { return nil }
