package core

import (
	"repro/internal/columnar"
	"repro/internal/plan"
)

// ComputeStats derives planner statistics from a loaded batch: exact
// distinct counts, integer min/max bounds, and average column widths.
// Engines call it at load time (statistics maintenance is an ingest-side
// task in both architectures).
func ComputeStats(b *columnar.Batch) plan.TableStats {
	st := plan.StatsFromSchema(b.Schema())
	st.Rows = int64(b.NumRows())
	for c := 0; c < b.NumCols(); c++ {
		col := b.Col(c)
		switch col.Type() {
		case columnar.Int64:
			vals := col.Int64s()
			distinct := make(map[int64]struct{})
			first := true
			for i, v := range vals {
				if col.IsNull(i) {
					continue
				}
				distinct[v] = struct{}{}
				if first {
					st.MinInt[c], st.MaxInt[c] = v, v
					first = false
					continue
				}
				if v < st.MinInt[c] {
					st.MinInt[c] = v
				}
				if v > st.MaxInt[c] {
					st.MaxInt[c] = v
				}
			}
			st.Distinct[c] = int64(len(distinct))
			st.IntBounds[c] = !first
		case columnar.String:
			distinct := make(map[string]struct{})
			var bytes int64
			for i, v := range col.Strings() {
				if col.IsNull(i) {
					continue
				}
				distinct[v] = struct{}{}
				bytes += int64(len(v)) + 16
			}
			st.Distinct[c] = int64(len(distinct))
			if n := int64(col.Len()); n > 0 {
				st.ColBytes[c] = bytes / n
				if st.ColBytes[c] == 0 {
					st.ColBytes[c] = 1
				}
			}
		case columnar.Float64:
			// Distinct tracking for floats is rarely useful; leave 0.
		case columnar.Bool:
			st.Distinct[c] = 2
		}
	}
	return st
}

// MergeStats folds the statistics of an appended batch into existing
// table statistics (distinct counts saturate at the sum — an upper
// bound, which is the safe direction for selectivity).
func MergeStats(a, b plan.TableStats) plan.TableStats {
	out := a
	out.Rows = a.Rows + b.Rows
	for c := range out.Distinct {
		if c < len(b.Distinct) {
			out.Distinct[c] = a.Distinct[c] + b.Distinct[c]
		}
		if c < len(b.IntBounds) && b.IntBounds[c] {
			if !a.IntBounds[c] {
				out.MinInt[c], out.MaxInt[c] = b.MinInt[c], b.MaxInt[c]
				out.IntBounds[c] = true
			} else {
				if b.MinInt[c] < out.MinInt[c] {
					out.MinInt[c] = b.MinInt[c]
				}
				if b.MaxInt[c] > out.MaxInt[c] {
					out.MaxInt[c] = b.MaxInt[c]
				}
			}
		}
	}
	return out
}
