package core

import (
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/sim"
)

// meterKey identifies one device or link meter.
type meterKey struct {
	link bool
	name string
}

// meterSnap captures one meter plus its per-lane busy split, so a later
// delta can divide replicated-lane work across a device's units
// (fabric.EffectiveBusy) while keeping the aggregate totals exact.
type meterSnap struct {
	m     sim.Snapshot
	lanes []sim.VTime
}

// snapshotClusterMeters captures every device and link meter so a later
// delta isolates one execution's work from the cluster's running totals.
func snapshotClusterMeters(c *fabric.Cluster) map[meterKey]meterSnap {
	out := make(map[meterKey]meterSnap)
	for _, d := range c.Devices() {
		out[meterKey{false, d.Name}] = meterSnap{m: d.Meter.Snapshot(), lanes: d.LaneBusy()}
	}
	for _, l := range c.Links() {
		out[meterKey{true, l.Name}] = meterSnap{m: l.Meter.Snapshot(), lanes: l.LaneBusy()}
	}
	return out
}

func (e *DataFlowEngine) snapshotMeters() map[meterKey]meterSnap {
	return snapshotClusterMeters(e.Cluster)
}

func (e *VolcanoEngine) snapshotMeters() map[meterKey]meterSnap {
	return snapshotClusterMeters(e.Cluster)
}

// deviceDelta returns a device's meter delta since before, plus its
// effective busy time: work charged to positional lanes is divided
// across the device's replicated units, everything else stays serial.
func deviceDelta(d *fabric.Device, before map[meterKey]meterSnap) (sim.Snapshot, sim.VTime) {
	prev := before[meterKey{false, d.Name}]
	delta := d.Meter.Snapshot().Sub(prev.m)
	return delta, fabric.EffectiveBusy(delta.Busy, prev.lanes, d.LaneBusy())
}

// linkDelta is deviceDelta for links; only multi-queue links (flash
// channels, DMA queues) ever split, network links stay serial.
func linkDelta(l *fabric.Link, before map[meterKey]meterSnap) (sim.Snapshot, sim.VTime) {
	prev := before[meterKey{true, l.Name}]
	delta := l.Meter.Snapshot().Sub(prev.m)
	return delta, fabric.EffectiveBusy(delta.Busy, prev.lanes, l.LaneBusy())
}

// sampleMeterSeries snapshots every cluster meter's query-lifecycle
// delta into named trace series: one point at virtual time 0 and one at
// the trace makespan. Deterministic: devices and links iterate in the
// cluster's fixed order. Meters that did no work are skipped.
func sampleMeterSeries(c *fabric.Cluster, tr *obs.Trace, before map[meterKey]meterSnap) {
	if !tr.Enabled() {
		return
	}
	mk := tr.Makespan()
	for _, d := range c.Devices() {
		delta := d.Meter.Snapshot().Sub(before[meterKey{false, d.Name}].m)
		if delta.Bytes == 0 && delta.Busy == 0 {
			continue
		}
		tr.Sample("meter."+d.Name+".bytes", "bytes", 0, 0)
		tr.Sample("meter."+d.Name+".bytes", "bytes", mk, float64(delta.Bytes))
		tr.Sample("meter."+d.Name+".busy", "vns", 0, 0)
		tr.Sample("meter."+d.Name+".busy", "vns", mk, float64(delta.Busy))
	}
	for _, l := range c.Links() {
		delta := l.Meter.Snapshot().Sub(before[meterKey{true, l.Name}].m)
		if delta.Bytes == 0 && delta.Messages == 0 {
			continue
		}
		tr.Sample("meter."+l.Name+".bytes", "bytes", 0, 0)
		tr.Sample("meter."+l.Name+".bytes", "bytes", mk, float64(delta.Bytes))
		tr.Sample("meter."+l.Name+".messages", "count", 0, 0)
		tr.Sample("meter."+l.Name+".messages", "count", mk, float64(delta.Messages))
	}
}
