// Package flow implements the paper's Section 7.1 execution substrate: a
// push-based pipeline of stages connected by queues with credit-based
// flow control, the way PCIe moves TLPs. Data is processed in one stage
// and sent to the next depending on that stage's queue availability;
// credits flow as a low-traffic counter-stream of control messages.
//
// Stages run on goroutines (the DMA engines and accelerators of the
// model); each port knows the fabric links its traffic crosses and
// charges them for every data batch and credit message, so experiments
// can report both throughput and control-traffic overhead.
package flow

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/sim"
)

// ErrCanceled is returned by port operations when the pipeline has been
// torn down due to an error elsewhere.
var ErrCanceled = errors.New("flow: pipeline canceled")

// portItem is one message on a port: a data batch, or (when b is nil) a
// checkpoint marker carrying the epoch number. Markers are punctuation:
// FIFO ordering guarantees that when a marker arrives, every batch of
// its epoch has already arrived, so a stage's state at marker receipt is
// a consistent per-epoch snapshot (Chandy-Lamport on a linear chain).
type portItem struct {
	b     *columnar.Batch
	epoch int
}

// Port is one credit-controlled queue between two pipeline stages.
type Port struct {
	Name string
	// Path lists the fabric links a batch crosses between the stages
	// (possibly empty for on-device handoff). Data transfers charge
	// every link; credit returns charge one control message per link.
	Path []*fabric.Link

	depth       int
	creditBatch int

	ch      chan portItem
	credits chan struct{}
	done    <-chan struct{}
	// tape is the receiving stage's tape; only the single sending
	// goroutine appends to its Xfers, so no lock is needed. Nil when
	// tracing is off, keeping Send allocation-free.
	tape *obs.StageTape

	pending    atomic.Int64 // credits held back at the receiver
	dataMsgs   atomic.Int64
	creditMsgs atomic.Int64
	markerMsgs atomic.Int64
	bytes      atomic.Int64
	stalls     atomic.Int64 // Sends that found the credit window empty

	// stallCtr mirrors stalls into the fleet registry as they happen;
	// nil (telemetry off) costs nothing.
	stallCtr *metrics.Counter
}

// newPort builds a port of the given depth. creditBatch controls how
// many consumed credits the receiver accumulates before returning them
// in one control message; it is clamped to at most half the depth so the
// sender can never starve. tape, when non-nil, is the receiving stage's
// tape; Send appends each batch's per-link transfer costs to it.
func newPort(name string, path []*fabric.Link, depth, creditBatch int, done <-chan struct{}, tape *obs.StageTape) *Port {
	if depth < 1 {
		depth = 1
	}
	if creditBatch < 1 {
		creditBatch = 1
	}
	if creditBatch > depth/2 && depth > 1 {
		creditBatch = depth / 2
	}
	if depth == 1 {
		creditBatch = 1
	}
	p := &Port{
		Name:        name,
		Path:        path,
		depth:       depth,
		creditBatch: creditBatch,
		ch:          make(chan portItem, depth),
		credits:     make(chan struct{}, depth),
		done:        done,
		tape:        tape,
	}
	for i := 0; i < depth; i++ {
		p.credits <- struct{}{}
	}
	return p
}

// Send blocks until a credit is available, then transfers the batch,
// charging every link on the path. An injected fault on any path link
// aborts the transfer with a LinkError before any credit is consumed.
// A batch carrying a lazy selection vector is compacted first when the
// path crosses any fabric link: shipping dead rows would waste exactly
// the bandwidth late materialization exists to save. On-device handoff
// (empty path) keeps the selection lazy.
func (p *Port) Send(b *columnar.Batch) error {
	if len(p.Path) > 0 {
		b = b.Compact()
	}
	for _, l := range p.Path {
		if err := l.CheckFault(); err != nil {
			return &LinkError{Link: l.Name, Err: err}
		}
	}
	// Take a credit without blocking when one is ready; an empty credit
	// window is a stall — the downstream queue is full and this sender
	// is now blocked on back-pressure, the congestion signal the
	// utilization gauges want alongside raw byte counts.
	select {
	case <-p.credits:
	default:
		p.stalls.Add(1)
		p.stallCtr.Inc()
		select {
		case <-p.done:
			return ErrCanceled
		case <-p.credits:
		}
	}
	n := sim.Bytes(b.ByteSize())
	if p.tape != nil {
		x := obs.Xfer{Bytes: n, Hops: make([]obs.Hop, 0, len(p.Path))}
		for _, l := range p.Path {
			x.Hops = append(x.Hops, obs.Hop{Link: l.Name, Cost: l.Transfer(n)})
		}
		p.tape.Xfers = append(p.tape.Xfers, x)
	} else {
		for _, l := range p.Path {
			l.Transfer(n)
		}
	}
	p.dataMsgs.Add(1)
	p.bytes.Add(int64(n))
	select {
	case <-p.done:
		return ErrCanceled
	case p.ch <- portItem{b: b}:
	}
	return nil
}

// SendMarker forwards a checkpoint marker downstream. Markers ride the
// same FIFO as data but bypass credits: they are control traffic, so
// each path link is charged one control message, not a transfer. A
// marker send can still block on a full queue; that back-pressure is
// intended and cancellable via the done channel.
func (p *Port) SendMarker(epoch int) error {
	for _, l := range p.Path {
		l.Message()
	}
	p.markerMsgs.Add(1)
	select {
	case <-p.done:
		return ErrCanceled
	case p.ch <- portItem{epoch: epoch}:
	}
	return nil
}

// Close signals end-of-stream to the receiver. Only the sender may call
// it, exactly once.
func (p *Port) Close() { close(p.ch) }

// Recv returns the next batch, skipping any checkpoint markers. ok is
// false at end-of-stream. The receiver must call CreditReturn after it
// has finished processing each received batch.
func (p *Port) Recv() (*columnar.Batch, bool, error) {
	for {
		it, ok, err := p.recvItem()
		if err != nil || !ok {
			return nil, false, err
		}
		if it.b != nil {
			return it.b, true, nil
		}
	}
}

// recvItem returns the next message — batch or marker. ok is false at
// end-of-stream.
func (p *Port) recvItem() (portItem, bool, error) {
	select {
	case <-p.done:
		return portItem{}, false, ErrCanceled
	case it, ok := <-p.ch:
		if !ok {
			return portItem{}, false, nil
		}
		return it, true, nil
	}
}

// CreditReturn hands one consumed credit back toward the sender.
// Credits are batched: only every creditBatch-th call produces an actual
// control message on the path.
func (p *Port) CreditReturn() {
	if n := p.pending.Add(1); int(n) >= p.creditBatch {
		p.flushCredits()
	}
}

// flushCredits returns all pending credits in one control message.
func (p *Port) flushCredits() {
	for {
		n := p.pending.Load()
		if n == 0 {
			return
		}
		if !p.pending.CompareAndSwap(n, 0) {
			continue
		}
		for _, l := range p.Path {
			l.Message()
		}
		p.creditMsgs.Add(1)
		for i := int64(0); i < n; i++ {
			p.credits <- struct{}{}
		}
		return
	}
}

// Stats reports the port's traffic counters.
func (p *Port) Stats() PortStats {
	return PortStats{
		Name:           p.Name,
		Depth:          p.depth,
		DataMessages:   p.dataMsgs.Load(),
		CreditMessages: p.creditMsgs.Load(),
		MarkerMessages: p.markerMsgs.Load(),
		CreditStalls:   p.stalls.Load(),
		Bytes:          sim.Bytes(p.bytes.Load()),
	}
}

// PortStats is a snapshot of one port's counters. The paper's claim that
// credit-based flow control "is easy to implement and low traffic"
// (Section 7.1) is checked by comparing CreditMessages to DataMessages.
// MarkerMessages counts checkpoint punctuation, present only when the
// pipeline checkpoints.
type PortStats struct {
	Name           string
	Depth          int
	DataMessages   int64
	CreditMessages int64
	MarkerMessages int64
	// CreditStalls counts Sends that blocked because the credit window
	// was empty — how often back-pressure actually bit, versus credits
	// merely being accounting.
	CreditStalls int64
	Bytes        sim.Bytes
}

// String renders the stats compactly.
func (s PortStats) String() string {
	return fmt.Sprintf("%s: %d data, %d credit msgs, %s", s.Name, s.DataMessages, s.CreditMessages, s.Bytes)
}
