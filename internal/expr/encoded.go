package expr

import (
	"math"
	"strings"

	"repro/internal/columnar"
	"repro/internal/encoding"
)

// EvalEncoded evaluates a predicate tree directly against encoded
// columns, without decoding values, by dispatching each leaf to the
// matching kernel in internal/encoding. col maps a predicate column
// index to its encoded column (nil when unavailable).
//
// ok=false means some leaf had no kernel for its type/codec pair; the
// caller must fall back to decode-then-eval. The result is bit-identical
// to Predicate.Eval on the decoded batch, including the collapsed NULL
// semantics: leaf comparisons with NULL are false, and Not flips every
// row's bit — NULL rows included — exactly as Not.Eval does.
func EvalEncoded(p Predicate, col func(int) *encoding.EncodedColumn) (*columnar.Bitmap, bool, error) {
	switch t := p.(type) {
	case *Cmp:
		ec := col(t.Col)
		if ec == nil {
			return nil, false, nil
		}
		return evalCmpEncoded(t, ec)
	case *Between:
		ec := col(t.Col)
		if ec == nil {
			return nil, false, nil
		}
		return ec.EvalIntRange(t.Lo, t.Hi)
	case *In:
		ec := col(t.Col)
		if ec == nil || len(t.Vals) == 0 {
			return nil, false, nil
		}
		switch t.Vals[0].Type {
		case columnar.Int64:
			vals := make([]int64, len(t.Vals))
			for i, v := range t.Vals {
				vals[i] = v.I
			}
			return ec.EvalIntIn(vals)
		case columnar.String:
			want := make(map[string]struct{}, len(t.Vals))
			for _, v := range t.Vals {
				want[v.S] = struct{}{}
			}
			return ec.EvalStringMatch(func(s string) bool {
				_, ok := want[s]
				return ok
			})
		}
		return nil, false, nil
	case *Like:
		ec := col(t.Col)
		if ec == nil {
			return nil, false, nil
		}
		return ec.EvalStringMatch(func(s string) bool { return strings.Contains(s, t.Pattern) })
	case *And:
		if len(t.Preds) == 0 {
			return nil, false, nil
		}
		acc, ok, err := EvalEncoded(t.Preds[0], col)
		if !ok || err != nil {
			return nil, ok, err
		}
		for _, sub := range t.Preds[1:] {
			bm, ok, err := EvalEncoded(sub, col)
			if !ok || err != nil {
				return nil, ok, err
			}
			acc.And(bm)
		}
		return acc, true, nil
	case *Or:
		if len(t.Preds) == 0 {
			return nil, false, nil
		}
		acc, ok, err := EvalEncoded(t.Preds[0], col)
		if !ok || err != nil {
			return nil, ok, err
		}
		for _, sub := range t.Preds[1:] {
			bm, ok, err := EvalEncoded(sub, col)
			if !ok || err != nil {
				return nil, ok, err
			}
			acc.Or(bm)
		}
		return acc, true, nil
	case *Not:
		inner, ok, err := EvalEncoded(t.Pred, col)
		if !ok || err != nil {
			return nil, ok, err
		}
		out := columnar.NewBitmap(inner.Len())
		out.Fill(0, out.Len())
		out.AndNot(inner)
		return out, true, nil
	}
	return nil, false, nil
}

const (
	minInt64 = -int64(^uint64(0)>>1) - 1
	maxInt64 = int64(^uint64(0) >> 1)
)

func evalCmpEncoded(c *Cmp, ec *encoding.EncodedColumn) (*columnar.Bitmap, bool, error) {
	switch c.Val.Type {
	case columnar.Int64:
		v := c.Val.I
		switch c.Op {
		case Eq:
			return ec.EvalIntRange(v, v)
		case Lt:
			if v == minInt64 {
				return ec.EvalIntRange(1, 0) // empty range: all false
			}
			return ec.EvalIntRange(minInt64, v-1)
		case Le:
			return ec.EvalIntRange(minInt64, v)
		case Gt:
			if v == maxInt64 {
				return ec.EvalIntRange(1, 0)
			}
			return ec.EvalIntRange(v+1, maxInt64)
		case Ge:
			return ec.EvalIntRange(v, maxInt64)
		case Ne:
			return complementEq(ec, func() (*columnar.Bitmap, bool, error) { return ec.EvalIntRange(v, v) })
		}
	case columnar.Float64:
		v := c.Val.F
		switch c.Op {
		case Eq:
			return ec.EvalFloatRange(v, v, true, true)
		case Lt:
			return ec.EvalFloatRange(math.Inf(-1), v, true, false)
		case Le:
			return ec.EvalFloatRange(math.Inf(-1), v, true, true)
		case Gt:
			return ec.EvalFloatRange(v, math.Inf(1), false, true)
		case Ge:
			return ec.EvalFloatRange(v, math.Inf(1), true, true)
		case Ne:
			return complementEq(ec, func() (*columnar.Bitmap, bool, error) { return ec.EvalFloatRange(v, v, true, true) })
		}
	case columnar.String:
		want := c.Val.S
		op := c.Op
		return ec.EvalStringMatch(func(s string) bool { return cmpString(s, want, op) })
	}
	return nil, false, nil
}

// complementEq computes v != x as all-rows minus (v == x) minus NULL
// rows, matching the decoded path where a NULL comparison is false.
func complementEq(ec *encoding.EncodedColumn, eq func() (*columnar.Bitmap, bool, error)) (*columnar.Bitmap, bool, error) {
	eqBm, ok, err := eq()
	if !ok || err != nil {
		return nil, ok, err
	}
	out := columnar.NewBitmap(eqBm.Len())
	out.Fill(0, out.Len())
	out.AndNot(eqBm)
	nulls, err := ec.NullBitmap()
	if err != nil {
		return nil, false, err
	}
	if nulls != nil {
		out.AndNot(nulls)
	}
	return out, true, nil
}
