package core

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/workload"
)

// lifecycleEngine builds a dataflow engine over a lineitem table with a
// chosen segment size, so tests control how many scan segments (and
// therefore checkpoint epochs) a query spans.
func lifecycleEngine(t *testing.T, rows, segmentRows int) *DataFlowEngine {
	t.Helper()
	df := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	df.Storage.SegmentRows = segmentRows
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := df.Load("lineitem", workload.GenLineitem(workload.DefaultLineitemConfig(rows))); err != nil {
		t.Fatal(err)
	}
	return df
}

// killPoint arms a budget-1 device-offline fault against the first
// intermediate stage device of the query's top-ranked variant, striking
// deterministically on the (after+1)-th batch the stage sees.
func killPoint(t *testing.T, df *DataFlowEngine, q *plan.Query, after int) (string, *faults.Injector) {
	t.Helper()
	variants, err := df.Plan(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := variants[0]
	target := ""
	for _, pl := range best.Placements {
		if pl.SiteIdx > 0 && pl.SiteIdx < len(best.Path.Sites)-1 {
			target = best.Path.Sites[pl.SiteIdx].Device.Name
			break
		}
	}
	if target == "" {
		t.Fatalf("variant %q places no stage on an intermediate device", best.Variant)
	}
	inj := faults.New(0xF00D)
	inj.Arm(faults.Point{Kind: faults.DeviceOffline, Target: target, Prob: 1, Budget: 1, After: after})
	return target, inj
}

// A mid-query device kill with checkpointing on must recover by a
// stage-level partial restart — replaying only the segments since the
// last completed epoch — while the same kill without checkpointing
// abandons the whole attempt. Both answer correctly; the partial
// restart must replay strictly fewer bytes than the whole-query
// failover wastes.
func TestPartialRestartReplaysLessThanFailover(t *testing.T) {
	const rows, segRows = 20000, 2500 // 8 segments, one batch each
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())

	clean := lifecycleEngine(t, rows, segRows)
	cleanRes, err := clean.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want := rowHistogram(cleanRes)

	// The stage sees one offline check at startup plus one per batch:
	// After=7 strikes on batch 7 of 8, after the epoch markers for
	// segments 2, 4 and 6 have been injected (CheckpointSegments=2).
	// Whether an epoch has *completed* (its marker fell off the last
	// stage) by the time the strike lands depends on goroutine
	// scheduling: when none has, the engine correctly falls back to
	// whole-query failover, so re-run the scenario on a fresh engine
	// until the strike catches a completed checkpoint.
	var pres *Result
	var partial *DataFlowEngine
	var target string
	for try := 0; try < 5; try++ {
		partial = lifecycleEngine(t, rows, segRows)
		partial.PartialRestart = true
		partial.CheckpointSegments = 2
		var inj *faults.Injector
		target, inj = killPoint(t, partial, q, 7)
		partial.Faults = inj

		res, err := partial.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("query did not survive partial restart after killing %s: %v", target, err)
		}
		if res.Stats.PartialRestarts > 0 {
			pres = res
			break
		}
	}
	if pres == nil {
		t.Fatal("no run recovered by partial restart in 5 tries")
	}
	if pres.Stats.PartialRestarts != 1 {
		t.Errorf("PartialRestarts = %d, want 1", pres.Stats.PartialRestarts)
	}
	if pres.Stats.Failovers != 0 {
		t.Errorf("Failovers = %d, want 0 (restart should stay inside the attempt)", pres.Stats.Failovers)
	}
	if pres.Stats.Checkpoints < 1 {
		t.Errorf("Checkpoints = %d, want >= 1", pres.Stats.Checkpoints)
	}
	if pres.Stats.ReplayedBytes == 0 {
		t.Error("partial restart metered no replayed bytes")
	}
	if pres.Stats.RecoveryBytes < pres.Stats.ReplayedBytes {
		t.Errorf("RecoveryBytes %v < ReplayedBytes %v", pres.Stats.RecoveryBytes, pres.Stats.ReplayedBytes)
	}
	if !pres.Stats.DegradedPlacement {
		t.Error("DegradedPlacement not set after re-hosting a stage")
	}
	if got := rowHistogram(pres); len(got) != len(want) {
		t.Fatalf("partial-restart answer has %d rows, want %d", len(got), len(want))
	} else {
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("partial-restart answer differs at %q", k)
			}
		}
	}
	if !partial.Cluster.MustDevice(target).IsOffline() {
		t.Errorf("%s not marked offline after the injected kill", target)
	}

	// Same kill, checkpointing off: the whole attempt is wasted and the
	// query fails over to a re-planned variant.
	whole := lifecycleEngine(t, rows, segRows)
	wtarget, winj := killPoint(t, whole, q, 7)
	whole.Faults = winj

	wres, err := whole.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("query did not survive failover after killing %s: %v", wtarget, err)
	}
	if wres.Stats.Failovers < 1 {
		t.Errorf("Failovers = %d, want >= 1", wres.Stats.Failovers)
	}
	if wres.Stats.PartialRestarts != 0 {
		t.Errorf("PartialRestarts = %d with PartialRestart disabled", wres.Stats.PartialRestarts)
	}
	if got := rowHistogram(wres); len(got) != len(want) {
		t.Fatalf("failover answer has %d rows, want %d", len(got), len(want))
	}

	// The honest accounting that justifies the machinery: replaying a
	// checkpointed suffix moves strictly fewer bytes than re-running the
	// query from scratch.
	if pres.Stats.ReplayedBytes >= wres.Stats.RecoveryBytes {
		t.Errorf("partial restart replayed %v, not less than whole-query failover waste %v",
			pres.Stats.ReplayedBytes, wres.Stats.RecoveryBytes)
	}
}

func TestExecutePreCancelledContext(t *testing.T) {
	df := lifecycleEngine(t, 2000, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := df.Execute(ctx, plan.NewQuery("lineitem").WithCount())
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled retained in chain", err)
	}
	if df.Scheduler.ActiveCount() != 0 {
		t.Error("cancelled query left an admission")
	}
}

func TestExecuteExpiredDeadline(t *testing.T) {
	df := lifecycleEngine(t, 2000, 1000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := df.Execute(ctx, plan.NewQuery("lineitem").WithCount())
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded retained in chain", err)
	}
	if df.Scheduler.ActiveCount() != 0 {
		t.Error("expired query left an admission")
	}
}

// Cancelling mid-flight — at staggered instants across repeated runs, so
// cancellation lands during admission, the scan, and stage execution —
// must always release the admission, return link loads to zero, and
// leave no flow goroutine behind. Every error surfaced is the typed one.
func TestMidFlightCancelReleasesEverything(t *testing.T) {
	df := lifecycleEngine(t, 20000, 1000) // 20 segments: many ctx checkpoints
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())
	cancelled := 0
	for i := 0; i < 12; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(time.Duration(i*50)*time.Microsecond, cancel)
		res, err := df.Execute(ctx, q)
		timer.Stop()
		cancel()
		switch {
		case err == nil:
			if res.Rows() == 0 {
				t.Fatalf("run %d: empty result without error", i)
			}
		case errors.Is(err, ErrCancelled):
			cancelled++
		default:
			t.Fatalf("run %d: err = %v, want ErrCancelled or success", i, err)
		}
	}
	if cancelled == 0 {
		t.Error("no run was cancelled mid-flight; staggering too slow")
	}
	if df.Scheduler.ActiveCount() != 0 {
		t.Errorf("ActiveCount = %d after cancels, want 0", df.Scheduler.ActiveCount())
	}
	for _, l := range df.Cluster.Links() {
		if load := df.Scheduler.LinkLoad(l); load != 0 {
			t.Errorf("link %s still carries admission load %d", l.Name, load)
		}
	}
	assertNoFlowGoroutines(t)
}

// A query that fails on a storage error (not a cancellation) must also
// release its admission and link reservations.
func TestErrorPathReleasesAdmission(t *testing.T) {
	df := lifecycleEngine(t, 5000, 1000)
	meta, err := df.Storage.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	key := meta.SegmentKeys[len(meta.SegmentKeys)/2]
	blob, err := df.Storage.Store().Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	mangled := append([]byte(nil), blob...)
	mangled[len(mangled)/2] ^= 0x40
	df.Storage.Store().Put(key, mangled)

	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())
	for i := 0; i < 3; i++ {
		if _, err := df.Execute(context.Background(), q); err == nil {
			t.Fatal("corrupted segment produced a result")
		}
		if df.Scheduler.ActiveCount() != 0 {
			t.Fatalf("run %d leaked an admission", i)
		}
		for _, l := range df.Cluster.Links() {
			if load := df.Scheduler.LinkLoad(l); load != 0 {
				t.Fatalf("run %d left load %d on link %s", i, load, l.Name)
			}
		}
	}
	assertNoFlowGoroutines(t)
}

// Overload shedding end to end: with one execution slot and a one-deep
// admit queue, a burst of concurrent queries must split into successes
// and fast typed ErrOverloaded rejections — never a wrong answer, never
// a leaked admission.
func TestOverloadShedsWithTypedError(t *testing.T) {
	df := lifecycleEngine(t, 10000, 1000)
	df.Scheduler.MaxActive = 1
	df.Scheduler.QueueCap = 1
	q := plan.NewQuery("lineitem").WithCount()

	const burst = 6
	type outcome struct {
		res *Result
		err error
	}
	results := make(chan outcome, burst)
	for i := 0; i < burst; i++ {
		go func() {
			res, err := df.Execute(context.Background(), q)
			results <- outcome{res, err}
		}()
	}
	ok, shed := 0, 0
	for i := 0; i < burst; i++ {
		o := <-results
		switch {
		case o.err == nil:
			if got := o.res.Batches[0].Col(0).Int64s()[0]; got != 10000 {
				t.Errorf("count under overload = %d, want 10000", got)
			}
			ok++
		case errors.Is(o.err, sched.ErrOverloaded):
			shed++
		default:
			t.Errorf("unexpected error under overload: %v", o.err)
		}
	}
	if ok == 0 {
		t.Error("no query succeeded under overload")
	}
	if ok+shed != burst {
		t.Errorf("ok=%d shed=%d, want all %d accounted", ok, shed, burst)
	}
	if df.Scheduler.ActiveCount() != 0 || df.Scheduler.QueueDepth() != 0 {
		t.Errorf("active=%d queued=%d after burst, want 0/0",
			df.Scheduler.ActiveCount(), df.Scheduler.QueueDepth())
	}
}

// assertNoFlowGoroutines fails if any goroutine is still parked inside
// the flow runtime — the engine-level counterpart of the flow package's
// own leak check.
func assertNoFlowGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		if !bytes.Contains(buf, []byte("repro/internal/flow.")) {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("flow goroutines leaked:\n%s", buf)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
