package interconnect

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func testLink() *fabric.Link {
	return &fabric.Link{Name: "l", A: "a", B: "b",
		Bandwidth: fabric.PCIeBandwidth[fabric.LinkCXL], Latency: fabric.CXLLatency}
}

func TestHardwareReadCachesAndHits(t *testing.T) {
	d := NewDomain(HardwareCXL, testLink())
	d.Write("cpu", 1, 42)
	v, st1 := d.Read("accel", 1)
	if v != 42 {
		t.Fatalf("read = %d", v)
	}
	if st1.Hits != 0 || st1.Bytes != CacheLine {
		t.Errorf("first read stats = %+v, want miss", st1)
	}
	v, st2 := d.Read("accel", 1)
	if v != 42 || st2.Hits != 1 || st2.Bytes != 0 {
		t.Errorf("second read = %d stats %+v, want cached hit", v, st2)
	}
}

func TestHardwareWriteInvalidatesSharers(t *testing.T) {
	d := NewDomain(HardwareCXL, testLink())
	d.Write("cpu", 7, 1)
	d.Read("a1", 7)
	d.Read("a2", 7)
	d.Read("a3", 7)
	st := d.Write("cpu", 7, 2)
	if st.Messages != 3 {
		t.Errorf("invalidations = %d, want 3", st.Messages)
	}
	// All agents see the new value; their first re-read is a miss.
	for _, agent := range []string{"a1", "a2", "a3"} {
		v, rst := d.Read(agent, 7)
		if v != 2 {
			t.Errorf("%s read stale value %d", agent, v)
		}
		if rst.Hits != 0 {
			t.Errorf("%s hit on invalidated line", agent)
		}
	}
	if d.Agents() != 4 {
		t.Errorf("Agents = %d, want 4", d.Agents())
	}
}

func TestHardwareWriteNoSharersNoMessages(t *testing.T) {
	d := NewDomain(HardwareCXL, testLink())
	st := d.Write("cpu", 1, 5)
	if st.Messages != 0 {
		t.Errorf("write with no sharers sent %d invalidations", st.Messages)
	}
}

func TestSoftwareNeverCaches(t *testing.T) {
	d := NewDomain(SoftwareRDMA, testLink())
	d.Write("cpu", 1, 10)
	for i := 0; i < 3; i++ {
		v, st := d.Read("accel", 1)
		if v != 10 {
			t.Fatalf("read = %d", v)
		}
		if st.Hits != 0 || st.Bytes != CacheLine {
			t.Errorf("software read %d cached: %+v", i, st)
		}
	}
}

func TestSoftwareWriteLockCost(t *testing.T) {
	d := NewDomain(SoftwareRDMA, testLink())
	st := d.Write("cpu", 1, 10)
	if st.Messages != 3 {
		t.Errorf("software write messages = %d, want 3 (lock/grant/unlock)", st.Messages)
	}
}

func TestReadMostlyWorkloadFavorsHardware(t *testing.T) {
	// The paper's claim: hardware coherency lets many agents cache and
	// operate on the latest contents simultaneously. Under a
	// read-mostly mix, hardware must do far better.
	run := func(mode Mode) AccessStats {
		d := NewDomain(mode, testLink())
		var total AccessStats
		rng := sim.NewRNG(42)
		for i := 0; i < 2000; i++ {
			agent := []string{"a", "b", "c", "d"}[rng.Intn(4)]
			line := int64(rng.Intn(16))
			if rng.Intn(10) == 0 { // 10% writes
				total.Add(d.Write(agent, line, int64(i)))
			} else {
				_, st := d.Read(agent, line)
				total.Add(st)
			}
		}
		return total
	}
	hw := run(HardwareCXL)
	sw := run(SoftwareRDMA)
	if hw.Bytes*2 >= sw.Bytes {
		t.Errorf("hardware moved %v vs software %v; want >=2x reduction", hw.Bytes, sw.Bytes)
	}
	if hw.Time >= sw.Time {
		t.Errorf("hardware time %v >= software %v", hw.Time, sw.Time)
	}
	if hw.Hits == 0 {
		t.Error("hardware mode recorded no cache hits")
	}
}

// Property: in both modes, a read after a write always returns the last
// written value (no stale reads), for any interleaving of agents.
func TestCoherencyNoStaleReadsProperty(t *testing.T) {
	f := func(ops []struct {
		Agent byte
		Line  uint8
		Write bool
		Val   int64
	}, hw bool) bool {
		mode := SoftwareRDMA
		if hw {
			mode = HardwareCXL
		}
		d := NewDomain(mode, testLink())
		last := make(map[int64]int64)
		for _, op := range ops {
			agent := string(rune('a' + op.Agent%5))
			line := int64(op.Line % 8)
			if op.Write {
				d.Write(agent, line, op.Val)
				last[line] = op.Val
			} else {
				v, _ := d.Read(agent, line)
				if v != last[line] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewHostLinkGenerations(t *testing.T) {
	prev := sim.Rate(0)
	for _, kind := range []fabric.LinkKind{fabric.LinkPCIe3, fabric.LinkPCIe4, fabric.LinkPCIe5, fabric.LinkPCIe6, fabric.LinkPCIe7} {
		l, err := NewHostLink(kind)
		if err != nil {
			t.Fatal(err)
		}
		if l.Bandwidth != prev*2 && prev != 0 {
			t.Errorf("%v bandwidth %v is not double the previous %v", kind, l.Bandwidth, prev)
		}
		prev = l.Bandwidth
	}
	cxl, err := NewHostLink(fabric.LinkCXL)
	if err != nil {
		t.Fatal(err)
	}
	if cxl.Latency >= fabric.PCIeLatency {
		t.Error("CXL latency not lower than plain PCIe")
	}
	if _, err := NewHostLink(fabric.LinkEth100); err == nil {
		t.Error("Ethernet accepted as host link")
	}
}

func TestModeString(t *testing.T) {
	if SoftwareRDMA.String() != "software-rdma" || HardwareCXL.String() != "hardware-cxl" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode empty")
	}
}
