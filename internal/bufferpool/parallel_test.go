package bufferpool

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// assertNoPoolLeaks fails the test if goroutines started during it are
// still parked inside this package at cleanup time — a parallel scan
// that abandons its workers mid-fetch would show up here.
func assertNoPoolLeaks(t *testing.T) {
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			if !bytes.Contains(buf[:n], []byte("repro/internal/bufferpool.")) ||
				!bytes.Contains(buf[:n], []byte("goroutine")) {
				return
			}
			stale := false
			for _, g := range bytes.Split(buf[:n], []byte("\n\n")) {
				if bytes.Contains(g, []byte("repro/internal/bufferpool.(*Pool)")) &&
					!bytes.Contains(g, []byte("assertNoPoolLeaks")) {
					stale = true
				}
			}
			if !stale {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutines still inside bufferpool:\n%s", buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// Parallel scan workers hammer the pool with overlapping Get/Unpin on a
// shared segment set. Every worker must see the right bytes, the pool
// must stay within its bookkeeping, and no goroutine may be left behind
// (run under -race to check the pins/hits counters for tears).
func TestPoolParallelScanWorkers(t *testing.T) {
	assertNoPoolLeaks(t)
	b := newBacking(128)
	p := New(128*8, b.fetch) // room for 8 pages: real eviction pressure
	const pages = 32
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = PageID(fmt.Sprintf("seg-%02d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks the whole table from a different phase,
			// as work-stealing scan workers do.
			for i := 0; i < pages; i++ {
				id := ids[(i+w*4)%pages]
				pg, err := p.Get(context.Background(), id)
				if err != nil {
					t.Errorf("worker %d: Get(%s): %v", w, id, err)
					return
				}
				if len(pg.Data) != 128 || pg.Data[0] != byte(len(id)) {
					t.Errorf("worker %d: wrong page bytes for %s", w, id)
				}
				p.Unpin(id)
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != 8*pages {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*pages)
	}
	// Everything was unpinned; the pool must be evictable back to empty.
	for _, id := range ids {
		if p.Contains(id) {
			pg, err := p.Get(context.Background(), id)
			if err != nil {
				t.Fatal(err)
			}
			_ = pg
			p.Unpin(id)
		}
	}
}

// A cancelled parallel scan must not leave fetches running or pins
// held: workers that lose the race exit cleanly and later Gets still
// work.
func TestPoolParallelScanCancel(t *testing.T) {
	assertNoPoolLeaks(t)
	b := newBacking(64)
	slow := func(ctx context.Context, id PageID) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
		return b.fetch(ctx, id)
	}
	p := New(64*64, slow)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if ctx.Err() != nil {
					return
				}
				id := PageID(fmt.Sprintf("pg-%d-%d", w, i%16))
				pg, err := p.Get(ctx, id)
				if err != nil {
					return // cancelled mid-fetch: fine, nothing held
				}
				_ = pg
				p.Unpin(id)
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	cancel()
	wg.Wait()
	// The pool is still usable after the abandoned scan.
	pg, err := p.Get(context.Background(), "after")
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Data) != 64 {
		t.Errorf("page size = %d, want 64", len(pg.Data))
	}
	p.Unpin("after")
}
