package flow

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/sim"
)

// assertNoFlowLeaks registers a cleanup that fails the test if any
// goroutine is still parked inside this package once the test body
// returns. Watchdog and cancellation paths must tear every stage down.
func assertNoFlowLeaks(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			leaked := 0
			for _, g := range bytes.Split(buf, []byte("\n\n")) {
				if bytes.Contains(g, []byte("repro/internal/flow.")) &&
					!bytes.Contains(g, []byte("assertNoFlowLeaks")) {
					leaked++
				}
			}
			if leaked == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("%d flow goroutines leaked:\n%s", leaked, buf)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

func TestWatchdogCancelsHungStage(t *testing.T) {
	assertNoFlowLeaks(t)
	dev := &fabric.Device{Name: "c0.nma", Kind: fabric.KindNearMemory}
	hung := &SlowStage{Inner: &passStage{name: "work"}, Delay: time.Hour}
	p := &Pipeline{
		Name:   "wd",
		Source: nBatchSource(4, 8),
		Stages: []Placed{
			{Stage: &passStage{name: "head"}},
			{Stage: hung, Device: dev},
		},
		StageTimeout: 20 * time.Millisecond,
	}
	start := time.Now()
	_, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
	if err == nil {
		t.Fatal("hung stage completed")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %s to fire", elapsed)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *StageError", err, err)
	}
	if se.Device != "c0.nma" || se.Stage != "work" {
		t.Errorf("blamed %s on %s, want stage work on c0.nma", se.Stage, se.Device)
	}
	if !errors.Is(err, ErrStageTimeout) {
		t.Errorf("err = %v, want ErrStageTimeout in chain", err)
	}
}

func TestWatchdogBlamesMostDownstreamStage(t *testing.T) {
	assertNoFlowLeaks(t)
	// The middle stage blocks in Send behind the hung tail; the watchdog
	// must blame the tail, not the blocked middle.
	tail := &SlowStage{Inner: &sumStage{}, Delay: time.Hour}
	p := &Pipeline{
		Name:   "blame",
		Source: nBatchSource(20, 4),
		Stages: []Placed{
			{Stage: &passStage{name: "mid"}},
			{Stage: tail},
		},
		Depth:        2,
		StageTimeout: 20 * time.Millisecond,
	}
	_, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *StageError", err, err)
	}
	if se.Stage != "sum" {
		t.Errorf("blamed %q, want the hung tail (sum)", se.Stage)
	}
}

func TestOfflineDeviceFailsStage(t *testing.T) {
	assertNoFlowLeaks(t)
	dev := &fabric.Device{Name: "storage.nic", Kind: fabric.KindSmartNIC}
	dev.SetOffline(true)
	p := &Pipeline{
		Name:   "offline",
		Source: nBatchSource(2, 4),
		Stages: []Placed{{Stage: &passStage{name: "preagg"}, Device: dev}},
	}
	_, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *StageError", err, err)
	}
	if se.Device != "storage.nic" {
		t.Errorf("StageError.Device = %q", se.Device)
	}
	if !errors.Is(err, fabric.ErrDeviceOffline) {
		t.Errorf("err = %v, want ErrDeviceOffline in chain", err)
	}
}

func TestInjectedDeviceOfflineMidStream(t *testing.T) {
	assertNoFlowLeaks(t)
	dev := &fabric.Device{Name: "c0.nma", Kind: fabric.KindNearMemory}
	inj := faults.New(3)
	inj.Arm(faults.Point{Kind: faults.DeviceOffline, Target: "c0.nma", Prob: 1, Budget: 1})
	p := &Pipeline{
		Name:   "kill",
		Source: nBatchSource(5, 4),
		Stages: []Placed{{Stage: &passStage{name: "agg"}, Device: dev}},
		Faults: inj,
	}
	_, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
	if !errors.Is(err, fabric.ErrDeviceOffline) {
		t.Fatalf("err = %v, want injected device-offline failure", err)
	}
	if !dev.IsOffline() {
		t.Error("fired fault did not mark the device offline")
	}
	if inj.Fires() != 1 {
		t.Errorf("Fires = %d, want 1 (budget)", inj.Fires())
	}
}

func TestLinkFaultAbortsTransfer(t *testing.T) {
	assertNoFlowLeaks(t)
	link := &fabric.Link{Name: "net.flaky", A: "a", B: "b", Bandwidth: sim.GBPerSec, Latency: sim.Microsecond}
	inj := faults.New(5)
	inj.Arm(faults.Point{Kind: faults.LinkFlap, Target: "net.flaky", Prob: 1, Budget: 1})
	link.SetFaultCheck(inj.LinkFaultCheck(link.Name))
	p := &Pipeline{
		Name:   "flap",
		Source: nBatchSource(3, 4),
		Stages: []Placed{{Stage: &passStage{name: "recv"}}},
		Paths:  [][]*fabric.Link{{link}},
	}
	_, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T %v, want *LinkError", err, err)
	}
	if le.Link != "net.flaky" {
		t.Errorf("LinkError.Link = %q", le.Link)
	}
	if !faults.IsTransient(err) {
		t.Error("link flap not classified transient")
	}
	if link.Meter.Bytes() != 0 {
		t.Error("aborted transfer still charged the link")
	}
}

func TestSlowStageDelaysButCompletes(t *testing.T) {
	assertNoFlowLeaks(t)
	fires := 0
	slow := &SlowStage{
		Inner: &sumStage{},
		Delay: time.Millisecond,
		Fire:  func() bool { fires++; return fires == 1 },
	}
	p := &Pipeline{
		Name:         "slow-ok",
		Source:       nBatchSource(3, 2),
		Stages:       []Placed{{Stage: slow}},
		StageTimeout: time.Second,
	}
	var got int64
	_, err := p.Run(context.Background(), func(b *columnar.Batch) error {
		got = b.Col(0).Int64s()[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 { // sum 0..5
		t.Errorf("sum = %d, want 15", got)
	}
}
