package flow

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/columnar"
)

// Cancellation must unwind a pipeline no matter where it is blocked: a
// stage parked in an injected delay, the source parked on exhausted
// credits behind it, and the sink all exit, with no goroutine left
// inside the package and the context's own error surfaced.

func TestCancelUnblocksHungPipeline(t *testing.T) {
	assertNoFlowLeaks(t)
	hung := &SlowStage{Inner: &sumStage{}, Delay: time.Hour}
	p := &Pipeline{
		Name:   "cancel",
		Source: nBatchSource(50, 4),
		Stages: []Placed{
			{Stage: &passStage{name: "head"}},
			{Stage: hung},
		},
		Depth: 2, // the source blocks on credits behind the hung stage
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := p.Run(ctx, func(*columnar.Batch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s to unwind", elapsed)
	}
}

func TestDeadlineUnblocksHungPipeline(t *testing.T) {
	assertNoFlowLeaks(t)
	hung := &SlowStage{Inner: &passStage{name: "work"}, Delay: time.Hour}
	p := &Pipeline{
		Name:   "deadline",
		Source: nBatchSource(10, 4),
		Stages: []Placed{{Stage: hung}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Run(ctx, func(*columnar.Batch) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %s to unwind", elapsed)
	}
}

func TestPreCancelledContextRunsNothing(t *testing.T) {
	assertNoFlowLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	emitted := 0
	p := &Pipeline{
		Name: "precancel",
		Source: func(emit Emit) error {
			for i := 0; i < 100; i++ {
				if err := emit(intBatch(int64(i))); err != nil {
					return err
				}
				emitted++
			}
			return nil
		},
		Stages: []Placed{{Stage: &passStage{name: "p"}}},
	}
	_, err := p.Run(ctx, func(*columnar.Batch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted == 100 {
		t.Error("pre-cancelled run still drained the whole source")
	}
}

func TestCancelDuringCheckpointedRun(t *testing.T) {
	assertNoFlowLeaks(t)
	// Cancellation racing a marker in flight must still unwind cleanly;
	// whatever epochs completed stay recorded and consistent.
	ck := NewCheckpointer()
	hung := &SlowStage{
		Inner: &ckptSumStage{},
		Delay: time.Hour,
		Fire:  fireAfter(3),
	}
	p := &Pipeline{
		Name:   "cancel-ckpt",
		Source: markedSource(ck, 8, map[int]int{1: 2, 2: 6}),
		Stages: []Placed{{Stage: hung}},
		Ckpt:   ck,
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	_, err := p.Run(ctx, func(*columnar.Batch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ep, ok := ck.Latest(); ok {
		// If epoch 1 completed before the hang, its cut must be intact.
		if snaps := ck.Snaps(ep); len(snaps) != 1 || snaps[0] == nil {
			t.Errorf("completed epoch %d has snaps %v", ep, snaps)
		}
	}
}

// fireAfter returns a SlowStage trigger that fires from the nth call on.
func fireAfter(n int) func() bool {
	calls := 0
	return func() bool {
		calls++
		return calls >= n
	}
}
