// Package metrics is the continuous-telemetry half of the obs layer: a
// lock-cheap registry of counters, gauges, windowed HDR-style latency
// histograms, rolling-window rate meters and SLO trackers that every
// layer of the system folds into while it runs. Where obs.Trace answers
// "where did this one query's virtual time land" after the fact, this
// package answers "what is the fleet's p99 right now, which device is
// saturated, and which tenant is burning the bytes" while the load is
// still arriving.
//
// Design rules (shared with obs.Trace):
//
//   - Nil is off. A nil *Registry hands out nil instruments, and every
//     instrument method is safe on a nil receiver and does nothing, so
//     instrumented code needs no flag checks and pays zero allocations
//     when telemetry is disabled (BenchmarkMetricsDisabled gates this
//     in CI at 0 allocs/op).
//   - The hot path is atomics only. Counter.Add, Gauge.Set,
//     Histogram.Observe and RateMeter.Mark never take the registry
//     lock and never allocate; the registry's RWMutex is touched only
//     on instrument lookup, which callers do once per scan / query /
//     pipeline, not per batch.
//   - Reads are monitoring-grade. Snapshots and quantiles read the
//     same atomics without stopping writers, so a scrape that races a
//     burst may be a few observations stale — never torn per-word, but
//     not a cross-instrument transaction either. Tests that assert
//     exact sums quiesce first.
//
// Instrument names are dotted paths ("sched.queue.depth"); a label pair
// rides inside the name in Prometheus form ("tenant.bytes.moved" +
// tenant "a" → `tenant.bytes.moved{tenant="a"}`, built by Labels). The
// exporters split the name back apart, so one flat map serves the
// Prometheus text endpoint, the JSON snapshot and the dfshell view.
package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds every instrument by name. Get-or-create methods hand
// back the same instrument for the same name, so independent layers may
// fold into one series without coordination. The zero value is NOT
// ready to use — call New. A nil *Registry is the off switch.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	rates  map[string]*RateMeter
	slos   map[string]*SLOTracker
	now    func() time.Time
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		rates:  make(map[string]*RateMeter),
		slos:   make(map[string]*SLOTracker),
		now:    time.Now,
	}
}

// SetNow replaces the clock behind rate meters and SLO trackers created
// AFTER the call — tests pin it before building instruments. Production
// code never calls this.
func (r *Registry) SetNow(now func() time.Time) {
	if r == nil || now == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Counter returns the named monotonically-increasing counter, creating
// it on first use. Nil registry → nil counter (all methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named last-value-wins gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default single
// (cumulative) window. See HistogramWindows for a rotating window ring.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWindows(name, 1)
}

// HistogramWindows returns the named histogram backed by a ring of
// `windows` bucket sets; Rotate retires the oldest. The window count is
// fixed at first creation — later calls return the existing instrument
// regardless of the argument.
func (r *Registry) HistogramWindows(name string, windows int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(windows)
		r.hists[name] = h
	}
	return h
}

// RateMeter returns the named rolling-window rate meter (default
// window: 10s over 10 slots, first creation wins).
func (r *Registry) RateMeter(name string) *RateMeter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	m := r.rates[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.rates[name]; m == nil {
		m = newRateMeter(10*time.Second, 10, r.now)
		r.rates[name] = m
	}
	return m
}

// SLO returns the named SLO tracker: target is the latency objective
// and objective the promised good fraction (0.99 → a 1% error budget).
// Parameters are fixed at first creation.
func (r *Registry) SLO(name string, target time.Duration, objective float64) *SLOTracker {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	s := r.slos[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.slos[name]; s == nil {
		s = newSLOTracker(target, objective, 30*time.Second, 15, r.now)
		r.slos[name] = s
	}
	return s
}

// Counter is a monotonically-increasing int64. The zero value is ready;
// a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64. The zero value is ready; a nil
// *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; use for occupancy-style
// up/down tracking).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Labels renders name plus label pairs in Prometheus form:
// Labels("tenant.bytes", "tenant", "a") → `tenant.bytes{tenant="a"}`.
// kv must alternate key, value; a trailing odd key is dropped. The
// result is a plain registry name — labels are a naming convention the
// exporters know how to split, not a separate dimension store.
func Labels(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(labelEscape(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func labelEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// splitName separates a possibly-labelled instrument name into its base
// and the label block (brace-wrapped, empty when unlabelled).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// sortedKeys returns map keys in deterministic order for the exporters.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
