package metrics

import (
	"testing"
	"time"
)

// BenchmarkMetricsDisabled is CI's zero-alloc gate: with a nil registry
// (telemetry off), every instrument call on the hot path must cost
// nothing — 0 allocs/op, a handful of nil checks. This is the same
// contract obs.Trace keeps for tracing.
func BenchmarkMetricsDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	m := r.RateMeter("m")
	s := r.SLO("s", time.Millisecond, 0.99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		g.Set(float64(i))
		h.Observe(int64(i))
		m.Mark(1)
		s.Observe(time.Duration(i))
		_ = s.BurnRate()
	}
}

// BenchmarkMetricsEnabled bounds the enabled hot path (atomics only;
// Counter/Gauge/Histogram must stay alloc-free too — RateMeter and SLO
// sit off the per-batch path and may take their mutex).
func BenchmarkMetricsEnabled(b *testing.B) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		g.Set(float64(i))
		h.Observe(int64(i))
	}
}

// BenchmarkMetricsLookup bounds the get-or-create path callers use once
// per scan or query.
func BenchmarkMetricsLookup(b *testing.B) {
	r := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("fleet.queries").Inc()
	}
}
