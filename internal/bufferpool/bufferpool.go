// Package bufferpool implements the main-memory page cache at the heart
// of conventional engines — the component the paper's Section 7.4 ("No
// More Buffer Pools") argues data-flow architectures can drop. It exists
// here as the substrate of the CPU-centric baseline: experiments compare
// its memory footprint and thrash behaviour against the stateless
// data-flow pipeline.
//
// Pages are variable-sized (a page holds one encoded table segment) and
// replaced with the clock (second-chance) algorithm.
package bufferpool

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/sim"
)

// ErrPoolFull is returned when a page cannot be admitted because every
// resident page is pinned.
var ErrPoolFull = errors.New("bufferpool: all pages pinned, cannot evict")

// PageID identifies one page (by convention, the object-store key of the
// segment it caches).
type PageID string

// FetchFunc loads a page's bytes from backing storage on a miss. The
// function is expected to charge the fabric for the I/O it models and to
// honor ctx, so a cancelled query does not keep faulting pages in.
type FetchFunc func(ctx context.Context, id PageID) ([]byte, error)

// Page is one resident page.
type Page struct {
	ID   PageID
	Data []byte

	pins int
	ref  bool // clock reference bit
}

// Size reports the page's footprint.
func (p *Page) Size() sim.Bytes { return sim.Bytes(len(p.Data)) }

// Stats summarizes pool activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Resident  sim.Bytes
	Capacity  sim.Bytes
}

// HitRate reports hits / (hits+misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Pool is a pinned-page buffer pool with clock replacement.
type Pool struct {
	mu       sync.Mutex
	capacity sim.Bytes
	used     sim.Bytes
	pages    map[PageID]*Page
	clock    []*Page
	hand     int
	fetch    FetchFunc

	hits, misses, evictions int64
}

// New builds a pool with the given byte capacity and backing fetcher.
func New(capacity sim.Bytes, fetch FetchFunc) *Pool {
	if capacity <= 0 {
		panic("bufferpool: non-positive capacity")
	}
	if fetch == nil {
		panic("bufferpool: nil fetch function")
	}
	return &Pool{capacity: capacity, pages: make(map[PageID]*Page), fetch: fetch}
}

// Get returns the page, fetching and admitting it on a miss, and pins
// it. Callers must Unpin when done. A page larger than the entire pool
// is rejected. ctx is passed to the backing fetcher on a miss; hits
// don't consult it.
func (p *Pool) Get(ctx context.Context, id PageID) (*Page, error) {
	p.mu.Lock()
	if pg, ok := p.pages[id]; ok {
		pg.pins++
		pg.ref = true
		p.hits++
		p.mu.Unlock()
		return pg, nil
	}
	p.misses++
	p.mu.Unlock()

	// Fetch outside the lock; concurrent misses on the same page may
	// both fetch, and the second admit wins the check below.
	data, err := p.fetch(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("bufferpool: fetch %s: %w", id, err)
	}
	need := sim.Bytes(len(data))

	p.mu.Lock()
	defer p.mu.Unlock()
	if pg, ok := p.pages[id]; ok { // raced with another fetcher
		pg.pins++
		pg.ref = true
		return pg, nil
	}
	if need > p.capacity {
		return nil, fmt.Errorf("bufferpool: page %s (%v) exceeds pool capacity %v", id, need, p.capacity)
	}
	if err := p.evictFor(need); err != nil {
		return nil, err
	}
	pg := &Page{ID: id, Data: data, pins: 1, ref: true}
	p.pages[id] = pg
	p.clock = append(p.clock, pg)
	p.used += need
	return pg, nil
}

// evictFor frees space until need fits; callers hold the lock.
func (p *Pool) evictFor(need sim.Bytes) error {
	// Two full sweeps: the first clears reference bits, the second
	// evicts. Stop early once there is room.
	for sweep := 0; p.used+need > p.capacity; sweep++ {
		if len(p.clock) == 0 || sweep > 2*len(p.clock) {
			return ErrPoolFull
		}
		if p.hand >= len(p.clock) {
			p.hand = 0
		}
		pg := p.clock[p.hand]
		if pg.pins > 0 {
			p.hand++
			continue
		}
		if pg.ref {
			pg.ref = false
			p.hand++
			continue
		}
		// Evict.
		p.used -= pg.Size()
		delete(p.pages, pg.ID)
		p.clock = append(p.clock[:p.hand], p.clock[p.hand+1:]...)
		p.evictions++
	}
	return nil
}

// Unpin releases one pin on the page. Unpinning an absent or unpinned
// page is a caller bug and panics.
func (p *Pool) Unpin(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg, ok := p.pages[id]
	if !ok {
		panic(fmt.Sprintf("bufferpool: Unpin of non-resident page %s", id))
	}
	if pg.pins <= 0 {
		panic(fmt.Sprintf("bufferpool: Unpin of unpinned page %s", id))
	}
	pg.pins--
}

// Contains reports whether the page is resident, without touching it.
func (p *Pool) Contains(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.pages[id]
	return ok
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
		Resident:  p.used,
		Capacity:  p.capacity,
	}
}
