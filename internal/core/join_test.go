package core

import (
	"context"
	"sort"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/workload"
)

func setupJoinEngines(t *testing.T, orders, lines int) (*DataFlowEngine, *VolcanoEngine) {
	t.Helper()
	lcfg := workload.DefaultLineitemConfig(lines)
	lcfg.Orders = int64(orders) // lineitem order keys land in [0, orders)
	lineData := workload.GenLineitem(lcfg)
	orderData := workload.GenOrders(orders, 9)

	df := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	vo := NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 512*sim.MB)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(df.CreateTable("lineitem", workload.LineitemSchema()))
	must(df.CreateTable("orders", workload.OrdersSchema()))
	must(df.Load("lineitem", lineData))
	must(df.Load("orders", orderData))
	must(vo.CreateTable("lineitem", workload.LineitemSchema()))
	must(vo.CreateTable("orders", workload.OrdersSchema()))
	must(vo.Load("lineitem", lineData))
	must(vo.Load("orders", orderData))
	return df, vo
}

// joinFingerprint summarizes a join result order-insensitively:
// row count plus a sorted sample of (probe key, build key) sums.
func joinFingerprint(t *testing.T, r *Result, probeKeyCol, buildKeyCol int) (int64, []int64) {
	t.Helper()
	var keys []int64
	for _, b := range r.Batches {
		pk := b.Col(probeKeyCol).Int64s()
		bk := b.Col(buildKeyCol).Int64s()
		for i := range pk {
			if pk[i] != bk[i] {
				t.Fatalf("join emitted mismatched keys %d vs %d", pk[i], bk[i])
			}
			keys = append(keys, pk[i])
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return int64(len(keys)), keys
}

func TestDistributedJoinMatchesVolcano(t *testing.T) {
	df, vo := setupJoinEngines(t, 2000, 10000)
	jq := JoinQuery{
		Probe: "lineitem", Build: "orders",
		ProbeKey: workload.LOrderKey, BuildKey: workload.OOrderKey,
	}
	dfRes, err := df.ExecuteJoin(context.Background(), jq)
	if err != nil {
		t.Fatal(err)
	}
	voRes, err := vo.ExecuteJoin(context.Background(), jq)
	if err != nil {
		t.Fatal(err)
	}
	// Every lineitem row has an order (keys in [0, orders)), so the
	// join is total.
	if dfRes.Rows() != 10000 {
		t.Fatalf("dataflow join rows = %d, want 10000", dfRes.Rows())
	}
	// Output schemas: probe(lineitem 9 cols) + build(orders 5 cols);
	// probe key col 0, build key col 9.
	dfN, dfKeys := joinFingerprint(t, dfRes, workload.LOrderKey, 9)
	voN, voKeys := joinFingerprint(t, voRes, workload.LOrderKey, 9)
	if dfN != voN {
		t.Fatalf("row counts differ: %d vs %d", dfN, voN)
	}
	for i := range dfKeys {
		if dfKeys[i] != voKeys[i] {
			t.Fatalf("key multiset differs at %d: %d vs %d", i, dfKeys[i], voKeys[i])
		}
	}
}

func TestDistributedJoinStats(t *testing.T) {
	df, vo := setupJoinEngines(t, 1000, 8000)
	jq := JoinQuery{
		Probe: "lineitem", Build: "orders",
		ProbeKey: workload.LOrderKey, BuildKey: workload.OOrderKey,
	}
	dfRes, err := df.ExecuteJoin(context.Background(), jq)
	if err != nil {
		t.Fatal(err)
	}
	voRes, err := vo.ExecuteJoin(context.Background(), jq)
	if err != nil {
		t.Fatal(err)
	}
	if dfRes.Stats.Variant != "distributed-join" {
		t.Errorf("variant = %q", dfRes.Stats.Variant)
	}
	// The NIC scatter spreads join work over both nodes and keeps the
	// exchange off the CPUs: per-CPU busy must be below the volcano
	// single-CPU busy.
	for i := 0; i < 2; i++ {
		name := fabric.ComputeDev(i, "cpu")
		if dfRes.Stats.DeviceBusy[name] == 0 {
			t.Errorf("node %d CPU idle: join not distributed", i)
		}
		if dfRes.Stats.DeviceBusy[name] >= voRes.Stats.CPUBusy {
			t.Errorf("node %d busy %v >= volcano single-CPU %v",
				i, dfRes.Stats.DeviceBusy[name], voRes.Stats.CPUBusy)
		}
	}
	if dfRes.Stats.SimTime <= 0 || dfRes.Stats.MovedBytes <= 0 {
		t.Error("join stats incomplete")
	}
}

func TestJoinValidation(t *testing.T) {
	df, vo := setupJoinEngines(t, 100, 500)
	if _, err := df.ExecuteJoin(context.Background(), JoinQuery{Probe: "ghost", Build: "orders"}); err == nil {
		t.Error("join with unknown probe succeeded")
	}
	if _, err := vo.ExecuteJoin(context.Background(), JoinQuery{Probe: "lineitem", Build: "ghost"}); err == nil {
		t.Error("volcano join with unknown build succeeded")
	}
	if _, err := df.ExecuteJoin(context.Background(), JoinQuery{Probe: "lineitem", Build: "orders", Nodes: 99}); err == nil {
		t.Error("join with too many nodes succeeded")
	}
}

func TestJoinOnLegacyClusterUsesCPUScatter(t *testing.T) {
	lcfg := workload.DefaultLineitemConfig(2000)
	lcfg.Orders = 500
	df := NewDataFlowEngine(fabric.NewCluster(fabric.LegacyClusterConfig()))
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(df.CreateTable("lineitem", workload.LineitemSchema()))
	must(df.CreateTable("orders", workload.OrdersSchema()))
	must(df.Load("lineitem", workload.GenLineitem(lcfg)))
	must(df.Load("orders", workload.GenOrders(500, 9)))
	res, err := df.ExecuteJoin(context.Background(), JoinQuery{
		Probe: "lineitem", Build: "orders",
		ProbeKey: workload.LOrderKey, BuildKey: workload.OOrderKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 2000 {
		t.Fatalf("rows = %d", res.Rows())
	}
	// On the dumb fabric the scatter ran on compute0's CPU: its busy
	// time includes partitioning the probe side.
	cpu0 := res.Stats.DeviceBusy[fabric.ComputeDev(0, "cpu")]
	if cpu0 == 0 {
		t.Error("legacy scatter CPU idle")
	}
}
