package exec

import (
	"fmt"
	"sort"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/flow"
)

// FilterStage drops rows failing the predicate. Stateless: placeable on
// any device that supports OpFilter.
//
// In Lazy mode the stage does not copy survivors into a dense batch;
// it attaches (or narrows) the batch's selection vector and passes the
// physical rows through untouched. Downstream sparse-capable stages
// consult the selection; dense boundaries (sort, join build, a port
// whose path crosses a link, the sink) compact. This is the paper's
// late-materialization discipline: row movement is deferred until a
// stage actually needs dense data.
type FilterStage struct {
	Pred expr.Predicate
	Lazy bool
}

// Name implements flow.Stage.
func (s *FilterStage) Name() string { return "filter(" + s.Pred.String() + ")" }

// Process implements flow.Stage.
func (s *FilterStage) Process(b *columnar.Batch, emit flow.Emit) error {
	keep := s.Pred.Eval(b)
	if sel := b.Selection(); sel != nil {
		keep.And(sel)
	}
	if s.Lazy {
		out := b.WithSelection(keep)
		if out.LiveRows() == 0 {
			return nil
		}
		return emit(out)
	}
	out := b.Filter(keep)
	if out.NumRows() == 0 {
		return nil
	}
	return emit(out)
}

// Flush implements flow.Stage.
func (s *FilterStage) Flush(flow.Emit) error { return nil }

// ProjectStage keeps only the listed columns. Stateless.
type ProjectStage struct {
	Columns []int
}

// Name implements flow.Stage.
func (s *ProjectStage) Name() string { return fmt.Sprintf("project%v", s.Columns) }

// Process implements flow.Stage.
func (s *ProjectStage) Process(b *columnar.Batch, emit flow.Emit) error {
	return emit(b.Project(s.Columns))
}

// Flush implements flow.Stage.
func (s *ProjectStage) Flush(flow.Emit) error { return nil }

// HashStage appends a BIGINT "hash" column computed from KeyCol — the
// receiving-NIC hashing of Figure 3, which pre-computes the hash the
// compute node's join or aggregation would otherwise do.
type HashStage struct {
	KeyCol int
	Seed   hashSeed
}

// Name implements flow.Stage.
func (s *HashStage) Name() string { return fmt.Sprintf("hash(col%d)", s.KeyCol) }

// Process implements flow.Stage.
func (s *HashStage) Process(b *columnar.Batch, emit flow.Emit) error {
	b = b.Compact() // appends a column per physical row: dense boundary
	seed := s.Seed
	if seed == 0 {
		seed = SeedJoin
	}
	hashes := HashColumn(b.Col(s.KeyCol), seed, nil)
	vals := make([]int64, len(hashes))
	for i, h := range hashes {
		vals[i] = int64(h)
	}
	outSchema := b.Schema().Concat(columnar.NewSchema(columnar.Field{Name: "hash", Type: columnar.Int64}))
	cols := make([]*columnar.Vector, b.NumCols()+1)
	for i := 0; i < b.NumCols(); i++ {
		cols[i] = b.Col(i)
	}
	cols[b.NumCols()] = columnar.FromInt64s(vals)
	return emit(columnar.BatchOf(outSchema, cols...))
}

// Flush implements flow.Stage.
func (s *HashStage) Flush(flow.Emit) error { return nil }

// PreAggStage hosts a bounded-state partial aggregation (Section 4.4).
// Raw determines whether the input is raw rows or upstream partials;
// either way the output is partial batches, so stages chain.
type PreAggStage struct {
	Agg *expr.PartialAggregator
	Raw bool
}

// Name implements flow.Stage.
func (s *PreAggStage) Name() string {
	kind := "merge"
	if s.Raw {
		kind = "raw"
	}
	return fmt.Sprintf("preagg(%s,budget=%d)", kind, s.Agg.MaxGroups)
}

// Process implements flow.Stage.
func (s *PreAggStage) Process(b *columnar.Batch, emit flow.Emit) error {
	b = b.Compact() // aggregation walks physical rows: dense boundary
	var spills []*columnar.Batch
	if s.Raw {
		spills = s.Agg.AddRaw(b)
	} else {
		spills = s.Agg.AddPartial(b)
	}
	for _, spill := range spills {
		if err := emit(spill); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements flow.Stage.
func (s *PreAggStage) Flush(emit flow.Emit) error {
	if b := s.Agg.Flush(); b != nil {
		return emit(b)
	}
	return nil
}

// SnapshotState implements flow.Snapshotter: a deep copy of the group
// state at the checkpoint marker.
func (s *PreAggStage) SnapshotState() any { return s.Agg.Clone() }

// RestoreState implements flow.Snapshotter. The snapshot is cloned
// again, so one epoch can seed several restart attempts.
func (s *PreAggStage) RestoreState(state any) {
	s.Agg = state.(*expr.PartialAggregator).Clone()
}

// FinalAggStage is the terminal aggregation on the compute node; it
// consumes raw rows or partials and emits one result batch at flush.
type FinalAggStage struct {
	Agg *expr.FinalAggregator
	Raw bool
}

// Name implements flow.Stage.
func (s *FinalAggStage) Name() string { return "finalagg" }

// Process implements flow.Stage.
func (s *FinalAggStage) Process(b *columnar.Batch, emit flow.Emit) error {
	b = b.Compact() // aggregation walks physical rows: dense boundary
	if s.Raw {
		s.Agg.AddRaw(b)
	} else {
		s.Agg.AddPartial(b)
	}
	return nil
}

// Flush implements flow.Stage.
func (s *FinalAggStage) Flush(emit flow.Emit) error {
	return emit(s.Agg.Result())
}

// SnapshotState implements flow.Snapshotter.
func (s *FinalAggStage) SnapshotState() any { return s.Agg.Clone() }

// RestoreState implements flow.Snapshotter.
func (s *FinalAggStage) RestoreState(state any) {
	s.Agg = state.(*expr.FinalAggregator).Clone()
}

// CountStage counts rows and discards them, emitting a single-row result
// at flush — the query the paper says a NIC can complete "without even
// involving the CPU or transferring data to host memory" (Section 4.4).
type CountStage struct {
	count int64
}

// Name implements flow.Stage.
func (s *CountStage) Name() string { return "count" }

// Process implements flow.Stage.
func (s *CountStage) Process(b *columnar.Batch, emit flow.Emit) error {
	// LiveRows honors a lazy selection without compacting: counting
	// needs no row movement at all.
	s.count += int64(b.LiveRows())
	return nil
}

// Flush implements flow.Stage.
func (s *CountStage) Flush(emit flow.Emit) error {
	schema := columnar.NewSchema(columnar.Field{Name: "count", Type: columnar.Int64})
	return emit(columnar.BatchOf(schema, columnar.FromInt64s([]int64{s.count})))
}

// SnapshotState implements flow.Snapshotter.
func (s *CountStage) SnapshotState() any { return s.count }

// RestoreState implements flow.Snapshotter.
func (s *CountStage) RestoreState(state any) { s.count = state.(int64) }

// TopKStage retains the K largest values of ByCol (BIGINT) with their
// rows, emitting them in descending order at flush.
type TopKStage struct {
	K     int
	ByCol int

	rows   []*columnar.Batch // single-row batches retained
	keys   []int64
	schema *columnar.Schema
}

// Name implements flow.Stage.
func (s *TopKStage) Name() string { return fmt.Sprintf("top%d(col%d)", s.K, s.ByCol) }

// Process implements flow.Stage.
func (s *TopKStage) Process(b *columnar.Batch, emit flow.Emit) error {
	b = b.Compact() // retains row slices by physical index: dense boundary
	if s.schema == nil {
		s.schema = b.Schema()
	}
	keyCol := b.Col(s.ByCol)
	for i := 0; i < b.NumRows(); i++ {
		if keyCol.IsNull(i) {
			continue
		}
		k := keyCol.Int64s()[i]
		if len(s.keys) >= s.K && k <= s.keys[len(s.keys)-1] {
			continue
		}
		// Insert in descending order.
		pos := sort.Search(len(s.keys), func(j int) bool { return s.keys[j] < k })
		s.keys = append(s.keys, 0)
		copy(s.keys[pos+1:], s.keys[pos:])
		s.keys[pos] = k
		row := b.Slice(i, i+1)
		s.rows = append(s.rows, nil)
		copy(s.rows[pos+1:], s.rows[pos:])
		s.rows[pos] = row
		if len(s.keys) > s.K {
			s.keys = s.keys[:s.K]
			s.rows = s.rows[:s.K]
		}
	}
	return nil
}

// Flush implements flow.Stage.
func (s *TopKStage) Flush(emit flow.Emit) error {
	if s.schema == nil {
		return nil
	}
	out := columnar.NewBatch(s.schema, len(s.rows))
	for _, r := range s.rows {
		out.AppendRow(r.Row(0)...)
	}
	return emit(out)
}

// topKSnapshot is TopKStage's checkpoint state. Retained row batches are
// immutable once built, so sharing them with the snapshot is safe.
type topKSnapshot struct {
	rows   []*columnar.Batch
	keys   []int64
	schema *columnar.Schema
}

// SnapshotState implements flow.Snapshotter.
func (s *TopKStage) SnapshotState() any {
	return &topKSnapshot{
		rows:   append([]*columnar.Batch(nil), s.rows...),
		keys:   append([]int64(nil), s.keys...),
		schema: s.schema,
	}
}

// RestoreState implements flow.Snapshotter.
func (s *TopKStage) RestoreState(state any) {
	snap := state.(*topKSnapshot)
	s.rows = append([]*columnar.Batch(nil), snap.rows...)
	s.keys = append([]int64(nil), snap.keys...)
	s.schema = snap.schema
}

// SortStage buffers the whole stream and emits it sorted by ByCol
// (BIGINT, ascending). Sorting is inherently blocking, which is why the
// paper keeps it off the streaming path and on compute nodes.
type SortStage struct {
	ByCol int

	buffered []*columnar.Batch
}

// Name implements flow.Stage.
func (s *SortStage) Name() string { return fmt.Sprintf("sort(col%d)", s.ByCol) }

// Process implements flow.Stage.
func (s *SortStage) Process(b *columnar.Batch, emit flow.Emit) error {
	s.buffered = append(s.buffered, b.Compact()) // sort is a dense boundary
	return nil
}

// Flush implements flow.Stage.
func (s *SortStage) Flush(emit flow.Emit) error {
	if len(s.buffered) == 0 {
		return nil
	}
	type ref struct {
		batch *columnar.Batch
		row   int
		key   int64
		null  bool
	}
	var refs []ref
	for _, b := range s.buffered {
		col := b.Col(s.ByCol)
		for i := 0; i < b.NumRows(); i++ {
			r := ref{batch: b, row: i}
			if col.IsNull(i) {
				r.null = true
			} else {
				r.key = col.Int64s()[i]
			}
			refs = append(refs, r)
		}
	}
	sort.SliceStable(refs, func(i, j int) bool {
		if refs[i].null != refs[j].null {
			return refs[i].null // NULLs first
		}
		return refs[i].key < refs[j].key
	})
	out := columnar.NewBatch(s.buffered[0].Schema(), len(refs))
	for _, r := range refs {
		out.AppendRow(r.batch.Row(r.row)...)
	}
	return emit(out)
}

// SnapshotState implements flow.Snapshotter. Buffered batches are never
// mutated, so the snapshot shares them.
func (s *SortStage) SnapshotState() any {
	return append([]*columnar.Batch(nil), s.buffered...)
}

// RestoreState implements flow.Snapshotter.
func (s *SortStage) RestoreState(state any) {
	s.buffered = append([]*columnar.Batch(nil), state.([]*columnar.Batch)...)
}

// LimitStage forwards at most N rows.
type LimitStage struct {
	N    int
	seen int
}

// Name implements flow.Stage.
func (s *LimitStage) Name() string { return fmt.Sprintf("limit(%d)", s.N) }

// Process implements flow.Stage.
func (s *LimitStage) Process(b *columnar.Batch, emit flow.Emit) error {
	if s.seen >= s.N {
		return nil
	}
	b = b.Compact() // slicing counts physical rows: dense boundary
	remain := s.N - s.seen
	if b.NumRows() > remain {
		b = b.Slice(0, remain)
	}
	s.seen += b.NumRows()
	return emit(b)
}

// Flush implements flow.Stage.
func (s *LimitStage) Flush(flow.Emit) error { return nil }

// SnapshotState implements flow.Snapshotter.
func (s *LimitStage) SnapshotState() any { return s.seen }

// RestoreState implements flow.Snapshotter.
func (s *LimitStage) RestoreState(state any) { s.seen = state.(int) }

// CompressStage re-encodes batches for the wire and DecompressStage
// restores them; together they model the compression/encryption steps
// the paper says cloud query plans must include (Section 1). Data is
// passed through unchanged — the devices are charged by the runtime —
// but the pair exists so plans can represent the step explicitly.
type CompressStage struct{}

// Name implements flow.Stage.
func (s *CompressStage) Name() string { return "compress" }

// Process implements flow.Stage.
func (s *CompressStage) Process(b *columnar.Batch, emit flow.Emit) error { return emit(b) }

// Flush implements flow.Stage.
func (s *CompressStage) Flush(flow.Emit) error { return nil }
