// Package sqlparse provides a small SQL front-end for the engine: it
// parses a restricted SELECT dialect into plan.Query values, resolving
// column names against the catalog. Supported grammar:
//
//	SELECT select_list FROM table [WHERE predicate]
//	       [GROUP BY column_list] [ORDER BY n] [LIMIT n]
//
//	select_list := '*' | item (',' item)*
//	item        := column | COUNT(*) | SUM(column) | MIN(column)
//	             | MAX(column) | AVG(column)
//	predicate   := disjunctions/conjunctions/NOT over comparisons,
//	               BETWEEN, and LIKE '%...%'
//
// The dialect covers exactly what the engine executes; anything else is
// rejected with a positioned error.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // = != <> < <= > >=
	tokLParen
	tokRParen
	tokComma
	tokStar
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input, for error messages
}

// lexer turns SQL text into tokens.
type lexer struct {
	input  string
	pos    int
	tokens []token
}

// lex tokenizes the whole input up front.
func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.input) {
				return token{}, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			ch := l.input[l.pos]
			if ch == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected '!' at offset %d", start)
	case c == '<':
		if l.pos+1 < len(l.input) && (l.input[l.pos+1] == '=' || l.input[l.pos+1] == '>') {
			op := l.input[l.pos : l.pos+2]
			l.pos += 2
			return token{kind: tokOp, text: op, pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '>':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: ">", pos: start}, nil
	case c == '-' || c >= '0' && c <= '9':
		l.pos++
		for l.pos < len(l.input) && (l.input[l.pos] >= '0' && l.input[l.pos] <= '9' || l.input[l.pos] == '.') {
			l.pos++
		}
		text := l.input[start:l.pos]
		if text == "-" {
			return token{}, fmt.Errorf("sql: lone '-' at offset %d", start)
		}
		return token{kind: tokNumber, text: text, pos: start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.input[start:l.pos], pos: start}, nil
	}
	return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
