package encoding

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Wire encryption for data leaving a node. The paper (Sections 1 and
// 2.2) lists encryption among the operations cloud query plans must
// treat as first-class pipeline stages; this is the real cipher those
// stages run (AES-CTR with an HMAC-SHA256 tag, encrypt-then-MAC).

// ErrAuth is returned when a ciphertext fails authentication.
var ErrAuth = fmt.Errorf("encoding: ciphertext authentication failed")

const (
	nonceSize = 16
	tagSize   = 32
)

// StreamKey holds the encryption and authentication keys of one flow.
type StreamKey struct {
	enc [32]byte
	mac [32]byte
}

// NewStreamKey derives a stream key from secret material.
func NewStreamKey(secret []byte) *StreamKey {
	var k StreamKey
	h := sha256.Sum256(append([]byte("enc:"), secret...))
	k.enc = h
	h = sha256.Sum256(append([]byte("mac:"), secret...))
	k.mac = h
	return &k
}

// Encrypt seals data with a fresh nonce derived from seq (each message
// on a flow must use a distinct sequence number). Layout:
// nonce || ciphertext || tag.
func (k *StreamKey) Encrypt(seq uint64, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(k.enc[:])
	if err != nil {
		return nil, err
	}
	out := make([]byte, nonceSize+len(data)+tagSize)
	nonce := out[:nonceSize]
	binary.LittleEndian.PutUint64(nonce, seq)
	binary.LittleEndian.PutUint64(nonce[8:], ^seq)
	ct := out[nonceSize : nonceSize+len(data)]
	cipher.NewCTR(block, nonce).XORKeyStream(ct, data)
	mac := hmac.New(sha256.New, k.mac[:])
	mac.Write(out[:nonceSize+len(data)])
	copy(out[nonceSize+len(data):], mac.Sum(nil))
	return out, nil
}

// Decrypt authenticates and opens a sealed message.
func (k *StreamKey) Decrypt(sealed []byte) ([]byte, error) {
	if len(sealed) < nonceSize+tagSize {
		return nil, fmt.Errorf("%w: sealed message too short", ErrCorrupt)
	}
	body := sealed[:len(sealed)-tagSize]
	tag := sealed[len(sealed)-tagSize:]
	mac := hmac.New(sha256.New, k.mac[:])
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrAuth
	}
	block, err := aes.NewCipher(k.enc[:])
	if err != nil {
		return nil, err
	}
	nonce := body[:nonceSize]
	pt := make([]byte, len(body)-nonceSize)
	cipher.NewCTR(block, nonce).XORKeyStream(pt, body[nonceSize:])
	return pt, nil
}
