package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// perfettoDoc mirrors just enough of the trace_event format to assert on
// exported documents.
type perfettoDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name  string   `json:"name"`
		Cat   string   `json:"cat"`
		Phase string   `json:"ph"`
		TS    float64  `json:"ts"`
		Dur   *float64 `json:"dur"`
		PID   int      `json:"pid"`
		TID   int      `json:"tid"`
		Scope string   `json:"s"`
		Args  *struct {
			Name   string `json:"name"`
			Bytes  int64  `json:"bytes"`
			Seq    *int64 `json:"seq"`
			Detail string `json:"detail"`
		} `json:"args"`
	} `json:"traceEvents"`
}

func perfetto(t *testing.T, procs ...Process) (string, perfettoDoc) {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, procs...); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	return buf.String(), doc
}

func TestWritePerfettoEmptyTrace(t *testing.T) {
	_, doc := perfetto(t, Process{Name: "empty", Trace: New()})
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	// An empty trace still announces its process, and nothing else.
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("got %d events, want 1 (process_name only): %+v", len(doc.TraceEvents), doc.TraceEvents)
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "process_name" || ev.Phase != "M" || ev.Args == nil || ev.Args.Name != "empty" {
		t.Fatalf("unexpected metadata event: %+v", ev)
	}
}

func TestWritePerfettoSingleSpan(t *testing.T) {
	tr := New()
	tr.AddSpan(Span{Name: "filter", Track: "cpu0", Kind: SpanStage,
		Start: 1000, End: 3000, Seq: 7, Bytes: 4096})
	_, doc := perfetto(t, Process{Name: "dataflow", Trace: tr})

	var haveThread, haveSpan bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "thread_name":
			haveThread = true
			if ev.Args == nil || ev.Args.Name != "cpu0" {
				t.Fatalf("thread_name args = %+v, want track cpu0", ev.Args)
			}
		case ev.Phase == "X":
			haveSpan = true
			if ev.Name != "filter" || ev.Cat != "stage" {
				t.Fatalf("span event = %+v, want name filter cat stage", ev)
			}
			if ev.TS != 1.0 || ev.Dur == nil || *ev.Dur != 2.0 {
				t.Fatalf("span timing ts=%v dur=%v, want ts=1us dur=2us", ev.TS, ev.Dur)
			}
			if ev.Args == nil || ev.Args.Bytes != 4096 || ev.Args.Seq == nil || *ev.Args.Seq != 7 {
				t.Fatalf("span args = %+v, want bytes 4096 seq 7", ev.Args)
			}
		}
	}
	if !haveThread || !haveSpan {
		t.Fatalf("missing thread_name (%v) or span (%v) event", haveThread, haveSpan)
	}
}

func TestWritePerfettoNegativeSeqOmitted(t *testing.T) {
	tr := New()
	tr.AddSpan(Span{Name: "scan", Track: "media", Kind: SpanScan, Start: 0, End: 500, Seq: -1})
	raw, doc := perfetto(t, Process{Name: "p", Trace: tr})
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" && ev.Args != nil && ev.Args.Seq != nil {
			t.Fatalf("seq emitted for Seq=-1 span: %s", raw)
		}
	}
}

func TestWritePerfettoEventOnlyTrack(t *testing.T) {
	// A track that carries only instant events (no spans) still gets a
	// thread via the catch-all tid path, and the instant lands on it.
	tr := New()
	tr.AddEvent(Event{Name: "retry", Track: "nic0->nic1", At: 2500, Detail: "segment 3"})
	_, doc := perfetto(t, Process{Name: "p", Trace: tr})

	threadTID := -1
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			if ev.Args == nil || ev.Args.Name != "nic0->nic1" {
				t.Fatalf("thread_name = %+v, want link track", ev.Args)
			}
			threadTID = ev.TID
		}
	}
	if threadTID < 0 {
		t.Fatal("no thread_name emitted for event-only track")
	}
	var found bool
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "i" {
			found = true
			if ev.Name != "retry" || ev.TID != threadTID || ev.Scope != "t" {
				t.Fatalf("instant = %+v, want name retry on tid %d scope t", ev, threadTID)
			}
			if ev.TS != 2.5 || ev.Args == nil || ev.Args.Detail != "segment 3" {
				t.Fatalf("instant ts/args = %v/%+v, want 2.5us detail", ev.TS, ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("no instant event emitted")
	}
}

func TestWritePerfettoMultiProcessDeterministic(t *testing.T) {
	build := func() []Process {
		a := New()
		a.AddSpan(Span{Name: "scan", Track: "media", Kind: SpanScan, Start: 0, End: 100, Seq: 0, Bytes: 10})
		a.AddSpan(Span{Name: "xfer", Track: "link", Kind: SpanTransfer, Start: 100, End: 220, Seq: 0, Bytes: 10})
		a.AddEvent(Event{Name: "stall", Track: "link", At: 90})
		b := New()
		b.AddSpan(Span{Name: "agg", Track: "cpu", Kind: SpanStage, Start: 5, End: 10, Seq: -1})
		return []Process{{Name: "dataflow", Trace: a}, {Name: "volcano", Trace: b}}
	}
	first, doc := perfetto(t, build()...)
	second, _ := perfetto(t, build()...)
	if first != second {
		t.Fatalf("export not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	// Two processes, distinct pids.
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
	}
	if len(pids) != 2 {
		t.Fatalf("got pids %v, want exactly 2", pids)
	}
}

func TestWriteJSONEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// Collections marshal as [] — never null — so downstream consumers
	// can range without nil checks.
	for _, key := range []string{"utilizations", "spans", "events", "series"} {
		raw, ok := doc[key]
		if !ok {
			t.Fatalf("missing %q in %s", key, buf.String())
		}
		if s := strings.TrimSpace(string(raw)); s != "[]" {
			t.Fatalf("%q = %s, want []", key, s)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := New()
	tr.AddSpan(Span{Name: "scan", Track: "media", Kind: SpanScan, Start: 0, End: 400, Seq: 2, Bytes: 64})
	tr.Sample("port.bytes", "bytes", 100, 64)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Makespan    sim.VTime `json:"makespan_vns"`
		Concurrency float64   `json:"concurrency_factor"`
		Spans       []Span    `json:"spans"`
		Series      []Series  `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Makespan != 400 || len(doc.Spans) != 1 || doc.Spans[0] != (Span{
		Name: "scan", Track: "media", Kind: SpanScan, Start: 0, End: 400, Seq: 2, Bytes: 64}) {
		t.Fatalf("round trip mismatch: %+v", doc)
	}
	if len(doc.Series) != 1 || doc.Series[0].Name != "port.bytes" || len(doc.Series[0].Points) != 1 {
		t.Fatalf("series mismatch: %+v", doc.Series)
	}

	var again bytes.Buffer
	if err := tr.WriteJSON(&again); err != nil {
		t.Fatalf("WriteJSON again: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WriteJSON not deterministic for the same trace")
	}
}

func TestWriteGanttRendersBusyCells(t *testing.T) {
	tr := New()
	tr.AddSpan(Span{Name: "scan", Track: "media", Kind: SpanScan, Start: 0, End: 500, Seq: -1})
	tr.AddSpan(Span{Name: "agg", Track: "cpu", Kind: SpanStage, Start: 500, End: 1000, Seq: -1})
	var buf bytes.Buffer
	if err := tr.WriteGantt(&buf, 1); err != nil { // below minimum → clamped to 10
		t.Fatalf("WriteGantt: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + two track rows, no events section
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	// Each track is busy for exactly half the makespan: 5 of 10 cells.
	for _, line := range lines[1:] {
		if got := strings.Count(line, "#"); got != 5 {
			t.Fatalf("row %q has %d busy cells, want 5", line, got)
		}
		if !strings.Contains(line, "50.0%") {
			t.Fatalf("row %q missing 50.0%% utilization", line)
		}
	}
	// Tracks render in sorted order.
	if !(strings.HasPrefix(lines[1], "cpu") && strings.HasPrefix(lines[2], "media")) {
		t.Fatalf("tracks out of order:\n%s", out)
	}
}

func TestWriteGanttEventsSection(t *testing.T) {
	tr := New()
	tr.AddSpan(Span{Name: "scan", Track: "media", Kind: SpanScan, Start: 0, End: 100, Seq: -1})
	tr.AddEvent(Event{Name: "fault", Track: "media", At: 50, Detail: "read timeout"})
	var buf bytes.Buffer
	if err := tr.WriteGantt(&buf, 16); err != nil {
		t.Fatalf("WriteGantt: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "events:") || !strings.Contains(out, "fault") ||
		!strings.Contains(out, "read timeout") {
		t.Fatalf("events section missing:\n%s", out)
	}
}
