package columnar

import "fmt"

// Batch is a horizontal slice of a table: one vector per schema column,
// all the same length. Batches are the unit of flow through pipelines.
//
// The row count is stored explicitly so column-less batches (a schema
// with zero fields, or a projection down to zero columns) still report
// how many rows they stand for. For batches with columns the vectors
// remain authoritative.
type Batch struct {
	schema *Schema
	cols   []*Vector
	rows   int
	// sel, when non-nil, marks the live rows of the batch (a lazy
	// selection vector, one bit per physical row). Operators that can
	// work sparsely consult it via Selection/LiveRows; dense stage
	// boundaries (sort, join build, ship-over-link) call Compact to
	// materialize the surviving rows.
	sel *Bitmap
}

// NewBatch returns an empty batch for the schema with per-column capacity
// hint capacity.
func NewBatch(schema *Schema, capacity int) *Batch {
	cols := make([]*Vector, schema.NumFields())
	for i, f := range schema.Fields {
		cols[i] = NewVector(f.Type, capacity)
	}
	return &Batch{schema: schema, cols: cols}
}

// BatchOf assembles a batch from pre-built vectors. All vectors must have
// the same length and match the schema's types. A zero-field schema
// yields an empty batch; use ZeroColumnBatch to carry a row count
// without columns.
func BatchOf(schema *Schema, cols ...*Vector) *Batch {
	if len(cols) != schema.NumFields() {
		panic(fmt.Sprintf("columnar: BatchOf got %d vectors for %d fields", len(cols), schema.NumFields()))
	}
	n := -1
	for i, c := range cols {
		if c.Type() != schema.Fields[i].Type {
			panic(fmt.Sprintf("columnar: column %d is %v, schema wants %v", i, c.Type(), schema.Fields[i].Type))
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			panic(fmt.Sprintf("columnar: column %d has %d rows, expected %d", i, c.Len(), n))
		}
	}
	if n == -1 {
		n = 0
	}
	return &Batch{schema: schema, cols: cols, rows: n}
}

// ZeroColumnBatch returns a column-less batch that stands for rows rows,
// e.g. the carrier for a COUNT(*)-only scan where no column data needs
// to move.
func ZeroColumnBatch(schema *Schema, rows int) *Batch {
	if schema.NumFields() != 0 {
		panic(fmt.Sprintf("columnar: ZeroColumnBatch wants a zero-field schema, got %d fields", schema.NumFields()))
	}
	if rows < 0 {
		panic("columnar: ZeroColumnBatch with negative row count")
	}
	return &Batch{schema: schema, rows: rows}
}

// Schema returns the batch's schema.
func (b *Batch) Schema() *Schema { return b.schema }

// NumRows reports the number of rows. Batches with columns answer from
// their vectors; column-less batches answer from the stored row count.
func (b *Batch) NumRows() int {
	if len(b.cols) == 0 {
		return b.rows
	}
	return b.cols[0].Len()
}

// NumCols reports the number of columns.
func (b *Batch) NumCols() int { return len(b.cols) }

// Col returns column i.
func (b *Batch) Col(i int) *Vector { return b.cols[i] }

// ColByName returns the column with the given name, or nil.
func (b *Batch) ColByName(name string) *Vector {
	idx := b.schema.FieldIndex(name)
	if idx < 0 {
		return nil
	}
	return b.cols[idx]
}

// AppendRow appends one row of dynamically typed values. The value types
// must match the schema.
func (b *Batch) AppendRow(vals ...Value) {
	if len(vals) != len(b.cols) {
		panic(fmt.Sprintf("columnar: AppendRow got %d values for %d columns", len(vals), len(b.cols)))
	}
	for i, v := range vals {
		b.cols[i].AppendValue(v)
	}
	b.rows++
}

// Row materializes row i as a slice of dynamically typed values. This is
// the row view used by result printing and the HTAP transposition path;
// operators use column accessors instead.
func (b *Batch) Row(i int) []Value {
	out := make([]Value, len(b.cols))
	for c, col := range b.cols {
		out[c] = col.Value(i)
	}
	return out
}

// Project returns a batch containing only the columns at the given
// indices. Column storage is shared, not copied; a lazy selection
// vector is carried along.
func (b *Batch) Project(indices []int) *Batch {
	cols := make([]*Vector, len(indices))
	for i, idx := range indices {
		cols[i] = b.cols[idx]
	}
	return &Batch{schema: b.schema.Project(indices), cols: cols, rows: b.NumRows(), sel: b.sel}
}

// WithSelection returns a view of b whose live rows are the set bits of
// sel. Column storage is shared. sel must match the physical row count;
// nil clears the selection (all rows live).
func (b *Batch) WithSelection(sel *Bitmap) *Batch {
	if sel != nil && sel.Len() != b.NumRows() {
		panic("columnar: WithSelection length mismatch")
	}
	return &Batch{schema: b.schema, cols: b.cols, rows: b.rows, sel: sel}
}

// Selection returns the batch's lazy selection vector, or nil when every
// physical row is live.
func (b *Batch) Selection() *Bitmap { return b.sel }

// LiveRows reports the number of selected rows: NumRows when no
// selection vector is attached.
func (b *Batch) LiveRows() int {
	if b.sel == nil {
		return b.NumRows()
	}
	return b.sel.Count()
}

// Compact materializes the lazy selection: it returns a dense batch
// holding only the live rows, with no selection vector attached. Dense
// stage boundaries (sort, join build, ship-over-link, sinks) call this
// before counting rows or charging bytes. A batch without a selection
// is returned unchanged.
func (b *Batch) Compact() *Batch {
	if b.sel == nil {
		return b
	}
	if b.sel.Count() == b.NumRows() {
		return &Batch{schema: b.schema, cols: b.cols, rows: b.rows}
	}
	out := b.Gather(b.sel.Indices(nil))
	return out
}

// Gather returns a batch with only the rows at the given indices.
func (b *Batch) Gather(indices []int) *Batch {
	cols := make([]*Vector, len(b.cols))
	for i, c := range b.cols {
		cols[i] = c.Gather(indices)
	}
	return &Batch{schema: b.schema, cols: cols, rows: len(indices)}
}

// Filter returns a batch with only the rows whose bit is set in sel.
func (b *Batch) Filter(sel *Bitmap) *Batch {
	if sel.Len() != b.NumRows() {
		panic("columnar: Filter selection length mismatch")
	}
	return b.Gather(sel.Indices(nil))
}

// Slice returns a view of rows [from, to).
func (b *Batch) Slice(from, to int) *Batch {
	cols := make([]*Vector, len(b.cols))
	for i, c := range b.cols {
		cols[i] = c.Slice(from, to)
	}
	return &Batch{schema: b.schema, cols: cols, rows: to - from}
}

// ByteSize estimates the in-memory footprint of all column data in bytes.
// This is the payload size the fabric charges when a batch crosses a link.
func (b *Batch) ByteSize() int64 {
	var n int64
	for _, c := range b.cols {
		n += c.ByteSize()
	}
	return n
}

// Clone returns a deep copy of the batch (fresh vectors, copied values).
func (b *Batch) Clone() *Batch {
	out := NewBatch(b.schema, b.NumRows())
	for i := 0; i < b.NumRows(); i++ {
		for c := range b.cols {
			out.cols[c].AppendValue(b.cols[c].Value(i))
		}
	}
	out.rows = b.NumRows()
	return out
}

// RowMajor converts the batch to row-major form: a slice of rows, each a
// slice of values. This is the "recent" (OLTP-friendly) format in the
// paper's HTAP transposition discussion (Section 5.4).
func (b *Batch) RowMajor() [][]Value {
	rows := make([][]Value, b.NumRows())
	for i := range rows {
		rows[i] = b.Row(i)
	}
	return rows
}

// FromRowMajor builds a batch from row-major data, the inverse of
// RowMajor. This is the transposition the paper proposes doing in a
// near-memory functional unit.
func FromRowMajor(schema *Schema, rows [][]Value) *Batch {
	b := NewBatch(schema, len(rows))
	for _, r := range rows {
		b.AppendRow(r...)
	}
	return b
}
