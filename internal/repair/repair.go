// Package repair is the durability controller that closes the storage
// tier's detect -> route-around -> heal loop. Checksums (PR 1) detect a
// corrupt replica and hedges (PR 6) route around a slow or damaged one,
// but on their own the damage is permanent: every later read re-pays
// the fallback tax and a second fault on the surviving replica loses
// the data. The controller heals in three ways:
//
//   - Read-repair: the object store writes the clean payload that
//     satisfied a read back over any replica that served corrupt bytes
//     (wired in internal/storage; the controller is its ledger).
//   - Background scrubbing: an idle-time walker verifies segment
//     checksums replica by replica under a token-bucket byte budget,
//     escalating a transient suspicion into a persistent verdict by
//     re-reading before it repairs.
//   - Re-replication: a replica whose blobs are lost and whose breaker
//     has stayed open past a deadline is declared dead, and its
//     segments are re-cloned from the survivors to restore the target
//     replication factor.
//
// All repair I/O is metered on the store's repair/scrub counters, never
// the main Meter, and paced by the SLO burn-rate signal: while the
// foreground is missing its objective, repair yields the device queues
// — bounded foreground p99, finite MTTR. A nil *Controller is a valid
// no-op, and a store without a controller pays nothing on its read
// path.
package repair

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/metrics"
	"repro/internal/resilience"
	"repro/internal/storage"
)

// Config tunes a Controller. The zero value scrubs and re-clones as
// fast as the store allows, with no SLO coordination — the
// "unthrottled" arm of E26.
type Config struct {
	// ScrubRate paces scrub reads in bytes per second of wall clock;
	// <= 0 leaves them unpaced.
	ScrubRate float64
	// RepairRate paces re-replication copies in bytes per second;
	// <= 0 leaves them unpaced.
	RepairRate float64
	// BurnMax, with an SLO tracker attached, pauses all background
	// repair while the foreground burn rate is at or above it; <= 0
	// disables the pause. Repair also defers whenever the attached
	// scheduler's AllowRepair says no.
	BurnMax float64
	// DeadAfter is how long a replica must stay lost (first observation
	// to now, with its breaker open when one is attached) before the
	// controller declares it dead and re-clones. Zero declares on first
	// sight.
	DeadAfter time.Duration
	// Interval is the background loop's pause between passes; Run
	// clamps non-positive values to a millisecond.
	Interval time.Duration
	// Streams is the number of concurrent re-clone workers; values
	// below 1 mean 1. Unthrottled configs raise it to model a repair
	// storm.
	Streams int
}

// Verdict classifies a ledger incident.
type Verdict uint8

// Incident verdicts, in escalation order.
const (
	// VerdictTransient is a first checksum failure, to be confirmed by
	// re-read before any repair.
	VerdictTransient Verdict = iota
	// VerdictPersistent is a re-confirmed checksum failure: the stored
	// blob is damaged.
	VerdictPersistent
	// VerdictLost is a replica slot whose blob is gone entirely.
	VerdictLost
	// VerdictUnrecoverable is damage with no clean replica left to
	// repair from.
	VerdictUnrecoverable
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictTransient:
		return "transient"
	case VerdictPersistent:
		return "persistent"
	case VerdictLost:
		return "lost"
	case VerdictUnrecoverable:
		return "unrecoverable"
	}
	return "unknown"
}

// Incident is one fault-ledger entry: what the controller concluded
// about one replica blob and whether it healed it.
type Incident struct {
	Key     string
	Replica int
	Verdict Verdict
	Healed  bool
}

// Controller owns the background scrub and re-replication loops for one
// object store. All methods are safe for concurrent use and on a nil
// receiver.
type Controller struct {
	store *storage.ObjectStore
	cfg   Config

	// verify checks one replica blob; defaults to
	// storage.VerifySegmentBlob via Attach.
	verify func(key string, data []byte) error
	// pol supplies the breaker consulted by the dead-replica deadline
	// and the health tracker forgiven after a heal.
	pol *resilience.Policy
	// slo is the foreground burn-rate signal behind BurnMax.
	slo *metrics.SLOTracker
	// admit is the scheduler's repair admission class
	// (sched.Scheduler.AllowRepair); nil admits everything.
	admit func() bool
	// reg receives the durability gauges; nil is off.
	reg *metrics.Registry

	scrubTokens  throttle
	repairTokens throttle

	mu        sync.Mutex
	ledger    []Incident
	lostSince map[int]time.Time // replica index -> first time seen lost
	deadAt    map[int]time.Time // replica index -> when declared dead
	lastMTTR  time.Duration

	scrubbed      atomic.Int64 // replica blobs verified clean
	scrubRepairs  atomic.Int64 // blobs healed by the scrubber
	readRepairs   atomic.Int64 // blobs healed by foreground read-repair
	recloned      atomic.Int64 // blobs restored by re-replication
	unrecoverable atomic.Int64
	deadDeclared  atomic.Int64
}

// New returns a controller for store with the given config. Wire the
// optional collaborators with Attach* before Run.
func New(store *storage.ObjectStore, cfg Config) *Controller {
	c := &Controller{
		store:     store,
		cfg:       cfg,
		verify:    func(_ string, data []byte) error { return storage.VerifySegmentBlob(data) },
		lostSince: make(map[int]time.Time),
		deadAt:    make(map[int]time.Time),
	}
	c.scrubTokens.rate = cfg.ScrubRate
	c.repairTokens.rate = cfg.RepairRate
	// Read-repair write-backs happen inside the store; the controller
	// ledgers them.
	store.OnRepair = func(key string, replica int) {
		c.readRepairs.Add(1)
	}
	return c
}

// AttachResilience wires the health tracker and breakers consulted by
// dead-replica declaration and forgiven after heals.
func (c *Controller) AttachResilience(pol *resilience.Policy) {
	if c == nil {
		return
	}
	c.pol = pol
}

// AttachSLO wires the foreground burn-rate signal that BurnMax pauses
// on.
func (c *Controller) AttachSLO(t *metrics.SLOTracker) {
	if c == nil {
		return
	}
	c.slo = t
}

// AttachAdmission wires the scheduler's repair admission check; repair
// defers every quantum the check rejects.
func (c *Controller) AttachAdmission(allow func() bool) {
	if c == nil {
		return
	}
	c.admit = allow
}

// AttachMetrics wires the registry that receives the durability gauges.
func (c *Controller) AttachMetrics(reg *metrics.Registry) {
	if c == nil {
		return
	}
	c.reg = reg
}

// SetVerify replaces the blob verifier (the default checks segment
// checksums).
func (c *Controller) SetVerify(f func(key string, data []byte) error) {
	if c == nil || f == nil {
		return
	}
	c.verify = f
}

// Enabled reports whether a controller is present; nil is off.
func (c *Controller) Enabled() bool { return c != nil }

// pause is the yield quantum while the SLO burn rate or the scheduler
// holds repair back.
const pause = 2 * time.Millisecond

// admitQuantum blocks until background repair may do its next quantum
// of work: the SLO burn rate must be below BurnMax and the scheduler's
// repair class must admit. Returns ctx's error if cancelled while
// waiting.
func (c *Controller) admitQuantum(ctx context.Context) error {
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if c.cfg.BurnMax > 0 && c.slo != nil && c.slo.BurnRate() >= c.cfg.BurnMax {
			c.gauge("repair.deferred.burn", 1)
			sleep(ctx, pause)
			continue
		}
		if c.admit != nil && !c.admit() {
			sleep(ctx, pause)
			continue
		}
		return nil
	}
}

// gauge adds to a counter on the attached registry; nil-safe.
func (c *Controller) gauge(name string, delta int64) {
	c.reg.Counter(name).Add(delta)
}

// record appends one incident to the fault ledger.
func (c *Controller) record(inc Incident) {
	c.mu.Lock()
	c.ledger = append(c.ledger, inc)
	c.mu.Unlock()
}

// Ledger returns a copy of the fault ledger so far.
func (c *Controller) Ledger() []Incident {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Incident(nil), c.ledger...)
}

// Report is a snapshot of the controller's lifetime work.
type Report struct {
	// Scrubbed counts replica blobs verified clean by the scrubber.
	Scrubbed int64
	// ScrubRepairs counts blobs the scrubber healed.
	ScrubRepairs int64
	// ReadRepairs counts blobs healed by foreground read-repair
	// write-backs.
	ReadRepairs int64
	// Recloned counts blobs restored by re-replication.
	Recloned int64
	// Unrecoverable counts blobs with no clean source left.
	Unrecoverable int64
	// DeadDeclared counts replicas declared permanently dead.
	DeadDeclared int64
	// AtRiskObjects is the current number of under-replicated objects.
	AtRiskObjects int64
	// LastMTTR is the wall-clock time the most recent completed
	// re-replication took, from first observing the loss to full
	// restoration; zero if none completed yet.
	LastMTTR time.Duration
	// Incidents is the fault-ledger length.
	Incidents int64
}

// Stats snapshots the controller's counters; zero on a nil controller.
func (c *Controller) Stats() Report {
	if c == nil {
		return Report{}
	}
	atRisk := 0
	if c.store != nil {
		atRisk, _ = c.store.UnderReplicated()
	}
	c.mu.Lock()
	mttr := c.lastMTTR
	incidents := int64(len(c.ledger))
	c.mu.Unlock()
	return Report{
		Scrubbed:      c.scrubbed.Load(),
		ScrubRepairs:  c.scrubRepairs.Load(),
		ReadRepairs:   c.readRepairs.Load(),
		Recloned:      c.recloned.Load(),
		Unrecoverable: c.unrecoverable.Load(),
		DeadDeclared:  c.deadDeclared.Load(),
		AtRiskObjects: int64(atRisk),
		LastMTTR:      mttr,
		Incidents:     incidents,
	}
}

// Run drives scrub and re-replication passes until ctx is cancelled,
// publishing the durability gauges after every pass. This is the
// idle-time loop an engine starts once at boot.
func (c *Controller) Run(ctx context.Context) {
	if c == nil {
		return
	}
	interval := c.cfg.Interval
	if interval <= 0 {
		interval = time.Millisecond
	}
	for {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		c.ScrubPass(ctx)
		c.ReclonePass(ctx)
		c.publish()
		if err := sleep(ctx, interval); err != nil {
			return
		}
	}
}

// publish lands the durability gauges on the attached registry.
func (c *Controller) publish() {
	if c == nil || c.reg == nil {
		return
	}
	objects, slots := c.store.UnderReplicated()
	lost := 0
	for _, n := range slots {
		lost += n
	}
	c.reg.Gauge("durability.at_risk.objects").Set(float64(objects))
	c.reg.Gauge("durability.at_risk.blobs").Set(float64(lost))
	c.reg.Gauge("durability.scrubbed").Set(float64(c.scrubbed.Load()))
	c.reg.Gauge("durability.recloned").Set(float64(c.recloned.Load()))
	c.mu.Lock()
	mttr := c.lastMTTR
	c.mu.Unlock()
	c.reg.Gauge("durability.mttr.ms").Set(float64(mttr.Milliseconds()))
}

// sleep waits for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// throttle is a token bucket over wall clock: acquire(n) blocks until n
// byte-tokens have accumulated at rate per second. Zero rate admits
// immediately. The burst is one second of tokens, so a paced scrub can
// absorb one segment-sized read without sleeping between every blob.
type throttle struct {
	rate float64 // tokens (bytes) per second; <= 0 is unpaced

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// acquire blocks until n tokens are available, consuming them. The wait
// honors ctx.
func (t *throttle) acquire(ctx context.Context, n int) error {
	if t.rate <= 0 {
		return nil
	}
	for {
		t.mu.Lock()
		now := time.Now()
		if !t.last.IsZero() {
			t.tokens += now.Sub(t.last).Seconds() * t.rate
		}
		t.last = now
		if burst := t.rate; t.tokens > burst {
			t.tokens = burst
		}
		if t.tokens >= float64(n) {
			t.tokens -= float64(n)
			t.mu.Unlock()
			return nil
		}
		need := (float64(n) - t.tokens) / t.rate
		t.mu.Unlock()
		wait := time.Duration(need * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		if err := sleep(ctx, wait); err != nil {
			return err
		}
	}
}
