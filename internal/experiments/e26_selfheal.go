package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs/metrics"
	"repro/internal/plan"
	"repro/internal/repair"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E26Row is one arm of the self-healing comparison.
type E26Row struct {
	Arm     string // "off", "throttled", "unthrottled"
	Queries int    // recorded foreground queries
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	// P99x is this arm's p99 over the no-repair arm's p99; 1 for the
	// no-repair arm itself.
	P99x float64
	// Heal-loop work the arm performed.
	ReadRepairs   int64
	ScrubHeals    int64
	Recloned      int64
	RepairBytes   sim.Bytes
	MTTR          time.Duration // completed re-replication, loss to restore
	AtRiskEnd     int           // under-replicated objects when the arm finished
	CorruptSteady int64         // corrupt reads one post-window query still pays
}

// E26Result carries the self-healing comparison.
type E26Result struct {
	Table *Table
	Rows  []E26Row
}

// E26Options parameterizes the run; zero values take the defaults below
// (tests shrink sizes and windows to stay fast).
type E26Options struct {
	Trials      int           // minimum recorded queries per arm
	BaseLatency time.Duration // per-object-read device latency (real time)
	Workers     int           // morsel-scan worker pool width
	Segments    int           // target segment count for the table
	DamageEvery int           // every k-th segment gets one damaged replica
	Contention  float64       // store RepairContention (shared device queue)
	HealWindow  time.Duration // throttled arm's target full-heal duration
	DeadAfter   time.Duration // lost-replica deadline before re-replication
	Streams     int           // unthrottled arm's re-clone stream count
	BurnMax     float64       // SLO burn-rate ceiling for throttled repair
	NoHeal      bool          // run only the no-repair arm (dfbench -scrub=false)
}

// e26Seed fixes the damage schedule (which segments, which replica) so
// runs are reproducible; dfbench -json emits it with the repair
// counters.
const e26Seed = 0xE26

// E26SelfHeal measures what self-healing storage costs the foreground
// and what it buys durability. Every arm starts from the same wounded
// store: one replica of every DamageEvery-th segment carries latent
// bit-rot (alternating between the replica queries read first and the
// one only the scrubber visits), and a whole replica's device dies at
// t=0. The "off" arm detects and routes around the damage but never
// heals — every query re-pays the fallback tax and the store stays
// under-replicated forever. The "throttled" arm runs the repair
// controller paced to heal within HealWindow, under the scheduler's
// repair admission class and the SLO burn gate. The "unthrottled" arm
// lets the same controller run a repair storm (unpaced scrub and
// re-clone, Streams concurrent copies) through the same shared device
// queues. Foreground queries run continuously while each arm heals;
// latencies are wall-clock. The claims checked: rows stay bit-identical
// in every arm and trial; both repair arms drive replicas-at-risk to
// zero with a bounded, reported MTTR and pay zero retry overhead after
// the heal; and only the throttled arm keeps foreground p99 near the
// no-repair baseline while it does so.
func E26SelfHeal(rows int, opts E26Options) (*E26Result, error) {
	if opts.Trials <= 0 {
		opts.Trials = 12
	}
	if opts.BaseLatency <= 0 {
		opts.BaseLatency = 300 * time.Microsecond
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Segments <= 0 {
		opts.Segments = 24
	}
	if opts.DamageEvery <= 0 {
		opts.DamageEvery = 3
	}
	if opts.Contention <= 0 {
		opts.Contention = 1.5
	}
	if opts.HealWindow <= 0 {
		opts.HealWindow = 800 * time.Millisecond
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 50 * time.Millisecond
	}
	if opts.Streams <= 0 {
		opts.Streams = 6
	}
	if opts.BurnMax <= 0 {
		opts.BurnMax = 2
	}

	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.1)).
		WithProjection(workload.LExtendedPrice)
	segRows := rows/opts.Segments + 1

	res := &E26Result{Table: &Table{
		ID:    "E26",
		Title: "Self-healing storage: foreground tail during scrub + re-replication vs never healing",
		Header: []string{"repair", "queries", "p50", "p95", "p99", "p99 x",
			"rr/scrub/reclone", "repaired", "mttr", "at-risk", "corrupt/q"},
		Notes: "all arms start with latent damage on every " + fmt.Sprint(opts.DamageEvery) +
			"rd segment and one replica dead; " +
			"p99 x = arm p99 over the no-repair arm's; rr/scrub/reclone = blobs healed by " +
			"read-repair / scrubber / re-replication; at-risk = under-replicated objects at " +
			"the end; corrupt/q = corrupt reads one more query still pays (the unrepaired " +
			"fallback tax)",
		FaultSeed: e26Seed,
	}}

	arms := []string{"off", "throttled", "unthrottled"}
	if opts.NoHeal {
		arms = arms[:1]
	}
	var expected map[string]int
	var baseP99 time.Duration
	for _, arm := range arms {
		row, hist, err := e26RunArm(arm, data, q, segRows, opts)
		if err != nil {
			return nil, err
		}
		if expected == nil {
			expected = hist
		} else if !e19SameHist(hist, expected) {
			return nil, fmt.Errorf("experiments: E26 arm %s returned wrong rows", arm)
		}
		if arm == "off" {
			baseP99 = row.P99
			row.P99x = 1
		} else if baseP99 > 0 && row.P99 > 0 {
			row.P99x = float64(row.P99) / float64(baseP99)
		}
		res.Rows = append(res.Rows, *row)

		mttr := "-"
		if row.MTTR > 0 {
			mttr = row.MTTR.Round(time.Millisecond).String()
		}
		res.Table.AddRow(arm, d(int64(row.Queries)),
			row.P50.Round(time.Microsecond).String(),
			row.P95.Round(time.Microsecond).String(),
			row.P99.Round(time.Microsecond).String(),
			f(row.P99x),
			fmt.Sprintf("%d/%d/%d", row.ReadRepairs, row.ScrubHeals, row.Recloned),
			row.RepairBytes.String(), mttr,
			d(int64(row.AtRiskEnd)), d(row.CorruptSteady))
		res.Table.SetMetric("p99_us@"+arm, float64(row.P99)/float64(time.Microsecond))
		res.Table.SetMetric("p99x@"+arm, row.P99x)
		res.Table.SetMetric("at_risk_end@"+arm, float64(row.AtRiskEnd))
		if row.MTTR > 0 {
			res.Table.SetMetric("mttr_ms@"+arm, float64(row.MTTR)/float64(time.Millisecond))
		}
		res.Table.ReadRepairs += row.ReadRepairs
		res.Table.ScrubRepairs += row.ScrubHeals
		res.Table.Recloned += row.Recloned
		res.Table.RepairBytes += int64(row.RepairBytes)
	}
	return res, nil
}

// e26RunArm wounds a fresh engine's store and runs one arm's heal (or
// deliberate lack of one) under continuous foreground queries, returning
// the arm's row and the result histogram every trial reproduced.
func e26RunArm(arm string, data *columnar.Batch, q *plan.Query, segRows int, opts E26Options) (*E26Row, map[string]int, error) {
	df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	df.Workers = opts.Workers
	store := df.Storage.Store()
	store.SetReplicas(3)
	store.BaseLatency = opts.BaseLatency
	store.RetryBase = 0
	// The shared device queue: in-flight repair I/O stretches foreground
	// reads in every arm; only the repair arms create any.
	store.RepairContention = opts.Contention
	df.Storage.SegmentRows = segRows
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return nil, nil, err
	}
	if err := df.Load("lineitem", data); err != nil {
		return nil, nil, err
	}

	ctx := context.Background()
	row := &E26Row{Arm: arm}

	var ctrl *repair.Controller
	switch arm {
	case "off":
		// Detection and route-around without the heal: the PR-1 world.
		df.Storage.EnableVerify(false)
	case "throttled":
		// Pace scrub reads and repair copies so one full heal of the
		// store fits in HealWindow, gate every quantum on the scheduler's
		// repair admission class, and pause outright while the SLO burn
		// rate says the foreground is already losing its tail.
		var storeBytes int64
		for _, key := range store.List("") {
			storeBytes += int64(store.Size(key)) * int64(store.ReplicaCount(key))
		}
		rate := float64(storeBytes) / opts.HealWindow.Seconds()
		df.SetSLO(metrics.NewSLOTracker(time.Second, 0.99), 0)
		df.Scheduler.RepairBurnRate = opts.BurnMax
		ctrl = df.EnableRepair(repair.Config{
			ScrubRate:  rate,
			RepairRate: rate,
			BurnMax:    opts.BurnMax,
			DeadAfter:  opts.DeadAfter,
			Interval:   5 * time.Millisecond,
			Streams:    1,
		})
	case "unthrottled":
		// The repair storm: unpaced scrub, Streams concurrent re-clone
		// copies, no SLO coordination.
		ctrl = df.EnableRepair(repair.Config{
			DeadAfter: opts.DeadAfter,
			Interval:  time.Millisecond,
			Streams:   opts.Streams,
		})
	default:
		return nil, nil, fmt.Errorf("experiments: E26 unknown arm %q", arm)
	}

	// Warm up on the healthy store (health tracker, allocator, caches),
	// then wound it: latent damage alternating between replica 0 (the
	// one queries read first — read-repair's work) and replica 1 (the
	// one only the scrubber visits), plus a whole dead replica. A flip
	// can land in framing bytes the column checksums do not cover, so
	// count only the detectable damage.
	warm, err := df.Execute(ctx, q)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: E26 %s warmup: %w", arm, err)
	}
	hist := e19Histogram(warm)

	keys := store.List("lineitem/")
	detectable := 0
	for i, key := range keys {
		if i%opts.DamageEvery != 0 {
			continue
		}
		r := ((i / opts.DamageEvery) ^ e26Seed) % 2
		if !store.CorruptReplica(key, r) {
			return nil, nil, fmt.Errorf("experiments: E26 could not damage %s", key)
		}
		raw, err := store.ReadReplicaRaw(ctx, key, r)
		if err != nil {
			return nil, nil, err
		}
		if storage.VerifySegmentBlob(raw) != nil {
			detectable++
		}
	}
	lost := store.FailReplica(2)
	wantHeals := int64(detectable + lost)

	runCtx, stopRun := context.WithCancel(ctx)
	runDone := make(chan struct{})
	if ctrl != nil {
		go func() {
			defer close(runDone)
			ctrl.Run(runCtx)
		}()
	} else {
		close(runDone)
	}

	// Foreground: query continuously until the arm has both its minimum
	// trial count and (for the repair arms) a completed heal, so the
	// percentiles cover the whole heal window.
	healed := func() bool {
		if ctrl == nil {
			return true
		}
		if objects, _ := store.UnderReplicated(); objects != 0 {
			return false
		}
		return store.Repairs().WriteBacks >= wantHeals
	}
	var lats []time.Duration
	hardStop := time.Now().Add(30 * time.Second)
	for len(lats) < opts.Trials || !healed() {
		if time.Now().After(hardStop) {
			stopRun()
			<-runDone
			return nil, nil, fmt.Errorf("experiments: E26 %s heal never completed (%d/%d heals, at-risk %d)",
				arm, store.Repairs().WriteBacks, wantHeals, mustObjects(store))
		}
		start := time.Now()
		r, err := df.Execute(ctx, q)
		if err != nil {
			stopRun()
			<-runDone
			return nil, nil, fmt.Errorf("experiments: E26 %s query %d: %w", arm, len(lats), err)
		}
		lats = append(lats, time.Since(start))
		if !e19SameHist(e19Histogram(r), hist) {
			stopRun()
			<-runDone
			return nil, nil, fmt.Errorf("experiments: E26 %s query %d returned wrong rows", arm, len(lats))
		}
	}
	stopRun()
	<-runDone

	// One more query after the window: a healed store pays zero retry
	// overhead; the no-repair arm keeps paying the fallback tax forever.
	after, err := df.Execute(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	if !e19SameHist(e19Histogram(after), hist) {
		return nil, nil, fmt.Errorf("experiments: E26 %s post-heal query returned wrong rows", arm)
	}
	row.CorruptSteady = after.Stats.CorruptReads
	if ctrl != nil {
		if row.CorruptSteady != 0 || after.Stats.ReadRepairs != 0 {
			return nil, nil, fmt.Errorf("experiments: E26 %s still pays repair overhead after the heal: %d corrupt reads, %d read-repairs",
				arm, after.Stats.CorruptReads, after.Stats.ReadRepairs)
		}
		// And the store really is clean: a full scrub finds no work.
		sum := ctrl.ScrubPass(ctx)
		if sum.Corrupt != 0 || sum.Lost != 0 || sum.Healed != 0 {
			return nil, nil, fmt.Errorf("experiments: E26 %s post-heal scrub found work: %+v", arm, sum)
		}
		rep := ctrl.Stats()
		row.ReadRepairs = rep.ReadRepairs
		row.ScrubHeals = rep.ScrubRepairs
		row.Recloned = rep.Recloned
		row.MTTR = rep.LastMTTR
		if rep.Unrecoverable != 0 {
			return nil, nil, fmt.Errorf("experiments: E26 %s lost data: %d unrecoverable blobs", arm, rep.Unrecoverable)
		}
	}
	row.RepairBytes = store.Repairs().WriteBackBytes
	row.AtRiskEnd = mustObjects(store)
	row.Queries = len(lats)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	row.P50 = e24Quantile(lats, 0.50)
	row.P95 = e24Quantile(lats, 0.95)
	row.P99 = e24Quantile(lats, 0.99)
	return row, hist, nil
}

// mustObjects reads the store's under-replicated object count.
func mustObjects(store *storage.ObjectStore) int {
	objects, _ := store.UnderReplicated()
	return objects
}
