package experiments

import (
	"context"
	"fmt"

	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/flow"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E10Result carries the full-pipeline comparison.
type E10Result struct {
	Table    *Table
	DataFlow core.ExecStats
	CPUOnly  core.ExecStats
	Volcano  core.ExecStats
}

// E10FullPipeline reproduces Figure 6: one query (filtered group-by)
// executed three ways — the full data-path pipeline, the same engine
// with all work on the CPU, and the Volcano baseline with a buffer pool.
func E10FullPipeline(rows int) (*E10Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.1)).
		WithGroupBy(workload.PricingSummary())

	df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return nil, err
	}
	if err := df.Load("lineitem", data); err != nil {
		return nil, err
	}
	variants, err := df.Plan(q, 0)
	if err != nil {
		return nil, err
	}
	var full, cpuOnly *plan.Physical
	for _, v := range variants {
		switch v.Variant {
		case "full-offload":
			full = v
		case "cpu-only":
			cpuOnly = v
		}
	}
	if full == nil || cpuOnly == nil {
		return nil, fmt.Errorf("experiments: E10 variants missing")
	}
	fullRes, err := df.ExecutePlan(context.Background(), full)
	if err != nil {
		return nil, err
	}
	cpuRes, err := df.ExecutePlan(context.Background(), cpuOnly)
	if err != nil {
		return nil, err
	}

	vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 512*sim.MB)
	if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return nil, err
	}
	if err := vo.Load("lineitem", data); err != nil {
		return nil, err
	}
	voRes, err := vo.Execute(context.Background(), q)
	if err != nil {
		return nil, err
	}
	if fullRes.Rows() != voRes.Rows() || cpuRes.Rows() != voRes.Rows() {
		return nil, fmt.Errorf("experiments: E10 engines disagree")
	}

	t := &Table{
		ID:     "E10",
		Title:  "Full data-path pipeline (Figure 6): filtered group-by, three execution models",
		Header: []string{"engine", "moved", "cpu bytes", "cpu busy", "makespan", "peak memory"},
	}
	for _, e := range []struct {
		name string
		st   core.ExecStats
	}{
		{"dataflow full-offload", fullRes.Stats},
		{"dataflow cpu-only", cpuRes.Stats},
		{"volcano + bufferpool", voRes.Stats},
	} {
		t.AddRow(e.name, e.st.MovedBytes.String(), e.st.CPUBytes.String(),
			e.st.CPUBusy.String(), e.st.SimTime.String(), e.st.PeakMemory.String())
	}
	return &E10Result{Table: t, DataFlow: fullRes.Stats, CPUOnly: cpuRes.Stats, Volcano: voRes.Stats}, nil
}

// E11Row is one credit-configuration point.
type E11Row struct {
	Depth       int
	CreditBatch int
	DataMsgs    int64
	CreditMsgs  int64
	Overhead    float64
}

// E11Result carries the flow-control sweep.
type E11Result struct {
	Table *Table
	Rows  []E11Row
}

// E11CreditFlow reproduces Section 7.1: credit-based flow control is
// "easy to implement and low traffic" — the credit counter-stream stays
// a small fraction of the data stream across queue configurations while
// still bounding in-flight data.
func E11CreditFlow(batches int) (*E11Result, error) {
	res := &E11Result{Table: &Table{
		ID:     "E11",
		Title:  "Credit-based flow control (Section 7.1): control traffic vs queue configuration",
		Header: []string{"depth", "credit batch", "data msgs", "credit msgs", "credit/data"},
	}}
	schema := workload.KVSchema()
	for _, depth := range []int{2, 4, 8, 16, 32} {
		creditBatch := depth / 2
		if creditBatch < 1 {
			creditBatch = 1
		}
		pipe := &flow.Pipeline{
			Name: "e11",
			Source: func(emit flow.Emit) error {
				for i := 0; i < batches; i++ {
					b := columnar.BatchOf(schema,
						columnar.FromInt64s([]int64{int64(i)}),
						columnar.FromInt64s([]int64{int64(i)}))
					if err := emit(b); err != nil {
						return err
					}
				}
				return nil
			},
			Stages:      []flow.Placed{{Stage: passthrough{}}, {Stage: passthrough{}}},
			Depth:       depth,
			CreditBatch: creditBatch,
		}
		fr, err := pipe.Run(context.Background(), func(*columnar.Batch) error { return nil })
		if err != nil {
			return nil, err
		}
		row := E11Row{
			Depth:       depth,
			CreditBatch: creditBatch,
			DataMsgs:    fr.TotalDataMessages(),
			CreditMsgs:  fr.TotalCreditMessages(),
		}
		if row.DataMsgs > 0 {
			row.Overhead = float64(row.CreditMsgs) / float64(row.DataMsgs)
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(d(int64(depth)), d(int64(creditBatch)),
			d(row.DataMsgs), d(row.CreditMsgs), f(row.Overhead))
	}
	return res, nil
}

// E12Result carries the interference comparison.
type E12Result struct {
	Table         *Table
	NaiveTime     sim.VTime // both queries forced onto one node, no limits
	ScheduledTime sim.VTime // scheduler steering + fair sharing
	NaiveVariants [2]string
	SchedVariants [2]string
}

// E12Interference reproduces Section 7.3: two concurrent plans contending
// for one node's path lose throughput; a scheduler with plan variants
// steers the second onto the other compute node and rate-limits shared
// links, improving the combined makespan.
func E12Interference(rows int) (*E12Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.3)).
		WithGroupBy(workload.PricingSummary())

	runPair := func(useScheduler bool) (sim.VTime, [2]string, error) {
		eng := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		if err := eng.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return 0, [2]string{}, err
		}
		if err := eng.Load("lineitem", data); err != nil {
			return 0, [2]string{}, err
		}
		var variants [2]string
		var total sim.VTime
		if useScheduler {
			// Candidates span both compute nodes; the scheduler steers.
			var lists [2][]*plan.Physical
			for node := 0; node < 2; node++ {
				vs, err := eng.Plan(q, node)
				if err != nil {
					return 0, variants, err
				}
				lists[node] = vs
			}
			s := eng.Scheduler
			s.ContentionPenalty = 5
			adm1, err := s.Admit(context.Background(), append(append([]*plan.Physical{}, lists[0]...), lists[1]...))
			if err != nil {
				return 0, variants, err
			}
			adm2, err := s.Admit(context.Background(), append(append([]*plan.Physical{}, lists[0]...), lists[1]...))
			if err != nil {
				return 0, variants, err
			}
			r1, err := eng.ExecutePlan(context.Background(), adm1.Plan)
			if err != nil {
				return 0, variants, err
			}
			r2, err := eng.ExecutePlan(context.Background(), adm2.Plan)
			if err != nil {
				return 0, variants, err
			}
			s.Release(adm1)
			s.Release(adm2)
			variants[0] = adm1.Plan.Path.CPU().Name + "/" + adm1.Variant
			variants[1] = adm2.Plan.Path.CPU().Name + "/" + adm2.Variant
			if r1.Stats.SimTime > r2.Stats.SimTime {
				total = r1.Stats.SimTime
			} else {
				total = r2.Stats.SimTime
			}
		} else {
			// Naive: both on node 0's top-ranked plan; the shared path
			// serializes, so the combined makespan is the sum.
			vs, err := eng.Plan(q, 0)
			if err != nil {
				return 0, variants, err
			}
			r1, err := eng.ExecutePlan(context.Background(), vs[0])
			if err != nil {
				return 0, variants, err
			}
			r2, err := eng.ExecutePlan(context.Background(), vs[0])
			if err != nil {
				return 0, variants, err
			}
			variants[0] = vs[0].Path.CPU().Name + "/" + vs[0].Variant
			variants[1] = variants[0]
			total = r1.Stats.SimTime + r2.Stats.SimTime
		}
		return total, variants, nil
	}

	naive, nv, err := runPair(false)
	if err != nil {
		return nil, err
	}
	scheduled, sv, err := runPair(true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E12",
		Title:  "Interference and scheduling (Section 7.3): two concurrent plans",
		Header: []string{"policy", "combined makespan", "placement 1", "placement 2"},
		Notes:  "naive co-location serializes on the shared node; the scheduler spreads across nodes",
	}
	t.AddRow("naive", naive.String(), nv[0], nv[1])
	t.AddRow("scheduled", scheduled.String(), sv[0], sv[1])
	return &E12Result{Table: t, NaiveTime: naive, ScheduledTime: scheduled, NaiveVariants: nv, SchedVariants: sv}, nil
}

// E13Row is one table-size point of the memory-footprint sweep.
type E13Row struct {
	Rows        int
	DataBytes   sim.Bytes
	DataflowMem sim.Bytes
	VolcanoMem  sim.Bytes
	VolcanoHit  float64
}

// E13Result carries the buffer-pool comparison.
type E13Result struct {
	Table *Table
	Rows  []E13Row
}

// E13NoBufferPool reproduces Section 7.4: the data-flow engine's
// compute-side memory stays flat as tables grow (stateless compute),
// while the buffer-pool engine's footprint tracks the data and thrashes
// once the working set exceeds the pool.
func E13NoBufferPool(sizes []int, poolBytes sim.Bytes) (*E13Result, error) {
	res := &E13Result{Table: &Table{
		ID:     "E13",
		Title:  "No more buffer pools (Section 7.4): compute-side memory vs table size",
		Header: []string{"rows", "table bytes", "dataflow peak", "volcano peak", "volcano hit rate"},
		Notes:  fmt.Sprintf("volcano pool capacity %s; dataflow holds only in-flight batches + aggregate state", poolBytes),
	}}
	q := func() *plan.Query {
		return plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())
	}
	for _, rows := range sizes {
		cfg := workload.DefaultLineitemConfig(rows)
		data := workload.GenLineitem(cfg)

		df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := df.Load("lineitem", data); err != nil {
			return nil, err
		}
		dfRes, err := df.Execute(context.Background(), q())
		if err != nil {
			return nil, err
		}

		vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), poolBytes)
		if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := vo.Load("lineitem", data); err != nil {
			return nil, err
		}
		// Two passes: the second shows whether the pool holds the
		// working set or thrashes.
		if _, err := vo.Execute(context.Background(), q()); err != nil {
			return nil, err
		}
		voRes, err := vo.Execute(context.Background(), q())
		if err != nil {
			return nil, err
		}
		row := E13Row{
			Rows:        rows,
			DataBytes:   sim.Bytes(data.ByteSize()),
			DataflowMem: dfRes.Stats.PeakMemory,
			VolcanoMem:  voRes.Stats.PeakMemory,
			VolcanoHit:  vo.Pool.Stats().HitRate(),
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(d(int64(rows)), row.DataBytes.String(),
			row.DataflowMem.String(), row.VolcanoMem.String(),
			fmt.Sprintf("%.2f", row.VolcanoHit))
	}
	return res, nil
}

// E14Result carries the cache-elimination comparison.
type E14Result struct {
	Table       *Table
	ColdVolcano sim.VTime
	WarmVolcano sim.VTime
	DataFlow    sim.VTime
	CacheBytes  sim.Bytes
}

// E14NoDataCache reproduces Section 7.5: a caching engine is fast only
// after paying the cold pass and holding the cache in memory; the active
// pipeline's cost is flat across passes with no cache footprint, because
// only the needed bytes ever move.
func E14NoDataCache(rows int) (*E14Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.05)).
		WithProjection(workload.LExtendedPrice)

	vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 512*sim.MB)
	if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return nil, err
	}
	if err := vo.Load("lineitem", data); err != nil {
		return nil, err
	}
	cold, err := vo.Execute(context.Background(), q)
	if err != nil {
		return nil, err
	}
	warm, err := vo.Execute(context.Background(), q)
	if err != nil {
		return nil, err
	}

	df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		return nil, err
	}
	if err := df.Load("lineitem", data); err != nil {
		return nil, err
	}
	dfRes, err := df.Execute(context.Background(), q)
	if err != nil {
		return nil, err
	}
	dfRes2, err := df.Execute(context.Background(), q)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "E14",
		Title:  "No more data caches (Section 7.5): repeated selective scan",
		Header: []string{"engine/pass", "makespan", "cache memory held"},
		Notes:  "the pipeline's cost is flat across passes with zero cache footprint",
	}
	cacheBytes := vo.Pool.Stats().Resident
	t.AddRow("volcano cold", cold.Stats.SimTime.String(), "0B")
	t.AddRow("volcano warm", warm.Stats.SimTime.String(), cacheBytes.String())
	t.AddRow("dataflow pass1", dfRes.Stats.SimTime.String(), "0B")
	t.AddRow("dataflow pass2", dfRes2.Stats.SimTime.String(), "0B")
	return &E14Result{
		Table:       t,
		ColdVolcano: cold.Stats.SimTime,
		WarmVolcano: warm.Stats.SimTime,
		DataFlow:    dfRes.Stats.SimTime,
		CacheBytes:  cacheBytes,
	}, nil
}

// E15Row is one stream-size point of the kernel-setup experiment.
type E15Row struct {
	StreamBytes sim.Bytes
	SetupShare  float64
}

// E15Result carries the kernel-setup overheads.
type E15Result struct {
	Table *Table
	Rows  []E15Row
}

// E15KernelSetup quantifies Section 7.2's point that accelerators are
// programmed through registers/kernel installation rather than an ISA —
// and that this fixed setup cost is immaterial for streaming work.
func E15KernelSetup(sizes []sim.Bytes) (*E15Result, error) {
	res := &E15Result{Table: &Table{
		ID:     "E15",
		Title:  "Kernel installation overhead (Section 7.2) on a smart NIC",
		Header: []string{"stream size", "setup", "stream time", "setup share"},
		Notes:  "setup cost is fixed per kernel; its share vanishes as streams grow",
	}}
	for _, size := range sizes {
		nic := fabric.NewSmartNIC("nic", sim.GbitPerSec(400))
		setup := nic.ChargeSetup()
		stream := nic.Charge(fabric.OpFilter, size)
		share := float64(setup) / float64(setup+stream)
		res.Rows = append(res.Rows, E15Row{StreamBytes: size, SetupShare: share})
		res.Table.AddRow(size.String(), setup.String(), stream.String(), fmt.Sprintf("%.4f", share))
	}
	return res, nil
}
