package core

import (
	"context"
	"testing"

	"repro/internal/sqlparse"
)

// End-to-end: SQL text -> parser -> both engines -> identical answers.
func TestSQLEndToEnd(t *testing.T) {
	df, vo, _ := newEngines(t)
	statements := []string{
		"SELECT l_returnflag, COUNT(*), SUM(l_quantity), AVG(l_discount) FROM lineitem GROUP BY l_returnflag",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 1 AND 10",
		"SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_shipdate < 100",
		"SELECT l_returnflag, COUNT(*) FROM lineitem WHERE l_comment LIKE '%ironic%' GROUP BY l_returnflag",
		"SELECT l_partkey, SUM(l_quantity) FROM lineitem GROUP BY l_partkey ORDER BY 2 LIMIT 5",
		"SELECT MIN(l_quantity), MAX(l_quantity) FROM lineitem WHERE NOT l_returnflag = 'A'",
	}
	for _, sql := range statements {
		q, err := sqlparse.Parse(sql, df)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		dfRes, err := df.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("%q dataflow: %v", sql, err)
		}
		// Re-parse against the volcano catalog (same schema) for a
		// fully independent path.
		qv, err := sqlparse.Parse(sql, vo)
		if err != nil {
			t.Fatalf("%q volcano parse: %v", sql, err)
		}
		voRes, err := vo.Execute(context.Background(), qv)
		if err != nil {
			t.Fatalf("%q volcano: %v", sql, err)
		}
		if q.Limit > 0 {
			// LIMIT results can legitimately differ in membership when
			// rows tie on the sort key; compare counts only.
			if dfRes.Rows() != voRes.Rows() {
				t.Errorf("%q: limited row counts differ: %d vs %d", sql, dfRes.Rows(), voRes.Rows())
			}
			continue
		}
		assertSameResults(t, dfRes, voRes)
	}
}

func TestSQLCatalogErrors(t *testing.T) {
	df, _, _ := newEngines(t)
	if _, err := sqlparse.Parse("SELECT * FROM ghost", df); err == nil {
		t.Error("unknown table parsed")
	}
	if _, err := sqlparse.Parse("SELECT nope FROM lineitem", df); err == nil {
		t.Error("unknown column parsed")
	}
}

func TestSQLPushdownStillHappens(t *testing.T) {
	df, _, _ := newEngines(t)
	q, err := sqlparse.Parse(
		"SELECT l_extendedprice FROM lineitem WHERE l_quantity < 5", df)
	if err != nil {
		t.Fatal(err)
	}
	res, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// SQL-originated queries go through the same optimizer: the filter
	// must land on the storage processor.
	if res.Stats.DeviceBusy["storage.proc"] == 0 {
		t.Error("SQL query did not engage the storage processor")
	}
	if res.Rows() != int64(q.Limit) && res.Rows() == 0 {
		t.Error("empty result")
	}
}
