package experiments

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/memdev"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E18Row is one region-size point of the HTAP transposition experiment.
type E18Row struct {
	Rows      int
	CPUBytes  sim.Bytes
	NearBytes sim.Bytes
	CPUTime   sim.VTime
	NearTime  sim.VTime
}

// E18Result carries the format-conversion comparison.
type E18Result struct {
	Table *Table
	Rows  []E18Row
}

// E18HTAPTranspose reproduces Section 5.4's data-transposition unit:
// HTAP engines convert recent (row) data to historical (columnar) format
// and back; doing the conversion at the memory controller keeps both
// images in memory, while the CPU path drags the full region across the
// memory bus twice (read one format, write the other).
func E18HTAPTranspose(sizes []int) (*E18Result, error) {
	res := &E18Result{Table: &Table{
		ID:     "E18",
		Title:  "HTAP format transposition (Section 5.4): near-memory unit vs CPU",
		Header: []string{"rows", "cpu bytes", "near bytes", "cpu time", "near time"},
		Notes:  "CPU path moves the region twice (read + write back); the unit converts in place",
	}}
	for _, n := range sizes {
		data := workload.GenKV(workload.KVConfig{Rows: n, Keys: int64(n), Seed: 29})
		dram := fabric.NewMemory("dram")
		accel := fabric.NewNearMemoryAccel("nma")
		cpu := fabric.NewCPU("cpu", 1)
		link := &fabric.Link{Name: "dram--cpu", A: "dram", B: "cpu",
			Bandwidth: fabric.CoreMemBandwidth, Latency: fabric.DDRLatency}
		mem := memdev.New("mem0", dram, accel)
		mem.Store("t", data, false)

		rowsNear, nearStats, err := mem.TransposeToRows("t", true, link, cpu)
		if err != nil {
			return nil, err
		}
		rowsCPU, cpuStats, err := mem.TransposeToRows("t", false, link, cpu)
		if err != nil {
			return nil, err
		}
		if len(rowsNear) != n || len(rowsCPU) != n {
			return nil, fmt.Errorf("experiments: E18 row counts wrong (%d/%d of %d)", len(rowsNear), len(rowsCPU), n)
		}
		// Spot-check the conversions agree.
		for i := 0; i < n; i += n/7 + 1 {
			for c := range rowsNear[i] {
				if !rowsNear[i][c].Equal(rowsCPU[i][c]) {
					return nil, fmt.Errorf("experiments: E18 paths disagree at row %d", i)
				}
			}
		}
		row := E18Row{
			Rows:     n,
			CPUBytes: cpuStats.BytesMoved, NearBytes: nearStats.BytesMoved,
			CPUTime: cpuStats.Time, NearTime: nearStats.Time,
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(d(int64(n)),
			row.CPUBytes.String(), row.NearBytes.String(),
			row.CPUTime.String(), row.NearTime.String())
	}
	return res, nil
}
