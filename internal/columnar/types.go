// Package columnar implements the in-flight data representation used by
// every operator and device in the engine: typed column vectors grouped
// into batches, with schemas and null bitmaps.
//
// Batches are the unit that flows through pipelines (Section 7.1 of the
// paper: queue elements moved by DMA engines between stages). They are
// columnar because both the storage layer and the streaming accelerators
// operate column-at-a-time; a row view is provided for the HTAP
// transposition experiments.
package columnar

import (
	"fmt"
	"strings"
)

// Type enumerates the column types supported by the engine.
type Type uint8

// Supported column types.
const (
	Int64 Type = iota
	Float64
	String
	Bool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// FixedWidth reports the in-memory width in bytes of one value of the
// type, or 0 for variable-width types.
func (t Type) FixedWidth() int {
	switch t {
	case Int64, Float64:
		return 8
	case Bool:
		return 1
	}
	return 0
}

// Field is one named, typed column of a schema.
type Field struct {
	Name string
	Type Type
}

// Schema describes the columns of a batch or table.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema {
	return &Schema{Fields: fields}
}

// NumFields reports the number of columns.
func (s *Schema) NumFields() int { return len(s.Fields) }

// FieldIndex returns the index of the column with the given name, or -1.
func (s *Schema) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Project returns a new schema containing only the columns at the given
// indices, in order. It panics on out-of-range indices, which indicate a
// planner bug rather than a runtime condition.
func (s *Schema) Project(indices []int) *Schema {
	out := &Schema{Fields: make([]Field, len(indices))}
	for i, idx := range indices {
		out.Fields[i] = s.Fields[idx]
	}
	return out
}

// Concat returns a schema with s's fields followed by other's fields.
// Name collisions are resolved by prefixing the right side with "r_",
// matching the behaviour of the join operators.
func (s *Schema) Concat(other *Schema) *Schema {
	out := &Schema{Fields: make([]Field, 0, len(s.Fields)+len(other.Fields))}
	seen := make(map[string]bool, len(s.Fields))
	for _, f := range s.Fields {
		seen[f.Name] = true
		out.Fields = append(out.Fields, f)
	}
	for _, f := range other.Fields {
		name := f.Name
		if seen[name] {
			name = "r_" + name
		}
		out.Fields = append(out.Fields, Field{Name: name, Type: f.Type})
	}
	return out
}

// Equal reports whether two schemas have identical fields.
func (s *Schema) Equal(other *Schema) bool {
	if len(s.Fields) != len(other.Fields) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != other.Fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Value is one dynamically typed cell, used at API boundaries (row
// ingestion, result printing) where column-at-a-time access is
// inconvenient. Operators never use Value in inner loops.
type Value struct {
	Type Type
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Type: Int64, I: v} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{Type: Float64, F: v} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{Type: String, S: v} }

// BoolValue wraps a bool.
func BoolValue(v bool) Value { return Value{Type: Bool, B: v} }

// NullValue returns the NULL of the given type.
func NullValue(t Type) Value { return Value{Type: t, Null: true} }

// String renders the value for result printing.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	case Bool:
		return fmt.Sprintf("%t", v.B)
	}
	return "?"
}

// Equal reports deep equality of two values including null-ness.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type || v.Null != o.Null {
		return false
	}
	if v.Null {
		return true
	}
	switch v.Type {
	case Int64:
		return v.I == o.I
	case Float64:
		return v.F == o.F
	case String:
		return v.S == o.S
	case Bool:
		return v.B == o.B
	}
	return false
}
