package metrics

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Histogram bucketing is HDR-style log-linear: values below 2^histSubBits
// land in exact unit buckets; above that, each power of two is split
// into 2^histSubBits linear sub-buckets, so the relative width of any
// bucket is at most 2^-histSubBits (1/128 ≈ 0.78%). Quantile returns a
// bucket's midpoint, halving the worst-case relative error again —
// comfortably inside the 1% bound E25 asserts against exact per-query
// aggregates.
const (
	histSubBits = 7
	histSubs    = 1 << histSubBits // sub-buckets per power of two
	// Exponents 0..histSubBits-1 collapse into the first exact range;
	// exponents histSubBits..62 each contribute histSubs buckets
	// (non-negative int64 values only; Observe clamps negatives to 0).
	histBuckets = histSubs + (63-histSubBits)*histSubs
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubs {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the top bit, >= histSubBits
	sub := v >> (exp - histSubBits)  // top histSubBits+1 bits, in [histSubs, 2*histSubs)
	return (exp-histSubBits)*histSubs + int(sub)
}

// bucketMid returns the representative (midpoint) value for a bucket.
func bucketMid(i int) int64 {
	if i < histSubs {
		return int64(i)
	}
	exp := i/histSubs + histSubBits - 1
	sub := int64(i%histSubs) + histSubs
	lo := sub << (exp - histSubBits)
	width := int64(1) << (exp - histSubBits)
	return lo + width/2
}

// histWindow is one ring slot: a flat bucket array plus running count,
// sum and max so snapshots don't rescan empty buckets for totals.
type histWindow struct {
	buckets []int64 // accessed via atomic ops
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func (w *histWindow) reset() {
	for i := range w.buckets {
		atomic.StoreInt64(&w.buckets[i], 0)
	}
	w.count.Store(0)
	w.sum.Store(0)
	w.max.Store(0)
}

// Histogram records int64 observations (latencies in nanoseconds by
// convention) into a ring of bucket windows. Observe always writes the
// current window; reads merge every window, so an un-rotated histogram
// behaves cumulatively and a rotated one covers the last `windows`
// rotation periods. Observe is atomics-only; Rotate takes a mutex but
// never blocks observers. A nil *Histogram is a no-op.
type Histogram struct {
	mu      sync.Mutex // serializes Rotate
	cur     atomic.Int32
	windows []histWindow
}

func newHistogram(windows int) *Histogram {
	if windows < 1 {
		windows = 1
	}
	h := &Histogram{windows: make([]histWindow, windows)}
	for i := range h.windows {
		h.windows[i].buckets = make([]int64, histBuckets)
	}
	return h
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	w := &h.windows[h.cur.Load()]
	atomic.AddInt64(&w.buckets[bucketIndex(v)], 1)
	w.count.Add(1)
	w.sum.Add(v)
	for {
		old := w.max.Load()
		if v <= old || w.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Rotate retires the oldest window: subsequent observations land in a
// fresh window and the evicted one's contents leave every future read.
// With a single window Rotate simply clears the histogram.
func (h *Histogram) Rotate() {
	if h == nil {
		return
	}
	h.mu.Lock()
	next := (int(h.cur.Load()) + 1) % len(h.windows)
	h.windows[next].reset()
	h.cur.Store(int32(next))
	h.mu.Unlock()
}

// Count returns the merged observation count across live windows.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.windows {
		n += h.windows[i].count.Load()
	}
	return n
}

// Sum returns the merged sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	var s int64
	for i := range h.windows {
		s += h.windows[i].sum.Load()
	}
	return s
}

// Max returns the largest bucket-exact observation still in a live
// window (the true max, not a bucket bound — tracked separately).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	var m int64
	for i := range h.windows {
		if v := h.windows[i].max.Load(); v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the p-quantile (p in [0,1]) over the merged windows
// by the nearest-rank method, reported as the containing bucket's
// midpoint (exact for values below 128). Empty histogram → 0.
func (h *Histogram) Quantile(p float64) int64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Nearest rank: the same convention the experiments use on sorted
	// samples — index floor(p*n), clamped to the last element.
	rank := int64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		var b int64
		for w := range h.windows {
			b += atomic.LoadInt64(&h.windows[w].buckets[i])
		}
		seen += b
		if seen > rank {
			return bucketMid(i)
		}
	}
	return h.Max()
}
