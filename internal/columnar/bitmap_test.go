package columnar

import (
	"math/rand"
	"testing"
)

func TestBitmapAndNot(t *testing.T) {
	a, b := NewBitmap(130), NewBitmap(130)
	for i := 0; i < 130; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 130; i += 4 {
		b.Set(i)
	}
	a.AndNot(b)
	for i := 0; i < 130; i++ {
		want := i%2 == 0 && i%4 != 0
		if a.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, a.Get(i), want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AndNot length mismatch did not panic")
		}
	}()
	a.AndNot(NewBitmap(64))
}

func TestBitmapFill(t *testing.T) {
	cases := []struct{ lo, hi int }{
		{0, 0}, {0, 1}, {0, 64}, {0, 65}, {63, 65}, {5, 200}, {64, 128}, {100, 101}, {0, 200},
	}
	for _, c := range cases {
		b := NewBitmap(200)
		b.Fill(c.lo, c.hi)
		for i := 0; i < 200; i++ {
			want := i >= c.lo && i < c.hi
			if b.Get(i) != want {
				t.Fatalf("Fill(%d,%d): bit %d = %v, want %v", c.lo, c.hi, i, b.Get(i), want)
			}
		}
		if got, want := b.Count(), c.hi-c.lo; got != want {
			t.Fatalf("Fill(%d,%d): Count = %d, want %d", c.lo, c.hi, got, want)
		}
	}
	b := NewBitmap(32)
	b.Set(3)
	b.Fill(10, 12) // must not clear bits outside the range
	if !b.Get(3) {
		t.Fatal("Fill cleared an unrelated bit")
	}
}

func TestBitmapFillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fill out of range did not panic")
		}
	}()
	NewBitmap(10).Fill(0, 11)
}

// runsOf collects the Runs output for comparison.
func runsOf(b *Bitmap) [][2]int {
	var out [][2]int
	b.Runs(func(lo, hi int) { out = append(out, [2]int{lo, hi}) })
	return out
}

func TestBitmapRuns(t *testing.T) {
	b := NewBitmap(300)
	for _, i := range []int{0, 1, 2, 63, 64, 65, 120, 250, 251, 299} {
		b.Set(i)
	}
	want := [][2]int{{0, 3}, {63, 66}, {120, 121}, {250, 252}, {299, 300}}
	got := runsOf(b)
	if len(got) != len(want) {
		t.Fatalf("Runs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Runs = %v, want %v", got, want)
		}
	}

	if got := runsOf(NewBitmap(100)); got != nil {
		t.Fatalf("empty bitmap Runs = %v, want none", got)
	}

	full := NewBitmap(129)
	full.Fill(0, 129)
	if got := runsOf(full); len(got) != 1 || got[0] != [2]int{0, 129} {
		t.Fatalf("full bitmap Runs = %v, want [[0 129]]", got)
	}
}

func TestBitmapRunsMatchesIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		b := NewBitmap(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		var fromRuns []int
		b.Runs(func(lo, hi int) {
			if lo >= hi {
				t.Fatalf("empty run [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				fromRuns = append(fromRuns, i)
			}
		})
		want := b.Indices(nil)
		if len(fromRuns) != len(want) {
			t.Fatalf("n=%d: Runs visited %d bits, Indices %d", n, len(fromRuns), len(want))
		}
		for i := range want {
			if fromRuns[i] != want[i] {
				t.Fatalf("n=%d: Runs[%d]=%d, Indices[%d]=%d", n, i, fromRuns[i], i, want[i])
			}
		}
	}
}

func benchBitmaps(n int) (*Bitmap, *Bitmap) {
	a, b := NewBitmap(n), NewBitmap(n)
	for i := 0; i < n; i += 3 {
		a.Set(i)
	}
	for i := 0; i < n; i += 7 {
		b.Set(i)
	}
	return a, b
}

func BenchmarkBitmapAnd(b *testing.B) {
	x, y := benchBitmaps(1 << 16)
	b.SetBytes(int64(x.ByteSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkBitmapOr(b *testing.B) {
	x, y := benchBitmaps(1 << 16)
	b.SetBytes(int64(x.ByteSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkBitmapCount(b *testing.B) {
	x, _ := benchBitmaps(1 << 16)
	b.SetBytes(int64(x.ByteSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}

func BenchmarkBitmapIndices(b *testing.B) {
	x, _ := benchBitmaps(1 << 16)
	dst := make([]int, 0, 1<<16)
	b.SetBytes(int64(x.ByteSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = x.Indices(dst[:0])
	}
}
