package storage

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/fabric"
)

// scanAll runs one scan and returns the emitted batches, the stats, and
// the progress watermarks observed on the way.
func scanAll(t *testing.T, srv *Server, spec ScanSpec) ([]*columnar.Batch, ScanStats, []int) {
	t.Helper()
	var marks []int
	spec.Progress = func(next int) error {
		marks = append(marks, next)
		return nil
	}
	emit, got := collect(t)
	stats, err := srv.Scan(context.Background(), "lineitem", spec, emit)
	if err != nil {
		t.Fatal(err)
	}
	return *got, stats, marks
}

// rowsOf flattens batches into row-major cells for order-sensitive
// comparison.
func rowsOf(batches []*columnar.Batch) [][]columnar.Value {
	var out [][]columnar.Value
	for _, b := range batches {
		out = append(out, b.RowMajor()...)
	}
	return out
}

// A parallel scan must be observationally identical to the serial one:
// same batches in the same order, same stats, same progress watermarks,
// and the same metered byte/busy totals on every device.
func TestParallelScanMatchesSerial(t *testing.T) {
	specs := map[string]ScanSpec{
		"plain": {},
		"pushdown-filter": {
			Filter:   expr.NewCmp(1, expr.Lt, columnar.IntValue(20)),
			Pushdown: true,
		},
		"pushdown-project": {
			Projection: []int{2, 0},
			Pushdown:   true,
		},
		"prune": {
			// orderkey is monotone, so zone maps prune later segments.
			Filter:   expr.NewCmp(0, expr.Lt, columnar.IntValue(1500)),
			Pushdown: true,
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			serialSrv := newTestServer(t, true)
			loadTable(t, serialSrv, 7000)
			wantBatches, wantStats, wantMarks := scanAll(t, serialSrv, spec)
			serialMedia := serialSrv.media.Meter.Snapshot()
			serialProc := serialSrv.proc.Meter.Snapshot()

			for _, workers := range []int{2, 4} {
				parSrv := newTestServer(t, true)
				// Match the serial server's parallel capacity explicitly.
				loadTable(t, parSrv, 7000)
				pspec := spec
				pspec.Workers = workers
				gotBatches, gotStats, gotMarks := scanAll(t, parSrv, pspec)

				if !reflect.DeepEqual(rowsOf(gotBatches), rowsOf(wantBatches)) {
					t.Fatalf("w=%d: emitted rows differ from serial scan", workers)
				}
				if gotStats != wantStats {
					t.Errorf("w=%d: stats differ:\n  par %+v\n  ser %+v", workers, gotStats, wantStats)
				}
				if !reflect.DeepEqual(gotMarks, wantMarks) {
					t.Errorf("w=%d: progress marks %v, want %v", workers, gotMarks, wantMarks)
				}
				if m := parSrv.media.Meter.Snapshot(); m != serialMedia {
					t.Errorf("w=%d: media meter %+v, want %+v", workers, m, serialMedia)
				}
				if m := parSrv.proc.Meter.Snapshot(); m != serialProc {
					t.Errorf("w=%d: proc meter %+v, want %+v", workers, m, serialProc)
				}
			}
		})
	}
}

// Repeated parallel scans of the same table must be deterministic in
// results and in metered totals, even though worker interleaving varies
// run to run.
func TestParallelScanDeterministic(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 7000)
	spec := ScanSpec{
		Filter:   expr.NewCmp(1, expr.Lt, columnar.IntValue(25)),
		Pushdown: true,
		Workers:  4,
	}
	start := srv.proc.Meter.Snapshot()
	first, _, _ := scanAll(t, srv, spec)
	delta := srv.proc.Meter.Snapshot().Sub(start)
	for i := 0; i < 5; i++ {
		before := srv.proc.Meter.Snapshot()
		again, _, _ := scanAll(t, srv, spec)
		if !reflect.DeepEqual(rowsOf(again), rowsOf(first)) {
			t.Fatalf("run %d: rows differ from first parallel run", i)
		}
		// Every identical scan charges the identical delta.
		if got := srv.proc.Meter.Snapshot().Sub(before); got != delta {
			t.Fatalf("run %d: proc meter delta %+v, want %+v", i, got, delta)
		}
	}
}

// Worker counts beyond the processor's replicated units clamp instead
// of oversubscribing lanes, and a scan on a single-unit processor stays
// effectively serial.
func TestParallelScanClampsToUnits(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 3000)
	if u := srv.proc.Units(); u != fabric.SmartSSDUnits {
		t.Fatalf("test proc units = %d, want %d", u, fabric.SmartSSDUnits)
	}
	batches, stats, _ := scanAll(t, srv, ScanSpec{Workers: 64})
	if totalRows(batches) != 3000 {
		t.Fatalf("scanned %d rows, want 3000", totalRows(batches))
	}
	if stats.SegmentsTotal != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	lanes := srv.proc.LaneBusy()
	if len(lanes) > fabric.SmartSSDUnits {
		t.Errorf("%d lanes charged, want <= %d (clamp failed)", len(lanes), fabric.SmartSSDUnits)
	}
}
