package flow

import (
	"fmt"
	"sync"
)

// Snapshotter is implemented by stages whose state must survive a
// stage-level partial restart. SnapshotState returns a deep copy of the
// stage's accumulated state at a checkpoint marker; RestoreState
// reinstalls such a copy into a freshly built stage. RestoreState must
// not alias the snapshot it is given (copy again), so the same epoch can
// seed several restart attempts. Stateless stages simply don't implement
// the interface and restart from nothing.
type Snapshotter interface {
	SnapshotState() any
	RestoreState(any)
}

// Restore tells a pipeline run to start from a completed checkpoint:
// per-stage snapshots taken at the epoch's marker. The source must
// separately resume from the epoch's watermark (see Checkpointer.Resume).
type Restore struct {
	Epoch int
	Snaps []any
}

// Checkpointer records stage-boundary checkpoints of one pipeline run.
//
// The source calls Mark(epoch, resume) at a convenient watermark (the
// storage scan does so every few segments); the runtime injects a marker
// into the stream. Markers ride the data FIFO, so when one reaches a
// stage every batch of its epoch has already been processed there — each
// stage snapshots its state at marker receipt, and the set of snapshots
// for one epoch is a consistent cut of the whole linear pipeline
// (Chandy–Lamport without the hard parts). When the marker falls off the
// last stage the epoch is complete: everything at or before the
// watermark is durable at the sink and never needs replaying.
//
// A Checkpointer serves one Run; build a fresh one per attempt.
type Checkpointer struct {
	mu     sync.Mutex
	stages int
	inject func(epoch int) error
	epochs map[int]*ckptEpoch
	latest int
	done   int

	// OnComplete, when set before the run, is called (outside the lock,
	// from the last stage's goroutine) each time an epoch completes. The
	// engine uses it to snapshot fabric meters, so replay waste after a
	// failure is metered from the last completed checkpoint.
	OnComplete func(epoch int)
}

// ckptEpoch is the recorded state of one marked epoch.
type ckptEpoch struct {
	resume      any
	snaps       []any
	sinkBatches int64
	complete    bool
}

// NewCheckpointer returns an empty Checkpointer ready to attach to a
// Pipeline via its Ckpt field.
func NewCheckpointer() *Checkpointer {
	return &Checkpointer{epochs: make(map[int]*ckptEpoch)}
}

// bind attaches the checkpointer to a starting run.
func (c *Checkpointer) bind(stages int, inject func(int) error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stages = stages
	c.inject = inject
	c.mu.Unlock()
}

// Mark opens checkpoint epoch `epoch` at the source: resume is the
// opaque watermark (e.g. the next storage segment index) a restart
// resumes the source from, and a marker is injected into the stream
// behind every batch of the epoch. Call only from inside the pipeline's
// Source, on the source goroutine; epochs must be marked in increasing
// order.
func (c *Checkpointer) Mark(epoch int, resume any) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	inject := c.inject
	if inject == nil {
		c.mu.Unlock()
		return fmt.Errorf("flow: checkpointer is not attached to a running pipeline")
	}
	c.epochLocked(epoch).resume = resume
	c.mu.Unlock()
	// The marker send can block on back-pressure; never under the lock.
	return inject(epoch)
}

// epochLocked returns (creating if needed) the epoch record.
func (c *Checkpointer) epochLocked(epoch int) *ckptEpoch {
	e := c.epochs[epoch]
	if e == nil {
		e = &ckptEpoch{}
		c.epochs[epoch] = e
	}
	return e
}

// stageSnap records stage i's state snapshot at the epoch's marker.
func (c *Checkpointer) stageSnap(i, epoch int, snap any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.epochLocked(epoch)
	if e.snaps == nil {
		e.snaps = make([]any, c.stages)
	}
	e.snaps[i] = snap
}

// sinkComplete marks the epoch durable: its marker fell off the last
// stage with sink batches delivered so far.
func (c *Checkpointer) sinkComplete(epoch int, sink int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	e := c.epochLocked(epoch)
	e.sinkBatches = sink
	e.complete = true
	if epoch > c.latest {
		c.latest = epoch
	}
	c.done++
	cb := c.OnComplete
	c.mu.Unlock()
	if cb != nil {
		cb(epoch)
	}
}

// Latest reports the newest completed epoch, if any.
func (c *Checkpointer) Latest() (int, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.latest == 0 {
		return 0, false
	}
	return c.latest, true
}

// Completed reports how many epochs completed during the run.
func (c *Checkpointer) Completed() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// Resume returns the source watermark recorded for a completed epoch.
func (c *Checkpointer) Resume(epoch int) any {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.epochs[epoch]; e != nil {
		return e.resume
	}
	return nil
}

// Snaps returns the per-stage snapshots recorded for a completed epoch.
// Entries are nil for stateless stages.
func (c *Checkpointer) Snaps(epoch int) []any {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.epochs[epoch]; e != nil {
		return e.snaps
	}
	return nil
}

// SinkBatches reports how many sink batches had been delivered when the
// epoch completed; a restart truncates the delivered output back to it.
func (c *Checkpointer) SinkBatches(epoch int) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.epochs[epoch]; e != nil && e.complete {
		return e.sinkBatches
	}
	return 0
}
