package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsOff(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	m := r.RateMeter("m")
	s := r.SLO("s", time.Millisecond, 0.99)
	if c != nil || g != nil || h != nil || m != nil || s != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	// Every method must be a no-op on nil receivers, not a panic.
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	h.Rotate()
	m.Mark(4)
	s.Observe(time.Second)
	r.SetNow(time.Now)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 ||
		h.Sum() != 0 || h.Max() != 0 || m.Rate() != 0 || m.Total() != 0 ||
		s.BurnRate() != 0 || s.Target() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus on nil: %v", err)
	}
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText on nil: %v", err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil: %v", err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("queries")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("queries") != c {
		t.Fatalf("same name must return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2.5)
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %g, want 4.5", got)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	r := New()
	h := r.Histogram("small")
	for v := int64(0); v < 128; v++ {
		h.Observe(v)
	}
	if h.Count() != 128 {
		t.Fatalf("count = %d", h.Count())
	}
	// Values below 128 are bucket-exact: the median of 0..127 by
	// nearest rank (index 64) is exactly 64.
	if got := h.Quantile(0.5); got != 64 {
		t.Fatalf("p50 = %d, want 64", got)
	}
	if got := h.Max(); got != 127 {
		t.Fatalf("max = %d, want 127", got)
	}
}

func TestHistogramQuantileWithinOnePercent(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, the shape of latency data.
		v := int64(100 * (1 << uint(rng.Intn(20))))
		v += rng.Int63n(v/4 + 1)
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := vals[int(p*float64(len(vals)))]
		got := h.Quantile(p)
		rel := float64(got-exact) / float64(exact)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.01 {
			t.Fatalf("p%g: hist=%d exact=%d rel err %.4f > 1%%", p*100, got, exact, rel)
		}
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}
}

func TestHistogramWindowsRotate(t *testing.T) {
	r := New()
	h := r.HistogramWindows("w", 2)
	h.Observe(10)
	h.Observe(20)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	h.Rotate() // both observations still live (ring of 2)
	h.Observe(30)
	if h.Count() != 3 {
		t.Fatalf("after 1 rotate count = %d, want 3", h.Count())
	}
	h.Rotate() // evicts the first window's two observations
	if h.Count() != 1 {
		t.Fatalf("after 2 rotates count = %d, want 1", h.Count())
	}
	if got := h.Quantile(0.5); got != 30 {
		t.Fatalf("p50 = %d, want 30", got)
	}
	// Single-window histograms clear on Rotate.
	h1 := r.Histogram("cum")
	h1.Observe(5)
	h1.Rotate()
	if h1.Count() != 0 {
		t.Fatalf("single-window rotate must clear")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("conc")
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestRateMeterWindow(t *testing.T) {
	r := New()
	now := time.Unix(1000, 0)
	r.SetNow(func() time.Time { return now })
	m := r.RateMeter("bytes") // 10s window, 10 slots
	m.Mark(100)
	now = now.Add(time.Second)
	m.Mark(100)
	// 200 units over ~2s of meter age.
	if rate := m.Rate(); rate < 50 || rate > 200 {
		t.Fatalf("young rate = %g, want ~100", rate)
	}
	if m.Total() != 200 {
		t.Fatalf("total = %d", m.Total())
	}
	// Jump far past the window: everything ages out.
	now = now.Add(time.Minute)
	if rate := m.Rate(); rate != 0 {
		t.Fatalf("aged rate = %g, want 0", rate)
	}
	if m.Total() != 200 {
		t.Fatalf("total must survive aging, got %d", m.Total())
	}
}

func TestSLOBurnRate(t *testing.T) {
	r := New()
	now := time.Unix(2000, 0)
	r.SetNow(func() time.Time { return now })
	s := r.SLO("p99", 10*time.Millisecond, 0.99)
	if s.BurnRate() != 0 {
		t.Fatalf("empty tracker must read 0")
	}
	for i := 0; i < 99; i++ {
		s.Observe(time.Millisecond)
	}
	s.Observe(time.Second) // 1 bad in 100 = exactly the 1% budget
	if burn := s.BurnRate(); burn < 0.99 || burn > 1.01 {
		t.Fatalf("burn = %g, want 1", burn)
	}
	for i := 0; i < 4; i++ {
		s.Observe(time.Second)
	}
	if burn := s.BurnRate(); burn < 4 { // 5 bad / 104 ≈ 4.8x budget
		t.Fatalf("burn = %g, want > 4", burn)
	}
	// Observations age out of the 30s window.
	now = now.Add(2 * time.Minute)
	if burn := s.BurnRate(); burn != 0 {
		t.Fatalf("aged burn = %g, want 0", burn)
	}
	good, bad := s.Window()
	if good != 0 || bad != 0 {
		t.Fatalf("aged window = %d/%d, want 0/0", good, bad)
	}
}

func TestPrometheusExport(t *testing.T) {
	r := New()
	// Pin the clock so the rate/SLO readings (which divide by age) are
	// identical across the two scrapes diffed below.
	now := time.Unix(3000, 0)
	r.SetNow(func() time.Time { return now })
	r.Counter("fleet.queries").Add(10)
	r.Counter(Labels("tenant.bytes.moved", "tenant", "acme")).Add(4096)
	r.Gauge("sched.queue.depth").Set(3)
	h := r.Histogram("query.wall.ns")
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 1000)
	}
	r.RateMeter("fleet.bytes").Mark(512)
	r.SLO("fleet.p99", time.Millisecond, 0.99).Observe(2 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE fleet_queries counter",
		"fleet_queries 10",
		`tenant_bytes_moved{tenant="acme"} 4096`,
		"# TYPE sched_queue_depth gauge",
		"sched_queue_depth 3",
		"# TYPE query_wall_ns summary",
		`query_wall_ns{quantile="0.5"}`,
		`query_wall_ns{quantile="0.99"}`,
		"query_wall_ns_count 100",
		"fleet_bytes_total 512",
		"fleet_bytes_per_second",
		"fleet_p99_burn_rate",
		"fleet_p99_bad 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Determinism: a quiesced registry renders byte-identically.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("prometheus export is not deterministic")
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a").Add(1)
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["a"] != 1 || snap.Gauges["b"] != 2 || snap.Histograms["c"].Count != 1 {
		t.Fatalf("round-tripped snapshot lost data: %+v", snap)
	}
}

func TestLabelsEscaping(t *testing.T) {
	got := Labels("m", "k", `va"l\ue`)
	want := `m{k="va\"l\\ue"}`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
	if Labels("m") != "m" {
		t.Fatalf("no pairs must return the bare name")
	}
	if got := Labels("m", "a", "1", "b", "2"); got != `m{a="1",b="2"}` {
		t.Fatalf("multi-label = %s", got)
	}
}

func TestPromNameSanitize(t *testing.T) {
	base, labels := promName(`scan.decoded.bytes-saved{dev="gpu0"}`)
	if base != "scan_decoded_bytes_saved" || labels != `{dev="gpu0"}` {
		t.Fatalf("promName = %q %q", base, labels)
	}
}
