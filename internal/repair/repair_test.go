package repair

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/metrics"
	"repro/internal/resilience"
	"repro/internal/storage"
)

// newStore builds a 2-replica store holding n objects with distinct
// payloads, plus a verify func that accepts exactly the stored bytes.
func newStore(n int) (*storage.ObjectStore, func(string, []byte) error) {
	return newStoreR(n, 2)
}

func newStoreR(n, replicas int) (*storage.ObjectStore, func(string, []byte) error) {
	o := storage.NewObjectStore()
	o.SetReplicas(replicas)
	want := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("seg-%03d", i)
		payload := []byte("payload of " + key + " ------------")
		o.Put(key, payload)
		want[key] = payload
	}
	verify := func(key string, data []byte) error {
		if !bytes.Equal(data, want[key]) {
			return errors.New("payload mismatch")
		}
		return nil
	}
	return o, verify
}

// A scrub pass over a clean store verifies every replica blob and heals
// nothing; over a store with latent damage it escalates transient ->
// persistent and heals from the clean sibling.
func TestScrubPassDetectsAndHeals(t *testing.T) {
	o, verify := newStore(4)
	c := New(o, Config{})
	c.SetVerify(verify)

	sum := c.ScrubPass(context.Background())
	if sum.Clean != 8 || sum.Corrupt != 0 || sum.Healed != 0 || sum.Lost != 0 {
		t.Fatalf("clean-store scrub = %+v, want 8 clean", sum)
	}

	if !o.CorruptReplica("seg-001", 1) {
		t.Fatal("could not seed damage")
	}
	sum = c.ScrubPass(context.Background())
	if sum.Corrupt != 1 || sum.Healed != 1 {
		t.Fatalf("scrub of damaged store = %+v, want 1 corrupt healed", sum)
	}
	raw, err := o.ReadReplicaRaw(context.Background(), "seg-001", 1)
	if err != nil || verify("seg-001", raw) != nil {
		t.Fatalf("damaged blob not healed: err=%v", err)
	}

	// The ledger shows the escalation: transient suspicion first, then
	// the confirmed persistent verdict with the heal.
	var transient, persistent bool
	for _, inc := range c.Ledger() {
		if inc.Key != "seg-001" || inc.Replica != 1 {
			continue
		}
		switch inc.Verdict {
		case VerdictTransient:
			transient = true
		case VerdictPersistent:
			if !transient {
				t.Error("persistent verdict before transient suspicion")
			}
			if !inc.Healed {
				t.Error("persistent verdict not marked healed")
			}
			persistent = true
		}
	}
	if !transient || !persistent {
		t.Fatalf("ledger missing escalation: %+v", c.Ledger())
	}
	rep := c.Stats()
	if rep.ScrubRepairs != 1 {
		t.Errorf("ScrubRepairs = %d, want 1", rep.ScrubRepairs)
	}

	// A second pass finds everything clean again.
	sum = c.ScrubPass(context.Background())
	if sum.Corrupt != 0 || sum.Healed != 0 {
		t.Errorf("re-scrub after heal = %+v, want no repair work", sum)
	}
}

// A verify failure that does not reproduce on re-read stays a transient
// verdict: no repair happens.
func TestScrubTransientFlipNotRepaired(t *testing.T) {
	o, verify := newStore(1)
	c := New(o, Config{})
	var failed bool
	c.SetVerify(func(key string, data []byte) error {
		if key == "seg-000" && !failed {
			failed = true
			return errors.New("in-flight flip")
		}
		return verify(key, data)
	})
	sum := c.ScrubPass(context.Background())
	if sum.Corrupt != 0 || sum.Healed != 0 {
		t.Fatalf("transient flip was treated as persistent: %+v", sum)
	}
	if o.Repairs().WriteBacks != 0 {
		t.Error("transient flip triggered a write-back")
	}
	var sawTransient bool
	for _, inc := range c.Ledger() {
		if inc.Verdict == VerdictTransient {
			sawTransient = true
		}
		if inc.Verdict == VerdictPersistent {
			t.Errorf("unexpected persistent verdict: %+v", inc)
		}
	}
	if !sawTransient {
		t.Error("transient suspicion not ledgered")
	}
}

// Damage with no clean sibling left is unrecoverable: reported, never
// silently dropped.
func TestScrubUnrecoverable(t *testing.T) {
	o, verify := newStore(1)
	c := New(o, Config{})
	c.SetVerify(verify)
	o.CorruptReplica("seg-000", 0)
	o.CorruptReplica("seg-000", 1)
	sum := c.ScrubPass(context.Background())
	if sum.Healed != 0 {
		t.Fatalf("healed %d blobs with no clean source", sum.Healed)
	}
	if c.Stats().Unrecoverable == 0 {
		t.Fatal("unrecoverable damage not counted")
	}
}

// A failed replica is declared dead after DeadAfter, re-cloned from the
// survivors, and the restoration's MTTR recorded. With DeadAfter zero
// and no breaker attached, declaration happens on first sight.
func TestReclonePassRestoresFailedReplica(t *testing.T) {
	o, verify := newStore(5)
	c := New(o, Config{Streams: 2})
	c.SetVerify(verify)

	if lost := o.FailReplica(1); lost != 5 {
		t.Fatalf("FailReplica lost %d, want 5", lost)
	}
	if objects, _ := o.UnderReplicated(); objects != 5 {
		t.Fatalf("%d objects at risk, want 5", objects)
	}

	c.ReclonePass(context.Background())

	objects, slots := o.UnderReplicated()
	if objects != 0 || len(slots) != 0 {
		t.Fatalf("after re-clone: %d objects at risk, slots %v", objects, slots)
	}
	rep := c.Stats()
	if rep.Recloned != 5 {
		t.Errorf("Recloned = %d, want 5", rep.Recloned)
	}
	if rep.DeadDeclared != 1 {
		t.Errorf("DeadDeclared = %d, want 1", rep.DeadDeclared)
	}
	if rep.LastMTTR <= 0 {
		t.Error("completed restoration recorded no MTTR")
	}
	if rep.AtRiskObjects != 0 {
		t.Errorf("AtRiskObjects = %d after full restore", rep.AtRiskObjects)
	}
	// Every restored blob verifies clean.
	for _, key := range o.List("") {
		raw, err := o.ReadReplicaRaw(context.Background(), key, 1)
		if err != nil || verify(key, raw) != nil {
			t.Fatalf("restored %s/r1 bad: err=%v", key, err)
		}
	}
}

// With a breaker set attached, the dead-replica declaration waits for
// the breaker to open — the deadline alone is not a death sentence
// while reads still reach the replica.
func TestRecloneWaitsForOpenBreaker(t *testing.T) {
	o, verify := newStore(2)
	pol := resilience.NewPolicy()
	o.Resilience = pol
	c := New(o, Config{})
	c.SetVerify(verify)
	c.AttachResilience(pol)

	o.FailReplica(0)
	// Breaker for store/r0 is still closed: no declaration despite the
	// zero DeadAfter deadline.
	c.ReclonePass(context.Background())
	if c.Stats().DeadDeclared != 0 {
		t.Fatal("replica declared dead with its breaker closed")
	}
	if objects, _ := o.UnderReplicated(); objects != 2 {
		t.Fatalf("re-clone ran before the breaker opened: %d at risk", objects)
	}

	// Reads of the lost slot (here the scrubber's raw reads; health
	// steering routes foreground reads away after the first strike) feed
	// the breaker organically.
	for i := 0; i < 6; i++ {
		if _, err := o.ReadReplicaRaw(context.Background(), o.List("")[0], 0); err == nil {
			t.Fatal("raw read of a lost slot succeeded")
		}
	}
	if pol.Breakers.State("store/r0") != resilience.Open {
		t.Fatal("lost-slot reads did not trip the breaker")
	}

	c.ReclonePass(context.Background())
	if c.Stats().DeadDeclared != 1 {
		t.Fatal("open breaker + deadline did not declare the replica dead")
	}
	if objects, _ := o.UnderReplicated(); objects != 0 {
		t.Fatalf("%d objects still at risk after re-clone", objects)
	}
	// The restored replica's breaker is closed again so steering can use
	// it without waiting out the cooldown.
	if st := pol.Breakers.State("store/r0"); st != resilience.Closed {
		t.Errorf("restored replica's breaker = %v, want Closed", st)
	}
	if pol.Health.CorruptStrikes("store/r0") != 0 {
		t.Error("restored replica still carries integrity strikes")
	}
}

// The DeadAfter deadline is honored: a loss younger than the deadline
// is not declared even with no breaker attached.
func TestDeadAfterDeadline(t *testing.T) {
	o, verify := newStore(1)
	c := New(o, Config{DeadAfter: time.Hour})
	c.SetVerify(verify)
	o.FailReplica(1)
	c.ReclonePass(context.Background())
	if c.Stats().DeadDeclared != 0 {
		t.Fatal("replica declared dead within DeadAfter")
	}
	if objects, _ := o.UnderReplicated(); objects != 1 {
		t.Fatal("re-clone ran within DeadAfter")
	}
}

// The SLO burn-rate pause and the scheduler admission gate both hold
// repair back; a cancelled context unblocks the wait.
func TestAdmitQuantumGates(t *testing.T) {
	o, _ := newStore(1)
	c := New(o, Config{BurnMax: 1})
	slo := metrics.NewSLOTracker(time.Millisecond, 0.9)
	for i := 0; i < 10; i++ {
		slo.Observe(time.Second) // every request misses: burn far above 1
	}
	c.AttachSLO(slo)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.admitQuantum(ctx)
	if err == nil {
		t.Fatal("admitQuantum admitted through a burning SLO")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("admitQuantum returned before ctx expiry")
	}

	// Denied admission also blocks until ctx is cut.
	c2 := New(o, Config{})
	c2.AttachAdmission(func() bool { return false })
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if err := c2.admitQuantum(ctx2); err == nil {
		t.Fatal("admitQuantum admitted through a denying scheduler")
	}

	// Open gates admit immediately.
	c3 := New(o, Config{})
	if err := c3.admitQuantum(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// The token bucket paces: acquiring twice the burst at a finite rate
// takes measurable wall clock, and a cancelled context cuts the wait.
func TestThrottlePacing(t *testing.T) {
	th := &throttle{rate: 100_000} // 100 KB/s, burst 100 KB
	start := time.Now()
	if err := th.acquire(context.Background(), 100_000); err != nil {
		t.Fatal(err) // first burst is free
	}
	if err := th.acquire(context.Background(), 5_000); err != nil {
		t.Fatal(err) // 5 KB beyond the burst: ~50ms
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("120%% of burst acquired in %v, want >= 30ms of pacing", elapsed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	th2 := &throttle{rate: 1} // 1 B/s: unpayable
	if err := th2.acquire(ctx, 1_000_000); err == nil {
		t.Fatal("acquire outlived its context")
	}

	if err := (&throttle{}).acquire(nil, 1<<30); err != nil {
		t.Fatal("zero-rate throttle paced")
	}
}

// Foreground read-repairs land in the controller's ledgered counter via
// the store's OnRepair hook.
func TestReadRepairCounted(t *testing.T) {
	o, verify := newStore(1)
	c := New(o, Config{})
	c.SetVerify(verify)
	o.Verify = verify
	o.WriteBack = true
	o.CorruptReplica("seg-000", 0)
	if _, err := o.Get(context.Background(), "seg-000"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ReadRepairs; got != 1 {
		t.Fatalf("ReadRepairs = %d, want 1", got)
	}
}

// Run drives scrub and re-clone in a loop until cancelled, publishing
// durability gauges, and is safe to race with foreground mutation.
func TestRunLoopHealsAndStops(t *testing.T) {
	// Three replicas: seg-000 loses r1 *and* carries damage on r0, and
	// the clean r2 still sources both the scrub heal and the re-clone.
	o, verify := newStoreR(3, 3)
	reg := metrics.New()
	c := New(o, Config{Interval: time.Millisecond})
	c.SetVerify(verify)
	c.AttachMetrics(reg)

	o.CorruptReplica("seg-000", 0)
	o.FailReplica(1)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Run(ctx)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		objects, _ := o.UnderReplicated()
		if objects == 0 && c.Stats().ScrubRepairs >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()

	if objects, _ := o.UnderReplicated(); objects != 0 {
		t.Errorf("%d objects still at risk after Run", objects)
	}
	if c.Stats().ScrubRepairs == 0 {
		t.Error("Run never healed the corrupt blob")
	}
	if reg.Gauge("durability.at_risk.objects").Value() != 0 {
		t.Error("at-risk gauge not zeroed after heal")
	}
}

// Nil controllers are inert across the whole API surface.
func TestNilControllerSafe(t *testing.T) {
	var c *Controller
	if c.Enabled() {
		t.Fatal("nil controller enabled")
	}
	c.AttachResilience(nil)
	c.AttachSLO(nil)
	c.AttachAdmission(nil)
	c.AttachMetrics(nil)
	c.SetVerify(func(string, []byte) error { return nil })
	c.Run(context.Background())
	c.ReclonePass(context.Background())
	if sum := c.ScrubPass(context.Background()); sum != (ScrubSummary{}) {
		t.Fatalf("nil scrub = %+v", sum)
	}
	if got := c.Stats(); got != (Report{}) {
		t.Fatalf("nil stats = %+v", got)
	}
	if c.Ledger() != nil {
		t.Fatal("nil ledger non-empty")
	}
}
