package netsim

import (
	"testing"

	"repro/internal/columnar"
	"repro/internal/exec"
	"repro/internal/fabric"
	"repro/internal/sim"
)

func kvSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Int64},
	)
}

func kvBatch(ks, vs []int64) *columnar.Batch {
	return columnar.BatchOf(kvSchema(), columnar.FromInt64s(ks), columnar.FromInt64s(vs))
}

func seqBatch(n int) *columnar.Batch {
	ks := make([]int64, n)
	vs := make([]int64, n)
	for i := range ks {
		ks[i] = int64(i)
		vs[i] = int64(i * 10)
	}
	return kvBatch(ks, vs)
}

func testDests(n int) ([]Destination, [][]*columnar.Batch, []*fabric.Link) {
	collected := make([][]*columnar.Batch, n)
	links := make([]*fabric.Link, n)
	dests := make([]Destination, n)
	for i := 0; i < n; i++ {
		i := i
		links[i] = &fabric.Link{Name: "wire", A: "a", B: "b",
			Bandwidth: sim.GbitPerSec(100), Latency: fabric.RDMALatency}
		dests[i] = Destination{
			Path: []*fabric.Link{links[i]},
			Sink: func(b *columnar.Batch) error { collected[i] = append(collected[i], b); return nil },
		}
	}
	return dests, collected, links
}

func TestExchangePartitionsAllRows(t *testing.T) {
	dests, collected, links := testDests(4)
	ex, err := NewExchange(0, dests)
	if err != nil {
		t.Fatal(err)
	}
	ex.BatchRows = 16
	if err := ex.Process(seqBatch(1000), nil); err != nil {
		t.Fatal(err)
	}
	if err := ex.Flush(nil); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, part := range collected {
		for _, b := range part {
			total += b.NumRows()
			// Every row in partition i must hash there.
			col := b.Col(0)
			for r := 0; r < b.NumRows(); r++ {
				if got := exec.PartitionOf(exec.HashValue(col, r, exec.SeedPartition), 4); got != i {
					t.Fatalf("row with key %d in partition %d, hashes to %d", col.Int64s()[r], i, got)
				}
			}
		}
		if links[i].Meter.Bytes() == 0 {
			t.Errorf("destination %d path carried no bytes", i)
		}
	}
	if total != 1000 {
		t.Errorf("total scattered rows = %d, want 1000", total)
	}
	sent := ex.SentRows()
	var sentTotal int64
	for _, s := range sent {
		sentTotal += s
	}
	if sentTotal != 1000 {
		t.Errorf("SentRows sums to %d", sentTotal)
	}
}

func TestExchangeDeterministicRouting(t *testing.T) {
	run := func() []int64 {
		dests, _, _ := testDests(3)
		ex, _ := NewExchange(0, dests)
		ex.Process(seqBatch(500), nil)
		ex.Flush(nil)
		return ex.SentRows()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("routing not deterministic")
		}
	}
}

func TestExchangeNeedsDestinations(t *testing.T) {
	if _, err := NewExchange(0, nil); err == nil {
		t.Error("empty exchange accepted")
	}
}

func TestBroadcast(t *testing.T) {
	dests, collected, links := testDests(3)
	nic := fabric.NewSmartNIC("nic", sim.GbitPerSec(100))
	b := seqBatch(10)
	if err := Broadcast(b, nic, dests); err != nil {
		t.Fatal(err)
	}
	for i := range collected {
		if len(collected[i]) != 1 || collected[i][0].NumRows() != 10 {
			t.Errorf("destination %d got %d batches", i, len(collected[i]))
		}
		if links[i].Meter.Bytes() != sim.Bytes(b.ByteSize()) {
			t.Errorf("destination %d bytes = %v", i, links[i].Meter.Bytes())
		}
	}
	if nic.Meter.Bytes() != 3*sim.Bytes(b.ByteSize()) {
		t.Errorf("nic charged %v", nic.Meter.Bytes())
	}
}

func TestGather(t *testing.T) {
	l := &fabric.Link{Name: "up", A: "a", B: "b", Bandwidth: sim.GBPerSec, Latency: 0}
	parts := [][]*columnar.Batch{
		{seqBatch(5)},
		{seqBatch(3), seqBatch(2)},
	}
	out := Gather(parts, [][]*fabric.Link{{l}, {l}})
	if len(out) != 3 {
		t.Fatalf("gathered %d batches", len(out))
	}
	if l.Meter.Bytes() == 0 {
		t.Error("gather paths uncharged")
	}
}

func buildJoinConfig(t *testing.T, nodes int, smartNIC bool) DistJoinConfig {
	t.Helper()
	cfg := DistJoinConfig{
		BuildKey: 0, ProbeKey: 0,
		ScatterOnNIC: smartNIC,
		BatchRows:    64,
	}
	if smartNIC {
		cfg.ScatterDevice = fabric.NewSmartNIC("nic", sim.GbitPerSec(400))
	} else {
		cfg.ScatterDevice = fabric.NewCPU("scatter-cpu", 4)
	}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, JoinNode{
			Name: "node", CPU: fabric.NewCPU("cpu", 4),
		})
		cfg.Paths = append(cfg.Paths, []*fabric.Link{{
			Name: "eth", A: "sw", B: "n",
			Bandwidth: sim.GbitPerSec(400), Latency: fabric.RDMALatency,
		}})
	}
	return cfg
}

func TestDistributedJoinCorrectness(t *testing.T) {
	for _, nodes := range []int{1, 2, 4, 8} {
		cfg := buildJoinConfig(t, nodes, true)
		// Build: keys 0..99. Probe: keys 0..199 (half match), each twice.
		build := []*columnar.Batch{seqBatch(100)}
		var pk, pv []int64
		for rep := 0; rep < 2; rep++ {
			for i := 0; i < 200; i++ {
				pk = append(pk, int64(i))
				pv = append(pv, int64(rep))
			}
		}
		probe := []*columnar.Batch{kvBatch(pk, pv)}
		res, err := DistributedJoin(cfg, build, probe, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows != 200 {
			t.Errorf("nodes=%d: joined rows = %d, want 200", nodes, res.Rows)
		}
	}
}

func TestDistributedJoinResultsDelivered(t *testing.T) {
	cfg := buildJoinConfig(t, 2, true)
	var rows int64
	res, err := DistributedJoin(cfg,
		[]*columnar.Batch{seqBatch(50)},
		[]*columnar.Batch{seqBatch(50)},
		func(node int, b *columnar.Batch) error {
			rows += int64(b.NumRows())
			// Joined key columns must agree.
			for i := 0; i < b.NumRows(); i++ {
				if b.Col(0).Int64s()[i] != b.Col(2).Int64s()[i] {
					t.Error("join key mismatch")
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 50 || res.Rows != 50 {
		t.Errorf("rows = %d / %d, want 50", rows, res.Rows)
	}
}

func TestDistributedJoinNICRelievesCPU(t *testing.T) {
	build := []*columnar.Batch{seqBatch(2000)}
	probe := []*columnar.Batch{seqBatch(20000)}

	nicCfg := buildJoinConfig(t, 4, true)
	nicRes, err := DistributedJoin(nicCfg, build, probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpuCfg := buildJoinConfig(t, 4, false)
	cpuRes, err := DistributedJoin(cpuCfg, build, probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nicRes.Rows != cpuRes.Rows {
		t.Fatalf("modes disagree: %d vs %d rows", nicRes.Rows, cpuRes.Rows)
	}
	// In NIC mode no node CPU does partitioning, and the scatter CPU
	// device is absent: total CPU bytes must be lower by the scatter
	// volume.
	nicScatterCPU := sim.Bytes(0)
	if !nicCfg.ScatterOnNIC {
		nicScatterCPU = nicRes.ScatterBytes
	}
	cpuTotal := cpuRes.CPUBytes + cpuRes.ScatterBytes
	nicTotal := nicRes.CPUBytes + nicScatterCPU
	if nicTotal >= cpuTotal {
		t.Errorf("NIC mode CPU bytes %v >= CPU mode %v", nicTotal, cpuTotal)
	}
}

func TestDistributedJoinValidation(t *testing.T) {
	cfg := buildJoinConfig(t, 2, true)
	if _, err := DistributedJoin(DistJoinConfig{}, nil, nil, nil); err == nil {
		t.Error("empty config accepted")
	}
	bad := cfg
	bad.Paths = bad.Paths[:1]
	if _, err := DistributedJoin(bad, []*columnar.Batch{seqBatch(1)}, nil, nil); err == nil {
		t.Error("mismatched paths accepted")
	}
	if _, err := DistributedJoin(cfg, nil, nil, nil); err == nil {
		t.Error("empty build accepted")
	}
	dumb := cfg
	dumb.ScatterDevice = fabric.NewMemory("dumb")
	if _, err := DistributedJoin(dumb, []*columnar.Batch{seqBatch(1)}, nil, nil); err == nil {
		t.Error("non-partitioning scatter device accepted")
	}
}

func TestDistributedJoinSkewBounds(t *testing.T) {
	cfg := buildJoinConfig(t, 4, true)
	res, err := DistributedJoin(cfg,
		[]*columnar.Batch{seqBatch(1000)},
		[]*columnar.Batch{seqBatch(100000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkewMin == 0 {
		t.Error("a node received nothing")
	}
	if float64(res.SkewMax) > 1.3*float64(res.SkewMin) {
		t.Errorf("hash skew %d vs %d exceeds 30%%", res.SkewMax, res.SkewMin)
	}
}
