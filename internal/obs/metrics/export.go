package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// HistStat is one histogram's exported summary.
type HistStat struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// RateStat is one rate meter's exported reading.
type RateStat struct {
	Total  int64   `json:"total"`
	PerSec float64 `json:"perSec"`
}

// SLOStat is one SLO tracker's exported reading.
type SLOStat struct {
	TargetNS int64   `json:"targetNs"`
	Good     int64   `json:"good"`
	Bad      int64   `json:"bad"`
	BurnRate float64 `json:"burnRate"`
}

// Snapshot is a point-in-time copy of every instrument, serializable as
// one JSON document (dfbench's periodic artifact). Cross-instrument
// consistency is monitoring-grade, not transactional.
type Snapshot struct {
	At         time.Time           `json:"at"`
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
	Rates      map[string]RateStat `json:"rates,omitempty"`
	SLOs       map[string]SLOStat  `json:"slos,omitempty"`
}

// Snapshot copies every instrument's current reading. Nil registry →
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	s.At = r.nowLocked()
	r.mu.RLock()
	counts := copyRefs(r.counts)
	gauges := copyRefs(r.gauges)
	hists := copyRefs(r.hists)
	rates := copyRefs(r.rates)
	slos := copyRefs(r.slos)
	r.mu.RUnlock()

	if len(counts) > 0 {
		s.Counters = make(map[string]int64, len(counts))
		for k, c := range counts {
			s.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, g := range gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistStat, len(hists))
		for k, h := range hists {
			s.Histograms[k] = HistStat{
				Count: h.Count(), Sum: h.Sum(), Max: h.Max(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
		}
	}
	if len(rates) > 0 {
		s.Rates = make(map[string]RateStat, len(rates))
		for k, m := range rates {
			s.Rates[k] = RateStat{Total: m.Total(), PerSec: m.Rate()}
		}
	}
	if len(slos) > 0 {
		s.SLOs = make(map[string]SLOStat, len(slos))
		for k, t := range slos {
			good, bad := t.Window()
			s.SLOs[k] = SLOStat{TargetNS: int64(t.Target()), Good: good, Bad: bad, BurnRate: t.BurnRate()}
		}
	}
	return s
}

func (r *Registry) nowLocked() time.Time {
	r.mu.RLock()
	now := r.now
	r.mu.RUnlock()
	return now()
}

func copyRefs[V any](m map[string]*V) map[string]*V {
	out := make(map[string]*V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4): counters and gauges verbatim,
// histograms as summaries with quantile labels, rate meters as a
// _total counter plus _per_second gauge, SLO trackers as burn-rate and
// good/bad counters. Dots in names become underscores; label blocks
// built by Labels pass through. Output is sorted, so two scrapes of a
// quiesced registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)
	typed := make(map[string]bool)
	emitType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, kind)
		}
	}

	for _, name := range sortedKeys(s.Counters) {
		base, labels := promName(name)
		emitType(base, "counter")
		fmt.Fprintf(bw, "%s%s %d\n", base, labels, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := promName(name)
		emitType(base, "gauge")
		fmt.Fprintf(bw, "%s%s %s\n", base, labels, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := promName(name)
		h := s.Histograms[name]
		emitType(base, "summary")
		for _, q := range [...]struct {
			q string
			v int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			fmt.Fprintf(bw, "%s%s %d\n", base, promAddLabel(labels, "quantile", q.q), q.v)
		}
		fmt.Fprintf(bw, "%s_sum%s %d\n", base, labels, h.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", base, labels, h.Count)
	}
	for _, name := range sortedKeys(s.Rates) {
		base, labels := promName(name)
		m := s.Rates[name]
		emitType(base+"_total", "counter")
		fmt.Fprintf(bw, "%s_total%s %d\n", base, labels, m.Total)
		emitType(base+"_per_second", "gauge")
		fmt.Fprintf(bw, "%s_per_second%s %s\n", base, labels, promFloat(m.PerSec))
	}
	for _, name := range sortedKeys(s.SLOs) {
		base, labels := promName(name)
		t := s.SLOs[name]
		emitType(base+"_burn_rate", "gauge")
		fmt.Fprintf(bw, "%s_burn_rate%s %s\n", base, labels, promFloat(t.BurnRate))
		emitType(base+"_good", "counter")
		fmt.Fprintf(bw, "%s_good%s %d\n", base, labels, t.Good)
		emitType(base+"_bad", "counter")
		fmt.Fprintf(bw, "%s_bad%s %d\n", base, labels, t.Bad)
	}
	return bw.Flush()
}

// promName splits a labelled registry name and sanitizes the base for
// the Prometheus grammar (dots and dashes become underscores).
func promName(name string) (base, labels string) {
	base, labels = splitName(name)
	base = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, base)
	if base == "" || base[0] >= '0' && base[0] <= '9' {
		base = "_" + base
	}
	return base, labels
}

// promAddLabel merges one more label pair into an existing (possibly
// empty) label block.
func promAddLabel(labels, key, value string) string {
	pair := key + `="` + labelEscape(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func promFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WriteText renders a human-oriented aligned dump for dfshell's
// \metrics view: one section per instrument kind, sorted names,
// durations humanized for *_ns / *ns series.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)
	section := func(title string) { fmt.Fprintf(bw, "-- %s --\n", title) }
	if len(s.Counters) > 0 {
		section("counters")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(bw, "  %-44s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		section("gauges")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(bw, "  %-44s %s\n", name, promFloat(s.Gauges[name]))
		}
	}
	if len(s.Histograms) > 0 {
		section("histograms")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(bw, "  %-44s n=%d p50=%s p95=%s p99=%s max=%s\n",
				name, h.Count, histVal(name, h.P50), histVal(name, h.P95),
				histVal(name, h.P99), histVal(name, h.Max))
		}
	}
	if len(s.Rates) > 0 {
		section("rates")
		for _, name := range sortedKeys(s.Rates) {
			m := s.Rates[name]
			fmt.Fprintf(bw, "  %-44s total=%d rate=%.1f/s\n", name, m.Total, m.PerSec)
		}
	}
	if len(s.SLOs) > 0 {
		section("slo")
		for _, name := range sortedKeys(s.SLOs) {
			t := s.SLOs[name]
			fmt.Fprintf(bw, "  %-44s target=%s good=%d bad=%d burn=%.2f\n",
				name, time.Duration(t.TargetNS), t.Good, t.Bad, t.BurnRate)
		}
	}
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Rates)+len(s.SLOs) == 0 {
		fmt.Fprintln(bw, "(no metrics recorded)")
	}
	return bw.Flush()
}

// histVal renders a histogram statistic, humanizing nanosecond series.
func histVal(name string, v int64) string {
	base, _ := splitName(name)
	if strings.HasSuffix(base, "ns") || strings.HasSuffix(base, ".ns") || strings.HasSuffix(base, ".vns") {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}
