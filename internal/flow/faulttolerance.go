package flow

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/columnar"
)

// ErrStageTimeout marks a stage the watchdog declared hung: it held a
// batch longer than the pipeline's StageTimeout without completing.
var ErrStageTimeout = errors.New("flow: stage timed out")

// StageError names the pipeline element whose runtime-detected fault
// (offline device, watchdog timeout) failed the run. The engine uses
// Device to re-enumerate placements without the failed device; errors
// returned by stage logic itself propagate unwrapped.
type StageError struct {
	Pipeline string
	Stage    string
	Device   string
	Err      error
}

// Error renders the failure with its location.
func (e *StageError) Error() string {
	return fmt.Sprintf("flow: pipeline %s stage %s on %s: %v", e.Pipeline, e.Stage, e.Device, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// LinkError marks a data transfer aborted by a fault on a fabric link.
type LinkError struct {
	Link string
	Err  error
}

// Error renders the failure with the link name.
func (e *LinkError) Error() string {
	return fmt.Sprintf("flow: link %s: %v", e.Link, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *LinkError) Unwrap() error { return e.Err }

// CancelAware lets a stage observe the pipeline's cancellation channel,
// so long-blocking stages (sleeps, external waits) can abort promptly
// when the run is torn down instead of leaking their goroutine.
type CancelAware interface {
	SetCancel(<-chan struct{})
}

// SlowStage wraps a stage with an injected processing delay, modelling a
// degraded or hung device for watchdog tests and E19. When Fire is nil
// the delay applies to every batch; otherwise only when Fire reports
// true. The delay aborts cleanly on pipeline cancellation.
type SlowStage struct {
	Inner  Stage
	Delay  time.Duration
	Fire   func() bool
	cancel <-chan struct{}
}

// Name reports the wrapped stage's name.
func (s *SlowStage) Name() string { return s.Inner.Name() }

// SetCancel implements CancelAware.
func (s *SlowStage) SetCancel(c <-chan struct{}) { s.cancel = c }

// Process delays (cancellably), then forwards to the wrapped stage.
func (s *SlowStage) Process(b *columnar.Batch, emit Emit) error {
	if s.Delay > 0 && (s.Fire == nil || s.Fire()) {
		t := time.NewTimer(s.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.cancel:
			return ErrCanceled
		}
	}
	return s.Inner.Process(b, emit)
}

// Flush forwards to the wrapped stage.
func (s *SlowStage) Flush(emit Emit) error { return s.Inner.Flush(emit) }

// SnapshotState forwards to the wrapped stage, so a slowed stateful
// stage still checkpoints. Wrapping a stateless stage snapshots nil.
func (s *SlowStage) SnapshotState() any {
	if sn, ok := s.Inner.(Snapshotter); ok {
		return sn.SnapshotState()
	}
	return nil
}

// RestoreState forwards to the wrapped stage.
func (s *SlowStage) RestoreState(state any) {
	if state == nil {
		return
	}
	if sn, ok := s.Inner.(Snapshotter); ok {
		sn.RestoreState(state)
	}
}
