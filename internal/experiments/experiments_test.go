package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// The tests below assert the qualitative shapes the paper predicts —
// who wins, in which direction the curves move — on small instances.
// The benchmarks in the repository root run the same experiments at
// larger scale.

func TestE1AllBytesCrossEveryHop(t *testing.T) {
	res, err := E1ConventionalPath(5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	for _, hop := range []string{"disk--dram", "dram--llc", "llc--cpu"} {
		if res.HopBytes[hop] < res.TableSize {
			t.Errorf("hop %s carried %v < table size %v", hop, res.HopBytes[hop], res.TableSize)
		}
	}
	// Selectivity column must not change the hop bytes: all rows equal.
	first := res.Table.Rows[0][1]
	for _, row := range res.Table.Rows[1:] {
		if row[1] != first {
			t.Error("hop bytes vary with selectivity on the conventional path")
		}
	}
}

func TestE2ReductionTracksSelectivity(t *testing.T) {
	res, err := E2StoragePushdown(20000, []float64{0.01, 0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := res.Rows[0]
	if prev.Reduction < 10 {
		t.Errorf("1%% selectivity reduction = %.1fx, want >= 10x", prev.Reduction)
	}
	for _, row := range res.Rows[1:] {
		if row.Reduction > prev.Reduction {
			t.Errorf("reduction grew with selectivity: %.1fx after %.1fx", row.Reduction, prev.Reduction)
		}
		prev = row
	}
	// Pushdown must always ship less.
	for _, row := range res.Rows {
		if row.PushdownNet >= row.CPUOnlyNet {
			t.Errorf("sel %.2f: pushdown %v >= cpu-only %v", row.Selectivity, row.PushdownNet, row.CPUOnlyNet)
		}
	}
}

func TestE3NICHashingRelievesCPU(t *testing.T) {
	res, err := E3NICHashPipeline(20000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HashesAgree {
		t.Fatal("NIC and CPU hashing disagree")
	}
	if res.CPUBusyNIC >= res.CPUBusyCPU {
		t.Errorf("CPU busy with NIC hashing %v >= with CPU hashing %v", res.CPUBusyNIC, res.CPUBusyCPU)
	}
}

func TestE4CPURowsTrackGroupsNotTable(t *testing.T) {
	res, err := E4StagedPreAgg(30000, []int64{10, 1000, 100000})
	if err != nil {
		t.Fatal(err)
	}
	// With offload, rows into the CPU track group count; without, they
	// stay at table cardinality.
	lo, hi := res.Rows[0], res.Rows[len(res.Rows)-1]
	if lo.RowsIntoCPU >= lo.RowsIntoCPU0 {
		t.Errorf("10 groups: offload CPU rows %d >= cpu-only %d", lo.RowsIntoCPU, lo.RowsIntoCPU0)
	}
	// Low cardinality: staged pre-aggregation slashes network bytes.
	if lo.NetBytesFull*4 >= lo.NetBytesNone {
		t.Errorf("10 groups: offload net %v not ≪ none %v", lo.NetBytesFull, lo.NetBytesNone)
	}
	// High cardinality (groups ≈ rows): partial rows are wider than raw
	// rows, so the crossover the paper's "only to parts of the data"
	// caveat (Section 3.3) predicts must appear.
	if hi.NetBytesFull <= hi.NetBytesNone {
		t.Errorf("groups≈rows: expected pre-aggregation to lose (%v vs %v)", hi.NetBytesFull, hi.NetBytesNone)
	}
}

func TestE4OptimizerPredictsCrossover(t *testing.T) {
	res, err := E4StagedPreAgg(30000, []int64{10, 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChosenLow == "cpu-only" {
		t.Errorf("optimizer refused pre-aggregation at 10 groups")
	}
	if res.ChosenHigh == "full-offload" {
		t.Errorf("optimizer chose full-offload at groups≈rows despite wider partials")
	}
}

func TestE5NICScatterRelievesCPUs(t *testing.T) {
	res, err := E5PartitionedJoin(2000, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NICMode.Rows != res.CPUMode.Rows {
		t.Fatal("join modes disagree")
	}
	if res.NICCPUBy >= res.CPUCPUBy {
		t.Errorf("NIC-scatter CPU bytes %v >= CPU-scatter %v", res.NICCPUBy, res.CPUCPUBy)
	}
}

func TestE6CountStaysOffTheNetwork(t *testing.T) {
	res, err := E6NICCount(20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 20000 {
		t.Fatalf("count = %d", res.Count)
	}
	if res.SmartNet*100 >= res.LegacyNet {
		t.Errorf("smart COUNT network bytes %v not ≪ legacy %v", res.SmartNet, res.LegacyNet)
	}
	if res.SmartHost*100 >= res.LegacyHost {
		t.Errorf("smart COUNT host bytes %v not ≪ legacy %v", res.SmartHost, res.LegacyHost)
	}
}

func TestE7AdvantageGrowsAsSelectivityDrops(t *testing.T) {
	res, err := E7NearMemoryFilter(50000, []float64{0.01, 0.1, 0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	prevGain := 0.0
	for i := len(res.Rows) - 1; i >= 0; i-- { // high selectivity -> low
		row := res.Rows[i]
		if row.NearBytes >= row.CPUBytes {
			t.Errorf("sel %.2f: near bytes %v >= cpu %v", row.Selectivity, row.NearBytes, row.CPUBytes)
		}
		gain := float64(row.CPUBytes) / float64(row.NearBytes)
		if gain < prevGain {
			t.Errorf("byte gain shrank as selectivity dropped: %.1f after %.1f", gain, prevGain)
		}
		prevGain = gain
	}
	// Compressed-resident variant also works and still reduces movement.
	resC, err := E7NearMemoryFilter(50000, []float64{0.1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Rows[0].NearBytes >= resC.Rows[0].CPUBytes {
		t.Error("compressed variant moved more near-memory than CPU-path")
	}
}

func TestE8RemoteMemoryWidensGap(t *testing.T) {
	local, err := E8PointerChase([]int{1000, 100000}, false)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := E8PointerChase([]int{1000, 100000}, true)
	if err != nil {
		t.Fatal(err)
	}
	gap := func(r E8Row) float64 { return float64(r.CPUTime) / float64(r.NearTime) }
	if gap(remote.Rows[0]) <= gap(local.Rows[0]) {
		t.Errorf("remote gap %.1f <= local gap %.1f", gap(remote.Rows[0]), gap(local.Rows[0]))
	}
	// Deeper trees cost the CPU more round trips.
	if remote.Rows[1].CPUTime <= remote.Rows[0].CPUTime {
		t.Error("deeper tree did not cost the CPU more")
	}
	for _, r := range append(local.Rows, remote.Rows...) {
		if r.NearBytes != 16 {
			t.Errorf("near path moved %v, want 16B", r.NearBytes)
		}
	}
}

func TestE9HardwareCoherencyWins(t *testing.T) {
	res, err := E9CXLCoherency(3000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.HWBytes >= row.SWBytes {
			t.Errorf("%s: hardware bytes %v >= software %v", row.Generation, row.HWBytes, row.SWBytes)
		}
		if row.HWTime >= row.SWTime {
			t.Errorf("%s: hardware time %v >= software %v", row.Generation, row.HWTime, row.SWTime)
		}
		if row.HWHits == 0 {
			t.Errorf("%s: no cache hits under hardware coherency", row.Generation)
		}
	}
	// Bandwidth scaling: PCIe7 must beat PCIe3 in software mode (bulk
	// transfer bound).
	if res.Rows[5].SWTime >= res.Rows[0].SWTime {
		t.Error("later generations not faster")
	}
}

func TestE10FullPipelineShape(t *testing.T) {
	res, err := E10FullPipeline(30000)
	if err != nil {
		t.Fatal(err)
	}
	df, vo := res.DataFlow, res.Volcano
	if df.MovedBytes >= vo.MovedBytes {
		t.Errorf("dataflow moved %v >= volcano %v", df.MovedBytes, vo.MovedBytes)
	}
	if df.CPUBusy >= vo.CPUBusy {
		t.Errorf("dataflow CPU busy %v >= volcano %v", df.CPUBusy, vo.CPUBusy)
	}
	if df.SimTime >= vo.SimTime {
		t.Errorf("dataflow makespan %v >= volcano %v", df.SimTime, vo.SimTime)
	}
	if df.PeakMemory >= vo.PeakMemory {
		t.Errorf("dataflow memory %v >= volcano %v", df.PeakMemory, vo.PeakMemory)
	}
	// The full offload must also beat the same engine's cpu-only plan on
	// movement.
	if df.MovedBytes >= res.CPUOnly.MovedBytes {
		t.Errorf("full-offload moved %v >= cpu-only %v", df.MovedBytes, res.CPUOnly.MovedBytes)
	}
}

func TestE11ControlTrafficLow(t *testing.T) {
	res, err := E11CreditFlow(500)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Overhead > 1.0 {
			t.Errorf("depth %d: credit/data = %.2f > 1", row.Depth, row.Overhead)
		}
		if row.CreditMsgs == 0 {
			t.Errorf("depth %d: no credit messages", row.Depth)
		}
	}
	// Deeper queues batch more credits: overhead shrinks monotonically.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Overhead > res.Rows[i-1].Overhead {
			t.Errorf("overhead grew with depth: %.3f -> %.3f", res.Rows[i-1].Overhead, res.Rows[i].Overhead)
		}
	}
}

func TestE12SchedulingHelps(t *testing.T) {
	res, err := E12Interference(20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScheduledTime >= res.NaiveTime {
		t.Errorf("scheduled makespan %v >= naive %v", res.ScheduledTime, res.NaiveTime)
	}
	if res.SchedVariants[0] == res.SchedVariants[1] {
		t.Errorf("scheduler co-located both plans: %v", res.SchedVariants)
	}
}

func TestE13FootprintShapes(t *testing.T) {
	res, err := E13NoBufferPool([]int{10000, 40000}, 1*sim.MB)
	if err != nil {
		t.Fatal(err)
	}
	small, big := res.Rows[0], res.Rows[1]
	voGrowth := float64(big.VolcanoMem) / float64(small.VolcanoMem)
	dfGrowth := float64(big.DataflowMem) / float64(small.DataflowMem)
	// The pool saturates at capacity; dataflow stays flat well below it.
	if dfGrowth > 1.5 {
		t.Errorf("dataflow footprint grew %.2fx with 4x data", dfGrowth)
	}
	if big.DataflowMem >= big.VolcanoMem {
		t.Errorf("dataflow %v >= volcano %v at 40k rows", big.DataflowMem, big.VolcanoMem)
	}
	_ = voGrowth
	// Undersized pool thrashes on the big table.
	if big.VolcanoHit > 0.5 {
		t.Errorf("volcano hit rate %.2f with working set ≫ pool; expected thrash", big.VolcanoHit)
	}
}

func TestE14PipelineFlatAndCacheFree(t *testing.T) {
	res, err := E14NoDataCache(20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataFlow >= res.ColdVolcano {
		t.Errorf("dataflow %v >= cold volcano %v", res.DataFlow, res.ColdVolcano)
	}
	if res.CacheBytes == 0 {
		t.Error("volcano held no cache despite warm pass")
	}
	// Warm passes are at best equal to cold ones: with the CPU-centric
	// bottleneck (decode + single-core memory path) dominating, caching
	// often cannot help at all — which is the paper's point.
	if res.WarmVolcano > res.ColdVolcano {
		t.Errorf("warm volcano %v > cold %v", res.WarmVolcano, res.ColdVolcano)
	}
}

func TestE15SetupShareVanishes(t *testing.T) {
	res, err := E15KernelSetup([]sim.Bytes{64 * sim.KB, sim.MB, 64 * sim.MB, sim.GB})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SetupShare >= res.Rows[i-1].SetupShare {
			t.Error("setup share not shrinking with stream size")
		}
	}
	if last := res.Rows[len(res.Rows)-1].SetupShare; last > 0.01 {
		t.Errorf("setup share %.4f at 1GiB, want < 1%%", last)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "EX", Title: "demo", Header: []string{"a", "bb"}, Notes: "n"}
	tb.AddRow("1", "2")
	out := tb.String()
	for _, want := range []string{"EX", "demo", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
