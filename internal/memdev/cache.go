package memdev

import (
	"fmt"

	"repro/internal/sim"
)

// This file models the paper's Section 5.1: CPUs hide the DRAM gap
// behind layered caches and TLBs, and database access patterns defeat
// them — cache and TLB faults stall the cores. The Hierarchy is a
// set-associative, LRU, inclusive three-level cache plus a TLB, accessed
// by virtual address. Experiments drive it with sequential and random
// patterns and report where the cycles went; the near-memory path's
// payoff is that filtered-out bytes never enter the hierarchy at all.

// CacheLevel is one set-associative cache (or TLB, with LineSize = page
// size).
type CacheLevel struct {
	Name       string
	Sets       int
	Ways       int
	LineSize   int64
	HitLatency sim.VTime

	Hits   int64
	Misses int64

	tags [][]cacheWay
	tick uint64
}

type cacheWay struct {
	tag   int64
	valid bool
	used  uint64 // LRU timestamp
}

// NewCacheLevel builds a level. Sets must be a power of two.
func NewCacheLevel(name string, sets, ways int, lineSize int64, hitLatency sim.VTime) *CacheLevel {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("memdev: cache sets %d not a power of two", sets))
	}
	if ways <= 0 || lineSize <= 0 {
		panic("memdev: invalid cache geometry")
	}
	c := &CacheLevel{Name: name, Sets: sets, Ways: ways, LineSize: lineSize, HitLatency: hitLatency}
	c.tags = make([][]cacheWay, sets)
	for i := range c.tags {
		c.tags[i] = make([]cacheWay, ways)
	}
	return c
}

// CapacityBytes reports the level's total capacity.
func (c *CacheLevel) CapacityBytes() sim.Bytes {
	return sim.Bytes(int64(c.Sets) * int64(c.Ways) * c.LineSize)
}

// lookup probes the cache; on hit the line's LRU stamp refreshes.
func (c *CacheLevel) lookup(addr int64) bool {
	c.tick++
	line := addr / c.LineSize
	set := line & int64(c.Sets-1)
	tag := line >> uint(bitsOf(c.Sets))
	for i := range c.tags[set] {
		w := &c.tags[set][i]
		if w.valid && w.tag == tag {
			w.used = c.tick
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// fill installs the line, evicting the LRU way.
func (c *CacheLevel) fill(addr int64) {
	line := addr / c.LineSize
	set := line & int64(c.Sets-1)
	tag := line >> uint(bitsOf(c.Sets))
	victim := 0
	for i := range c.tags[set] {
		w := &c.tags[set][i]
		if !w.valid {
			victim = i
			break
		}
		if w.used < c.tags[set][victim].used {
			victim = i
		}
	}
	c.tags[set][victim] = cacheWay{tag: tag, valid: true, used: c.tick}
}

// Reset clears contents and counters.
func (c *CacheLevel) Reset() {
	for i := range c.tags {
		for j := range c.tags[i] {
			c.tags[i][j] = cacheWay{}
		}
	}
	c.Hits, c.Misses, c.tick = 0, 0, 0
}

func bitsOf(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Hierarchy is the CPU-side cache stack: L1, L2, LLC (inclusive) plus a
// TLB, with a flat DRAM behind it.
type Hierarchy struct {
	Levels []*CacheLevel
	TLB    *CacheLevel
	// MemLatency is the DRAM access cost on an all-level miss.
	MemLatency sim.VTime
	// WalkLatency is the page-table walk cost on a TLB miss.
	WalkLatency sim.VTime

	Accesses  int64
	StallTime sim.VTime // time beyond L1 hits — what the paper calls stalls
	TotalTime sim.VTime
}

// NewDefaultHierarchy builds a contemporary three-level stack:
// 48 KiB/12-way L1 (1 ns), 1 MiB/16-way L2 (4 ns), 32 MiB/16-way LLC
// (14 ns), 2048-entry 4 KiB-page TLB, 100 ns DRAM, 60 ns walk.
func NewDefaultHierarchy() *Hierarchy {
	return &Hierarchy{
		Levels: []*CacheLevel{
			NewCacheLevel("L1", 64, 12, 64, 1*sim.Nanosecond),
			NewCacheLevel("L2", 1024, 16, 64, 4*sim.Nanosecond),
			NewCacheLevel("LLC", 32768, 16, 64, 14*sim.Nanosecond),
		},
		TLB:         NewCacheLevel("TLB", 512, 4, 4096, 0),
		MemLatency:  100 * sim.Nanosecond,
		WalkLatency: 60 * sim.Nanosecond,
	}
}

// Access touches one byte address and returns the access latency.
func (h *Hierarchy) Access(addr int64) sim.VTime {
	h.Accesses++
	var t sim.VTime
	if !h.TLB.lookup(addr) {
		h.TLB.fill(addr)
		t += h.WalkLatency
	}
	hitLevel := -1
	for i, lvl := range h.Levels {
		t += lvl.HitLatency
		if lvl.lookup(addr) {
			hitLevel = i
			break
		}
	}
	if hitLevel == -1 {
		t += h.MemLatency
	}
	// Fill every level above (and including) the miss point — the
	// inclusive-hierarchy simplification.
	limit := hitLevel
	if limit == -1 {
		limit = len(h.Levels)
	}
	for i := 0; i < limit; i++ {
		h.Levels[i].fill(addr)
	}
	h.TotalTime += t
	if hitLevel != 0 {
		h.StallTime += t - h.Levels[0].HitLatency
	}
	return t
}

// ScanSequential touches a region of n bytes with stride-1 reads at
// word granularity (8 bytes), starting at base.
func (h *Hierarchy) ScanSequential(base, n int64) sim.VTime {
	var total sim.VTime
	for off := int64(0); off < n; off += 8 {
		total += h.Access(base + off)
	}
	return total
}

// ScanRandom touches count word addresses uniformly within [base,
// base+n), the pointer-chasing/hash-probe pattern that defeats caches
// and TLBs.
func (h *Hierarchy) ScanRandom(rng *sim.RNG, base, n int64, count int) sim.VTime {
	var total sim.VTime
	for i := 0; i < count; i++ {
		total += h.Access(base + rng.Int63n(n/8)*8)
	}
	return total
}

// StallShare reports stall time / total time.
func (h *Hierarchy) StallShare() float64 {
	if h.TotalTime == 0 {
		return 0
	}
	return float64(h.StallTime) / float64(h.TotalTime)
}

// ResetStats clears counters but keeps cache contents (for warm-phase
// measurements); Reset clears everything.
func (h *Hierarchy) ResetStats() {
	h.Accesses, h.StallTime, h.TotalTime = 0, 0, 0
	for _, l := range h.Levels {
		l.Hits, l.Misses = 0, 0
	}
	h.TLB.Hits, h.TLB.Misses = 0, 0
}

// Reset clears counters and contents.
func (h *Hierarchy) Reset() {
	h.ResetStats()
	for _, l := range h.Levels {
		l.Reset()
	}
	h.TLB.Reset()
}
