package core

import (
	"context"
	"testing"

	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Worker-pool execution must be invisible in everything except the
// makespan: identical result rows and identical metered byte totals at
// every worker count, on both engines and across query shapes.
func TestWorkersPreserveResultsAndTotals(t *testing.T) {
	queries := func(cfg workload.LineitemConfig) map[string]*plan.Query {
		return map[string]*plan.Query{
			"filter-projection": plan.NewQuery("lineitem").
				WithFilter(workload.SelectivityFilter(cfg, 0.1)).
				WithProjection(workload.LOrderKey, workload.LExtendedPrice),
			"group-by": plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary()),
			"filtered-group-by": plan.NewQuery("lineitem").
				WithFilter(workload.SelectivityFilter(cfg, 0.3)).
				WithGroupBy(workload.PricingSummary()),
			"count": plan.NewQuery("lineitem").
				WithFilter(workload.SelectivityFilter(cfg, 0.2)).
				WithCount(),
		}
	}
	_, _, cfg := newEngines(t)
	for name, q := range queries(cfg) {
		t.Run(name, func(t *testing.T) {
			// Fresh engines for the baseline too: a warm buffer pool from an
			// earlier query would shrink the serial run's fetch traffic and
			// make the byte comparison meaningless.
			df1, vo1, _ := newEngines(t)
			df1.Workers, vo1.Workers = 1, 1
			dfBase, err := df1.Execute(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			voBase, err := vo1.Execute(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4} {
				dfW, voW, _ := newEngines(t)
				dfW.Workers, voW.Workers = w, w
				dfRes, err := dfW.Execute(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, dfBase, dfRes)
				// Parallel partial aggregation legitimately ships one extra
				// partial-state flush per additional replica; everything else
				// must move exactly the serial byte count.
				extra := dfRes.Stats.MovedBytes - dfBase.Stats.MovedBytes
				if q.GroupBy != nil {
					if extra < 0 || extra > sim.Bytes(w-1)*4096 {
						t.Errorf("w=%d: dataflow moved %v bytes, serial moved %v (partial overhead out of bounds)",
							w, dfRes.Stats.MovedBytes, dfBase.Stats.MovedBytes)
					}
				} else if extra != 0 {
					t.Errorf("w=%d: dataflow moved %v bytes, serial moved %v",
						w, dfRes.Stats.MovedBytes, dfBase.Stats.MovedBytes)
				}
				if dfRes.Stats.SimTime > dfBase.Stats.SimTime {
					t.Errorf("w=%d: dataflow got slower: %v > %v", w, dfRes.Stats.SimTime, dfBase.Stats.SimTime)
				}
				voRes, err := voW.Execute(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, voBase, voRes)
				if voRes.Stats.MovedBytes != voBase.Stats.MovedBytes {
					t.Errorf("w=%d: volcano moved %v bytes, serial moved %v",
						w, voRes.Stats.MovedBytes, voBase.Stats.MovedBytes)
				}
				if voRes.Stats.SimTime > voBase.Stats.SimTime {
					t.Errorf("w=%d: volcano got slower: %v > %v", w, voRes.Stats.SimTime, voBase.Stats.SimTime)
				}
			}
		})
	}
}

// The distributed join with partitioned parallel build must produce the
// serial join's rows, with identical shipped-byte totals.
func TestJoinWorkersPreserveResults(t *testing.T) {
	build := func(workers int) (*Result, error) {
		df, _, _ := newEngines(t)
		df.Workers = workers
		if err := df.CreateTable("orders", workload.OrdersSchema()); err != nil {
			return nil, err
		}
		if err := df.Load("orders", workload.GenOrders(testRows/10, 7)); err != nil {
			return nil, err
		}
		return df.ExecuteJoin(context.Background(), JoinQuery{
			Probe: "lineitem", Build: "orders",
			ProbeKey: workload.LOrderKey, BuildKey: workload.OOrderKey,
		})
	}
	base, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Rows() == 0 {
		t.Fatal("empty join result")
	}
	for _, w := range []int{2, 4} {
		res, err := build(w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows() != base.Rows() {
			t.Errorf("w=%d: join rows %d, serial %d", w, res.Rows(), base.Rows())
		}
		if res.Stats.MovedBytes != base.Stats.MovedBytes {
			t.Errorf("w=%d: join moved %v, serial %v", w, res.Stats.MovedBytes, base.Stats.MovedBytes)
		}
	}
}
