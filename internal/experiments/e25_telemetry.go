package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs/metrics"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E25Burst is one step of the SLO overload ramp: Size concurrent
// queries thrown at a 2-slot scheduler, with the error-budget burn rate
// read before and after and the admission outcomes counted.
type E25Burst struct {
	Size       int
	Admitted   int64
	Sheds      int64
	BurnBefore float64
	BurnAfter  float64
}

// E25Result carries the telemetry validation: instrumentation cost,
// histogram accuracy against exact per-query stats, attribution
// exactness, and the SLO-leads-shedding ramp.
type E25Result struct {
	Table *Table

	// OverheadPct is the wall-clock cost of full instrumentation:
	// (instrumented - uninstrumented) / uninstrumented, in percent,
	// compared at the lower-quartile walls of OverheadTrials x Reps
	// strictly interleaved per-query timings (timing noise is one-sided,
	// so the distribution floor is where the real cost shows).
	OverheadPct float64
	// BusyIdentical reports that both overhead arms metered exactly the
	// same virtual busy time — telemetry must observe the simulation,
	// never perturb it.
	BusyIdentical bool

	// QuantileErrPct maps p50/p95/p99 to the relative error (percent) of
	// the registry histogram against the exact nearest-rank quantile of
	// the per-query SimTime samples.
	QuantileErrPct map[string]float64
	// AttributionExact reports that per-tenant counter sums reproduce
	// the fleet totals exactly (queries, bytes, busy virtual time) and
	// that fleet bytes equal the sum of per-query charged bytes.
	AttributionExact bool

	// Bursts is the overload ramp; BurnCrossBurst and FirstShedBurst are
	// indexes into it (-1 = never): the burst after which the burn rate
	// first reached 1 (budget consumed as fast as promised) and the
	// burst in which the scheduler first shed. The SLO signal leads
	// shedding when BurnCrossBurst <= FirstShedBurst.
	Bursts         []E25Burst
	BurnCrossBurst int
	FirstShedBurst int
}

// E25Options parameterizes the run; zero values take the defaults below
// (tests shrink trial counts to stay fast).
type E25Options struct {
	OverheadTrials int // queries per timed repetition in the overhead arm
	Reps           int // timed repetitions per overhead arm (min wins)
	Trials         int // queries in the accuracy arm
	Workers        int // morsel-scan worker pool width
	Bursts         []int
	Tenants        []string
	// ShedBurn is the burn-rate threshold at which admission sheds;
	// it is deliberately above 1 so the burn signal visibly crosses the
	// budget line before the scheduler reacts.
	ShedBurn float64
	// Registry, when non-nil, receives the accuracy arm's metrics in
	// addition to the arm's private registry — dfbench passes its serving
	// registry here so a live scrape during the run sees the fleet move.
	Registry *metrics.Registry
}

// E25Telemetry validates the fleet telemetry end to end on three arms:
//
//   - Overhead: the same query stream runs on an uninstrumented engine
//     and on a fully instrumented one (registry + SLO tracker on the
//     engine, scheduler, storage, and flow layers). Both arms must meter
//     identical virtual busy time — telemetry observes, never perturbs —
//     and the wall-clock overhead is reported (budget: <= 2%).
//   - Accuracy: queries with varying selectivity and a rotating tenant
//     label run with metrics on; the registry's HDR histogram quantiles
//     are checked within 1% of the exact nearest-rank quantiles of the
//     recorded per-query stats, and per-tenant counter sums must equal
//     the fleet totals exactly (hedge/speculation duplicates are metered
//     separately, so nothing is double-charged).
//   - SLO control loop: a 2-slot scheduler takes bursts of concurrent
//     queries against a latency objective set from the measured healthy
//     median. Queue delay pushes wall latency over the objective, the
//     error-budget burn rate climbs, and once it crosses the shed
//     threshold admission starts refusing queries with ErrOverloaded.
//     The burn signal must cross 1 at a burst no later than the first
//     shed — the monitor leads the actuator, it does not trail it.
func E25Telemetry(rows int, opts E25Options) (*E25Result, error) {
	if opts.OverheadTrials <= 0 {
		opts.OverheadTrials = 48
	}
	if opts.Reps <= 0 {
		opts.Reps = 4
	}
	if opts.Trials <= 0 {
		opts.Trials = 48
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if len(opts.Bursts) == 0 {
		opts.Bursts = []int{2, 4, 8, 24, 48}
	}
	if len(opts.Tenants) == 0 {
		opts.Tenants = []string{"alpha", "beta", "gamma"}
	}
	if opts.ShedBurn <= 0 {
		opts.ShedBurn = 2
	}

	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	build := func(reg *metrics.Registry) (*core.DataFlowEngine, error) {
		df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		df.Workers = opts.Workers
		if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := df.Load("lineitem", data); err != nil {
			return nil, err
		}
		if reg != nil {
			df.SetMetrics(reg)
		}
		return df, nil
	}
	query := func(sel float64) *plan.Query {
		return plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, sel)).
			WithProjection(workload.LExtendedPrice)
	}

	res := &E25Result{
		Table: &Table{
			ID:     "E25",
			Title:  "Fleet telemetry: overhead, histogram accuracy, attribution exactness, SLO-led shedding",
			Header: []string{"arm", "measure", "value"},
			Notes: "overhead = wall cost of full instrumentation (budget 2%); " +
				"quantile err = HDR histogram vs exact nearest-rank per-query stats (budget 1%); " +
				"attribution exact = per-tenant counter sums reproduce fleet totals; " +
				"burn/shed = burst index where the SLO burn rate crossed 1 vs where admission first shed",
		},
		QuantileErrPct: map[string]float64{},
		BurnCrossBurst: -1,
		FirstShedBurst: -1,
	}

	// --- Arm 1: instrumentation overhead -------------------------------
	qOver := query(0.1)
	runOne := func(df *core.DataFlowEngine) (time.Duration, sim.VTime, error) {
		start := time.Now()
		r, err := df.Execute(context.Background(), qOver)
		if err != nil {
			return 0, 0, fmt.Errorf("experiments: E25 overhead: %w", err)
		}
		return time.Since(start), r.Stats.SimTime, nil
	}
	dfOff, err := build(nil)
	if err != nil {
		return nil, err
	}
	regOn := metrics.New()
	dfOn, err := build(regOn)
	if err != nil {
		return nil, err
	}
	dfOn.SetSLO(metrics.NewSLOTracker(time.Second, 0.99), 0)
	// One unrecorded warmup per arm, then strictly interleaved per-query
	// timing: a GC pause or scheduler hiccup lands on one sample, not one
	// arm — block totals would charge it to whichever arm was running.
	// The arms are compared at their lower-quartile walls: timing noise is
	// one-sided (pauses only ever inflate a sample), so the clean floor of
	// each distribution is where the instrumentation cost actually shows.
	if _, _, err := runOne(dfOff); err != nil {
		return nil, err
	}
	if _, _, err := runOne(dfOn); err != nil {
		return nil, err
	}
	samples := opts.OverheadTrials * opts.Reps
	offWalls := make([]time.Duration, 0, samples)
	onWalls := make([]time.Duration, 0, samples)
	var busyOff, busyOn sim.VTime
	for i := 0; i < samples; i++ {
		busyOff, busyOn = 0, 0
		wOff, bOff, err := runOne(dfOff)
		if err != nil {
			return nil, err
		}
		wOn, bOn, err := runOne(dfOn)
		if err != nil {
			return nil, err
		}
		offWalls = append(offWalls, wOff)
		onWalls = append(onWalls, wOn)
		busyOff, busyOn = bOff, bOn
	}
	sort.Slice(offWalls, func(i, j int) bool { return offWalls[i] < offWalls[j] })
	sort.Slice(onWalls, func(i, j int) bool { return onWalls[i] < onWalls[j] })
	medOff := offWalls[len(offWalls)/4]
	medOn := onWalls[len(onWalls)/4]
	res.OverheadPct = 100 * (float64(medOn) - float64(medOff)) / float64(medOff)
	res.BusyIdentical = busyOff == busyOn

	// --- Arm 2: histogram accuracy + attribution exactness -------------
	regAcc := metrics.New()
	dfAcc, err := build(regAcc)
	if err != nil {
		return nil, err
	}
	selectivities := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9}
	type perTenant struct{ queries, bytes, busy int64 }
	want := map[string]*perTenant{}
	var simTimes []int64
	var wantBytes, wantBusy, wantRows int64
	for trial := 0; trial < opts.Trials; trial++ {
		tenant := opts.Tenants[trial%len(opts.Tenants)]
		ctx := core.WithTenant(context.Background(), tenant)
		r, err := dfAcc.Execute(ctx, query(selectivities[trial%len(selectivities)]))
		if err != nil {
			return nil, fmt.Errorf("experiments: E25 accuracy trial %d: %w", trial, err)
		}
		st := r.Stats
		var busy sim.VTime
		for _, b := range st.DeviceBusy {
			busy += b
		}
		bytes := int64(st.MovedBytes + st.Scan.MediaBytes)
		pt := want[tenant]
		if pt == nil {
			pt = &perTenant{}
			want[tenant] = pt
		}
		pt.queries++
		pt.bytes += bytes
		pt.busy += int64(busy)
		wantBytes += bytes
		wantBusy += int64(busy)
		wantRows += st.ResultRows
		simTimes = append(simTimes, int64(st.SimTime))
		if opts.Registry != nil {
			// Mirror the headline series onto the caller's live registry.
			opts.Registry.Counter("fleet.queries").Inc()
			opts.Registry.Counter("fleet.bytes").Add(bytes)
			opts.Registry.Histogram("query.simtime.vns").Observe(int64(st.SimTime))
		}
	}
	sort.Slice(simTimes, func(i, j int) bool { return simTimes[i] < simTimes[j] })
	hist := regAcc.Histogram("query.simtime.vns")
	for _, q := range []struct {
		name string
		p    float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		exact := e25Rank(simTimes, q.p)
		got := hist.Quantile(q.p)
		errPct := 0.0
		if exact != 0 {
			errPct = 100 * absF(float64(got)-float64(exact)) / float64(exact)
		}
		res.QuantileErrPct[q.name] = errPct
	}
	var tenQ, tenB, tenBusy int64
	for t, pt := range want {
		tenQ += regAcc.Counter(metrics.Labels("tenant.queries", "tenant", t)).Value()
		tenB += regAcc.Counter(metrics.Labels("tenant.bytes", "tenant", t)).Value()
		tenBusy += regAcc.Counter(metrics.Labels("tenant.busy.vns", "tenant", t)).Value()
		if regAcc.Counter(metrics.Labels("tenant.queries", "tenant", t)).Value() != pt.queries {
			return nil, fmt.Errorf("experiments: E25: tenant %s query count drifted", t)
		}
	}
	res.AttributionExact = tenQ == regAcc.Counter("fleet.queries").Value() &&
		tenQ == int64(opts.Trials) &&
		tenB == regAcc.Counter("fleet.bytes").Value() &&
		tenB == wantBytes &&
		tenBusy == regAcc.Counter("fleet.busy.vns").Value() &&
		tenBusy == wantBusy &&
		regAcc.Counter("fleet.rows").Value() == wantRows

	// --- Arm 3: SLO burn rate leads shedding ---------------------------
	regSLO := metrics.New()
	dfSLO, err := build(regSLO)
	if err != nil {
		return nil, err
	}
	qBurst := query(0.1)
	// Measure the healthy median serially, then promise three times it:
	// generous when uncontended, hopeless once a 2-slot queue backs up.
	var healthy []time.Duration
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := dfSLO.Execute(context.Background(), qBurst); err != nil {
			return nil, fmt.Errorf("experiments: E25 SLO warmup: %w", err)
		}
		healthy = append(healthy, time.Since(start))
	}
	sort.Slice(healthy, func(i, j int) bool { return healthy[i] < healthy[j] })
	target := 3 * healthy[len(healthy)/2]
	slo := regSLO.SLO("slo.query.wall", target, 0.9)
	dfSLO.SetSLO(slo, opts.ShedBurn)
	dfSLO.Scheduler.MaxActive = 2
	dfSLO.Scheduler.QueueCap = 64

	for bi, size := range opts.Bursts {
		burst := E25Burst{Size: size, BurnBefore: slo.BurnRate()}
		var admitted, sheds atomic.Int64
		var firstErr error
		var errMu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < size; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := dfSLO.Execute(context.Background(), qBurst)
				switch {
				case err == nil:
					admitted.Add(1)
				case errors.Is(err, sched.ErrOverloaded):
					sheds.Add(1)
				default:
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, fmt.Errorf("experiments: E25 burst %d: %w", size, firstErr)
		}
		burst.Admitted = admitted.Load()
		burst.Sheds = sheds.Load()
		burst.BurnAfter = slo.BurnRate()
		res.Bursts = append(res.Bursts, burst)
		if res.BurnCrossBurst < 0 && burst.BurnAfter >= 1 {
			res.BurnCrossBurst = bi
		}
		if res.FirstShedBurst < 0 && burst.Sheds > 0 {
			res.FirstShedBurst = bi
		}
	}

	// --- Render --------------------------------------------------------
	t := res.Table
	t.AddRow("overhead", "lower-quartile wall off / on",
		fmt.Sprintf("%v / %v", medOff.Round(time.Microsecond), medOn.Round(time.Microsecond)))
	t.AddRow("overhead", "instrumentation cost", fmt.Sprintf("%.2f%%", res.OverheadPct))
	t.AddRow("overhead", "virtual busy identical", fmt.Sprintf("%v", res.BusyIdentical))
	for _, name := range []string{"p50", "p95", "p99"} {
		t.AddRow("accuracy", name+" err vs exact", fmt.Sprintf("%.3f%%", res.QuantileErrPct[name]))
	}
	t.AddRow("accuracy", "attribution exact", fmt.Sprintf("%v", res.AttributionExact))
	for _, b := range res.Bursts {
		t.AddRow("slo", fmt.Sprintf("burst %d", b.Size),
			fmt.Sprintf("admitted %d, shed %d, burn %.2f -> %.2f",
				b.Admitted, b.Sheds, b.BurnBefore, b.BurnAfter))
	}
	t.AddRow("slo", "burn crossed 1 at burst / first shed at burst",
		fmt.Sprintf("%s / %s", e25Idx(res.BurnCrossBurst), e25Idx(res.FirstShedBurst)))

	t.SetMetric("overhead_pct", res.OverheadPct)
	t.SetMetric("busy_identical", boolMetric(res.BusyIdentical))
	t.SetMetric("q50_err_pct", res.QuantileErrPct["p50"])
	t.SetMetric("q95_err_pct", res.QuantileErrPct["p95"])
	t.SetMetric("q99_err_pct", res.QuantileErrPct["p99"])
	t.SetMetric("attribution_exact", boolMetric(res.AttributionExact))
	t.SetMetric("burn_cross_burst", float64(res.BurnCrossBurst))
	t.SetMetric("first_shed_burst", float64(res.FirstShedBurst))
	var totalSheds int64
	for _, b := range res.Bursts {
		totalSheds += b.Sheds
	}
	t.SetMetric("sheds_total", float64(totalSheds))
	leads := res.BurnCrossBurst >= 0 &&
		(res.FirstShedBurst < 0 || res.BurnCrossBurst <= res.FirstShedBurst)
	t.SetMetric("slo_leads_shed", boolMetric(leads))
	return res, nil
}

// e25Rank reads the p-quantile from an ascending-sorted sample by the
// nearest-rank method — the same rule the HDR histogram uses, so the
// comparison isolates bucketing error.
func e25Rank(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// e25Idx renders a burst index, or "never".
func e25Idx(i int) string {
	if i < 0 {
		return "never"
	}
	return fmt.Sprintf("#%d", i)
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
