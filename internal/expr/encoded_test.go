package expr

import (
	"math/rand"
	"testing"

	"repro/internal/columnar"
	"repro/internal/encoding"
)

// buildEncodedBatch returns a 4-column batch (int, float, string, bool)
// with nulls sprinkled in, plus its encoded columns and decoded form.
func buildEncodedBatch(t *testing.T, n int, seed int64) (*columnar.Batch, []*encoding.EncodedColumn) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cats := []string{"ash", "birch", "cedar", "fir", "oak", "pine"}
	iv := columnar.NewVector(columnar.Int64, n)
	fv := columnar.NewVector(columnar.Float64, n)
	sv := columnar.NewVector(columnar.String, n)
	bv := columnar.NewVector(columnar.Bool, n)
	for i := 0; i < n; i++ {
		if i%19 == 0 {
			iv.AppendNull()
			fv.AppendNull()
			sv.AppendNull()
			bv.AppendNull()
			continue
		}
		iv.AppendInt64(rng.Int63n(1000))
		fv.AppendFloat64(rng.Float64() * 100)
		sv.AppendString(cats[rng.Intn(len(cats))])
		bv.AppendBool(rng.Intn(2) == 0)
	}
	cols := []*encoding.EncodedColumn{
		encoding.EncodeColumn(iv), encoding.EncodeColumn(fv),
		encoding.EncodeColumn(sv), encoding.EncodeColumn(bv),
	}
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "x", Type: columnar.Float64},
		columnar.Field{Name: "cat", Type: columnar.String},
		columnar.Field{Name: "flag", Type: columnar.Bool},
	)
	vecs := make([]*columnar.Vector, len(cols))
	for i, ec := range cols {
		v, err := ec.Decode()
		if err != nil {
			t.Fatalf("decode col %d: %v", i, err)
		}
		vecs[i] = v
	}
	return columnar.BatchOf(schema, vecs...), cols
}

func TestEvalEncodedMatchesEval(t *testing.T) {
	batch, cols := buildEncodedBatch(t, 700, 99)
	colFn := func(i int) *encoding.EncodedColumn { return cols[i] }
	preds := []Predicate{
		NewCmp(0, Eq, columnar.IntValue(500)),
		NewCmp(0, Ne, columnar.IntValue(500)),
		NewCmp(0, Lt, columnar.IntValue(120)),
		NewCmp(0, Le, columnar.IntValue(120)),
		NewCmp(0, Gt, columnar.IntValue(880)),
		NewCmp(0, Ge, columnar.IntValue(880)),
		NewBetween(0, 100, 300),
		NewBetween(0, -50, -10),   // below zone map
		NewBetween(0, 2000, 3000), // above zone map
		NewIn(0, columnar.IntValue(5), columnar.IntValue(77), columnar.IntValue(500)),
		NewCmp(1, Lt, columnar.FloatValue(25)),
		NewCmp(1, Ge, columnar.FloatValue(90)),
		NewCmp(1, Ne, columnar.FloatValue(50)),
		NewCmp(2, Eq, columnar.StringValue("cedar")),
		NewCmp(2, Ne, columnar.StringValue("cedar")),
		NewCmp(2, Gt, columnar.StringValue("f")),
		NewIn(2, columnar.StringValue("oak"), columnar.StringValue("pine")),
		NewLike(2, "ir"),
		NewAnd(NewBetween(0, 100, 600), NewCmp(2, Eq, columnar.StringValue("oak"))),
		NewOr(NewCmp(0, Lt, columnar.IntValue(50)), NewCmp(1, Gt, columnar.FloatValue(95))),
		NewNot(NewBetween(0, 100, 600)),
		NewNot(NewCmp(2, Eq, columnar.StringValue("oak"))),
		NewAnd(NewNot(NewCmp(0, Eq, columnar.IntValue(7))), NewOr(NewLike(2, "a"), NewBetween(0, 0, 10))),
	}
	for _, p := range preds {
		got, ok, err := EvalEncoded(p, colFn)
		if err != nil {
			t.Fatalf("%s: error: %v", p, err)
		}
		if !ok {
			t.Fatalf("%s: unexpected fallback", p)
		}
		want := p.Eval(batch)
		if got.Len() != want.Len() {
			t.Fatalf("%s: len %d want %d", p, got.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("%s: bit %d = %v, eager says %v", p, i, got.Get(i), want.Get(i))
			}
		}
	}
}

func TestEvalEncodedFallsBack(t *testing.T) {
	_, cols := buildEncodedBatch(t, 50, 7)
	colFn := func(i int) *encoding.EncodedColumn { return cols[i] }
	// Bool comparisons have no kernel.
	if _, ok, err := EvalEncoded(NewCmp(3, Eq, columnar.BoolValue(true)), colFn); ok || err != nil {
		t.Fatalf("bool cmp: ok=%v err=%v", ok, err)
	}
	// A conjunction with one unsupported leaf falls back as a whole.
	p := NewAnd(NewBetween(0, 0, 10), NewCmp(3, Eq, columnar.BoolValue(true)))
	if _, ok, err := EvalEncoded(p, colFn); ok || err != nil {
		t.Fatalf("mixed and: ok=%v err=%v", ok, err)
	}
	// Missing column.
	if _, ok, _ := EvalEncoded(NewBetween(0, 0, 10), func(int) *encoding.EncodedColumn { return nil }); ok {
		t.Fatal("missing column should fall back")
	}
	// Empty IN list.
	if _, ok, _ := EvalEncoded(NewIn(0), colFn); ok {
		t.Fatal("empty IN should fall back")
	}
}

func TestInPredicateEval(t *testing.T) {
	batch, _ := buildEncodedBatch(t, 100, 11)
	p := NewIn(0, columnar.IntValue(1), columnar.IntValue(2))
	sel := p.Eval(batch)
	col := batch.Col(0)
	for i := 0; i < batch.NumRows(); i++ {
		want := !col.IsNull(i) && (col.Int64s()[i] == 1 || col.Int64s()[i] == 2)
		if sel.Get(i) != want {
			t.Fatalf("row %d: got %v want %v", i, sel.Get(i), want)
		}
	}
	if got := NewIn(0, columnar.IntValue(1)).String(); got != "col0 IN (1)" {
		t.Fatalf("String() = %q", got)
	}
	lo, hi, ok := IntRange(NewIn(0, columnar.IntValue(9), columnar.IntValue(3)), 0)
	if !ok || lo != 3 || hi != 9 {
		t.Fatalf("IntRange(IN) = %d..%d ok=%v", lo, hi, ok)
	}
	reb := Rebase(NewIn(2, columnar.StringValue("x")), func(c int) int { return c - 2 }).(*In)
	if reb.Col != 0 {
		t.Fatalf("Rebase(In) col = %d", reb.Col)
	}
}
