package encoding

import (
	"encoding/binary"
	"fmt"
)

// EncodeDict dictionary-encodes strings: a sorted-by-first-appearance
// dictionary of distinct values followed by per-row codes, themselves
// bit-packed. Low-cardinality string columns (flags, countries, statuses)
// shrink dramatically, and equality predicates can be evaluated on codes.
func EncodeDict(vals []string) []byte {
	dict := make([]string, 0, 16)
	codeOf := make(map[string]int64, 16)
	codes := make([]int64, len(vals))
	for i, s := range vals {
		c, ok := codeOf[s]
		if !ok {
			c = int64(len(dict))
			codeOf[s] = c
			dict = append(dict, s)
		}
		codes[i] = c
	}
	out := putUvarint(nil, uint64(len(dict)))
	for _, s := range dict {
		out = putUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	packed := EncodeBitPacked(codes)
	out = putUvarint(out, uint64(len(packed)))
	out = append(out, packed...)
	return out
}

// DecodeDict reverses EncodeDict.
func DecodeDict(data []byte) ([]string, error) {
	nd, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad dict size", ErrCorrupt)
	}
	data = data[sz:]
	dict := make([]string, 0, nd)
	for i := uint64(0); i < nd; i++ {
		l, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < l {
			return nil, fmt.Errorf("%w: truncated dict entry", ErrCorrupt)
		}
		data = data[sz:]
		dict = append(dict, string(data[:l]))
		data = data[l:]
	}
	pl, sz := binary.Uvarint(data)
	if sz <= 0 || uint64(len(data)-sz) < pl {
		return nil, fmt.Errorf("%w: truncated dict codes", ErrCorrupt)
	}
	data = data[sz:]
	codes, err := DecodeBitPacked(data[:pl])
	if err != nil {
		return nil, err
	}
	out := make([]string, len(codes))
	for i, c := range codes {
		if c < 0 || c >= int64(len(dict)) {
			return nil, fmt.Errorf("%w: dict code %d out of range", ErrCorrupt, c)
		}
		out[i] = dict[c]
	}
	return out, nil
}

// EncodePlainStrings stores strings as length-prefixed bytes, the fallback
// when dictionary encoding would not pay off.
func EncodePlainStrings(vals []string) []byte {
	out := putUvarint(nil, uint64(len(vals)))
	for _, s := range vals {
		out = putUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return out
}

// DecodePlainStrings reverses EncodePlainStrings.
func DecodePlainStrings(data []byte) ([]string, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad string count", ErrCorrupt)
	}
	data = data[sz:]
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < l {
			return nil, fmt.Errorf("%w: truncated string", ErrCorrupt)
		}
		data = data[sz:]
		out = append(out, string(data[:l]))
		data = data[l:]
	}
	return out, nil
}
