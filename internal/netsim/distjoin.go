package netsim

import (
	"fmt"

	"repro/internal/columnar"
	"repro/internal/exec"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// DistJoinConfig describes the Figure 4 scenario: a partitioned hash
// join across several compute nodes with the scatter executed either on
// the smart NIC (no CPU involvement) or on the CPUs (baseline).
type DistJoinConfig struct {
	// BuildKey/ProbeKey are key column indices within each side's
	// schema.
	BuildKey, ProbeKey int
	// Nodes lists the per-node resources.
	Nodes []JoinNode
	// ScatterDevice partitions the streams (a smart NIC or a CPU).
	ScatterDevice *fabric.Device
	// ScatterOnNIC records which mode this run models, for reporting.
	ScatterOnNIC bool
	// Paths[i] is the fabric path from the scatter point to node i.
	Paths [][]*fabric.Link
	// BatchRows is the exchange granule.
	BatchRows int
	// Workers > 1 builds each node's hash table as a partitioned table
	// in parallel (exec.PartitionedHashTable); results are identical.
	Workers int
}

// JoinNode is one compute node participating in the distributed join.
type JoinNode struct {
	Name string
	// CPU executes the local build and probe.
	CPU *fabric.Device
}

// DistJoinResult reports the outcome and cost decomposition.
type DistJoinResult struct {
	Rows         int64     // joined output rows across all nodes
	ScatterBytes sim.Bytes // bytes the scatter device processed
	CPUBytes     sim.Bytes // bytes charged to node CPUs (join work)
	SkewMax      int64     // largest per-node probe share
	SkewMin      int64     // smallest per-node probe share
}

// DistributedJoin executes a partitioned hash join: the build side is
// scattered by key to per-node hash tables, then the probe side is
// scattered the same way and probed locally. Matching rows are counted
// per node (gathering full results is the caller's choice via onResult).
func DistributedJoin(cfg DistJoinConfig, build, probe []*columnar.Batch, onResult func(node int, b *columnar.Batch) error) (DistJoinResult, error) {
	var res DistJoinResult
	n := len(cfg.Nodes)
	if n == 0 {
		return res, fmt.Errorf("netsim: distributed join needs nodes")
	}
	if len(cfg.Paths) != n {
		return res, fmt.Errorf("netsim: %d paths for %d nodes", len(cfg.Paths), n)
	}
	if len(build) == 0 {
		return res, fmt.Errorf("netsim: empty build side")
	}
	if cfg.ScatterDevice == nil || !cfg.ScatterDevice.Can(fabric.OpPartition) {
		return res, fmt.Errorf("netsim: scatter device cannot partition")
	}

	cpuBefore := make([]sim.Snapshot, n)
	for i, node := range cfg.Nodes {
		cpuBefore[i] = node.CPU.Meter.Snapshot()
	}
	scatterBefore := cfg.ScatterDevice.Meter.Snapshot()
	cfg.ScatterDevice.ChargeSetup()

	// Phase 1: scatter the build side into per-node hash tables.
	buildSchema := build[0].Schema()
	tables := make([]exec.JoinTable, n)
	for i := range tables {
		if cfg.Workers > 1 {
			tables[i] = exec.NewPartitionedHashTable(buildSchema, cfg.BuildKey, cfg.Workers)
		} else {
			tables[i] = exec.NewHashTable(buildSchema, cfg.BuildKey)
		}
	}
	buildDests := make([]Destination, n)
	for i := range buildDests {
		i := i
		buildDests[i] = Destination{
			Path: cfg.Paths[i],
			Sink: func(b *columnar.Batch) error {
				cfg.Nodes[i].CPU.Charge(fabric.OpJoin, sim.Bytes(b.ByteSize()))
				tables[i].Build(b)
				return nil
			},
		}
	}
	ex, err := NewExchange(cfg.BuildKey, buildDests)
	if err != nil {
		return res, err
	}
	if cfg.BatchRows > 0 {
		ex.BatchRows = cfg.BatchRows
	}
	for _, b := range build {
		cfg.ScatterDevice.Charge(fabric.OpPartition, sim.Bytes(b.ByteSize()))
		if err := ex.Process(b, nil); err != nil {
			return res, err
		}
	}
	if err := ex.Flush(nil); err != nil {
		return res, err
	}

	// Phase 2: scatter the probe side and probe locally.
	probeDests := make([]Destination, n)
	perNodeRows := make([]int64, n)
	for i := range probeDests {
		i := i
		probeDests[i] = Destination{
			Path: cfg.Paths[i],
			Sink: func(b *columnar.Batch) error {
				cfg.Nodes[i].CPU.Charge(fabric.OpJoin, sim.Bytes(b.ByteSize()))
				perNodeRows[i] += int64(b.NumRows())
				out := tables[i].Probe(b, cfg.ProbeKey)
				if out.NumRows() == 0 {
					return nil
				}
				res.Rows += int64(out.NumRows())
				if onResult != nil {
					return onResult(i, out)
				}
				return nil
			},
		}
	}
	pex, err := NewExchange(cfg.ProbeKey, probeDests)
	if err != nil {
		return res, err
	}
	if cfg.BatchRows > 0 {
		pex.BatchRows = cfg.BatchRows
	}
	for _, b := range probe {
		cfg.ScatterDevice.Charge(fabric.OpPartition, sim.Bytes(b.ByteSize()))
		if err := pex.Process(b, nil); err != nil {
			return res, err
		}
	}
	if err := pex.Flush(nil); err != nil {
		return res, err
	}

	res.ScatterBytes = cfg.ScatterDevice.Meter.Snapshot().Sub(scatterBefore).Bytes
	for i, node := range cfg.Nodes {
		res.CPUBytes += node.CPU.Meter.Snapshot().Sub(cpuBefore[i]).Bytes
	}
	res.SkewMax, res.SkewMin = perNodeRows[0], perNodeRows[0]
	for _, r := range perNodeRows[1:] {
		if r > res.SkewMax {
			res.SkewMax = r
		}
		if r < res.SkewMin {
			res.SkewMin = r
		}
	}
	return res, nil
}
