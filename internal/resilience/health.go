package resilience

import (
	"sort"
	"sync"
	"time"
)

// Tracker keeps per-key latency health: an exponentially weighted moving
// average plus an EWMA of the absolute deviation, the classic cheap
// substitute for a latency quantile (mean + k*deviation approximates a
// high percentile without histograms). Keys are free-form — replica
// names, device names, "stage/device" pairs — so one tracker can serve
// storage, flow and sched at once. All methods are safe for concurrent
// use; a nil *Tracker is a valid no-op tracker.
type Tracker struct {
	mu    sync.Mutex
	alpha float64
	min   int
	stats map[string]*healthStat
}

type healthStat struct {
	ewma    float64 // nanoseconds
	dev     float64 // EWMA of |sample - ewma|, nanoseconds
	samples int64
	// strikes counts integrity failures (checksum mismatches, lost
	// replicas) charged against the key and not yet cleared by a
	// repair. Any positive count demotes the key below every healthy
	// key in Rank: latency history says nothing about a replica that
	// returns wrong bytes.
	strikes int64
}

// NewTracker returns a tracker whose EWMAs move by alpha per sample
// (clamped into (0, 1]) and whose estimates are reported only after
// minSamples observations per key.
func NewTracker(alpha float64, minSamples int) *Tracker {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	if minSamples < 1 {
		minSamples = 1
	}
	return &Tracker{alpha: alpha, min: minSamples, stats: make(map[string]*healthStat)}
}

// Observe folds one completed operation's latency into key's stats.
func (t *Tracker) Observe(key string, d time.Duration) {
	if t == nil || d < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[key]
	if st == nil {
		st = &healthStat{}
		t.stats[key] = st
	}
	x := float64(d)
	if st.samples == 0 {
		st.ewma = x
	} else {
		diff := x - st.ewma
		if diff < 0 {
			diff = -diff
		}
		st.dev += t.alpha * (diff - st.dev)
		st.ewma += t.alpha * (x - st.ewma)
	}
	st.samples++
}

// Latency reports key's EWMA latency and whether enough samples back it.
func (t *Tracker) Latency(key string) (time.Duration, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[key]
	if st == nil || st.samples < int64(t.min) {
		return 0, false
	}
	return time.Duration(st.ewma), true
}

// Threshold reports ewma + k*deviation for key — the hedge/straggler
// trigger — and whether enough samples back it.
func (t *Tracker) Threshold(key string, k float64) (time.Duration, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[key]
	if st == nil || st.samples < int64(t.min) {
		return 0, false
	}
	return time.Duration(st.ewma + k*st.dev), true
}

// Deviation reports key's EWMA absolute deviation and whether enough
// samples back it.
func (t *Tracker) Deviation(key string) (time.Duration, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[key]
	if st == nil || st.samples < int64(t.min) {
		return 0, false
	}
	return time.Duration(st.dev), true
}

// Samples reports how many observations key has accumulated.
func (t *Tracker) Samples(key string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[key]
	if st == nil {
		return 0
	}
	return st.samples
}

// Keys returns every tracked key in sorted order, for stable export
// into metric series.
func (t *Tracker) Keys() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.stats))
	for k := range t.stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MarkCorrupt charges one integrity strike against key: a read from it
// returned bytes that failed verification, or its data is known lost.
// Struck keys sort after every clean key in Rank until ClearCorrupt —
// latency ranking cannot be allowed to keep steering reads at a replica
// that serves fast garbage.
func (t *Tracker) MarkCorrupt(key string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[key]
	if st == nil {
		st = &healthStat{}
		t.stats[key] = st
	}
	st.strikes++
}

// ClearCorrupt forgives key's integrity strikes — called after a repair
// write-back or re-replication restores known-good bytes.
func (t *Tracker) ClearCorrupt(key string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.stats[key]; st != nil {
		st.strikes = 0
	}
}

// CorruptStrikes reports key's uncleared integrity strikes.
func (t *Tracker) CorruptStrikes(key string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.stats[key]; st != nil {
		return st.strikes
	}
	return 0
}

// Rank orders keys by ascending EWMA latency: healthiest first. Keys
// without enough samples keep their incoming relative order and sort
// before sampled keys, so cold replicas are probed first and the
// ordering is deterministic from the first read. Keys with uncleared
// integrity strikes sort after everything else regardless of latency: a
// corrupt replica must stop winning reads and hedges until it is
// repaired. The slice is sorted in place and returned.
func (t *Tracker) Rank(keys []string) []string {
	if t == nil {
		return keys
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sort.SliceStable(keys, func(i, j int) bool {
		a, b := t.stats[keys[i]], t.stats[keys[j]]
		abad := a != nil && a.strikes > 0
		bbad := b != nil && b.strikes > 0
		if abad != bbad {
			return !abad // clean keys before struck keys
		}
		aok := a != nil && a.samples >= int64(t.min)
		bok := b != nil && b.samples >= int64(t.min)
		if aok != bok {
			return !aok // unsampled first: probe cold replicas
		}
		if !aok {
			return false // both cold: keep incoming order
		}
		return a.ewma < b.ewma
	})
	return keys
}
