package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// ObjectStore is the cloud object store: a flat key space of immutable
// blobs. The paper stresses that real cloud storage is object storage,
// not block devices (Section 3.2); the engine's tables live here as
// marshalled segments.
type ObjectStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
	Meter   sim.Meter
}

// NewObjectStore returns an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{objects: make(map[string][]byte)}
}

// Put stores a blob under key, replacing any previous value.
func (o *ObjectStore) Put(key string, data []byte) {
	cp := append([]byte(nil), data...)
	o.mu.Lock()
	o.objects[key] = cp
	o.mu.Unlock()
	o.Meter.AddOps(1)
}

// Get returns the blob stored under key. The returned slice must not be
// modified.
func (o *ObjectStore) Get(key string) ([]byte, error) {
	o.mu.RLock()
	data, ok := o.objects[key]
	o.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: object %q not found", key)
	}
	o.Meter.AddOps(1)
	o.Meter.AddBytes(sim.Bytes(len(data)))
	return data, nil
}

// Size returns the byte size of the object under key without charging a
// read, or -1 if absent. Metadata operations are free in the model.
func (o *ObjectStore) Size(key string) sim.Bytes {
	o.mu.RLock()
	defer o.mu.RUnlock()
	data, ok := o.objects[key]
	if !ok {
		return -1
	}
	return sim.Bytes(len(data))
}

// Delete removes the object under key; deleting a missing key is a no-op.
func (o *ObjectStore) Delete(key string) {
	o.mu.Lock()
	delete(o.objects, key)
	o.mu.Unlock()
}

// List returns all keys with the given prefix in sorted order.
func (o *ObjectStore) List(prefix string) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var keys []string
	for k := range o.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// TotalBytes reports the cumulative size of all stored objects.
func (o *ObjectStore) TotalBytes() sim.Bytes {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var n sim.Bytes
	for _, d := range o.objects {
		n += sim.Bytes(len(d))
	}
	return n
}

// NumObjects reports the number of stored objects.
func (o *ObjectStore) NumObjects() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.objects)
}
