package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Failure injection: the engines must surface storage corruption as
// errors, never as wrong answers, and concurrent use must be safe.

func TestDataFlowDetectsCorruptSegment(t *testing.T) {
	df, _, cfg := newEngines(t)
	meta, err := df.Storage.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	key := meta.SegmentKeys[len(meta.SegmentKeys)/2]
	blob, err := df.Storage.Store().Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	mangled := append([]byte(nil), blob...)
	mangled[len(mangled)/2] ^= 0x20
	df.Storage.Store().Put(key, mangled)

	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())
	_, err = df.Execute(context.Background(), q)
	if err == nil {
		t.Fatal("corrupted segment produced a result")
	}
	if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "checksum") {
		t.Errorf("err = %v, want corruption/checksum mention", err)
	}
	_ = cfg
}

func TestVolcanoDetectsCorruptSegment(t *testing.T) {
	_, vo, _ := newEngines(t)
	meta, err := vo.Storage.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	key := meta.SegmentKeys[0]
	blob, err := vo.Storage.Store().Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	mangled := append([]byte(nil), blob...)
	mangled[len(mangled)-3] ^= 0x01
	vo.Storage.Store().Put(key, mangled)

	if _, err := vo.Execute(context.Background(), plan.NewQuery("lineitem").WithCount()); err == nil {
		t.Fatal("volcano returned a count from a corrupted segment")
	}
}

func TestDataFlowDetectsMissingObject(t *testing.T) {
	df, _, _ := newEngines(t)
	meta, err := df.Storage.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	df.Storage.Store().Delete(meta.SegmentKeys[0])
	if _, err := df.Execute(context.Background(), plan.NewQuery("lineitem").WithCount()); err == nil {
		t.Fatal("missing segment produced a result")
	}
}

func TestConcurrentExecutes(t *testing.T) {
	cfg := workload.DefaultLineitemConfig(10000)
	data := workload.GenLineitem(cfg)
	df := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := df.Load("lineitem", data); err != nil {
		t.Fatal(err)
	}
	queries := []*plan.Query{
		plan.NewQuery("lineitem").WithCount(),
		plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary()),
		plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.1)).
			WithProjection(workload.LExtendedPrice),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				q := queries[(w+i)%len(queries)]
				res, err := df.ExecuteOn(context.Background(), q, w%2)
				if err != nil {
					errs <- err
					return
				}
				if res.Rows() == 0 && !q.CountOnly {
					// Filter/projection queries have survivors at 10%.
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if df.Scheduler.ActiveCount() != 0 {
		t.Error("admissions leaked after concurrent load")
	}
	df.Scheduler.ClearLimits()
	// A follow-up query still answers correctly.
	res, err := df.Execute(context.Background(), plan.NewQuery("lineitem").WithCount())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Batches[0].Col(0).Int64s()[0]; got != 10000 {
		t.Fatalf("post-stress count = %d", got)
	}
}

func TestVolcanoPoolTooSmallForSegment(t *testing.T) {
	// A pool smaller than one segment cannot execute at all — the
	// anchor problem of Section 7.4 taken to its limit.
	vo := NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 4*sim.KB)
	if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := vo.Load("lineitem", workload.GenLineitem(workload.DefaultLineitemConfig(5000))); err != nil {
		t.Fatal(err)
	}
	if _, err := vo.Execute(context.Background(), plan.NewQuery("lineitem").WithCount()); err == nil {
		t.Fatal("4KB pool executed a scan over larger segments")
	}
}
