// Package memdev models the paper's Section 5: the relationship between
// memory and processing. It provides memory regions that can be resident
// in DRAM (optionally compressed), a near-memory accelerator interposed
// between the memory controller and the CPU (Figure 5), and the
// functional units Section 5.4 proposes for it: filtering,
// decompress-on-demand, pointer chasing, data transposition, and list
// maintenance primitives.
//
// Every operation exists in two variants — the CPU-centric path (all
// bytes cross the memory->CPU boundary before being examined) and the
// near-memory path (the accelerator reduces data before it moves) — so
// experiments can compare them directly.
package memdev

import (
	"fmt"
	"sync"

	"repro/internal/columnar"
	"repro/internal/encoding"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// Region is one named dataset resident in a memory device.
type Region struct {
	Name       string
	Batch      *columnar.Batch           // decoded contents
	Encoded    []*encoding.EncodedColumn // set when Compressed
	Compressed bool
}

// DecodedBytes is the region's uncompressed footprint.
func (r *Region) DecodedBytes() sim.Bytes { return sim.Bytes(r.Batch.ByteSize()) }

// StoredBytes is the footprint actually occupying DRAM: encoded when the
// region is kept compressed in memory (Section 5.4's decompress-on-demand
// proposal), decoded otherwise.
func (r *Region) StoredBytes() sim.Bytes {
	if !r.Compressed {
		return r.DecodedBytes()
	}
	var n int64
	for _, c := range r.Encoded {
		n += c.EncodedSize()
	}
	return sim.Bytes(n)
}

// Memory is one memory device (a local DIMM set or a disaggregated
// memory node) with an optional near-memory accelerator.
type Memory struct {
	Name  string
	DRAM  *fabric.Device // the passive memory device
	Accel *fabric.Device // near-memory accelerator; nil when absent

	mu      sync.RWMutex
	regions map[string]*Region
}

// New builds a memory over the given devices. accel may be nil.
func New(name string, dram, accel *fabric.Device) *Memory {
	return &Memory{Name: name, DRAM: dram, Accel: accel, regions: make(map[string]*Region)}
}

// Store makes batch resident under name. When compressed is set, the
// region is kept encoded in DRAM and decompressed on demand.
func (m *Memory) Store(name string, batch *columnar.Batch, compressed bool) *Region {
	r := &Region{Name: name, Batch: batch, Compressed: compressed}
	if compressed {
		r.Encoded = make([]*encoding.EncodedColumn, batch.NumCols())
		for i := 0; i < batch.NumCols(); i++ {
			r.Encoded[i] = encoding.EncodeColumn(batch.Col(i))
		}
	}
	m.mu.Lock()
	m.regions[name] = r
	m.mu.Unlock()
	return r
}

// Region returns the named region, or an error.
func (m *Memory) Region(name string) (*Region, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.regions[name]
	if !ok {
		return nil, fmt.Errorf("memdev: region %q not resident in %s", name, m.Name)
	}
	return r, nil
}

// Drop releases a region.
func (m *Memory) Drop(name string) {
	m.mu.Lock()
	delete(m.regions, name)
	m.mu.Unlock()
}

// ResidentBytes sums the stored footprint of all regions.
func (m *Memory) ResidentBytes() sim.Bytes {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n sim.Bytes
	for _, r := range m.regions {
		n += r.StoredBytes()
	}
	return n
}

// AccessStats reports what one memory operation moved and cost.
type AccessStats struct {
	BytesMoved sim.Bytes // bytes that crossed the memory->consumer link
	Time       sim.VTime // total virtual time of the operation
}

// FilterToCPU is the CPU-centric path of Figure 5: the full region
// streams over link into the cache hierarchy, where cpu evaluates pred.
// The returned batch contains the surviving rows.
func (m *Memory) FilterToCPU(name string, pred expr.Predicate, link *fabric.Link, cpu *fabric.Device) (*columnar.Batch, AccessStats, error) {
	var st AccessStats
	r, err := m.Region(name)
	if err != nil {
		return nil, st, err
	}
	batch := r.Batch
	moved := r.StoredBytes()
	st.Time += link.Transfer(moved)
	st.BytesMoved = moved
	if r.Compressed {
		// The CPU must decompress before it can filter.
		st.Time += cpu.Charge(fabric.OpDecompress, moved)
	}
	st.Time += cpu.Charge(fabric.OpFilter, r.DecodedBytes())
	out := batch.Filter(pred.Eval(batch))
	return out, st, nil
}

// FilterNear is the near-memory path: the accelerator streams the region
// at controller bandwidth, decompressing on demand if needed, and only
// survivors cross the link toward the CPU.
func (m *Memory) FilterNear(name string, pred expr.Predicate, link *fabric.Link) (*columnar.Batch, AccessStats, error) {
	var st AccessStats
	if m.Accel == nil {
		return nil, st, fmt.Errorf("memdev: %s has no near-memory accelerator", m.Name)
	}
	r, err := m.Region(name)
	if err != nil {
		return nil, st, err
	}
	st.Time += m.Accel.ChargeSetup()
	if r.Compressed {
		st.Time += m.Accel.Charge(fabric.OpDecompress, r.StoredBytes())
	}
	st.Time += m.Accel.Charge(fabric.OpFilter, r.DecodedBytes())
	out := r.Batch.Filter(pred.Eval(r.Batch))
	moved := sim.Bytes(out.ByteSize())
	st.Time += link.Transfer(moved)
	st.BytesMoved = moved
	return out, st, nil
}

// CountNear executes a pure COUNT on the accelerator: nothing but the
// 8-byte result crosses the link (the Section 4.4 argument applied to
// memory).
func (m *Memory) CountNear(name string, pred expr.Predicate, link *fabric.Link) (int64, AccessStats, error) {
	var st AccessStats
	if m.Accel == nil {
		return 0, st, fmt.Errorf("memdev: %s has no near-memory accelerator", m.Name)
	}
	r, err := m.Region(name)
	if err != nil {
		return 0, st, err
	}
	st.Time += m.Accel.ChargeSetup()
	if r.Compressed {
		st.Time += m.Accel.Charge(fabric.OpDecompress, r.StoredBytes())
	}
	st.Time += m.Accel.Charge(fabric.OpCount, r.DecodedBytes())
	var count int64
	if pred != nil {
		count = int64(pred.Eval(r.Batch).Count())
	} else {
		count = int64(r.Batch.NumRows())
	}
	st.Time += link.Transfer(8)
	st.BytesMoved = 8
	return count, st, nil
}

// TransposeToRows converts a resident columnar region to row-major form,
// either on the accelerator (near == true) or by pulling everything to
// the CPU — the HTAP format-conversion unit of Section 5.4.
func (m *Memory) TransposeToRows(name string, near bool, link *fabric.Link, cpu *fabric.Device) ([][]columnar.Value, AccessStats, error) {
	var st AccessStats
	r, err := m.Region(name)
	if err != nil {
		return nil, st, err
	}
	size := r.DecodedBytes()
	if near {
		if m.Accel == nil {
			return nil, st, fmt.Errorf("memdev: %s has no near-memory accelerator", m.Name)
		}
		st.Time += m.Accel.ChargeSetup()
		st.Time += m.Accel.Charge(fabric.OpTranspose, size)
		// Transposed data stays in memory; only a completion token moves.
		st.Time += link.Transfer(8)
		st.BytesMoved = 8
	} else {
		st.Time += link.Transfer(size)
		st.Time += cpu.Charge(fabric.OpTranspose, size)
		// The row image is written back across the link.
		st.Time += link.Transfer(size)
		st.BytesMoved = 2 * size
	}
	return r.Batch.RowMajor(), st, nil
}

// Compact removes dead rows from a region (GC-style list maintenance,
// Section 5.4), either on the accelerator or via the CPU. live marks the
// rows to keep.
func (m *Memory) Compact(name string, live *columnar.Bitmap, near bool, link *fabric.Link, cpu *fabric.Device) (AccessStats, error) {
	var st AccessStats
	r, err := m.Region(name)
	if err != nil {
		return st, err
	}
	if live.Len() != r.Batch.NumRows() {
		return st, fmt.Errorf("memdev: live bitmap covers %d rows, region has %d", live.Len(), r.Batch.NumRows())
	}
	size := r.DecodedBytes()
	if near {
		if m.Accel == nil {
			return st, fmt.Errorf("memdev: %s has no near-memory accelerator", m.Name)
		}
		st.Time += m.Accel.ChargeSetup()
		st.Time += m.Accel.Charge(fabric.OpListOps, size)
		st.Time += link.Transfer(8)
		st.BytesMoved = 8
	} else {
		st.Time += link.Transfer(size)
		st.Time += cpu.Charge(fabric.OpListOps, size)
		compacted := r.Batch.Filter(live)
		st.Time += link.Transfer(sim.Bytes(compacted.ByteSize()))
		st.BytesMoved = size + sim.Bytes(compacted.ByteSize())
	}
	r.Batch = r.Batch.Filter(live)
	if r.Compressed {
		for i := 0; i < r.Batch.NumCols(); i++ {
			r.Encoded[i] = encoding.EncodeColumn(r.Batch.Col(i))
		}
	}
	return st, nil
}
