package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// driveInjector performs a fixed mixed sequence of Fire and Slowdown
// calls and returns the rendered schedule. Slowdown checks on the
// gray-failure kinds ride along so their determinism is covered by the
// same seed tests as the error kinds.
func driveInjector(in *Injector) string {
	for i := 0; i < 500; i++ {
		in.Fire(TransientRead, fmt.Sprintf("lineitem/seg-%06d", i%7))
		if i%3 == 0 {
			in.Fire(CorruptBlob, fmt.Sprintf("lineitem/seg-%06d", i%5))
		}
		if i%11 == 0 {
			in.Fire(DeviceOffline, "storage.nic")
		}
		in.Fire(LinkFlap, "net.storage-c0")
		in.Slowdown(DegradedDevice, fmt.Sprintf("store/r0/seg-%06d", i%7), time.Millisecond)
		if i%2 == 0 {
			in.Slowdown(JitterLink, "net.storage-c0", 100*time.Microsecond)
		}
	}
	return in.Schedule()
}

func armDefault(in *Injector) {
	in.Arm(Point{Kind: TransientRead, Prob: 0.1})
	in.Arm(Point{Kind: CorruptBlob, Target: "lineitem/", Prob: 0.05})
	in.Arm(Point{Kind: DeviceOffline, Target: "storage.nic", Prob: 0.5, Budget: 2})
	in.Arm(Point{Kind: LinkFlap, Prob: 0.02})
	in.Arm(Point{Kind: DegradedDevice, Target: "store/r0", Prob: 0.3, Severity: 8})
	in.Arm(Point{Kind: JitterLink, Prob: 0.1, Severity: 4})
}

func TestSameSeedByteIdenticalSchedule(t *testing.T) {
	a, b := New(0xE19), New(0xE19)
	armDefault(a)
	armDefault(b)
	sa, sb := driveInjector(a), driveInjector(b)
	if sa != sb {
		t.Fatalf("same seed produced different schedules:\n--- a ---\n%s--- b ---\n%s", sa, sb)
	}
	if sa == "" {
		t.Fatal("no faults fired at these probabilities over 500 rounds")
	}

	// Reset rewinds to the same schedule.
	a.Reset()
	if s := driveInjector(a); s != sa {
		t.Fatalf("schedule after Reset diverged:\n%s\nvs\n%s", s, sa)
	}

	// A different seed gives a different schedule.
	c := New(0xBEEF)
	armDefault(c)
	if driveInjector(c) == sa {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestUnmatchedChecksDoNotPerturbSchedule(t *testing.T) {
	a, b := New(7), New(7)
	armDefault(a)
	armDefault(b)
	// b sees extra checks of kinds/targets no point matches; they must
	// not consume randomness.
	for i := 0; i < 100; i++ {
		b.Fire(SlowStage, "anything")
		b.Fire(ObjectMissing, "orders/seg-000001")
		b.Fire(CorruptBlob, "orders/seg-000002") // target mismatch
	}
	if sa, sb := driveInjector(a), driveInjector(b); sa != sb {
		t.Fatalf("unmatched checks perturbed the schedule:\n%s\nvs\n%s", sa, sb)
	}
}

func TestCrossPointInterleavingDoesNotPerturbSchedule(t *testing.T) {
	a, b := New(7), New(7)
	armDefault(a)
	armDefault(b)
	// a interleaves the checks of all points (as concurrent pipeline
	// stages and the scan would); b performs the same per-point check
	// sequences batched point by point. Per-point RNG streams make the
	// two orderings produce the same schedule.
	sa := driveInjector(a)
	for i := 0; i < 500; i++ {
		b.Fire(TransientRead, fmt.Sprintf("lineitem/seg-%06d", i%7))
	}
	for i := 0; i < 500; i += 3 {
		b.Fire(CorruptBlob, fmt.Sprintf("lineitem/seg-%06d", i%5))
	}
	for i := 0; i < 500; i += 11 {
		b.Fire(DeviceOffline, "storage.nic")
	}
	for i := 0; i < 500; i++ {
		b.Fire(LinkFlap, "net.storage-c0")
	}
	for i := 0; i < 500; i++ {
		b.Slowdown(DegradedDevice, fmt.Sprintf("store/r0/seg-%06d", i%7), time.Millisecond)
	}
	for i := 0; i < 500; i += 2 {
		b.Slowdown(JitterLink, "net.storage-c0", 100*time.Microsecond)
	}
	if sb := b.Schedule(); sa != sb {
		t.Fatalf("check interleaving across points perturbed the schedule:\n%s\nvs\n%s", sa, sb)
	}
}

func TestBudgetAndTarget(t *testing.T) {
	in := New(1)
	in.Arm(Point{Kind: DeviceOffline, Target: "storage.nic", Prob: 1, Budget: 2})
	if in.Fire(DeviceOffline, "c0.nic") {
		t.Fatal("fired on a non-matching target")
	}
	if !in.Fire(DeviceOffline, "storage.nic") || !in.Fire(DeviceOffline, "storage.nic") {
		t.Fatal("armed point did not fire within budget")
	}
	if in.Fire(DeviceOffline, "storage.nic") {
		t.Fatal("fired past its budget")
	}
	if got := in.Fires(); got != 2 {
		t.Fatalf("Fires() = %d, want 2", got)
	}
}

func TestSlowdownMagnitudes(t *testing.T) {
	in := New(1)
	in.Arm(Point{Kind: DegradedDevice, Target: "store/r0", Prob: 1, Severity: 8})
	in.Arm(Point{Kind: JitterLink, Target: "net.med", Prob: 1, Severity: 4, Budget: 1})
	// DegradedDevice stretches base to Severity x base: extra = 7 x base.
	if got := in.Slowdown(DegradedDevice, "store/r0/lineitem", time.Millisecond); got != 7*time.Millisecond {
		t.Fatalf("DegradedDevice extra = %v, want 7ms", got)
	}
	// Non-matching target adds nothing.
	if got := in.Slowdown(DegradedDevice, "store/r1/lineitem", time.Millisecond); got != 0 {
		t.Fatalf("non-matching target slowed by %v", got)
	}
	// JitterLink adds Severity x base on top.
	if got := in.Slowdown(JitterLink, "net.med", 100*time.Microsecond); got != 400*time.Microsecond {
		t.Fatalf("JitterLink extra = %v, want 400us", got)
	}
	// Budget exhausted: no more jitter.
	if got := in.Slowdown(JitterLink, "net.med", 100*time.Microsecond); got != 0 {
		t.Fatalf("jitter past budget = %v, want 0", got)
	}
	// Severity <= 1 DegradedDevice is a no-op even when it fires.
	in2 := New(2)
	in2.Arm(Point{Kind: DegradedDevice, Prob: 1, Severity: 1})
	if got := in2.Slowdown(DegradedDevice, "x", time.Second); got != 0 {
		t.Fatalf("severity-1 degradation = %v, want 0", got)
	}
	// Slowdown fires land in the schedule like any other event.
	if in.Fires() != 2 {
		t.Fatalf("Fires() = %d, want 2", in.Fires())
	}
	// Nil injector and zero base are safe no-ops.
	var nilIn *Injector
	if nilIn.Slowdown(DegradedDevice, "x", time.Second) != 0 {
		t.Fatal("nil injector slowed down")
	}
	if in.Slowdown(DegradedDevice, "store/r0/x", 0) != 0 {
		t.Fatal("zero base slowed down")
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		kind Kind
		want bool
	}{
		{TransientRead, true}, {ObjectMissing, true}, {LinkFlap, true},
		{SlowStage, true}, {CorruptBlob, false}, {DeviceOffline, false},
		{DegradedDevice, true}, {JitterLink, true}, {StickyCorrupt, false},
	}
	for _, c := range cases {
		err := fmt.Errorf("wrapped: %w", &FaultError{Kind: c.kind, Target: "x"})
		if got := IsTransient(err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.kind, got, c.want)
		}
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
}
