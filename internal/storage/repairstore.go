package storage

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/faults"
	"repro/internal/sim"
)

// This file is the object store's self-healing surface: integrity
// verification of read payloads, read-repair write-back of known-good
// bytes over damaged replicas, raw per-replica access for the
// background scrubber, and replica loss/restoration for re-replication.
// All of it is off by default — Verify nil, WriteBack false,
// RepairContention zero — and the foreground read path pays nothing
// until a repair controller switches it on.

// ReplicaCorruptError reports a read whose payload failed integrity
// verification: the serving replica's stored bytes are damaged.
// Re-reading the same replica returns the same bytes, so the error is
// permanent for that replica; recovery is another replica or a repair.
type ReplicaCorruptError struct {
	Key     string
	Replica int
}

// Error renders the failure.
func (e *ReplicaCorruptError) Error() string {
	return fmt.Sprintf("storage: replica %d of %q failed integrity verification", e.Replica, e.Key)
}

// ReplicaLostError reports a read that found a replica slot empty: the
// replica's device died and the blob went with it. Only re-replication
// recovers it.
type ReplicaLostError struct {
	Key     string
	Replica int
}

// Error renders the failure.
func (e *ReplicaLostError) Error() string {
	return fmt.Sprintf("storage: replica %d of %q is lost", e.Replica, e.Key)
}

// verifyPayload checks a successful read's payload against Verify. On
// failure the attempt chain's metering in m moves to the corrupt-side
// counters (the main Meter never sees discarded bytes), the replica is
// struck in the health tracker and its breaker fed a failure, and a
// ReplicaCorruptError is returned. A nil Verify accepts everything at
// zero cost.
func (o *ObjectStore) verifyPayload(key string, r int, data []byte, m *readMeter) error {
	if o.Verify == nil {
		return nil
	}
	if err := o.Verify(key, data); err == nil {
		return nil
	}
	o.corruptReads.Add(1)
	o.corruptOps.Add(m.ops)
	o.corruptBytes.Add(int64(m.bytes))
	o.Metrics.Counter("storage.corrupt.reads").Inc()
	o.Metrics.Counter("storage.corrupt.bytes").Add(int64(m.bytes))
	*m = readMeter{}
	if pol := o.Resilience; pol != nil {
		pol.Health.MarkCorrupt(o.replicaKey(r))
		pol.Breakers.Failure(o.replicaKey(r))
	}
	return &ReplicaCorruptError{Key: key, Replica: r}
}

// noteLost records a read that hit an empty replica slot: health strike
// and breaker failure, so steering avoids the dead replica and the
// repair controller sees its breaker open.
func (o *ObjectStore) noteLost(key string, r int) {
	o.lostReads.Add(1)
	o.Metrics.Counter("storage.replica.lost_reads").Inc()
	if pol := o.Resilience; pol != nil {
		pol.Health.MarkCorrupt(o.replicaKey(r))
		pol.Breakers.Failure(o.replicaKey(r))
	}
}

// repairBad write-backs the verified-clean payload over every replica
// in bad. The compare-and-write runs under the store lock, so exactly
// one writer repairs each damaged blob no matter how many concurrent
// reads detected it — later callers find the bytes already equal and
// skip. Lost (nil) slots are left for re-replication. No-op unless
// WriteBack is on; the common clean-read case costs one nil check.
func (o *ObjectStore) repairBad(key string, bad []int, clean []byte) {
	if len(bad) == 0 || !o.WriteBack {
		return
	}
	var healed []int
	o.mu.Lock()
	copies, ok := o.objects[key]
	if ok {
		var next [][]byte // cloned lazily on first actual write
		for _, r := range bad {
			if r < 0 || r >= len(copies) || copies[r] == nil {
				continue
			}
			cur := copies[r]
			if next != nil {
				cur = next[r]
			}
			if bytes.Equal(cur, clean) {
				continue // a concurrent reader already repaired it
			}
			if next == nil {
				next = append([][]byte(nil), copies...)
			}
			next[r] = append(make([]byte, 0, len(clean)), clean...)
			delete(o.stickyDamaged, stickyKey(key, r))
			healed = append(healed, r)
		}
		if next != nil {
			o.objects[key] = next
		}
	}
	o.mu.Unlock()
	for _, r := range healed {
		o.finishRepair(key, r, sim.Bytes(len(clean)), true)
	}
}

// finishRepair lands the accounting of one completed replica repair:
// repair meters, integrity-strike forgiveness and — for foreground
// read-repairs only — the controller's OnRepair hook (background heals
// are already on the controller's own ledger).
func (o *ObjectStore) finishRepair(key string, r int, n sim.Bytes, foreground bool) {
	o.repairWrites.Add(1)
	o.repairBytes.Add(int64(n))
	o.Metrics.Counter("storage.repair.writes").Inc()
	o.Metrics.Counter("storage.repair.bytes").Add(int64(n))
	if pol := o.Resilience; pol != nil {
		pol.Health.ClearCorrupt(o.replicaKey(r))
	}
	if foreground && o.OnRepair != nil {
		o.OnRepair(key, r)
	}
}

// stickyKey names one replica blob in the sticky-damage dedup set.
func stickyKey(key string, r int) string {
	return fmt.Sprintf("%d|%s", r, key)
}

// clearStickyLocked drops every sticky-damage record of key — a fresh
// Put or a Delete discards the damaged blobs, so a surviving record
// would wrongly suppress future damage to the new object. Callers hold
// o.mu; the map is almost always nil or tiny.
func (o *ObjectStore) clearStickyLocked(key string) {
	if len(o.stickyDamaged) == 0 {
		return
	}
	suffix := "|" + key
	for sk := range o.stickyDamaged {
		if len(sk) > len(suffix) && sk[len(sk)-len(suffix):] == suffix {
			delete(o.stickyDamaged, sk)
		}
	}
}

// damageReplica applies StickyCorrupt to the stored blob of replica r:
// the middle byte of a fresh copy is flipped and the copy replaces the
// stored slice (readers holding the old slice are unaffected — the
// damage lands on the *next* read). Damage is applied at most once per
// blob until a repair clears it, so an unexhausted fault point cannot
// flip the byte back to clean. Returns the bytes the in-flight read
// should now see.
func (o *ObjectStore) damageReplica(key string, r int, data []byte) []byte {
	o.mu.Lock()
	defer o.mu.Unlock()
	copies, ok := o.objects[key]
	if !ok || r < 0 || r >= len(copies) || copies[r] == nil || len(copies[r]) == 0 {
		return data
	}
	sk := stickyKey(key, r)
	if o.stickyDamaged == nil {
		o.stickyDamaged = make(map[string]struct{})
	}
	if _, done := o.stickyDamaged[sk]; done {
		return copies[r] // already damaged: serve the stored damage
	}
	damaged := append(make([]byte, 0, len(copies[r])), copies[r]...)
	damaged[len(damaged)/2] ^= 0x40
	next := append([][]byte(nil), copies...)
	next[r] = damaged
	o.objects[key] = next
	o.stickyDamaged[sk] = struct{}{}
	return damaged
}

// CorruptReplica deterministically damages the stored blob of replica r
// under key exactly as a StickyCorrupt fire would — the test and
// experiment hook for seeding latent damage without an injector.
// Reports whether damage was applied (false if the key or replica is
// absent, lost, or already damaged).
func (o *ObjectStore) CorruptReplica(key string, r int) bool {
	o.mu.Lock()
	copies, ok := o.objects[key]
	if !ok || r < 0 || r >= len(copies) || copies[r] == nil || len(copies[r]) == 0 {
		o.mu.Unlock()
		return false
	}
	if o.stickyDamaged == nil {
		o.stickyDamaged = make(map[string]struct{})
	}
	sk := stickyKey(key, r)
	if _, done := o.stickyDamaged[sk]; done {
		o.mu.Unlock()
		return false
	}
	damaged := append(make([]byte, 0, len(copies[r])), copies[r]...)
	damaged[len(damaged)/2] ^= 0x40
	next := append([][]byte(nil), copies...)
	next[r] = damaged
	o.objects[key] = next
	o.stickyDamaged[sk] = struct{}{}
	o.mu.Unlock()
	return true
}

// FailReplica kills replica r across every stored object — the device
// behind the slot died and its blobs are gone. Reads fall back to the
// surviving replicas; the data stays at reduced redundancy until
// re-replication restores it. Returns how many blobs were lost.
func (o *ObjectStore) FailReplica(r int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	lost := 0
	for key, copies := range o.objects {
		if r < 0 || r >= len(copies) || copies[r] == nil {
			continue
		}
		next := append([][]byte(nil), copies...)
		next[r] = nil
		o.objects[key] = next
		delete(o.stickyDamaged, stickyKey(key, r))
		lost++
	}
	return lost
}

// ReplicaCount reports how many replica slots (healthy or lost) the
// object under key has, or 0 if the key is absent.
func (o *ObjectStore) ReplicaCount(key string) int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.objects[key])
}

// UnderReplicated reports the store's durability exposure: how many
// objects are missing at least one replica, and the count of lost blobs
// per replica index. Both are zero on a healthy store.
func (o *ObjectStore) UnderReplicated() (objects int, slots map[int]int) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, copies := range o.objects {
		short := false
		for r, d := range copies {
			if d == nil {
				if slots == nil {
					slots = make(map[int]int)
				}
				slots[r]++
				short = true
			}
		}
		if short {
			objects++
		}
	}
	return objects, slots
}

// ReadReplicaRaw reads replica r's stored bytes for integrity checking
// — the scrubber's and re-replication's read primitive. It is metered
// on the scrub counters, never the main Meter, takes BaseLatency of
// wall clock while holding a repair-load slot (so foreground reads feel
// the contention when RepairContention is set), and consults the
// StickyCorrupt fault point like any other access, so latent damage
// surfaces under the scrubber's light. The returned slice is the stored
// blob itself: callers must not modify it.
func (o *ObjectStore) ReadReplicaRaw(ctx context.Context, key string, r int) ([]byte, error) {
	o.mu.RLock()
	copies, ok := o.objects[key]
	o.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: object %q not found", key)
	}
	if r < 0 || r >= len(copies) {
		return nil, fmt.Errorf("storage: object %q has no replica %d", key, r)
	}
	o.repairLoad.Add(1)
	defer o.repairLoad.Add(-1)
	if err := sleepCtx(ctx, o.BaseLatency); err != nil {
		return nil, err
	}
	data := copies[r]
	if o.Faults != nil && o.Faults.Fire(faults.StickyCorrupt, o.replicaKey(r)+"/"+key) {
		data = o.damageReplica(key, r, data)
	}
	o.scrubReads.Add(1)
	if data == nil {
		o.noteLost(key, r)
		return nil, &ReplicaLostError{Key: key, Replica: r}
	}
	o.scrubBytes.Add(int64(len(data)))
	o.Metrics.Counter("storage.scrub.reads").Inc()
	o.Metrics.Counter("storage.scrub.bytes").Add(int64(len(data)))
	return data, nil
}

// RepairReplica overwrites replica r's blob under key with data — the
// write half of scrub repair and re-replication. The write is metered
// on the repair counters, never the main Meter, and takes BaseLatency
// of wall clock while holding a repair-load slot. Writing into a lost
// (nil) slot restores it, raising the object's redundancy back up.
func (o *ObjectStore) RepairReplica(ctx context.Context, key string, r int, data []byte) error {
	o.repairLoad.Add(1)
	defer o.repairLoad.Add(-1)
	if err := sleepCtx(ctx, o.BaseLatency); err != nil {
		return err
	}
	o.mu.Lock()
	copies, ok := o.objects[key]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("storage: object %q not found", key)
	}
	if r < 0 || r >= len(copies) {
		o.mu.Unlock()
		return fmt.Errorf("storage: object %q has no replica %d", key, r)
	}
	if bytes.Equal(copies[r], data) {
		o.mu.Unlock()
		return nil // already healthy: a concurrent repair got here first
	}
	next := append([][]byte(nil), copies...)
	next[r] = append(make([]byte, 0, len(data)), data...)
	o.objects[key] = next
	delete(o.stickyDamaged, stickyKey(key, r))
	o.mu.Unlock()
	o.finishRepair(key, r, sim.Bytes(len(data)), false)
	return nil
}

// RepairStats counts the store's self-healing work so far, all of it
// metered apart from the main Meter: queries are charged only for the
// clean payloads they consume.
type RepairStats struct {
	// CorruptReads is the number of read payloads discarded because
	// they failed integrity verification.
	CorruptReads int64
	// CorruptOps is the number of read attempts behind those payloads.
	CorruptOps int64
	// CorruptBytes is the discarded payload volume.
	CorruptBytes sim.Bytes
	// WriteBacks is the number of replica blobs overwritten with
	// known-good bytes (read-repair, scrub repair and re-replication).
	WriteBacks int64
	// WriteBackBytes is the volume written by those repairs.
	WriteBackBytes sim.Bytes
	// ScrubReads is the number of raw replica reads by scrub/repair.
	ScrubReads int64
	// ScrubBytes is the volume read by scrub/repair.
	ScrubBytes sim.Bytes
	// LostReads is the number of reads that hit an empty replica slot.
	LostReads int64
}

// Sub returns s minus prev, isolating one scan's repair work.
func (s RepairStats) Sub(prev RepairStats) RepairStats {
	return RepairStats{
		CorruptReads:   s.CorruptReads - prev.CorruptReads,
		CorruptOps:     s.CorruptOps - prev.CorruptOps,
		CorruptBytes:   s.CorruptBytes - prev.CorruptBytes,
		WriteBacks:     s.WriteBacks - prev.WriteBacks,
		WriteBackBytes: s.WriteBackBytes - prev.WriteBackBytes,
		ScrubReads:     s.ScrubReads - prev.ScrubReads,
		ScrubBytes:     s.ScrubBytes - prev.ScrubBytes,
		LostReads:      s.LostReads - prev.LostReads,
	}
}

// Repairs snapshots the store's cumulative self-healing counters.
func (o *ObjectStore) Repairs() RepairStats {
	return RepairStats{
		CorruptReads:   o.corruptReads.Load(),
		CorruptOps:     o.corruptOps.Load(),
		CorruptBytes:   sim.Bytes(o.corruptBytes.Load()),
		WriteBacks:     o.repairWrites.Load(),
		WriteBackBytes: sim.Bytes(o.repairBytes.Load()),
		ScrubReads:     o.scrubReads.Load(),
		ScrubBytes:     sim.Bytes(o.scrubBytes.Load()),
		LostReads:      o.lostReads.Load(),
	}
}
