package flow

import (
	"context"
	"testing"

	"repro/internal/columnar"
)

// ckptSumStage forwards every batch unchanged while accumulating the
// running sum of its values — stateful (and snapshottable) yet
// streaming, so sink-batch watermarks advance mid-stream.
type ckptSumStage struct{ sum int64 }

func (s *ckptSumStage) Name() string { return "ckptsum" }
func (s *ckptSumStage) Process(b *columnar.Batch, emit Emit) error {
	for _, v := range b.Col(0).Int64s() {
		s.sum += v
	}
	return emit(b)
}
func (s *ckptSumStage) Flush(emit Emit) error  { return emit(intBatch(s.sum)) }
func (s *ckptSumStage) SnapshotState() any     { return s.sum }
func (s *ckptSumStage) RestoreState(state any) { s.sum = state.(int64) }

// markedSource emits batches carrying the single values 1..n, marking
// checkpoint epoch e after batch marks[e] (a map from epoch to batch
// count); the recorded resume watermark is the batch count itself.
func markedSource(ck *Checkpointer, n int, marks map[int]int) Source {
	return func(emit Emit) error {
		for i := 1; i <= n; i++ {
			if err := emit(intBatch(int64(i))); err != nil {
				return err
			}
			for e := 1; e <= len(marks); e++ {
				if marks[e] == i {
					if err := ck.Mark(e, i); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}

func TestCheckpointEpochsRecordConsistentCuts(t *testing.T) {
	assertNoFlowLeaks(t)
	ck := NewCheckpointer()
	var completed []int
	ck.OnComplete = func(e int) { completed = append(completed, e) }
	p := &Pipeline{
		Name:   "ckpt",
		Source: markedSource(ck, 6, map[int]int{1: 2, 2: 4}),
		Stages: []Placed{
			{Stage: &ckptSumStage{}},
			{Stage: &passStage{name: "tail"}},
		},
		Ckpt: ck,
	}
	var sink []int64
	res, err := p.Run(context.Background(), func(b *columnar.Batch) error {
		sink = append(sink, b.Col(0).Int64s()[0])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6 forwarded batches plus the flushed sum.
	if len(sink) != 7 || sink[6] != 21 {
		t.Fatalf("sink = %v, want 1..6 then 21", sink)
	}
	if got := ck.Completed(); got != 2 {
		t.Errorf("Completed = %d, want 2", got)
	}
	if ep, ok := ck.Latest(); !ok || ep != 2 {
		t.Errorf("Latest = %d,%v, want 2,true", ep, ok)
	}
	if len(completed) != 2 || completed[0] != 1 || completed[1] != 2 {
		t.Errorf("OnComplete order = %v, want [1 2]", completed)
	}
	if w := ck.Resume(1); w != 2 {
		t.Errorf("Resume(1) = %v, want 2", w)
	}
	if w := ck.Resume(2); w != 4 {
		t.Errorf("Resume(2) = %v, want 4", w)
	}
	// The marker trails every batch of its epoch: stage snapshots are the
	// sums at the watermark; the stateless tail records nil.
	if snaps := ck.Snaps(1); len(snaps) != 2 || snaps[0] != int64(3) || snaps[1] != nil {
		t.Errorf("Snaps(1) = %v, want [3 nil]", snaps)
	}
	if snaps := ck.Snaps(2); snaps[0] != int64(10) {
		t.Errorf("Snaps(2)[0] = %v, want 10", snaps[0])
	}
	// Sink watermarks: batches delivered when the marker fell off the
	// last stage.
	if n := ck.SinkBatches(1); n != 2 {
		t.Errorf("SinkBatches(1) = %d, want 2", n)
	}
	if n := ck.SinkBatches(2); n != 4 {
		t.Errorf("SinkBatches(2) = %d, want 4", n)
	}
	// Markers ride every port as punctuation, not data, and bypass
	// credit accounting.
	for i, ps := range res.Ports {
		if ps.MarkerMessages != 2 {
			t.Errorf("port %d carried %d markers, want 2", i, ps.MarkerMessages)
		}
	}
	if res.Ports[0].DataMessages != 6 {
		t.Errorf("port 0 data messages = %d, want 6", res.Ports[0].DataMessages)
	}
}

func TestRestoreResumesFromCheckpoint(t *testing.T) {
	assertNoFlowLeaks(t)
	// Baseline: a full run with epoch 1 marked after batch 2.
	ck := NewCheckpointer()
	base := &Pipeline{
		Name:   "ckpt-base",
		Source: markedSource(ck, 6, map[int]int{1: 2}),
		Stages: []Placed{{Stage: &ckptSumStage{}}},
		Ckpt:   ck,
	}
	var baseLast int64
	if _, err := base.Run(context.Background(), func(b *columnar.Batch) error {
		baseLast = b.Col(0).Int64s()[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if baseLast != 21 {
		t.Fatalf("baseline sum = %d, want 21", baseLast)
	}

	// Restart: fresh stages, epoch-1 snapshots reinstalled, and the
	// source resuming at the recorded watermark (batch 3). The flushed
	// sum must equal the uninterrupted run's.
	resume := ck.Resume(1).(int)
	restarted := &Pipeline{
		Name: "ckpt-restart",
		Source: func(emit Emit) error {
			for i := resume + 1; i <= 6; i++ {
				if err := emit(intBatch(int64(i))); err != nil {
					return err
				}
			}
			return nil
		},
		Stages:  []Placed{{Stage: &ckptSumStage{}}},
		Restore: &Restore{Epoch: 1, Snaps: ck.Snaps(1)},
	}
	var last int64
	if _, err := restarted.Run(context.Background(), func(b *columnar.Batch) error {
		last = b.Col(0).Int64s()[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if last != baseLast {
		t.Errorf("restarted sum = %d, want %d", last, baseLast)
	}
}

func TestRestoreValidation(t *testing.T) {
	assertNoFlowLeaks(t)
	// A restore whose snapshot count does not match the stage chain is a
	// wiring bug and must fail before any goroutine starts.
	p := &Pipeline{
		Name:    "ckpt-bad",
		Source:  nBatchSource(1, 1),
		Stages:  []Placed{{Stage: &ckptSumStage{}}},
		Restore: &Restore{Epoch: 1, Snaps: []any{int64(1), int64(2)}},
	}
	if _, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil }); err == nil {
		t.Error("mismatched restore accepted")
	}
	// State for a stage that cannot restore is equally fatal.
	p2 := &Pipeline{
		Name:    "ckpt-bad2",
		Source:  nBatchSource(1, 1),
		Stages:  []Placed{{Stage: &passStage{name: "p"}}},
		Restore: &Restore{Epoch: 1, Snaps: []any{int64(1)}},
	}
	if _, err := p2.Run(context.Background(), func(*columnar.Batch) error { return nil }); err == nil {
		t.Error("restore into non-snapshotter accepted")
	}
}

func TestCheckpointerDetachedAndNil(t *testing.T) {
	// Marking a checkpointer that is not attached to a running pipeline
	// is an error; every method on a nil checkpointer is a safe no-op.
	ck := NewCheckpointer()
	if err := ck.Mark(1, 0); err == nil {
		t.Error("detached Mark succeeded")
	}
	var none *Checkpointer
	if err := none.Mark(1, 0); err != nil {
		t.Errorf("nil Mark = %v", err)
	}
	if _, ok := none.Latest(); ok {
		t.Error("nil checkpointer has a latest epoch")
	}
	if none.Completed() != 0 || none.Resume(1) != nil || none.Snaps(1) != nil || none.SinkBatches(1) != 0 {
		t.Error("nil checkpointer returned non-zero state")
	}
}
