package experiments

import (
	"testing"
	"time"
)

// Benchmark smoke targets: CI runs these with -benchtime=1x so a perf
// regression that turns into a hang or an error is caught cheaply; local
// runs with real benchtime give comparable numbers.

func BenchmarkE1ConventionalPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := E1ConventionalPath(20000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE20StageOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := E20StageOverlap(20000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE21Lifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := E21Lifecycle(12000, E21Options{OfferedLoads: []int{1, 8}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE22Parallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := E22Parallelism(40000, []int{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE23EncodedEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := E23EncodedEval(40000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE24TailLatency(b *testing.B) {
	opts := E24Options{Severities: []float64{1, 8}, Trials: 3,
		Workers: 2, Segments: 12}
	for i := 0; i < b.N; i++ {
		if _, err := E24TailLatency(3000, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE25Telemetry(b *testing.B) {
	opts := E25Options{OverheadTrials: 4, Reps: 2, Trials: 12,
		Workers: 2, Bursts: []int{2, 12}}
	for i := 0; i < b.N; i++ {
		if _, err := E25Telemetry(3000, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE26SelfHeal(b *testing.B) {
	opts := E26Options{Trials: 3, BaseLatency: 200 * time.Microsecond,
		Workers: 2, Segments: 12, HealWindow: 200 * time.Millisecond,
		DeadAfter: 10 * time.Millisecond, Streams: 4}
	for i := 0; i < b.N; i++ {
		if _, err := E26SelfHeal(3000, opts); err != nil {
			b.Fatal(err)
		}
	}
}
