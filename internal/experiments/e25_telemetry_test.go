package experiments

import (
	"testing"

	"repro/internal/obs/metrics"
)

// e25TestOptions shrinks the arms so the test stays fast: fewer timed
// reps, a shorter accuracy stream, and a burst ramp that still ends deep
// in overload for a 2-slot scheduler.
func e25TestOptions() E25Options {
	return E25Options{
		OverheadTrials: 6,
		Reps:           2,
		Trials:         28,
		Workers:        2,
		Bursts:         []int{2, 4, 12, 24},
	}
}

func TestE25TelemetryShape(t *testing.T) {
	res, err := E25Telemetry(3000, e25TestOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Telemetry must observe the simulation, never perturb it: both
	// overhead arms meter bit-identical virtual busy time.
	if !res.BusyIdentical {
		t.Error("instrumented arm metered different virtual busy time than the bare arm")
	}
	// The wall-clock budget is 2%; a loaded CI worker adds noise on top
	// of a sub-millisecond denominator, so the test bound is generous.
	// E25's reported overhead_pct is the number the claim rides on.
	if res.OverheadPct > 50 {
		t.Errorf("instrumentation overhead = %.1f%%, want well under 50%% even on noisy hardware",
			res.OverheadPct)
	}

	// HDR histogram quantiles against exact nearest-rank per-query
	// SimTime: the log-linear buckets promise <= 1% relative error.
	for _, q := range []string{"p50", "p95", "p99"} {
		if errPct, ok := res.QuantileErrPct[q]; !ok || errPct > 1 {
			t.Errorf("%s histogram error = %.3f%% (present=%v), want <= 1%%", q, errPct, ok)
		}
	}

	// Per-tenant counter sums must reproduce fleet totals exactly.
	if !res.AttributionExact {
		t.Error("per-tenant attribution did not sum to fleet totals exactly")
	}

	// The overload ramp must shed, and the burn-rate signal must lead
	// the shedding, not trail it.
	if res.FirstShedBurst < 0 {
		t.Fatalf("no burst shed: bursts = %+v", res.Bursts)
	}
	if res.BurnCrossBurst < 0 || res.BurnCrossBurst > res.FirstShedBurst {
		t.Errorf("burn crossed 1 at burst %d, first shed at burst %d: the SLO signal must lead",
			res.BurnCrossBurst, res.FirstShedBurst)
	}
	// Shedding is admission control, not an outage: every burst still
	// admitted the scheduler's two slots' worth of queries.
	for _, b := range res.Bursts {
		if b.Admitted == 0 {
			t.Errorf("burst %d admitted nothing", b.Size)
		}
	}

	if res.Table == nil || len(res.Table.Rows) == 0 {
		t.Fatal("missing rendered table")
	}
	for _, m := range []string{"overhead_pct", "q99_err_pct", "attribution_exact",
		"slo_leads_shed", "sheds_total"} {
		if _, ok := res.Table.Metrics[m]; !ok {
			t.Errorf("missing %s metric in -json artifact", m)
		}
	}
	if res.Table.Metrics["attribution_exact"] != 1 {
		t.Error("attribution_exact metric is not 1")
	}
	if res.Table.Metrics["slo_leads_shed"] != 1 {
		t.Error("slo_leads_shed metric is not 1")
	}
}

func TestE25MirrorsCallerRegistry(t *testing.T) {
	opts := e25TestOptions()
	opts.Bursts = []int{2} // the mirror rides the accuracy arm only
	opts.Trials = 6
	reg := metrics.New()
	opts.Registry = reg
	if _, err := E25Telemetry(2000, opts); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("fleet.queries").Value(); got != int64(opts.Trials) {
		t.Errorf("caller registry saw %d queries, want %d", got, opts.Trials)
	}
	if reg.Histogram("query.simtime.vns").Count() != int64(opts.Trials) {
		t.Error("caller registry histogram missed observations")
	}
}
